package disqo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"time"

	"disqo/internal/catalog"
	"disqo/internal/datagen"
	"disqo/internal/faultinject"
	"disqo/internal/sqlparser"
	"disqo/internal/types"
	"disqo/internal/wal"
)

// This file is the durability layer's DB-side half (DESIGN.md §13): it
// wires internal/wal into the write path, runs crash recovery at Open,
// and owns the open/close drain lifecycle. The protocol is
// log-after-commit under writeMu: a statement first commits its new
// table version in memory, then appends one logical record describing
// it, and only returns once the record is (per the sync policy) on
// disk. A failed append or sync seals the log — the statement reports
// the error and every later write is rejected with ErrWALSealed — so
// the on-disk log is always a strict prefix of the in-memory history,
// which is exactly the invariant crash recovery (and the chaos suite's
// prefix-legality check) relies on.

// ErrClosed is returned by every DB entry point after Close has begun:
// queries, DML/DDL, loaders, and checkpoints are all rejected while
// in-flight work drains.
var ErrClosed = errors.New("disqo: database is closed")

// ErrDrainTimeout is returned by Close when in-flight queries did not
// finish within the WithDrainTimeout budget. The DB still shuts down;
// the laggards keep running against their pinned snapshots and their
// results are simply discarded by their callers.
var ErrDrainTimeout = errors.New("disqo: close drain timed out with queries in flight")

// ErrWALSealed is returned by write statements after a WAL append or
// fsync failed: the log fails closed (the damaged tail must not be
// buried under later records) and the process must restart to recover.
var ErrWALSealed = wal.ErrSealed

// RecoveryError is the typed error Open returns for on-disk damage
// recovery cannot repair: corruption before the log's final record, a
// broken sequence, or a snapshot/log gap. A torn final record is NOT
// a RecoveryError — it is silently truncated. Match with errors.As.
type RecoveryError = wal.RecoveryError

// WALStats is the write-ahead log's counter snapshot; see
// DB.WALStats and WorkloadStats.WAL.
type WALStats = wal.Stats

// WithDataDir makes the database durable: every committed DML/DDL
// statement is written to a write-ahead log in dir before the call
// returns, checkpoints serialize the catalog into snapshot files, and
// a later Open with the same dir recovers the committed state (see
// DESIGN.md §13 for the record format and torn-write rule). Without
// this option the engine is fully in-memory and Open never reads disk.
func WithDataDir(dir string) OpenOption {
	return func(o *OpenOptions) { o.DataDir = dir }
}

// WithSyncEvery sets the WAL group-commit batch: the log fsyncs after
// every nth appended record (default 1 — every statement is durable
// when its call returns). n > 1 trades the tail of the log on a crash
// for an n-fold reduction in fsyncs; pair it with WithSyncInterval to
// bound the data-loss window in wall-clock time too.
func WithSyncEvery(n int) OpenOption {
	return func(o *OpenOptions) { o.SyncEvery = n }
}

// WithSyncInterval runs a background fsync every d, bounding how long
// a group-commit batch (WithSyncEvery > 1) can sit unsynced during a
// write lull. 0 (the default) disables the ticker.
func WithSyncInterval(d time.Duration) OpenOption {
	return func(o *OpenOptions) { o.SyncInterval = d }
}

// WithCheckpointEvery checkpoints automatically after every n logged
// records: the catalog's immutable table versions are serialized to a
// snapshot file and the log is truncated, bounding both recovery
// replay time and log growth. 0 (the default) checkpoints only on
// explicit DB.Checkpoint calls.
func WithCheckpointEvery(n int) OpenOption {
	return func(o *OpenOptions) { o.CheckpointEvery = n }
}

// WithDrainTimeout bounds how long Close waits for in-flight queries
// and statements to finish before tearing down; on expiry Close
// returns ErrDrainTimeout (new work is rejected with ErrClosed either
// way). 0 (the default) waits indefinitely.
func WithDrainTimeout(d time.Duration) OpenOption {
	return func(o *OpenOptions) { o.DrainTimeout = d }
}

// withWALFaultInjector wires a deterministic fault injector into the
// durability layer's disk sites (SiteWALAppend, SiteWALSync,
// SiteSnapshot). Unexported on purpose: it is the crash-chaos hook.
func withWALFaultInjector(in *faultinject.Injector) OpenOption {
	return func(o *OpenOptions) { o.walFault = in }
}

// ---------------------------------------------------------------------
// Lifecycle: admission begin/end and the Close drain.

// begin registers one unit of in-flight work; it fails with ErrClosed
// once Close has begun. Two mutex operations, no allocation — the warm
// query path's allocation golden is unaffected.
func (db *DB) begin() error {
	db.lifeMu.Lock()
	if db.closed {
		db.lifeMu.Unlock()
		return ErrClosed
	}
	db.inflight++
	db.lifeMu.Unlock()
	return nil
}

// end retires one unit of in-flight work, waking a draining Close when
// the last one finishes.
func (db *DB) end() {
	db.lifeMu.Lock()
	db.inflight--
	if db.closed && db.inflight == 0 && db.idle != nil {
		close(db.idle)
		db.idle = nil
	}
	db.lifeMu.Unlock()
}

// Close shuts the database down: new queries and statements are
// rejected with ErrClosed immediately, in-flight work is drained
// (bounded by WithDrainTimeout; the default waits indefinitely), the
// WAL is synced and closed, and the debug listener stops. Close is
// idempotent; later calls return the first call's error.
func (db *DB) Close() error {
	db.lifeMu.Lock()
	if db.closed {
		err := db.closeErr
		db.lifeMu.Unlock()
		return err
	}
	db.closed = true
	var idle chan struct{}
	if db.inflight > 0 {
		idle = make(chan struct{})
		db.idle = idle
	}
	db.lifeMu.Unlock()

	var errs []error
	if idle != nil {
		if db.drainTimeout > 0 {
			t := time.NewTimer(db.drainTimeout)
			select {
			case <-idle:
				t.Stop()
			case <-t.C:
				errs = append(errs, ErrDrainTimeout)
			}
		} else {
			<-idle
		}
	}
	if db.wal != nil {
		// Final sync: anything a group-commit batch still holds becomes
		// durable before the file closes.
		if err := db.wal.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if db.debug != nil {
		if err := db.debug.shutdown(); err != nil {
			errs = append(errs, err)
		}
	}
	err := errors.Join(errs...)
	db.lifeMu.Lock()
	db.closeErr = err
	db.lifeMu.Unlock()
	return err
}

// ---------------------------------------------------------------------
// Record bodies. KindSQL carries the normalized statement text; the
// programmatic APIs log compact binary bodies instead (a value like
// 1e-7 must round-trip exactly, not via SQL text), and the bulk
// loaders log their generator parameters — datagen is seeded and
// deterministic, so replaying the parameters rebuilds the exact rows
// without logging megabytes.

func appendLenStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeLenStr(buf []byte) (string, []byte, error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 || u > uint64(len(buf)-n) {
		return "", nil, errors.New("disqo: truncated WAL record string")
	}
	return string(buf[n : n+int(u)]), buf[n+int(u):], nil
}

func encodeInsertBody(table string, rows [][]Value) []byte {
	var buf []byte
	buf = appendLenStr(buf, table)
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, row := range rows {
		buf = binary.AppendUvarint(buf, uint64(len(row)))
		buf = catalog.AppendRow(buf, row)
	}
	return buf
}

func decodeInsertBody(body []byte) (string, [][]Value, error) {
	table, buf, err := decodeLenStr(body)
	if err != nil {
		return "", nil, err
	}
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)) {
		return "", nil, errors.New("disqo: bad WAL insert row count")
	}
	buf = buf[sz:]
	rows := make([][]Value, 0, n)
	for i := uint64(0); i < n; i++ {
		arity, sz := binary.Uvarint(buf)
		if sz <= 0 || arity > uint64(len(buf)) {
			return "", nil, errors.New("disqo: bad WAL insert row arity")
		}
		buf = buf[sz:]
		var row []Value
		row, buf, err = catalog.DecodeRow(buf, int(arity))
		if err != nil {
			return "", nil, err
		}
		rows = append(rows, row)
	}
	return table, rows, nil
}

func encodeCreateTableBody(name string, cols []Column) []byte {
	var buf []byte
	buf = appendLenStr(buf, name)
	buf = binary.AppendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendLenStr(buf, c.Name)
		buf = append(buf, byte(c.Type))
	}
	return buf
}

func decodeCreateTableBody(body []byte) (string, []Column, error) {
	name, buf, err := decodeLenStr(body)
	if err != nil {
		return "", nil, err
	}
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)) {
		return "", nil, errors.New("disqo: bad WAL column count")
	}
	buf = buf[sz:]
	cols := make([]Column, 0, n)
	for i := uint64(0); i < n; i++ {
		var cname string
		cname, buf, err = decodeLenStr(buf)
		if err != nil {
			return "", nil, err
		}
		if len(buf) < 1 {
			return "", nil, errors.New("disqo: truncated WAL column type")
		}
		cols = append(cols, Column{Name: cname, Type: types.Kind(buf[0])})
		buf = buf[1:]
	}
	return name, cols, nil
}

func encodeLoadRSTBody(cfg datagen.RSTConfig) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.SFR))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.SFS))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.SFT))
	buf = binary.LittleEndian.AppendUint64(buf, cfg.Seed)
	return buf
}

func decodeLoadRSTBody(body []byte) (datagen.RSTConfig, error) {
	if len(body) != 32 {
		return datagen.RSTConfig{}, errors.New("disqo: bad WAL load-rst body")
	}
	return datagen.RSTConfig{
		SFR:  math.Float64frombits(binary.LittleEndian.Uint64(body)),
		SFS:  math.Float64frombits(binary.LittleEndian.Uint64(body[8:])),
		SFT:  math.Float64frombits(binary.LittleEndian.Uint64(body[16:])),
		Seed: binary.LittleEndian.Uint64(body[24:]),
	}, nil
}

func encodeLoadTPCHBody(cfg datagen.TPCHConfig) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.SF))
	buf = binary.LittleEndian.AppendUint64(buf, cfg.Seed)
	buf = binary.AppendUvarint(buf, uint64(len(cfg.Tables)))
	for _, t := range cfg.Tables {
		buf = appendLenStr(buf, t)
	}
	return buf
}

func decodeLoadTPCHBody(body []byte) (datagen.TPCHConfig, error) {
	var cfg datagen.TPCHConfig
	if len(body) < 16 {
		return cfg, errors.New("disqo: bad WAL load-tpch body")
	}
	cfg.SF = math.Float64frombits(binary.LittleEndian.Uint64(body))
	cfg.Seed = binary.LittleEndian.Uint64(body[8:])
	buf := body[16:]
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)) {
		return cfg, errors.New("disqo: bad WAL load-tpch table count")
	}
	buf = buf[sz:]
	for i := uint64(0); i < n; i++ {
		var t string
		var err error
		t, buf, err = decodeLenStr(buf)
		if err != nil {
			return cfg, err
		}
		cfg.Tables = append(cfg.Tables, t)
	}
	return cfg, nil
}

// ---------------------------------------------------------------------
// Logging hook.

// logging reports whether the current mutation must append a WAL
// record: a durable DB outside of recovery replay (replaying a record
// must not re-log it).
func (db *DB) logging() bool {
	return db.wal != nil && !db.recovering
}

// writeGuard rejects a write statement up front (before it commits in
// memory) when the WAL has sealed: once a record failed to reach disk,
// admitting further in-memory commits would let visible state drift
// arbitrarily far from the durable prefix. Called under writeMu.
func (db *DB) writeGuard() error {
	if db.logging() {
		if cause := db.wal.Sealed(); cause != nil {
			return fmt.Errorf("%w (cause: %v)", ErrWALSealed, cause)
		}
	}
	return nil
}

// logLocked appends one record describing a mutation that has already
// committed in memory. The caller holds writeMu; preVersion is the
// catalog commit counter before the mutation, the pre-image guard
// replay verifies. A failed append seals the log and surfaces here —
// the in-memory commit stands until restart, but the caller learns its
// statement did not reach the disk.
func (db *DB) logLocked(kind wal.Kind, preVersion uint64, body []byte) error {
	if _, err := db.wal.Append(kind, preVersion, body); err != nil {
		return fmt.Errorf("disqo: statement applied in memory but not logged: %w", err)
	}
	db.sinceCheckpoint++
	if db.checkpointEvery > 0 && db.sinceCheckpoint >= db.checkpointEvery {
		// Auto-checkpoint failure must not fail the statement — its
		// record is already durable. The error is kept for WALStats.
		if err := db.checkpointLocked(); err != nil {
			db.lastCkptErr = err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Checkpointing.

// Checkpoint serializes the catalog's current immutable table versions
// (plus view definitions) to a snapshot file and truncates the WAL —
// see the protocol in internal/wal. It requires WithDataDir.
func (db *DB) Checkpoint() error {
	if err := db.begin(); err != nil {
		return err
	}
	defer db.end()
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.wal == nil {
		return errors.New("disqo: Checkpoint requires a durable database (WithDataDir)")
	}
	return db.checkpointLocked()
}

// checkpointLocked runs the checkpoint under writeMu, so the serialized
// state is exactly one commit boundary.
func (db *DB) checkpointLocked() error {
	st := wal.CheckpointState{
		Tables:         db.cat.Snapshot().Tables(),
		CatalogVersion: db.cat.Version(),
		Views:          db.viewDefs(),
	}
	if err := db.wal.Checkpoint(db.dataDir, st); err != nil {
		return err
	}
	db.sinceCheckpoint = 0
	db.lastCkptErr = nil
	return nil
}

// viewDefs snapshots the view definitions as (name, CREATE VIEW SQL)
// pairs for checkpointing.
func (db *DB) viewDefs() []wal.View {
	db.viewMu.RLock()
	defer db.viewMu.RUnlock()
	out := make([]wal.View, 0, len(db.viewSQL))
	for name, sql := range db.viewSQL {
		out = append(out, wal.View{Name: name, SQL: sql})
	}
	return out
}

// WALStats returns the write-ahead log's counters. ok is false for a
// volatile DB (WithDataDir unset).
func (db *DB) WALStats() (WALStats, bool) {
	if db.wal == nil {
		return WALStats{}, false
	}
	return db.wal.Stats(), true
}

// ---------------------------------------------------------------------
// Recovery.

// openDurable attaches the durability layer during Open: recover the
// committed state from dir, replay the log tail through the normal
// serialized write path, and open the log for appending.
func (db *DB) openDurable(o OpenOptions) error {
	rs, err := wal.Recover(o.DataDir)
	if err != nil {
		return err
	}
	db.dataDir = o.DataDir
	db.checkpointEvery = o.CheckpointEvery
	if len(rs.Tables) > 0 || rs.CatalogVersion > 0 {
		db.cat.Restore(rs.Tables, rs.CatalogVersion)
	}
	// Views install from their CREATE VIEW text without re-validation: a
	// view may legally outlive tables it references (the engine checks
	// at definition and query time, not at drop time), so validating
	// here could reject a state that was perfectly reachable live.
	for _, v := range rs.Views {
		stmt, err := sqlparser.ParseStatement(v.SQL)
		if err != nil {
			return &RecoveryError{Reason: fmt.Sprintf("snapshot view %q does not parse: %v", v.Name, err)}
		}
		cv, ok := stmt.(*sqlparser.CreateViewStmt)
		if !ok {
			return &RecoveryError{Reason: fmt.Sprintf("snapshot view %q is not a CREATE VIEW", v.Name)}
		}
		db.views[strings.ToLower(v.Name)] = cv.Body
		db.viewSQL[strings.ToLower(v.Name)] = v.SQL
	}
	db.recovering = true
	for _, rec := range rs.Records {
		if err := db.applyRecord(rec); err != nil {
			db.recovering = false
			return err
		}
		db.replayed.Add(1)
	}
	db.recovering = false
	// Cache epochs: a fresh process starts with empty caches, but bump
	// the view epoch anyway so any plan keyed before this point (e.g. a
	// future shared-cache transport) can never alias post-recovery state.
	db.viewEpoch.Add(1)
	l, err := wal.Open(o.DataDir, rs.LastLSN, wal.Options{
		SyncEvery:    o.SyncEvery,
		SyncInterval: o.SyncInterval,
		Injector:     o.walFault,
	})
	if err != nil {
		return err
	}
	db.wal = l
	return nil
}

// applyRecord replays one log record through the ordinary write path
// (with logging suppressed), verifying the catalog pre-image version
// first: if replay has diverged from what the log says it applied
// against, recovery fails closed rather than building a different
// database.
func (db *DB) applyRecord(rec wal.Record) error {
	if v := db.cat.Version(); v != rec.AppliedVersion {
		return &RecoveryError{
			LSN:    rec.LSN,
			Reason: fmt.Sprintf("replay diverged: catalog at version %d, record expects pre-image %d", v, rec.AppliedVersion),
		}
	}
	fail := func(err error) error {
		return &RecoveryError{
			LSN:    rec.LSN,
			Reason: fmt.Sprintf("replaying %s record: %v", rec.Kind, err),
		}
	}
	switch rec.Kind {
	case wal.KindSQL:
		if _, err := db.Exec(string(rec.Body)); err != nil {
			return fail(err)
		}
	case wal.KindInsert:
		table, rows, err := decodeInsertBody(rec.Body)
		if err != nil {
			return fail(err)
		}
		if err := db.Insert(table, rows...); err != nil {
			return fail(err)
		}
	case wal.KindCreateTable:
		name, cols, err := decodeCreateTableBody(rec.Body)
		if err != nil {
			return fail(err)
		}
		if err := db.CreateTable(name, cols); err != nil {
			return fail(err)
		}
	case wal.KindDropTable:
		if err := db.DropTable(string(rec.Body)); err != nil {
			return fail(err)
		}
	case wal.KindLoadRST:
		cfg, err := decodeLoadRSTBody(rec.Body)
		if err != nil {
			return fail(err)
		}
		if err := db.loadRST(cfg); err != nil {
			return fail(err)
		}
	case wal.KindLoadTPCH:
		cfg, err := decodeLoadTPCHBody(rec.Body)
		if err != nil {
			return fail(err)
		}
		if err := db.loadTPCH(cfg); err != nil {
			return fail(err)
		}
	default:
		return &RecoveryError{LSN: rec.LSN, Reason: fmt.Sprintf("unknown record kind %d", uint8(rec.Kind))}
	}
	return nil
}

// ---------------------------------------------------------------------
// State fingerprint.

// StateFingerprint hashes the database's logical state — every table's
// name, columns, and ordered rows, plus every view definition — into
// one 64-bit value. Two databases that executed the same statement
// sequence have equal fingerprints; the crash-chaos suite uses this to
// assert a recovered state is a sequentially-legal prefix of its churn
// script. Table version counters are deliberately excluded (a recovered
// catalog resumes at the same commit counter, but replay-internal
// version numbering is an implementation detail, not logical state).
func (db *DB) StateFingerprint() uint64 {
	h := fnv.New64a()
	snap := db.cat.Snapshot()
	for _, name := range snap.Names() {
		t, err := snap.Lookup(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(h, "table %s (", t.Name)
		for _, c := range t.Columns {
			fmt.Fprintf(h, "%s %s,", strings.ToLower(c.Name), c.Type)
		}
		fmt.Fprintf(h, ") rows %d\n", len(t.Rel.Tuples))
		for _, row := range t.Rel.Tuples {
			h.Write([]byte(types.FormatTuple(row)))
			h.Write([]byte{'\n'})
		}
	}
	db.viewMu.RLock()
	names := make([]string, 0, len(db.viewSQL))
	for n := range db.viewSQL {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "view %s := %s\n", n, db.viewSQL[n])
	}
	db.viewMu.RUnlock()
	return h.Sum64()
}
