package disqo

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestDurableRoundTrip is the basic life of a durable DB: log, close,
// recover, fingerprint-identical state; then checkpoint, reopen from
// the snapshot alone, same state again.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE r (a INTEGER, b VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO r VALUES (1, 'x'), (2, NULL)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("r", []Value{Int(3), String("z")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE VIEW big AS SELECT DISTINCT * FROM r WHERE a > 1"); err != nil {
		t.Fatal(err)
	}
	fp := db.StateFingerprint()
	st, ok := db.WALStats()
	if !ok || st.Appends != 4 || st.LastLSN != 4 {
		t.Fatalf("wal stats after 4 statements: %+v ok=%v", st, ok)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.StateFingerprint(); got != fp {
		t.Fatalf("fingerprint after recovery: %016x, want %016x", got, fp)
	}
	if ws := db2.WorkloadStats(); ws.RecoveryReplayedRecords != 4 || ws.WAL == nil {
		t.Fatalf("recovery stats: %+v", ws.RecoveryReplayedRecords)
	}
	res, err := db2.Query("SELECT DISTINCT * FROM big")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("view after recovery: rows=%d err=%v", len(res.Rows), err)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st, _ := db2.WALStats(); st.Truncations != 1 {
		t.Fatalf("truncations after checkpoint: %d", st.Truncations)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	db3, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := db3.StateFingerprint(); got != fp {
		t.Fatal("snapshot-only recovery diverged")
	}
	if ws := db3.WorkloadStats(); ws.RecoveryReplayedRecords != 0 {
		t.Fatalf("replayed %d records after a clean checkpoint", ws.RecoveryReplayedRecords)
	}
}

// TestRecoveryServesGoldenShapes is the leak-checked recovery golden:
// a reopened durable DB serves all six golden Fig. 2/3 plan shapes
// byte-identically to the pre-crash DB, under both strategies involved
// and both execution paths.
func TestRecoveryServesGoldenShapes(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, highA4 := range []bool{false, true} {
		dir := t.TempDir()
		ref := chaosDB(t, 64, highA4)
		live, err := Open(WithDataDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		seedChaosData(t, live, 64, highA4)
		if live.StateFingerprint() != ref.StateFingerprint() {
			t.Fatal("durable and volatile twins diverged before the crash")
		}
		// Golden answers from the pre-crash DB, then an unclean cut: no
		// Close, just drop the handle — the WAL (SyncEvery=1) carries all.
		type key struct {
			plan int
			path ExecutionPath
		}
		golden := map[key]string{}
		for pi, plan := range chaosPlans {
			if plan.highA4 != highA4 {
				continue
			}
			for _, path := range []ExecutionPath{PathRow, PathVector} {
				res, err := live.Query(plan.sql, WithStrategy(plan.strategy), WithExecutionPath(path))
				if err != nil {
					t.Fatalf("%s pre-crash: %v", plan.name, err)
				}
				golden[key{pi, path}] = rowsFingerprint(res)
			}
		}
		liveFP := live.StateFingerprint()
		if err := live.Close(); err != nil { // flush the final group-commit batch
			t.Fatal(err)
		}

		re, err := Open(WithDataDir(dir))
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		if re.StateFingerprint() != liveFP {
			t.Fatal("recovered state diverged")
		}
		for pi, plan := range chaosPlans {
			if plan.highA4 != highA4 {
				continue
			}
			for _, path := range []ExecutionPath{PathRow, PathVector} {
				res, err := re.Query(plan.sql, WithStrategy(plan.strategy), WithExecutionPath(path))
				if err != nil {
					t.Fatalf("%s post-recovery: %v", plan.name, err)
				}
				if got := rowsFingerprint(res); got != golden[key{pi, path}] {
					t.Fatalf("%s (%v): post-recovery rows differ from pre-crash", plan.name, path)
				}
			}
		}
		re.Close()
		ref.Close()
	}
	// Leak check: closed durable DBs must not leave sync tickers or debug
	// servers behind. Allow the runtime a moment to retire goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines grew %d -> %d after closing every DB", before, n)
	}
}

// seedChaosData mirrors chaosDBWith's dataset onto an existing DB.
func seedChaosData(t *testing.T, db *DB, rows int, highA4 bool) {
	t.Helper()
	for _, spec := range []struct{ name, p string }{{"r", "a"}, {"s", "b"}, {"t", "c"}} {
		cols := []Column{
			{Name: spec.p + "1", Type: TypeInt},
			{Name: spec.p + "2", Type: TypeInt},
			{Name: spec.p + "3", Type: TypeInt},
			{Name: spec.p + "4", Type: TypeInt},
		}
		if err := db.CreateTable(spec.name, cols); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rows; i++ {
		a4 := int64((i * 37) % 2000)
		if highA4 {
			a4 = int64(1600 + i)
		}
		if err := db.Insert("r", []Value{Int(int64(i % 40)), Int(int64(i % 8)), Int(int64(i)), Int(a4)}); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("s", []Value{Int(int64(i)), Int(int64(i % 8)), Int(int64(i % 3)), Int(int64((i * 53) % 3000))}); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("t", []Value{Int(int64(i)), Int(int64(i % 4)), Int(int64(i % 5)), Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupCommitRecoversSyncedPrefix: with SyncEvery=8 an abrupt cut
// may lose the unsynced tail but must still recover a legal prefix —
// and Close flushes everything.
func TestGroupCommitRecoversSyncedPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(WithDataDir(dir), WithSyncEvery(8), WithSyncInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE g (k INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Exec("INSERT INTO g VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := db.WALStats()
	if st.Syncs == 0 || st.PendingRecords == 0 {
		t.Fatalf("group commit not exercised: %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	n, err := db2.RowCount("g")
	if err != nil || n != 20 {
		t.Fatalf("after clean close: %d rows, err=%v (Close must flush the batch)", n, err)
	}
}

// TestCloseRejectsAndDrains: Close rejects new work with ErrClosed,
// waits for in-flight statements, and is idempotent.
func TestCloseRejectsAndDrains(t *testing.T) {
	db, _ := Open()
	if err := db.CreateTable("c", []Column{{Name: "a", Type: TypeInt}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := db.Query("SELECT DISTINCT * FROM c"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close: %v", err)
	}
	if _, err := db.Exec("INSERT INTO c VALUES (1)"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exec after Close: %v", err)
	}
	if err := db.Insert("c", []Value{Int(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v", err)
	}
	if _, err := db.Analyze("SELECT DISTINCT * FROM c"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Analyze after Close: %v", err)
	}
	// Prepared statements go through the same lifecycle bracket: Prepare
	// itself is a pure parse, but execution is rejected.
	stmt, err := db.Prepare("SELECT DISTINCT * FROM c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Stmt.Query after Close: %v", err)
	}
}

// TestCloseDrainTimeout: a query that outlives the drain budget makes
// Close return ErrDrainTimeout while still shutting the DB down.
func TestCloseDrainTimeout(t *testing.T) {
	db, _ := Open(WithDrainTimeout(30 * time.Millisecond))
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		// Simulate a wedged in-flight call: begin() without end() until
		// released. (Driving a real slow query here would race with the
		// drain; the lifecycle only sees begin/end either way.)
		if err := db.begin(); err != nil {
			panic(err)
		}
		close(started)
		<-release
		db.end()
	}()
	<-started
	if err := db.Close(); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Close with a stuck query: %v, want ErrDrainTimeout", err)
	}
	close(release)
	// The laggard's end() after a timed-out drain must not panic or hang.
	time.Sleep(10 * time.Millisecond)
	if err := db.Close(); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("idempotent Close lost its error: %v", err)
	}
}

// TestCloseWaitsForInflight: without a timeout, Close blocks until the
// in-flight call retires, then returns nil.
func TestCloseWaitsForInflight(t *testing.T) {
	db, _ := Open()
	if err := db.begin(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- db.Close() }()
	select {
	case err := <-done:
		t.Fatalf("Close returned %v with work in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	db.end()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the drain emptied")
	}
}

// TestVolatileUnaffected: without WithDataDir no WAL exists, no files
// are written, and WALStats/Checkpoint report the volatile mode.
func TestVolatileUnaffected(t *testing.T) {
	db, _ := Open()
	defer db.Close()
	if err := db.CreateTable("v", []Column{{Name: "a", Type: TypeInt}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.WALStats(); ok {
		t.Fatal("volatile DB reports WAL stats")
	}
	if err := db.Checkpoint(); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("volatile Checkpoint: %v", err)
	}
	if ws := db.WorkloadStats(); ws.WAL != nil {
		t.Fatal("volatile WorkloadStats carries a WAL section")
	}
}

// TestDurableMetricsExposition: the WAL families appear on /metrics in
// durable mode with live counter values.
func TestDurableMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE m (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	text := string(prometheusText(db.WorkloadStats()))
	for _, want := range []string{
		"disqo_wal_appends_total 1",
		"disqo_wal_syncs_total 1",
		"disqo_wal_fsync_duration_seconds_bucket",
		"disqo_wal_sealed 0",
		"disqo_recovery_replayed_records 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	vol, _ := Open()
	defer vol.Close()
	if strings.Contains(string(prometheusText(vol.WorkloadStats())), "disqo_wal_") {
		t.Fatal("volatile /metrics exposes WAL families")
	}
}

// TestRecoveryViewOutlivesTable: a view whose base table was dropped
// after the view's definition must recover (views are installed from
// their SQL without re-validation).
func TestRecoveryViewOutlivesTable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"CREATE TABLE base (a INTEGER)",
		"INSERT INTO base VALUES (1)",
		"CREATE VIEW dangling AS SELECT DISTINCT * FROM base WHERE a > 0",
		"DROP TABLE base",
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	fp := db.StateFingerprint()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatalf("recovery with a dangling view: %v", err)
	}
	defer db2.Close()
	if db2.StateFingerprint() != fp {
		t.Fatal("dangling-view state diverged")
	}
	// Querying the dangling view still fails (as it did pre-crash), but
	// the engine itself is healthy.
	if _, err := db2.Query("SELECT DISTINCT * FROM dangling"); err == nil {
		t.Fatal("dangling view query succeeded without its table")
	}
}
