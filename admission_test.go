package disqo

// Admission-control suite: unit tests for the FIFO gate itself, plus
// end-to-end tests that hold a real query mid-flight (via a blocking
// tracer) and assert the documented shedding behavior — immediate
// ErrOverloaded on a full queue, ErrOverloaded after the wait budget,
// FIFO slot handoff, and context cancellation while queued. All errors
// must arrive as *QueryError with ErrOverloaded reachable via errors.Is.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disqo/internal/physical"
	"disqo/internal/testutil"
	"disqo/internal/types"
)

// blockTracer parks query execution at a chosen traced event, turning
// "a query is mid-flight" into a deterministic test state: started is
// closed when the query reaches the blocking site, and the query stays
// parked until release is closed. With onClose it parks at the SECOND
// OpClose — by then the first-finished operator's output has been pinned
// into the shared memo, so the parked query provably holds resident
// tuples; otherwise it parks at the first OpOpen, before any work.
type blockTracer struct {
	onClose bool
	closes  atomic.Int64
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockTracer(onClose bool) *blockTracer {
	return &blockTracer{onClose: onClose, started: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockTracer) block() {
	b.once.Do(func() {
		close(b.started)
		<-b.release
	})
}

func (b *blockTracer) OpOpen(physical.Node) {
	if !b.onClose {
		b.block()
	}
}

func (b *blockTracer) OpMorsel(physical.Node, int, int) {}

func (b *blockTracer) OpClose(physical.Node, int64, time.Duration) {
	if b.onClose && b.closes.Add(1) >= 2 {
		b.block()
	}
}

const gateQuery = `SELECT DISTINCT * FROM k`

// smallDB builds a DB (with the given open options) holding one table k
// with rows two-column rows.
func gateDB(t testing.TB, rows int, opts ...OpenOption) *DB {
	t.Helper()
	db, _ := Open(opts...)
	cols := []Column{{Name: "v", Type: types.KindInt}, {Name: "w", Type: types.KindInt}}
	if err := db.CreateTable("k", cols); err != nil {
		t.Fatal(err)
	}
	batch := make([][]Value, rows)
	for i := range batch {
		batch[i] = []Value{types.NewInt(int64(i)), types.NewInt(int64(i % 7))}
	}
	if err := db.Insert("k", batch...); err != nil {
		t.Fatal(err)
	}
	return db
}

// waitSaturation polls the gate until it reports the wanted load, so
// tests order events without sleeping blind.
func waitSaturation(t *testing.T, g *gate, active, queued int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a, q := g.saturation()
		if a == active && q == queued {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	a, q := g.saturation()
	t.Fatalf("gate never reached active=%d queued=%d (stuck at active=%d queued=%d)", active, queued, a, q)
}

func TestGateNilAdmitsEverything(t *testing.T) {
	var g *gate
	if g := newGate(0, 10, time.Second); g != nil {
		t.Fatal("max=0 should build a nil (unlimited) gate")
	}
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("nil gate refused admission: %v", err)
	}
	g.release()
	if a, q := g.saturation(); a != 0 || q != 0 {
		t.Fatalf("nil gate reports load %d/%d", a, q)
	}
}

func TestGateShedsWhenQueueFull(t *testing.T) {
	g := newGate(1, 0, 0)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	g.release()
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("slot freed but admission failed: %v", err)
	}
	g.release()
}

func TestGateFIFOHandoff(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	g := newGate(1, 2, 0)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	for _, name := range []string{"first", "second"} {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.acquire(context.Background()); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			order <- name
			g.release()
		}()
		// Enqueue strictly in order: wait until this waiter is queued
		// before starting the next.
		want := 1
		if name == "second" {
			want = 2
		}
		waitSaturation(t, g, 1, want)
	}
	g.release()
	wg.Wait()
	if a, b := <-order, <-order; a != "first" || b != "second" {
		t.Fatalf("handoff order was %s, %s; want first, second", a, b)
	}
	if a, q := g.saturation(); a != 0 || q != 0 {
		t.Fatalf("gate not drained: active=%d queued=%d", a, q)
	}
}

func TestGateWaitBudgetExpires(t *testing.T) {
	g := newGate(1, 2, 20*time.Millisecond)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired wait returned %v, want ErrOverloaded", err)
	}
	g.release()
	if a, q := g.saturation(); a != 0 || q != 0 {
		t.Fatalf("abandoned waiter left load: active=%d queued=%d", a, q)
	}
}

func TestGateContextCancelWhileQueued(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	g := newGate(1, 2, 0)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- g.acquire(ctx) }()
	waitSaturation(t, g, 1, 1)
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	g.release()
	if a, q := g.saturation(); a != 0 || q != 0 {
		t.Fatalf("cancelled waiter left load: active=%d queued=%d", a, q)
	}
}

// TestAdmissionShedsImmediately is the end-to-end shape of the queue-full
// path: one slot, no queue, one query parked mid-flight — the next Query
// call must return ErrOverloaded at once, wrapped in a *QueryError.
func TestAdmissionShedsImmediately(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := gateDB(t, 16, WithMaxConcurrent(1), WithMaxQueued(-1))
	tr := newBlockTracer(false)
	done := make(chan error, 1)
	go func() {
		_, err := db.Query(gateQuery, WithTracer(tr))
		done <- err
	}()
	<-tr.started

	_, err := db.Query(gateQuery)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated DB returned %v, want ErrOverloaded", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("shed error %T is not a *QueryError: %v", err, err)
	}
	if qe.Query != gateQuery {
		t.Fatalf("shed *QueryError lost the query text: %q", qe.Query)
	}

	close(tr.release)
	if err := <-done; err != nil {
		t.Fatalf("parked query failed after release: %v", err)
	}
	// The slot is free again: admission must succeed now.
	if _, err := db.Query(gateQuery); err != nil {
		t.Fatalf("query after release failed: %v", err)
	}
}

// TestAdmissionQueueHandsOff verifies the happy path behind a full gate:
// a queued query waits (no shedding without a wait budget) and inherits
// the slot the moment the running query finishes.
func TestAdmissionQueueHandsOff(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := gateDB(t, 16, WithMaxConcurrent(1), WithMaxQueued(4))
	tr := newBlockTracer(false)
	first := make(chan error, 1)
	go func() {
		_, err := db.Query(gateQuery, WithTracer(tr))
		first <- err
	}()
	<-tr.started

	second := make(chan error, 1)
	go func() {
		_, err := db.Query(gateQuery)
		second <- err
	}()
	waitSaturation(t, db.gate, 1, 1)

	select {
	case err := <-second:
		t.Fatalf("queued query returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(tr.release)
	if err := <-first; err != nil {
		t.Fatalf("first query: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("queued query after handoff: %v", err)
	}
}

// TestAdmissionWaitBudget: a queued query whose WithAdmissionWait budget
// expires is shed with ErrOverloaded even though the queue had room.
func TestAdmissionWaitBudget(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := gateDB(t, 16, WithMaxConcurrent(1), WithMaxQueued(4), WithAdmissionWait(25*time.Millisecond))
	tr := newBlockTracer(false)
	done := make(chan error, 1)
	go func() {
		_, err := db.Query(gateQuery, WithTracer(tr))
		done <- err
	}()
	<-tr.started

	_, err := db.Query(gateQuery)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired wait returned %v, want ErrOverloaded", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("shed error %T is not a *QueryError", err)
	}

	close(tr.release)
	if err := <-done; err != nil {
		t.Fatalf("parked query failed: %v", err)
	}
}

// TestAdmissionContextCancelWhileQueued: cancelling a queued query's
// context surfaces context.Canceled (not ErrOverloaded) through the
// *QueryError wrapper.
func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := gateDB(t, 16, WithMaxConcurrent(1), WithMaxQueued(4))
	tr := newBlockTracer(false)
	done := make(chan error, 1)
	go func() {
		_, err := db.Query(gateQuery, WithTracer(tr))
		done <- err
	}()
	<-tr.started

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, gateQuery)
		queued <- err
	}()
	waitSaturation(t, db.gate, 1, 1)
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued query returned %v, want context.Canceled", err)
	}

	close(tr.release)
	if err := <-done; err != nil {
		t.Fatalf("parked query failed: %v", err)
	}
}
