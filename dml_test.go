package disqo

import (
	"strings"
	"testing"
)

func TestDeleteBasics(t *testing.T) {
	db, _ := Open()
	db.Exec("CREATE TABLE t (x INT, y INT)")
	db.Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (2, 20)")
	n, err := db.Exec("DELETE FROM t WHERE x = 2")
	if err != nil || n != 2 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	res, _ := db.Query("SELECT x FROM t ORDER BY x")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 3 {
		t.Errorf("rows after delete: %v", res.Rows)
	}
	// Unconditional delete.
	n, err = db.Exec("DELETE FROM t")
	if err != nil || n != 2 {
		t.Fatalf("delete all = %d, %v", n, err)
	}
	if c, _ := db.RowCount("t"); c != 0 {
		t.Errorf("count = %d", c)
	}
}

func TestDeleteWithSubquery(t *testing.T) {
	db := smallDB(t)
	before, _ := db.RowCount("r")
	// Delete R rows whose correlation count matches — the DML predicate
	// goes through the full unnesting pipeline.
	n, err := db.Exec(`DELETE FROM r
	        WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2) OR a4 > 2500`)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := db.RowCount("r")
	if before-after != n {
		t.Errorf("deleted %d but row count moved %d → %d", n, before, after)
	}
	// Everything the predicate matches must be gone.
	res, err := db.Query(`SELECT * FROM r
	        WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2) OR a4 > 2500`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("%d matching rows survived the delete", len(res.Rows))
	}
}

func TestUpdateBasics(t *testing.T) {
	db, _ := Open()
	db.Exec("CREATE TABLE t (x INT, y INT)")
	db.Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
	n, err := db.Exec("UPDATE t SET y = y + 1, x = 0 WHERE y >= 20")
	if err != nil || n != 2 {
		t.Fatalf("update = %d, %v", n, err)
	}
	res, _ := db.Query("SELECT x, y FROM t ORDER BY y")
	got := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		got[i] = r[0].String() + "," + r[1].String()
	}
	want := []string{"1,10", "0,21", "0,31"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestUpdateSetFromSubquery(t *testing.T) {
	db, _ := Open()
	db.Exec("CREATE TABLE t (x INT, y INT)")
	db.Exec("CREATE TABLE u (k INT, v INT)")
	db.Exec("INSERT INTO t VALUES (1, 0), (2, 0)")
	db.Exec("INSERT INTO u VALUES (1, 100), (1, 50), (2, 7)")
	n, err := db.Exec("UPDATE t SET y = (SELECT SUM(v) FROM u WHERE k = x)")
	if err != nil || n != 2 {
		t.Fatalf("update = %d, %v", n, err)
	}
	res, err := db.Query("SELECT x, y FROM t ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].Int() != 150 || res.Rows[1][1].Int() != 7 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestUpdateErrors(t *testing.T) {
	db, _ := Open()
	db.Exec("CREATE TABLE t (x INT)")
	if _, err := db.Exec("UPDATE t SET zz = 1"); err == nil {
		t.Error("unknown SET column must fail")
	}
	if _, err := db.Exec("UPDATE missing SET x = 1"); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := db.Exec("DELETE FROM missing"); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestViews(t *testing.T) {
	db := smallDB(t)
	if _, err := db.Exec(`CREATE VIEW big AS SELECT a1, a4 FROM r WHERE a4 > 1500`); err != nil {
		t.Fatal(err)
	}
	if got := db.Views(); len(got) != 1 || got[0] != "big" {
		t.Errorf("Views = %v", got)
	}
	res, err := db.Query("SELECT COUNT(*) AS n FROM big")
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := db.Query("SELECT COUNT(*) AS n FROM r WHERE a4 > 1500")
	if res.Rows[0][0].Int() != direct.Rows[0][0].Int() {
		t.Errorf("view count %v vs direct %v", res.Rows[0][0], direct.Rows[0][0])
	}
	// Views join with base tables and can carry nested disjunctive
	// queries inside.
	if _, err := db.Exec(`CREATE VIEW fancy AS
	        SELECT a1, a2 FROM r
	        WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2) OR a4 > 1500`); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query("SELECT DISTINCT f.a1 FROM fancy f, s WHERE f.a2 = s.b2")
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Aliased double use of the same view in one FROM.
	if _, err := db.Query("SELECT v1.a1 FROM big v1, big v2 WHERE v1.a1 = v2.a1"); err != nil {
		t.Fatalf("double view use: %v", err)
	}
	if _, err := db.Exec("DROP VIEW big"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT * FROM big"); err == nil {
		t.Error("dropped view must be gone")
	}
	if _, err := db.Exec("DROP VIEW big"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestViewValidationAndConflicts(t *testing.T) {
	db := smallDB(t)
	if _, err := db.Exec("CREATE VIEW broken AS SELECT zz FROM r"); err == nil {
		t.Error("invalid view body must fail at definition")
	}
	if _, err := db.Exec("CREATE VIEW r AS SELECT a1 FROM r"); err == nil {
		t.Error("view shadowing a table must fail")
	}
	db.Exec("CREATE VIEW v AS SELECT a1 FROM r")
	if _, err := db.Exec("CREATE VIEW v AS SELECT a2 FROM r"); err == nil {
		t.Error("duplicate view must fail")
	}
}
