package disqo

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestRetrySucceedsAfterSheds: transient ErrOverloaded failures are
// retried and the eventual success is returned.
func TestRetrySucceedsAfterSheds(t *testing.T) {
	calls := 0
	p := DefaultRetryPolicy()
	p.BaseDelay = time.Microsecond
	v, err := Retry(context.Background(), p, func() (int, error) {
		calls++
		if calls < 3 {
			return 0, fmt.Errorf("wrapped: %w", ErrOverloaded)
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("got (%d, %v), want (42, nil)", v, err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// TestRetryNonRetryableFailsFast: errors outside the policy's RetryIf
// set surface immediately with no further attempts.
func TestRetryNonRetryableFailsFast(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Retry(context.Background(), DefaultRetryPolicy(), func() (int, error) {
		calls++
		return 0, boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want boom after 1 call", err, calls)
	}
}

// TestRetryExhaustsAttempts: the last error is returned after
// MaxAttempts total calls.
func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, Multiplier: 2}
	_, err := Retry(context.Background(), p, func() (int, error) {
		calls++
		return 0, ErrOverloaded
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

// TestRetryCtxCancelMidBackoff: a cancellation that lands while Retry
// sleeps between attempts aborts the wait promptly, and the returned
// error carries both the cancellation and the last attempt's error.
func TestRetryCtxCancelMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, Multiplier: 2}
	calls := 0
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Retry(ctx, p, func() (int, error) {
			calls++
			return 0, ErrOverloaded
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the first attempt enter its hour-long backoff
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not abort the backoff on cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want the last attempt's ErrOverloaded joined in", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// TestRetryCtxAlreadyDone: a pre-cancelled context makes no calls.
func TestRetryCtxAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := Retry(ctx, DefaultRetryPolicy(), func() (int, error) {
		calls++
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// TestRetryDelayCapAndJitterBounds: generated delays respect MaxDelay
// and the jitter envelope. Exercised through a fake clock is overkill —
// instead run with microsecond delays and just assert termination and
// attempt count under extreme jitter settings.
func TestRetryDelayCapAndJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: time.Microsecond,
		MaxDelay: 2 * time.Microsecond, Multiplier: 100, Jitter: 5 /* clamped to 1 */}
	calls := 0
	start := time.Now()
	_, err := Retry(context.Background(), p, func() (int, error) {
		calls++
		return 0, ErrOverloaded
	})
	if !errors.Is(err, ErrOverloaded) || calls != 6 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// 5 backoffs capped at 2µs with jitter ≤ 100% can't exceed 20µs of
	// nominal sleep; allow generous scheduler slack.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay cap ignored: %v elapsed", elapsed)
	}
}

// TestRetryAgainstGate: end-to-end — a gate of 1 slot and 0 queue sheds
// concurrent queries with ErrOverloaded, and Retry rides out the sheds.
func TestRetryAgainstGate(t *testing.T) {
	db, _ := Open(WithMaxConcurrent(1), WithMaxQueued(-1), WithoutCache())
	defer db.Close()
	if err := db.CreateTable("r", []Column{{Name: "a", Type: TypeInt}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("r", []Value{Int(1)}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	hold := make(chan struct{})
	go func() {
		// Occupy the only slot with a long query via the raw path.
		db.gate.acquire(nil)
		close(hold)
		<-stop
		db.gate.release()
	}()
	<-hold
	p := DefaultRetryPolicy()
	p.BaseDelay = time.Millisecond
	p.MaxAttempts = 3
	_, err := Retry(context.Background(), p, func() (*Result, error) {
		return db.Query("SELECT DISTINCT * FROM r")
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded while the slot is held, got %v", err)
	}
	close(stop)
	res, err := Retry(context.Background(), p, func() (*Result, error) {
		return db.Query("SELECT DISTINCT * FROM r")
	})
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after release: %v", err)
	}
}
