package disqo

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestRetrySucceedsAfterSheds: transient ErrOverloaded failures are
// retried and the eventual success is returned.
func TestRetrySucceedsAfterSheds(t *testing.T) {
	calls := 0
	p := DefaultRetryPolicy()
	p.BaseDelay = time.Microsecond
	v, err := Retry(context.Background(), p, func() (int, error) {
		calls++
		if calls < 3 {
			return 0, fmt.Errorf("wrapped: %w", ErrOverloaded)
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("got (%d, %v), want (42, nil)", v, err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// TestRetryNonRetryableFailsFast: errors outside the policy's RetryIf
// set surface immediately with no further attempts.
func TestRetryNonRetryableFailsFast(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Retry(context.Background(), DefaultRetryPolicy(), func() (int, error) {
		calls++
		return 0, boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want boom after 1 call", err, calls)
	}
}

// TestRetryExhaustsAttempts: the last error is returned after
// MaxAttempts total calls.
func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, Multiplier: 2}
	_, err := Retry(context.Background(), p, func() (int, error) {
		calls++
		return 0, ErrOverloaded
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

// TestRetryCtxCancelMidBackoff: a cancellation that lands while Retry
// sleeps between attempts aborts the wait promptly, and the returned
// error carries both the cancellation and the last attempt's error.
func TestRetryCtxCancelMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, Multiplier: 2}
	calls := 0
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Retry(ctx, p, func() (int, error) {
			calls++
			return 0, ErrOverloaded
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the first attempt enter its hour-long backoff
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not abort the backoff on cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want the last attempt's ErrOverloaded joined in", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// TestRetryCtxAlreadyDone: a pre-cancelled context makes no calls.
func TestRetryCtxAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := Retry(ctx, DefaultRetryPolicy(), func() (int, error) {
		calls++
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// TestRetryDelayCapAndJitterBounds: generated delays respect MaxDelay
// and the jitter envelope. Exercised through a fake clock is overkill —
// instead run with microsecond delays and just assert termination and
// attempt count under extreme jitter settings.
func TestRetryDelayCapAndJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: time.Microsecond,
		MaxDelay: 2 * time.Microsecond, Multiplier: 100, Jitter: 5 /* clamped to 1 */}
	calls := 0
	start := time.Now()
	_, err := Retry(context.Background(), p, func() (int, error) {
		calls++
		return 0, ErrOverloaded
	})
	if !errors.Is(err, ErrOverloaded) || calls != 6 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// 5 backoffs capped at 2µs with jitter ≤ 100% can't exceed 20µs of
	// nominal sleep; allow generous scheduler slack.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay cap ignored: %v elapsed", elapsed)
	}
}

// TestRetrySeededJitterDeterministic: a nonzero Seed makes the jitter
// schedule a pure function of the policy. The documented splitmix64
// stream is replayed directly (deterministic, uniform in [0,1),
// seed-sensitive), then a seeded policy is run twice end-to-end to
// check the behavior it drives is identical.
func TestRetrySeededJitterDeterministic(t *testing.T) {
	draw := func(seed uint64, n int) []float64 {
		s := seed
		out := make([]float64, n)
		for i := range out {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			out[i] = float64(z>>11) / (1 << 53)
		}
		return out
	}
	// Sanity on the reference stream itself: deterministic, in [0,1),
	// and seed-sensitive.
	a, b, c := draw(7, 8), draw(7, 8), draw(8, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, a[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter streams")
	}
	// End-to-end: a seeded policy still terminates with the documented
	// attempt count, and two runs behave identically (call counts and
	// final error — the sleeps themselves are microseconds).
	run := func() (int, error) {
		calls := 0
		p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond,
			Multiplier: 2, Jitter: 1, Seed: 42}
		_, err := Retry(context.Background(), p, func() (int, error) {
			calls++
			return 0, ErrOverloaded
		})
		return calls, err
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != 5 || c2 != 5 || !errors.Is(e1, ErrOverloaded) || !errors.Is(e2, ErrOverloaded) {
		t.Fatalf("seeded runs diverged: (%d,%v) vs (%d,%v)", c1, e1, c2, e2)
	}
}

// TestRetryReturnsEarlyBeforeDeadline: when the next backoff would
// sleep past the context deadline, Retry returns immediately instead of
// parking until the deadline fires — the caller gets its remaining
// budget back, with DeadlineExceeded and the last attempt's error
// joined.
func TestRetryReturnsEarlyBeforeDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 2 * time.Hour, Multiplier: 2}
	calls := 0
	start := time.Now()
	_, err := Retry(ctx, p, func() (int, error) {
		calls++
		return 0, ErrOverloaded
	})
	elapsed := time.Since(start)
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded joined", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want the last attempt's ErrOverloaded joined", err)
	}
	// The whole point: we did NOT sleep toward the 1h deadline (nor the
	// 2h backoff). Seconds of slack for a loaded CI box.
	if elapsed > 30*time.Second {
		t.Fatalf("Retry slept %v instead of returning early", elapsed)
	}
}

// TestRetryAgainstGate drives a one-slot admission gate that sheds
// concurrent queries with ErrOverloaded, and Retry rides out the sheds.
func TestRetryAgainstGate(t *testing.T) {
	db, _ := Open(WithMaxConcurrent(1), WithMaxQueued(-1), WithoutCache())
	defer db.Close()
	if err := db.CreateTable("r", []Column{{Name: "a", Type: TypeInt}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("r", []Value{Int(1)}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	hold := make(chan struct{})
	go func() {
		// Occupy the only slot with a long query via the raw path.
		db.gate.acquire(nil)
		close(hold)
		<-stop
		db.gate.release()
	}()
	<-hold
	p := DefaultRetryPolicy()
	p.BaseDelay = time.Millisecond
	p.MaxAttempts = 3
	_, err := Retry(context.Background(), p, func() (*Result, error) {
		return db.Query("SELECT DISTINCT * FROM r")
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded while the slot is held, got %v", err)
	}
	close(stop)
	res, err := Retry(context.Background(), p, func() (*Result, error) {
		return db.Query("SELECT DISTINCT * FROM r")
	})
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after release: %v", err)
	}
}
