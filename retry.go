package disqo

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy shapes Retry's capped exponential backoff. The zero value
// is not useful; start from DefaultRetryPolicy and override fields.
type RetryPolicy struct {
	// MaxAttempts is the total number of calls (first try included).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter spreads each delay uniformly over [d·(1−Jitter), d·(1+Jitter)]
	// so herds of shed queries don't re-arrive in lockstep. 0 disables
	// jitter; values are clamped to [0, 1].
	Jitter float64
	// Seed makes the jitter sequence deterministic: when nonzero, each
	// attempt's jitter draw comes from a splitmix64 stream seeded here
	// instead of the process-global random source, so a policy value
	// replays the exact same delay schedule — tests and distributed
	// clients that want per-node-distinct but reproducible backoff both
	// need this. 0 (the default) keeps the global source.
	Seed uint64
	// RetryIf classifies errors as transient; nil retries only
	// ErrOverloaded — the engine's sole documented back-off-and-retry
	// signal.
	RetryIf func(error) bool
}

// DefaultRetryPolicy retries ErrOverloaded up to 5 attempts with
// 5ms→500ms exponential backoff (×2 per attempt, ±50% jitter).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// Retry calls fn until it succeeds, fails with a non-retryable error,
// exhausts p.MaxAttempts, or ctx is done — whichever comes first. The
// last error is returned on exhaustion; a context cancellation during
// backoff returns ctx.Err() immediately (joined with the last attempt's
// error so callers keep both signals). When ctx carries a deadline that
// the next backoff would sleep past, Retry does not sleep at all: it
// returns context.DeadlineExceeded joined with the last error right
// away, so a caller with a 50ms budget is never parked for a 400ms
// backoff it cannot use. It replaces the hand-rolled sleep loops
// ErrOverloaded used to suggest:
//
//	res, err := disqo.Retry(ctx, disqo.DefaultRetryPolicy(),
//		func() (*disqo.Result, error) { return db.Query(sql) })
func Retry[T any](ctx context.Context, p RetryPolicy, fn func() (T, error)) (T, error) {
	var zero T
	if ctx == nil {
		ctx = context.Background()
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Multiplier < 1 {
		p.Multiplier = 1
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	retryable := p.RetryIf
	if retryable == nil {
		retryable = func(err error) bool { return errors.Is(err, ErrOverloaded) }
	}
	jitterDraw := rand.Float64
	if p.Seed != 0 {
		s := p.Seed
		jitterDraw = func() float64 {
			// splitmix64: the same mix faultinject uses, cheap and
			// well-distributed; 53 high bits make a uniform [0,1).
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			return float64(z>>11) / (1 << 53)
		}
	}
	delay := p.BaseDelay
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, errors.Join(err, lastErr)
		}
		v, err := fn()
		if err == nil {
			return v, nil
		}
		lastErr = err
		if attempt >= p.MaxAttempts || !retryable(err) {
			return zero, err
		}
		d := delay
		if p.MaxDelay > 0 && d > p.MaxDelay {
			d = p.MaxDelay
		}
		if p.Jitter > 0 && d > 0 {
			span := float64(d) * p.Jitter
			d = time.Duration(float64(d) - span + 2*span*jitterDraw())
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
			// The backoff would outlive the caller's budget: spending it
			// asleep only converts a useful "still overloaded" error into
			// a late one. Fail fast with both signals.
			return zero, errors.Join(context.DeadlineExceeded, lastErr)
		}
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return zero, errors.Join(ctx.Err(), lastErr)
			case <-t.C:
			}
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
	}
}
