package disqo_test

import (
	"testing"
	"time"

	"disqo"
	"disqo/internal/types"
)

// fuzzDB builds the tiny catalog the end-to-end fuzzer queries: the
// paper's r/s/t shape with a handful of rows, plus a string column so
// LIKE and type-mismatch paths are reachable.
func fuzzDB(tb testing.TB) *disqo.DB {
	db := disqo.Open()
	for _, spec := range []struct{ name, p string }{{"r", "a"}, {"s", "b"}, {"t", "c"}} {
		if err := db.CreateTable(spec.name, []disqo.Column{
			{Name: spec.p + "1", Type: types.KindInt},
			{Name: spec.p + "2", Type: types.KindInt},
			{Name: spec.p + "3", Type: types.KindString},
			{Name: spec.p + "4", Type: types.KindInt},
		}); err != nil {
			tb.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := db.Insert(spec.name, []disqo.Value{
				types.NewInt(int64(i % 3)), types.NewInt(int64(i % 2)),
				types.NewString(string(rune('a' + i))), types.NewInt(int64(i * 500)),
			}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return db
}

// FuzzQuery fuzzes the full pipeline — parse, translate, rewrite,
// lower, execute — against a tiny catalog under both the unnested and
// canonical strategies. The contract is the engine's robustness
// guarantee end to end: any input string produces rows or an error;
// panics anywhere in the lifecycle fail the fuzz run. Timeout and
// tuple-limit budgets keep pathological inputs (cross joins, deep
// nesting) from stalling the fuzzer.
//
// verify.sh runs this for a 10s smoke on every full verification;
// longer sessions: go test -fuzz=FuzzQuery .
func FuzzQuery(f *testing.F) {
	for _, seed := range []string{
		"SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2) OR a4 > 1500",
		"SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)",
		"SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2 AND b4 > 2500) OR a4 > 1500",
		"SELECT a1, COUNT(*) FROM r GROUP BY a1 HAVING COUNT(*) > 1 ORDER BY a1 DESC",
		"SELECT * FROM r, s WHERE a1 = b1 AND a3 LIKE 'a%'",
		"SELECT a1 FROM r WHERE a1 > ALL (SELECT b1 FROM s WHERE b2 = a2)",
		"SELECT a1 + a2 * a4 / a1 FROM r WHERE a3 IS NOT NULL",
	} {
		f.Add(seed)
	}
	db := fuzzDB(f)
	strategies := []disqo.Strategy{disqo.Unnested, disqo.Canonical}
	f.Fuzz(func(t *testing.T, sql string) {
		for _, s := range strategies {
			// Errors are expected on arbitrary input; crashes and hangs
			// are the failures being hunted.
			_, _ = db.Query(sql,
				disqo.WithStrategy(s),
				disqo.WithTimeout(2*time.Second),
				disqo.WithTupleLimit(100_000),
				disqo.WithWorkers(2))
		}
	})
}
