package disqo_test

import (
	"strings"
	"testing"
	"time"

	"disqo"
	"disqo/internal/types"
)

// fuzzDB builds the tiny catalog the end-to-end fuzzer queries: the
// paper's r/s/t shape with a handful of rows, plus a string column so
// LIKE and type-mismatch paths are reachable.
func fuzzDB(tb testing.TB) *disqo.DB {
	db, _ := disqo.Open()
	for _, spec := range []struct{ name, p string }{{"r", "a"}, {"s", "b"}, {"t", "c"}} {
		if err := db.CreateTable(spec.name, []disqo.Column{
			{Name: spec.p + "1", Type: types.KindInt},
			{Name: spec.p + "2", Type: types.KindInt},
			{Name: spec.p + "3", Type: types.KindString},
			{Name: spec.p + "4", Type: types.KindInt},
		}); err != nil {
			tb.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := db.Insert(spec.name, []disqo.Value{
				types.NewInt(int64(i % 3)), types.NewInt(int64(i % 2)),
				types.NewString(string(rune('a' + i))), types.NewInt(int64(i * 500)),
			}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return db
}

// fuzzFingerprint renders a result for identity comparison.
func fuzzFingerprint(res *disqo.Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, ","))
	b.WriteByte('\n')
	for _, row := range res.Rows {
		b.WriteString(types.FormatTuple(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// FuzzQuery fuzzes the full pipeline — parse, translate, rewrite,
// lower, execute — against a tiny catalog under both the unnested and
// canonical strategies. The contract is the engine's robustness
// guarantee end to end: any input string produces rows or an error;
// panics anywhere in the lifecycle fail the fuzz run. Timeout and
// tuple-limit budgets keep pathological inputs (cross joins, deep
// nesting) from stalling the fuzzer.
//
// Every parseable input is additionally round-tripped through the
// caching tiers: Prepare, then Stmt.Query twice — the first run
// executes and fills the result cache, the second is (normally) a warm
// hit — and any successful runs of one statement under one strategy
// must agree byte-for-byte with each other and with the ad-hoc
// db.Query path. A cache key collision, a stale entry, or a
// fingerprint that conflates two different plans all surface here as
// an identity mismatch.
//
// Each strategy also runs on both execution paths (vectorized and
// tuple-at-a-time row), and successes are compared across paths too:
// the row path is the correctness oracle, so a vectorized kernel that
// filters, projects, or joins differently — even in row order — fails
// the fuzz run as a differential mismatch.
//
// verify.sh runs this for a 10s smoke on every full verification;
// longer sessions: go test -fuzz=FuzzQuery .
func FuzzQuery(f *testing.F) {
	for _, seed := range []string{
		"SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2) OR a4 > 1500",
		"SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)",
		"SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2 AND b4 > 2500) OR a4 > 1500",
		"SELECT a1, COUNT(*) FROM r GROUP BY a1 HAVING COUNT(*) > 1 ORDER BY a1 DESC",
		"SELECT * FROM r, s WHERE a1 = b1 AND a3 LIKE 'a%'",
		"SELECT a1 FROM r WHERE a1 > ALL (SELECT b1 FROM s WHERE b2 = a2)",
		"SELECT a1 + a2 * a4 / a1 FROM r WHERE a3 IS NOT NULL",
	} {
		f.Add(seed)
	}
	db := fuzzDB(f)
	strategies := []disqo.Strategy{disqo.Unnested, disqo.Canonical}
	f.Fuzz(func(t *testing.T, sql string) {
		for _, s := range strategies {
			// Successful fingerprints under this strategy, across both
			// execution paths and all cache tiers: every pair must agree.
			var prints []string
			for _, path := range []disqo.ExecutionPath{disqo.PathVector, disqo.PathRow} {
				opts := []disqo.Option{
					disqo.WithStrategy(s),
					disqo.WithExecutionPath(path),
					disqo.WithTimeout(2 * time.Second),
					disqo.WithTupleLimit(100_000),
					disqo.WithWorkers(2),
				}
				// Errors are expected on arbitrary input; crashes, hangs, and
				// identity mismatches are the failures being hunted.
				adhoc, adhocErr := db.Query(sql, opts...)
				stmt, err := db.Prepare(sql)
				if err != nil {
					if adhocErr == nil {
						t.Fatalf("%s: db.Query accepted what Prepare rejected: %v", s, err)
					}
					continue
				}
				cold, coldErr := stmt.Query(opts...)
				warm, warmErr := stmt.Query(opts...)
				// Nondeterministic budgets (timeout) may fail one run and not
				// another, so identity is only asserted between successes.
				for _, r := range []struct {
					res *disqo.Result
					err error
				}{{adhoc, adhocErr}, {cold, coldErr}, {warm, warmErr}} {
					if r.err == nil {
						prints = append(prints, fuzzFingerprint(r.res))
					}
				}
				stmt.Close()
			}
			for i := 1; i < len(prints); i++ {
				if prints[i] != prints[0] {
					t.Fatalf("%s: runs of %q disagree across paths/caches:\n--- run 0 ---\n%s--- run %d ---\n%s",
						s, sql, prints[0], i, prints[i])
				}
			}
		}
	})
}
