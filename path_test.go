package disqo

// Differential suite for the vectorized execution path: the row path is
// the correctness oracle, and the vectorized path must reproduce its
// results byte for byte — same rows, same order — on every golden plan
// shape, at any worker count, cached or not. This is an internal test
// (package disqo) so it can reuse the chaos suite's golden shapes and
// dataset builders.

import (
	"fmt"
	"strings"
	"testing"
)

// TestPathDifferentialGoldenShapes runs each of the six golden shapes
// (Fig. 2a–d, Fig. 3a–b) on both execution paths at worker counts
// {1, 4}, against both a caching and a cache-disabled DB over the same
// dataset, executing each combination twice (cold fill, then warm
// hit). Every fingerprint must match the first one taken.
func TestPathDifferentialGoldenShapes(t *testing.T) {
	for _, plan := range chaosPlans {
		plan := plan
		t.Run(plan.name, func(t *testing.T) {
			cached := chaosDB(t, 64, plan.highA4)
			uncached := chaosDBWith(t, 64, plan.highA4, WithoutCache())
			var baseline string
			check := func(db *DB, tier string, path ExecutionPath, workers, run int) {
				t.Helper()
				res, err := db.Query(plan.sql,
					WithStrategy(plan.strategy), WithWorkers(workers), WithExecutionPath(path))
				if err != nil {
					t.Fatalf("%s path=%s workers=%d run=%d: %v", tier, path, workers, run, err)
				}
				fp := rowsFingerprint(res)
				if baseline == "" {
					if len(res.Rows) == 0 {
						t.Fatal("baseline returned no rows; the dataset no longer exercises the plan")
					}
					baseline = fp
					return
				}
				if fp != baseline {
					t.Fatalf("%s path=%s workers=%d run=%d diverged:\n--- got ---\n%s--- baseline ---\n%s",
						tier, path, workers, run, fp, baseline)
				}
			}
			for _, path := range []ExecutionPath{PathRow, PathVector} {
				for _, workers := range []int{1, 4} {
					for run := 0; run < 2; run++ {
						check(cached, "cached", path, workers, run)
						check(uncached, "uncached", path, workers, run)
					}
				}
			}
		})
	}
}

// TestMorselSizeByteIdentity pins the WithMorselSize contract: any
// size — including out-of-range values the executor clamps — produces
// byte-identical results on both paths at any worker count.
func TestMorselSizeByteIdentity(t *testing.T) {
	db := chaosDBWith(t, 512, false, WithoutCache())
	var baseline string
	for _, path := range []ExecutionPath{PathRow, PathVector} {
		for _, ms := range []int{0, -5, 1, 64, 100, 1024, 1 << 20} {
			res, err := db.Query(chaosQ1, WithWorkers(4), WithExecutionPath(path), WithMorselSize(ms))
			if err != nil {
				t.Fatalf("path=%s morsel=%d: %v", path, ms, err)
			}
			fp := rowsFingerprint(res)
			if baseline == "" {
				if len(res.Rows) == 0 {
					t.Fatal("no rows")
				}
				baseline = fp
				continue
			}
			if fp != baseline {
				t.Fatalf("path=%s morsel=%d changed the result", path, ms)
			}
		}
	}
}

// TestAnalyzePathAnnotation: EXPLAIN ANALYZE tags every executed node
// with the path that served it, and the plan-level report carries the
// per-node VecCalls counter.
func TestAnalyzePathAnnotation(t *testing.T) {
	db := chaosDB(t, 64, false)
	vec, err := db.Analyze(chaosQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vec, "path=vector") {
		t.Fatalf("default-path ANALYZE shows no vectorized node:\n%s", vec)
	}
	row, err := db.Analyze(chaosQ1, WithExecutionPath(PathRow))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(row, "path=vector") {
		t.Fatalf("row-path ANALYZE claims a vectorized node:\n%s", row)
	}
	if !strings.Contains(row, "path=row") {
		t.Fatalf("row-path ANALYZE carries no path annotation:\n%s", row)
	}
}

// TestExplainPathAnnotation: EXPLAIN annotates the physical plan with
// the static path decision before anything runs.
func TestExplainPathAnnotation(t *testing.T) {
	db := chaosDB(t, 64, false)
	out, err := db.Explain(chaosQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[path=vector]") || !strings.Contains(out, "[path=row]") {
		t.Fatalf("EXPLAIN should show a mixed-path plan for Q1:\n%s", out)
	}
	out, err = db.Explain(chaosQ1, WithExecutionPath(PathRow))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "[path=vector]") {
		t.Fatalf("row-path EXPLAIN claims vectorized nodes:\n%s", out)
	}
}

// TestVecCallsMetrics: the machine-readable report distinguishes
// kernel-served calls from row-path calls, and the counter is zero
// when the row path is forced.
func TestVecCallsMetrics(t *testing.T) {
	db := chaosDBWith(t, 64, false, WithoutCache())
	res, err := db.Query(chaosQ1, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, op := range res.Metrics().Ops {
		if op.VecCalls > op.Calls {
			t.Fatalf("op %d (%s): VecCalls %d exceeds Calls %d", op.ID, op.Op, op.VecCalls, op.Calls)
		}
		total += op.VecCalls
	}
	if total == 0 {
		t.Fatal("vector-path run reports zero VecCalls")
	}
	res, err = db.Query(chaosQ1, WithMetrics(), WithExecutionPath(PathRow))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Metrics().Ops {
		if op.VecCalls != 0 {
			t.Fatalf("row-path run reports VecCalls=%d on op %d (%s)", op.VecCalls, op.ID, op.Op)
		}
	}
}

// TestWorkerCountIndependentVecCalls: VecCalls, like Calls, must not
// depend on the worker count — kernels credit once per evaluation, not
// once per morsel.
func TestWorkerCountIndependentVecCalls(t *testing.T) {
	db := chaosDBWith(t, 512, false, WithoutCache())
	counts := map[int]map[int]int64{}
	for _, workers := range []int{1, 4} {
		res, err := db.Query(chaosQ1, WithMetrics(), WithWorkers(workers), WithMorselSize(64))
		if err != nil {
			t.Fatal(err)
		}
		m := map[int]int64{}
		for _, op := range res.Metrics().Ops {
			m[op.ID] = op.VecCalls
		}
		counts[workers] = m
	}
	if fmt.Sprint(counts[1]) != fmt.Sprint(counts[4]) {
		t.Fatalf("VecCalls depend on worker count:\nw=1: %v\nw=4: %v", counts[1], counts[4])
	}
}
