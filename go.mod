module disqo

go 1.22
