#!/bin/sh
# verify.sh — the repo's full verification chain: the tier-1 gate from
# ROADMAP.md plus a one-iteration benchmark smoke test (catches broken
# benchmark code and instrumentation regressions without paying for a
# real measurement run), the robustness suite under -race (fault
# injection across the golden plans, cancellation stress, panic
# recovery), the concurrency stress suite (snapshot isolation, admission
# control, shared budget, mixed read/write/DDL stress) under -race, the
# caching suite under -race (warm-hit identity, invalidation races,
# single-flight collapse, eviction pressure), the row-vs-vectorized
# differential suite under -race on both execution paths, tiny runs of
# the concurrency, cache, and predicates sweeps through cmd/bench
# -json, and a 10-second smoke of each native fuzz target.
set -eux

go build ./...
test -z "$(gofmt -l .)"
go test ./...
go vet ./...
go test -race ./...
go test -bench=. -benchtime=1x -run '^$' ./...
go test -race -run 'TestChaos|TestCancellation|TestQueryContext|TestPanicRecovery' .
go test -race -run 'TestGate|TestAdmission|TestSnapshotIsolation|TestStressMixed|TestConcurrentInserts|TestSharedTupleBudget' .
go test -race -run 'TestWarmHit|TestStrategiesDoNotShare|TestCacheDisabled|TestDMLInvalidates|TestViewRedefinition|TestResultCacheEvictionPressure|TestPlanCacheEvictionPressure|TestCachedTuplesCharge|TestSingleFlight|TestCachedReaders|TestPrepare' .
go test -race -run 'TestPathDifferential|TestMorselSizeByteIdentity|TestAnalyzePath|TestExplainPath|TestVecCalls|TestWorkerCountIndependentVec' .
go run ./cmd/bench -exp concurrency -scale 0.02 -workers 1 -sessions 1,4 -timeout 30s -q -json "$(mktemp -d)"
go run ./cmd/bench -exp cache -scale 0.02 -timeout 30s -q -json "$(mktemp -d)"
go run ./cmd/bench -exp predicates -scale 0.02 -workers 1 -timeout 30s -q -json "$(mktemp -d)"
go test -fuzz=FuzzParse -fuzztime=10s -run '^$' ./internal/sqlparser
go test -fuzz=FuzzQuery -fuzztime=10s -run '^$' .
