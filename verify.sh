#!/bin/sh
# verify.sh — the repo's full verification chain: the tier-1 gate from
# ROADMAP.md plus a one-iteration benchmark smoke test (catches broken
# benchmark code and instrumentation regressions without paying for a
# real measurement run), the robustness suite under -race (fault
# injection across the golden plans, cancellation stress, panic
# recovery), the concurrency stress suite (snapshot isolation, admission
# control, shared budget, mixed read/write/DDL stress) under -race, the
# caching suite under -race (warm-hit identity, invalidation races,
# single-flight collapse, eviction pressure), the row-vs-vectorized
# differential suite under -race on both execution paths, the workload
# telemetry suite under -race (ground-truth accounting, concurrent
# registry identity, allocation golden, slow log, debug endpoint),
# the durability suite under -race (recovery goldens, close drain,
# seal-on-failure, WAL metrics) plus the full crash-chaos kill sweep
# (child SIGKILLed at every WAL/snapshot fault-site visit and 72 random
# log truncations, every recovered state prefix-legal), a kill -9
# recovery smoke through the REPL (populate durably, kill the process,
# reopen, scripted query check), the server suite under -race (wire
# codec round trips, session timeouts, drain, connection chaos, SIGKILL
# under load with prefix-legal recovery, replica failover) plus a
# disqod end-to-end smoke (remote DDL/DML/query over TCP, SIGTERM drain
# must log a clean exit, kill -9 after an acknowledged write must
# recover on restart), the adversarial scenario engine's 500-seed
# differential sweep under -race plus golden-seed replay and minimizer
# convergence, tiny runs of the concurrency, cache, serve, predicates,
# and scenario sweeps through cmd/bench -json, a debug-listener smoke
# that scrapes /metrics twice and checks the exposition is well-formed
# with monotone counters, and a 10-second smoke of each native fuzz
# target (including the WAL frame decoder).
set -eux

go build ./...
test -z "$(gofmt -l .)"
go test ./...
go vet ./...
go test -race ./...
go test -bench=. -benchtime=1x -run '^$' ./...
go test -race -run 'TestChaos|TestCancellation|TestQueryContext|TestPanicRecovery' .
go test -race -run 'TestGate|TestAdmission|TestSnapshotIsolation|TestStressMixed|TestConcurrentInserts|TestSharedTupleBudget' .
go test -race -run 'TestWarmHit|TestStrategiesDoNotShare|TestCacheDisabled|TestDMLInvalidates|TestViewRedefinition|TestResultCacheEvictionPressure|TestPlanCacheEvictionPressure|TestCachedTuplesCharge|TestSingleFlight|TestCachedReaders|TestPrepare' .
go test -race -run 'TestPathDifferential|TestMorselSizeByteIdentity|TestAnalyzePath|TestExplainPath|TestVecCalls|TestWorkerCountIndependentVec' .
go test -race -run 'TestWorkloadStats|TestTelemetry|TestDisabledTelemetry|TestResetStats|TestSlowQuery|TestDebugEndpoint' .
go test -race ./internal/telemetry
go test -race -run 'TestDurable|TestRecovery|TestGroupCommit|TestClose|TestVolatile|TestWALSealed|TestRetry' .
go test -race -run 'TestCrashChaos' .
go test -race ./internal/wal
go test -race -run 'TestCheckpointRacesDML|TestCloseDuringReplicaApply|TestCloseImmediatelyAfterRecovery' .
go test -race ./internal/wire ./internal/server
go run ./cmd/bench -exp concurrency -scale 0.02 -workers 1 -sessions 1,4 -timeout 30s -q -json "$(mktemp -d)"
go run ./cmd/bench -exp serve -scale 0.02 -sessions 1,2 -timeout 30s -q -json "$(mktemp -d)"
go run ./cmd/bench -exp cache -scale 0.02 -timeout 30s -q -json "$(mktemp -d)"
go run ./cmd/bench -exp predicates -scale 0.02 -workers 1 -timeout 30s -q -json "$(mktemp -d)"
# Adversarial scenario engine: the full 500-seed differential sweep
# under -race (every generated query must answer identically across
# canonical/unnested × row/vector × cache tiers × workers × null
# modes), replay of every checked-in divergence seed, and a tiny
# scenario sweep through cmd/bench (divergence count pinned at zero —
# any disagreement fails the run).
SCENARIO_SEEDS=500 go test -race -run 'TestRunnerSweep' -timeout 30m ./internal/scenario
go test -race -run 'TestScenarioGoldens|TestMinimizerConvergence' . ./internal/scenario
go run ./cmd/bench -exp scenario -scale 0.05 -timeout 30s -q -json "$(mktemp -d)"
# Debug-listener smoke: hold a REPL open over a FIFO, scrape /metrics
# around a query, and check the exposition is well-formed (every sample
# belongs to a "# TYPE"-declared family) with monotone counters.
dbgdir=$(mktemp -d)
dbgaddr=127.0.0.1:63990
mkfifo "$dbgdir/stdin"
go run ./cmd/disqo -rst 0.01 -debug-addr "$dbgaddr" <"$dbgdir/stdin" >"$dbgdir/repl.out" 2>&1 &
dbgpid=$!
exec 9>"$dbgdir/stdin"
i=0
until curl -sf "http://$dbgaddr/metrics" >"$dbgdir/m1.txt"; do
    i=$((i + 1))
    test "$i" -le 120 || { cat "$dbgdir/repl.out"; exit 1; }
    sleep 0.5
done
echo 'SELECT DISTINCT * FROM r WHERE a4 > 1500;' >&9
sleep 1
curl -sf "http://$dbgaddr/metrics" >"$dbgdir/m2.txt"
exec 9>&-
wait "$dbgpid"
awk '/^# TYPE /{t[$3]=1;next} /^#/{next} NF{n=$1;sub(/\{.*/,"",n);b=n;sub(/_(bucket|sum|count)$/,"",b);if(!(n in t)&&!(b in t)){print "undeclared family: "$0;exit 1}}' "$dbgdir/m1.txt"
q1=$(awk '$1=="disqo_queries_total"{print $2}' "$dbgdir/m1.txt")
q2=$(awk '$1=="disqo_queries_total"{print $2}' "$dbgdir/m2.txt")
test "$q2" -gt "$q1"
rm -rf "$dbgdir"

# Crash-recovery smoke through the REPL: populate a durable dir, kill
# the process without ceremony, reopen, and check the recovered answer.
crashdir=$(mktemp -d)
mkfifo "$crashdir/stdin"
go run ./cmd/disqo -data "$crashdir/data" <"$crashdir/stdin" >"$crashdir/repl.out" 2>&1 &
crashpid=$!
exec 8>"$crashdir/stdin"
echo 'CREATE TABLE k (a INTEGER, b VARCHAR);' >&8
echo "INSERT INTO k VALUES (1, 'one'), (2, 'two'), (3, NULL);" >&8
echo 'DELETE FROM k WHERE a = 2;' >&8
i=0
until grep -c 'rows affected' "$crashdir/repl.out" | grep -qx 3; do
    i=$((i + 1))
    test "$i" -le 120 || { cat "$crashdir/repl.out"; exit 1; }
    sleep 0.5
done
# kill -9 the whole go-run process group: no flush, no deferred cleanup.
kill -9 "$crashpid" 2>/dev/null || true
pkill -9 -f "disqo -data $crashdir/data" 2>/dev/null || true
wait "$crashpid" 2>/dev/null || true
exec 8>&-
go run ./cmd/disqo -data "$crashdir/data" -e 'SELECT DISTINCT * FROM k' >"$crashdir/recovered.out" 2>"$crashdir/recovered.err"
grep -q 'recovered 3 WAL records' "$crashdir/recovered.err"
grep -q '(2 rows)' "$crashdir/recovered.out"
rm -rf "$crashdir"

# Server smoke: run disqod durably, drive it with the remote client,
# SIGTERM it (the drain must log a clean exit), then kill -9 a fresh
# instance after an acknowledged write and check the restart serves it.
srvdir=$(mktemp -d)
srvaddr=127.0.0.1:63991
go build -o "$srvdir/disqod" ./cmd/disqod
go build -o "$srvdir/disqo" ./cmd/disqo
"$srvdir/disqod" -listen "$srvaddr" -data "$srvdir/data" >"$srvdir/serve1.log" 2>&1 &
srvpid=$!
i=0
until "$srvdir/disqo" -connect "$srvaddr" -e 'CREATE TABLE sk (a INTEGER)' 2>/dev/null | grep -q 'ok ('; do
    i=$((i + 1))
    test "$i" -le 120 || { cat "$srvdir/serve1.log"; exit 1; }
    sleep 0.5
done
"$srvdir/disqo" -connect "$srvaddr" -e 'INSERT INTO sk VALUES (1), (2), (3)' | grep -q 'ok (3 rows affected)'
"$srvdir/disqo" -connect "$srvaddr" -e 'DELETE FROM sk WHERE a = 2' | grep -q 'ok (1 rows affected)'
"$srvdir/disqo" -connect "$srvaddr" -e 'SELECT DISTINCT * FROM sk' | grep -q '(2 rows)'
kill -TERM "$srvpid"
wait "$srvpid"
grep -q 'drained cleanly' "$srvdir/serve1.log"
grep -q 'bye' "$srvdir/serve1.log"
"$srvdir/disqod" -listen "$srvaddr" -data "$srvdir/data" >"$srvdir/serve2.log" 2>&1 &
srvpid=$!
i=0
until "$srvdir/disqo" -connect "$srvaddr" -e 'SELECT DISTINCT * FROM sk' 2>/dev/null | grep -q '(2 rows)'; do
    i=$((i + 1))
    test "$i" -le 120 || { cat "$srvdir/serve2.log"; exit 1; }
    sleep 0.5
done
"$srvdir/disqo" -connect "$srvaddr" -e 'INSERT INTO sk VALUES (4)' | grep -q 'ok (1 rows affected)'
kill -9 "$srvpid"
wait "$srvpid" 2>/dev/null || true
"$srvdir/disqod" -listen "$srvaddr" -data "$srvdir/data" >"$srvdir/serve3.log" 2>&1 &
srvpid=$!
i=0
until "$srvdir/disqo" -connect "$srvaddr" -e 'SELECT DISTINCT * FROM sk' 2>/dev/null | grep -q '(3 rows)'; do
    i=$((i + 1))
    test "$i" -le 120 || { cat "$srvdir/serve3.log"; exit 1; }
    sleep 0.5
done
kill -TERM "$srvpid"
wait "$srvpid"
rm -rf "$srvdir"

go test -fuzz=FuzzParse -fuzztime=10s -run '^$' ./internal/sqlparser
go test -fuzz=FuzzQuery -fuzztime=10s -run '^$' .
go test -fuzz=FuzzWALDecode -fuzztime=10s -run '^$' ./internal/wal
