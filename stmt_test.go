package disqo

// Prepared-statement tests: a *Stmt pins the parsed AST and re-derives
// its per-strategy logical plan only when the catalog version or view
// epoch has moved, so repeated Stmt.Query calls must match ad-hoc
// db.Query byte-for-byte — cold, warm, after DML, and through view
// redefinitions.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"disqo/internal/testutil"
)

func TestPrepareQueryMatchesAdHoc(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, plan := range chaosPlans {
		plan := plan
		t.Run(plan.name, func(t *testing.T) {
			db := chaosDB(t, 48, plan.highA4)
			stmt, err := db.Prepare(plan.sql)
			if err != nil {
				t.Fatal(err)
			}
			defer stmt.Close()
			cold, err := stmt.Query(WithStrategy(plan.strategy))
			if err != nil {
				t.Fatal(err)
			}
			warm, err := stmt.Query(WithStrategy(plan.strategy))
			if err != nil {
				t.Fatal(err)
			}
			adhoc, err := db.Query(plan.sql, WithStrategy(plan.strategy))
			if err != nil {
				t.Fatal(err)
			}
			if rowsFingerprint(cold) != rowsFingerprint(warm) {
				t.Fatal("warm prepared run differs from cold prepared run")
			}
			if rowsFingerprint(cold) != rowsFingerprint(adhoc) {
				t.Fatal("prepared run differs from ad-hoc db.Query")
			}
			if cold.Stats != warm.Stats {
				t.Fatalf("warm Stats %+v != cold Stats %+v", warm.Stats, cold.Stats)
			}
		})
	}
}

func TestPrepareReflectsDML(t *testing.T) {
	db := chaosDB(t, 48, false)
	mirror := chaosDB(t, 48, false)
	stmt, err := db.Prepare(chaosQ1)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if _, err := stmt.Query(); err != nil { // plan + result now cached
		t.Fatal(err)
	}
	for _, write := range []string{
		`INSERT INTO r VALUES (7, 7, 7, 7)`,
		`UPDATE s SET b4 = 1 WHERE b3 = 0`,
		`DELETE FROM r WHERE a3 = 3`,
	} {
		if _, err := db.Exec(write); err != nil {
			t.Fatalf("%q: %v", write, err)
		}
		if _, err := mirror.Exec(write); err != nil {
			t.Fatal(err)
		}
		got, err := stmt.Query()
		if err != nil {
			t.Fatal(err)
		}
		want, err := mirror.Query(chaosQ1)
		if err != nil {
			t.Fatal(err)
		}
		if rowsFingerprint(got) != rowsFingerprint(want) {
			t.Fatalf("after %q the prepared statement served stale rows", write)
		}
	}
}

func TestPrepareReflectsViewRedefinition(t *testing.T) {
	db := gateDB(t, 8)
	if _, err := db.Exec(`CREATE VIEW kv AS SELECT DISTINCT * FROM k`); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(`SELECT DISTINCT * FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	res, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("prepared view query returned %d rows, want 8", len(res.Rows))
	}
	if _, err := db.Exec(`DROP VIEW kv`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW kv AS SELECT DISTINCT * FROM k WHERE w = 0`); err != nil {
		t.Fatal(err)
	}
	res, err = stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 8 {
		t.Fatal("prepared statement kept planning against the dropped view definition")
	}
}

func TestPrepareParseError(t *testing.T) {
	db, _ := Open()
	if _, err := db.Prepare(`SELECT DISTINCT FROM`); err == nil {
		t.Fatal("Prepare accepted a malformed statement")
	}
	if _, err := db.Prepare(`DELETE FROM r WHERE a1 = 1`); err == nil {
		t.Fatal("Prepare accepted a non-SELECT statement")
	}
}

func TestPrepareCloseThenReuse(t *testing.T) {
	db := gateDB(t, 8)
	stmt, err := db.Prepare(gateQuery)
	if err != nil {
		t.Fatal(err)
	}
	first, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Close(); err != nil {
		t.Fatal(err)
	}
	// Close drops the cached plans but the statement stays usable; the
	// next Query simply re-derives them.
	again, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if rowsFingerprint(first) != rowsFingerprint(again) {
		t.Fatal("post-Close query differs")
	}
	if got, want := stmt.SQL(), gateQuery; got != want {
		t.Fatalf("SQL() = %q, want %q", got, want)
	}
}

func TestPrepareQueryContextPreCancelled(t *testing.T) {
	db := gateDB(t, 8)
	stmt, err := db.Prepare(gateQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = stmt.QueryContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled QueryContext returned %v, want context.Canceled", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("error %T is not a *QueryError", err)
	}
}

func TestPrepareConcurrent(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := chaosDB(t, 48, false)
	stmt, err := db.Prepare(chaosQ1)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	want, err := db.Query(chaosQ1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := stmt.Query()
			if err != nil {
				t.Errorf("concurrent prepared query: %v", err)
				return
			}
			if rowsFingerprint(res) != rowsFingerprint(want) {
				t.Error("concurrent prepared query disagrees with ad-hoc result")
			}
		}()
	}
	wg.Wait()
}
