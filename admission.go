package disqo

import (
	"context"
	"sync"
	"time"
)

// gate is the DB's admission controller: a bounded concurrent-query
// counter with a context-aware FIFO wait queue. At most max queries
// execute at once; up to maxQueue more wait their turn in arrival
// order. A query that finds the queue full — or whose wait budget
// expires while queued — is shed with ErrOverloaded instead of piling
// onto an already saturated engine. Slots hand over directly from a
// finishing query to the head waiter, so admission is strictly FIFO and
// a continuous load never starves a waiter.
type gate struct {
	mu     sync.Mutex
	max    int           // concurrent-execution slots
	maxQ   int           // wait-queue bound
	wait   time.Duration // per-query wait budget; 0 = wait indefinitely
	active int
	queue  []chan struct{} // FIFO of waiters; a slot grant closes the channel

	// Cumulative telemetry, guarded by mu. admitted counts granted
	// slots; shed counts ErrOverloaded rejections (a full queue or an
	// expired wait budget — context cancellations are neither); waitNanos
	// sums time spent queued, by every waiter, however its wait ended.
	admitted  int64
	shed      int64
	waitNanos int64
}

// newGate builds a gate; max <= 0 disables admission control (the
// returned nil gate admits everything).
func newGate(max, maxQueue int, wait time.Duration) *gate {
	if max <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{max: max, maxQ: maxQueue, wait: wait}
}

// acquire claims an execution slot, waiting in FIFO order behind a full
// gate. It returns ErrOverloaded when the wait queue is full or the
// wait budget expires, and ctx.Err() when the caller's context is done
// first. A nil gate admits immediately.
func (g *gate) acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	if g.active < g.max {
		g.active++
		g.admitted++
		g.mu.Unlock()
		return nil
	}
	if len(g.queue) >= g.maxQ {
		g.shed++
		g.mu.Unlock()
		return ErrOverloaded
	}
	ch := make(chan struct{})
	g.queue = append(g.queue, ch)
	g.mu.Unlock()
	queuedAt := time.Now()

	var timerC <-chan time.Time
	if g.wait > 0 {
		t := time.NewTimer(g.wait)
		defer t.Stop()
		timerC = t.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-ch:
		g.noteWaitEnd(queuedAt, true, false)
		return nil
	case <-timerC:
		if g.abandon(ch) {
			g.noteWaitEnd(queuedAt, false, true)
			return ErrOverloaded
		}
		g.noteWaitEnd(queuedAt, true, false)
		return nil // a release granted the slot as the timer fired; keep it
	case <-done:
		if g.abandon(ch) {
			g.noteWaitEnd(queuedAt, false, false)
			return ctx.Err()
		}
		g.noteWaitEnd(queuedAt, true, false)
		return nil
	}
}

// noteWaitEnd accounts the end of a queued wait: the time spent queued,
// plus whether it ended in a grant or a shed (a context cancellation is
// neither admitted nor shed).
func (g *gate) noteWaitEnd(queuedAt time.Time, admitted, shed bool) {
	d := time.Since(queuedAt)
	g.mu.Lock()
	g.waitNanos += int64(d)
	if admitted {
		g.admitted++
	}
	if shed {
		g.shed++
	}
	g.mu.Unlock()
}

// abandon removes a waiter from the queue. It returns false when a
// release already granted the slot to ch — the grant and the abandon
// race under one mutex, so exactly one wins — in which case the caller
// owns the slot after all.
func (g *gate) abandon(ch chan struct{}) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, c := range g.queue {
		if c == ch {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			return true
		}
	}
	return false
}

// release returns a slot: the head waiter inherits it directly (the
// active count is unchanged — ownership transfers), or the slot opens
// up when nobody waits.
func (g *gate) release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if len(g.queue) > 0 {
		ch := g.queue[0]
		g.queue = g.queue[1:]
		g.mu.Unlock()
		close(ch)
		return
	}
	g.active--
	g.mu.Unlock()
}

// saturation reports the gate's instantaneous load: executing queries
// and queued waiters. A nil gate reports zeros.
func (g *gate) saturation() (active, queued int) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active, len(g.queue)
}

// gateStats is the gate's full telemetry snapshot.
type gateStats struct {
	max, maxQueued int
	active, queued int
	admitted, shed int64
	waitNanos      int64
}

// stats snapshots the gate's gauges and counters. A nil gate reports
// zeros.
func (g *gate) stats() gateStats {
	if g == nil {
		return gateStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return gateStats{
		max: g.max, maxQueued: g.maxQ,
		active: g.active, queued: len(g.queue),
		admitted: g.admitted, shed: g.shed, waitNanos: g.waitNanos,
	}
}

// resetStats zeroes the cumulative counters (the gauges are
// instantaneous and unaffected). A nil gate is a no-op.
func (g *gate) resetStats() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.admitted, g.shed, g.waitNanos = 0, 0, 0
	g.mu.Unlock()
}
