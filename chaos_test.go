package disqo

// Chaos suite for the fault-injection layer (internal/faultinject): for
// each of the six golden plan shapes (Fig. 2a–d, Fig. 3a–b) at worker
// counts {1, 4}, a recording pass enumerates every reachable injection
// point — operator entries, morsel boundaries, memo fills — and then
// each point is armed in turn, first as an error and again as a panic.
// Every armed run must surface a *QueryError whose chain resolves the
// injected cause, never crash, and never leak a goroutine; runs with
// the injector present but silent must be byte-identical to
// uninstrumented runs; and after the whole sweep (dozens of recovered
// panics) the DB must still answer the query correctly.
//
// This is an internal test (package disqo) so it can reach the
// unexported withFaultInjector option: injection is a test facility,
// not public API.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"disqo/internal/exec"
	"disqo/internal/faultinject"
	"disqo/internal/testutil"
	"disqo/internal/types"
)

// chaosDB builds the RST catalog with a small deterministic dataset.
// With highA4 the r.a4 column lands entirely above 1500, which flips
// the selectivity rank of Q1's cheap disjunct — the data regime of
// Fig. 2(d) versus the low-a4 regime of Fig. 2(b/c).
func chaosDB(t testing.TB, rows int, highA4 bool) *DB {
	t.Helper()
	return chaosDBWith(t, rows, highA4)
}

// chaosDBWith is chaosDB with Open options (the cache suite compares
// cached and cache-disabled databases over the same dataset).
func chaosDBWith(t testing.TB, rows int, highA4 bool, opts ...OpenOption) *DB {
	t.Helper()
	db, _ := Open(opts...)
	for _, spec := range []struct{ name, p string }{{"r", "a"}, {"s", "b"}, {"t", "c"}} {
		cols := []Column{
			{Name: spec.p + "1", Type: types.KindInt},
			{Name: spec.p + "2", Type: types.KindInt},
			{Name: spec.p + "3", Type: types.KindInt},
			{Name: spec.p + "4", Type: types.KindInt},
		}
		if err := db.CreateTable(spec.name, cols); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rows; i++ {
		a4 := int64((i * 37) % 2000)
		if highA4 {
			a4 = int64(1600 + i)
		}
		// a1 ∈ 0..39 covers both subquery count regimes: Q1's COUNT
		// DISTINCT per b2 group is 8, Q2's disjunctive COUNT(*) lands
		// around 32 — both reachable, so both queries return rows.
		// a2 ∈ 0..7 joins s.b2 and a4 decides the cheap disjunct.
		if err := db.Insert("r", []Value{
			types.NewInt(int64(i % 40)), types.NewInt(int64(i % 8)),
			types.NewInt(int64(i)), types.NewInt(a4),
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("s", []Value{
			types.NewInt(int64(i)), types.NewInt(int64(i % 8)),
			types.NewInt(int64(i % 3)), types.NewInt(int64((i * 53) % 3000)),
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("t", []Value{
			types.NewInt(int64(i)), types.NewInt(int64(i % 4)),
			types.NewInt(int64(i % 5)), types.NewInt(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// rowsFingerprint renders a result's rows in order; byte-identical
// fingerprints are the suite's determinism check.
func rowsFingerprint(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(types.FormatTuple(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// chaosPlans are the six golden shapes: Fig. 2(a) canonical Q1,
// Fig. 2(b) conjunctive+bypass Q1 (S2's OR-expansion regime),
// Fig. 2(c) fully unnested Q1, Fig. 2(d) the same plan under the
// flipped-rank data, Fig. 3(a) canonical Q2, Fig. 3(b) unnested Q2.
var chaosPlans = []struct {
	name     string
	sql      string
	strategy Strategy
	highA4   bool
}{
	{"fig2a-q1-canonical", chaosQ1, Canonical, false},
	{"fig2b-q1-s2", chaosQ1, S2, false},
	{"fig2c-q1-unnested", chaosQ1, Unnested, false},
	{"fig2d-q1-unnested-flipped", chaosQ1, Unnested, true},
	{"fig3a-q2-canonical", chaosQ2, Canonical, false},
	{"fig3b-q2-unnested", chaosQ2, Unnested, false},
}

const (
	chaosQ1 = `SELECT DISTINCT * FROM r
	           WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	              OR a4 > 1500`
	chaosQ2 = `SELECT DISTINCT * FROM r
	           WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)`
)

// sortedKeys orders an injection-point map for deterministic sweeps.
func sortedKeys(visits map[faultinject.Key]int64) []faultinject.Key {
	keys := make([]faultinject.Key, 0, len(visits))
	for k := range visits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Site != keys[j].Site {
			return keys[i].Site < keys[j].Site
		}
		return keys[i].Node < keys[j].Node
	})
	return keys
}

func TestChaosGoldenPlans(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, plan := range chaosPlans {
		plan := plan
		t.Run(plan.name, func(t *testing.T) {
			db := chaosDB(t, 64, plan.highA4)
			for _, path := range []ExecutionPath{PathVector, PathRow} {
				for _, workers := range []int{1, 4} {
					path, workers := path, workers
					t.Run(fmt.Sprintf("path=%s/workers=%d", path, workers), func(t *testing.T) {
						runChaosSweep(t, db, plan.sql, plan.strategy, workers, path)
					})
				}
			}
		})
	}
}

// runChaosSweep is one (plan, path, workers) cell of the chaos matrix.
// On the vector path the recording pass must reach at least one
// vectorized-kernel entry (SiteVec) — every golden shape has an
// eligible node — and on the row path none, so the sweep covers faults
// striking inside vectorized kernels as soon as any node runs one.
func runChaosSweep(t *testing.T, db *DB, sql string, s Strategy, workers int, path ExecutionPath) {
	t.Helper()
	opts := func(extra ...Option) []Option {
		return append([]Option{WithStrategy(s), WithWorkers(workers), WithExecutionPath(path)}, extra...)
	}

	baseRes, err := db.Query(sql, opts()...)
	if err != nil {
		t.Fatalf("baseline query failed: %v", err)
	}
	baseline := rowsFingerprint(baseRes)
	if len(baseRes.Rows) == 0 {
		t.Fatal("baseline returned no rows; the dataset no longer exercises the plan")
	}

	// Recording pass: the injector is wired in but fires nothing, so the
	// result must be byte-identical to the uninstrumented run.
	rec := faultinject.New()
	recRes, err := db.Query(sql, opts(withFaultInjector(rec))...)
	if err != nil {
		t.Fatalf("recording query failed: %v", err)
	}
	if got := rowsFingerprint(recRes); got != baseline {
		t.Fatalf("injector in recording mode changed the result:\n--- with ---\n%s--- without ---\n%s", got, baseline)
	}
	if rec.Fired() != 0 {
		t.Fatalf("recording injector fired %d faults", rec.Fired())
	}
	visits := rec.Visits()
	if len(visits) == 0 {
		t.Fatal("recording pass saw no injection points")
	}
	vecPoints := 0
	for k := range visits {
		if k.Site == faultinject.SiteVec {
			vecPoints++
		}
	}
	if path == PathVector && vecPoints == 0 {
		t.Fatal("vector path recorded no vectorized-kernel injection points")
	}
	if path == PathRow && vecPoints != 0 {
		t.Fatalf("row path recorded %d vectorized-kernel injection points", vecPoints)
	}

	for _, key := range sortedKeys(visits) {
		// Arm the first visit always, and the last one too where the
		// point is hit repeatedly — the error-in-shared-subplan case
		// (DAG consumers, per-outer-tuple re-evaluation) aborts cleanly
		// regardless of how deep into the query it strikes.
		nths := []int64{1}
		if n := visits[key]; n > 1 {
			nths = append(nths, n)
		}
		for _, nth := range nths {
			for _, panics := range []bool{false, true} {
				assertInjectedFault(t, db, sql, opts, key, nth, panics)
			}
		}
	}

	// After dozens of injected errors and recovered panics the engine
	// must still answer the same query with the same rows.
	afterRes, err := db.Query(sql, opts()...)
	if err != nil {
		t.Fatalf("query after chaos sweep failed: %v", err)
	}
	if got := rowsFingerprint(afterRes); got != baseline {
		t.Fatalf("result drifted after chaos sweep:\n--- after ---\n%s--- baseline ---\n%s", got, baseline)
	}
}

// assertInjectedFault runs the query with one armed fault and checks the
// full error contract.
func assertInjectedFault(t *testing.T, db *DB, sql string, opts func(...Option) []Option,
	key faultinject.Key, nth int64, panics bool) {
	t.Helper()
	fi := faultinject.New()
	fi.Arm(key.Site, key.Node, nth, panics)
	res, err := db.Query(sql, opts(withFaultInjector(fi))...)
	mode := "error"
	if panics {
		mode = "panic"
	}
	if err == nil {
		t.Fatalf("%s@%d nth=%d mode=%s: fault did not surface (got %d rows)",
			key.Site, key.Node, nth, mode, len(res.Rows))
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("%s nth=%d mode=%s: error %T is not a *QueryError: %v", key, nth, mode, err, err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("%s nth=%d mode=%s: errors.Is cannot resolve the injected cause: %v", key, nth, mode, err)
	}
	if panics {
		var pe *exec.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s nth=%d: injected panic did not surface as *PanicError: %v", key, nth, err)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("%s nth=%d: recovered panic carries no stack", key, nth)
		}
	}
	if fired := fi.Fired(); fired != 1 {
		t.Fatalf("%s nth=%d mode=%s: injector fired %d times, want 1", key, nth, mode, fired)
	}
}

// TestChaosParallelFanout covers injection under genuine morsel
// parallelism: 3000-row relations exceed the fan-out threshold, so at 4
// workers the morsel-boundary faults strike inside concurrently running
// worker goroutines. Error mode only — the small-plan sweep already
// covers panic recovery at every site.
func TestChaosParallelFanout(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db, _ := Open()
	if err := db.LoadRST(0.3, 0.3, 0.3); err != nil {
		t.Fatal(err)
	}
	opts := func(extra ...Option) []Option {
		return append([]Option{WithStrategy(Unnested), WithWorkers(4)}, extra...)
	}
	baseRes, err := db.Query(chaosQ1, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	baseline := rowsFingerprint(baseRes)

	rec := faultinject.New()
	recRes, err := db.Query(chaosQ1, opts(withFaultInjector(rec))...)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsFingerprint(recRes); got != baseline {
		t.Fatal("recording injector changed the parallel result")
	}
	visits := rec.Visits()
	sawMorsel := false
	for _, key := range sortedKeys(visits) {
		if key.Site == faultinject.SiteMorsel {
			sawMorsel = true
		}
		assertInjectedFault(t, db, chaosQ1, opts, key, 1, false)
	}
	if !sawMorsel {
		t.Fatal("parallel plan recorded no morsel-boundary injection points")
	}
	afterRes, err := db.Query(chaosQ1, opts()...)
	if err != nil {
		t.Fatalf("query after parallel chaos failed: %v", err)
	}
	if got := rowsFingerprint(afterRes); got != baseline {
		t.Fatal("parallel result drifted after chaos sweep")
	}
}

// TestPanicRecoveryLeavesDBUsable pins the acceptance criterion
// directly: a worker panic mid-query is isolated to that query, and the
// same DB answers the next query correctly with no leaked goroutines.
func TestPanicRecoveryLeavesDBUsable(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := chaosDB(t, 64, false)
	want, err := db.Query(chaosQ1, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	rec := faultinject.New()
	if _, err := db.Query(chaosQ1, WithWorkers(4), withFaultInjector(rec)); err != nil {
		t.Fatal(err)
	}
	keys := sortedKeys(rec.Visits())
	if len(keys) == 0 {
		t.Fatal("no injection points recorded")
	}
	fi := faultinject.New()
	fi.Arm(keys[len(keys)/2].Site, keys[len(keys)/2].Node, 1, true)
	if _, err := db.Query(chaosQ1, WithWorkers(4), withFaultInjector(fi)); err == nil {
		t.Fatal("armed panic did not surface")
	}
	got, err := db.Query(chaosQ1, WithWorkers(4))
	if err != nil {
		t.Fatalf("query after recovered panic failed: %v", err)
	}
	if rowsFingerprint(got) != rowsFingerprint(want) {
		t.Fatal("result changed after a recovered panic")
	}
}
