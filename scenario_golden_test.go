package disqo_test

import (
	"path/filepath"
	"testing"

	"disqo/internal/scenario"
)

// TestScenarioGoldens replays every checked-in scenario seed file in
// testdata/scenario/ across the full differential matrix — canonical
// vs. unnested × row vs. vector × uncached/cold/warm/prepared ×
// worker counts × both null modes — and fails on any divergence.
//
// Files land here two ways: the hardest generated shapes (regenerate
// with `go run ./internal/scenario/genseeds`) and minimized witnesses
// of past divergences. Either way the contract is the same: once a
// seed is checked in, the engine answers it identically on every
// strategy, path, cache tier, and worker count, forever. Reproduce a
// failure interactively by loading the JSON's tables and running its
// SQL under the two configurations the file names.
func TestScenarioGoldens(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "scenario", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no seed files in testdata/scenario — the golden corpus is missing")
	}
	r := &scenario.Runner{}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			f, err := scenario.LoadSeedFile(path)
			if err != nil {
				t.Fatal(err)
			}
			out, err := f.Replay(r)
			if err != nil {
				t.Fatal(err)
			}
			if out.Divergence != nil {
				t.Fatalf("checked-in seed regressed: %s", out.Divergence.Error())
			}
		})
	}
}
