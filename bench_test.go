package disqo_test

import (
	"sync"
	"testing"

	"disqo"
	"disqo/internal/harness"
)

// Benchmarks: one family per evaluation artifact of the paper.
//
//	BenchmarkFig7a_*  — Q1 (disjunctive linking) on RST        [Fig. 7a]
//	BenchmarkFig7b_*  — Query 2d (TPC-H Q2 variant)            [Fig. 7b]
//	BenchmarkFig7c_*  — Q2 (disjunctive correlation) on RST    [Fig. 7c]
//	BenchmarkTree_*   — Q3 tree query                          [TR ext.]
//	BenchmarkLinear_* — Q4 linear query                        [TR ext.]
//	BenchmarkQuant_*  — EXISTS in a disjunction                [TR ext.]
//
// Benchmark sizes are deliberately small (the canonical baselines are
// quadratic or worse); the full parameter sweeps with the paper's
// relative scale factors live in cmd/bench.

var (
	benchDBs   = map[string]*disqo.DB{}
	benchDBsMu sync.Mutex
)

// benchDB lazily builds and caches one dataset per key.
func benchDB(b *testing.B, key string, load func(*disqo.DB) error) *disqo.DB {
	b.Helper()
	benchDBsMu.Lock()
	defer benchDBsMu.Unlock()
	if db, ok := benchDBs[key]; ok {
		return db
	}
	// Benchmarks time executions, so the shared DBs run cache-cold —
	// b.N iterations of one query must not collapse into warm hits.
	db, _ := disqo.Open(disqo.WithoutCache())
	if err := load(db); err != nil {
		b.Fatal(err)
	}
	benchDBs[key] = db
	return db
}

func rstDB(b *testing.B, sf float64) *disqo.DB {
	return benchDB(b, "rst", func(db *disqo.DB) error { return db.LoadRST(sf, sf, sf) })
}

func rstSmallDB(b *testing.B, sf float64) *disqo.DB {
	return benchDB(b, "rst-small", func(db *disqo.DB) error { return db.LoadRST(sf, sf, sf) })
}

func tpchDB(b *testing.B, sf float64) *disqo.DB {
	return benchDB(b, "tpch", func(db *disqo.DB) error { return db.LoadTPCH(sf) })
}

func benchQuery(b *testing.B, db *disqo.DB, sql string, s disqo.Strategy) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	rows := -1
	for i := 0; i < b.N; i++ {
		res, err := db.Query(sql, disqo.WithStrategy(s))
		if err != nil {
			b.Fatal(err)
		}
		if rows == -1 {
			rows = len(res.Rows)
		} else if rows != len(res.Rows) {
			b.Fatalf("nondeterministic result: %d vs %d rows", rows, len(res.Rows))
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// --- Fig. 7(a): Q1 on RST ------------------------------------------------

const fig7aSF = 0.05 // 500 rows per relation

func BenchmarkFig7a_S1(b *testing.B) { benchQuery(b, rstDB(b, fig7aSF), harness.Q1, disqo.S1) }
func BenchmarkFig7a_S2(b *testing.B) { benchQuery(b, rstDB(b, fig7aSF), harness.Q1, disqo.S2) }
func BenchmarkFig7a_S3(b *testing.B) { benchQuery(b, rstDB(b, fig7aSF), harness.Q1, disqo.S3) }
func BenchmarkFig7a_Canonical(b *testing.B) {
	benchQuery(b, rstDB(b, fig7aSF), harness.Q1, disqo.Canonical)
}
func BenchmarkFig7a_Unnested(b *testing.B) {
	benchQuery(b, rstDB(b, fig7aSF), harness.Q1, disqo.Unnested)
}

// --- Fig. 7(b): Query 2d on TPC-H ----------------------------------------

const fig7bSF = 0.01

func BenchmarkFig7b_S1(b *testing.B) { benchQuery(b, tpchDB(b, fig7bSF), harness.Query2d, disqo.S1) }
func BenchmarkFig7b_S2(b *testing.B) { benchQuery(b, tpchDB(b, fig7bSF), harness.Query2d, disqo.S2) }
func BenchmarkFig7b_S3(b *testing.B) { benchQuery(b, tpchDB(b, fig7bSF), harness.Query2d, disqo.S3) }
func BenchmarkFig7b_Canonical(b *testing.B) {
	benchQuery(b, tpchDB(b, fig7bSF), harness.Query2d, disqo.Canonical)
}
func BenchmarkFig7b_Unnested(b *testing.B) {
	benchQuery(b, tpchDB(b, fig7bSF), harness.Query2d, disqo.Unnested)
}

// --- Fig. 7(c): Q2 on RST ------------------------------------------------

func BenchmarkFig7c_S1(b *testing.B) { benchQuery(b, rstDB(b, fig7aSF), harness.Q2, disqo.S1) }
func BenchmarkFig7c_S2(b *testing.B) { benchQuery(b, rstDB(b, fig7aSF), harness.Q2, disqo.S2) }
func BenchmarkFig7c_S3(b *testing.B) { benchQuery(b, rstDB(b, fig7aSF), harness.Q2, disqo.S3) }
func BenchmarkFig7c_Canonical(b *testing.B) {
	benchQuery(b, rstDB(b, fig7aSF), harness.Q2, disqo.Canonical)
}
func BenchmarkFig7c_Unnested(b *testing.B) {
	benchQuery(b, rstDB(b, fig7aSF), harness.Q2, disqo.Unnested)
}

// --- TR extensions: tree (Q3), linear (Q4), quantified --------------------

const smallSF = 0.02 // 200 rows: the canonical linear query is cubic

func BenchmarkTree_Canonical(b *testing.B) {
	benchQuery(b, rstSmallDB(b, smallSF), harness.Q3, disqo.Canonical)
}
func BenchmarkTree_Unnested(b *testing.B) {
	benchQuery(b, rstSmallDB(b, smallSF), harness.Q3, disqo.Unnested)
}

func BenchmarkLinear_Canonical(b *testing.B) {
	benchQuery(b, rstSmallDB(b, smallSF), harness.Q4, disqo.Canonical)
}
func BenchmarkLinear_Unnested(b *testing.B) {
	benchQuery(b, rstSmallDB(b, smallSF), harness.Q4, disqo.Unnested)
}

func BenchmarkQuant_Canonical(b *testing.B) {
	benchQuery(b, rstSmallDB(b, smallSF), harness.QuantExists, disqo.Canonical)
}
func BenchmarkQuant_Unnested(b *testing.B) {
	benchQuery(b, rstSmallDB(b, smallSF), harness.QuantExists, disqo.Unnested)
}

// --- Ablations -------------------------------------------------------------

// The optimizer pipeline itself: parse + translate + rewrite, no
// execution.
func BenchmarkOptimizerPipeline(b *testing.B) {
	db := rstDB(b, fig7aSF)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain(harness.Q4); err != nil {
			b.Fatal(err)
		}
	}
}
