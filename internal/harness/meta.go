package harness

import "runtime"

// RunMeta stamps a benchmark table with the environment it was measured
// in, so a checked-in BENCH_*.json records enough to judge whether two
// runs are comparable: the toolchain, the parallelism available, and
// the code revision.
type RunMeta struct {
	// GoVersion is runtime.Version() of the binary that measured.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the scheduler's processor limit at measurement time
	// — the ceiling on morsel-parallel speedup.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
	// GitRev identifies the measured code (git describe --always
	// --dirty); empty when the build directory is not a git checkout.
	GitRev string `json:"git_rev,omitempty"`
}

// CollectMeta snapshots the current process environment. The git
// revision is the caller's to supply (the harness itself never shells
// out); pass "" when unknown.
func CollectMeta(gitRev string) *RunMeta {
	return &RunMeta{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GitRev:     gitRev,
	}
}
