package harness

// The cache experiment: where the timing experiments run cache-cold to
// measure execution, this one opens the DB with its default caches ON
// and measures what the result cache buys a repeating workload — and
// what DML churn takes back. The grid crosses the workload's repeat
// rate (how many of every ten queries re-ask the same hot statement)
// with a churn interval (an invalidating write every N queries). Each
// query is classified warm or cold from the DB's own counters, and the
// table reports the two mean latencies as pseudo-strategy rows, with
// the full counter deltas attached to each cell's cache section.

import (
	"fmt"
	"time"

	"disqo"
	"disqo/internal/telemetry"
)

// CacheCold and CacheWarm are the pseudo-strategy rows of the cache
// experiment's table: the same engine strategy (unnested), split by
// whether the result came from an execution or from the cache.
const (
	CacheCold = disqo.Strategy("cold")
	CacheWarm = disqo.Strategy("warm")
)

// cacheColdQ1 derives a one-off variant of Q1: a fresh disjunct
// threshold gives a statement the cache has never seen, so the slot is
// a compulsory miss.
func cacheColdQ1(i int) string {
	return fmt.Sprintf(`SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	         OR a4 > %d`, 100000+i)
}

// cacheChurn is the invalidating write toggle: inserting and deleting a
// sentinel row of s bumps the table version (dropping every cached
// result over s) without ever changing Q1's answer — the sentinel's
// negative b2 matches no a2.
func cacheChurn(db *disqo.DB, phase int) error {
	if phase%2 == 0 {
		_, err := db.Exec(`INSERT INTO s VALUES (-1, -1, -1, -1)`)
		return err
	}
	_, err := db.Exec(`DELETE FROM s WHERE b1 = -1`)
	return err
}

// CacheSweep runs the repeat-rate × DML-churn grid. Grid points are
// named rep<hot/10>0/churn<interval> (churn0 = no writes). Every cell's
// Seconds is the mean latency of its class; the warm row of a
// churn-free, high-repeat point is the headline number, and its spread
// against the cold row is the cache's measured speedup.
func CacheSweep(cfg Config, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := newTable("cache",
		fmt.Sprintf("Q1 unnested on RST 5x5 (scale %g): result-cache warm vs cold, repeat-rate × DML-churn grid", cfg.RSTScale),
		[]disqo.Strategy{CacheCold, CacheWarm})
	const slots = 60
	repeatRates := []int{5, 9} // hot statements per ten slots
	churns := []int{0, 8}      // invalidating write every N slots
	for _, rate := range repeatRates {
		for _, churn := range churns {
			if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
				abort := Cell{Aborted: true, Err: cfg.Ctx.Err()}
				param := fmt.Sprintf("r%d0/c%d", rate, churn)
				tab.set(CacheCold, param, abort)
				tab.set(CacheWarm, param, abort)
				continue
			}
			param := fmt.Sprintf("r%d0/c%d", rate, churn)
			if progress != nil {
				progress("cache " + param)
			}
			db, _ := disqo.Open()
			sf := 5 * cfg.RSTScale
			if err := db.LoadRST(sf, sf, sf); err != nil {
				return nil, err
			}
			opts := []disqo.Option{disqo.WithStrategy(disqo.Unnested), disqo.WithTupleLimit(cfg.MaxTuples)}
			if cfg.Timeout > 0 {
				opts = append(opts, disqo.WithTimeout(cfg.Timeout))
			}
			if cfg.Workers > 0 {
				opts = append(opts, disqo.WithWorkers(cfg.Workers))
			}
			var (
				cold, warm       Cell
				coldSum, warmSum float64
				coldN, warmN     int
				coldLat, warmLat telemetry.Histogram
			)
			prevHits := db.CacheStats().Result.Hits
			for i := 0; i < slots; i++ {
				if churn > 0 && i%churn == churn-1 {
					if err := cacheChurn(db, i/churn); err != nil {
						return nil, fmt.Errorf("harness: cache churn: %w", err)
					}
				}
				sql := Q1
				if i%10 >= rate {
					sql = cacheColdQ1(i)
				}
				start := time.Now()
				res, err := db.Query(sql, opts...)
				wall := time.Since(start)
				elapsed := wall.Seconds()
				if err != nil {
					c := classifyCell(err)
					tab.set(CacheCold, param, c)
					tab.set(CacheWarm, param, c)
					coldN, warmN = 0, 0
					break
				}
				cs := db.CacheStats()
				if cs.Result.Hits > prevHits {
					warmSum += elapsed
					warmN++
					warm.Rows = len(res.Rows)
					warmLat.Record(wall)
				} else {
					coldSum += elapsed
					coldN++
					cold.Rows = len(res.Rows)
					coldLat.Record(wall)
				}
				prevHits = cs.Result.Hits
			}
			if coldN == 0 && warmN == 0 {
				continue // the error cells are already set
			}
			counters := cacheCounters(db.CacheStats())
			if coldN > 0 {
				cold.Seconds = coldSum / float64(coldN)
				cold.Cache = counters
				cold.Percentiles = percentilesOf(&coldLat)
				tab.set(CacheCold, param, cold)
			}
			if warmN > 0 {
				warm.Seconds = warmSum / float64(warmN)
				warm.Cache = counters
				warm.Percentiles = percentilesOf(&warmLat)
				tab.set(CacheWarm, param, warm)
			}
		}
	}
	return tab, nil
}

// cacheCounters flattens a fresh DB's CacheStats into the cell section
// (the DB started empty, so totals are the workload's deltas).
func cacheCounters(cs disqo.CacheStats) *CacheCounters {
	c := &CacheCounters{
		PlanHits:      cs.Plan.Hits,
		PlanMisses:    cs.Plan.Misses,
		ResultHits:    cs.Result.Hits,
		ResultMisses:  cs.Result.Misses,
		Waits:         cs.Result.Waits,
		Evictions:     cs.Result.Evictions,
		Invalidations: cs.Result.Invalidations,
	}
	if total := c.ResultHits + c.ResultMisses; total > 0 {
		c.HitRate = float64(c.ResultHits) / float64(total)
	}
	return c
}
