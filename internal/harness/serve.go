package harness

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"disqo"
	"disqo/internal/server"
	"disqo/internal/telemetry"
)

// ServeSweep measures what the network front-end costs: Q1 (unnested)
// on RST 10×10 (scaled by RSTScale), issued closed-loop by `sessions`
// concurrent clients, once embedded (direct DB calls — the ceiling)
// and once served (each client a disqo.Client over TCP against an
// in-process disqod server). Each cell is the batch wall time for all
// sessions to finish their queries plus the per-query latency
// distribution; the served rows must round-trip byte-identically to
// the embedded baseline, which is the wire codec's whole contract.
//
// The serving overhead the table surfaces is JSON framing + loopback
// TCP + the session layer; the spread between embedded and served p99
// under concurrency is what the admission gate and per-session
// serialization actually cost a remote caller.
func ServeSweep(cfg Config, sessions []int, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(sessions) == 0 {
		sessions = []int{1, 4, 8}
	}
	// Cache-cold like every timing experiment: each query must pay for
	// its own execution, or the wire overhead hides behind result-cache
	// hits and the comparison stops measuring serving.
	db, _ := disqo.Open(disqo.WithoutCache())
	defer db.Close()
	sf := 10 * cfg.RSTScale
	if err := db.LoadRST(sf, sf, sf); err != nil {
		return nil, err
	}

	base, err := db.Query(Q1, disqo.WithStrategy(disqo.Unnested), disqo.WithTupleLimit(cfg.MaxTuples))
	if err != nil {
		return nil, fmt.Errorf("harness: serve baseline: %w", err)
	}
	baseline := canonicalRows(base)

	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	tab := newTable("serve",
		fmt.Sprintf("Q1 unnested on RST 10x10 (scale %g): embedded vs served, by concurrent sessions", cfg.RSTScale),
		[]disqo.Strategy{"embedded", "served"})

	// queriesPerSession keeps a cell's work constant as sessions grow,
	// so the columns compare contention, not total load.
	const queriesPerSession = 8
	for _, s := range sessions {
		col := fmt.Sprintf("s=%d", s)
		if progress != nil {
			progress(fmt.Sprintf("serve embedded s=%d", s))
		}
		cell, err := serveCell(cfg, s, queriesPerSession, baseline, func() (queryFn, func(), error) {
			run := func() (*disqo.Result, error) {
				return db.Query(Q1, disqo.WithStrategy(disqo.Unnested), disqo.WithTupleLimit(cfg.MaxTuples))
			}
			return run, func() {}, nil
		})
		if err != nil {
			return nil, err
		}
		tab.set("embedded", col, cell)

		if progress != nil {
			progress(fmt.Sprintf("serve served s=%d", s))
		}
		cell, err = serveCell(cfg, s, queriesPerSession, baseline, func() (queryFn, func(), error) {
			c, err := disqo.Dial(addr)
			if err != nil {
				return nil, nil, err
			}
			run := func() (*disqo.Result, error) { return c.Query(Q1) }
			return run, func() { c.Close() }, nil
		})
		if err != nil {
			return nil, err
		}
		tab.set("served", col, cell)
	}
	return tab, nil
}

type queryFn func() (*disqo.Result, error)

// serveCell runs `sessions` closed loops of k queries each, Repeat
// times, keeping the best batch wall time and pooling every query's
// latency. Each session builds its own transport via mk (a no-op for
// embedded, one Client per session for served — matching how real
// clients hold one connection each).
func serveCell(cfg Config, sessions, k int, baseline []string, mk func() (queryFn, func(), error)) (Cell, error) {
	best := Cell{Seconds: math.Inf(1)}
	var lat telemetry.Histogram
	for rep := 0; rep < cfg.Repeat; rep++ {
		var wg sync.WaitGroup
		errs := make([]error, sessions)
		mismatch := make([]bool, sessions)
		rows := make([]int, sessions)
		start := time.Now()
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run, done, err := mk()
				if err != nil {
					errs[i] = err
					return
				}
				defer done()
				for q := 0; q < k; q++ {
					qStart := time.Now()
					res, err := run()
					if err != nil {
						errs[i] = err
						return
					}
					lat.Record(time.Since(qStart))
					rows[i] = len(res.Rows)
					if q == 0 && !sameRows(baseline, canonicalRows(res)) {
						mismatch[i] = true
						return
					}
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for i := range errs {
			if mismatch[i] {
				return Cell{}, fmt.Errorf("harness: served session %d result diverged from embedded baseline", i)
			}
			if errs[i] != nil {
				return classifyCell(errs[i]), nil
			}
		}
		if elapsed < best.Seconds {
			best = Cell{Seconds: elapsed, Rows: rows[0]}
		}
	}
	best.Percentiles = percentilesOf(&lat)
	return best, nil
}
