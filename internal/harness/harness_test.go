package harness

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"disqo"
)

// tinyConfig keeps harness tests fast: minuscule data, two strategies.
func tinyConfig() Config {
	return Config{
		RSTScale:   0.004, // 40 rows at SF1
		TPCHSFs:    []float64{0.002},
		Strategies: []disqo.Strategy{disqo.Canonical, disqo.Unnested},
		Timeout:    30 * time.Second,
	}
}

func TestFig7aProducesFullGrid(t *testing.T) {
	tab, err := Fig7a(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Params) != 9 {
		t.Fatalf("params = %v", tab.Params)
	}
	for _, s := range tab.Strats {
		for _, p := range tab.Params {
			c, ok := tab.Cells[s][p]
			if !ok {
				t.Fatalf("missing cell %s/%s", s, p)
			}
			if c.Err != nil {
				t.Fatalf("cell %s/%s error: %v", s, p, c.Err)
			}
		}
	}
	// Both strategies must return identical row counts per cell.
	for _, p := range tab.Params {
		a := tab.Cells[disqo.Canonical][p]
		b := tab.Cells[disqo.Unnested][p]
		if a.Rows != b.Rows {
			t.Errorf("row count mismatch at %s: canonical %d vs unnested %d", p, a.Rows, b.Rows)
		}
	}
}

func TestFig7bAndCRun(t *testing.T) {
	for _, fn := range []func(Config, func(string)) (*Table, error){Fig7b, Fig7c} {
		tab, err := fn(tinyConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range tab.Params {
			a := tab.Cells[disqo.Canonical][p]
			b := tab.Cells[disqo.Unnested][p]
			if a.Err != nil || b.Err != nil {
				t.Fatalf("errors at %s: %v / %v", p, a.Err, b.Err)
			}
			if a.Rows != b.Rows {
				t.Errorf("%s row mismatch at %s: %d vs %d", tab.ID, p, a.Rows, b.Rows)
			}
		}
	}
}

func TestTreeLinearQuantified(t *testing.T) {
	for _, id := range []string{"tree", "linear", "quant"} {
		tab, err := Run(id, tinyConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Params) != 3 {
			t.Errorf("%s params = %v", id, tab.Params)
		}
		for _, p := range tab.Params {
			a := tab.Cells[disqo.Canonical][p]
			b := tab.Cells[disqo.Unnested][p]
			if a.Err != nil || b.Err != nil {
				t.Fatalf("%s errors at %s: %v / %v", id, p, a.Err, b.Err)
			}
			if a.Rows != b.Rows {
				t.Errorf("%s row mismatch at %s: %d vs %d", id, p, a.Rows, b.Rows)
			}
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", tinyConfig(), nil); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestFormatAndTimeouts(t *testing.T) {
	tab := newTable("x", "demo", nil)
	tab.set(disqo.Canonical, "SF1", Cell{Seconds: 1.234, Rows: 10})
	tab.set(disqo.Canonical, "SF5", Cell{TimedOut: true})
	tab.set(disqo.Unnested, "SF1", Cell{Seconds: 0.001, Rows: 10})
	out := tab.Format()
	if !strings.Contains(out, "n/a") || !strings.Contains(out, "1.23") {
		t.Errorf("Format:\n%s", out)
	}
	if !strings.Contains(out, "canonical") || !strings.Contains(out, "unnested") {
		t.Errorf("Format rows:\n%s", out)
	}
}

func TestFormatSeconds(t *testing.T) {
	if formatSeconds(123.4) != "123" {
		t.Error("large")
	}
	if formatSeconds(1.5) != "1.50" {
		t.Error("mid")
	}
	if formatSeconds(0.01234) != "0.0123" {
		t.Error("small")
	}
}

func TestSpeedups(t *testing.T) {
	tab := newTable("x", "demo", nil)
	tab.set(disqo.Canonical, "p", Cell{Seconds: 2.0})
	tab.set(disqo.Unnested, "p", Cell{Seconds: 0.5})
	sp := tab.Speedups()
	if math.Abs(sp["p"]-4) > 1e-9 {
		t.Errorf("speedup = %v", sp)
	}
}

func TestTimeoutCellsBecomeNA(t *testing.T) {
	cfg := Config{
		RSTScale:   0.05,
		Strategies: []disqo.Strategy{disqo.S1},
		Timeout:    time.Millisecond,
	}
	db, _ := disqo.Open()
	if err := db.LoadRST(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Directly exercise measure with a giant query and a tiny timeout.
	c := measure(db, Q1, disqo.S1, cfg)
	if !c.TimedOut {
		t.Skip("machine too fast for 1ms timeout; skipping")
	}
}

func TestAblationRuns(t *testing.T) {
	cfg := Config{RSTScale: 0.002, Timeout: 30 * time.Second}
	tab, err := Run("ablation", cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]bool{}
	for _, s := range tab.Strats {
		variants[string(s)] = true
	}
	for _, want := range []string{"canonical", "eqv4", "eqv5", "costbased"} {
		if !variants[want] {
			t.Errorf("missing variant %s", want)
		}
	}
	// All finishing variants must agree on the row count per point.
	for _, p := range tab.Params {
		rows := -1
		for _, s := range tab.Strats {
			c := tab.Cells[s][p]
			if c.Err != nil {
				t.Fatalf("%s/%s: %v", s, p, c.Err)
			}
			if c.TimedOut || c.OverMem {
				continue
			}
			if rows == -1 {
				rows = c.Rows
			} else if rows != c.Rows {
				t.Errorf("%s/%s rows = %d, others %d", s, p, c.Rows, rows)
			}
		}
	}
}

// TestClassifyCellOverloaded pins the admission-shedding contract: a
// query the gate sheds is recorded aborted (transient back-pressure),
// never as a failed cell.
func TestClassifyCellOverloaded(t *testing.T) {
	c := classifyCell(fmt.Errorf("query wrapper: %w", disqo.ErrOverloaded))
	if !c.Aborted {
		t.Fatal("ErrOverloaded must classify as Aborted")
	}
	if c.TimedOut || c.OverMem || c.Err == nil {
		t.Fatalf("unexpected classification: %+v", c)
	}
}

// TestConcurrencySweepTiny smoke-tests the concurrency experiment: a
// 1×2 grid must produce cells with verified-identical results.
func TestConcurrencySweepTiny(t *testing.T) {
	cfg := tinyConfig()
	tab, err := ConcurrencySweep(cfg, []int{1}, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Params) != 2 {
		t.Fatalf("params = %v, want [s=1 s=2]", tab.Params)
	}
	for _, p := range tab.Params {
		c, ok := tab.Cells[disqo.Strategy("w=1")][p]
		if !ok {
			t.Fatalf("missing cell for %s", p)
		}
		if c.Err != nil || c.Aborted || c.TimedOut || c.OverMem {
			t.Fatalf("cell %s not clean: %+v", p, c)
		}
		if c.Rows == 0 {
			t.Fatalf("cell %s returned no rows", p)
		}
	}
}
