package harness

import (
	"fmt"
	"math"
	"strings"

	"disqo"
)

// PredicateSweep measures the vectorized execution path against the
// tuple-at-a-time row path on pure disjunctive filters — the workload
// the columnar kernels exist for. It sweeps a grid of disjunct counts
// d ∈ {1,2,4,8} × overall selectivities s ∈ {2%, 20%, 80%} over a
// single wide integer table:
//
//	SELECT COUNT(*) FROM v WHERE c1 < θ OR c2 < θ OR ... (d terms)
//
// with θ chosen per cell so the whole disjunction passes the target
// fraction of rows regardless of d (each of the d independent uniform
// terms passes 1−(1−s)^(1/d)). The two table rows are the same engine
// on the same data — only WithExecutionPath differs — so any gap is
// the batching, not plan differences. Both paths run single-predicate
// work per row; the harness's identity check confirms equal row counts
// per cell.
func PredicateSweep(cfg Config, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	db, _ := disqo.Open(disqo.WithoutCache())
	rows := int(200_000 * cfg.RSTScale)
	if rows < 1000 {
		rows = 1000
	}
	if err := loadPredicateTable(db, rows); err != nil {
		return nil, err
	}
	// The table is named after what it measures, not the experiment id:
	// cmd/bench writes BENCH_<table-id>.json, so this lands as
	// BENCH_vector.json.
	tab := newTable("vector",
		fmt.Sprintf("disjunctive filter, row vs vectorized path (%d rows, single table)", rows),
		[]disqo.Strategy{"row", "vector"})
	paths := []struct {
		name disqo.Strategy
		path disqo.ExecutionPath
	}{{"row", disqo.PathRow}, {"vector", disqo.PathVector}}
	for _, d := range []int{1, 2, 4, 8} {
		for _, sel := range []float64{0.02, 0.2, 0.8} {
			param := fmt.Sprintf("d=%d s=%g", d, sel)
			sql := predicateQuery(d, sel)
			var rowCount [2]int
			for i, p := range paths {
				if progress != nil {
					progress(fmt.Sprintf("predicates %s %s", param, p.name))
				}
				c := measure(db, sql, disqo.Unnested, cfg, disqo.WithExecutionPath(p.path))
				tab.set(p.name, param, c)
				rowCount[i] = c.Rows
			}
			if rowCount[0] != rowCount[1] {
				return nil, fmt.Errorf("harness: predicates %s: row path returned %d rows, vector %d",
					param, rowCount[0], rowCount[1])
			}
		}
	}
	return tab, nil
}

// predicateQuery builds the d-disjunct filter with a threshold hitting
// the target overall selectivity over values uniform in [0, 10000).
func predicateQuery(d int, sel float64) string {
	thr := int(math.Round((1 - math.Pow(1-sel, 1/float64(d))) * 10000))
	if thr < 1 {
		thr = 1
	}
	terms := make([]string, d)
	for i := range terms {
		terms[i] = fmt.Sprintf("c%d < %d", i+1, thr)
	}
	return fmt.Sprintf("SELECT COUNT(*) FROM v WHERE %s", strings.Join(terms, " OR "))
}

// loadPredicateTable creates v(c1..c8 INTEGER) and fills it with
// deterministic pseudo-random values in [0, 10000) — a splitmix-style
// hash of (row, column), so every run measures identical data.
func loadPredicateTable(db *disqo.DB, rows int) error {
	cols := make([]disqo.Column, 8)
	for i := range cols {
		cols[i] = disqo.Column{Name: fmt.Sprintf("c%d", i+1), Type: disqo.TypeInt}
	}
	if err := db.CreateTable("v", cols); err != nil {
		return err
	}
	const chunk = 4096
	buf := make([][]disqo.Value, 0, chunk)
	for r := 0; r < rows; r++ {
		row := make([]disqo.Value, 8)
		for c := range row {
			row[c] = disqo.Int(int64(predHash(uint64(r), uint64(c)) % 10000))
		}
		buf = append(buf, row)
		if len(buf) == chunk {
			if err := db.Insert("v", buf...); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		return db.Insert("v", buf...)
	}
	return nil
}

// predHash mixes (row, col) into 64 well-spread bits (splitmix64
// finalizer), keeping the dataset deterministic without seeding any
// global generator.
func predHash(r, c uint64) uint64 {
	z := r*0x9e3779b97f4a7c15 + c*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
