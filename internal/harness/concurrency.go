package harness

import (
	"fmt"
	"math"
	"sync"
	"time"

	"disqo"
	"disqo/internal/telemetry"
)

// ConcurrencySweep measures multi-session scaling: Q1 (unnested) on RST
// 10×10 (scaled by RSTScale), with `sessions` goroutines issuing the
// query simultaneously, once per (workers × sessions) grid point. Each
// cell records the wall-clock time for ALL sessions to finish — the
// batch completion time a saturated server cares about — and the
// per-query row count. Every session's result set must be byte-identical
// to the single-session baseline (the snapshot-isolation and morsel
// determinism guarantees combined); a mismatch is an error, not a cell.
//
// The DB runs with its default admission gate. A query the gate sheds
// (ErrOverloaded) marks the cell aborted, the same classification the
// timing experiments use for external cancellation: shedding says the
// grid point overloads this host, not that the query is wrong.
func ConcurrencySweep(cfg Config, workers, sessions []int, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(workers) == 0 {
		workers = []int{1, 2}
	}
	if len(sessions) == 0 {
		sessions = []int{1, 4, 8}
	}
	// Cache-cold like every timing experiment: each session must pay for
	// its own execution or the contention being measured disappears.
	db, _ := disqo.Open(disqo.WithoutCache())
	sf := 10 * cfg.RSTScale
	if err := db.LoadRST(sf, sf, sf); err != nil {
		return nil, err
	}
	tab := newTable("concurrency",
		fmt.Sprintf("Q1 unnested on RST 10x10 (scale %g): concurrent sessions × per-query workers", cfg.RSTScale),
		nil)

	// Single-session baseline fingerprint for the identity check.
	base, err := db.Query(Q1, disqo.WithStrategy(disqo.Unnested), disqo.WithTupleLimit(cfg.MaxTuples))
	if err != nil {
		return nil, fmt.Errorf("harness: concurrency baseline: %w", err)
	}
	baseline := canonicalRows(base)

	for _, w := range workers {
		row := disqo.Strategy(fmt.Sprintf("w=%d", w))
		for _, s := range sessions {
			if progress != nil {
				progress(fmt.Sprintf("concurrency w=%d s=%d", w, s))
			}
			cell, canons := runSessions(db, w, s, cfg)
			for i, canon := range canons {
				if canon != nil && !sameRows(baseline, canon) {
					return nil, fmt.Errorf("harness: session %d (w=%d s=%d) changed the result set", i, w, s)
				}
			}
			tab.set(row, fmt.Sprintf("s=%d", s), cell)
		}
	}
	return tab, nil
}

// runSessions launches n concurrent sessions of Q1 and returns the batch
// cell plus each session's canonical rows (nil for a shed session).
func runSessions(db *disqo.DB, workers, n int, cfg Config) (Cell, [][]string) {
	best := Cell{Seconds: math.Inf(1)}
	canons := make([][]string, n)
	// Per-query latency across every session of every repeat: the batch
	// wall time is the headline, but the spread between a session's p50
	// and p99 is what queueing under contention actually costs a client.
	var lat telemetry.Histogram
	for rep := 0; rep < cfg.Repeat; rep++ {
		var wg sync.WaitGroup
		errs := make([]error, n)
		rows := make([]int, n)
		start := time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				opts := []disqo.Option{disqo.WithStrategy(disqo.Unnested),
					disqo.WithTupleLimit(cfg.MaxTuples), disqo.WithWorkers(workers)}
				if cfg.Timeout > 0 {
					opts = append(opts, disqo.WithTimeout(cfg.Timeout))
				}
				if cfg.Ctx != nil {
					opts = append(opts, disqo.WithContext(cfg.Ctx))
				}
				qStart := time.Now()
				res, err := db.Query(Q1, opts...)
				if err != nil {
					errs[i] = err
					return
				}
				lat.Record(time.Since(qStart))
				rows[i] = len(res.Rows)
				canons[i] = canonicalRows(res)
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				// Classify on the first failure, same scheme as measure().
				return classifyCell(err), canons
			}
		}
		if elapsed < best.Seconds {
			best = Cell{Seconds: elapsed, Rows: rows[0]}
		}
	}
	best.Percentiles = percentilesOf(&lat)
	return best, canons
}
