// Package harness regenerates the paper's evaluation artifacts: the
// three timing tables of Fig. 7 (Q1 on RST, Query 2d on TPC-H, Q2 on
// RST), plus the technical report's linear/tree and quantified-subquery
// experiments. Each experiment sweeps dataset sizes and evaluates every
// strategy with a per-cell timeout, printing a paper-style table where
// timed-out cells read "n/a" — the paper's six-hour cutoff in miniature.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"disqo"
	"disqo/internal/telemetry"
)

// Q1, Q2, Q3, Q4 are the paper's example queries (§3); Query2d is the
// disjunctive TPC-H Q2 variant from the introduction.
const (
	Q1 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	         OR a4 > 1500`
	Q2 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)`
	Q3 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	         OR a3 = (SELECT COUNT(DISTINCT *) FROM t WHERE a4 = c2)`
	Q4 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2
	                   OR b3 = (SELECT COUNT(DISTINCT *) FROM t WHERE b4 = c2))`
	Query2d = `SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
	           FROM part, supplier, partsupp, nation, region
	           WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
	             AND p_size = 15 AND p_type LIKE '%BRASS'
	             AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	             AND r_name = 'EUROPE'
	             AND (ps_supplycost = (SELECT MIN(ps_supplycost)
	                                   FROM partsupp, supplier, nation, region
	                                   WHERE s_suppkey = ps_suppkey
	                                     AND p_partkey = ps_partkey
	                                     AND s_nationkey = n_nationkey
	                                     AND n_regionkey = r_regionkey
	                                     AND r_name = 'EUROPE')
	                  OR ps_availqty > 2000)
	           ORDER BY s_acctbal DESC, n_name, s_name, p_partkey`
	QuantExists = `SELECT DISTINCT * FROM r
	               WHERE EXISTS (SELECT * FROM s WHERE a2 = b2 AND b4 > 2500)
	                  OR a4 > 1500`
)

// Config tunes an experiment run.
type Config struct {
	// Timeout per cell; zero means none. Timed-out cells print "n/a".
	Timeout time.Duration
	// RSTScale multiplies the paper's RST scale factors (1, 5, 10). The
	// paper's SF 1 is 10,000 rows; the default 0.1 keeps canonical
	// baselines tractable on one core. Results compare growth ratios, so
	// the multiplier cancels out of the shapes.
	RSTScale float64
	// TPCHSFs are the TPC-H scale factors swept by Fig. 7(b).
	TPCHSFs []float64
	// Strategies to evaluate; defaults to all five.
	Strategies []disqo.Strategy
	// Repeat re-runs each cell and keeps the minimum (noise control).
	Repeat int
	// MaxTuples bounds per-query materialization; exceeding it marks the
	// cell "mem" (default 20 million tuples ≈ a few GB).
	MaxTuples int64
	// Workers is the morsel-parallel pool size passed to every query;
	// zero uses the engine default (GOMAXPROCS).
	Workers int
	// Path pins the execution path for every measured query: "row" or
	// "vector". Empty uses the engine default (vector). The predicates
	// experiment ignores it — sweeping both paths is its point.
	Path string
	// OpBreakdown re-runs each finished cell once with metrics enabled
	// and attaches a per-operator breakdown (Cell.Ops). The extra run is
	// separate so instrumentation never pollutes the timed measurements.
	OpBreakdown bool
	// Ctx cancels the remaining work of a sweep: each query runs under
	// it, and a cell cut short by cancellation is recorded Aborted —
	// distinct from a timeout, which is a property of the cell itself.
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.RSTScale == 0 {
		c.RSTScale = 0.1
	}
	if len(c.TPCHSFs) == 0 {
		c.TPCHSFs = []float64{0.01, 0.02, 0.05}
	}
	if len(c.Strategies) == 0 {
		c.Strategies = disqo.Strategies()
	}
	if c.Repeat == 0 {
		c.Repeat = 1
	}
	if c.MaxTuples == 0 {
		c.MaxTuples = 20_000_000
	}
	return c
}

// Cell is one measured table entry.
type Cell struct {
	Seconds  float64
	Rows     int
	TimedOut bool
	OverMem  bool
	// Aborted marks a cell cut short by external cancellation
	// (Config.Ctx) rather than by its own timeout or memory budget.
	Aborted bool
	Err     error
	// Ops is the per-operator breakdown from a separate metrics-enabled
	// run; set only under Config.OpBreakdown.
	Ops []OpBreakdown
	// Cache carries the DB-wide cache counters behind this cell; set only
	// by the cache experiment (timing experiments run cache-cold).
	Cache *CacheCounters
	// Percentiles summarizes the cell's per-query latency distribution
	// (log2-bucketed, so each estimate is the upper bound of its bucket).
	// Present when the cell measured more than a single latency sample;
	// Seconds remains the historical headline (minimum, or mean for the
	// cache experiment).
	Percentiles *Percentiles
}

// Percentiles is a cell's latency distribution summary in seconds,
// estimated from a log2-bucketed histogram of every sample the cell
// measured (all repeats; for concurrency cells, every session's query).
type Percentiles struct {
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
	Samples int64   `json:"samples"`
}

// percentilesOf summarizes a histogram, or nil when it holds fewer than
// two samples (a single measurement has no distribution to report).
func percentilesOf(h *telemetry.Histogram) *Percentiles {
	if h.Count() < 2 {
		return nil
	}
	return &Percentiles{
		P50:     h.Quantile(0.50).Seconds(),
		P95:     h.Quantile(0.95).Seconds(),
		P99:     h.Quantile(0.99).Seconds(),
		Samples: h.Count(),
	}
}

// CacheCounters is the cache section of a cell: the counter deltas the
// cell's workload produced, plus the resulting result-cache hit rate.
type CacheCounters struct {
	PlanHits      int64   `json:"plan_hits"`
	PlanMisses    int64   `json:"plan_misses"`
	ResultHits    int64   `json:"result_hits"`
	ResultMisses  int64   `json:"result_misses"`
	Waits         int64   `json:"waits,omitempty"`
	Evictions     int64   `json:"evictions,omitempty"`
	Invalidations int64   `json:"invalidations,omitempty"`
	HitRate       float64 `json:"hit_rate"`
}

// OpBreakdown is one physical operator's share of a cell's work.
type OpBreakdown struct {
	ID      int     `json:"id"`
	Op      string  `json:"op"`
	EstRows float64 `json:"est_rows"`
	Rows    int64   `json:"rows"`
	Calls   int64   `json:"calls"`
	Seconds float64 `json:"seconds"`
}

// Table is one experiment's output grid: strategies × parameter points.
type Table struct {
	ID, Title string
	Params    []string
	Strats    []disqo.Strategy
	Cells     map[disqo.Strategy]map[string]Cell
	// Meta records the measurement environment; set by the caller
	// (cmd/bench stamps every table before writing JSON).
	Meta *RunMeta
}

func newTable(id, title string, strats []disqo.Strategy) *Table {
	return &Table{ID: id, Title: title, Strats: strats,
		Cells: make(map[disqo.Strategy]map[string]Cell)}
}

func (t *Table) set(s disqo.Strategy, param string, c Cell) {
	if t.Cells[s] == nil {
		t.Cells[s] = make(map[string]Cell)
		t.Strats = appendUnique(t.Strats, s)
	}
	if !contains(t.Params, param) {
		t.Params = append(t.Params, param)
	}
	t.Cells[s][param] = c
}

func appendUnique(ss []disqo.Strategy, s disqo.Strategy) []disqo.Strategy {
	for _, x := range ss {
		if x == s {
			return ss
		}
	}
	return append(ss, s)
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// JSON renders the table as a machine-readable document: experiment id,
// title, and one object per (system, parameter) cell.
func (t *Table) JSON() ([]byte, error) {
	type cellJSON struct {
		System      string         `json:"system"`
		Param       string         `json:"param"`
		Seconds     float64        `json:"seconds,omitempty"`
		Rows        int            `json:"rows"`
		TimedOut    bool           `json:"timed_out,omitempty"`
		OverMem     bool           `json:"over_memory,omitempty"`
		Aborted     bool           `json:"aborted,omitempty"`
		Error       string         `json:"error,omitempty"`
		Ops         []OpBreakdown  `json:"ops,omitempty"`
		Cache       *CacheCounters `json:"cache,omitempty"`
		Percentiles *Percentiles   `json:"percentiles,omitempty"`
	}
	doc := struct {
		ID    string     `json:"experiment"`
		Title string     `json:"title"`
		Meta  *RunMeta   `json:"meta,omitempty"`
		Cells []cellJSON `json:"cells"`
	}{ID: t.ID, Title: t.Title, Meta: t.Meta}
	for _, s := range t.Strats {
		for _, p := range t.Params {
			c, ok := t.Cells[s][p]
			if !ok {
				continue
			}
			cj := cellJSON{System: string(s), Param: p, Seconds: c.Seconds,
				Rows: c.Rows, TimedOut: c.TimedOut, OverMem: c.OverMem,
				Aborted: c.Aborted, Ops: c.Ops, Cache: c.Cache,
				Percentiles: c.Percentiles}
			if c.Err != nil {
				cj.Error = c.Err.Error()
			}
			doc.Cells = append(doc.Cells, cj)
		}
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Format renders the table in the paper's layout: one row per system,
// one column per parameter point, seconds with "n/a" for timeouts.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	width := 10
	fmt.Fprintf(&b, "%-12s", "system")
	for _, p := range t.Params {
		fmt.Fprintf(&b, "%*s", width, p)
	}
	b.WriteByte('\n')
	for _, s := range t.Strats {
		fmt.Fprintf(&b, "%-12s", string(s))
		for _, p := range t.Params {
			c, ok := t.Cells[s][p]
			switch {
			case !ok:
				fmt.Fprintf(&b, "%*s", width, "-")
			case c.TimedOut:
				fmt.Fprintf(&b, "%*s", width, "n/a")
			case c.OverMem:
				fmt.Fprintf(&b, "%*s", width, "mem")
			case c.Aborted:
				fmt.Fprintf(&b, "%*s", width, "abrt")
			case c.Err != nil:
				fmt.Fprintf(&b, "%*s", width, "err")
			default:
				fmt.Fprintf(&b, "%*s", width, formatSeconds(c.Seconds))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}

// pathOption maps Config.Path to a query option; ok=false means the
// config doesn't pin a path (engine default).
func pathOption(path string) (disqo.Option, bool) {
	switch path {
	case "row":
		return disqo.WithExecutionPath(disqo.PathRow), true
	case "vector":
		return disqo.WithExecutionPath(disqo.PathVector), true
	}
	return nil, false
}

// measure runs one query under one strategy against a prepared DB.
// extra options are appended last, so sweeps can pin per-cell knobs
// (the predicates experiment pins the execution path).
func measure(db *disqo.DB, sql string, s disqo.Strategy, cfg Config, extra ...disqo.Option) Cell {
	best := Cell{Seconds: math.Inf(1)}
	var lat telemetry.Histogram
	for i := 0; i < cfg.Repeat; i++ {
		opts := []disqo.Option{disqo.WithStrategy(s), disqo.WithTupleLimit(cfg.MaxTuples)}
		if cfg.Timeout > 0 {
			opts = append(opts, disqo.WithTimeout(cfg.Timeout))
		}
		if cfg.Workers > 0 {
			opts = append(opts, disqo.WithWorkers(cfg.Workers))
		}
		if po, ok := pathOption(cfg.Path); ok {
			opts = append(opts, po)
		}
		if cfg.Ctx != nil {
			opts = append(opts, disqo.WithContext(cfg.Ctx))
		}
		opts = append(opts, extra...)
		start := time.Now()
		res, err := db.Query(sql, opts...)
		wall := time.Since(start)
		elapsed := wall.Seconds()
		if err != nil {
			return classifyCell(err)
		}
		lat.Record(wall)
		if elapsed < best.Seconds {
			best = Cell{Seconds: elapsed, Rows: len(res.Rows)}
		}
	}
	best.Percentiles = percentilesOf(&lat)
	if cfg.OpBreakdown {
		best.Ops = opBreakdown(db, sql, s, cfg, extra...)
	}
	return best
}

// classifyCell maps a query failure to a cell. The engine wraps
// execution failures in *disqo.QueryError, so classification must follow
// the unwrap chain. Admission shedding (ErrOverloaded) is transient
// back-pressure, not a property of the query, so it records the cell
// aborted — like external cancellation — rather than failed.
func classifyCell(err error) Cell {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return Cell{Aborted: true, Err: err}
	case errors.Is(err, disqo.ErrOverloaded):
		return Cell{Aborted: true, Err: err}
	case errors.Is(err, disqo.ErrTimeout):
		return Cell{TimedOut: true}
	case errors.Is(err, disqo.ErrMemoryLimit):
		return Cell{OverMem: true}
	}
	return Cell{Err: err}
}

// opBreakdown runs the query once more with metrics enabled and
// flattens the per-operator report. Failures simply omit the breakdown;
// the timed cell already recorded the outcome.
func opBreakdown(db *disqo.DB, sql string, s disqo.Strategy, cfg Config, extra ...disqo.Option) []OpBreakdown {
	opts := []disqo.Option{disqo.WithStrategy(s), disqo.WithTupleLimit(cfg.MaxTuples), disqo.WithMetrics()}
	if cfg.Timeout > 0 {
		opts = append(opts, disqo.WithTimeout(cfg.Timeout))
	}
	if cfg.Workers > 0 {
		opts = append(opts, disqo.WithWorkers(cfg.Workers))
	}
	if po, ok := pathOption(cfg.Path); ok {
		opts = append(opts, po)
	}
	opts = append(opts, extra...)
	res, err := db.Query(sql, opts...)
	if err != nil || res.Metrics() == nil {
		return nil
	}
	pm := res.Metrics()
	out := make([]OpBreakdown, 0, len(pm.Ops))
	for _, op := range pm.Ops {
		out = append(out, OpBreakdown{ID: op.ID, Op: op.Op, EstRows: op.EstRows,
			Rows: op.RowsOut, Calls: op.Calls, Seconds: op.Wall.Seconds()})
	}
	return out
}

// rstPairs is the paper's SF1×SF2 grid.
var rstPairs = [][2]float64{
	{1, 1}, {1, 5}, {1, 10},
	{5, 1}, {5, 5}, {5, 10},
	{10, 1}, {10, 5}, {10, 10},
}

// runRSTSweep runs a query over the Fig. 7 RST grid.
func runRSTSweep(id, title, sql string, cfg Config, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := newTable(id, title, cfg.Strategies)
	for _, pair := range rstPairs {
		// Timing experiments measure execution, not the result cache:
		// every harness DB runs cache-cold so Repeat keeps honest minima.
		db, _ := disqo.Open(disqo.WithoutCache())
		if err := db.LoadRST(pair[0]*cfg.RSTScale, pair[1]*cfg.RSTScale, pair[1]*cfg.RSTScale); err != nil {
			return nil, err
		}
		param := fmt.Sprintf("%gx%g", pair[0], pair[1])
		for _, s := range cfg.Strategies {
			if progress != nil {
				progress(fmt.Sprintf("%s %s %s", id, param, s))
			}
			tab.set(s, param, measure(db, sql, s, cfg))
		}
	}
	return tab, nil
}

// Fig7a regenerates Fig. 7(a): Q1 (disjunctive linking) on RST.
func Fig7a(cfg Config, progress func(string)) (*Table, error) {
	return runRSTSweep("fig7a", "Q1: disjunctive linking, COUNT(DISTINCT *) on RST (SF1×SF2)", Q1, cfg, progress)
}

// Fig7c regenerates Fig. 7(c): Q2 (disjunctive correlation) on RST.
func Fig7c(cfg Config, progress func(string)) (*Table, error) {
	return runRSTSweep("fig7c", "Q2: disjunctive correlation, COUNT(*) on RST (SF1×SF2)", Q2, cfg, progress)
}

// Fig7b regenerates Fig. 7(b): Query 2d on TPC-H.
func Fig7b(cfg Config, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := newTable("fig7b", "Query 2d: disjunctive linking, MIN on TPC-H (SF)", cfg.Strategies)
	for _, sf := range cfg.TPCHSFs {
		db, _ := disqo.Open(disqo.WithoutCache())
		if err := db.LoadTPCH(sf); err != nil {
			return nil, err
		}
		param := fmt.Sprintf("SF%g", sf)
		for _, s := range cfg.Strategies {
			if progress != nil {
				progress(fmt.Sprintf("fig7b %s %s", param, s))
			}
			tab.set(s, param, measure(db, Query2d, s, cfg))
		}
	}
	return tab, nil
}

// equalSFPoints is the sweep used by the TR-style linear/tree/quantified
// experiments: equal scale factors for all three relations.
var equalSFPoints = []float64{1, 5, 10}

func runEqualSweep(id, title, sql string, scaleShrink float64, cfg Config, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	tab := newTable(id, title, cfg.Strategies)
	for _, sf := range equalSFPoints {
		db, _ := disqo.Open(disqo.WithoutCache())
		eff := sf * cfg.RSTScale * scaleShrink
		if err := db.LoadRST(eff, eff, eff); err != nil {
			return nil, err
		}
		param := fmt.Sprintf("SF%g", sf)
		for _, s := range cfg.Strategies {
			if progress != nil {
				progress(fmt.Sprintf("%s %s %s", id, param, s))
			}
			tab.set(s, param, measure(db, sql, s, cfg))
		}
	}
	return tab, nil
}

// Tree runs the Q3 tree-query experiment (TR extension).
func Tree(cfg Config, progress func(string)) (*Table, error) {
	return runEqualSweep("tree", "Q3: tree query, two disjunctive linking predicates", Q3, 0.5, cfg, progress)
}

// Linear runs the Q4 linear-query experiment (TR extension). The inner
// blocks nest two deep, so the sweep shrinks the data further: the
// canonical baseline is O(|R|·|S|·|T|).
func Linear(cfg Config, progress func(string)) (*Table, error) {
	return runEqualSweep("linear", "Q4: linear query, nested disjunctive correlation", Q4, 0.2, cfg, progress)
}

// Quantified runs the EXISTS-in-disjunction experiment (TR extension).
func Quantified(cfg Config, progress func(string)) (*Table, error) {
	return runEqualSweep("quant", "EXISTS in disjunction (quantified subqueries)", QuantExists, 1, cfg, progress)
}

// WorkerSweep measures morsel-parallel scaling: the unnested strategy
// on Q1 at the largest RST grid point (10×10, scaled by RSTScale), once
// per worker count. Each run's result set must be byte-identical to the
// first worker count's — the executor's determinism guarantee — and a
// mismatch is an error, not a cell.
func WorkerSweep(cfg Config, workers []int, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(workers) == 0 {
		workers = []int{1, 2, 4}
	}
	db, _ := disqo.Open(disqo.WithoutCache())
	sf := 10 * cfg.RSTScale
	if err := db.LoadRST(sf, sf, sf); err != nil {
		return nil, err
	}
	tab := newTable("workers",
		fmt.Sprintf("Q1 unnested on RST 10x10 (scale %g): morsel-parallel worker sweep", cfg.RSTScale),
		[]disqo.Strategy{disqo.Unnested})
	var baseline []string
	for _, w := range workers {
		if progress != nil {
			progress(fmt.Sprintf("workers w=%d", w))
		}
		best := Cell{Seconds: math.Inf(1)}
		var lat telemetry.Histogram
		var canon []string
		for i := 0; i < cfg.Repeat; i++ {
			opts := []disqo.Option{disqo.WithStrategy(disqo.Unnested),
				disqo.WithTupleLimit(cfg.MaxTuples), disqo.WithWorkers(w)}
			if cfg.Timeout > 0 {
				opts = append(opts, disqo.WithTimeout(cfg.Timeout))
			}
			start := time.Now()
			res, err := db.Query(Q1, opts...)
			wall := time.Since(start)
			elapsed := wall.Seconds()
			if err != nil {
				return nil, fmt.Errorf("harness: worker sweep w=%d: %w", w, err)
			}
			lat.Record(wall)
			if elapsed < best.Seconds {
				best = Cell{Seconds: elapsed, Rows: len(res.Rows)}
			}
			canon = canonicalRows(res)
		}
		best.Percentiles = percentilesOf(&lat)
		if baseline == nil {
			baseline = canon
		} else if !sameRows(baseline, canon) {
			return nil, fmt.Errorf("harness: worker count %d changed the result set", w)
		}
		tab.set(disqo.Unnested, fmt.Sprintf("w=%d", w), best)
	}
	return tab, nil
}

// canonicalRows renders a result's rows sorted, for order-insensitive
// identity comparison across worker counts.
func canonicalRows(res *disqo.Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, ",")
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Experiment names in presentation order.
var Order = []string{"fig7a", "fig7b", "fig7c", "tree", "linear", "quant", "ablation", "workers", "concurrency", "cache", "predicates", "scenario", "serve"}

// Run dispatches an experiment by id.
func Run(id string, cfg Config, progress func(string)) (*Table, error) {
	switch id {
	case "fig7a":
		return Fig7a(cfg, progress)
	case "fig7b":
		return Fig7b(cfg, progress)
	case "fig7c":
		return Fig7c(cfg, progress)
	case "tree":
		return Tree(cfg, progress)
	case "linear":
		return Linear(cfg, progress)
	case "quant":
		return Quantified(cfg, progress)
	case "ablation":
		return Ablation(cfg, progress)
	case "workers":
		return WorkerSweep(cfg, nil, progress)
	case "concurrency":
		return ConcurrencySweep(cfg, nil, nil, progress)
	case "cache":
		return CacheSweep(cfg, progress)
	case "predicates":
		return PredicateSweep(cfg, progress)
	case "scenario":
		return ScenarioSweep(cfg, progress)
	case "serve":
		return ServeSweep(cfg, nil, progress)
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(Order, ", "))
	}
}

// Speedups summarizes a table: for each parameter point, the ratio of the
// slowest finished baseline to the unnested strategy.
func (t *Table) Speedups() map[string]float64 {
	out := make(map[string]float64)
	for _, p := range t.Params {
		un, ok := t.Cells[disqo.Unnested][p]
		if !ok || un.TimedOut || un.Err != nil || un.Seconds == 0 {
			continue
		}
		worst := 0.0
		for _, s := range t.Strats {
			if s == disqo.Unnested {
				continue
			}
			c, ok := t.Cells[s][p]
			if ok && !c.TimedOut && c.Err == nil && c.Seconds > worst {
				worst = c.Seconds
			}
		}
		if worst > 0 {
			out[p] = worst / un.Seconds
		}
	}
	return out
}

// SortedParams returns the parameter points in display order.
func (t *Table) SortedParams() []string {
	out := append([]string(nil), t.Params...)
	sort.Strings(out)
	return out
}
