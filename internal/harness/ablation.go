package harness

import (
	"errors"
	"fmt"
	"time"

	"disqo"
	"disqo/internal/catalog"
	"disqo/internal/datagen"
	"disqo/internal/exec"
	"disqo/internal/rewrite"
	"disqo/internal/sqlparser"
	"disqo/internal/stats"
	"disqo/internal/translate"
)

// Ablation quantifies two design decisions DESIGN.md calls out:
//
//  1. decomposability (Eqv. 4) versus the general Eqv. 5 on the same
//     query — Q2's COUNT(*) is decomposable, so both apply; Eqv. 4's
//     one-pass split should win by orders of magnitude because Eqv. 5
//     enumerates the complement of the bypass join;
//  2. cost-based application — the optimizer should decline unnesting
//     where the rewrite is estimated slower than canonical.
//
// The variants are: eqv4 (normal unnesting), eqv5 (PreferEqv5 forces the
// general equivalence), canonical, and costbased.
func Ablation(cfg Config, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	variants := []string{"canonical", "eqv4", "eqv5", "costbased"}
	tab := newTable("ablation", "Q2 ablation: Eqv. 4 vs forced Eqv. 5 vs cost-based", nil)
	for _, sf := range equalSFPoints {
		eff := sf * cfg.RSTScale
		cat := catalog.New()
		if err := datagen.LoadRST(cat, datagen.RSTConfig{SFR: eff, SFS: eff, SFT: eff}); err != nil {
			return nil, err
		}
		param := fmt.Sprintf("SF%g", sf)
		for _, v := range variants {
			if progress != nil {
				progress(fmt.Sprintf("ablation %s %s", param, v))
			}
			cell := measureVariant(cat, Q2, v, cfg)
			tab.set(disqo.Strategy(v), param, cell)
		}
	}
	return tab, nil
}

// measureVariant plans Q2 under an ablation variant and times execution.
func measureVariant(cat *catalog.Catalog, sql, variant string, cfg Config) Cell {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return Cell{Err: err}
	}
	canonical, err := translate.New(cat).Translate(stmt)
	if err != nil {
		return Cell{Err: err}
	}
	plan := canonical
	cacheMode := exec.CacheScans
	switch variant {
	case "canonical":
	case "eqv4":
		rw := rewrite.New(cat, rewrite.AllCaps())
		if plan, err = rw.Rewrite(canonical); err != nil {
			return Cell{Err: err}
		}
		cacheMode = exec.CacheAll
	case "eqv5":
		caps := rewrite.AllCaps()
		caps.PreferEqv5 = true
		rw := rewrite.New(cat, caps)
		if plan, err = rw.Rewrite(canonical); err != nil {
			return Cell{Err: err}
		}
		cacheMode = exec.CacheAll
	case "costbased":
		// Approximate the public CostBased strategy with internal parts
		// so the whole ablation shares one catalog.
		est := newEstimator(cat)
		rw := rewrite.New(cat, rewrite.AllCaps())
		unnested, err := rw.Rewrite(canonical)
		if err != nil {
			return Cell{Err: err}
		}
		if est.PlanCost(unnested) < est.PlanCost(canonical) {
			plan = unnested
			cacheMode = exec.CacheAll
		}
	default:
		return Cell{Err: fmt.Errorf("unknown variant %q", variant)}
	}
	ex := exec.New(cat, exec.Options{Cache: cacheMode, Timeout: cfg.Timeout, MaxTuples: cfg.MaxTuples})
	start := time.Now()
	rel, err := ex.Run(plan)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		// Executor failures arrive wrapped in *exec.OpError, so identity
		// comparison would misclassify them; follow the unwrap chain.
		switch {
		case errors.Is(err, exec.ErrTimeout):
			return Cell{TimedOut: true}
		case errors.Is(err, exec.ErrMemoryLimit):
			return Cell{OverMem: true}
		}
		return Cell{Err: err}
	}
	return Cell{Seconds: elapsed, Rows: rel.Cardinality()}
}

// newEstimator builds a stats estimator; kept here to limit the ablation
// file's import surface in one place.
func newEstimator(cat *catalog.Catalog) *stats.Estimator { return stats.New(cat) }
