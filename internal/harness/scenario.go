package harness

import (
	"fmt"
	"time"

	"disqo"
	"disqo/internal/scenario"
)

// ScenarioSweep runs the adversarial scenario engine as a benchmark: a
// seed range of generated nested-disjunctive queries, each executed
// across the full differential matrix (canonical vs. unnested × row
// vs. vector × cache tiers × worker counts × both null modes). The
// table reports, per grammar shape, the matrix throughput — "matrix"
// is total queries and wall seconds, "qps" the resulting queries per
// second — and a "divergences" row whose count is pinned at zero: any
// divergence fails the experiment outright, because a strategy
// disagreement is an engine bug, not a slow cell.
//
// The seed count scales with Config.RSTScale (the default 0.1 scans 30
// seeds — a smoke run; verify.sh's 500-seed sweep lives in the
// scenario package tests).
func ScenarioSweep(cfg Config, progress func(string)) (*Table, error) {
	cfg = cfg.withDefaults()
	seeds := int(300 * cfg.RSTScale)
	if seeds < 12 {
		seeds = 12
	}
	r := &scenario.Runner{Timeout: cfg.Timeout}
	tab := newTable("scenario",
		fmt.Sprintf("differential scenario sweep (%d seeds; matrix = queries & wall s, qps = queries/s, divergences pinned 0)", seeds),
		[]disqo.Strategy{"matrix", "qps", "divergences"})

	type acc struct {
		runs int
		secs float64
	}
	byShape := map[scenario.Shape]*acc{}
	total := &acc{}
	aborted := false
	for seed := 0; seed < seeds; seed++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			aborted = true
			break
		}
		sc := scenario.Generate(uint64(seed))
		if progress != nil {
			progress(fmt.Sprintf("scenario seed %d (%s)", seed, sc.Query.Shape))
		}
		start := time.Now()
		out, err := r.Check(sc)
		if err != nil {
			return nil, fmt.Errorf("harness: scenario seed %d: %w", seed, err)
		}
		if out.Divergence != nil {
			return nil, fmt.Errorf("harness: scenario sweep found a divergence: %s", out.Divergence.Error())
		}
		elapsed := time.Since(start).Seconds()
		a := byShape[sc.Query.Shape]
		if a == nil {
			a = &acc{}
			byShape[sc.Query.Shape] = a
		}
		a.runs += out.Runs
		a.secs += elapsed
		total.runs += out.Runs
		total.secs += elapsed
	}

	params := make([]string, 0, len(scenario.Shapes())+1)
	for _, sh := range scenario.Shapes() {
		if byShape[sh] != nil {
			params = append(params, string(sh))
		}
	}
	params = append(params, "all")
	byShape["all"] = total
	for _, p := range params {
		a := byShape[scenario.Shape(p)]
		tab.set("matrix", p, Cell{Seconds: a.secs, Rows: a.runs, Aborted: aborted})
		qps := Cell{Aborted: aborted}
		if a.secs > 0 {
			qps.Seconds = float64(a.runs) / a.secs
			qps.Rows = a.runs
		}
		tab.set("qps", p, qps)
		tab.set("divergences", p, Cell{Aborted: aborted})
	}
	return tab, nil
}
