package testutil

import (
	"os"
	"testing"
	"time"
)

// VerifyNoFDLeaks snapshots the process's open file-descriptor count
// and registers a cleanup that fails the test if the count has not
// returned to that level by the end of the test. Use it in tests that
// open sockets or files behind abstractions (servers, clients,
// replication streams) where a leaked descriptor would otherwise go
// unnoticed until the process hits its rlimit.
//
// Counting reads /proc/self/fd, so the check silently no-ops on
// platforms without procfs.
func VerifyNoFDLeaks(t testing.TB) {
	t.Helper()
	before, ok := countFDs()
	if !ok {
		return
	}
	t.Cleanup(func() {
		// Close(2) is synchronous but the goroutines doing the closing
		// may still be finishing; give them the same grace VerifyNoLeaks
		// does.
		deadline := time.Now().Add(3 * time.Second)
		after, _ := countFDs()
		for after > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			after, _ = countFDs()
		}
		if after > before {
			t.Errorf("file descriptor leak: %d open before test, %d after", before, after)
		}
	})
}

func countFDs() (int, bool) {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false
	}
	// The ReadDir itself holds one fd; it is closed by the time we
	// return, and both snapshots pay the same cost anyway.
	return len(ents), true
}
