//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-count goldens (testing.AllocsPerRun) skip under
// race builds: the detector's shadow bookkeeping allocates on paths
// that are allocation-free in a normal build.
const RaceEnabled = true
