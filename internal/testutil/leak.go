// Package testutil holds helpers shared across the repo's test
// packages. It must not import any disqo package so every layer — from
// types up to the public API — can use it without cycles.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup
// that fails the test if the count has not returned to that level by
// the end of the test. Call it first thing in any test that exercises
// the worker pool, cancellation, or panic recovery.
//
// The check retries for a short grace period because exiting workers
// may still be between their last send and goexit when the test body
// returns; a genuine leak stays elevated past the deadline and the
// failure message includes a full goroutine dump for diagnosis.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		after := runtime.NumGoroutine()
		for after > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			after = runtime.NumGoroutine()
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d running before test, %d after\n%s",
				before, after, buf[:n])
		}
	})
}
