package stats

import (
	"testing"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/types"
)

func TestPlanCostHashCheaperThanNL(t *testing.T) {
	cat, r, s := fixture(t)
	e := New(cat)
	eq := algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2"))
	lt := algebra.Cmp(types.LT, algebra.Col("r.a2"), algebra.Col("s.b2"))
	hash := e.PlanCost(algebra.NewJoin(r, s, eq))
	nl := e.PlanCost(algebra.NewJoin(r, s, lt))
	if hash >= nl {
		t.Errorf("hash join cost %g must be below NL cost %g", hash, nl)
	}
}

func TestPlanCostCountsSharedNodesOnce(t *testing.T) {
	cat, r, _ := fixture(t)
	e := New(cat)
	bp := algebra.NewBypassSelect(r, algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.ConstInt(50)))
	shared := algebra.NewUnionDisjoint(algebra.Pos(bp), algebra.Neg(bp))
	single := e.PlanCost(algebra.Pos(bp))
	both := e.PlanCost(shared)
	// The union adds only the union's own cost, not a re-evaluation of
	// the bypass select.
	if both > 2.2*single {
		t.Errorf("DAG sharing not reflected: single=%g both=%g", single, both)
	}
}

func TestPlanCostUnnestedBeatsCanonicalForCorrelated(t *testing.T) {
	cat, r, s := fixture(t)
	e := New(cat)
	// Canonical: σ_{a1 = count(σ_{a2=b2}(S))}(R).
	corr := algebra.NewSelect(s, algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")))
	sub := algebra.Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil, corr)
	canonical := algebra.NewSelect(r, algebra.Cmp(types.EQ, algebra.Col("r.a1"), sub))
	// Unnested: σ_{a1=g}(R ⟕ Γ(S)).
	grouped := algebra.NewGroupBy(s, []string{"s.b2"},
		[]algebra.AggItem{{Out: "g", Spec: agg.Spec{Kind: agg.Count, Star: true}}}, false)
	oj := algebra.NewLeftOuterJoin(r, grouped,
		algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")),
		[]algebra.Default{{Attr: "g", Val: types.NewInt(0)}})
	unnested := algebra.NewSelect(oj, algebra.Cmp(types.EQ, algebra.Col("r.a1"), algebra.Col("g")))
	cc, uc := e.PlanCost(canonical), e.PlanCost(unnested)
	if uc >= cc {
		t.Errorf("unnested cost %g must beat canonical cost %g", uc, cc)
	}
}

func TestPlanCostBypassJoinNegativeIsQuadratic(t *testing.T) {
	cat, r, s := fixture(t)
	e := New(cat)
	bj := algebra.NewBypassJoin(r, s, algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")))
	neg := algebra.NewSelect(algebra.Neg(bj), algebra.Cmp(types.GT, algebra.Col("s.b1"), algebra.ConstInt(50)))
	cost := e.PlanCost(neg)
	// 100×100 pairs at least.
	if cost < 100*100 {
		t.Errorf("negative bypass-join stream cost %g must reflect the complement size", cost)
	}
}

func TestPlanCostSortSuperlinear(t *testing.T) {
	cat, r, _ := fixture(t)
	e := New(cat)
	scanCost := e.PlanCost(r)
	sortCost := e.PlanCost(algebra.NewSort(r, []algebra.SortKey{{Attr: "r.a1"}}))
	if sortCost <= 2*scanCost {
		t.Errorf("sort cost %g vs scan %g", sortCost, scanCost)
	}
}
