package stats

import (
	"math"

	"disqo/internal/algebra"
	"disqo/internal/types"
)

// PlanCost estimates the total work of evaluating a plan once, in
// abstract per-tuple units. Shared DAG nodes (bypass streams, reused
// subplans) are counted once — exactly the benefit DAG-structured plans
// provide. The paper points out that unnesting is not always a win and
// should be applied cost-based (§1); this estimate is what the CostBased
// strategy compares.
func (e *Estimator) PlanCost(plan algebra.Op) float64 {
	seen := map[algebra.Op]bool{}
	var rec func(op algebra.Op) float64
	rec = func(op algebra.Op) float64 {
		if seen[op] {
			return 0
		}
		seen[op] = true
		total := e.nodeCost(op)
		for _, in := range op.Inputs() {
			total += rec(in)
		}
		return total
	}
	return rec(plan)
}

// nodeCost is one operator's own work, excluding inputs.
func (e *Estimator) nodeCost(op algebra.Op) float64 {
	switch x := op.(type) {
	case *algebra.Scan:
		return e.Cardinality(x)
	case *algebra.Select:
		// A selection fused onto the negative stream of a bypass join
		// enumerates the complement pairs.
		if st, ok := x.Child.(*algebra.Stream); ok && !st.Positive {
			if bj, ok := st.Source.(*algebra.BypassJoin); ok {
				return e.Cardinality(bj.L) * e.Cardinality(bj.R) *
					(e.PredCost(bj.Pred) + e.PredCost(x.Pred))
			}
		}
		return e.Cardinality(x.Child) * e.PredCost(x.Pred)
	case *algebra.BypassSelect:
		return e.Cardinality(x.Child) * e.PredCost(x.Pred)
	case *algebra.Stream:
		if bj, ok := x.Source.(*algebra.BypassJoin); ok && !x.Positive {
			// An unfused negative bypass-join stream materializes the
			// complement.
			return e.Cardinality(bj.L) * e.Cardinality(bj.R) * e.PredCost(bj.Pred)
		}
		return 0 // bypass selections are costed at the source
	case *algebra.Project, *algebra.Rename, *algebra.MapOp, *algebra.Number:
		base := e.Cardinality(op)
		if m, ok := op.(*algebra.MapOp); ok {
			return base * (1 + e.PredCost(m.Expr))
		}
		return base
	case *algebra.CrossProduct:
		return e.Cardinality(x.L) * e.Cardinality(x.R)
	case *algebra.Join:
		return e.joinCost(x.L, x.R, x.Pred)
	case *algebra.BypassJoin:
		// The positive stream: matching pairs (hash when possible).
		return e.joinCost(x.L, x.R, x.Pred)
	case *algebra.LeftOuterJoin:
		return e.joinCost(x.L, x.R, x.Pred)
	case *algebra.SemiJoin:
		return e.joinCost(x.L, x.R, x.Pred)
	case *algebra.AntiJoin:
		return e.joinCost(x.L, x.R, x.Pred)
	case *algebra.GroupBy:
		return e.Cardinality(x.Child) * float64(1+len(x.Aggs))
	case *algebra.BinaryGroup:
		if hashableEquality(x.Pred, x) {
			return e.Cardinality(x.L) + e.Cardinality(x.R)
		}
		return e.Cardinality(x.L) * e.Cardinality(x.R) * e.PredCost(x.Pred)
	case *algebra.UnionDisjoint:
		return e.Cardinality(x)
	case *algebra.UnionAll:
		return e.Cardinality(x)
	case *algebra.Distinct:
		return 2 * e.Cardinality(x.Child)
	case *algebra.Sort:
		n := e.Cardinality(x.Child)
		if n < 2 {
			return n
		}
		return n * math.Log2(n)
	default:
		return e.Cardinality(op)
	}
}

// joinCost models hash join for equality-bearing predicates and nested
// loops otherwise.
func (e *Estimator) joinCost(l, r algebra.Op, pred algebra.Expr) float64 {
	lc, rc := e.Cardinality(l), e.Cardinality(r)
	if hashableBetween(pred, l, r) {
		out := lc * rc * e.Selectivity(pred, nil)
		return lc + rc + out
	}
	return lc * rc * (e.PredCost(pred) + 1)
}

// hashableBetween reports whether the predicate contains an equality
// between a column of each input.
func hashableBetween(pred algebra.Expr, l, r algebra.Op) bool {
	if pred == nil {
		return false
	}
	for _, c := range algebra.SplitConjuncts(pred) {
		cmp, ok := c.(*algebra.CmpExpr)
		if !ok || cmp.Op != types.EQ {
			continue
		}
		a, aok := cmp.L.(*algebra.ColRef)
		b, bok := cmp.R.(*algebra.ColRef)
		if !aok || !bok {
			continue
		}
		if (l.Schema().Has(a.Name) && r.Schema().Has(b.Name)) ||
			(l.Schema().Has(b.Name) && r.Schema().Has(a.Name)) {
			return true
		}
	}
	return false
}

// hashableEquality reports whether a binary grouping can hash: every
// conjunct is an L-col = R-col equality.
func hashableEquality(pred algebra.Expr, bg *algebra.BinaryGroup) bool {
	if pred == nil {
		return false
	}
	for _, c := range algebra.SplitConjuncts(pred) {
		cmp, ok := c.(*algebra.CmpExpr)
		if !ok || cmp.Op != types.EQ {
			return false
		}
		a, aok := cmp.L.(*algebra.ColRef)
		b, bok := cmp.R.(*algebra.ColRef)
		if !aok || !bok {
			return false
		}
		if !((bg.L.Schema().Has(a.Name) && bg.R.Schema().Has(b.Name)) ||
			(bg.L.Schema().Has(b.Name) && bg.R.Schema().Has(a.Name))) {
			return false
		}
	}
	return true
}
