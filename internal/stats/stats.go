// Package stats implements the cardinality, selectivity and cost
// estimation the rewriter's cost-based decisions rely on — most
// importantly the predicate *rank* (Slagle [26]) the paper uses to decide
// whether Equivalence 2 (cheap predicate first) or Equivalence 3
// (unnested subquery first) orders a bypass cascade:
//
//	rank(p) = (selectivity(p) − 1) / cost(p),
//
// evaluated lowest-rank-first.
package stats

import (
	"strings"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/types"
)

// Default selectivities when no statistics apply.
const (
	defaultEqSel    = 0.1
	defaultRangeSel = 1.0 / 3
	defaultLikeSel  = 0.25
	defaultSel      = 0.5
)

// Per-tuple evaluation costs in abstract units.
const (
	costCompare      = 1.0
	costLike         = 5.0
	costArith        = 0.5
	costSubqueryBase = 50.0 // fixed overhead per nested evaluation
)

// Estimator derives estimates from catalog statistics.
type Estimator struct {
	cat catalog.Reader
}

// New returns an estimator over a catalog view — the live catalog or a
// pinned snapshot, so estimates and execution can share one version.
func New(cat catalog.Reader) *Estimator {
	return &Estimator{cat: cat}
}

// colStats finds base-table statistics for an attribute by locating the
// scan that produces it inside the plan. Returns ok=false for synthetic
// attributes (g, t, …) or when the plan is nil.
func (e *Estimator) colStats(plan algebra.Op, attr string) (distinct int, lo, hi float64, ok bool) {
	if plan == nil || e.cat == nil {
		return 0, 0, 0, false
	}
	var found *algebra.Scan
	var idx int
	algebra.Walk(plan, func(op algebra.Op) bool {
		if s, isScan := op.(*algebra.Scan); isScan && found == nil {
			if i := s.Schema().Index(attr); i >= 0 {
				found = s
				idx = i
				return false
			}
		}
		return true
	})
	if found == nil {
		return 0, 0, 0, false
	}
	tbl, err := e.cat.Lookup(found.Table)
	if err != nil || idx >= tbl.Rel.Schema.Len() {
		return 0, 0, 0, false
	}
	key := tbl.Rel.Schema.Attr(idx)
	st := tbl.Stats()
	d := st.Distinct[key]
	l, okLo := st.Min[key]
	h, okHi := st.Max[key]
	if !okLo || !okHi {
		l, h = 0, 0
	}
	return d, l, h, d > 0
}

// Cardinality estimates the number of output tuples of a plan.
func (e *Estimator) Cardinality(op algebra.Op) float64 {
	switch x := op.(type) {
	case *algebra.Scan:
		if e.cat != nil {
			if tbl, err := e.cat.Lookup(x.Table); err == nil {
				return float64(tbl.Stats().Rows)
			}
		}
		return 1000
	case *algebra.Select:
		return e.Cardinality(x.Child) * e.Selectivity(x.Pred, x.Child)
	case *algebra.BypassSelect:
		return e.Cardinality(x.Child)
	case *algebra.Stream:
		base := e.Cardinality(x.Source)
		var pred algebra.Expr
		switch s := x.Source.(type) {
		case *algebra.BypassSelect:
			pred = s.Pred
		case *algebra.BypassJoin:
			pred = s.Pred
		}
		sel := defaultSel
		if pred != nil {
			sel = e.Selectivity(pred, x.Source)
		}
		if x.Positive {
			return base * sel
		}
		return base * (1 - sel)
	case *algebra.Project:
		return e.Cardinality(x.Child)
	case *algebra.Rename:
		return e.Cardinality(x.Child)
	case *algebra.MapOp:
		return e.Cardinality(x.Child)
	case *algebra.Number:
		return e.Cardinality(x.Child)
	case *algebra.CrossProduct:
		return e.Cardinality(x.L) * e.Cardinality(x.R)
	case *algebra.Join:
		return e.Cardinality(x.L) * e.Cardinality(x.R) * e.Selectivity(x.Pred, op)
	case *algebra.BypassJoin:
		return e.Cardinality(x.L) * e.Cardinality(x.R)
	case *algebra.LeftOuterJoin:
		// Grouped inner keyed on the join attribute: cardinality of the
		// outer side (paper §3.7).
		return e.Cardinality(x.L)
	case *algebra.SemiJoin:
		return e.Cardinality(x.L) * defaultSel
	case *algebra.AntiJoin:
		return e.Cardinality(x.L) * defaultSel
	case *algebra.GroupBy:
		if x.Global {
			return 1
		}
		card := e.Cardinality(x.Child)
		d := 1.0
		for _, a := range x.Attrs {
			if dist, _, _, ok := e.colStats(x.Child, a); ok {
				d *= float64(dist)
			} else {
				d *= card / 10
			}
		}
		if d > card {
			return card
		}
		if d < 1 {
			return 1
		}
		return d
	case *algebra.BinaryGroup:
		return e.Cardinality(x.L)
	case *algebra.UnionDisjoint:
		return e.Cardinality(x.L) + e.Cardinality(x.R)
	case *algebra.UnionAll:
		return e.Cardinality(x.L) + e.Cardinality(x.R)
	case *algebra.Distinct:
		return e.Cardinality(x.Child) * 0.9
	case *algebra.Sort:
		return e.Cardinality(x.Child)
	case *algebra.Limit:
		c := e.Cardinality(x.Child)
		if float64(x.N) < c {
			return float64(x.N)
		}
		return c
	default:
		return 1000
	}
}

// Selectivity estimates the fraction of input tuples a predicate keeps.
// The input plan provides column statistics; it may be nil.
func (e *Estimator) Selectivity(pred algebra.Expr, input algebra.Op) float64 {
	switch x := pred.(type) {
	case nil:
		return 1
	case *algebra.ConstExpr:
		if b, ok := x.Val.BoolOk(); ok && b {
			return 1
		}
		return 0
	case *algebra.AndExpr:
		return e.Selectivity(x.L, input) * e.Selectivity(x.R, input)
	case *algebra.OrExpr:
		l, r := e.Selectivity(x.L, input), e.Selectivity(x.R, input)
		return l + r - l*r
	case *algebra.NotExpr:
		return 1 - e.Selectivity(x.E, input)
	case *algebra.LikeExpr:
		return defaultLikeSel
	case *algebra.IsNullExpr:
		return 0.05
	case *algebra.CmpExpr:
		return e.cmpSelectivity(x, input)
	case *algebra.QuantSubquery:
		return defaultSel
	case *algebra.AllAnyExpr:
		return defaultSel
	default:
		return defaultSel
	}
}

func (e *Estimator) cmpSelectivity(c *algebra.CmpExpr, input algebra.Op) float64 {
	// Column-versus-constant with statistics.
	col, cst, op := c.L, c.R, c.Op
	if _, isCol := col.(*algebra.ColRef); !isCol {
		col, cst, op = c.R, c.L, c.Op.Flip()
	}
	cr, isCol := col.(*algebra.ColRef)
	cc, isConst := cst.(*algebra.ConstExpr)
	if isCol && isConst {
		distinct, lo, hi, ok := e.colStats(input, cr.Name)
		switch op {
		case types.EQ:
			if ok && distinct > 0 {
				return 1 / float64(distinct)
			}
			return defaultEqSel
		case types.NE:
			if ok && distinct > 0 {
				return 1 - 1/float64(distinct)
			}
			return 1 - defaultEqSel
		default:
			if v, okv := cc.Val.AsFloat(); ok && okv && hi > lo {
				frac := (v - lo) / (hi - lo)
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
				if op == types.LT || op == types.LE {
					return frac
				}
				return 1 - frac
			}
			return defaultRangeSel
		}
	}
	// Column-versus-column equality: 1/max(d1, d2).
	lc, lok := c.L.(*algebra.ColRef)
	rc, rok := c.R.(*algebra.ColRef)
	if lok && rok && c.Op == types.EQ {
		d1, _, _, ok1 := e.colStats(input, lc.Name)
		d2, _, _, ok2 := e.colStats(input, rc.Name)
		d := 0
		if ok1 && d1 > d {
			d = d1
		}
		if ok2 && d2 > d {
			d = d2
		}
		if d > 0 {
			return 1 / float64(d)
		}
		return defaultEqSel
	}
	// Comparisons against subqueries.
	if c.Op == types.EQ {
		return defaultEqSel
	}
	return defaultRangeSel
}

// PredCost estimates the per-tuple cost of evaluating a predicate, with
// nested subqueries dominated by the cardinality of their plan — the
// nested-loop price the paper's rewrites avoid.
func (e *Estimator) PredCost(pred algebra.Expr) float64 {
	switch x := pred.(type) {
	case nil:
		return 0
	case *algebra.ColRef, *algebra.ConstExpr:
		return 0.1
	case *algebra.AndExpr:
		return e.PredCost(x.L) + e.PredCost(x.R)
	case *algebra.OrExpr:
		return e.PredCost(x.L) + e.PredCost(x.R)
	case *algebra.NotExpr:
		return e.PredCost(x.E)
	case *algebra.LikeExpr:
		return costLike
	case *algebra.IsNullExpr:
		return costCompare
	case *algebra.ArithExpr:
		return costArith + e.PredCost(x.L) + e.PredCost(x.R)
	case *algebra.CmpExpr:
		return costCompare + e.PredCost(x.L) + e.PredCost(x.R)
	case *algebra.AggCombineExpr:
		return costArith + e.PredCost(x.L) + e.PredCost(x.R)
	case *algebra.ScalarSubquery:
		if algebra.Correlated(x.Plan) {
			return costSubqueryBase + e.planWork(x.Plan)
		}
		// Uncorrelated: evaluated once and memoized — cheap per tuple.
		return costCompare
	case *algebra.QuantSubquery:
		if algebra.Correlated(x.Plan) {
			return costSubqueryBase + e.planWork(x.Plan)
		}
		return costCompare
	case *algebra.AllAnyExpr:
		if algebra.Correlated(x.Plan) {
			return costSubqueryBase + e.planWork(x.Plan)
		}
		return costCompare
	default:
		return costCompare
	}
}

// planWork approximates the total tuples touched by evaluating a plan
// once.
func (e *Estimator) planWork(op algebra.Op) float64 {
	total := e.Cardinality(op)
	for _, in := range op.Inputs() {
		total += e.planWork(in)
	}
	return total
}

// Rank computes Slagle's rank (sel−1)/cost; predicates are evaluated in
// ascending rank order. Cheap, selective predicates rank lowest.
func (e *Estimator) Rank(pred algebra.Expr, input algebra.Op) float64 {
	cost := e.PredCost(pred)
	if cost <= 0 {
		cost = 0.01
	}
	return (e.Selectivity(pred, input) - 1) / cost
}

// AttrTable resolves which base table provides an attribute, for
// diagnostics (empty when synthetic).
func (e *Estimator) AttrTable(plan algebra.Op, attr string) string {
	var name string
	algebra.Walk(plan, func(op algebra.Op) bool {
		if s, ok := op.(*algebra.Scan); ok && name == "" && s.Schema().Has(attr) {
			name = s.Table
			return false
		}
		return true
	})
	if name == "" && strings.Contains(attr, ".") {
		return strings.SplitN(attr, ".", 2)[0]
	}
	return name
}
