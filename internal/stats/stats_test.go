package stats

import (
	"testing"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/storage"
	"disqo/internal/types"
)

func fixture(t *testing.T) (*catalog.Catalog, *algebra.Scan, *algebra.Scan) {
	t.Helper()
	cat := catalog.New()
	r, err := cat.Create("r", []catalog.Column{
		{Name: "a1", Type: types.KindInt}, {Name: "a2", Type: types.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Create("s", []catalog.Column{
		{Name: "b1", Type: types.KindInt}, {Name: "b2", Type: types.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Insert([]types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 10))})
		s.Insert([]types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 20))})
	}
	return cat,
		algebra.NewScan("r", "r", storage.NewSchema("r.a1", "r.a2")),
		algebra.NewScan("s", "s", storage.NewSchema("s.b1", "s.b2"))
}

func TestScanAndSelectCardinality(t *testing.T) {
	cat, r, _ := fixture(t)
	e := New(cat)
	if got := e.Cardinality(r); got != 100 {
		t.Errorf("scan card = %g", got)
	}
	// a2 = const: 10 distinct values → sel 0.1 → 10 rows.
	sel := algebra.NewSelect(r, algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.ConstInt(3)))
	if got := e.Cardinality(sel); got < 5 || got > 20 {
		t.Errorf("select card = %g, want ≈10", got)
	}
}

func TestRangeSelectivityUsesMinMax(t *testing.T) {
	cat, r, _ := fixture(t)
	e := New(cat)
	// a1 uniform on [0,99]; a1 > 49 ≈ 0.5.
	s := e.Selectivity(algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.ConstInt(49)), r)
	if s < 0.4 || s > 0.6 {
		t.Errorf("range sel = %g, want ≈0.5", s)
	}
	// Constant on the left flips.
	s2 := e.Selectivity(algebra.Cmp(types.LT, algebra.ConstInt(49), algebra.Col("r.a1")), r)
	if s2 < 0.4 || s2 > 0.6 {
		t.Errorf("flipped range sel = %g", s2)
	}
	// Out-of-range clamps.
	if s := e.Selectivity(algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.ConstInt(1000)), r); s != 0 {
		t.Errorf("clamped sel = %g", s)
	}
}

func TestJoinCardinality(t *testing.T) {
	cat, r, s := fixture(t)
	e := New(cat)
	j := algebra.NewJoin(r, s, algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")))
	// sel = 1/max(10,20) = 0.05 → 100·100·0.05 = 500.
	if got := e.Cardinality(j); got < 250 || got > 1000 {
		t.Errorf("join card = %g, want ≈500", got)
	}
}

func TestGroupByCardinality(t *testing.T) {
	cat, r, _ := fixture(t)
	e := New(cat)
	g := algebra.NewGroupBy(r, []string{"r.a2"},
		[]algebra.AggItem{{Out: "g", Spec: agg.Spec{Kind: agg.Count, Star: true}}}, false)
	if got := e.Cardinality(g); got != 10 {
		t.Errorf("Γ card = %g, want 10", got)
	}
	global := algebra.NewGroupBy(r, nil, []algebra.AggItem{{Out: "g", Spec: agg.Spec{Kind: agg.Count, Star: true}}}, true)
	if got := e.Cardinality(global); got != 1 {
		t.Errorf("global Γ card = %g", got)
	}
}

func TestBooleanSelectivityComposition(t *testing.T) {
	cat, r, _ := fixture(t)
	e := New(cat)
	a := algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.ConstInt(1)) // 0.1
	b := algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.ConstInt(49))
	and := e.Selectivity(algebra.And(a, b), r)
	or := e.Selectivity(algebra.Or(a, b), r)
	not := e.Selectivity(algebra.Not(a), r)
	if and >= or {
		t.Errorf("AND (%g) must be more selective than OR (%g)", and, or)
	}
	if not < 0.85 || not > 0.95 {
		t.Errorf("NOT sel = %g", not)
	}
}

func TestPredCostOrdersSubqueriesLast(t *testing.T) {
	cat, r, s := fixture(t)
	e := New(cat)
	simple := algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.ConstInt(49))
	corr := algebra.NewSelect(s, algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")))
	sub := algebra.Cmp(types.EQ, algebra.Col("r.a1"),
		algebra.Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil, corr))
	if e.PredCost(simple) >= e.PredCost(sub) {
		t.Errorf("subquery must cost more: %g vs %g", e.PredCost(simple), e.PredCost(sub))
	}
	if e.Rank(simple, r) >= e.Rank(sub, r) {
		t.Errorf("rank(simple)=%g must be below rank(sub)=%g",
			e.Rank(simple, r), e.Rank(sub, r))
	}
}

func TestUncorrelatedSubqueryIsCheap(t *testing.T) {
	cat, _, s := fixture(t)
	e := New(cat)
	sub := algebra.Cmp(types.EQ, algebra.Col("r.a1"),
		algebra.Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil, s))
	if c := e.PredCost(sub); c > 10 {
		t.Errorf("type-A subquery cost = %g, should be cheap (memoized)", c)
	}
}

func TestStreamCardinalitySplits(t *testing.T) {
	cat, r, _ := fixture(t)
	e := New(cat)
	bp := algebra.NewBypassSelect(r, algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.ConstInt(49)))
	pos := e.Cardinality(algebra.Pos(bp))
	neg := e.Cardinality(algebra.Neg(bp))
	if pos+neg < 95 || pos+neg > 105 {
		t.Errorf("streams must partition: %g + %g", pos, neg)
	}
}

func TestAttrTable(t *testing.T) {
	cat, r, _ := fixture(t)
	e := New(cat)
	if got := e.AttrTable(r, "r.a1"); got != "r" {
		t.Errorf("AttrTable = %q", got)
	}
	if got := e.AttrTable(r, "x.q1"); got != "x" {
		t.Errorf("AttrTable fallback = %q", got)
	}
}
