package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"disqo/internal/catalog"
	"disqo/internal/faultinject"
	"disqo/internal/types"
)

func openTestLog(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, 0, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(KindSQL, uint64(i), []byte("INSERT INTO r VALUES (1, 2)")); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func readLog(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	return data
}

func TestAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	bodies := [][]byte{[]byte("CREATE TABLE r (a INT)"), []byte(""), bytes.Repeat([]byte{0xAB}, 1000)}
	for i, b := range bodies {
		lsn, err := l.Append(Kind(1+i%3), uint64(10+i), b)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("LSN %d, want %d", lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, _, torn, err := Scan(readLog(t, dir))
	if err != nil || torn {
		t.Fatalf("Scan: torn=%v err=%v", torn, err)
	}
	if len(recs) != len(bodies) {
		t.Fatalf("got %d records, want %d", len(recs), len(bodies))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) || rec.AppliedVersion != uint64(10+i) || !bytes.Equal(rec.Body, bodies[i]) {
			t.Fatalf("record %d mismatch: %+v", i, rec)
		}
	}
}

func TestScanTornTails(t *testing.T) {
	var full []byte
	for i := 1; i <= 3; i++ {
		full = AppendFrame(full, Record{LSN: uint64(i), Kind: KindSQL, Body: []byte("DELETE FROM r")})
	}
	frame1 := len(AppendFrame(nil, Record{LSN: 1, Kind: KindSQL, Body: []byte("DELETE FROM r")}))

	cases := []struct {
		name string
		data []byte
		want int // surviving records
	}{
		{"short header", full[:2*frame1+3], 2},
		{"partial final frame", full[:len(full)-5], 2},
		{"zero tail", append(append([]byte{}, full...), make([]byte, 64)...), 3},
		{"empty", nil, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, valid, torn, err := Scan(tc.data)
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			wantTorn := len(tc.data) > 0 && int(valid) != len(tc.data)
			if torn != wantTorn {
				t.Fatalf("torn=%v, want %v", torn, wantTorn)
			}
			if len(recs) != tc.want {
				t.Fatalf("got %d records, want %d", len(recs), tc.want)
			}
			if int(valid) != tc.want*frame1 {
				t.Fatalf("valid=%d, want %d", valid, tc.want*frame1)
			}
		})
	}

	// A corrupted checksum on the FINAL frame is torn (indistinguishable
	// from out-of-order sector writes during a crash).
	flipped := append([]byte{}, full...)
	flipped[len(flipped)-1] ^= 0xFF
	recs, _, torn, err := Scan(flipped)
	if err != nil || !torn || len(recs) != 2 {
		t.Fatalf("final-frame corruption: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
}

func TestScanMidLogCorruption(t *testing.T) {
	var full []byte
	for i := 1; i <= 3; i++ {
		full = AppendFrame(full, Record{LSN: uint64(i), Kind: KindSQL, Body: []byte("UPDATE r SET a = 1")})
	}
	frame1 := len(full) / 3

	// Flip a payload byte in the first record: checksum mismatch with
	// more log after it must be a hard error.
	bad := append([]byte{}, full...)
	bad[frameHeader+10] ^= 0x01
	_, _, _, err := Scan(bad)
	var re *RecoveryError
	if !errors.As(err, &re) {
		t.Fatalf("mid-log corruption: got %v, want *RecoveryError", err)
	}
	if re.Offset != 0 {
		t.Fatalf("offset %d, want 0", re.Offset)
	}

	// A sequence break inside well-checksummed frames is also corruption.
	seq := AppendFrame(nil, Record{LSN: 1, Kind: KindSQL, Body: nil})
	seq = AppendFrame(seq, Record{LSN: 5, Kind: KindSQL, Body: nil})
	if _, _, _, err := Scan(seq); !errors.As(err, &re) {
		t.Fatalf("sequence break: got %v, want *RecoveryError", err)
	}

	// An unknown kind with a valid checksum is corruption.
	kind := AppendFrame(nil, Record{LSN: 1, Kind: Kind(99), Body: nil})
	if _, _, _, err := Scan(kind); !errors.As(err, &re) {
		t.Fatalf("unknown kind: got %v, want *RecoveryError", err)
	}

	// A garbage (non-zero) length prefix mid-file is corruption.
	garb := append([]byte{}, full[:frame1]...)
	garb = append(garb, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8)
	if _, _, _, err := Scan(garb); !errors.As(err, &re) {
		t.Fatalf("garbage length: got %v, want *RecoveryError", err)
	}
}

func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SyncEvery: 3})
	appendN(t, l, 2)
	if st := l.Stats(); st.Syncs != 0 || st.PendingRecords != 2 {
		t.Fatalf("before batch boundary: %+v", st)
	}
	appendN(t, l, 1)
	st := l.Stats()
	if st.Syncs != 1 || st.PendingRecords != 0 || st.SyncedBytes != st.AppendedBytes {
		t.Fatalf("after batch boundary: %+v", st)
	}
	appendN(t, l, 1)
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st := l.Stats(); st.Syncs != 2 || st.PendingRecords != 0 {
		t.Fatalf("after explicit sync: %+v", st)
	}
}

func TestSyncInterval(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SyncEvery: 1000, SyncInterval: 5 * time.Millisecond})
	appendN(t, l, 2)
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().PendingRecords != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("interval sync never drained pending records: %+v", l.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Syncs == 0 {
		t.Fatalf("interval sync recorded no syncs")
	}
}

func TestSealOnInjectedFailure(t *testing.T) {
	for _, mode := range []faultinject.Mode{faultinject.ModeError, faultinject.ModeShortWrite} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultinject.New()
			l := openTestLog(t, dir, Options{Injector: inj})
			appendN(t, l, 2)
			inj.ArmMode(faultinject.SiteWALAppend, -1, 3, mode)
			if _, err := l.Append(KindSQL, 0, []byte("X")); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("armed append: %v", err)
			}
			// Sealed: everything after fails with ErrSealed.
			if _, err := l.Append(KindSQL, 0, []byte("Y")); !errors.Is(err, ErrSealed) {
				t.Fatalf("append after seal: %v", err)
			}
			if err := l.Sync(); !errors.Is(err, ErrSealed) {
				t.Fatalf("sync after seal: %v", err)
			}
			l.Close()
			// The surviving log must recover to exactly the pre-fault
			// records — and in short-write mode the torn prefix must be
			// dropped, not misread.
			rs, err := Recover(dir)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if len(rs.Records) != 2 || rs.LastLSN != 2 {
				t.Fatalf("recovered %d records lastLSN=%d, want 2/2", len(rs.Records), rs.LastLSN)
			}
			if mode == faultinject.ModeShortWrite && !rs.TruncatedTail {
				t.Fatalf("short write did not produce a truncated tail")
			}
		})
	}
}

func testState(version uint64) CheckpointState {
	cat := catalog.New()
	tbl, _ := cat.Create("r", []catalog.Column{{Name: "a", Type: types.KindInt}, {Name: "b", Type: types.KindString}})
	tbl.Insert([]types.Value{types.NewInt(1), types.NewString("x")})
	tbl.Insert([]types.Value{types.Null(), types.NewString("y")})
	return CheckpointState{
		Tables:         cat.Snapshot().Tables(),
		CatalogVersion: version,
		Views:          []View{{Name: "v", SQL: "CREATE VIEW v AS SELECT a FROM r"}},
	}
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	appendN(t, l, 5)
	if err := l.Checkpoint(dir, testState(5)); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if len(readLog(t, dir)) != 0 {
		t.Fatalf("log not truncated after checkpoint")
	}
	// Post-checkpoint records continue the sequence.
	appendN(t, l, 2)
	l.Close()

	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.SnapshotLSN != 5 || rs.CatalogVersion != 5 || rs.LastLSN != 7 {
		t.Fatalf("snapLSN=%d catVersion=%d lastLSN=%d", rs.SnapshotLSN, rs.CatalogVersion, rs.LastLSN)
	}
	if len(rs.Records) != 2 || rs.Records[0].LSN != 6 {
		t.Fatalf("replay tail: %+v", rs.Records)
	}
	if len(rs.Views) != 1 || rs.Views[0].Name != "v" {
		t.Fatalf("views: %+v", rs.Views)
	}
	if len(rs.Tables) != 1 {
		t.Fatalf("tables: %d", len(rs.Tables))
	}
	tbl := rs.Tables[0]
	if tbl.Name != "r" || len(tbl.Columns) != 2 || len(tbl.Rel.Tuples) != 2 {
		t.Fatalf("decoded table: %+v", tbl)
	}
	if got := tbl.Rel.Schema.Attr(0); got != "r.a" {
		t.Fatalf("rebuilt attr %q, want r.a", got)
	}
	if !tbl.Rel.Tuples[1][0].IsNull() {
		t.Fatalf("NULL did not round-trip: %v", tbl.Rel.Tuples[1][0])
	}
}

func TestRecoverFiltersPreSnapshotRecords(t *testing.T) {
	// Simulate a checkpoint that crashed between rename and truncate:
	// snapshot covers LSN 3, log still holds LSN 1..5.
	dir := t.TempDir()
	var data []byte
	for i := 1; i <= 5; i++ {
		data = AppendFrame(data, Record{LSN: uint64(i), Kind: KindSQL, Body: []byte("DELETE FROM r")})
	}
	if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(3)), encodeSnapshot(testState(3), 3), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.SnapshotLSN != 3 || len(rs.Records) != 2 || rs.Records[0].LSN != 4 || rs.LastLSN != 5 {
		t.Fatalf("snapLSN=%d records=%d lastLSN=%d", rs.SnapshotLSN, len(rs.Records), rs.LastLSN)
	}
}

func TestRecoverCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	// Older valid snapshot at LSN 2, newer corrupt one at LSN 4, empty log.
	if err := os.WriteFile(filepath.Join(dir, snapName(2)), encodeSnapshot(testState(2), 2), 0o644); err != nil {
		t.Fatal(err)
	}
	newer := encodeSnapshot(testState(4), 4)
	newer[len(newer)-1] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, snapName(4)), newer, 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.SnapshotLSN != 2 {
		t.Fatalf("fell back to snapLSN=%d, want 2", rs.SnapshotLSN)
	}

	// But if the log no longer continues the older snapshot, the gap is
	// a hard error, not silent data loss.
	var tail []byte
	tail = AppendFrame(tail, Record{LSN: 5, Kind: KindSQL, Body: []byte("DELETE FROM r")})
	if err := os.WriteFile(filepath.Join(dir, logName), tail, 0o644); err != nil {
		t.Fatal(err)
	}
	var re *RecoveryError
	if _, err := Recover(dir); !errors.As(err, &re) {
		t.Fatalf("gap after fallback: got %v, want *RecoveryError", err)
	}
}

func TestRecoverRemovesTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, snapName(7)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file survived recovery")
	}
}

func TestRecoverTruncatesTornTailOnDisk(t *testing.T) {
	dir := t.TempDir()
	var data []byte
	for i := 1; i <= 2; i++ {
		data = AppendFrame(data, Record{LSN: uint64(i), Kind: KindSQL, Body: []byte("DELETE FROM r")})
	}
	whole := len(data)
	data = append(data, 0x01, 0x02, 0x03) // torn scribble
	if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rs.TruncatedTail || len(rs.Records) != 2 {
		t.Fatalf("truncated=%v records=%d", rs.TruncatedTail, len(rs.Records))
	}
	if got := len(readLog(t, dir)); got != whole {
		t.Fatalf("log file %d bytes after recovery, want %d", got, whole)
	}
	// A second recovery of the repaired log is clean.
	rs, err = Recover(dir)
	if err != nil || rs.TruncatedTail {
		t.Fatalf("re-recover: truncated=%v err=%v", rs.TruncatedTail, err)
	}
}

func TestLSNSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	appendN(t, l, 3)
	l.Close()
	rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	l2, err := Open(dir, rs.LastLSN, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	lsn, err := l2.Append(KindSQL, 3, []byte("X"))
	if err != nil || lsn != 4 {
		t.Fatalf("lsn=%d err=%v, want 4", lsn, err)
	}
}
