package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"disqo/internal/faultinject"
	"disqo/internal/telemetry"
)

// logName is the single active log file inside a data directory.
const logName = "wal.log"

// ErrSealed reports a WAL that refused a write because an earlier
// append or sync failed. Once a frame may have reached the disk
// incompletely, further appends could bury the damage mid-log — which
// recovery treats as unrecoverable corruption — so the log fails all
// subsequent writes until the process restarts and recovery truncates
// the torn tail. (The same fail-closed rule PostgreSQL adopted after
// fsyncgate: never retry past a failed fsync.)
var ErrSealed = errors.New("wal: log sealed after a failed append or sync")

// Options configures a Log.
type Options struct {
	// SyncEvery fsyncs after every Nth appended record (group commit).
	// 0 or 1 syncs every append — full durability, one fsync per write.
	SyncEvery int
	// SyncInterval, when positive, runs a background ticker that syncs
	// any pending appends, bounding the data-loss window of SyncEvery>1.
	SyncInterval time.Duration
	// Injector, when non-nil, receives SiteWALAppend/SiteWALSync visits
	// (node -1) before the corresponding disk operation.
	Injector *faultinject.Injector
}

// Stats is a point-in-time copy of the log's counters.
type Stats struct {
	// Appends counts records accepted into the log.
	Appends uint64 `json:"appends"`
	// AppendedBytes counts frame bytes written (headers included).
	AppendedBytes uint64 `json:"appended_bytes"`
	// Syncs counts fsync calls issued.
	Syncs uint64 `json:"syncs"`
	// SyncedBytes counts appended bytes that an fsync has made durable.
	SyncedBytes uint64 `json:"synced_bytes"`
	// Truncations counts checkpoint log resets.
	Truncations uint64 `json:"truncations"`
	// LastLSN is the highest sequence number assigned.
	LastLSN uint64 `json:"last_lsn"`
	// PendingRecords is the number of appended-but-unsynced records.
	PendingRecords int `json:"pending_records"`
	// Sealed reports whether the log has failed closed.
	Sealed bool `json:"sealed"`
	// Fsync is the fsync latency distribution.
	Fsync telemetry.LatencySnapshot `json:"fsync"`
}

// Log is an append-only write-ahead log over one file. All methods are
// safe for concurrent use; in disqo appends additionally serialize
// under the database write lock, so record order matches commit order.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	lsn     uint64 // last assigned LSN; survives truncation
	pending int    // records appended since the last completed sync
	sealed  error  // sticky first failure; non-nil rejects writes
	buf     []byte // frame scratch, reused across appends
	opts    Options

	appends       atomic.Uint64
	appendedBytes atomic.Uint64
	syncs         atomic.Uint64
	syncedBytes   atomic.Uint64
	truncations   atomic.Uint64
	unsynced      uint64 // bytes appended since last sync (under mu)
	fsync         telemetry.Histogram

	stopTick chan struct{}
	tickDone chan struct{}
}

// Open opens (creating if absent) the log file in dir for appending.
// lastLSN seeds the sequence counter — recovery passes the highest LSN
// it observed across snapshot and log so new records continue the
// sequence without gaps.
func Open(dir string, lastLSN uint64, opts Options) (*Log, error) {
	if opts.SyncEvery < 1 {
		opts.SyncEvery = 1
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	l := &Log{f: f, path: path, lsn: lastLSN, opts: opts}
	if opts.SyncInterval > 0 {
		l.stopTick = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.tick()
	}
	return l, nil
}

// tick is the group-commit safety net: with SyncEvery > 1, a lull in
// writes would otherwise leave the last few records unsynced forever.
func (l *Log) tick() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopTick:
			return
		case <-t.C:
			l.mu.Lock()
			if l.pending > 0 && l.sealed == nil {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Path returns the log file's path.
func (l *Log) Path() string { return l.path }

// LastLSN returns the highest sequence number assigned so far.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Append assigns the next LSN, frames the record, writes it, and — per
// the group-commit policy — fsyncs. On return without error the record
// is in the log (durably, unless SyncEvery batching deferred the sync).
// Any write or sync failure seals the log.
func (l *Log) Append(kind Kind, appliedVersion uint64, body []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed != nil {
		return 0, fmt.Errorf("%w (cause: %v)", ErrSealed, l.sealed)
	}
	rec := Record{LSN: l.lsn + 1, AppliedVersion: appliedVersion, Kind: kind, Body: body}
	l.buf = AppendFrame(l.buf[:0], rec)
	if l.opts.Injector != nil {
		if err := l.opts.Injector.Visit(faultinject.SiteWALAppend, -1); err != nil {
			if errors.Is(err, faultinject.ErrShortWrite) && len(l.buf) > 1 {
				// Emulate a torn write faithfully: a strict prefix of the
				// frame reaches the file before the failure surfaces.
				l.f.Write(l.buf[:len(l.buf)/2])
				l.f.Sync()
			}
			l.sealed = err
			return 0, err
		}
	}
	n, err := l.f.Write(l.buf)
	if err != nil {
		l.sealed = err
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.lsn = rec.LSN
	l.pending++
	l.unsynced += uint64(n)
	l.appends.Add(1)
	l.appendedBytes.Add(uint64(n))
	if l.pending >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return rec.LSN, nil
}

// Sync forces an fsync of all appended records.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed != nil {
		return fmt.Errorf("%w (cause: %v)", ErrSealed, l.sealed)
	}
	if l.pending == 0 {
		return nil
	}
	return l.syncLocked()
}

// syncLocked fsyncs under l.mu, recording latency and sealing on error.
func (l *Log) syncLocked() error {
	if l.opts.Injector != nil {
		if err := l.opts.Injector.Visit(faultinject.SiteWALSync, -1); err != nil {
			l.sealed = err
			return err
		}
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.sealed = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.fsync.Record(time.Since(start))
	l.syncs.Add(1)
	l.syncedBytes.Add(l.unsynced)
	l.unsynced = 0
	l.pending = 0
	return nil
}

// truncateLocked resets the log file to empty after a checkpoint made
// its contents redundant. The LSN counter is untouched: sequence
// numbers never restart.
func (l *Log) truncateLocked() error {
	if err := l.f.Truncate(0); err != nil {
		l.sealed = err
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		l.sealed = err
		return fmt.Errorf("wal: truncate seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.sealed = err
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	l.pending = 0
	l.unsynced = 0
	l.truncations.Add(1)
	return nil
}

// Sealed returns the sticky failure that sealed the log, or nil.
func (l *Log) Sealed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	lsn, pending, sealed := l.lsn, l.pending, l.sealed != nil
	l.mu.Unlock()
	return Stats{
		Appends:        l.appends.Load(),
		AppendedBytes:  l.appendedBytes.Load(),
		Syncs:          l.syncs.Load(),
		SyncedBytes:    l.syncedBytes.Load(),
		Truncations:    l.truncations.Load(),
		LastLSN:        lsn,
		PendingRecords: pending,
		Sealed:         sealed,
		Fsync:          l.fsync.Snapshot(),
	}
}

// Close syncs any pending records and closes the file. A sealed log
// skips the final sync (it would be rejected anyway) but still closes.
func (l *Log) Close() error {
	if l.stopTick != nil {
		close(l.stopTick)
		<-l.tickDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var errs []error
	if l.sealed == nil && l.pending > 0 {
		if err := l.syncLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := l.f.Close(); err != nil {
		errs = append(errs, fmt.Errorf("wal: close: %w", err))
	}
	return errors.Join(errs...)
}
