// Package wal implements disqo's durability substrate: a
// length-prefixed, CRC32C-checksummed, monotonically-sequenced
// write-ahead log of logical DML/DDL records, plus the checkpoint
// files that bound how much of it recovery must replay.
//
// On-disk frame format (all integers little-endian):
//
//	[u32 payloadLen][u32 CRC32C(payload)][payload]
//
// payload:
//
//	[u64 LSN][u64 AppliedVersion][u8 kind][body...]
//
// LSNs are assigned by the log and strictly contiguous: record N+1
// always carries LSN(N)+1, and the counter survives checkpoints (a
// checkpoint truncates the file, never the sequence). AppliedVersion is
// the catalog commit counter the record applied against — replay
// verifies it before re-applying each record, so a divergent recovery
// fails closed instead of silently building a different database.
//
// Torn-vs-corrupt classification (the recovery contract): damage that
// is consistent with a crash mid-write of the FINAL record — a short
// header, a frame extending past end of file, a trailing frame whose
// checksum fails, or an all-zero tail (preallocated but never written)
// — is "torn" and silently truncated at the last valid frame boundary.
// Damage anywhere earlier, or damage a crash cannot produce (a bad
// checksum with more log after it, a well-checksummed payload that does
// not decode, a sequence break), is corruption and surfaces as a typed
// *RecoveryError: the log's prefix invariant is broken and no automatic
// repair is sound.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Kind tags the logical operation a record replays as.
type Kind uint8

const (
	// KindSQL is a normalized DML/DDL statement replayed through Exec.
	KindSQL Kind = 1
	// KindInsert is a binary-encoded batch insert (table + rows),
	// logged by the programmatic Insert path to avoid SQL round-trips.
	KindInsert Kind = 2
	// KindCreateTable is a programmatic CreateTable (name + columns).
	KindCreateTable Kind = 3
	// KindDropTable is a programmatic DropTable (name).
	KindDropTable Kind = 4
	// KindLoadRST replays a deterministic seeded RST dataset load by
	// its generator parameters instead of logging megabytes of rows.
	KindLoadRST Kind = 5
	// KindLoadTPCH replays a deterministic seeded TPC-H-style load.
	KindLoadTPCH Kind = 6
)

func (k Kind) String() string {
	switch k {
	case KindSQL:
		return "sql"
	case KindInsert:
		return "insert"
	case KindCreateTable:
		return "create-table"
	case KindDropTable:
		return "drop-table"
	case KindLoadRST:
		return "load-rst"
	case KindLoadTPCH:
		return "load-tpch"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one logical WAL entry.
type Record struct {
	// LSN is the record's log sequence number, contiguous from 1.
	LSN uint64
	// AppliedVersion is the catalog commit counter immediately before
	// this record applied; replay checks it as a pre-image guard.
	AppliedVersion uint64
	// Kind selects how Body replays.
	Kind Kind
	// Body is the kind-specific payload (normalized SQL bytes, a binary
	// row batch, generator parameters, ...). Opaque to this package.
	Body []byte
}

const (
	// frameHeader is the fixed prefix: u32 payload length + u32 CRC32C.
	frameHeader = 8
	// payloadFixed is the fixed payload prefix: LSN + AppliedVersion + kind.
	payloadFixed = 8 + 8 + 1
	// MaxRecordLen bounds a single payload; a length prefix above it is
	// treated as damage, never as an allocation request.
	MaxRecordLen = 1 << 28
)

// castagnoli is the CRC32C table (iSCSI polynomial), the same checksum
// ext4 and RocksDB use for log frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of a payload — exported so tests and the
// chaos harness can forge or verify frames.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, castagnoli)
}

// AppendFrame appends the framed encoding of rec to buf.
func AppendFrame(buf []byte, rec Record) []byte {
	payloadLen := payloadFixed + len(rec.Body)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	// CRC is computed over the payload about to be appended; reserve the
	// slot and backfill once the payload bytes exist.
	crcAt := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, rec.LSN)
	buf = binary.LittleEndian.AppendUint64(buf, rec.AppliedVersion)
	buf = append(buf, byte(rec.Kind))
	buf = append(buf, rec.Body...)
	binary.LittleEndian.PutUint32(buf[crcAt:], Checksum(buf[payloadAt:]))
	return buf
}

// RecoveryError reports log or snapshot damage recovery cannot repair:
// corruption before the final record, a payload that fails to decode
// despite a valid checksum, or a broken LSN sequence. Callers
// distinguish it from torn-tail truncation (which is silent) with
// errors.As.
type RecoveryError struct {
	// Path is the damaged file, when known.
	Path string
	// Offset is the byte offset of the damaged frame within the file.
	Offset int64
	// LSN is the sequence number involved, when one decoded.
	LSN uint64
	// Reason describes the damage.
	Reason string
}

func (e *RecoveryError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("wal: unrecoverable damage at offset %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("wal: unrecoverable damage in %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// allZero reports whether the tail is entirely zero bytes — the shape
// of preallocated-but-unwritten space, which is torn, not corrupt.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Scan decodes every frame in data, applying the torn-vs-corrupt
// decision table from the package comment. It returns the decoded
// records, the byte length of the valid prefix (the truncation point
// when torn is true), whether a torn tail was dropped, and a
// *RecoveryError for unrecoverable damage. On error the other returns
// describe the valid prefix before the damage.
func Scan(data []byte) (recs []Record, valid int64, torn bool, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeader {
			// A header can only be short at end of file: torn.
			return recs, int64(off), true, nil
		}
		payloadLen := int(binary.LittleEndian.Uint32(rest))
		wantCRC := binary.LittleEndian.Uint32(rest[4:])
		if payloadLen < payloadFixed || payloadLen > MaxRecordLen {
			if allZero(rest) {
				// Preallocated tail that never received a frame.
				return recs, int64(off), true, nil
			}
			return recs, int64(off), false, &RecoveryError{
				Offset: int64(off),
				Reason: fmt.Sprintf("frame length %d outside [%d, %d] in non-zero tail", payloadLen, payloadFixed, MaxRecordLen),
			}
		}
		frameEnd := off + frameHeader + payloadLen
		if frameEnd > len(data) {
			// The final frame's bytes stop short of its declared length:
			// the classic torn write.
			return recs, int64(off), true, nil
		}
		payload := rest[frameHeader : frameHeader+payloadLen]
		if Checksum(payload) != wantCRC {
			if frameEnd == len(data) {
				// Bad checksum on the very last frame: indistinguishable
				// from a crash that wrote the full length but not all the
				// bytes (out-of-order sectors), so torn.
				return recs, int64(off), true, nil
			}
			return recs, int64(off), false, &RecoveryError{
				Offset: int64(off),
				Reason: "checksum mismatch before end of log",
			}
		}
		rec := Record{
			LSN:            binary.LittleEndian.Uint64(payload),
			AppliedVersion: binary.LittleEndian.Uint64(payload[8:]),
			Kind:           Kind(payload[16]),
			Body:           payload[payloadFixed:],
		}
		// A frame that checksums correctly was fully written; any
		// problem inside it is corruption, not tearing.
		if rec.Kind < KindSQL || rec.Kind > KindLoadTPCH {
			return recs, int64(off), false, &RecoveryError{
				Offset: int64(off), LSN: rec.LSN,
				Reason: fmt.Sprintf("unknown record kind %d", uint8(rec.Kind)),
			}
		}
		if n := len(recs); n > 0 && rec.LSN != recs[n-1].LSN+1 {
			return recs, int64(off), false, &RecoveryError{
				Offset: int64(off), LSN: rec.LSN,
				Reason: fmt.Sprintf("sequence break: LSN %d follows %d", rec.LSN, recs[n-1].LSN),
			}
		}
		recs = append(recs, rec)
		off = frameEnd
	}
	return recs, int64(off), false, nil
}
