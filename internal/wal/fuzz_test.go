package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode drives Scan — the frame decoder crash recovery trusts
// with arbitrary disk bytes — over mutated logs. The decoder must never
// panic, must classify every input as (valid | torn | corrupt), and its
// accepted prefix must round-trip: re-encoding the decoded records must
// reproduce exactly the bytes it declared valid.
func FuzzWALDecode(f *testing.F) {
	// Seeds mirror real logs: well-formed sequences, a torn tail, a
	// zero-filled preallocation, mid-log damage, and header edge cases.
	var clean []byte
	clean = AppendFrame(clean, Record{LSN: 1, AppliedVersion: 1, Kind: KindSQL, Body: []byte("CREATE TABLE r (a INTEGER, b VARCHAR)")})
	clean = AppendFrame(clean, Record{LSN: 2, AppliedVersion: 2, Kind: KindSQL, Body: []byte("INSERT INTO r VALUES (1, 'x')")})
	clean = AppendFrame(clean, Record{LSN: 3, AppliedVersion: 3, Kind: KindInsert, Body: []byte{0x01, 'r', 0x01, 0x02}})
	f.Add(clean)
	f.Add(clean[:len(clean)-7])
	f.Add(append(append([]byte{}, clean...), make([]byte, 32)...))
	flipped := append([]byte{}, clean...)
	flipped[frameHeader+3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(AppendFrame(nil, Record{LSN: 9, Kind: KindLoadTPCH, Body: nil}))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, torn, err := Scan(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if err != nil {
			if torn {
				t.Fatalf("both torn and corrupt for the same input")
			}
			return
		}
		if torn && valid == int64(len(data)) {
			t.Fatalf("torn but nothing truncated")
		}
		// Round-trip: the accepted records must re-encode to the exact
		// valid prefix, and a rescan of that prefix must be clean.
		var re []byte
		for _, rec := range recs {
			re = AppendFrame(re, rec)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encode mismatch: %d bytes vs valid prefix %d", len(re), valid)
		}
		recs2, valid2, torn2, err2 := Scan(data[:valid])
		if err2 != nil || torn2 || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix: recs=%d valid=%d torn=%v err=%v", len(recs2), valid2, torn2, err2)
		}
	})
}
