package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"disqo/internal/catalog"
	"disqo/internal/faultinject"
)

// Snapshot file layout:
//
//	[8]  magic "DISQOCKP"
//	[u32] format version (1)
//	[u32] body length
//	[...] body
//	[u32] CRC32C(body)
//
// body:
//
//	[uvarint lastLSN]
//	[uvarint #views] ([string name][string sql])*
//	[catalog state]   (catalog.AppendState: commit counter + tables)
//
// The checkpoint protocol writes the file under a .tmp name, fsyncs,
// atomically renames it into place, fsyncs the directory, and only
// then truncates the log — so at every instant the directory holds at
// least one complete (snapshot, log-suffix) pair that reconstructs the
// committed state. Older snapshots are deleted last, best-effort.

const (
	snapMagic   = "DISQOCKP"
	snapVersion = 1
	snapPrefix  = "snapshot-"
	snapSuffix  = ".ckpt"
)

// View is a named view definition carried through snapshots as its
// original normalized CREATE VIEW statement.
type View struct {
	Name string
	SQL  string
}

// CheckpointState is everything a checkpoint serializes: the catalog's
// pinned immutable table versions, its commit counter, and the view
// definitions (which live outside the catalog).
type CheckpointState struct {
	Tables         []*catalog.Table
	CatalogVersion uint64
	Views          []View
}

func snapName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	var lsn uint64
	hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if _, err := fmt.Sscanf(hex, "%016x", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// encodeSnapshot builds the complete snapshot file contents.
func encodeSnapshot(st CheckpointState, lastLSN uint64) []byte {
	var body []byte
	body = binary.AppendUvarint(body, lastLSN)
	body = binary.AppendUvarint(body, uint64(len(st.Views)))
	views := make([]View, len(st.Views))
	copy(views, st.Views)
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	for _, v := range views {
		body = binary.AppendUvarint(body, uint64(len(v.Name)))
		body = append(body, v.Name...)
		body = binary.AppendUvarint(body, uint64(len(v.SQL)))
		body = append(body, v.SQL...)
	}
	body = catalog.AppendState(body, st.Tables, st.CatalogVersion)

	out := make([]byte, 0, len(snapMagic)+8+len(body)+4)
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint32(out, snapVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, Checksum(body))
	return out
}

// decodeSnapshot parses and verifies a snapshot file read in full.
func decodeSnapshot(data []byte) (CheckpointState, uint64, error) {
	var st CheckpointState
	hdr := len(snapMagic) + 8
	if len(data) < hdr+4 {
		return st, 0, fmt.Errorf("snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return st, 0, errors.New("bad snapshot magic")
	}
	if v := binary.LittleEndian.Uint32(data[len(snapMagic):]); v != snapVersion {
		return st, 0, fmt.Errorf("unsupported snapshot format version %d", v)
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[len(snapMagic)+4:]))
	if len(data) != hdr+bodyLen+4 {
		return st, 0, fmt.Errorf("snapshot length %d does not match declared body %d", len(data), bodyLen)
	}
	body := data[hdr : hdr+bodyLen]
	if Checksum(body) != binary.LittleEndian.Uint32(data[hdr+bodyLen:]) {
		return st, 0, errors.New("snapshot checksum mismatch")
	}
	lastLSN, n := binary.Uvarint(body)
	if n <= 0 {
		return st, 0, errors.New("bad snapshot LSN")
	}
	body = body[n:]
	nviews, n := binary.Uvarint(body)
	if n <= 0 || nviews > uint64(len(body)) {
		return st, 0, errors.New("bad snapshot view count")
	}
	body = body[n:]
	readStr := func(what string) (string, error) {
		u, n := binary.Uvarint(body)
		if n <= 0 || u > uint64(len(body)-n) {
			return "", fmt.Errorf("bad snapshot %s", what)
		}
		s := string(body[n : n+int(u)])
		body = body[n+int(u):]
		return s, nil
	}
	for i := uint64(0); i < nviews; i++ {
		name, err := readStr("view name")
		if err != nil {
			return st, 0, err
		}
		sql, err := readStr("view sql")
		if err != nil {
			return st, 0, err
		}
		st.Views = append(st.Views, View{Name: name, SQL: sql})
	}
	tables, version, err := catalog.DecodeState(body)
	if err != nil {
		return st, 0, err
	}
	st.Tables = tables
	st.CatalogVersion = version
	return st, lastLSN, nil
}

// DecodeSnapshot parses and verifies a complete snapshot file image,
// returning the checkpointed state and the last LSN the snapshot
// covers. Exported for the replication layer: a publisher ships
// snapshot files byte-for-byte and the replica decodes them with the
// same codec recovery uses.
func DecodeSnapshot(data []byte) (CheckpointState, uint64, error) {
	return decodeSnapshot(data)
}

// NewestSnapshot scans dir for the snapshot file covering the highest
// LSN and returns its path. ok is false when dir holds no snapshot.
// Unreadable directories surface as errors; a missing dir is treated
// as empty.
func NewestSnapshot(dir string) (path string, lsn uint64, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "", 0, false, nil
		}
		return "", 0, false, fmt.Errorf("wal: snapshot scan: %w", err)
	}
	for _, e := range entries {
		if n, k := parseSnapName(e.Name()); k && (!ok || n > lsn) {
			lsn, ok = n, true
		}
	}
	if !ok {
		return "", 0, false, nil
	}
	return filepath.Join(dir, snapName(lsn)), lsn, true, nil
}

// LogPath returns the WAL file's path under a data directory — the
// file the replication publisher tails with Scan.
func LogPath(dir string) string { return filepath.Join(dir, logName) }

// Checkpoint serializes st to a new snapshot file covering every
// record logged so far, then truncates the log. On any failure before
// the rename the previous snapshot and full log remain authoritative;
// after the rename the new snapshot is authoritative and a leftover
// un-truncated log suffix is filtered by LSN during recovery.
func (l *Log) Checkpoint(dir string, st CheckpointState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed != nil {
		return fmt.Errorf("%w (cause: %v)", ErrSealed, l.sealed)
	}
	if l.pending > 0 {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	lsn := l.lsn
	visit := func() error {
		if l.opts.Injector == nil {
			return nil
		}
		return l.opts.Injector.Visit(faultinject.SiteSnapshot, -1)
	}
	if err := visit(); err != nil { // visit 1: before the tmp write
		return err
	}
	data := encodeSnapshot(st, lsn)
	final := filepath.Join(dir, snapName(lsn))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint publish: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("wal: checkpoint dir sync: %w", err)
	}
	if err := visit(); err != nil { // visit 2: published, log not yet truncated
		return err
	}
	if err := l.truncateLocked(); err != nil {
		return err
	}
	if err := visit(); err != nil { // visit 3: after truncation
		return err
	}
	// The new snapshot supersedes all older ones; removal is best-effort
	// (a leftover older snapshot is skipped by recovery's newest-first
	// scan, never misread).
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if n, ok := parseSnapName(e.Name()); ok && n < lsn {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// RecoveredState is what Recover reconstructs from a data directory:
// the newest valid snapshot's contents plus the log records that must
// replay on top of it.
type RecoveredState struct {
	// Tables and CatalogVersion restore the catalog to the snapshot's
	// commit boundary (both zero-valued when no snapshot exists).
	Tables         []*catalog.Table
	CatalogVersion uint64
	// Views are the snapshot's view definitions.
	Views []View
	// SnapshotLSN is the last record the snapshot covers (0: none).
	SnapshotLSN uint64
	// Records is the log tail to replay, strictly after SnapshotLSN.
	Records []Record
	// TruncatedTail reports that a torn final record was dropped and
	// the log file physically truncated at the last valid boundary.
	TruncatedTail bool
	// LastLSN seeds the reopened log's sequence counter.
	LastLSN uint64
}

// Recover reads dir and reconstructs the committed state: it removes
// leftover temp files, loads the newest valid snapshot (falling back
// past unreadable ones), scans the log, truncates a torn tail in
// place, and verifies the surviving records form the contiguous
// sequence immediately following the snapshot. Any other damage
// returns a *RecoveryError.
func Recover(dir string) (*RecoveredState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: data dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: data dir: %w", err)
	}
	var snaps []uint64
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			// A checkpoint died before publishing; its temp file is garbage.
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		if lsn, ok := parseSnapName(e.Name()); ok {
			snaps = append(snaps, lsn)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

	rs := &RecoveredState{}
	for _, lsn := range snaps {
		path := filepath.Join(dir, snapName(lsn))
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		st, lastLSN, err := decodeSnapshot(data)
		if err != nil {
			// An unreadable newer snapshot falls back to an older one; if
			// the log was already truncated past the older snapshot the
			// sequence check below turns that into a hard error rather
			// than silently losing the gap.
			continue
		}
		rs.Tables = st.Tables
		rs.CatalogVersion = st.CatalogVersion
		rs.Views = st.Views
		rs.SnapshotLSN = lastLSN
		break
	}

	logPath := filepath.Join(dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("wal: read log: %w", err)
	}
	recs, valid, torn, scanErr := Scan(data)
	if scanErr != nil {
		var re *RecoveryError
		if errors.As(scanErr, &re) {
			re.Path = logPath
		}
		return nil, scanErr
	}
	if torn {
		if err := os.Truncate(logPath, valid); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		rs.TruncatedTail = true
	}

	rs.LastLSN = rs.SnapshotLSN
	next := rs.SnapshotLSN + 1
	for _, rec := range recs {
		if rec.LSN <= rs.SnapshotLSN {
			// Covered by the snapshot (checkpoint died between rename and
			// truncate); already applied.
			continue
		}
		if rec.LSN != next {
			return nil, &RecoveryError{
				Path: logPath, LSN: rec.LSN,
				Reason: fmt.Sprintf("log does not continue snapshot: want LSN %d, found %d", next, rec.LSN),
			}
		}
		rs.Records = append(rs.Records, rec)
		rs.LastLSN = rec.LSN
		next++
	}
	return rs, nil
}
