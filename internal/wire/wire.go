// Package wire defines disqod's client/server protocol: one JSON
// object per line in each direction (newline-delimited, UTF-8, no
// literal newlines inside a frame — encoding/json escapes them). The
// package holds only the frame types and the value codec, so both the
// server (disqo/internal/server) and the client (disqo.Client, in the
// root package) can share them without an import cycle.
//
// A request names an op and its arguments; the response echoes the
// request's id and carries either a result or a typed error. Error
// kinds mirror the engine's sentinel errors one-for-one (overloaded,
// closed, timeout, memory, canceled, query, ...) — the paper's scalar
// subquery semantics make faithful error propagation a correctness
// requirement, not a convenience: a cardinality violation must arrive
// as the query error it is, never as a generic disconnect.
//
// Values round-trip exactly: strings, booleans and NULL use their
// native JSON forms, while integers and floats are carried as tagged
// decimal strings ({"i":"..."} / {"f":"..."}) because a bare JSON
// number silently loses 64-bit integer precision past 2^53 and can
// reformat floats. Byte-identity between a served result and an
// in-process query result is load-bearing for the chaos suite.
package wire

import (
	"encoding/json"
	"fmt"
	"strconv"

	"disqo/internal/types"
)

// DefaultMaxFrame bounds one protocol line (request or response) in
// bytes unless the server or client overrides it. Oversized frames are
// a protocol error: the slowloris defense must never buffer an unbounded
// line.
const DefaultMaxFrame = 4 << 20

// Request ops.
const (
	// OpQuery executes a SELECT — req.SQL, or the named prepared
	// statement when req.Name is set.
	OpQuery = "query"
	// OpExec executes DML/DDL (req.SQL) and returns rows affected.
	OpExec = "exec"
	// OpPrepare parses and plans req.SQL once, storing it in the
	// session under req.Name for later OpQuery calls.
	OpPrepare = "prepare"
	// OpClose closes the named prepared statement.
	OpClose = "close"
	// OpSet updates session defaults (strategy, path, timeout).
	OpSet = "set"
	// OpPing returns server role, staleness, and session counts.
	OpPing = "ping"
	// OpReplicate switches the connection into a replication stream:
	// after this handshake line the server sends binary WAL-framed
	// records (and snapshot/heartbeat frames) starting after
	// req.FromLSN, and no further JSON flows in either direction.
	OpReplicate = "replicate"
)

// Error kinds, mirroring the engine's typed errors across the wire.
const (
	// KindOverloaded maps ErrOverloaded: admission or connection
	// backpressure shed the request — back off and retry.
	KindOverloaded = "overloaded"
	// KindClosed maps ErrClosed and server drain: the server is
	// shutting down (or reaped the idle session); reconnect elsewhere.
	KindClosed = "closed"
	// KindTimeout maps ErrTimeout / context.DeadlineExceeded from the
	// per-request deadline.
	KindTimeout = "timeout"
	// KindMemory maps ErrMemoryLimit / ErrTupleLimit.
	KindMemory = "memory"
	// KindCanceled maps context.Canceled.
	KindCanceled = "canceled"
	// KindQuery is a *QueryError whose cause is none of the above —
	// including the paper's scalar-subquery cardinality violations.
	KindQuery = "query"
	// KindInvalid is a parse or planning error: the statement itself is
	// wrong, retrying cannot help.
	KindInvalid = "invalid"
	// KindReadOnly rejects writes on a replica.
	KindReadOnly = "read_only"
	// KindSealed maps ErrWALSealed: the writer's log failed closed.
	KindSealed = "sealed"
	// KindProtocol is a malformed frame: bad JSON, unknown op, missing
	// argument, or a frame over the size limit.
	KindProtocol = "protocol"
)

// Request is one client frame.
type Request struct {
	// ID is echoed verbatim in the response so pipelined clients can
	// match frames; the server never interprets it.
	ID uint64 `json:"id,omitempty"`
	// Op selects the operation (Op* constants).
	Op string `json:"op"`
	// SQL is the statement text for query/exec/prepare.
	SQL string `json:"sql,omitempty"`
	// Name references a session prepared statement (prepare/close, and
	// query when SQL is empty).
	Name string `json:"name,omitempty"`
	// Strategy/Path/Nulls override the session defaults for this
	// request (query) or set them (set). Nulls selects the null
	// semantics: "3vl" (SQL three-valued, the default) or "2vl"
	// (comparisons with NULL are false).
	Strategy string `json:"strategy,omitempty"`
	Path     string `json:"path,omitempty"`
	Nulls    string `json:"nulls,omitempty"`
	// TimeoutMS bounds this request's execution; 0 uses the session
	// default. The deadline is wired into QueryContext, so expiry
	// aborts within one morsel.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// FromLSN is OpReplicate's resume position: the last WAL record the
	// replica has applied (0 for a fresh replica). The server streams
	// records after it, shipping a checkpoint snapshot first when log
	// truncation left a gap.
	FromLSN uint64 `json:"from_lsn,omitempty"`
}

// Response is one server frame.
type Response struct {
	ID uint64 `json:"id,omitempty"`
	OK bool   `json:"ok"`
	// Columns/Rows carry a query result.
	Columns []string  `json:"columns,omitempty"`
	Rows    [][]Value `json:"rows,omitempty"`
	// Affected is exec's rows-affected count.
	Affected int `json:"affected,omitempty"`
	// Stats are the per-query execution counters.
	Stats *Stats `json:"stats,omitempty"`
	// Error is set when OK is false.
	Error *Error `json:"error,omitempty"`
	// Server answers a ping.
	Server *ServerInfo `json:"server,omitempty"`
}

// Stats is the per-query counter summary a response carries (a
// projection of exec.Stats plus wall time).
type Stats struct {
	ElapsedUS     int64 `json:"elapsed_us"`
	Comparisons   int64 `json:"comparisons,omitempty"`
	TuplesOut     int64 `json:"tuples_out,omitempty"`
	SubqueryEvals int64 `json:"subquery_evals,omitempty"`
	Rows          int   `json:"rows"`
}

// Error is the typed failure a response carries. Kind is the contract;
// Message is for humans. Node/Op/Strategy survive from *QueryError so
// a remote failure is as attributable as a local one.
type Error struct {
	Kind     string `json:"kind"`
	Message  string `json:"message"`
	Node     int    `json:"node,omitempty"`
	Op       string `json:"op,omitempty"`
	Strategy string `json:"strategy,omitempty"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("disqod: [%s] %s", e.Kind, e.Message)
}

// ServerInfo answers OpPing.
type ServerInfo struct {
	// Role is "writer" or "replica".
	Role string `json:"role"`
	// Draining is true once SIGTERM arrived: finish in-flight work and
	// reconnect elsewhere.
	Draining bool `json:"draining,omitempty"`
	// Sessions/Conns are the server's live session and connection
	// counts (equal today; conns counts sockets before handshake too).
	Sessions int `json:"sessions"`
	Conns    int `json:"conns"`
	// AppliedLSN and StalenessMS describe a replica's position: the
	// last WAL record applied and the time since the writer was last
	// heard from. Zero on a writer.
	AppliedLSN  uint64 `json:"applied_lsn,omitempty"`
	StalenessMS int64  `json:"staleness_ms,omitempty"`
}

// Value wraps a types.Value with the exact-round-trip JSON encoding
// described in the package comment.
type Value struct {
	V types.Value
}

// MarshalJSON encodes per kind: null/bool/string natively, int and
// float as tagged decimal strings.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.V.Kind() {
	case types.KindNull:
		return []byte("null"), nil
	case types.KindBool:
		if b, _ := v.V.BoolOk(); b {
			return []byte("true"), nil
		}
		return []byte("false"), nil
	case types.KindString:
		s, _ := v.V.StrOk()
		return json.Marshal(s)
	case types.KindInt:
		i, _ := v.V.IntOk()
		return json.Marshal(map[string]string{"i": strconv.FormatInt(i, 10)})
	case types.KindFloat:
		f, _ := v.V.FloatOk()
		// 'g'/-1 is the shortest form ParseFloat reads back exactly, and
		// unlike a bare JSON number it also survives NaN and ±Inf.
		return json.Marshal(map[string]string{"f": strconv.FormatFloat(f, 'g', -1, 64)})
	default:
		return nil, fmt.Errorf("wire: unencodable value kind %d", v.V.Kind())
	}
}

// UnmarshalJSON decodes the encoding MarshalJSON produces.
func (v *Value) UnmarshalJSON(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("wire: empty value")
	}
	switch data[0] {
	case 'n':
		v.V = types.Null()
		return nil
	case 't', 'f':
		var b bool
		if err := json.Unmarshal(data, &b); err != nil {
			return err
		}
		v.V = types.NewBool(b)
		return nil
	case '"':
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v.V = types.NewString(s)
		return nil
	case '{':
		var tag struct {
			I *string `json:"i"`
			F *string `json:"f"`
		}
		if err := json.Unmarshal(data, &tag); err != nil {
			return err
		}
		switch {
		case tag.I != nil:
			i, err := strconv.ParseInt(*tag.I, 10, 64)
			if err != nil {
				return fmt.Errorf("wire: bad int %q: %w", *tag.I, err)
			}
			v.V = types.NewInt(i)
			return nil
		case tag.F != nil:
			f, err := strconv.ParseFloat(*tag.F, 64)
			if err != nil {
				return fmt.Errorf("wire: bad float %q: %w", *tag.F, err)
			}
			v.V = types.NewFloat(f)
			return nil
		}
		return fmt.Errorf("wire: tagged value with neither i nor f")
	default:
		return fmt.Errorf("wire: unrecognized value %q", data)
	}
}

// EncodeRows converts engine tuples to wire rows.
func EncodeRows(rows [][]types.Value) [][]Value {
	out := make([][]Value, len(rows))
	for i, row := range rows {
		w := make([]Value, len(row))
		for j, v := range row {
			w[j] = Value{V: v}
		}
		out[i] = w
	}
	return out
}

// DecodeRows converts wire rows back to engine tuples.
func DecodeRows(rows [][]Value) [][]types.Value {
	out := make([][]types.Value, len(rows))
	for i, row := range rows {
		vals := make([]types.Value, len(row))
		for j, v := range row {
			vals[j] = v.V
		}
		out[i] = vals
	}
	return out
}
