package wire

import (
	"encoding/json"
	"math"
	"testing"

	"disqo/internal/types"
)

// TestValueRoundTrip: every value kind survives marshal→unmarshal
// byte-identically at the types.Value level, including the cases a bare
// JSON number would corrupt (64-bit ints past 2^53, NaN, ±Inf, -0.0).
func TestValueRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.Null(),
		types.NewBool(true),
		types.NewBool(false),
		types.NewString(""),
		types.NewString("it's a \"test\"\nwith newline"),
		types.NewInt(0),
		types.NewInt(math.MaxInt64),
		types.NewInt(math.MinInt64),
		types.NewInt(1<<53 + 1), // the bare-JSON-number precision cliff
		types.NewFloat(0),
		types.NewFloat(math.Copysign(0, -1)),
		types.NewFloat(0.1),
		types.NewFloat(math.MaxFloat64),
		types.NewFloat(math.SmallestNonzeroFloat64),
		types.NewFloat(math.Inf(1)),
		types.NewFloat(math.Inf(-1)),
		types.NewFloat(math.NaN()),
	}
	for _, v := range vals {
		data, err := json.Marshal(Value{V: v})
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got Value
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s (from %v): %v", data, v, err)
		}
		if !types.Identical(v, got.V) {
			t.Fatalf("round trip changed %v -> %v (wire %s)", v, got.V, data)
		}
	}
}

// TestRowsRoundTrip: EncodeRows/DecodeRows are inverses through a full
// Response marshal, and tuples stay Identical.
func TestRowsRoundTrip(t *testing.T) {
	rows := [][]types.Value{
		{types.NewInt(1), types.NewString("a"), types.Null()},
		{types.NewInt(2), types.NewString("b"), types.NewFloat(2.5)},
	}
	resp := Response{ID: 7, OK: true, Columns: []string{"x", "y", "z"}, Rows: EncodeRows(rows)}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	dec := DecodeRows(got.Rows)
	if len(dec) != len(rows) {
		t.Fatalf("row count %d != %d", len(dec), len(rows))
	}
	for i := range rows {
		if !types.TuplesIdentical(rows[i], dec[i]) {
			t.Fatalf("row %d changed: %v -> %v", i, rows[i], dec[i])
		}
	}
	if got.ID != 7 || !got.OK || len(got.Columns) != 3 {
		t.Fatalf("header fields lost: %+v", got)
	}
}

// TestValueUnmarshalRejectsGarbage: malformed frames surface as errors,
// not zero values.
func TestValueUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{`12`, `{}`, `{"i":"x"}`, `{"f":"y"}`, `[1]`, ``} {
		var v Value
		if err := v.UnmarshalJSON([]byte(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
