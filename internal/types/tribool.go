package types

// TriBool is SQL's three-valued logic: TRUE, FALSE, or UNKNOWN.
// Predicates over NULLs evaluate to Unknown; a WHERE clause keeps a tuple
// only when its predicate is True, so Unknown and False filter alike —
// which is exactly the property that lets bypass operators route the
// "not true" complement into the negative stream (cf. DESIGN.md §5).
type TriBool uint8

const (
	// False is definite falsehood.
	False TriBool = iota
	// True is definite truth.
	True
	// Unknown is SQL's NULL truth value.
	Unknown
)

// TriOf lifts a Go bool into three-valued logic.
func TriOf(b bool) TriBool {
	if b {
		return True
	}
	return False
}

// String renders the truth value.
func (t TriBool) String() string {
	switch t {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "UNKNOWN"
	}
}

// And is Kleene conjunction.
func (t TriBool) And(o TriBool) TriBool {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or is Kleene disjunction.
func (t TriBool) Or(o TriBool) TriBool {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not is Kleene negation.
func (t TriBool) Not() TriBool {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// IsTrue reports whether the truth value is definitely TRUE — the WHERE
// clause acceptance test.
func (t TriBool) IsTrue() bool { return t == True }

// Value converts the truth value into a SQL value (Unknown becomes NULL).
func (t TriBool) Value() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null()
	}
}

// TriFromValue interprets a SQL value as a truth value: NULL is Unknown,
// booleans map directly, and any other kind is Unknown (no implicit
// casts; the planner type-checks predicates).
func TriFromValue(v Value) TriBool {
	if b, ok := v.BoolOk(); ok {
		return TriOf(b)
	}
	return Unknown
}

// NullMode selects the logic predicates evaluate under. The default
// ThreeValued is SQL's Kleene logic: comparisons against NULL yield
// Unknown, which propagates through connectives. TwoValued follows
// "Handling SQL Nulls with Two-Valued Logic" (arXiv 2012.13198):
// every atomic predicate over a NULL is simply FALSE, and the
// connectives are classical Boolean. The collapse happens at the
// leaves — comparisons, LIKE, and predicate-as-value coercions — so
// AND/OR/NOT never see Unknown and need no mode switch of their own.
type NullMode uint8

const (
	// ThreeValued is SQL's standard Kleene three-valued logic.
	ThreeValued NullMode = iota
	// TwoValued collapses Unknown to False at predicate leaves.
	TwoValued
)

// String renders the mode the way the REPL and EXPLAIN spell it.
func (m NullMode) String() string {
	if m == TwoValued {
		return "2vl"
	}
	return "3vl"
}

// Lift maps a leaf truth value into the mode: under TwoValued, Unknown
// collapses to False; under ThreeValued it passes through.
func (m NullMode) Lift(t TriBool) TriBool {
	if m == TwoValued && t == Unknown {
		return False
	}
	return t
}

// CompareOp is a comparison operator θ ∈ {=, <>, <, <=, >, >=} — the
// linking and correlation operators the paper's equivalences support.
type CompareOp uint8

const (
	// EQ is =.
	EQ CompareOp = iota
	// NE is <>.
	NE
	// LT is <.
	LT
	// LE is <=.
	LE
	// GT is >.
	GT
	// GE is >=.
	GE
)

// String renders the operator in SQL syntax.
func (op CompareOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?cmp?"
	}
}

// Negate returns the complement operator (¬(a θ b) ≡ a θ' b for non-NULL
// operands).
func (op CompareOp) Negate() CompareOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	default: // GE
		return LT
	}
}

// Flip returns the operator with swapped operands (a θ b ≡ b flip(θ) a).
func (op CompareOp) Flip() CompareOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default: // EQ, NE are symmetric
		return op
	}
}

// CompareValues applies θ under SQL semantics: any NULL operand yields
// Unknown; incomparable kinds yield Unknown.
func CompareValues(op CompareOp, a, b Value) TriBool {
	c, ok := Compare(a, b)
	if !ok {
		return Unknown
	}
	switch op {
	case EQ:
		return TriOf(c == 0)
	case NE:
		return TriOf(c != 0)
	case LT:
		return TriOf(c < 0)
	case LE:
		return TriOf(c <= 0)
	case GT:
		return TriOf(c > 0)
	default: // GE
		return TriOf(c >= 0)
	}
}

// OrderValues gives a total order for ORDER BY and sort-based operators:
// NULLs sort first, then values by Compare; across incomparable kinds the
// Kind ordinal breaks the tie so sorting is deterministic.
func OrderValues(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	switch {
	case a.Kind() < b.Kind():
		return -1
	case a.Kind() > b.Kind():
		return 1
	default:
		return 0
	}
}

// OrderTuples compares two value slices lexicographically with OrderValues.
func OrderTuples(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := OrderValues(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}
