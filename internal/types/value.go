// Package types implements the SQL value system used throughout disqo:
// typed scalar values, NULL, three-valued logic, comparison, hashing, and
// formatting. All operators, the expression evaluator, and the storage
// layer exchange data as Value slices.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the SQL NULL marker; a NULL Value carries no payload.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float (SQL DOUBLE / DECIMAL stand-in).
	KindFloat
	// KindString is a variable-length character string.
	KindString
	// KindBool is a boolean (result of predicates stored as values).
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL scalar. The zero Value is NULL.
//
// Value is a small value type passed by copy; only one payload field is
// meaningful, selected by Kind.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the runtime type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics when v is not an integer,
// so it is reserved for internal invariants (values the engine itself
// produced with a known kind); code handling user data takes IntOk.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// IntOk returns the integer payload and whether v is an integer — the
// checked accessor for executor-facing paths, where a kind mismatch is
// bad user data, not a bug, and must surface as an error.
func (v Value) IntOk() (int64, bool) { return v.i, v.kind == KindInt }

// Float returns the float payload. It panics when v is not a float;
// reserved for internal invariants — executor-facing code uses FloatOk
// or AsFloat.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
	return v.f
}

// FloatOk returns the float payload and whether v is a float (no
// coercion; see AsFloat for int→float widening).
func (v Value) FloatOk() (float64, bool) { return v.f, v.kind == KindFloat }

// Str returns the string payload. It panics when v is not a string;
// reserved for internal invariants — executor-facing code uses StrOk.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// StrOk returns the string payload and whether v is a string.
func (v Value) StrOk() (string, bool) { return v.s, v.kind == KindString }

// Bool returns the boolean payload. It panics when v is not a boolean;
// reserved for internal invariants — executor-facing code uses BoolOk.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.b
}

// BoolOk returns the boolean payload and whether v is a boolean.
func (v Value) BoolOk() (bool, bool) { return v.b, v.kind == KindBool }

// IsNumeric reports whether v is an integer or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsFloat coerces a numeric value to float64. The second result is false
// for non-numeric values (including NULL).
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// String renders the value the way the CLI and EXPLAIN output print it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + v.s + "'"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.kind))
	}
}

// Compare orders two non-NULL values: -1, 0, +1. Numeric values compare
// across int/float. The boolean false sorts before true. Comparing a NULL
// or incompatible kinds returns ok=false; SQL comparison semantics on
// NULLs live in Compare3VL.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, true
			case a.i > b.i:
				return 1, true
			default:
				return 0, true
			}
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind != b.kind {
		return 0, false
	}
	switch a.kind {
	case KindString:
		return strings.Compare(a.s, b.s), true
	case KindBool:
		switch {
		case a.b == b.b:
			return 0, true
		case !a.b:
			return -1, true
		default:
			return 1, true
		}
	default:
		return 0, false
	}
}

// Equal reports strict SQL equality of two values; NULL never equals
// anything (use Identical for grouping/dedup semantics).
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Identical implements the "IS NOT DISTINCT FROM" relation used by
// grouping, duplicate elimination, and set operations: NULL is identical
// to NULL, and otherwise values are identical when they compare equal.
func Identical(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return a.kind == b.kind
	}
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Hash returns a 64-bit hash consistent with Identical: identical values
// hash equally (ints and floats representing the same number collide on
// purpose).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	switch v.kind {
	case KindNull:
		mix(0)
	case KindInt, KindFloat:
		// Numerically equal ints and floats must hash equally (they are
		// Identical). Integral floats hash via their int64 form; all
		// other numerics hash their float64 bit pattern.
		var bits uint64
		if v.kind == KindInt {
			bits = uint64(v.i)
		} else if f := v.f; f == math.Trunc(f) && f >= math.MinInt64 && f < math.MaxInt64 {
			bits = uint64(int64(f))
		} else {
			bits = math.Float64bits(v.f)
		}
		mix(1)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	case KindString:
		mix(2)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindBool:
		mix(3)
		if v.b {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

// HashTuple combines the hashes of a value slice (a tuple or key prefix).
func HashTuple(vs []Value) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range vs {
		h = (h ^ v.Hash()) * prime64
	}
	return h
}

// TuplesIdentical reports element-wise Identical over two equal-length
// value slices.
func TuplesIdentical(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Identical(a[i], b[i]) {
			return false
		}
	}
	return true
}
