package types

import (
	"testing"
	"testing/quick"
)

func TestTriBoolTables(t *testing.T) {
	// Kleene truth tables.
	and := [3][3]TriBool{
		//        False    True     Unknown
		/*F*/ {False, False, False},
		/*T*/ {False, True, Unknown},
		/*U*/ {False, Unknown, Unknown},
	}
	or := [3][3]TriBool{
		/*F*/ {False, True, Unknown},
		/*T*/ {True, True, True},
		/*U*/ {Unknown, True, Unknown},
	}
	vals := []TriBool{False, True, Unknown}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != and[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, and[i][j])
			}
			if got := a.Or(b); got != or[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, or[i][j])
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("NOT table wrong")
	}
}

func TestTriBoolStringAndIsTrue(t *testing.T) {
	if True.String() != "TRUE" || False.String() != "FALSE" || Unknown.String() != "UNKNOWN" {
		t.Error("TriBool.String wrong")
	}
	if !True.IsTrue() || False.IsTrue() || Unknown.IsTrue() {
		t.Error("IsTrue wrong")
	}
}

func TestTriBoolValueRoundTrip(t *testing.T) {
	if TriFromValue(True.Value()) != True {
		t.Error("True round trip")
	}
	if TriFromValue(False.Value()) != False {
		t.Error("False round trip")
	}
	if TriFromValue(Unknown.Value()) != Unknown {
		t.Error("Unknown round trip (NULL)")
	}
	if TriFromValue(NewInt(1)) != Unknown {
		t.Error("non-bool value must map to Unknown")
	}
}

func TestCompareOpStrings(t *testing.T) {
	want := map[CompareOp]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestCompareOpNegateInvolution(t *testing.T) {
	ops := []CompareOp{EQ, NE, LT, LE, GT, GE}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not an involution for %v", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("Flip not an involution for %v", op)
		}
	}
}

func TestCompareOpSemantics(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	cases := []struct {
		op   CompareOp
		want TriBool
	}{
		{EQ, False}, {NE, True}, {LT, True}, {LE, True}, {GT, False}, {GE, False},
	}
	for _, c := range cases {
		if got := CompareValues(c.op, a, b); got != c.want {
			t.Errorf("1 %v 2 = %v, want %v", c.op, got, c.want)
		}
	}
	for _, op := range []CompareOp{EQ, NE, LT, LE, GT, GE} {
		if CompareValues(op, Null(), b) != Unknown {
			t.Errorf("NULL %v 2 must be Unknown", op)
		}
		if CompareValues(op, a, Null()) != Unknown {
			t.Errorf("1 %v NULL must be Unknown", op)
		}
	}
}

func TestNegateFlipAgreeWithSemantics(t *testing.T) {
	f := func(x, y int64) bool {
		a, b := NewInt(x), NewInt(y)
		for _, op := range []CompareOp{EQ, NE, LT, LE, GT, GE} {
			if CompareValues(op, a, b).Not() != CompareValues(op.Negate(), a, b) {
				return false
			}
			if CompareValues(op, a, b) != CompareValues(op.Flip(), b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderValuesTotalOrder(t *testing.T) {
	vals := []Value{Null(), NewInt(-1), NewInt(0), NewFloat(0.5), NewInt(1),
		NewString("a"), NewString("b"), NewBool(false), NewBool(true)}
	// NULL first.
	if OrderValues(Null(), NewInt(0)) != -1 || OrderValues(NewInt(0), Null()) != 1 {
		t.Error("NULL must sort first")
	}
	if OrderValues(Null(), Null()) != 0 {
		t.Error("NULL == NULL in ordering")
	}
	// Antisymmetry across the board.
	for _, a := range vals {
		for _, b := range vals {
			if OrderValues(a, b) != -OrderValues(b, a) {
				t.Errorf("OrderValues not antisymmetric on %v, %v", a, b)
			}
		}
	}
}

func TestOrderTuples(t *testing.T) {
	a := []Value{NewInt(1), NewInt(2)}
	b := []Value{NewInt(1), NewInt(3)}
	if OrderTuples(a, b) != -1 || OrderTuples(b, a) != 1 || OrderTuples(a, a) != 0 {
		t.Error("lexicographic compare wrong")
	}
	if OrderTuples(a[:1], a) != -1 {
		t.Error("prefix must sort first")
	}
}
