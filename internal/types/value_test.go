package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INTEGER",
		KindFloat:  "DOUBLE",
		KindString: "VARCHAR",
		KindBool:   "BOOLEAN",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v", v.Kind())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int() = %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %g", got)
	}
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("Str() = %q", got)
	}
	if got := NewBool(true).Bool(); got != true {
		t.Errorf("Bool() = %v", got)
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on a string must panic")
		}
	}()
	_ = NewString("x").Int()
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Errorf("AsFloat(int 3) = %g, %v", f, ok)
	}
	if f, ok := NewFloat(1.5).AsFloat(); !ok || f != 1.5 {
		t.Errorf("AsFloat(1.5) = %g, %v", f, ok)
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("AsFloat(string) must fail")
	}
	if _, ok := Null().AsFloat(); ok {
		t.Error("AsFloat(NULL) must fail")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.25), "1.25"},
		{NewString("hi"), "'hi'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(3), NewInt(2), 1, true},
		{NewInt(1), NewFloat(1.0), 0, true},
		{NewInt(1), NewFloat(1.5), -1, true},
		{NewFloat(2.5), NewInt(2), 1, true},
		{NewString("a"), NewString("b"), -1, true},
		{NewString("b"), NewString("b"), 0, true},
		{NewBool(false), NewBool(true), -1, true},
		{NewBool(true), NewBool(true), 0, true},
		{Null(), NewInt(1), 0, false},
		{NewInt(1), Null(), 0, false},
		{NewInt(1), NewString("1"), 0, false},
		{NewBool(true), NewInt(1), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d, %v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestEqualVsIdentical(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Error("Equal(NULL, NULL) must be false")
	}
	if !Identical(Null(), Null()) {
		t.Error("Identical(NULL, NULL) must be true")
	}
	if Identical(Null(), NewInt(0)) {
		t.Error("Identical(NULL, 0) must be false")
	}
	if !Identical(NewInt(5), NewFloat(5)) {
		t.Error("Identical(5, 5.0) must be true")
	}
	if Identical(NewInt(5), NewString("5")) {
		t.Error("Identical(5, '5') must be false")
	}
}

func TestHashConsistentWithIdentical(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(7), NewFloat(7)},
		{Null(), Null()},
		{NewString("abc"), NewString("abc")},
		{NewBool(true), NewBool(true)},
		{NewFloat(-0.0), NewFloat(0.0)},
		{NewInt(0), NewFloat(-0.0)},
	}
	for _, p := range pairs {
		if !Identical(p[0], p[1]) {
			t.Errorf("expected Identical(%v, %v)", p[0], p[1])
			continue
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("Hash mismatch for identical values %v and %v", p[0], p[1])
		}
	}
}

func TestHashDistributes(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int64(0); i < 1000; i++ {
		h := NewInt(i).Hash()
		if seen[h] {
			t.Fatalf("hash collision within 1000 consecutive ints at %d", i)
		}
		seen[h] = true
	}
}

func TestHashIdenticalProperty(t *testing.T) {
	f := func(x int64) bool {
		a, b := NewInt(x), NewFloat(float64(x))
		if float64(x) != math.Trunc(float64(x)) {
			return true
		}
		if int64(float64(x)) != x {
			return true // not exactly representable; Identical may still hold but skip
		}
		return a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashTupleOrderSensitive(t *testing.T) {
	a := []Value{NewInt(1), NewInt(2)}
	b := []Value{NewInt(2), NewInt(1)}
	if HashTuple(a) == HashTuple(b) {
		t.Error("HashTuple should be order-sensitive")
	}
	if HashTuple(a) != HashTuple([]Value{NewInt(1), NewInt(2)}) {
		t.Error("HashTuple must be deterministic")
	}
}

func TestTuplesIdentical(t *testing.T) {
	a := []Value{NewInt(1), Null()}
	b := []Value{NewInt(1), Null()}
	c := []Value{NewInt(1), NewInt(0)}
	if !TuplesIdentical(a, b) {
		t.Error("identical tuples not recognized")
	}
	if TuplesIdentical(a, c) {
		t.Error("distinct tuples reported identical")
	}
	if TuplesIdentical(a, a[:1]) {
		t.Error("length mismatch must not be identical")
	}
}
