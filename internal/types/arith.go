package types

import (
	"fmt"
	"strings"
)

// ArithOp is a binary arithmetic operator.
type ArithOp uint8

const (
	// Add is +.
	Add ArithOp = iota
	// Sub is -.
	Sub
	// Mul is *.
	Mul
	// Div is /.
	Div
)

// String renders the operator in SQL syntax.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return "?arith?"
	}
}

// Arith applies op under SQL semantics: NULL in, NULL out; integer
// operands stay integral except for division, which promotes to float
// (matching how AVG and supply-cost arithmetic behave in the paper's
// queries). Division by zero yields NULL rather than an error so a single
// bad tuple cannot abort a whole plan.
func Arith(op ArithOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("types: %s applied to %s and %s", op, a.Kind(), b.Kind())
	}
	xi, xok := a.IntOk()
	yi, yok := b.IntOk()
	if xok && yok && op != Div {
		switch op {
		case Add:
			return NewInt(xi + yi), nil
		case Sub:
			return NewInt(xi - yi), nil
		default: // Mul
			return NewInt(xi * yi), nil
		}
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case Add:
		return NewFloat(x + y), nil
	case Sub:
		return NewFloat(x - y), nil
	case Mul:
		return NewFloat(x * y), nil
	default: // Div
		if y == 0 {
			return Null(), nil
		}
		return NewFloat(x / y), nil
	}
}

// Like implements the SQL LIKE predicate with % (any run) and _ (any one
// character) wildcards; there is no escape character. NULL operands yield
// Unknown.
func Like(s, pattern Value) TriBool {
	if s.IsNull() || pattern.IsNull() {
		return Unknown
	}
	str, sok := s.StrOk()
	pat, pok := pattern.StrOk()
	if !sok || !pok {
		return Unknown
	}
	return TriOf(likeMatch(str, pat))
}

// likeMatch is a linear-scan wildcard matcher (greedy % with
// backtracking), the standard two-pointer algorithm.
func likeMatch(s, p string) bool {
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// FormatTuple renders a tuple for test output and the CLI: values joined
// by ", " inside parentheses.
func FormatTuple(vs []Value) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range vs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
