package types

import "testing"

func TestArithIntegers(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b int64
		want Value
	}{
		{Add, 2, 3, NewInt(5)},
		{Sub, 2, 3, NewInt(-1)},
		{Mul, 4, 3, NewInt(12)},
		{Div, 7, 2, NewFloat(3.5)},
	}
	for _, c := range cases {
		got, err := Arith(c.op, NewInt(c.a), NewInt(c.b))
		if err != nil {
			t.Fatalf("%d %v %d: %v", c.a, c.op, c.b, err)
		}
		if !Identical(got, c.want) {
			t.Errorf("%d %v %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestArithMixedAndFloat(t *testing.T) {
	got, err := Arith(Add, NewInt(1), NewFloat(0.5))
	if err != nil || !Identical(got, NewFloat(1.5)) {
		t.Errorf("1 + 0.5 = %v (%v)", got, err)
	}
	got, err = Arith(Mul, NewFloat(2), NewFloat(2.5))
	if err != nil || !Identical(got, NewFloat(5)) {
		t.Errorf("2.0 * 2.5 = %v (%v)", got, err)
	}
}

func TestArithNullPropagation(t *testing.T) {
	for _, op := range []ArithOp{Add, Sub, Mul, Div} {
		if got, err := Arith(op, Null(), NewInt(1)); err != nil || !got.IsNull() {
			t.Errorf("NULL %v 1 = %v (%v)", op, got, err)
		}
		if got, err := Arith(op, NewInt(1), Null()); err != nil || !got.IsNull() {
			t.Errorf("1 %v NULL = %v (%v)", op, got, err)
		}
	}
}

func TestArithDivisionByZero(t *testing.T) {
	got, err := Arith(Div, NewInt(1), NewInt(0))
	if err != nil || !got.IsNull() {
		t.Errorf("1/0 = %v (%v), want NULL", got, err)
	}
	got, err = Arith(Div, NewFloat(1), NewFloat(0)) // float zero too
	if err != nil || !got.IsNull() {
		t.Errorf("1.0/0.0 = %v (%v), want NULL", got, err)
	}
}

func TestArithTypeError(t *testing.T) {
	if _, err := Arith(Add, NewString("a"), NewInt(1)); err == nil {
		t.Error("adding a string must error")
	}
	if _, err := Arith(Mul, NewBool(true), NewInt(1)); err == nil {
		t.Error("multiplying a bool must error")
	}
}

func TestArithOpString(t *testing.T) {
	want := map[ArithOp]string{Add: "+", Sub: "-", Mul: "*", Div: "/"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want TriBool
	}{
		{"ECONOMY ANODIZED BRASS", "%BRASS", True},
		{"ECONOMY ANODIZED STEEL", "%BRASS", False},
		{"BRASS", "%BRASS", True},
		{"abc", "a_c", True},
		{"abc", "a_d", False},
		{"abc", "%", True},
		{"", "%", True},
		{"", "_", False},
		{"abc", "abc", True},
		{"abc", "ab", False},
		{"aXbXc", "a%b%c", True},
		{"mississippi", "%iss%pi", True},
		{"mississippi", "%iss%pZ", False},
		{"aaa", "a%a%a", True},
	}
	for _, c := range cases {
		if got := Like(NewString(c.s), NewString(c.p)); got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	if Like(Null(), NewString("%")) != Unknown {
		t.Error("LIKE with NULL input must be Unknown")
	}
	if Like(NewString("x"), Null()) != Unknown {
		t.Error("LIKE with NULL pattern must be Unknown")
	}
	if Like(NewInt(1), NewString("%")) != Unknown {
		t.Error("LIKE on non-string must be Unknown")
	}
}

func TestFormatTuple(t *testing.T) {
	got := FormatTuple([]Value{NewInt(1), NewString("x"), Null()})
	want := "(1, 'x', NULL)"
	if got != want {
		t.Errorf("FormatTuple = %q, want %q", got, want)
	}
	if FormatTuple(nil) != "()" {
		t.Error("empty tuple must format as ()")
	}
}
