// Package physical defines disqo's physical plan layer: the executable
// operator tree the planner lowers logical algebra into. Where the
// logical algebra (internal/algebra) says *what* to compute — join,
// bypass selection, binary grouping — a physical node says *how*: hash
// join vs. nested loops, sort-based vs. hash-based binary grouping,
// which column positions carry the keys, and which predicate fragments
// remain residual. All algorithm choices the executor used to make
// inline now happen once, in Planner.Lower, where they are visible to
// EXPLAIN and testable in isolation; every node carries the estimated
// output cardinality from internal/stats.
package physical

import (
	"fmt"
	"strings"

	"disqo/internal/algebra"
	"disqo/internal/storage"
	"disqo/internal/types"
	"disqo/internal/vec"
)

// Node is one physical operator. Children() returns the physical
// inputs; Logical() the algebra operator this node was lowered from
// (several physical nodes may share one logical operator's schema and
// EXPLAIN ANALYZE attributes its row counts through this link).
type Node interface {
	// Logical returns the algebra operator this node implements.
	Logical() algebra.Op
	// Schema returns the output schema (the logical operator's).
	Schema() *storage.Schema
	// Children returns the physical inputs in evaluation order.
	Children() []Node
	// Label renders the operator with its physical details.
	Label() string
	// EstRows is the planner's estimated output cardinality.
	EstRows() float64
	// ID is the planner-assigned ordinal, dense in [0, Planner.NodeCount).
	// The executor's runtime metrics are slices indexed by it.
	ID() int
	setID(int)
}

// base carries the fields every node shares.
type base struct {
	logical algebra.Op
	est     float64
	id      int
}

func (b *base) Logical() algebra.Op     { return b.logical }
func (b *base) Schema() *storage.Schema { return b.logical.Schema() }
func (b *base) EstRows() float64        { return b.est }
func (b *base) ID() int                 { return b.id }
func (b *base) setID(id int)            { b.id = id }

// JoinMode selects what a join emits: matched pairs (inner), left
// tuples with a match (semi), or left tuples without one (anti).
type JoinMode uint8

// The join modes.
const (
	JoinInner JoinMode = iota
	JoinSemi
	JoinAnti
)

func (m JoinMode) String() string {
	switch m {
	case JoinSemi:
		return "semi"
	case JoinAnti:
		return "anti"
	default:
		return "inner"
	}
}

// Scan reads a base table.
type Scan struct {
	base
	Table string
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Label implements Node.
func (s *Scan) Label() string { return "Scan(" + s.Table + ")" }

// Filter keeps tuples satisfying the predicate (σ).
type Filter struct {
	base
	Child Node
	Pred  algebra.Expr
	// VecPred is the compiled columnar program for Pred (with AND/OR
	// operands cost-ordered), set by the planner's path-selection step
	// when the predicate vectorizes; nil keeps the node on the row path.
	VecPred *vec.Pred
}

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// Label implements Node.
func (f *Filter) Label() string { return fmt.Sprintf("Filter[%s]", f.Pred) }

// BypassFilter partitions its input into a TRUE stream and a not-TRUE
// stream (σ±). It is only consumed through Stream nodes, which select
// one side; the executor evaluates both sides in a single pass.
type BypassFilter struct {
	base
	Child Node
	Pred  algebra.Expr
	// VecPred is the compiled columnar program for Pred; one vectorized
	// pass forks the input batch into the positive and negative
	// selection vectors. Nil keeps σ± on the row path.
	VecPred *vec.Pred
}

// Children implements Node.
func (f *BypassFilter) Children() []Node { return []Node{f.Child} }

// Label implements Node.
func (f *BypassFilter) Label() string { return fmt.Sprintf("Filter±[%s]", f.Pred) }

// Stream selects the positive or negative output of a bypass operator.
// When the logical plan fuses a σ onto the negative stream of a bypass
// join (Eqv. 5's σ_p(R ⋈− S)), the planner splits the fused predicate by
// schema membership once: FusedL/FusedR pre-reduce the join inputs,
// FusedRest is checked per surviving pair during enumeration.
type Stream struct {
	base
	Source   Node
	Positive bool
	// Fused filter fragments (negative bypass-join streams only; nil
	// otherwise). Fused reports whether any fragment is set.
	FusedL, FusedR, FusedRest algebra.Expr
}

// Fused reports whether the stream carries a fused filter.
func (s *Stream) Fused() bool {
	return s.FusedL != nil || s.FusedR != nil || s.FusedRest != nil
}

// Children implements Node.
func (s *Stream) Children() []Node { return []Node{s.Source} }

// Label implements Node.
func (s *Stream) Label() string {
	sign := "-"
	if s.Positive {
		sign = "+"
	}
	if !s.Fused() {
		return "Stream" + sign
	}
	frag := make([]string, 0, 3)
	for _, p := range []struct {
		tag string
		e   algebra.Expr
	}{{"L:", s.FusedL}, {"R:", s.FusedR}, {"rest:", s.FusedRest}} {
		if p.e != nil {
			frag = append(frag, p.tag+p.e.String())
		}
	}
	return fmt.Sprintf("Stream%s⋅Filter[%s]", sign, strings.Join(frag, " "))
}

// Project restricts tuples to the named columns; Cols are the resolved
// positions in the child schema.
type Project struct {
	base
	Child Node
	Cols  []int
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Label implements Node.
func (p *Project) Label() string { return fmt.Sprintf("Project%s", p.Schema()) }

// Rename relabels attributes; tuples pass through untouched.
type Rename struct {
	base
	Child Node
}

// Children implements Node.
func (r *Rename) Children() []Node { return []Node{r.Child} }

// Label implements Node.
func (r *Rename) Label() string { return "Rename" + r.Schema().String() }

// Map extends each tuple with one computed attribute (χ).
type Map struct {
	base
	Child Node
	Attr  string
	Expr  algebra.Expr
	// VecExpr is the compiled columnar program for Expr; nil keeps the
	// node on the row path.
	VecExpr *vec.Scalar
}

// Children implements Node.
func (m *Map) Children() []Node { return []Node{m.Child} }

// Label implements Node.
func (m *Map) Label() string { return fmt.Sprintf("Map[%s:%s]", m.Attr, m.Expr) }

// Number extends each tuple with its 1-based input position (ν).
type Number struct {
	base
	Child Node
	Attr  string
}

// Children implements Node.
func (n *Number) Children() []Node { return []Node{n.Child} }

// Label implements Node.
func (n *Number) Label() string { return fmt.Sprintf("Number[%s]", n.Attr) }

// HashJoin joins by building a hash table on the right input's key
// columns and probing with the left's. Residual holds the non-equality
// conjuncts re-checked per matched pair (nil when none).
type HashJoin struct {
	base
	L, R     Node
	Mode     JoinMode
	LCols    []int
	RCols    []int
	Residual algebra.Expr
}

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.L, j.R} }

// Label implements Node.
func (j *HashJoin) Label() string {
	name := "HashJoin"
	if j.Mode != JoinInner {
		name = fmt.Sprintf("HashJoin(%s)", j.Mode)
	}
	keys := make([]string, len(j.LCols))
	ls, rs := j.L.Schema(), j.R.Schema()
	for i := range j.LCols {
		keys[i] = ls.Attr(j.LCols[i]) + "=" + rs.Attr(j.RCols[i])
	}
	out := fmt.Sprintf("%s[%s]", name, strings.Join(keys, " ∧ "))
	if j.Residual != nil {
		out += fmt.Sprintf(" residual[%s]", j.Residual)
	}
	return out
}

// NLJoin joins by nested loops. A nil Pred is a cross product.
type NLJoin struct {
	base
	L, R Node
	Mode JoinMode
	Pred algebra.Expr
}

// Children implements Node.
func (j *NLJoin) Children() []Node { return []Node{j.L, j.R} }

// Label implements Node.
func (j *NLJoin) Label() string {
	name := "NLJoin"
	if j.Mode != JoinInner {
		name = fmt.Sprintf("NLJoin(%s)", j.Mode)
	}
	if j.Pred == nil {
		return name + "[cross]"
	}
	return fmt.Sprintf("%s[%s]", name, j.Pred)
}

// OuterJoin is the left outer join ⟕ with the paper's g:f(∅) defaults:
// unmatched left tuples are padded with Pad (NULLs except the Default
// attributes). Hash selects the algorithm; hash joins use LCols/RCols/
// Residual, nested-loop joins use Pred.
type OuterJoin struct {
	base
	L, R     Node
	Hash     bool
	LCols    []int
	RCols    []int
	Residual algebra.Expr
	Pred     algebra.Expr
	Pad      []types.Value
}

// Children implements Node.
func (j *OuterJoin) Children() []Node { return []Node{j.L, j.R} }

// Label implements Node.
func (j *OuterJoin) Label() string {
	if !j.Hash {
		return fmt.Sprintf("NLOuterJoin[%s]", j.Pred)
	}
	keys := make([]string, len(j.LCols))
	ls, rs := j.L.Schema(), j.R.Schema()
	for i := range j.LCols {
		keys[i] = ls.Attr(j.LCols[i]) + "=" + rs.Attr(j.RCols[i])
	}
	out := fmt.Sprintf("HashOuterJoin[%s]", strings.Join(keys, " ∧ "))
	if j.Residual != nil {
		out += fmt.Sprintf(" residual[%s]", j.Residual)
	}
	return out
}

// BypassJoin is ⋈±: consumed through Stream nodes, its positive stream
// is the ordinary join and its negative stream the complement pairs.
// The positive stream hashes on LCols/RCols when present (Residual per
// pair); the negative stream always enumerates.
type BypassJoin struct {
	base
	L, R     Node
	Pred     algebra.Expr
	LCols    []int
	RCols    []int
	Residual algebra.Expr
}

// Children implements Node.
func (j *BypassJoin) Children() []Node { return []Node{j.L, j.R} }

// Label implements Node.
func (j *BypassJoin) Label() string {
	algo := "nl"
	if len(j.LCols) > 0 {
		algo = "hash"
	}
	return fmt.Sprintf("BypassJoin(%s+)[%s]", algo, j.Pred)
}

// Group is the unary grouping operator Γ, hash-based with Identical key
// semantics. KeyCols are the grouping columns resolved in the child
// schema; Global groupings emit one row even on empty input.
type Group struct {
	base
	Child   Node
	KeyCols []int
	Attrs   []string
	Aggs    []algebra.AggItem
	Global  bool
}

// Children implements Node.
func (g *Group) Children() []Node { return []Node{g.Child} }

// Label implements Node.
func (g *Group) Label() string {
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = a.Label()
	}
	if g.Global {
		return fmt.Sprintf("HashGroup[global][%s]", strings.Join(aggs, ","))
	}
	return fmt.Sprintf("HashGroup[%v][%s]", g.Attrs, strings.Join(aggs, ","))
}

func binaryGroupAggs(aggs []algebra.AggItem) string {
	out := make([]string, len(aggs))
	for i, a := range aggs {
		out[i] = a.Label()
	}
	return strings.Join(out, ",")
}

// BinaryGroupHash is Γ² over a pure equality predicate: hash the right
// side on RCols, probe per left tuple, aggregate the matches.
type BinaryGroupHash struct {
	base
	L, R  Node
	LCols []int
	RCols []int
	Aggs  []algebra.AggItem
}

// Children implements Node.
func (b *BinaryGroupHash) Children() []Node { return []Node{b.L, b.R} }

// Label implements Node.
func (b *BinaryGroupHash) Label() string {
	keys := make([]string, len(b.LCols))
	ls, rs := b.L.Schema(), b.R.Schema()
	for i := range b.LCols {
		keys[i] = ls.Attr(b.LCols[i]) + "=" + rs.Attr(b.RCols[i])
	}
	return fmt.Sprintf("HashBinaryGroup[%s][%s]", strings.Join(keys, " ∧ "), binaryGroupAggs(b.Aggs))
}

// BinaryGroupSort is Γ² over a single column inequality with
// decomposable aggregates: sort the right side, precompute prefix and
// suffix aggregates, binary-search per left tuple (May & Moerkotte).
type BinaryGroupSort struct {
	base
	L, R Node
	LIdx int
	RIdx int
	Op   types.CompareOp
	Aggs []algebra.AggItem
}

// Children implements Node.
func (b *BinaryGroupSort) Children() []Node { return []Node{b.L, b.R} }

// Label implements Node.
func (b *BinaryGroupSort) Label() string {
	return fmt.Sprintf("SortBinaryGroup[%s %s %s][%s]",
		b.L.Schema().Attr(b.LIdx), b.Op, b.R.Schema().Attr(b.RIdx),
		binaryGroupAggs(b.Aggs))
}

// BinaryGroupNL is the Γ² fallback: nested-loop match enumeration for
// arbitrary predicates (nil means every pair matches).
type BinaryGroupNL struct {
	base
	L, R Node
	Pred algebra.Expr
	Aggs []algebra.AggItem
}

// Children implements Node.
func (b *BinaryGroupNL) Children() []Node { return []Node{b.L, b.R} }

// Label implements Node.
func (b *BinaryGroupNL) Label() string {
	return fmt.Sprintf("NLBinaryGroup[%s][%s]", b.Pred, binaryGroupAggs(b.Aggs))
}

// Union concatenates two inputs with equal schemas. Disjoint records
// the rewriter's disjointness claim (the two streams of one bypass
// operator); execution is concatenation either way.
type Union struct {
	base
	L, R     Node
	Disjoint bool
}

// Children implements Node.
func (u *Union) Children() []Node { return []Node{u.L, u.R} }

// Label implements Node.
func (u *Union) Label() string {
	if u.Disjoint {
		return "UnionDisjoint"
	}
	return "UnionAll"
}

// Distinct removes duplicate tuples (Identical semantics, first-seen
// order).
type Distinct struct {
	base
	Child Node
}

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Child} }

// Label implements Node.
func (d *Distinct) Label() string { return "Distinct" }

// Sort orders tuples by the resolved key columns (stable).
type Sort struct {
	base
	Child Node
	Cols  []int
	Desc  []bool
}

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Label implements Node.
func (s *Sort) Label() string {
	keys := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		keys[i] = s.Child.Schema().Attr(c)
		if s.Desc[i] {
			keys[i] += " DESC"
		}
	}
	return fmt.Sprintf("Sort[%s]", strings.Join(keys, ", "))
}

// Limit keeps the first N tuples.
type Limit struct {
	base
	Child Node
	N     int64
}

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// Label implements Node.
func (l *Limit) Label() string { return fmt.Sprintf("Limit[%d]", l.N) }
