package physical

import (
	"fmt"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/stats"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// Planner lowers logical algebra into physical plans. It memoizes per
// logical operator so DAG-shaped plans (shared bypass subplans) lower
// to DAG-shaped physical plans, and it eagerly lowers every nested
// subquery plan reachable through operator expressions so the executor
// never has to plan during evaluation (which would need locking under
// parallel execution).
//
// Algorithm selection rules, in order:
//
//	join, semijoin, antijoin, outerjoin, bypass-join positive stream:
//	    hash on the equality conjuncts when any exist (residual
//	    conjuncts re-checked per matched pair), nested loops otherwise.
//	binary grouping: hash when the predicate is pure equality; the
//	    sort-based prefix/suffix algorithm for a single column
//	    inequality with decomposable single-partial aggregates;
//	    nested loops otherwise.
//	σ over the negative stream of ⋈±: fused into the stream, with the
//	    filter's side-local conjuncts pre-reducing each join input.
//
// The rules are deliberately deterministic — hashing a materialized
// input is never slower than the quadratic scan at more than a handful
// of tuples, and stable choices keep golden plans byte-stable. The
// estimator supplies every node's cardinality annotation, which is what
// makes each choice auditable in EXPLAIN.
type Planner struct {
	est    *stats.Estimator
	memo   map[algebra.Op]Node
	nextID int
}

// NewPlanner returns a planner costing with the given estimator.
func NewPlanner(est *stats.Estimator) *Planner {
	return &Planner{est: est, memo: make(map[algebra.Op]Node)}
}

// NodeCount returns how many physical nodes this planner has created;
// node IDs are dense in [0, NodeCount), so it sizes metric slices.
func (p *Planner) NodeCount() int { return p.nextID }

// NodeFor returns the already-lowered physical node for a logical
// operator, if any. Subquery plans embedded in expressions are lowered
// as part of lowering their enclosing operator, so after Lower(root)
// this resolves every plan evaluation can reach.
func (p *Planner) NodeFor(op algebra.Op) (Node, bool) {
	n, ok := p.memo[op]
	return n, ok
}

// Lower produces the physical plan for a logical operator (memoized).
func (p *Planner) Lower(op algebra.Op) (Node, error) {
	if n, ok := p.memo[op]; ok {
		return n, nil
	}
	n, err := p.lower(op)
	if err != nil {
		return nil, err
	}
	// Path selection: compile columnar programs for nodes the
	// vectorized path can run (see vectorize.go).
	p.vectorize(n)
	n.setID(p.nextID)
	p.nextID++
	p.memo[op] = n
	// Pre-lower nested query blocks referenced by this operator's
	// expressions (scalar/quantified subqueries and their arguments).
	for _, e := range algebra.Exprs(op) {
		for _, sub := range algebra.Subplans(e) {
			if _, err := p.Lower(sub); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

func (p *Planner) lower(op algebra.Op) (Node, error) {
	b := base{logical: op, est: p.est.Cardinality(op)}
	switch x := op.(type) {
	case *algebra.Scan:
		return &Scan{base: b, Table: x.Table}, nil

	case *algebra.Select:
		// σ over the negative stream of ⋈± fuses into the stream
		// (Eqv. 5's σ_p(R ⋈− S)): the filter is applied during
		// complement enumeration instead of after materialization.
		if st, ok := x.Child.(*algebra.Stream); ok && !st.Positive {
			if bj, ok := st.Source.(*algebra.BypassJoin); ok {
				src, err := p.Lower(bj)
				if err != nil {
					return nil, err
				}
				fl, fr, rest := splitFused(x.Pred, bj.L.Schema(), bj.R.Schema())
				return &Stream{base: b, Source: src, Positive: false,
					FusedL: fl, FusedR: fr, FusedRest: rest}, nil
			}
		}
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		return &Filter{base: b, Child: child, Pred: x.Pred}, nil

	case *algebra.BypassSelect:
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		return &BypassFilter{base: b, Child: child, Pred: x.Pred}, nil

	case *algebra.Stream:
		src, err := p.Lower(x.Source)
		if err != nil {
			return nil, err
		}
		switch src.(type) {
		case *BypassFilter, *BypassJoin:
		default:
			return nil, fmt.Errorf("physical: Stream over non-bypass operator %T", x.Source)
		}
		return &Stream{base: b, Source: src, Positive: x.Positive}, nil

	case *algebra.Project:
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		cols, err := x.Child.Schema().Projection(x.Attrs)
		if err != nil {
			return nil, err
		}
		return &Project{base: b, Child: child, Cols: cols}, nil

	case *algebra.Rename:
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		return &Rename{base: b, Child: child}, nil

	case *algebra.MapOp:
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		return &Map{base: b, Child: child, Attr: x.Attr, Expr: x.Expr}, nil

	case *algebra.Number:
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		return &Number{base: b, Child: child, Attr: x.Attr}, nil

	case *algebra.CrossProduct:
		l, r, err := p.lower2(x.L, x.R)
		if err != nil {
			return nil, err
		}
		return &NLJoin{base: b, L: l, R: r, Mode: JoinInner}, nil

	case *algebra.Join:
		return p.lowerJoin(b, x.L, x.R, x.Pred, JoinInner)

	case *algebra.SemiJoin:
		return p.lowerJoin(b, x.L, x.R, x.Pred, JoinSemi)

	case *algebra.AntiJoin:
		return p.lowerJoin(b, x.L, x.R, x.Pred, JoinAnti)

	case *algebra.LeftOuterJoin:
		l, r, err := p.lower2(x.L, x.R)
		if err != nil {
			return nil, err
		}
		pad := make([]types.Value, x.R.Schema().Len())
		for _, d := range x.Defaults {
			if i := x.R.Schema().Index(d.Attr); i >= 0 {
				pad[i] = d.Val
			}
		}
		j := &OuterJoin{base: b, L: l, R: r, Pred: x.Pred, Pad: pad}
		keys, residual := splitEquiJoin(x.Pred, x.L.Schema(), x.R.Schema())
		if len(keys) > 0 {
			j.Hash = true
			j.LCols, j.RCols = keyCols(keys)
			j.Residual = andOrNil(residual)
		}
		return j, nil

	case *algebra.BypassJoin:
		l, r, err := p.lower2(x.L, x.R)
		if err != nil {
			return nil, err
		}
		j := &BypassJoin{base: b, L: l, R: r, Pred: x.Pred}
		keys, residual := splitEquiJoin(x.Pred, x.L.Schema(), x.R.Schema())
		if len(keys) > 0 {
			j.LCols, j.RCols = keyCols(keys)
			j.Residual = andOrNil(residual)
		}
		return j, nil

	case *algebra.GroupBy:
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		if len(x.Attrs) == 0 && !x.Global {
			return nil, fmt.Errorf("physical: grouping without attributes requires Global")
		}
		keyCols, err := x.Child.Schema().Projection(x.Attrs)
		if err != nil {
			return nil, err
		}
		return &Group{base: b, Child: child, KeyCols: keyCols, Attrs: x.Attrs,
			Aggs: x.Aggs, Global: x.Global}, nil

	case *algebra.BinaryGroup:
		l, r, err := p.lower2(x.L, x.R)
		if err != nil {
			return nil, err
		}
		keys, residual := splitEquiJoin(x.Pred, x.L.Schema(), x.R.Schema())
		if len(keys) > 0 && len(residual) == 0 {
			lc, rc := keyCols(keys)
			return &BinaryGroupHash{base: b, L: l, R: r, LCols: lc, RCols: rc, Aggs: x.Aggs}, nil
		}
		if lcol, rcol, cop, ok := thetaGroupable(x); ok {
			return &BinaryGroupSort{base: b, L: l, R: r,
				LIdx: x.L.Schema().Index(lcol), RIdx: x.R.Schema().Index(rcol),
				Op: cop, Aggs: x.Aggs}, nil
		}
		return &BinaryGroupNL{base: b, L: l, R: r, Pred: x.Pred, Aggs: x.Aggs}, nil

	case *algebra.UnionDisjoint:
		l, r, err := p.lower2(x.L, x.R)
		if err != nil {
			return nil, err
		}
		return &Union{base: b, L: l, R: r, Disjoint: true}, nil

	case *algebra.UnionAll:
		l, r, err := p.lower2(x.L, x.R)
		if err != nil {
			return nil, err
		}
		return &Union{base: b, L: l, R: r}, nil

	case *algebra.Distinct:
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		return &Distinct{base: b, Child: child}, nil

	case *algebra.Sort:
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		cols := make([]int, len(x.Keys))
		desc := make([]bool, len(x.Keys))
		for i, k := range x.Keys {
			c := x.Child.Schema().Index(k.Attr)
			if c < 0 {
				return nil, fmt.Errorf("physical: sort key %q not in %s", k.Attr, x.Child.Schema())
			}
			cols[i] = c
			desc[i] = k.Desc
		}
		return &Sort{base: b, Child: child, Cols: cols, Desc: desc}, nil

	case *algebra.Limit:
		child, err := p.Lower(x.Child)
		if err != nil {
			return nil, err
		}
		return &Limit{base: b, Child: child, N: x.N}, nil

	default:
		return nil, fmt.Errorf("physical: unsupported operator %T", op)
	}
}

func (p *Planner) lower2(l, r algebra.Op) (Node, Node, error) {
	ln, err := p.Lower(l)
	if err != nil {
		return nil, nil, err
	}
	rn, err := p.Lower(r)
	if err != nil {
		return nil, nil, err
	}
	return ln, rn, nil
}

// lowerJoin picks the join algorithm: hash on equality conjuncts when
// any exist, nested loops otherwise.
func (p *Planner) lowerJoin(b base, lop, rop algebra.Op, pred algebra.Expr, mode JoinMode) (Node, error) {
	l, r, err := p.lower2(lop, rop)
	if err != nil {
		return nil, err
	}
	keys, residual := splitEquiJoin(pred, lop.Schema(), rop.Schema())
	if len(keys) > 0 {
		lc, rc := keyCols(keys)
		return &HashJoin{base: b, L: l, R: r, Mode: mode,
			LCols: lc, RCols: rc, Residual: andOrNil(residual)}, nil
	}
	return &NLJoin{base: b, L: l, R: r, Mode: mode, Pred: pred}, nil
}

// equiKey is one equality conjunct usable for hashing: positions of the
// key columns in the left and right schemas.
type equiKey struct {
	l, r int
}

// splitEquiJoin extracts hashable equality conjuncts (L-column =
// R-column) from a join predicate, returning the keys and the residual
// conjuncts that must still be evaluated per matched pair.
func splitEquiJoin(pred algebra.Expr, ls, rs *storage.Schema) (keys []equiKey, residual []algebra.Expr) {
	if pred == nil {
		return nil, nil
	}
	for _, c := range algebra.SplitConjuncts(pred) {
		cmp, ok := c.(*algebra.CmpExpr)
		if ok && cmp.Op == types.EQ {
			lc, lok := cmp.L.(*algebra.ColRef)
			rc, rok := cmp.R.(*algebra.ColRef)
			if lok && rok {
				if li, ri := ls.Index(lc.Name), rs.Index(rc.Name); li >= 0 && ri >= 0 {
					keys = append(keys, equiKey{l: li, r: ri})
					continue
				}
				if li, ri := ls.Index(rc.Name), rs.Index(lc.Name); li >= 0 && ri >= 0 {
					keys = append(keys, equiKey{l: li, r: ri})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return keys, residual
}

func keyCols(keys []equiKey) (lcols, rcols []int) {
	lcols = make([]int, len(keys))
	rcols = make([]int, len(keys))
	for i, k := range keys {
		lcols[i] = k.l
		rcols[i] = k.r
	}
	return lcols, rcols
}

func andOrNil(conjuncts []algebra.Expr) algebra.Expr {
	if len(conjuncts) == 0 {
		return nil
	}
	return algebra.And(conjuncts...)
}

// splitFused partitions a fused negative-stream filter into conjuncts
// referencing only the left input, only the right input, and the rest,
// by schema membership. Side-local conjuncts pre-reduce the join inputs
// before complement enumeration.
func splitFused(fused algebra.Expr, ls, rs *storage.Schema) (l, r, rest algebra.Expr) {
	var lOnly, rOnly, other []algebra.Expr
	for _, c := range algebra.SplitConjuncts(fused) {
		cols := c.Columns(nil)
		inL, inR := true, true
		for _, col := range cols {
			if !ls.Has(col) {
				inL = false
			}
			if !rs.Has(col) {
				inR = false
			}
		}
		switch {
		case inL && len(cols) > 0:
			lOnly = append(lOnly, c)
		case inR && len(cols) > 0:
			rOnly = append(rOnly, c)
		default:
			other = append(other, c)
		}
	}
	return andOrNil(lOnly), andOrNil(rOnly), andOrNil(other)
}

// thetaGroupable reports whether a binary grouping can run sort-based:
// a single column-vs-column inequality and all aggregates decomposable
// with single-valued partials (no DISTINCT, no AVG — AVG decomposes
// into two partials and is rewritten upstream).
func thetaGroupable(bg *algebra.BinaryGroup) (lcol, rcol string, op types.CompareOp, ok bool) {
	cmp, isCmp := bg.Pred.(*algebra.CmpExpr)
	if !isCmp {
		return "", "", 0, false
	}
	switch cmp.Op {
	case types.LT, types.LE, types.GT, types.GE:
	default:
		return "", "", 0, false
	}
	l, lok := cmp.L.(*algebra.ColRef)
	r, rok := cmp.R.(*algebra.ColRef)
	if !lok || !rok {
		return "", "", 0, false
	}
	op = cmp.Op
	if bg.L.Schema().Has(l.Name) && bg.R.Schema().Has(r.Name) {
		lcol, rcol = l.Name, r.Name
	} else if bg.L.Schema().Has(r.Name) && bg.R.Schema().Has(l.Name) {
		lcol, rcol = r.Name, l.Name
		op = op.Flip()
	} else {
		return "", "", 0, false
	}
	for _, item := range bg.Aggs {
		if item.Spec.Distinct || item.Spec.Kind == agg.Avg {
			return "", "", 0, false
		}
	}
	return lcol, rcol, op, true
}
