package physical

import (
	"sort"

	"disqo/internal/algebra"
	"disqo/internal/vec"
)

// Path selection: after lowering each node the planner decides whether
// the executor's vectorized path can run it, compiling the node's
// expressions into columnar programs (internal/vec) when so. The
// decision is static and per node — ineligible nodes simply keep their
// compiled fields nil and the executor interprets them tuple-at-a-time,
// so a plan freely mixes both paths.
//
// Eligibility rules:
//
//	Scan, Project: always (pointer-shared rows / positional gather).
//	Filter, σ± (BypassFilter): the predicate compiles against the
//	    child schema — every column reference resolves locally (no
//	    outer correlation) and no subquery/quantifier appears.
//	Map: the expression compiles, same conditions.
//	HashJoin, ⋈± positive stream: equality keys with no residual
//	    predicate (the probe loop reads keys from columns; residuals
//	    would need per-pair environments).
//	Everything else: row path.
//
// Before compiling a predicate the planner orders every AND/OR operand
// list by the estimator's Slagle rank — conjuncts ascending by
// (selectivity−1)/cost, disjuncts by the dual (descending
// selectivity/cost) — the BestD discipline for disjunctive predicates:
// the vectorized OR evaluates its cheapest, highest-yield disjunct
// first and each later disjunct only over the rows still undecided.
// The reordering lives only in the compiled program; Pred and the plan
// labels are untouched, so EXPLAIN output and golden plans are stable.

// vectorize annotates one freshly lowered node with its compiled
// columnar programs. Compile failures are not errors — they mean "row
// path".
func (p *Planner) vectorize(n Node) {
	switch x := n.(type) {
	case *Filter:
		if pr, err := vec.CompilePred(p.orderPred(x.Pred, x.Child.Logical()), x.Child.Schema()); err == nil {
			x.VecPred = pr
		}
	case *BypassFilter:
		if pr, err := vec.CompilePred(p.orderPred(x.Pred, x.Child.Logical()), x.Child.Schema()); err == nil {
			x.VecPred = pr
		}
	case *Map:
		if sc, err := vec.CompileScalar(x.Expr, x.Child.Schema()); err == nil {
			x.VecExpr = sc
		}
	}
}

// orderPred returns pred with every AND/OR operand list re-ranked by
// estimated cost-effectiveness (stable, so equal ranks keep source
// order and plans stay deterministic). input is the logical operator
// producing the predicate's input, which grounds the estimator's
// selectivities.
func (p *Planner) orderPred(pred algebra.Expr, input algebra.Op) algebra.Expr {
	switch x := pred.(type) {
	case *algebra.AndExpr:
		parts := p.orderParts(algebra.SplitConjuncts(x), input)
		// Conjuncts ascending by Slagle rank (sel−1)/cost: the most
		// selective-per-unit-cost term first eliminates the most rows.
		sort.SliceStable(parts, func(i, j int) bool {
			return p.est.Rank(parts[i], input) < p.est.Rank(parts[j], input)
		})
		return algebra.And(parts...)
	case *algebra.OrExpr:
		parts := p.orderParts(algebra.SplitDisjuncts(x), input)
		// Disjuncts by the dual rank, descending selectivity/cost: the
		// term that decides the most rows per unit cost runs first and
		// shrinks the undecided set for the expensive tail (BestD).
		sort.SliceStable(parts, func(i, j int) bool {
			return p.disjunctGain(parts[i], input) > p.disjunctGain(parts[j], input)
		})
		return algebra.Or(parts...)
	case *algebra.NotExpr:
		return algebra.Not(p.orderPred(x.E, input))
	default:
		return pred
	}
}

func (p *Planner) orderParts(parts []algebra.Expr, input algebra.Op) []algebra.Expr {
	out := make([]algebra.Expr, len(parts))
	for i, e := range parts {
		out[i] = p.orderPred(e, input)
	}
	return out
}

// disjunctGain is the OR dual of the Slagle rank: rows decided (TRUE)
// per unit of predicate cost.
func (p *Planner) disjunctGain(e algebra.Expr, input algebra.Op) float64 {
	return p.est.Selectivity(e, input) / p.est.PredCost(e)
}

// Vectorizable reports whether the executor's vectorized path has a
// kernel for this node — the static half of the path decision, used by
// EXPLAIN to annotate per-node paths before anything runs.
func Vectorizable(n Node) bool {
	switch x := n.(type) {
	case *Scan, *Project:
		return true
	case *Filter:
		return x.VecPred != nil
	case *BypassFilter:
		return x.VecPred != nil
	case *Map:
		return x.VecExpr != nil
	case *Stream:
		switch src := x.Source.(type) {
		case *BypassFilter:
			return src.VecPred != nil
		case *BypassJoin:
			return x.Positive && len(src.LCols) > 0 && src.Residual == nil
		}
		return false
	case *HashJoin:
		return x.Residual == nil
	case *BypassJoin:
		return len(x.LCols) > 0 && x.Residual == nil
	default:
		return false
	}
}
