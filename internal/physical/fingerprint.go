package physical

import (
	"fmt"
	"hash/fnv"
	"io"
)

// Fingerprint returns a stable identity for a set of physical plans —
// the main plan first, then any subquery plans evaluated from operator
// expressions. Two invocations over structurally identical plans (same
// operators, same algorithm choices, same predicates and columns)
// produce the same fingerprint regardless of planner instance or node
// IDs, which is what lets the result cache key on "the plan the
// executor would run" rather than on SQL text: queries that normalize
// to the same physical plan share one cache entry.
//
// The hash covers each node's Label() — which renders the operator,
// its algorithm, predicates, key columns, and schema-derived attribute
// names — plus the DAG structure: shared subplans hash as back
// references, so a tree and a DAG that happen to print the same labels
// in pre-order still fingerprint differently.
func Fingerprint(roots ...Node) uint64 {
	h := fnv.New64a()
	ids := make(map[Node]int)
	var visit func(n Node)
	visit = func(n Node) {
		if id, ok := ids[n]; ok {
			fmt.Fprintf(h, "#%d;", id)
			return
		}
		ids[n] = len(ids)
		io.WriteString(h, n.Label())
		// Labels omit the outer-join padding defaults (g:f(∅)); fold
		// them in so plans differing only in defaults stay distinct.
		if oj, ok := n.(*OuterJoin); ok {
			for _, v := range oj.Pad {
				io.WriteString(h, "/")
				io.WriteString(h, v.String())
			}
		}
		io.WriteString(h, "(")
		for _, c := range n.Children() {
			visit(c)
		}
		io.WriteString(h, ")")
	}
	for _, r := range roots {
		visit(r)
		io.WriteString(h, "|")
	}
	return h.Sum64()
}
