package physical_test

import (
	"strings"
	"testing"

	"disqo/internal/catalog"
	"disqo/internal/physical"
	"disqo/internal/rewrite"
	"disqo/internal/sqlparser"
	"disqo/internal/stats"
	"disqo/internal/translate"
	"disqo/internal/types"
)

// Golden physical-plan tests for the paper's Fig. 2(a–d) and Fig. 3(a–b):
// the physical EXPLAIN rendering of Q1 and Q2 under the strategy each
// panel corresponds to. Where the rewrite package's goldens pin the
// logical shapes, these pin what the lowering pass makes of them — the
// chosen join/grouping algorithms, the fused streams, the DAG sharing
// markers and the cardinality annotations.

const (
	goldenQ1 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	         OR a4 > 1500`
	goldenQ2 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)`
)

// emptyRST builds the three RST tables with no rows: empty inputs keep
// the rank ordering fixed so the golden shapes are purely structural.
func emptyRST(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, spec := range []struct{ name, prefix string }{{"r", "a"}, {"s", "b"}, {"t", "c"}} {
		if _, err := cat.Create(spec.name, []catalog.Column{
			{Name: spec.prefix + "1", Type: types.KindInt},
			{Name: spec.prefix + "2", Type: types.KindInt},
			{Name: spec.prefix + "3", Type: types.KindInt},
			{Name: spec.prefix + "4", Type: types.KindInt},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// physGolden lowers a query (optionally rewritten under caps) and
// compares the physical EXPLAIN against the expected rendering.
func physGolden(t *testing.T, cat *catalog.Catalog, sql string, caps *rewrite.Caps, want string) {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := translate.New(cat).Translate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if caps != nil {
		plan, err = rewrite.New(cat, *caps).Rewrite(plan)
		if err != nil {
			t.Fatal(err)
		}
	}
	n, err := physical.NewPlanner(stats.New(cat)).Lower(plan)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(physical.Explain(n))
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("physical plan drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// Fig. 2(a): the canonical plan — one filter carrying the disjunction,
// the nested subquery evaluated per tuple (its plan is pre-lowered by
// the planner but only surfaces in the filter's label).
func TestGoldenPhysicalFig2aQ1Canonical(t *testing.T) {
	physGolden(t, emptyRST(t), goldenQ1, nil, `
Distinct  (est 0 rows)
  Project[r.a1, r.a2, r.a3, r.a4]  (est 0 rows)
    Filter[((r.a1 = COUNT(DISTINCT *){σ[(r.a2 = s.b2)](scan(s))}) OR (r.a4 > 1500))]  (est 0 rows)
      Scan(r)  (est 0 rows)
`)
}

// Fig. 2(b): the bypass cascade needs only the Conjunctive and Bypass
// caps — Eqv. 2/3 carry Q1 on their own, without Eqv. 4/5.
func TestGoldenPhysicalFig2bQ1BypassCaps(t *testing.T) {
	caps := rewrite.Caps{Conjunctive: true, Bypass: true}
	physGolden(t, emptyRST(t), goldenQ1, &caps, goldenPhysicalQ1Unnested)
}

// Fig. 2(c): the fully-capped plan. With empty tables the simple
// disjunct ranks first, so the bypass selection tests r.a4 > 1500 and
// only the negative stream pays for the unnested subquery — Eqv. 2's
// ordering. The outerjoin and unary grouping both hash (equality keys),
// and the σ± node is shared between the two streams (#1 marker).
func TestGoldenPhysicalFig2cQ1Unnested(t *testing.T) {
	all := rewrite.AllCaps()
	physGolden(t, emptyRST(t), goldenQ1, &all, goldenPhysicalQ1Unnested)
}

const goldenPhysicalQ1Unnested = `
Distinct  (est 0 rows)
  Project[r.a1, r.a2, r.a3, r.a4]  (est 0 rows)
    UnionDisjoint  (est 0 rows)
      Stream+  (est 0 rows)
        #1 Filter±[(r.a4 > 1500)]  (est 0 rows)
          Scan(r)  (est 0 rows)
      Project[r.a1, r.a2, r.a3, r.a4]  (est 0 rows)
        Filter[(r.a1 = g1)]  (est 0 rows)
          Project[r.a1, r.a2, r.a3, r.a4, g1]  (est 0 rows)
            HashOuterJoin[r.a2=s.b2]  (est 0 rows)
              Stream-  (est 0 rows)
                ↑ see #1 Filter±[(r.a4 > 1500)]
              HashGroup[[s.b2]][g1:COUNT(DISTINCT *)]  (est 1 rows)
                Scan(s)  (est 0 rows)
`

// Fig. 2(d): the same query under statistics that make r.a4 > 1500
// unselective (every a4 exceeds 1500), flipping the rank order: the
// subquery disjunct is unnested and bypassed first and the simple
// predicate filters only the negative stream — Eqv. 3's ordering.
func TestGoldenPhysicalFig2dQ1SubqueryFirst(t *testing.T) {
	cat := emptyRST(t)
	r, err := cat.Lookup("r")
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Lookup("s")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if err := r.Insert([]types.Value{
			types.NewInt(i), types.NewInt(i * 10), types.NewInt(i), types.NewInt(2000 + i)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert([]types.Value{
			types.NewInt(i), types.NewInt(i * 10), types.NewInt(i), types.NewInt(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	all := rewrite.AllCaps()
	physGolden(t, cat, goldenQ1, &all, `
Distinct  (est 4 rows)
  Project[r.a1, r.a2, r.a3, r.a4]  (est 4 rows)
    UnionDisjoint  (est 4 rows)
      Project[r.a1, r.a2, r.a3, r.a4]  (est 1 rows)
        Stream+  (est 1 rows)
          #1 Filter±[(r.a1 = g1)]  (est 4 rows)
            Project[r.a1, r.a2, r.a3, r.a4, g1]  (est 4 rows)
              HashOuterJoin[r.a2=s.b2]  (est 4 rows)
                Scan(r)  (est 4 rows)
                HashGroup[[s.b2]][g1:COUNT(DISTINCT *)]  (est 4 rows)
                  Scan(s)  (est 4 rows)
      Project[r.a1, r.a2, r.a3, r.a4]  (est 3 rows)
        Filter[(r.a4 > 1500)]  (est 3 rows)
          Stream-  (est 3 rows)
            ↑ see #1 Filter±[(r.a1 = g1)]
`)
}

// Fig. 3(a): canonical Q2 — the disjunctively correlated subquery stays
// inside the filter.
func TestGoldenPhysicalFig3aQ2Canonical(t *testing.T) {
	physGolden(t, emptyRST(t), goldenQ2, nil, `
Distinct  (est 0 rows)
  Project[r.a1, r.a2, r.a3, r.a4]  (est 0 rows)
    Filter[(r.a1 = COUNT(*){σ[((r.a2 = s.b2) OR (s.b4 > 1500))](scan(s))})]  (est 0 rows)
      Scan(r)  (est 0 rows)
`)
}

// Fig. 3(b): Q2 unnested via Eqv. 4 — the correlated conjunct grouped
// and outerjoined (both hash), the uncorrelated disjunct reduced to a
// +stream subquery combined per tuple by the χ (Map) operator. The
// grouping consumes the bypass filter's negative stream.
func TestGoldenPhysicalFig3bQ2Unnested(t *testing.T) {
	all := rewrite.AllCaps()
	physGolden(t, emptyRST(t), goldenQ2, &all, `
Distinct  (est 0 rows)
  Project[r.a1, r.a2, r.a3, r.a4]  (est 0 rows)
    Project[r.a1, r.a2, r.a3, r.a4]  (est 0 rows)
      Filter[(r.a1 = g2)]  (est 0 rows)
        Map[g2:count_O(g1, COUNT(*){+stream(σ±[(s.b4 > 1500)](scan(s)))})]  (est 0 rows)
          Project[r.a1, r.a2, r.a3, r.a4, g1]  (est 0 rows)
            HashOuterJoin[r.a2=s.b2]  (est 0 rows)
              Scan(r)  (est 0 rows)
              HashGroup[[s.b2]][g1:COUNT(*)]  (est 1 rows)
                Stream-  (est 0 rows)
                  Filter±[(s.b4 > 1500)]  (est 0 rows)
                    Scan(s)  (est 0 rows)
`)
}
