package physical_test

import (
	"strings"
	"testing"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/physical"
	"disqo/internal/stats"
	"disqo/internal/types"
)

// Unit tests for the lowering rules: every algorithm choice the planner
// makes (hash vs nested-loops joins, the three binary-grouping
// algorithms, fused negative-stream filters) is pinned here, together
// with the structural guarantees the executor relies on — DAG sharing,
// eager subquery pre-lowering, and cardinality annotations.

func testCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, spec := range []struct{ name, prefix string }{{"r", "a"}, {"s", "b"}} {
		tbl, err := cat.Create(spec.name, []catalog.Column{
			{Name: spec.prefix + "1", Type: types.KindInt},
			{Name: spec.prefix + "2", Type: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 3; i++ {
			if err := tbl.Insert([]types.Value{types.NewInt(i), types.NewInt(i * 10)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cat
}

func scanOf(t *testing.T, cat *catalog.Catalog, name string) *algebra.Scan {
	t.Helper()
	tbl, err := cat.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return algebra.NewScan(name, name, tbl.Rel.Schema)
}

func lower(t *testing.T, cat *catalog.Catalog, op algebra.Op) physical.Node {
	t.Helper()
	n, err := physical.NewPlanner(stats.New(cat)).Lower(op)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return n
}

func eq(l, r string) algebra.Expr {
	return algebra.Cmp(types.EQ, algebra.Col(l), algebra.Col(r))
}

func countAgg() []algebra.AggItem {
	return []algebra.AggItem{{Out: "g1", Spec: agg.Spec{Kind: agg.Count, Star: true}}}
}

func TestLowerJoinPicksHashOnEquiKeys(t *testing.T) {
	cat := testCat(t)
	j := lower(t, cat, algebra.NewJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), eq("r.a1", "s.b1")))
	h, ok := j.(*physical.HashJoin)
	if !ok {
		t.Fatalf("equi join lowered to %T, want *HashJoin", j)
	}
	if h.Mode != physical.JoinInner || len(h.LCols) != 1 || h.LCols[0] != 0 || h.RCols[0] != 0 {
		t.Errorf("HashJoin = mode %v keys %v/%v", h.Mode, h.LCols, h.RCols)
	}
	if h.Residual != nil {
		t.Errorf("pure equi join must have no residual, got %v", h.Residual)
	}
}

func TestLowerJoinKeepsResidualConjuncts(t *testing.T) {
	cat := testCat(t)
	pred := algebra.And(eq("r.a1", "s.b1"), algebra.Cmp(types.LT, algebra.Col("r.a2"), algebra.Col("s.b2")))
	j := lower(t, cat, algebra.NewJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), pred))
	h, ok := j.(*physical.HashJoin)
	if !ok {
		t.Fatalf("mixed predicate lowered to %T, want *HashJoin", j)
	}
	if h.Residual == nil {
		t.Error("inequality conjunct must survive as residual")
	}
}

func TestLowerJoinFallsBackToNestedLoops(t *testing.T) {
	cat := testCat(t)
	pred := algebra.Cmp(types.LT, algebra.Col("r.a1"), algebra.Col("s.b1"))
	j := lower(t, cat, algebra.NewJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), pred))
	nl, ok := j.(*physical.NLJoin)
	if !ok {
		t.Fatalf("inequality join lowered to %T, want *NLJoin", j)
	}
	if nl.Pred == nil || nl.Mode != physical.JoinInner {
		t.Errorf("NLJoin = pred %v mode %v", nl.Pred, nl.Mode)
	}
}

func TestLowerSemiAndAntiJoinModes(t *testing.T) {
	cat := testCat(t)
	semi := lower(t, cat, algebra.NewSemiJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), eq("r.a1", "s.b1")))
	if h, ok := semi.(*physical.HashJoin); !ok || h.Mode != physical.JoinSemi {
		t.Errorf("semijoin lowered to %T mode %v, want HashJoin/JoinSemi", semi, semi)
	}
	anti := lower(t, cat, algebra.NewAntiJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"),
		algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.Col("s.b1"))))
	if nl, ok := anti.(*physical.NLJoin); !ok || nl.Mode != physical.JoinAnti {
		t.Errorf("antijoin lowered to %T, want NLJoin/JoinAnti", anti)
	}
}

func TestLowerCrossProductIsPredlessNLJoin(t *testing.T) {
	cat := testCat(t)
	c := lower(t, cat, algebra.NewCross(scanOf(t, cat, "r"), scanOf(t, cat, "s")))
	nl, ok := c.(*physical.NLJoin)
	if !ok {
		t.Fatalf("cross product lowered to %T, want *NLJoin", c)
	}
	if nl.Pred != nil {
		t.Errorf("cross product must carry no predicate, got %v", nl.Pred)
	}
}

func TestLowerBinaryGroupHashOnPureEquality(t *testing.T) {
	cat := testCat(t)
	bg := lower(t, cat, algebra.NewBinaryGroup(
		scanOf(t, cat, "r"), scanOf(t, cat, "s"), eq("r.a1", "s.b1"), countAgg()))
	if _, ok := bg.(*physical.BinaryGroupHash); !ok {
		t.Fatalf("equality binary group lowered to %T, want *BinaryGroupHash", bg)
	}
}

func TestLowerBinaryGroupSortOnInequality(t *testing.T) {
	cat := testCat(t)
	pred := algebra.Cmp(types.LT, algebra.Col("r.a2"), algebra.Col("s.b2"))
	bg := lower(t, cat, algebra.NewBinaryGroup(
		scanOf(t, cat, "r"), scanOf(t, cat, "s"), pred, countAgg()))
	s, ok := bg.(*physical.BinaryGroupSort)
	if !ok {
		t.Fatalf("inequality binary group lowered to %T, want *BinaryGroupSort", bg)
	}
	if s.LIdx != 1 || s.RIdx != 1 || s.Op != types.LT {
		t.Errorf("BinaryGroupSort = L[%d] %v R[%d]", s.LIdx, s.Op, s.RIdx)
	}
}

func TestLowerBinaryGroupSortFlipsSwappedOperands(t *testing.T) {
	cat := testCat(t)
	// b2 < a2 references the right column on the comparison's left, so
	// the planner must swap operands and flip the comparison to a2 > b2.
	pred := algebra.Cmp(types.LT, algebra.Col("s.b2"), algebra.Col("r.a2"))
	bg := lower(t, cat, algebra.NewBinaryGroup(
		scanOf(t, cat, "r"), scanOf(t, cat, "s"), pred, countAgg()))
	s, ok := bg.(*physical.BinaryGroupSort)
	if !ok {
		t.Fatalf("flipped inequality lowered to %T, want *BinaryGroupSort", bg)
	}
	if s.LIdx != 1 || s.RIdx != 1 || s.Op != types.GT {
		t.Errorf("BinaryGroupSort = L[%d] %v R[%d], want L[1] > R[1]", s.LIdx, s.Op, s.RIdx)
	}
}

func TestLowerBinaryGroupNLForComplexPredicates(t *testing.T) {
	cat := testCat(t)
	// A conjunction with a constant term is no longer a bare
	// column-vs-column inequality, so neither hash nor sort applies.
	pred := algebra.And(
		algebra.Cmp(types.LT, algebra.Col("r.a2"), algebra.Col("s.b2")),
		algebra.Const(types.NewBool(true)))
	bg := lower(t, cat, algebra.NewBinaryGroup(
		scanOf(t, cat, "r"), scanOf(t, cat, "s"), pred, countAgg()))
	if _, ok := bg.(*physical.BinaryGroupNL); !ok {
		t.Fatalf("complex binary group lowered to %T, want *BinaryGroupNL", bg)
	}
}

func TestLowerBinaryGroupNLForDistinctAggregates(t *testing.T) {
	cat := testCat(t)
	// DISTINCT partials are not single-valued, so the sort-based
	// algorithm's prefix/suffix decomposition does not apply.
	aggs := []algebra.AggItem{{Out: "g1", Spec: agg.Spec{Kind: agg.Count, Star: true, Distinct: true}}}
	pred := algebra.Cmp(types.LT, algebra.Col("r.a2"), algebra.Col("s.b2"))
	bg := lower(t, cat, algebra.NewBinaryGroup(
		scanOf(t, cat, "r"), scanOf(t, cat, "s"), pred, aggs))
	if _, ok := bg.(*physical.BinaryGroupNL); !ok {
		t.Fatalf("DISTINCT binary group lowered to %T, want *BinaryGroupNL", bg)
	}
}

func TestLowerFusedNegativeStreamFilter(t *testing.T) {
	cat := testCat(t)
	bj := algebra.NewBypassJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), eq("r.a1", "s.b1"))
	pred := algebra.And(
		algebra.Cmp(types.GT, algebra.Col("r.a2"), algebra.ConstInt(5)),
		algebra.Cmp(types.GT, algebra.Col("s.b2"), algebra.ConstInt(7)),
		algebra.Cmp(types.NE, algebra.Col("r.a2"), algebra.Col("s.b2")))
	n := lower(t, cat, algebra.NewSelect(algebra.Neg(bj), pred))
	st, ok := n.(*physical.Stream)
	if !ok {
		t.Fatalf("σ over −stream lowered to %T, want fused *Stream", n)
	}
	if st.Positive {
		t.Error("fused stream must stay negative")
	}
	if st.FusedL == nil || st.FusedR == nil || st.FusedRest == nil {
		t.Errorf("fused split = L:%v R:%v rest:%v, want all three populated",
			st.FusedL, st.FusedR, st.FusedRest)
	}
	if _, ok := st.Source.(*physical.BypassJoin); !ok {
		t.Errorf("fused stream source is %T, want *BypassJoin", st.Source)
	}
}

func TestLowerPreservesDAGSharing(t *testing.T) {
	cat := testCat(t)
	shared := algebra.NewBypassSelect(scanOf(t, cat, "r"),
		algebra.Cmp(types.GT, algebra.Col("r.a2"), algebra.ConstInt(10)))
	root := algebra.NewUnionDisjoint(algebra.Pos(shared), algebra.Neg(shared))
	n := lower(t, cat, root)
	u, ok := n.(*physical.Union)
	if !ok {
		t.Fatalf("lowered to %T, want *Union", n)
	}
	pos, ok := u.L.(*physical.Stream)
	if !ok {
		t.Fatalf("union left is %T, want *Stream", u.L)
	}
	neg, ok := u.R.(*physical.Stream)
	if !ok {
		t.Fatalf("union right is %T, want *Stream", u.R)
	}
	if pos.Source != neg.Source {
		t.Error("both streams must share one physical bypass node (DAG, not tree)")
	}
}

func TestLowerPreLowersSubqueryPlans(t *testing.T) {
	cat := testCat(t)
	sub := algebra.NewGroupBy(scanOf(t, cat, "s"), nil,
		[]algebra.AggItem{{Out: "c", Spec: agg.Spec{Kind: agg.Count, Star: true}}}, true)
	pred := algebra.Cmp(types.EQ, algebra.Col("r.a1"),
		&algebra.ScalarSubquery{Agg: agg.Spec{Kind: agg.Count, Star: true}, Plan: sub})
	p := physical.NewPlanner(stats.New(cat))
	if _, err := p.Lower(algebra.NewSelect(scanOf(t, cat, "r"), pred)); err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if _, ok := p.NodeFor(sub); !ok {
		t.Error("subquery plan must be pre-lowered with its enclosing operator")
	}
}

func TestLowerAnnotatesCardinalities(t *testing.T) {
	cat := testCat(t)
	n := lower(t, cat, algebra.NewJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), eq("r.a1", "s.b1")))
	physical.Walk(n, func(m physical.Node) bool {
		if m.EstRows() < 0 {
			t.Errorf("%s: negative cardinality estimate %g", m.Label(), m.EstRows())
		}
		return true
	})
	// The scans carry the catalog's exact counts.
	scans := 0
	physical.Walk(n, func(m physical.Node) bool {
		if sc, ok := m.(*physical.Scan); ok {
			scans++
			if sc.EstRows() != 3 {
				t.Errorf("scan(%s) est %g rows, want 3", sc.Table, sc.EstRows())
			}
		}
		return true
	})
	if scans != 2 {
		t.Errorf("walked %d scans, want 2", scans)
	}
}

func TestLowerMemoizesPerOperator(t *testing.T) {
	cat := testCat(t)
	p := physical.NewPlanner(stats.New(cat))
	op := algebra.NewSelect(scanOf(t, cat, "r"),
		algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.ConstInt(0)))
	a, err := p.Lower(op)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Lower(op)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("re-lowering the same logical op must return the memoized node")
	}
}

func TestLowerRejectsStreamOverNonBypass(t *testing.T) {
	cat := testCat(t)
	_, err := physical.NewPlanner(stats.New(cat)).Lower(algebra.Pos(scanOf(t, cat, "r")))
	if err == nil || !strings.Contains(err.Error(), "non-bypass") {
		t.Errorf("err = %v, want stream-over-non-bypass rejection", err)
	}
}
