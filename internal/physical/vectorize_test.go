package physical_test

import (
	"testing"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/physical"
	"disqo/internal/types"
)

// Path-selection tests: which lowered nodes carry compiled columnar
// programs, which stay on the row path, and how BestD reorders the
// compiled disjuncts without touching the plan's printed predicate.

func TestVectorizeFilterCompiles(t *testing.T) {
	cat := testCat(t)
	pred := algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.ConstInt(1))
	n := lower(t, cat, algebra.NewSelect(scanOf(t, cat, "r"), pred))
	f, ok := n.(*physical.Filter)
	if !ok {
		t.Fatalf("lowered to %T, want *Filter", n)
	}
	if f.VecPred == nil {
		t.Fatal("simple comparison did not compile for the vectorized path")
	}
	if !physical.Vectorizable(f) {
		t.Error("Vectorizable(Filter with VecPred) = false")
	}
	if !physical.Vectorizable(f.Child) {
		t.Error("Vectorizable(Scan) = false")
	}
	if f.Pred != pred {
		t.Error("vectorization replaced the node's Pred; plan text must not change")
	}
}

func TestVectorizeSubqueryStaysRowPath(t *testing.T) {
	cat := testCat(t)
	sub := algebra.Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil, scanOf(t, cat, "s"))
	pred := algebra.Cmp(types.EQ, algebra.Col("r.a1"), sub)
	n := lower(t, cat, algebra.NewSelect(scanOf(t, cat, "r"), pred))
	f, ok := n.(*physical.Filter)
	if !ok {
		t.Fatalf("lowered to %T, want *Filter", n)
	}
	if f.VecPred != nil {
		t.Fatal("subquery predicate compiled; it must stay tuple-at-a-time")
	}
	if physical.Vectorizable(f) {
		t.Error("Vectorizable must be false without a compiled predicate")
	}
}

func TestVectorizeBypassFilter(t *testing.T) {
	cat := testCat(t)
	pred := algebra.Cmp(types.GT, algebra.Col("r.a1"), algebra.ConstInt(0))
	n := lower(t, cat, algebra.NewBypassSelect(scanOf(t, cat, "r"), pred))
	bf, ok := n.(*physical.BypassFilter)
	if !ok {
		t.Fatalf("lowered to %T, want *BypassFilter", n)
	}
	if bf.VecPred == nil {
		t.Fatal("σ± with a simple predicate did not compile")
	}
}

func TestVectorizeMap(t *testing.T) {
	cat := testCat(t)
	n := lower(t, cat, algebra.NewMap(scanOf(t, cat, "r"), "m",
		algebra.Arith(types.Add, algebra.Col("r.a1"), algebra.Col("r.a2"))))
	m, ok := n.(*physical.Map)
	if !ok {
		t.Fatalf("lowered to %T, want *Map", n)
	}
	if m.VecExpr == nil {
		t.Fatal("arithmetic map expression did not compile")
	}
	if !physical.Vectorizable(m) {
		t.Error("Vectorizable(Map with VecExpr) = false")
	}
}

func TestVectorizeHashJoinResidual(t *testing.T) {
	cat := testCat(t)
	pure := lower(t, cat, algebra.NewJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), eq("r.a1", "s.b1")))
	if !physical.Vectorizable(pure) {
		t.Error("residual-free hash join must be vectorizable")
	}
	mixed := lower(t, cat, algebra.NewJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"),
		algebra.And(eq("r.a1", "s.b1"), algebra.Cmp(types.LT, algebra.Col("r.a2"), algebra.Col("s.b2")))))
	h, ok := mixed.(*physical.HashJoin)
	if !ok {
		t.Fatalf("lowered to %T, want *HashJoin", mixed)
	}
	if h.Residual == nil {
		t.Skip("planner fused the residual; nothing to assert")
	}
	if physical.Vectorizable(h) {
		t.Error("hash join with a residual predicate must stay on the row path")
	}
}

// TestVectorizeBestDOrdering: the compiled program evaluates disjuncts
// by descending selectivity/cost — the cheap high-yield comparison
// before the expensive arithmetic one — while the node's printed Pred
// keeps source order. r.a1 spans 0..2, so a1 >= 0 decides every row at
// comparison cost while the arithmetic disjunct pays an extra Arith
// per row for default selectivity.
func TestVectorizeBestDOrdering(t *testing.T) {
	cat := testCat(t)
	expensive := algebra.Cmp(types.GT,
		algebra.Arith(types.Add, algebra.Col("r.a1"), algebra.Col("r.a2")), algebra.ConstInt(5))
	cheap := algebra.Cmp(types.GE, algebra.Col("r.a1"), algebra.ConstInt(0))
	pred := algebra.Or(expensive, cheap)
	n := lower(t, cat, algebra.NewSelect(scanOf(t, cat, "r"), pred))
	f := n.(*physical.Filter)
	if f.VecPred == nil {
		t.Fatal("disjunction did not compile")
	}
	compiled, ok := f.VecPred.Expr().(*algebra.OrExpr)
	if !ok {
		t.Fatalf("compiled source is %T, want *OrExpr", f.VecPred.Expr())
	}
	parts := algebra.SplitDisjuncts(compiled)
	if len(parts) != 2 {
		t.Fatalf("%d disjuncts, want 2", len(parts))
	}
	if parts[0] != cheap || parts[1] != expensive {
		t.Errorf("BestD order = [%s, %s], want cheap disjunct first", parts[0], parts[1])
	}
	if f.Pred != pred {
		t.Error("reordering leaked into the node's Pred")
	}
}
