package physical

import (
	"fmt"
	"strings"
)

// Explain renders a physical plan as an indented tree with estimated
// cardinalities. Nodes reached through more than one path (the DAG
// sharing bypass plans introduce) are printed once in full and
// subsequently referenced as "↑ see #n", mirroring the logical
// algebra's EXPLAIN so the two printouts line up.
func Explain(root Node) string {
	counts := map[Node]int{}
	countRefs(root, counts)
	var b strings.Builder
	ids := map[Node]int{}
	nextID := 1
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if id, seen := ids[n]; seen {
			fmt.Fprintf(&b, "%s↑ see #%d %s\n", indent, id, n.Label())
			return
		}
		label := fmt.Sprintf("%s  (est %.0f rows)", n.Label(), n.EstRows())
		if counts[n] > 1 {
			ids[n] = nextID
			fmt.Fprintf(&b, "%s#%d %s\n", indent, nextID, label)
			nextID++
		} else {
			fmt.Fprintf(&b, "%s%s\n", indent, label)
		}
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// ExplainAnnotated renders a physical plan like Explain, but the
// per-node annotation comes from the callback instead of the planner's
// estimate — EXPLAIN ANALYZE passes actual row counts and timings.
// Shared DAG nodes are annotated at their defining occurrence only.
func ExplainAnnotated(root Node, annot func(Node) string) string {
	counts := map[Node]int{}
	countRefs(root, counts)
	var b strings.Builder
	ids := map[Node]int{}
	nextID := 1
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if id, seen := ids[n]; seen {
			fmt.Fprintf(&b, "%s↑ see #%d %s\n", indent, id, n.Label())
			return
		}
		label := n.Label()
		if a := annot(n); a != "" {
			label += "  " + a
		}
		if counts[n] > 1 {
			ids[n] = nextID
			fmt.Fprintf(&b, "%s#%d %s\n", indent, nextID, label)
			nextID++
		} else {
			fmt.Fprintf(&b, "%s%s\n", indent, label)
		}
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

func countRefs(n Node, counts map[Node]int) {
	counts[n]++
	if counts[n] > 1 {
		return
	}
	for _, c := range n.Children() {
		countRefs(c, counts)
	}
}

// Walk visits every node of the plan exactly once (pre-order,
// DAG-aware) and calls fn; returning false prunes the node's children.
func Walk(root Node, fn func(Node) bool) {
	seen := map[Node]bool{}
	var rec func(Node)
	rec = func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if !fn(n) {
			return
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(root)
}

// CountNodes returns the number of distinct nodes in the DAG.
func CountNodes(root Node) int {
	n := 0
	Walk(root, func(Node) bool { n++; return true })
	return n
}
