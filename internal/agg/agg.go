// Package agg implements SQL aggregate functions — COUNT, SUM, AVG, MIN,
// MAX, each with an optional DISTINCT modifier — together with the
// *decomposability* structure the paper's Equivalence 4 requires:
// f(X) = fO(fI(Y), fI(Z)) for any disjoint split X = Y ∪ Z.
//
// COUNT/SUM/AVG/MIN/MAX are decomposable (AVG via a (SUM, COUNT) pair);
// the DISTINCT variants of COUNT, SUM, and AVG are not (paper §3.3,
// footnote 1) and force Equivalence 5.
package agg

import (
	"fmt"
	"strings"

	"disqo/internal/types"
)

// Kind enumerates the aggregate functions.
type Kind uint8

const (
	// Count is COUNT(expr) / COUNT(*) (with Spec.Star).
	Count Kind = iota
	// Sum is SUM(expr).
	Sum
	// Avg is AVG(expr).
	Avg
	// Min is MIN(expr).
	Min
	// Max is MAX(expr).
	Max
)

// String renders the SQL function name.
func (k Kind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AGG(%d)", uint8(k))
	}
}

// Spec describes one aggregate call site: the function, whether the
// argument is DISTINCT, and whether the argument is * (the whole tuple).
type Spec struct {
	Kind     Kind
	Distinct bool
	Star     bool
}

// String renders e.g. "COUNT(DISTINCT *)".
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Kind.String())
	b.WriteByte('(')
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteByte('*')
	} else {
		b.WriteByte('.')
	}
	b.WriteByte(')')
	return b.String()
}

// Validate rejects spec combinations SQL forbids.
func (s Spec) Validate() error {
	if s.Star && s.Kind != Count {
		return fmt.Errorf("agg: %s(*) is not valid SQL; only COUNT takes *", s.Kind)
	}
	return nil
}

// Decomposable reports whether the aggregate satisfies the paper's
// decomposability definition. MIN(DISTINCT)/MAX(DISTINCT) are trivially
// decomposable because DISTINCT does not change their value.
func (s Spec) Decomposable() bool {
	if !s.Distinct {
		return true
	}
	return s.Kind == Min || s.Kind == Max
}

// Empty returns f(∅) — the default value the outerjoin g:f(∅) assigns to
// empty groups (the paper's count-bug fix): 0 for COUNT, NULL otherwise.
func (s Spec) Empty() types.Value {
	if s.Kind == Count {
		return types.NewInt(0)
	}
	return types.Null()
}

// Partials returns the inner aggregates fI of the decomposition. All
// functions decompose into themselves except AVG, which decomposes into
// (SUM, COUNT) per the paper:
//
//	avg(X) = (sumI(Y)+sumI(Z)) / (countI(Y)+countI(Z)).
//
// It errors for non-decomposable specs.
func (s Spec) Partials() ([]Spec, error) {
	if !s.Decomposable() {
		return nil, fmt.Errorf("agg: %s is not decomposable", s)
	}
	// MIN/MAX DISTINCT ≡ MIN/MAX; drop the modifier in the partials.
	base := Spec{Kind: s.Kind, Star: s.Star}
	if s.Kind == Avg {
		return []Spec{{Kind: Sum}, {Kind: Count}}, nil
	}
	return []Spec{base}, nil
}

// Combine is fO restricted to two partial values of the same non-AVG
// kind, with NULL acting as the identity (an empty part contributes
// nothing): count: y+z; sum: null-skipping +; min/max: null-skipping
// min/max. Both-NULL yields NULL. AVG has no single-value combiner — its
// two partials are combined arithmetically by the caller.
func Combine(k Kind, y, z types.Value) (types.Value, error) {
	if k == Avg {
		return types.Null(), fmt.Errorf("agg: AVG partials must be combined as SUM/COUNT pairs")
	}
	if y.IsNull() {
		return z, nil
	}
	if z.IsNull() {
		return y, nil
	}
	switch k {
	case Count, Sum:
		return types.Arith(types.Add, y, z)
	case Min:
		if c, ok := types.Compare(y, z); ok && c <= 0 {
			return y, nil
		}
		return z, nil
	default: // Max
		if c, ok := types.Compare(y, z); ok && c >= 0 {
			return y, nil
		}
		return z, nil
	}
}

// Acc accumulates one aggregate over a stream of argument tuples.
// For Star specs the argument is the whole input tuple; otherwise it is
// the single evaluated argument expression (a one-element slice).
type Acc struct {
	spec  Spec
	count int64
	sum   float64
	sumI  int64
	isInt bool
	first bool
	best  types.Value // MIN/MAX running value
	seen  map[uint64][][]types.Value
	// order logs DISTINCT insertions in arrival order so Merge can
	// replay them deterministically (float sums are order-sensitive).
	order [][]types.Value
}

// NewAcc returns a fresh accumulator for the spec.
func NewAcc(spec Spec) *Acc {
	a := &Acc{spec: spec, isInt: true, first: true}
	if spec.Distinct {
		a.seen = make(map[uint64][][]types.Value)
	}
	return a
}

// Add feeds one argument tuple. Per SQL, NULL arguments are skipped for
// every function except COUNT(*) (whose "argument" is the row itself and
// is never NULL as a whole — a tuple of all NULLs still counts).
func (a *Acc) Add(args []types.Value) {
	if !a.spec.Star {
		if len(args) != 1 {
			panic(fmt.Sprintf("agg: %s expects 1 argument, got %d", a.spec, len(args)))
		}
		if args[0].IsNull() {
			return
		}
	}
	if a.spec.Distinct && a.dup(args) {
		return
	}
	a.count++
	if a.spec.Star {
		return
	}
	v := args[0]
	switch a.spec.Kind {
	case Count:
		// counting is enough
	case Sum, Avg:
		if i, ok := v.IntOk(); ok && a.isInt {
			a.sumI += i
		} else {
			if a.isInt {
				a.sum = float64(a.sumI)
				a.isInt = false
			}
			f, _ := v.AsFloat()
			a.sum += f
		}
	case Min:
		if a.first {
			a.best = v
		} else if c, ok := types.Compare(v, a.best); ok && c < 0 {
			a.best = v
		}
		a.first = false
	case Max:
		if a.first {
			a.best = v
		} else if c, ok := types.Compare(v, a.best); ok && c > 0 {
			a.best = v
		}
		a.first = false
	}
}

func (a *Acc) dup(args []types.Value) bool {
	h := types.HashTuple(args)
	for _, prev := range a.seen[h] {
		if types.TuplesIdentical(prev, args) {
			return true
		}
	}
	key := append([]types.Value(nil), args...)
	a.seen[h] = append(a.seen[h], key)
	a.order = append(a.order, key)
	return false
}

// Merge folds another accumulator of the same spec into this one, as if
// o's inputs had been Added after a's. The executor's morsel-parallel
// grouping merges per-morsel partials in morsel order, so the fold
// order — and therefore any float rounding — is independent of the
// worker count. DISTINCT accumulators replay o's insertion log through
// Add; the rest combine their counters directly.
func (a *Acc) Merge(o *Acc) {
	if a.spec != o.spec {
		panic(fmt.Sprintf("agg: merging %s into %s", o.spec, a.spec))
	}
	if a.spec.Distinct {
		for _, args := range o.order {
			a.Add(args)
		}
		return
	}
	a.count += o.count
	switch a.spec.Kind {
	case Sum, Avg:
		if a.isInt && !o.isInt {
			a.sum = float64(a.sumI)
			a.isInt = false
		}
		if a.isInt {
			a.sumI += o.sumI
		} else if o.isInt {
			a.sum += float64(o.sumI)
		} else {
			a.sum += o.sum
		}
	case Min:
		if !o.first {
			if a.first {
				a.best = o.best
				a.first = false
			} else if c, ok := types.Compare(o.best, a.best); ok && c < 0 {
				a.best = o.best
			}
		}
	case Max:
		if !o.first {
			if a.first {
				a.best = o.best
				a.first = false
			} else if c, ok := types.Compare(o.best, a.best); ok && c > 0 {
				a.best = o.best
			}
		}
	}
}

// Result returns the aggregate value; on an empty (post-NULL-filtering)
// input it returns f(∅): 0 for COUNT, NULL otherwise.
func (a *Acc) Result() types.Value {
	switch a.spec.Kind {
	case Count:
		return types.NewInt(a.count)
	case Sum:
		if a.count == 0 {
			return types.Null()
		}
		if a.isInt {
			return types.NewInt(a.sumI)
		}
		return types.NewFloat(a.sum)
	case Avg:
		if a.count == 0 {
			return types.Null()
		}
		total := a.sum
		if a.isInt {
			total = float64(a.sumI)
		}
		return types.NewFloat(total / float64(a.count))
	default: // Min, Max
		if a.first {
			return types.Null()
		}
		return a.best
	}
}
