package agg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"disqo/internal/types"
)

func feed(spec Spec, vals ...types.Value) types.Value {
	a := NewAcc(spec)
	for _, v := range vals {
		a.Add([]types.Value{v})
	}
	return a.Result()
}

func TestKindAndSpecStrings(t *testing.T) {
	if Count.String() != "COUNT" || Avg.String() != "AVG" {
		t.Error("Kind.String wrong")
	}
	s := Spec{Kind: Count, Distinct: true, Star: true}
	if s.String() != "COUNT(DISTINCT *)" {
		t.Errorf("Spec.String = %q", s.String())
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{Kind: Sum, Star: true}).Validate(); err == nil {
		t.Error("SUM(*) must be invalid")
	}
	if err := (Spec{Kind: Count, Star: true}).Validate(); err != nil {
		t.Errorf("COUNT(*) must validate: %v", err)
	}
}

func TestDecomposability(t *testing.T) {
	cases := []struct {
		s    Spec
		want bool
	}{
		{Spec{Kind: Count}, true},
		{Spec{Kind: Sum}, true},
		{Spec{Kind: Avg}, true},
		{Spec{Kind: Min}, true},
		{Spec{Kind: Max}, true},
		{Spec{Kind: Count, Distinct: true}, false},
		{Spec{Kind: Sum, Distinct: true}, false},
		{Spec{Kind: Avg, Distinct: true}, false},
		{Spec{Kind: Min, Distinct: true}, true},
		{Spec{Kind: Max, Distinct: true}, true},
	}
	for _, c := range cases {
		if got := c.s.Decomposable(); got != c.want {
			t.Errorf("%s.Decomposable() = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPartials(t *testing.T) {
	ps, err := (Spec{Kind: Avg}).Partials()
	if err != nil || len(ps) != 2 || ps[0].Kind != Sum || ps[1].Kind != Count {
		t.Errorf("AVG partials = %v (%v)", ps, err)
	}
	ps, err = (Spec{Kind: Min, Distinct: true}).Partials()
	if err != nil || len(ps) != 1 || ps[0].Kind != Min || ps[0].Distinct {
		t.Errorf("MIN(DISTINCT) partials = %v (%v)", ps, err)
	}
	if _, err := (Spec{Kind: Count, Distinct: true}).Partials(); err == nil {
		t.Error("COUNT(DISTINCT) must refuse to decompose")
	}
}

func TestEmptyDefaults(t *testing.T) {
	if !types.Identical((Spec{Kind: Count}).Empty(), types.NewInt(0)) {
		t.Error("COUNT f(∅) must be 0")
	}
	for _, k := range []Kind{Sum, Avg, Min, Max} {
		if !(Spec{Kind: k}).Empty().IsNull() {
			t.Errorf("%s f(∅) must be NULL", k)
		}
	}
}

func TestAccBasics(t *testing.T) {
	i := types.NewInt
	if got := feed(Spec{Kind: Count}, i(1), types.Null(), i(3)); !types.Identical(got, i(2)) {
		t.Errorf("COUNT skips NULL: got %v", got)
	}
	if got := feed(Spec{Kind: Sum}, i(1), i(2), types.Null()); !types.Identical(got, i(3)) {
		t.Errorf("SUM = %v", got)
	}
	if got := feed(Spec{Kind: Avg}, i(1), i(2)); !types.Identical(got, types.NewFloat(1.5)) {
		t.Errorf("AVG = %v", got)
	}
	if got := feed(Spec{Kind: Min}, i(5), i(2), i(9)); !types.Identical(got, i(2)) {
		t.Errorf("MIN = %v", got)
	}
	if got := feed(Spec{Kind: Max}, i(5), i(2), i(9)); !types.Identical(got, i(9)) {
		t.Errorf("MAX = %v", got)
	}
}

func TestAccEmpty(t *testing.T) {
	if got := feed(Spec{Kind: Count}); !types.Identical(got, types.NewInt(0)) {
		t.Errorf("COUNT(∅) = %v", got)
	}
	for _, k := range []Kind{Sum, Avg, Min, Max} {
		if got := feed(Spec{Kind: k}); !got.IsNull() {
			t.Errorf("%s(∅) = %v, want NULL", k, got)
		}
	}
	// All-NULL input behaves like empty.
	if got := feed(Spec{Kind: Sum}, types.Null(), types.Null()); !got.IsNull() {
		t.Errorf("SUM(all NULL) = %v", got)
	}
}

func TestAccDistinct(t *testing.T) {
	i := types.NewInt
	if got := feed(Spec{Kind: Count, Distinct: true}, i(1), i(1), i(2)); !types.Identical(got, i(2)) {
		t.Errorf("COUNT(DISTINCT) = %v", got)
	}
	if got := feed(Spec{Kind: Sum, Distinct: true}, i(3), i(3), i(4)); !types.Identical(got, i(7)) {
		t.Errorf("SUM(DISTINCT) = %v", got)
	}
	if got := feed(Spec{Kind: Avg, Distinct: true}, i(2), i(2), i(4)); !types.Identical(got, types.NewFloat(3)) {
		t.Errorf("AVG(DISTINCT) = %v", got)
	}
}

func TestCountStar(t *testing.T) {
	a := NewAcc(Spec{Kind: Count, Star: true})
	a.Add([]types.Value{types.Null(), types.Null()}) // all-NULL row still counts
	a.Add([]types.Value{types.NewInt(1), types.NewInt(2)})
	if got := a.Result(); !types.Identical(got, types.NewInt(2)) {
		t.Errorf("COUNT(*) = %v", got)
	}
}

func TestCountDistinctStar(t *testing.T) {
	a := NewAcc(Spec{Kind: Count, Distinct: true, Star: true})
	row1 := []types.Value{types.NewInt(1), types.NewInt(2)}
	row2 := []types.Value{types.NewInt(1), types.NewInt(3)}
	a.Add(row1)
	a.Add(row1)
	a.Add(row2)
	if got := a.Result(); !types.Identical(got, types.NewInt(2)) {
		t.Errorf("COUNT(DISTINCT *) = %v", got)
	}
}

func TestSumPromotesToFloat(t *testing.T) {
	got := feed(Spec{Kind: Sum}, types.NewInt(1), types.NewFloat(0.5))
	if !types.Identical(got, types.NewFloat(1.5)) {
		t.Errorf("mixed SUM = %v", got)
	}
	// Int-only stays integral.
	got = feed(Spec{Kind: Sum}, types.NewInt(1), types.NewInt(2))
	if got.Kind() != types.KindInt {
		t.Errorf("int SUM kind = %v", got.Kind())
	}
}

func TestCombine(t *testing.T) {
	i := types.NewInt
	if got, _ := Combine(Count, i(2), i(3)); !types.Identical(got, i(5)) {
		t.Errorf("Combine COUNT = %v", got)
	}
	if got, _ := Combine(Sum, types.Null(), i(3)); !types.Identical(got, i(3)) {
		t.Errorf("Combine SUM with NULL identity = %v", got)
	}
	if got, _ := Combine(Min, i(4), i(2)); !types.Identical(got, i(2)) {
		t.Errorf("Combine MIN = %v", got)
	}
	if got, _ := Combine(Max, i(4), types.Null()); !types.Identical(got, i(4)) {
		t.Errorf("Combine MAX with NULL = %v", got)
	}
	if got, _ := Combine(Sum, types.Null(), types.Null()); !got.IsNull() {
		t.Errorf("Combine(NULL, NULL) = %v", got)
	}
	if _, err := Combine(Avg, i(1), i(2)); err == nil {
		t.Error("Combine(AVG) must error")
	}
}

// TestDecompositionProperty is the paper's decomposability law checked by
// property test: for every decomposable f and random split X = Y ∪ Z,
// f(X) = fO(fI(Y), fI(Z)) (with AVG recombined from SUM/COUNT pairs).
func TestDecompositionProperty(t *testing.T) {
	f := func(xs []int16, cut uint8) bool {
		vals := make([]types.Value, len(xs))
		for i, x := range xs {
			vals[i] = types.NewInt(int64(x))
		}
		k := 0
		if len(vals) > 0 {
			k = int(cut) % (len(vals) + 1)
		}
		y, z := vals[:k], vals[k:]
		for _, kind := range []Kind{Count, Sum, Min, Max} {
			spec := Spec{Kind: kind}
			whole := feed(spec, vals...)
			part, err := Combine(kind, feed(spec, y...), feed(spec, z...))
			if err != nil || !types.Identical(whole, part) {
				return false
			}
		}
		// AVG via (SUM, COUNT) pair.
		whole := feed(Spec{Kind: Avg}, vals...)
		sumC, _ := Combine(Sum, feed(Spec{Kind: Sum}, y...), feed(Spec{Kind: Sum}, z...))
		cntC, _ := Combine(Count, feed(Spec{Kind: Count}, y...), feed(Spec{Kind: Count}, z...))
		var recombined types.Value
		if cntC.Int() == 0 {
			recombined = types.Null()
		} else {
			sf, _ := sumC.AsFloat()
			recombined = types.NewFloat(sf / float64(cntC.Int()))
		}
		return types.Identical(whole, recombined)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
