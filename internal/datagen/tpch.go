package datagen

import (
	"fmt"
	"math"

	"disqo/internal/catalog"
	"disqo/internal/types"
)

// TPC-H base cardinalities at scale factor 1 (TPC-H spec §4.2.5).
const (
	sfSupplier = 10000
	sfPart     = 200000
	sfCustomer = 150000
	sfOrders   = 1500000
)

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nations maps each TPC-H nation to its region key (spec table 4.2.3).
var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

// Syllables for p_type per spec §4.2.2.13.
var (
	types1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	types2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	types3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

	containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

	nouns = []string{"packages", "requests", "accounts", "deposits", "foxes",
		"ideas", "theodolites", "pinto beans", "instructions", "dependencies"}
	verbs = []string{"sleep", "wake", "haggle", "nag", "cajole", "detect",
		"integrate", "boost", "doze", "unwind"}
	adjectives = []string{"furious", "sly", "careful", "blithe", "quick",
		"fluffy", "slow", "quiet", "ruthless", "thin"}
)

// TPCHConfig controls generation: the scale factor and which tables to
// materialize. Tables nil means the five tables the paper's Query 2d
// touches; TPCHAllTables lists the full schema.
type TPCHConfig struct {
	SF     float64
	Seed   uint64
	Tables []string
}

// TPCHQuery2dTables are the tables Query 2d (and TPC-H Q2) touches.
var TPCHQuery2dTables = []string{"region", "nation", "supplier", "part", "partsupp"}

// TPCHAllTables is the complete 8-table schema.
var TPCHAllTables = []string{"region", "nation", "supplier", "part", "partsupp",
	"customer", "orders", "lineitem"}

// LoadTPCH creates and populates the requested TPC-H tables.
func LoadTPCH(cat *catalog.Catalog, cfg TPCHConfig) error {
	if cfg.SF <= 0 {
		return fmt.Errorf("datagen: TPC-H scale factor must be positive, got %g", cfg.SF)
	}
	tables := cfg.Tables
	if tables == nil {
		tables = TPCHQuery2dTables
	}
	want := map[string]bool{}
	for _, t := range tables {
		want[t] = true
	}
	g := &tpchGen{cat: cat, sf: cfg.SF, seed: cfg.Seed}
	// Dimension order matters only for readability; tables are
	// independent because keys are derived arithmetically as in dbgen.
	steps := []struct {
		name string
		fn   func() error
	}{
		{"region", g.region}, {"nation", g.nation}, {"supplier", g.supplier},
		{"part", g.part}, {"partsupp", g.partsupp}, {"customer", g.customer},
		{"orders", g.orders}, {"lineitem", g.lineitem},
	}
	for _, st := range steps {
		if !want[st.name] {
			continue
		}
		if err := st.fn(); err != nil {
			return err
		}
	}
	return nil
}

type tpchGen struct {
	cat  *catalog.Catalog
	sf   float64
	seed uint64
}

func (g *tpchGen) scaled(base int) int {
	n := int(math.Round(g.sf * float64(base)))
	if n < 1 {
		n = 1
	}
	return n
}

func (g *tpchGen) rng(table string) *rng {
	h := g.seed ^ 0xabcdef
	for _, c := range table {
		h = h*131 + uint64(c)
	}
	return newRng(h)
}

func text(r *rng, words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		switch i % 3 {
		case 0:
			out += adjectives[r.intn(len(adjectives))]
		case 1:
			out += nouns[r.intn(len(nouns))]
		default:
			out += verbs[r.intn(len(verbs))]
		}
	}
	return out
}

func money(r *rng, lo, hi float64) types.Value {
	cents := math.Round((lo + (hi-lo)*r.float()) * 100)
	return types.NewFloat(cents / 100)
}

func (g *tpchGen) region() error {
	tbl, err := g.cat.Create("region", []catalog.Column{
		{Name: "r_regionkey", Type: types.KindInt},
		{Name: "r_name", Type: types.KindString},
		{Name: "r_comment", Type: types.KindString},
	})
	if err != nil {
		return err
	}
	r := g.rng("region")
	for i, name := range regions {
		tbl.BulkLoad([][]types.Value{{
			types.NewInt(int64(i)), types.NewString(name), types.NewString(text(r, 6)),
		}})
	}
	return nil
}

func (g *tpchGen) nation() error {
	tbl, err := g.cat.Create("nation", []catalog.Column{
		{Name: "n_nationkey", Type: types.KindInt},
		{Name: "n_name", Type: types.KindString},
		{Name: "n_regionkey", Type: types.KindInt},
		{Name: "n_comment", Type: types.KindString},
	})
	if err != nil {
		return err
	}
	r := g.rng("nation")
	for i, n := range nations {
		tbl.BulkLoad([][]types.Value{{
			types.NewInt(int64(i)), types.NewString(n.name),
			types.NewInt(int64(n.region)), types.NewString(text(r, 6)),
		}})
	}
	return nil
}

func (g *tpchGen) supplier() error {
	tbl, err := g.cat.Create("supplier", []catalog.Column{
		{Name: "s_suppkey", Type: types.KindInt},
		{Name: "s_name", Type: types.KindString},
		{Name: "s_address", Type: types.KindString},
		{Name: "s_nationkey", Type: types.KindInt},
		{Name: "s_phone", Type: types.KindString},
		{Name: "s_acctbal", Type: types.KindFloat},
		{Name: "s_comment", Type: types.KindString},
	})
	if err != nil {
		return err
	}
	r := g.rng("supplier")
	n := g.scaled(sfSupplier)
	rows := make([][]types.Value, n)
	for i := 0; i < n; i++ {
		key := int64(i + 1)
		nat := r.intn(len(nations))
		rows[i] = []types.Value{
			types.NewInt(key),
			types.NewString(fmt.Sprintf("Supplier#%09d", key)),
			types.NewString(text(r, 2)),
			types.NewInt(int64(nat)),
			types.NewString(fmt.Sprintf("%d-%03d-%03d-%04d", 10+nat, r.intn(1000), r.intn(1000), r.intn(10000))),
			money(r, -999.99, 9999.99),
			types.NewString(text(r, 8)),
		}
	}
	tbl.BulkLoad(rows)
	return nil
}

func (g *tpchGen) part() error {
	tbl, err := g.cat.Create("part", []catalog.Column{
		{Name: "p_partkey", Type: types.KindInt},
		{Name: "p_name", Type: types.KindString},
		{Name: "p_mfgr", Type: types.KindString},
		{Name: "p_brand", Type: types.KindString},
		{Name: "p_type", Type: types.KindString},
		{Name: "p_size", Type: types.KindInt},
		{Name: "p_container", Type: types.KindString},
		{Name: "p_retailprice", Type: types.KindFloat},
		{Name: "p_comment", Type: types.KindString},
	})
	if err != nil {
		return err
	}
	r := g.rng("part")
	n := g.scaled(sfPart)
	rows := make([][]types.Value, n)
	for i := 0; i < n; i++ {
		key := int64(i + 1)
		mfgr := 1 + r.intn(5)
		brand := mfgr*10 + 1 + r.intn(5)
		ptype := types1[r.intn(len(types1))] + " " + types2[r.intn(len(types2))] + " " + types3[r.intn(len(types3))]
		rows[i] = []types.Value{
			types.NewInt(key),
			types.NewString(text(r, 4)),
			types.NewString(fmt.Sprintf("Manufacturer#%d", mfgr)),
			types.NewString(fmt.Sprintf("Brand#%d", brand)),
			types.NewString(ptype),
			types.NewInt(int64(1 + r.intn(50))),
			types.NewString(containers1[r.intn(len(containers1))] + " " + containers2[r.intn(len(containers2))]),
			money(r, 900, 2000),
			types.NewString(text(r, 5)),
		}
	}
	tbl.BulkLoad(rows)
	return nil
}

func (g *tpchGen) partsupp() error {
	tbl, err := g.cat.Create("partsupp", []catalog.Column{
		{Name: "ps_partkey", Type: types.KindInt},
		{Name: "ps_suppkey", Type: types.KindInt},
		{Name: "ps_availqty", Type: types.KindInt},
		{Name: "ps_supplycost", Type: types.KindFloat},
		{Name: "ps_comment", Type: types.KindString},
	})
	if err != nil {
		return err
	}
	r := g.rng("partsupp")
	nPart := g.scaled(sfPart)
	nSupp := g.scaled(sfSupplier)
	rows := make([][]types.Value, 0, nPart*4)
	for p := 1; p <= nPart; p++ {
		for j := 0; j < 4; j++ {
			// dbgen's supplier spread: suppliers of a part are distributed
			// across the whole supplier key space.
			supp := (p+j*(nSupp/4+(p-1)/nSupp))%nSupp + 1
			rows = append(rows, []types.Value{
				types.NewInt(int64(p)),
				types.NewInt(int64(supp)),
				types.NewInt(int64(1 + r.intn(9999))),
				money(r, 1, 1000),
				types.NewString(text(r, 10)),
			})
		}
	}
	tbl.BulkLoad(rows)
	return nil
}

func (g *tpchGen) customer() error {
	tbl, err := g.cat.Create("customer", []catalog.Column{
		{Name: "c_custkey", Type: types.KindInt},
		{Name: "c_name", Type: types.KindString},
		{Name: "c_address", Type: types.KindString},
		{Name: "c_nationkey", Type: types.KindInt},
		{Name: "c_phone", Type: types.KindString},
		{Name: "c_acctbal", Type: types.KindFloat},
		{Name: "c_mktsegment", Type: types.KindString},
		{Name: "c_comment", Type: types.KindString},
	})
	if err != nil {
		return err
	}
	r := g.rng("customer")
	n := g.scaled(sfCustomer)
	rows := make([][]types.Value, n)
	for i := 0; i < n; i++ {
		key := int64(i + 1)
		nat := r.intn(len(nations))
		rows[i] = []types.Value{
			types.NewInt(key),
			types.NewString(fmt.Sprintf("Customer#%09d", key)),
			types.NewString(text(r, 2)),
			types.NewInt(int64(nat)),
			types.NewString(fmt.Sprintf("%d-%03d-%03d-%04d", 10+nat, r.intn(1000), r.intn(1000), r.intn(10000))),
			money(r, -999.99, 9999.99),
			types.NewString(segments[r.intn(len(segments))]),
			types.NewString(text(r, 8)),
		}
	}
	tbl.BulkLoad(rows)
	return nil
}

func (g *tpchGen) orders() error {
	tbl, err := g.cat.Create("orders", []catalog.Column{
		{Name: "o_orderkey", Type: types.KindInt},
		{Name: "o_custkey", Type: types.KindInt},
		{Name: "o_orderstatus", Type: types.KindString},
		{Name: "o_totalprice", Type: types.KindFloat},
		{Name: "o_orderdate", Type: types.KindInt}, // days since 1992-01-01
		{Name: "o_orderpriority", Type: types.KindString},
		{Name: "o_clerk", Type: types.KindString},
		{Name: "o_shippriority", Type: types.KindInt},
		{Name: "o_comment", Type: types.KindString},
	})
	if err != nil {
		return err
	}
	r := g.rng("orders")
	n := g.scaled(sfOrders)
	nCust := g.scaled(sfCustomer)
	rows := make([][]types.Value, n)
	for i := 0; i < n; i++ {
		status := "O"
		if r.intn(2) == 0 {
			status = "F"
		}
		rows[i] = []types.Value{
			types.NewInt(int64(i + 1)),
			types.NewInt(int64(1 + r.intn(nCust))),
			types.NewString(status),
			money(r, 800, 500000),
			types.NewInt(int64(r.intn(2406))), // ~1992-01-01 .. 1998-08-02
			types.NewString(priorities[r.intn(len(priorities))]),
			types.NewString(fmt.Sprintf("Clerk#%09d", 1+r.intn(1000))),
			types.NewInt(0),
			types.NewString(text(r, 6)),
		}
	}
	tbl.BulkLoad(rows)
	return nil
}

func (g *tpchGen) lineitem() error {
	tbl, err := g.cat.Create("lineitem", []catalog.Column{
		{Name: "l_orderkey", Type: types.KindInt},
		{Name: "l_partkey", Type: types.KindInt},
		{Name: "l_suppkey", Type: types.KindInt},
		{Name: "l_linenumber", Type: types.KindInt},
		{Name: "l_quantity", Type: types.KindInt},
		{Name: "l_extendedprice", Type: types.KindFloat},
		{Name: "l_discount", Type: types.KindFloat},
		{Name: "l_tax", Type: types.KindFloat},
		{Name: "l_returnflag", Type: types.KindString},
		{Name: "l_linestatus", Type: types.KindString},
		{Name: "l_shipdate", Type: types.KindInt},
		{Name: "l_commitdate", Type: types.KindInt},
		{Name: "l_receiptdate", Type: types.KindInt},
		{Name: "l_shipinstruct", Type: types.KindString},
		{Name: "l_shipmode", Type: types.KindString},
		{Name: "l_comment", Type: types.KindString},
	})
	if err != nil {
		return err
	}
	r := g.rng("lineitem")
	nOrders := g.scaled(sfOrders)
	nPart := g.scaled(sfPart)
	nSupp := g.scaled(sfSupplier)
	flags := []string{"R", "A", "N"}
	modes := []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instr := []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	var rows [][]types.Value
	for o := 1; o <= nOrders; o++ {
		lines := 1 + r.intn(7)
		for ln := 1; ln <= lines; ln++ {
			ship := r.intn(2406)
			rows = append(rows, []types.Value{
				types.NewInt(int64(o)),
				types.NewInt(int64(1 + r.intn(nPart))),
				types.NewInt(int64(1 + r.intn(nSupp))),
				types.NewInt(int64(ln)),
				types.NewInt(int64(1 + r.intn(50))),
				money(r, 900, 100000),
				types.NewFloat(float64(r.intn(11)) / 100),
				types.NewFloat(float64(r.intn(9)) / 100),
				types.NewString(flags[r.intn(len(flags))]),
				types.NewString("O"),
				types.NewInt(int64(ship)),
				types.NewInt(int64(ship + r.intn(30))),
				types.NewInt(int64(ship + r.intn(30))),
				types.NewString(instr[r.intn(len(instr))]),
				types.NewString(modes[r.intn(len(modes))]),
				types.NewString(text(r, 4)),
			})
		}
	}
	tbl.BulkLoad(rows)
	return nil
}
