// Package datagen generates the paper's two evaluation datasets: the RST
// synthetic schema (§4.1) and a deterministic, dbgen-like TPC-H database.
// Both are reproducible: the same scale factor always yields the same
// rows.
package datagen

import (
	"fmt"

	"disqo/internal/catalog"
	"disqo/internal/types"
)

// rng is a splitmix64 generator — tiny, fast, and stable across Go
// versions so generated datasets never drift.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float returns a uniform float in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// RSTRowsPerSF is the paper's row count at scale factor 1 (§4.1: SF 1, 5,
// 10 yield 10,000 / 50,000 / 100,000 rows).
const RSTRowsPerSF = 10000

// RSTConfig controls RST generation. SF values follow the paper; the
// column distributions (unspecified there) are chosen so the paper's
// predicates have non-trivial selectivity — see DESIGN.md §4:
//
//	x1: row number (a key),
//	x2: uniform on [0, rows/10)  — the correlation attribute,
//	x3: uniform on [0, 100),
//	x4: uniform on [0, 3000)     — so "x4 > 1500" keeps about half.
type RSTConfig struct {
	SFR, SFS, SFT float64
	Seed          uint64
}

// LoadRST creates and populates tables r, s, t in the catalog.
func LoadRST(cat *catalog.Catalog, cfg RSTConfig) error {
	if cfg.SFR <= 0 || cfg.SFS <= 0 || cfg.SFT <= 0 {
		return fmt.Errorf("datagen: RST scale factors must be positive, got %+v", cfg)
	}
	specs := []struct {
		name   string
		prefix string
		sf     float64
		seed   uint64
	}{
		{"r", "a", cfg.SFR, cfg.Seed ^ 0x1111},
		{"s", "b", cfg.SFS, cfg.Seed ^ 0x2222},
		{"t", "c", cfg.SFT, cfg.Seed ^ 0x3333},
	}
	for _, sp := range specs {
		tbl, err := cat.Create(sp.name, []catalog.Column{
			{Name: sp.prefix + "1", Type: types.KindInt},
			{Name: sp.prefix + "2", Type: types.KindInt},
			{Name: sp.prefix + "3", Type: types.KindInt},
			{Name: sp.prefix + "4", Type: types.KindInt},
		})
		if err != nil {
			return err
		}
		n := int(sp.sf * RSTRowsPerSF)
		if n < 1 {
			n = 1
		}
		r := newRng(sp.seed)
		corrDomain := n / 10
		if corrDomain < 1 {
			corrDomain = 1
		}
		rows := make([][]types.Value, n)
		for i := 0; i < n; i++ {
			rows[i] = []types.Value{
				types.NewInt(int64(i)),
				types.NewInt(int64(r.intn(corrDomain))),
				types.NewInt(int64(r.intn(100))),
				types.NewInt(int64(r.intn(3000))),
			}
		}
		tbl.BulkLoad(rows)
	}
	return nil
}
