package vec

import (
	"disqo/internal/storage"
	"disqo/internal/types"
)

// evalCtx carries per-Eval state: the batch, the morsel window, the
// null mode, the comparison counter, and small buffer free-lists so
// nested operators reuse scratch space instead of allocating per node
// per morsel. The mode lives here, not in the compiled program, so one
// compiled Pred serves both logics — plan caches need not fork kernels
// per mode.
type evalCtx struct {
	b     *storage.Batch
	lo    int
	n     int
	nulls types.NullMode
	cmps  int64

	tfree [][]types.TriBool
	vfree [][]types.Value
	ifree [][]int32
	rows  []int32
}

func newEvalCtx(b *storage.Batch, lo, n int, nulls types.NullMode) *evalCtx {
	return &evalCtx{b: b, lo: lo, n: n, nulls: nulls}
}

// allRows lists every row of the morsel, in order, as absolute indices.
func (c *evalCtx) allRows() []int32 {
	if c.rows == nil {
		c.rows = make([]int32, c.n)
		for i := range c.rows {
			c.rows[i] = int32(c.lo + i)
		}
	}
	return c.rows
}

func (c *evalCtx) getT() []types.TriBool {
	if k := len(c.tfree); k > 0 {
		b := c.tfree[k-1]
		c.tfree = c.tfree[:k-1]
		return b
	}
	return make([]types.TriBool, c.n)
}

func (c *evalCtx) putT(b []types.TriBool) { c.tfree = append(c.tfree, b) }

func (c *evalCtx) getV() []types.Value {
	if k := len(c.vfree); k > 0 {
		b := c.vfree[k-1]
		c.vfree = c.vfree[:k-1]
		return b
	}
	return make([]types.Value, c.n)
}

func (c *evalCtx) putV(b []types.Value) { c.vfree = append(c.vfree, b) }

func (c *evalCtx) getI() []int32 {
	if k := len(c.ifree); k > 0 {
		b := c.ifree[k-1]
		c.ifree = c.ifree[:k-1]
		return b
	}
	return make([]int32, 0, c.n)
}

func (c *evalCtx) putI(b []int32) { c.ifree = append(c.ifree, b[:0]) }

// pnode is a compiled predicate operator. eval computes the truth value
// of each listed row (absolute indices into the batch), writing
// res[r-ctx.lo]; entries for unlisted rows are left untouched.
type pnode interface {
	eval(ctx *evalCtx, rows []int32, res []types.TriBool) error
}

// snode is a compiled scalar operator; same indexing contract as pnode.
type snode interface {
	eval(ctx *evalCtx, rows []int32, res []types.Value) error
}

// pcmp is θ-comparison. Uniform NULL-free integer columns compared to an
// integer constant or column take a payload-slice fast path; everything
// else boxes through types.CompareValues, which the fast path matches
// bit for bit on the rows it covers.
type pcmp struct {
	op   types.CompareOp
	l, r snode
}

func (p *pcmp) eval(ctx *evalCtx, rows []int32, res []types.TriBool) error {
	lo := ctx.lo
	if lc, ok := p.l.(*scol); ok {
		cv := ctx.b.Col(lc.idx)
		if cv.Kind == types.KindInt && cv.Nulls == nil && cv.Mixed == nil {
			if rc, ok := p.r.(*sconst); ok {
				if k, isInt := rc.v.IntOk(); isInt {
					for _, r := range rows {
						res[r-int32(lo)] = cmpInts(p.op, cv.Ints[r], k)
					}
					ctx.cmps += int64(len(rows))
					return nil
				}
			}
			if rc, ok := p.r.(*scol); ok {
				rv := ctx.b.Col(rc.idx)
				if rv.Kind == types.KindInt && rv.Nulls == nil && rv.Mixed == nil {
					for _, r := range rows {
						res[r-int32(lo)] = cmpInts(p.op, cv.Ints[r], rv.Ints[r])
					}
					ctx.cmps += int64(len(rows))
					return nil
				}
			}
		}
	}
	lv := ctx.getV()
	defer ctx.putV(lv)
	if err := p.l.eval(ctx, rows, lv); err != nil {
		return err
	}
	rv := ctx.getV()
	defer ctx.putV(rv)
	if err := p.r.eval(ctx, rows, rv); err != nil {
		return err
	}
	for _, r := range rows {
		i := r - int32(lo)
		res[i] = ctx.nulls.Lift(types.CompareValues(p.op, lv[i], rv[i]))
	}
	ctx.cmps += int64(len(rows))
	return nil
}

// cmpInts mirrors types.CompareValues for two non-NULL integers.
func cmpInts(op types.CompareOp, a, b int64) types.TriBool {
	switch op {
	case types.EQ:
		return types.TriOf(a == b)
	case types.NE:
		return types.TriOf(a != b)
	case types.LT:
		return types.TriOf(a < b)
	case types.LE:
		return types.TriOf(a <= b)
	case types.GT:
		return types.TriOf(a > b)
	default: // GE
		return types.TriOf(a >= b)
	}
}

// pand is n-ary conjunction: operands run in list order, each over only
// the rows no earlier operand decided FALSE — the vectorized form of
// the interpreter's short-circuit, so the comparison charge matches the
// row path exactly.
type pand struct{ parts []pnode }

func (p *pand) eval(ctx *evalCtx, rows []int32, res []types.TriBool) error {
	lo := int32(ctx.lo)
	if err := p.parts[0].eval(ctx, rows, res); err != nil {
		return err
	}
	act := ctx.getI()
	defer ctx.putI(act)
	for _, r := range rows {
		if res[r-lo] != types.False {
			act = append(act, r)
		}
	}
	tmp := ctx.getT()
	defer ctx.putT(tmp)
	for _, part := range p.parts[1:] {
		if len(act) == 0 {
			break
		}
		if err := part.eval(ctx, act, tmp); err != nil {
			return err
		}
		kept := act[:0]
		for _, r := range act {
			t := res[r-lo].And(tmp[r-lo])
			res[r-lo] = t
			if t != types.False {
				kept = append(kept, r)
			}
		}
		act = kept
	}
	return nil
}

// por is n-ary disjunction over the shrinking still-undecided set (rows
// not yet TRUE) — the BestD evaluation shape; the planner orders parts
// so the cheap, high-yield disjuncts run first and decide most rows.
type por struct{ parts []pnode }

func (p *por) eval(ctx *evalCtx, rows []int32, res []types.TriBool) error {
	lo := int32(ctx.lo)
	if err := p.parts[0].eval(ctx, rows, res); err != nil {
		return err
	}
	act := ctx.getI()
	defer ctx.putI(act)
	for _, r := range rows {
		if res[r-lo] != types.True {
			act = append(act, r)
		}
	}
	tmp := ctx.getT()
	defer ctx.putT(tmp)
	for _, part := range p.parts[1:] {
		if len(act) == 0 {
			break
		}
		if err := part.eval(ctx, act, tmp); err != nil {
			return err
		}
		kept := act[:0]
		for _, r := range act {
			t := res[r-lo].Or(tmp[r-lo])
			res[r-lo] = t
			if t != types.True {
				kept = append(kept, r)
			}
		}
		act = kept
	}
	return nil
}

type pnot struct{ child pnode }

func (p *pnot) eval(ctx *evalCtx, rows []int32, res []types.TriBool) error {
	if err := p.child.eval(ctx, rows, res); err != nil {
		return err
	}
	lo := int32(ctx.lo)
	for _, r := range rows {
		res[r-lo] = res[r-lo].Not()
	}
	return nil
}

type plike struct{ l, pat snode }

func (p *plike) eval(ctx *evalCtx, rows []int32, res []types.TriBool) error {
	lv := ctx.getV()
	defer ctx.putV(lv)
	if err := p.l.eval(ctx, rows, lv); err != nil {
		return err
	}
	pv := ctx.getV()
	defer ctx.putV(pv)
	if err := p.pat.eval(ctx, rows, pv); err != nil {
		return err
	}
	lo := int32(ctx.lo)
	for _, r := range rows {
		res[r-lo] = ctx.nulls.Lift(types.Like(lv[r-lo], pv[r-lo]))
	}
	return nil
}

type pisnull struct{ child snode }

func (p *pisnull) eval(ctx *evalCtx, rows []int32, res []types.TriBool) error {
	v := ctx.getV()
	defer ctx.putV(v)
	if err := p.child.eval(ctx, rows, v); err != nil {
		return err
	}
	lo := int32(ctx.lo)
	for _, r := range rows {
		res[r-lo] = types.TriOf(v[r-lo].IsNull())
	}
	return nil
}

// pvalue interprets a scalar as a truth value (NULL → UNKNOWN, lifted
// to FALSE in two-valued mode), the interpreter's default-case behavior.
type pvalue struct{ child snode }

func (p *pvalue) eval(ctx *evalCtx, rows []int32, res []types.TriBool) error {
	v := ctx.getV()
	defer ctx.putV(v)
	if err := p.child.eval(ctx, rows, v); err != nil {
		return err
	}
	lo := int32(ctx.lo)
	for _, r := range rows {
		res[r-lo] = ctx.nulls.Lift(types.TriFromValue(v[r-lo]))
	}
	return nil
}

type scol struct{ idx int }

func (s *scol) eval(ctx *evalCtx, rows []int32, res []types.Value) error {
	cv := ctx.b.Col(s.idx)
	lo := int32(ctx.lo)
	for _, r := range rows {
		res[r-lo] = cv.Value(int(r))
	}
	return nil
}

type sconst struct{ v types.Value }

func (s *sconst) eval(ctx *evalCtx, rows []int32, res []types.Value) error {
	lo := int32(ctx.lo)
	for _, r := range rows {
		res[r-lo] = s.v
	}
	return nil
}

type sarith struct {
	op   types.ArithOp
	l, r snode
}

func (s *sarith) eval(ctx *evalCtx, rows []int32, res []types.Value) error {
	lv := ctx.getV()
	defer ctx.putV(lv)
	if err := s.l.eval(ctx, rows, lv); err != nil {
		return err
	}
	rv := ctx.getV()
	defer ctx.putV(rv)
	if err := s.r.eval(ctx, rows, rv); err != nil {
		return err
	}
	lo := int32(ctx.lo)
	for _, r := range rows {
		v, err := types.Arith(s.op, lv[r-lo], rv[r-lo])
		if err != nil {
			return err
		}
		res[r-lo] = v
	}
	return nil
}

// spred renders a predicate's truth value as a SQL value (UNKNOWN →
// NULL), matching EvalExpr on predicate expressions.
type spred struct{ child pnode }

func (s *spred) eval(ctx *evalCtx, rows []int32, res []types.Value) error {
	t := ctx.getT()
	defer ctx.putT(t)
	if err := s.child.eval(ctx, rows, t); err != nil {
		return err
	}
	lo := int32(ctx.lo)
	for _, r := range rows {
		res[r-lo] = t[r-lo].Value()
	}
	return nil
}
