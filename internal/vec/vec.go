// Package vec compiles scalar predicates and expressions into
// column-at-a-time programs evaluated over storage.Batch vectors. It is
// the kernel layer of the vectorized execution path: the planner
// (internal/physical) decides which nodes are eligible and compiles
// their expressions here at lowering time; the executor (internal/exec)
// runs the compiled programs morsel by morsel.
//
// Semantics are defined by the row path: a compiled predicate computes,
// for every input row, exactly the TriBool the tuple-at-a-time
// interpreter would, and charges the same number of comparisons the
// interpreter would charge for the rows it actually evaluates. AND/OR
// evaluate their operands in list order over a shrinking set of
// still-undecided rows — the columnar analogue of the interpreter's
// per-row short-circuit, and the hook the planner's BestD-style
// disjunct ordering plugs into.
//
// Expressions that need an environment (subqueries, quantifiers,
// aggregate combination, outer-correlated column references) do not
// compile; callers treat a compile error as "this node takes the row
// path".
package vec

import (
	"fmt"
	"sort"

	"disqo/internal/algebra"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// Pred is a compiled three-valued predicate over one schema.
// It is immutable after compilation and safe for concurrent Eval calls.
type Pred struct {
	root pnode
	cols []int
	src  algebra.Expr
}

// Scalar is a compiled scalar expression over one schema.
type Scalar struct {
	root snode
	cols []int
	src  algebra.Expr
}

// CompilePred compiles e as a predicate against schema s. Every column
// reference must resolve in s — an unresolved name (an outer
// correlation at runtime) is a compile error, not a runtime fallback.
func CompilePred(e algebra.Expr, s *storage.Schema) (*Pred, error) {
	c := &compiler{schema: s, cols: map[int]bool{}}
	root, err := c.pred(e)
	if err != nil {
		return nil, err
	}
	return &Pred{root: root, cols: c.sorted(), src: e}, nil
}

// CompileScalar compiles e as a scalar expression against schema s.
func CompileScalar(e algebra.Expr, s *storage.Schema) (*Scalar, error) {
	c := &compiler{schema: s, cols: map[int]bool{}}
	root, err := c.scalar(e)
	if err != nil {
		return nil, err
	}
	return &Scalar{root: root, cols: c.sorted(), src: e}, nil
}

// CompilablePred reports whether e compiles against s.
func CompilablePred(e algebra.Expr, s *storage.Schema) bool {
	_, err := CompilePred(e, s)
	return err == nil
}

// Cols lists the column positions the predicate reads (sorted). The
// coordinator materializes exactly these vectors before fanning out.
func (p *Pred) Cols() []int { return p.cols }

// Expr returns the (possibly reordered) source expression the predicate
// was compiled from.
func (p *Pred) Expr() algebra.Expr { return p.src }

// Cols lists the column positions the scalar reads (sorted).
func (s *Scalar) Cols() []int { return s.cols }

// Expr returns the source expression the scalar was compiled from.
func (s *Scalar) Expr() algebra.Expr { return s.src }

// Eval evaluates the predicate over rows [lo,hi) of b under the default
// three-valued logic. res[i-lo] holds row i's truth value; cmps is the
// number of comparisons charged, matching what the row interpreter
// would charge for the same rows.
func (p *Pred) Eval(b *storage.Batch, lo, hi int) (res []types.TriBool, cmps int64, err error) {
	return p.EvalMode(b, lo, hi, types.ThreeValued)
}

// EvalMode is Eval under an explicit null mode. The mode is a runtime
// parameter, not a compile-time one: the same compiled program serves
// both logics, with two-valued mode lifting Unknown to False at the
// comparison, LIKE, and value-coercion leaves.
func (p *Pred) EvalMode(b *storage.Batch, lo, hi int, nulls types.NullMode) (res []types.TriBool, cmps int64, err error) {
	ctx := newEvalCtx(b, lo, hi-lo, nulls)
	res = make([]types.TriBool, hi-lo)
	if err := p.root.eval(ctx, ctx.allRows(), res); err != nil {
		return nil, ctx.cmps, err
	}
	return res, ctx.cmps, nil
}

// Eval evaluates the scalar over rows [lo,hi) of b under the default
// three-valued logic.
func (s *Scalar) Eval(b *storage.Batch, lo, hi int) (res []types.Value, cmps int64, err error) {
	return s.EvalMode(b, lo, hi, types.ThreeValued)
}

// EvalMode is Eval under an explicit null mode; the mode only matters
// for predicates rendered as values (spred), whose truth values follow
// the mode's leaf lifting.
func (s *Scalar) EvalMode(b *storage.Batch, lo, hi int, nulls types.NullMode) (res []types.Value, cmps int64, err error) {
	ctx := newEvalCtx(b, lo, hi-lo, nulls)
	res = make([]types.Value, hi-lo)
	if err := s.root.eval(ctx, ctx.allRows(), res); err != nil {
		return nil, ctx.cmps, err
	}
	return res, ctx.cmps, nil
}

// compiler resolves column references and records which columns the
// program touches.
type compiler struct {
	schema *storage.Schema
	cols   map[int]bool
}

func (c *compiler) sorted() []int {
	out := make([]int, 0, len(c.cols))
	for i := range c.cols {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func (c *compiler) pred(e algebra.Expr) (pnode, error) {
	switch x := e.(type) {
	case *algebra.CmpExpr:
		l, err := c.scalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.scalar(x.R)
		if err != nil {
			return nil, err
		}
		return &pcmp{op: x.Op, l: l, r: r}, nil
	case *algebra.AndExpr:
		parts, err := c.preds(algebra.SplitConjuncts(x))
		if err != nil {
			return nil, err
		}
		return &pand{parts: parts}, nil
	case *algebra.OrExpr:
		parts, err := c.preds(algebra.SplitDisjuncts(x))
		if err != nil {
			return nil, err
		}
		return &por{parts: parts}, nil
	case *algebra.NotExpr:
		child, err := c.pred(x.E)
		if err != nil {
			return nil, err
		}
		return &pnot{child: child}, nil
	case *algebra.LikeExpr:
		l, err := c.scalar(x.L)
		if err != nil {
			return nil, err
		}
		pat, err := c.scalar(x.Pattern)
		if err != nil {
			return nil, err
		}
		return &plike{l: l, pat: pat}, nil
	case *algebra.IsNullExpr:
		child, err := c.scalar(x.E)
		if err != nil {
			return nil, err
		}
		return &pisnull{child: child}, nil
	case *algebra.ColRef, *algebra.ConstExpr, *algebra.ArithExpr:
		child, err := c.scalar(e)
		if err != nil {
			return nil, err
		}
		return &pvalue{child: child}, nil
	default:
		return nil, fmt.Errorf("vec: %T does not vectorize", e)
	}
}

func (c *compiler) preds(es []algebra.Expr) ([]pnode, error) {
	out := make([]pnode, len(es))
	for i, e := range es {
		p, err := c.pred(e)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

func (c *compiler) scalar(e algebra.Expr) (snode, error) {
	switch x := e.(type) {
	case *algebra.ColRef:
		idx := c.schema.Index(x.Name)
		if idx < 0 {
			return nil, fmt.Errorf("vec: column %q not in input schema", x.Name)
		}
		c.cols[idx] = true
		return &scol{idx: idx}, nil
	case *algebra.ConstExpr:
		return &sconst{v: x.Val}, nil
	case *algebra.ArithExpr:
		l, err := c.scalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.scalar(x.R)
		if err != nil {
			return nil, err
		}
		return &sarith{op: x.Op, l: l, r: r}, nil
	case *algebra.CmpExpr, *algebra.AndExpr, *algebra.OrExpr, *algebra.NotExpr,
		*algebra.LikeExpr, *algebra.IsNullExpr:
		p, err := c.pred(e)
		if err != nil {
			return nil, err
		}
		return &spred{child: p}, nil
	default:
		return nil, fmt.Errorf("vec: %T does not vectorize", e)
	}
}
