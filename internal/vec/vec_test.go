package vec_test

// Parity tests for the columnar predicate/scalar compiler: compiled
// programs must agree with per-row evaluation of the same expression —
// CompareValues, three-valued AND/OR/NOT, LIKE, IS NULL, arithmetic —
// including NULL propagation and the comparison-count accounting. The
// external test package avoids an import cycle (exec → physical → vec).

import (
	"testing"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/storage"
	"disqo/internal/types"
	"disqo/internal/vec"
)

// testRel builds a(int), b(int), s(string) with NULLs sprinkled in.
func testRel() (*storage.Schema, *storage.Batch) {
	sch := storage.NewSchema("a", "b", "s")
	rel := storage.NewRelation(sch)
	rows := []struct {
		a, b any
		s    any
	}{
		{int64(1), int64(10), "apple"},
		{int64(5), int64(5), "banana"},
		{nil, int64(7), "cherry"},
		{int64(9), nil, nil},
		{int64(3), int64(30), "apricot"},
	}
	for _, r := range rows {
		row := make([]types.Value, 3)
		if v, ok := r.a.(int64); ok {
			row[0] = types.NewInt(v)
		} else {
			row[0] = types.Null()
		}
		if v, ok := r.b.(int64); ok {
			row[1] = types.NewInt(v)
		} else {
			row[1] = types.Null()
		}
		if v, ok := r.s.(string); ok {
			row[2] = types.NewString(v)
		} else {
			row[2] = types.Null()
		}
		rel.Append(row)
	}
	return sch, storage.NewBatch(rel)
}

// refPred interprets an expression per row — the row path's semantics,
// restated independently so the two implementations can disagree.
func refPred(e algebra.Expr, row []types.Value, sch *storage.Schema) types.TriBool {
	switch x := e.(type) {
	case *algebra.CmpExpr:
		return types.CompareValues(x.Op, refScalar(x.L, row, sch), refScalar(x.R, row, sch))
	case *algebra.AndExpr:
		return refPred(x.L, row, sch).And(refPred(x.R, row, sch))
	case *algebra.OrExpr:
		return refPred(x.L, row, sch).Or(refPred(x.R, row, sch))
	case *algebra.NotExpr:
		return refPred(x.E, row, sch).Not()
	case *algebra.LikeExpr:
		return types.Like(refScalar(x.L, row, sch), refScalar(x.Pattern, row, sch))
	case *algebra.IsNullExpr:
		return types.TriOf(refScalar(x.E, row, sch).IsNull())
	default:
		return types.TriFromValue(refScalar(e, row, sch))
	}
}

func refScalar(e algebra.Expr, row []types.Value, sch *storage.Schema) types.Value {
	switch x := e.(type) {
	case *algebra.ColRef:
		return row[sch.Index(x.Name)]
	case *algebra.ConstExpr:
		return x.Val
	case *algebra.ArithExpr:
		v, err := types.Arith(x.Op, refScalar(x.L, row, sch), refScalar(x.R, row, sch))
		if err != nil {
			return types.Null()
		}
		return v
	default:
		return types.Null()
	}
}

func parityPreds() []algebra.Expr {
	col, konst := algebra.Col, algebra.ConstInt
	return []algebra.Expr{
		algebra.Cmp(types.GT, col("a"), konst(3)),
		algebra.Cmp(types.EQ, col("a"), col("b")),
		algebra.Cmp(types.LE, col("b"), konst(10)),
		algebra.Or(
			algebra.Cmp(types.LT, col("a"), konst(2)),
			algebra.Cmp(types.GT, col("b"), konst(20))),
		algebra.And(
			algebra.Cmp(types.GE, col("a"), konst(1)),
			algebra.Cmp(types.NE, col("b"), konst(5))),
		algebra.Not(algebra.Cmp(types.EQ, col("a"), konst(5))),
		algebra.Like(col("s"), algebra.Const(types.NewString("ap%"))),
		algebra.IsNull(col("b")),
		algebra.Or(
			algebra.IsNull(col("a")),
			algebra.And(
				algebra.Cmp(types.GT, col("a"), konst(0)),
				algebra.Like(col("s"), algebra.Const(types.NewString("%an%"))))),
		algebra.Cmp(types.GT, algebra.Arith(types.Add, col("a"), col("b")), konst(10)),
	}
}

func TestPredParity(t *testing.T) {
	sch, b := testRel()
	rel := b.Relation()
	for _, e := range parityPreds() {
		p, err := vec.CompilePred(e, sch)
		if err != nil {
			t.Fatalf("%s: did not compile: %v", e, err)
		}
		got, _, err := p.Eval(b, 0, b.Len())
		if err != nil {
			t.Fatalf("%s: eval: %v", e, err)
		}
		for i := 0; i < b.Len(); i++ {
			want := refPred(e, rel.Tuples[i], sch)
			if got[i] != want {
				t.Errorf("%s row %d: vec=%v ref=%v", e, i, got[i], want)
			}
		}
	}
}

func TestScalarParity(t *testing.T) {
	sch, b := testRel()
	rel := b.Relation()
	exprs := []algebra.Expr{
		algebra.Col("a"),
		algebra.ConstInt(42),
		algebra.Arith(types.Mul, algebra.Col("a"), algebra.Col("b")),
		algebra.Arith(types.Sub, algebra.Col("b"), algebra.ConstInt(1)),
	}
	for _, e := range exprs {
		s, err := vec.CompileScalar(e, sch)
		if err != nil {
			t.Fatalf("%s: did not compile: %v", e, err)
		}
		got, _, err := s.Eval(b, 0, b.Len())
		if err != nil {
			t.Fatalf("%s: eval: %v", e, err)
		}
		for i := 0; i < b.Len(); i++ {
			want := refScalar(e, rel.Tuples[i], sch)
			if !types.Equal(got[i], want) && !(got[i].IsNull() && want.IsNull()) {
				t.Errorf("%s row %d: vec=%v ref=%v", e, i, got[i], want)
			}
		}
	}
}

// TestCompileRejects pins the fallback boundary: predicates the row
// path must keep — subqueries, quantifiers, unresolved columns — do
// not compile.
func TestCompileRejects(t *testing.T) {
	sch := storage.NewSchema("a")
	sub := algebra.Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil,
		algebra.NewScan("s", "s", storage.NewSchema("b")))
	cases := []algebra.Expr{
		algebra.Cmp(types.EQ, algebra.Col("a"), sub),
		algebra.Col("nope"),
		algebra.Or(
			algebra.Cmp(types.GT, algebra.Col("a"), algebra.ConstInt(0)),
			algebra.Cmp(types.EQ, algebra.Col("outer.x"), algebra.ConstInt(1))),
	}
	for _, e := range cases {
		if _, err := vec.CompilePred(e, sch); err == nil {
			t.Errorf("%s: compiled but must stay on the row path", e)
		}
	}
}

// TestComparisonCounting: decided rows drop out of later AND/OR
// operands, so the charge equals rows actually evaluated per cmp node
// — first operand over all rows, second only over the undecided set.
func TestComparisonCounting(t *testing.T) {
	sch := storage.NewSchema("a")
	rel := storage.NewRelation(sch)
	for _, v := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		rel.Append([]types.Value{types.NewInt(v)})
	}
	b := storage.NewBatch(rel)
	// a < 5 decides (TRUE) rows 1..4; the second disjunct runs only on
	// the remaining 4 rows: 8 + 4 comparisons.
	p, err := vec.CompilePred(algebra.Or(
		algebra.Cmp(types.LT, algebra.Col("a"), algebra.ConstInt(5)),
		algebra.Cmp(types.GT, algebra.Col("a"), algebra.ConstInt(6))), sch)
	if err != nil {
		t.Fatal(err)
	}
	_, cmps, err := p.Eval(b, 0, b.Len())
	if err != nil {
		t.Fatal(err)
	}
	if cmps != 12 {
		t.Fatalf("cmps = %d, want 12 (8 first disjunct + 4 undecided)", cmps)
	}
}

// TestEvalSubrange: kernels evaluate per morsel, so a [lo, hi) window
// must see exactly those rows.
func TestEvalSubrange(t *testing.T) {
	sch, b := testRel()
	rel := b.Relation()
	e := algebra.Cmp(types.GT, algebra.Col("a"), algebra.ConstInt(2))
	p, err := vec.CompilePred(e, sch)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := p.Eval(b, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("window len = %d, want 3", len(got))
	}
	for i := 0; i < 3; i++ {
		want := refPred(e, rel.Tuples[i+1], sch)
		if got[i] != want {
			t.Errorf("window row %d: vec=%v ref=%v", i, got[i], want)
		}
	}
}
