package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"disqo/internal/types"
)

// SeedFile is the on-disk form of a minimized divergence: everything
// needed to replay it — the relations (NULLs explicit) and the SQL —
// plus provenance (the generator seed and the matrix cells that
// disagreed when it was captured). Checked into testdata/scenario/,
// replayed forever by the golden test at the repo root.
type SeedFile struct {
	Seed    uint64      `json:"seed"`
	SQL     string      `json:"sql"`
	Note    string      `json:"note,omitempty"`
	ConfigA string      `json:"config_a,omitempty"`
	ConfigB string      `json:"config_b,omitempty"`
	Tables  []tableJSON `json:"tables"`
}

type tableJSON struct {
	Name    string       `json:"name"`
	Columns []columnJSON `json:"columns"`
	Rows    [][]cellJSON `json:"rows"`
}

type columnJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "int" or "string"
}

// cellJSON is one value: null, an integer (as float64 via JSON), or a
// string.
type cellJSON struct {
	v types.Value
}

func (c cellJSON) MarshalJSON() ([]byte, error) {
	switch {
	case c.v.IsNull():
		return []byte("null"), nil
	case c.v.Kind() == types.KindString:
		return json.Marshal(c.v.Str())
	default:
		return json.Marshal(c.v.Int())
	}
}

func (c *cellJSON) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		c.v = types.Null()
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		c.v = types.NewString(s)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	c.v = types.NewInt(n)
	return nil
}

// ToSeedFile renders a scenario (typically post-minimization) with the
// divergence's provenance attached.
func ToSeedFile(sc *Scenario, note, configA, configB string) *SeedFile {
	f := &SeedFile{
		Seed: sc.Seed, SQL: sc.Query.SQL(),
		Note: note, ConfigA: configA, ConfigB: configB,
	}
	for _, t := range sc.Tables {
		tj := tableJSON{Name: t.Name}
		for _, c := range t.Columns {
			kind := "int"
			if c.Kind == types.KindString {
				kind = "string"
			}
			tj.Columns = append(tj.Columns, columnJSON{Name: c.Name, Kind: kind})
		}
		for _, row := range t.Rows {
			rj := make([]cellJSON, len(row))
			for i, v := range row {
				rj[i] = cellJSON{v}
			}
			tj.Rows = append(tj.Rows, rj)
		}
		f.Tables = append(f.Tables, tj)
	}
	return f
}

// tables reconstructs the stored relations. The query structure is not
// persisted — replay executes the stored SQL verbatim.
func (f *SeedFile) tables() []Table {
	out := make([]Table, 0, len(f.Tables))
	for _, tj := range f.Tables {
		t := Table{Name: tj.Name}
		for _, c := range tj.Columns {
			kind := types.KindInt
			if c.Kind == "string" {
				kind = types.KindString
			}
			t.Columns = append(t.Columns, Column{Name: c.Name, Kind: kind})
		}
		for _, rj := range tj.Rows {
			row := make([]types.Value, len(rj))
			for i, c := range rj {
				row[i] = c.v
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}

// Write persists the seed file as indented JSON at path, creating the
// directory if needed.
func (f *SeedFile) Write(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSeedFile reads one seed file back.
func LoadSeedFile(path string) (*SeedFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f SeedFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return &f, nil
}

// Replay sweeps the stored relations and SQL across the full matrix
// with the given runner and reports the outcome. A fixed engine keeps
// returning a nil Divergence; a regression resurfaces here.
func (f *SeedFile) Replay(r *Runner) (*Outcome, error) {
	sc := &Scenario{Seed: f.Seed, Tables: f.tables(), Query: Query{Raw: f.SQL}}
	return r.Check(sc)
}
