package scenario

// Minimize delta-debugs a diverging scenario down to a small witness:
// it repeatedly tries structural simplifications — drop a disjunct,
// flatten a nesting level, strip a subquery's guards, shrink a
// relation, strip NULLs — keeping each candidate only if diverges
// still holds, until a full pass makes no progress. The result is the
// scenario a human debugs and the seed file a regression test replays.
func Minimize(sc *Scenario, diverges func(*Scenario) bool) *Scenario {
	cur := sc.Clone()
	for {
		next, changed := pass(cur, diverges)
		if !changed {
			return next
		}
		cur = next
	}
}

// pass tries every simplification once, left to right, returning the
// reduced scenario and whether anything stuck.
func pass(sc *Scenario, diverges func(*Scenario) bool) (*Scenario, bool) {
	changed := false
	try := func(c *Scenario) bool {
		if diverges(c) {
			sc = c
			changed = true
			return true
		}
		return false
	}

	// Drop whole disjuncts (keep at least one).
	for i := 0; len(sc.Query.Disjuncts) > 1 && i < len(sc.Query.Disjuncts); {
		c := sc.Clone()
		c.Query.Disjuncts = append(c.Query.Disjuncts[:i], c.Query.Disjuncts[i+1:]...)
		if !try(c) {
			i++
		}
	}

	// Flatten nesting and strip guards. Each strip only runs when it
	// would actually remove something: a no-op candidate equals the
	// current scenario, still diverges, and would count as progress
	// forever.
	strips := []struct {
		has   func(*Subquery) bool
		strip func(*Subquery)
	}{
		{func(s *Subquery) bool { return s.Inner != nil }, func(s *Subquery) { s.Inner = nil }},
		{func(s *Subquery) bool { return s.OrGuard != nil }, func(s *Subquery) { s.OrGuard = nil }},
		{func(s *Subquery) bool { return s.AndGuard != nil }, func(s *Subquery) { s.AndGuard = nil }},
	}
	for i := range sc.Query.Disjuncts {
		for _, st := range strips {
			if sub := sc.Query.Disjuncts[i].Sub; sub == nil || !st.has(sub) {
				continue
			}
			c := sc.Clone()
			st.strip(c.Query.Disjuncts[i].Sub)
			try(c)
		}
		// The inner level, when it survives, gets its guards stripped
		// too.
		for _, st := range strips[1:] {
			sub := sc.Query.Disjuncts[i].Sub
			if sub == nil || sub.Inner == nil || sub.Inner.Sub == nil || !st.has(sub.Inner.Sub) {
				continue
			}
			c := sc.Clone()
			st.strip(c.Query.Disjuncts[i].Sub.Inner.Sub)
			try(c)
		}
	}

	// Shrink relations: halves first (classic ddmin granularity), then
	// single rows.
	for ti := range sc.Tables {
		for {
			n := len(sc.Tables[ti].Rows)
			if n < 2 {
				break
			}
			c := sc.Clone()
			c.Tables[ti].Rows = c.Tables[ti].Rows[:n/2]
			if try(c) {
				continue
			}
			c = sc.Clone()
			c.Tables[ti].Rows = c.Tables[ti].Rows[n/2:]
			if !try(c) {
				break
			}
		}
		for ri := 0; len(sc.Tables[ti].Rows) > 0 && ri < len(sc.Tables[ti].Rows); {
			c := sc.Clone()
			c.Tables[ti].Rows = append(c.Tables[ti].Rows[:ri], c.Tables[ti].Rows[ri+1:]...)
			if !try(c) {
				ri++
			}
		}
	}

	// Strip NULLs last: a divergence that survives without NULLs is a
	// logic bug, not a three-valued-logic edge, and the simpler witness
	// is worth surfacing.
	if sc.HasNulls() {
		try(sc.StripNulls())
	}

	return sc, changed
}
