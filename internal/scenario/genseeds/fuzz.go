package main

// fuzz.go adds -fuzz-out: write one generator-derived corpus entry per
// grammar shape into the FuzzQuery seed corpus, so the fuzzer starts
// from structurally interesting nested disjunctive queries instead of
// discovering them by mutation.

import (
	"fmt"
	"os"
	"path/filepath"

	"disqo/internal/scenario"
)

// writeFuzzCorpus picks, per shape, the most complex scenario in the
// seed range and writes its SQL as a `go test fuzz v1` corpus entry.
func writeFuzzCorpus(dir string, seedMax uint64) error {
	best := map[scenario.Shape]*scenario.Scenario{}
	for seed := uint64(0); seed < seedMax; seed++ {
		sc := scenario.Generate(seed)
		cur := best[sc.Query.Shape]
		if cur == nil || scenario.Complexity(sc) > scenario.Complexity(cur) {
			best[sc.Query.Shape] = sc
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, shape := range scenario.Shapes() {
		sc := best[shape]
		if sc == nil {
			continue
		}
		entry := fmt.Sprintf("go test fuzz v1\nstring(%q)\n", sc.Query.SQL())
		path := filepath.Join(dir, fmt.Sprintf("seed-scenario-%s", shape))
		if err := os.WriteFile(path, []byte(entry), 0o644); err != nil {
			return err
		}
		fmt.Printf("genseeds: wrote %s (seed %d)\n", path, sc.Seed)
	}
	return nil
}
