// Command genseeds regenerates the checked-in scenario goldens: it
// scans a seed range, scores every generated scenario by structural
// complexity, verifies the hardest ones run divergence-free across the
// full differential matrix, and writes them to -out as seed files the
// root golden test replays on every run.
//
//	go run ./internal/scenario/genseeds -n 12 -range 500 -out testdata/scenario
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"disqo/internal/scenario"
)

func main() {
	var (
		n       = flag.Int("n", 12, "number of goldens to keep")
		seedMax = flag.Uint64("range", 500, "scan seeds [0, range)")
		out     = flag.String("out", "testdata/scenario", "output directory")
		fuzzOut = flag.String("fuzz-out", "", "also write per-shape fuzz corpus entries to this directory")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("genseeds: ")

	if *fuzzOut != "" {
		if err := writeFuzzCorpus(*fuzzOut, *seedMax); err != nil {
			log.Fatal(err)
		}
	}

	type scored struct {
		seed  uint64
		score int
	}
	var all []scored
	for seed := uint64(0); seed < *seedMax; seed++ {
		all = append(all, scored{seed, scenario.Complexity(scenario.Generate(seed))})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].seed < all[j].seed
	})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	r := &scenario.Runner{}
	kept := 0
	for _, s := range all {
		if kept == *n {
			break
		}
		sc := scenario.Generate(s.seed)
		outc, err := r.Check(sc)
		if err != nil {
			log.Fatalf("seed %d: %v", s.seed, err)
		}
		if outc.Divergence != nil {
			// A golden must be a passing witness; a diverging seed is an
			// engine bug to fix, not a golden to enshrine.
			log.Fatalf("seed %d diverges: %s", s.seed, outc.Divergence.Error())
		}
		f := scenario.ToSeedFile(sc,
			fmt.Sprintf("hardest-shape golden (%s, complexity %d)", sc.Query.Shape, s.score), "", "")
		path := filepath.Join(*out, fmt.Sprintf("golden-%03d.json", s.seed))
		if err := f.Write(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (shape %s, complexity %d)", path, sc.Query.Shape, s.score)
		kept++
	}
}
