package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"disqo"
	"disqo/internal/types"
)

// Config is one cell of the differential matrix.
type Config struct {
	Strategy disqo.Strategy
	Path     disqo.ExecutionPath
	Cache    string // "uncached", "cold", "warm", "prepared"
	Workers  int
	Nulls    disqo.NullMode
}

func (c Config) String() string {
	return fmt.Sprintf("%s/%s/%s/w%d/%s", c.Strategy, c.Path, c.Cache, c.Workers, c.Nulls)
}

// Divergence is two matrix cells disagreeing on one query: the
// engine's strategy-equivalence contract is broken (or, for a
// cross-mode check on NULL-free data, 2VL and 3VL split).
type Divergence struct {
	Seed    uint64
	SQL     string
	ConfigA string
	ConfigB string
	PrintA  string
	PrintB  string
	CrossVL bool // 2VL vs 3VL on NULL-free data, rather than intra-mode
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("scenario seed %d: %s and %s disagree on %q:\n--- %s ---\n%s--- %s ---\n%s",
		d.Seed, d.ConfigA, d.ConfigB, d.SQL, d.ConfigA, d.PrintA, d.ConfigB, d.PrintB)
}

// Outcome summarizes one scenario's sweep across the matrix.
type Outcome struct {
	Runs       int
	Errors     int // configs that returned a (uniform) engine error
	Divergence *Divergence
}

// Runner executes scenarios across the full strategy matrix and
// reports the first divergence. The zero value runs the complete
// matrix with a 2-second per-query timeout.
type Runner struct {
	// Timeout bounds each query; 0 means 2s.
	Timeout time.Duration
	// Workers lists the worker counts to sweep; nil means {1, 4}.
	Workers []int
	// Tamper, when set, rewrites the SQL a strategy executes — the
	// planted-bug seam the minimizer tests use to simulate an unsound
	// rewrite. Production sweeps leave it nil.
	Tamper func(s disqo.Strategy, sql string) string
}

func (r *Runner) timeout() time.Duration {
	if r.Timeout > 0 {
		return r.Timeout
	}
	return 2 * time.Second
}

func (r *Runner) workers() []int {
	if len(r.Workers) > 0 {
		return r.Workers
	}
	return []int{1, 4}
}

var strategies = []disqo.Strategy{disqo.Canonical, disqo.Unnested}
var paths = []disqo.ExecutionPath{disqo.PathRow, disqo.PathVector}
var modes = []disqo.NullMode{disqo.ThreeValuedNulls, disqo.TwoValuedNulls}

// Check sweeps one scenario across the full matrix. Within one null
// mode every cell must produce the identical fingerprint; additionally
// 2VL and 3VL must agree exactly on the scenario's NULL-free twin. A
// query that errors uniformly (every cell fails) is counted, not
// flagged — generated queries are valid, so that indicates a budget,
// not a divergence.
func (r *Runner) Check(sc *Scenario) (*Outcome, error) {
	out := &Outcome{}
	if err := r.sweep(sc, out); err != nil || out.Divergence != nil {
		return out, err
	}
	// Cross-logic identity: without NULLs, lifting Unknown→False is a
	// no-op, so the two logics must agree bit for bit. Run the twin
	// (or the scenario itself when it is already NULL-free) once per
	// mode on a reduced matrix and compare across modes.
	twin := sc
	if sc.HasNulls() {
		twin = sc.StripNulls()
	}
	return out, r.crossCheck(twin, out)
}

// sweep runs the intra-mode identity check: all cells of one null mode
// agree on the fingerprint.
func (r *Runner) sweep(sc *Scenario, out *Outcome) error {
	cached, err := buildDB(sc, true)
	if err != nil {
		return err
	}
	defer cached.Close()
	uncached, err := buildDB(sc, false)
	if err != nil {
		return err
	}
	defer uncached.Close()

	sql := sc.Query.SQL()
	for _, mode := range modes {
		var ref *runResult
		for _, strat := range strategies {
			stmtSQL := sql
			if r.Tamper != nil {
				stmtSQL = r.Tamper(strat, sql)
			}
			stmt, err := cached.Prepare(stmtSQL)
			if err != nil {
				return fmt.Errorf("scenario seed %d: prepare %q: %w", sc.Seed, stmtSQL, err)
			}
			for _, path := range paths {
				for _, w := range r.workers() {
					base := Config{Strategy: strat, Path: path, Workers: w, Nulls: mode}
					opts := []disqo.Option{
						disqo.WithStrategy(strat),
						disqo.WithExecutionPath(path),
						disqo.WithWorkers(w),
						disqo.WithNullMode(mode),
						disqo.WithTimeout(r.timeout()),
						disqo.WithTupleLimit(1_000_000),
					}
					run := func(cache string, exec func() (*disqo.Result, error)) bool {
						cfg := base
						cfg.Cache = cache
						res, err := exec()
						out.Runs++
						ref = out.compare(sc, sql, cfg, res, err, ref)
						return out.Divergence == nil
					}
					ok := run("uncached", func() (*disqo.Result, error) { return uncached.Query(stmtSQL, opts...) }) &&
						run("cold", func() (*disqo.Result, error) { return cached.Query(stmtSQL, opts...) }) &&
						run("warm", func() (*disqo.Result, error) { return cached.Query(stmtSQL, opts...) }) &&
						run("prepared", func() (*disqo.Result, error) { return stmt.Query(opts...) })
					if !ok {
						stmt.Close()
						return nil
					}
				}
			}
			stmt.Close()
		}
	}
	return nil
}

// crossCheck asserts 2VL ≡ 3VL on NULL-free data over a reduced matrix
// (strategy × path, warm cache, single worker count).
func (r *Runner) crossCheck(sc *Scenario, out *Outcome) error {
	db, err := buildDB(sc, true)
	if err != nil {
		return err
	}
	defer db.Close()
	sql := sc.Query.SQL()
	var ref *runResult
	for _, strat := range strategies {
		stmtSQL := sql
		if r.Tamper != nil {
			stmtSQL = r.Tamper(strat, sql)
		}
		for _, path := range paths {
			for _, mode := range modes {
				cfg := Config{Strategy: strat, Path: path, Cache: "warm", Workers: 1, Nulls: mode}
				res, err := db.Query(stmtSQL,
					disqo.WithStrategy(strat),
					disqo.WithExecutionPath(path),
					disqo.WithNullMode(mode),
					disqo.WithTimeout(r.timeout()),
					disqo.WithTupleLimit(1_000_000))
				out.Runs++
				ref = out.compareCross(sc, sql, cfg, res, err, ref)
				if out.Divergence != nil {
					return nil
				}
			}
		}
	}
	return nil
}

// runResult is the first successful (or first failing) cell a sweep
// saw — the reference every later cell is compared against.
type runResult struct {
	cfg   Config
	print string
	err   error
}

func (o *Outcome) compare(sc *Scenario, sql string, cfg Config, res *disqo.Result, err error, ref *runResult) *runResult {
	return o.compareRef(sc, sql, cfg, res, err, ref, false)
}

func (o *Outcome) compareCross(sc *Scenario, sql string, cfg Config, res *disqo.Result, err error, ref *runResult) *runResult {
	return o.compareRef(sc, sql, cfg, res, err, ref, true)
}

func (o *Outcome) compareRef(sc *Scenario, sql string, cfg Config, res *disqo.Result, err error, ref *runResult, cross bool) *runResult {
	cur := &runResult{cfg: cfg, err: err}
	if err == nil {
		cur.print = Fingerprint(res)
	} else {
		o.Errors++
	}
	if ref == nil {
		return cur
	}
	// Mode partitions the intra-mode check: cells of different modes
	// may legitimately differ when NULLs are in play. The cross check
	// compares across modes on purpose (NULL-free data).
	if !cross && cfg.Nulls != ref.cfg.Nulls {
		return &runResult{cfg: cfg, print: cur.print, err: err}
	}
	switch {
	case ref.err == nil && err == nil && ref.print != cur.print:
		o.Divergence = &Divergence{
			Seed: sc.Seed, SQL: sql, CrossVL: cross,
			ConfigA: ref.cfg.String(), ConfigB: cfg.String(),
			PrintA: ref.print, PrintB: cur.print,
		}
	case (ref.err == nil) != (err == nil):
		a, b := ref.print, cur.print
		if ref.err != nil {
			a = "error: " + ref.err.Error() + "\n"
		}
		if err != nil {
			b = "error: " + err.Error() + "\n"
		}
		o.Divergence = &Divergence{
			Seed: sc.Seed, SQL: sql, CrossVL: cross,
			ConfigA: ref.cfg.String(), ConfigB: cfg.String(),
			PrintA: a, PrintB: b,
		}
	}
	return ref
}

// Fingerprint renders a result order-insensitively: the column header
// plus every row formatted and sorted under the engine's NULLs-first
// total order. Two results with the same fingerprint are the same bag
// of tuples.
func Fingerprint(res *disqo.Result) string {
	rows := make([][]types.Value, len(res.Rows))
	copy(rows, res.Rows)
	sort.SliceStable(rows, func(i, j int) bool {
		return types.OrderTuples(rows[i], rows[j]) < 0
	})
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(types.FormatTuple(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// Load materializes the scenario's relations into db — the same tables
// the differential runner builds, exposed so `disqo -seed N` can
// reproduce a reported divergence in the interactive shell.
func Load(db *disqo.DB, sc *Scenario) error {
	for _, t := range sc.Tables {
		cols := make([]disqo.Column, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = disqo.Column{Name: c.Name, Type: c.Kind}
		}
		if err := db.CreateTable(t.Name, cols); err != nil {
			return err
		}
		if len(t.Rows) > 0 {
			if err := db.Insert(t.Name, t.Rows...); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildDB materializes the scenario's relations in a fresh in-memory
// engine, cached or not (the uncached engine is the matrix's
// "no result/plan reuse" column).
func buildDB(sc *Scenario, cached bool) (*disqo.DB, error) {
	var opts []disqo.OpenOption
	if !cached {
		opts = append(opts, disqo.WithoutCache())
	}
	db, err := disqo.Open(opts...)
	if err != nil {
		return nil, err
	}
	if err := Load(db, sc); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}
