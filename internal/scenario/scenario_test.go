package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"disqo"
	"disqo/internal/testutil"
)

// TestGeneratorDeterminism: the whole point of seeding — the same seed
// must reproduce the identical scenario, byte for byte, across calls.
func TestGeneratorDeterminism(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Query.SQL() != b.Query.SQL() {
			t.Fatalf("seed %d: SQL differs:\n%s\n%s", seed, a.Query.SQL(), b.Query.SQL())
		}
		aj, _ := json.Marshal(ToSeedFile(a, "", "", ""))
		bj, _ := json.Marshal(ToSeedFile(b, "", "", ""))
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: serialized scenarios differ", seed)
		}
	}
}

// TestGeneratorVariety: the grammar must actually cover its axes —
// every shape, NULLs somewhere, correlation disjunctions somewhere.
func TestGeneratorVariety(t *testing.T) {
	shapes := map[Shape]bool{}
	var nulls, orGuards, subforms int
	forms := map[SubForm]bool{}
	for seed := uint64(0); seed < 200; seed++ {
		sc := Generate(seed)
		shapes[sc.Query.Shape] = true
		if sc.HasNulls() {
			nulls++
		}
		for _, d := range sc.Query.Disjuncts {
			if d.Sub != nil {
				forms[d.Sub.Form] = true
				subforms++
				if d.Sub.OrGuard != nil {
					orGuards++
				}
			}
		}
	}
	if len(shapes) != 3 {
		t.Errorf("200 seeds covered shapes %v, want all 3", shapes)
	}
	if len(forms) != 5 {
		t.Errorf("200 seeds covered subquery forms %v, want all 5", forms)
	}
	if nulls < 100 {
		t.Errorf("only %d/200 scenarios have NULLs", nulls)
	}
	if orGuards == 0 {
		t.Error("no scenario generated a correlation disjunction")
	}
}

// TestGeneratedQueriesParse: every generated query must be accepted by
// the engine — the generator emits valid SQL by construction, so a
// parse or plan error is a generator bug, not an engine finding.
func TestGeneratedQueriesParse(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		sc := Generate(seed)
		db, err := buildDB(sc, true)
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		if _, err := db.Explain(sc.Query.SQL()); err != nil {
			t.Errorf("seed %d: %q does not plan: %v", seed, sc.Query.SQL(), err)
		}
		db.Close()
	}
}

// TestRunnerSweep runs a seed range through the full matrix and
// requires zero divergences — the engine's strategy-equivalence
// contract, enforced differentially. Default is a modest range so
// `go test ./...` stays quick; verify.sh sets SCENARIO_SEEDS=500 for
// the full sweep under -race.
func TestRunnerSweep(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r := &Runner{}
	seeds := uint64(40)
	if testing.Short() {
		seeds = 10
	}
	if env := os.Getenv("SCENARIO_SEEDS"); env != "" {
		n, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("bad SCENARIO_SEEDS %q: %v", env, err)
		}
		seeds = n
	}
	for seed := uint64(0); seed < seeds; seed++ {
		out, err := r.Check(Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Divergence != nil {
			t.Fatalf("seed %d diverged: %s", seed, out.Divergence.Error())
		}
	}
}

// TestMinimizerConvergence plants an unsound "rewrite" (the tamper
// seam flips the unnested strategy's top-level OR to AND), confirms
// the differential runner catches it, and requires the minimizer to
// shrink the witness to at most 3 disjuncts and a handful of rows —
// then round-trips the minimized witness through a seed file.
func TestMinimizerConvergence(t *testing.T) {
	tamper := func(s disqo.Strategy, sql string) string {
		if s == disqo.Unnested {
			return strings.Replace(sql, " OR ", " AND ", 1)
		}
		return sql
	}
	r := &Runner{Tamper: tamper}
	var sc *Scenario
	var firstDiv *Divergence
	for seed := uint64(0); seed < 50; seed++ {
		cand := Generate(seed)
		out, err := r.Check(cand)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Divergence != nil {
			sc, firstDiv = cand, out.Divergence
			break
		}
	}
	if sc == nil {
		t.Fatal("planted OR→AND bug was not caught in 50 seeds")
	}

	min := Minimize(sc, func(c *Scenario) bool {
		out, err := r.Check(c)
		return err == nil && out.Divergence != nil
	})
	if n := len(min.Query.Disjuncts); n > 3 {
		t.Errorf("minimized to %d disjuncts, want <= 3", n)
	}
	var rows int
	for _, tb := range min.Tables {
		rows += len(tb.Rows)
	}
	if orig := totalRows(sc); rows > orig {
		t.Errorf("minimization grew the data: %d rows from %d", rows, orig)
	}
	out, err := r.Check(min)
	if err != nil {
		t.Fatal(err)
	}
	if out.Divergence == nil {
		t.Fatal("minimized scenario no longer diverges")
	}

	// Emit and replay the seed file: with the tamper still planted the
	// divergence must reproduce from disk; with it removed the replay
	// must come back clean.
	path := filepath.Join(t.TempDir(), "planted.json")
	sf := ToSeedFile(min, "planted OR→AND tamper", firstDiv.ConfigA, firstDiv.ConfigB)
	if err := sf.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSeedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := loaded.Replay(r); err != nil || out.Divergence == nil {
		t.Fatalf("replay with planted bug: err=%v divergence=%v, want a divergence", err, out.Divergence)
	}
	if out, err := loaded.Replay(&Runner{}); err != nil || out.Divergence != nil {
		t.Fatalf("replay on healthy engine: err=%v divergence=%v, want clean", err, out.Divergence)
	}
}

func totalRows(sc *Scenario) int {
	var n int
	for _, tb := range sc.Tables {
		n += len(tb.Rows)
	}
	return n
}

// TestSeedFileRoundTrip: serialization preserves values exactly,
// NULLs included.
func TestSeedFileRoundTrip(t *testing.T) {
	sc := Generate(7)
	path := filepath.Join(t.TempDir(), "roundtrip.json")
	if err := ToSeedFile(sc, "roundtrip", "", "").Write(path); err != nil {
		t.Fatal(err)
	}
	f, err := LoadSeedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.SQL != sc.Query.SQL() {
		t.Fatalf("SQL mismatch: %q vs %q", f.SQL, sc.Query.SQL())
	}
	got := f.tables()
	if len(got) != len(sc.Tables) {
		t.Fatalf("table count %d, want %d", len(got), len(sc.Tables))
	}
	for i, tb := range got {
		want := sc.Tables[i]
		if len(tb.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d rows, want %d", tb.Name, len(tb.Rows), len(want.Rows))
		}
		for j, row := range tb.Rows {
			for k, v := range row {
				w := want.Rows[j][k]
				if v.IsNull() != w.IsNull() || v.String() != w.String() {
					t.Fatalf("%s[%d][%d]: %v, want %v", tb.Name, j, k, v, w)
				}
			}
		}
	}
}

// TestTwoValuedModeDiffers: sanity that WithNullMode is actually
// reaching evaluation — on data where a NULL comparison decides
// membership, 2VL (NULL = x is false) must return fewer rows than 3VL
// never... rather, the two modes must differ on a crafted query.
func TestTwoValuedModeDiffers(t *testing.T) {
	db, err := disqo.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("r", []disqo.Column{{Name: "a1", Type: disqo.TypeInt}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("r", []disqo.Value{disqo.Int(1)}, []disqo.Value{{}}); err != nil {
		t.Fatal(err)
	}
	// NOT (a1 = 0): 3VL drops the NULL row (unknown), 2VL keeps it
	// (a1 = 0 lifts to false, NOT false = true).
	const q = "SELECT * FROM r WHERE NOT (a1 = 0)"
	three, err := db.Query(q, disqo.WithNullMode(disqo.ThreeValuedNulls))
	if err != nil {
		t.Fatal(err)
	}
	two, err := db.Query(q, disqo.WithNullMode(disqo.TwoValuedNulls))
	if err != nil {
		t.Fatal(err)
	}
	if len(three.Rows) != 1 || len(two.Rows) != 2 {
		t.Fatalf("3VL returned %d rows and 2VL %d, want 1 and 2", len(three.Rows), len(two.Rows))
	}
}
