package scenario

import (
	"fmt"
	"strings"

	"disqo/internal/types"
)

// Shape classifies the nesting structure of a generated query, after
// the paper's taxonomy: one subquery (simple), a subquery inside a
// subquery (linear), or two subqueries under one disjunction (tree).
type Shape string

const (
	ShapeSimple Shape = "simple"
	ShapeLinear Shape = "linear"
	ShapeTree   Shape = "tree"
)

// Shapes lists every grammar shape, for corpus generation.
func Shapes() []Shape { return []Shape{ShapeSimple, ShapeLinear, ShapeTree} }

// SubForm is how a subquery links into its enclosing predicate.
type SubForm string

const (
	// FormScalar compares an aggregate subquery result: a1 = (SELECT ...).
	FormScalar SubForm = "scalar"
	// FormExists is [NOT] EXISTS (...).
	FormExists SubForm = "exists"
	// FormIn is col [NOT] IN (SELECT col ...).
	FormIn SubForm = "in"
	// FormAll is col θ ALL (...).
	FormAll SubForm = "all"
	// FormAny is col θ ANY (...).
	FormAny SubForm = "any"
)

// Query is the generated query's structure: a disjunction of atoms
// over table r. Keeping the structure (rather than just the rendered
// SQL) is what lets the minimizer drop disjuncts and flatten nesting.
type Query struct {
	Shape     Shape
	Disjuncts []Disjunct
	// Raw, when non-empty, overrides rendering — seed-file replay
	// executes the stored SQL verbatim rather than a re-rendered tree.
	Raw string
}

// Disjunct is one OR-branch of the outer WHERE. With Sub == nil it is
// a plain comparison of Col against a constant; otherwise the branch
// references a subquery in the form Sub.Form describes (a linking
// disjunction in the paper's sense — the subquery sits under OR).
type Disjunct struct {
	Col   string
	Op    string
	Const int64
	Str   string // non-empty: compare against this string literal instead
	Sub   *Subquery
}

// Subquery is one nested block. CorrInner θ CorrOuter is the
// correlation to the enclosing scope; OrGuard, when present, joins it
// by OR (a correlation disjunction — the case the paper's bypass
// technique exists for), AndGuard by AND. Inner nests one more level
// (linear shape), joined by OR when InnerOr.
type Subquery struct {
	Form  SubForm
	Neg   bool   // NOT EXISTS / NOT IN
	Table string // "s" or "t"
	Agg   string // COUNT(*), SUM, MIN, MAX — FormScalar only
	Col   string // selected or aggregated inner column

	CorrInner string
	CorrOp    string
	CorrOuter string

	OrGuard  *Guard
	AndGuard *Guard

	Inner   *Disjunct
	InnerOr bool
}

// Guard is a local (uncorrelated) predicate inside a subquery.
type Guard struct {
	Col   string
	Op    string
	Const int64
}

func (q Query) clone() Query {
	out := Query{Shape: q.Shape, Raw: q.Raw, Disjuncts: make([]Disjunct, len(q.Disjuncts))}
	for i, d := range q.Disjuncts {
		out.Disjuncts[i] = d.clone()
	}
	return out
}

func (d Disjunct) clone() Disjunct {
	if d.Sub != nil {
		d.Sub = d.Sub.clone()
	}
	return d
}

func (s *Subquery) clone() *Subquery {
	c := *s
	if s.OrGuard != nil {
		g := *s.OrGuard
		c.OrGuard = &g
	}
	if s.AndGuard != nil {
		g := *s.AndGuard
		c.AndGuard = &g
	}
	if s.Inner != nil {
		i := s.Inner.clone()
		c.Inner = &i
	}
	return &c
}

// Generate derives a complete scenario — relations and query — from
// one seed. Same seed, same bytes: the generator draws every choice
// from a splitmix64 stream seeded with it and nothing else.
func Generate(seed uint64) *Scenario {
	r := newRNG(seed)
	sc := &Scenario{Seed: seed}
	sc.Tables = []Table{
		genTable(r, "r", "a"),
		genTable(r, "s", "b"),
		genTable(r, "t", "c"),
	}
	sc.Query = genQuery(r)
	return sc
}

// genTable builds one small relation in the fuzzDB shape — X1,X2,X4
// integers and X3 a string — with skewed small domains (so joins and
// correlations actually match) and NULL-salted cells (so three-valued
// logic is exercised everywhere, not just on a dedicated column).
func genTable(r *rng, name, prefix string) Table {
	t := Table{Name: name, Columns: []Column{
		{Name: prefix + "1", Kind: types.KindInt},
		{Name: prefix + "2", Kind: types.KindInt},
		{Name: prefix + "3", Kind: types.KindString},
		{Name: prefix + "4", Kind: types.KindInt},
	}}
	rows := 4 + r.intn(7) // 4..10
	strs := []string{"a", "b", "c", "d", "ab", "abc"}
	for i := 0; i < rows; i++ {
		row := make([]types.Value, 4)
		// Skew: col1 piles onto 0 so equality correlations hit often.
		v1 := int64(r.intn(4))
		if r.pct(40) {
			v1 = 0
		}
		row[0] = types.NewInt(v1)
		row[1] = types.NewInt(int64(r.intn(3)))
		row[2] = types.NewString(strs[r.intn(len(strs))])
		row[3] = types.NewInt(int64(r.intn(8)) * 500)
		// NULL-salt after the draw so the value stream is stable under
		// different salting rates.
		for c := range row {
			p := 15
			if c == 2 {
				p = 10
			}
			if r.pct(p) {
				row[c] = types.Null()
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func genQuery(r *rng) Query {
	q := Query{Shape: Shapes()[r.intn(3)]}
	switch q.Shape {
	case ShapeSimple:
		q.Disjuncts = append(q.Disjuncts, genSubDisjunct(r, "s", "b", "a", false))
	case ShapeLinear:
		q.Disjuncts = append(q.Disjuncts, genSubDisjunct(r, "s", "b", "a", true))
	case ShapeTree:
		q.Disjuncts = append(q.Disjuncts,
			genSubDisjunct(r, "s", "b", "a", false),
			genSubDisjunct(r, "t", "c", "a", false))
	}
	// 1..2 plain disjuncts alongside, so the subqueries always sit
	// under a disjunction (the linking-disjunction case).
	for n := 1 + r.intn(2); n > 0; n-- {
		q.Disjuncts = append(q.Disjuncts, genPlain(r, "a"))
	}
	// Deterministic shuffle so subquery position varies across seeds.
	for i := len(q.Disjuncts) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		q.Disjuncts[i], q.Disjuncts[j] = q.Disjuncts[j], q.Disjuncts[i]
	}
	return q
}

// genPlain draws a subquery-free comparison over the given prefix.
func genPlain(r *rng, prefix string) Disjunct {
	if r.pct(20) {
		return Disjunct{Col: prefix + "3", Op: r.pick("=", "<>"), Str: r.pick("a", "b", "ab")}
	}
	col, c := genIntColConst(r, prefix)
	return Disjunct{Col: col, Op: genOp(r), Const: c}
}

// genIntColConst pairs an integer column with a constant from its
// domain, so comparisons are selective rather than vacuous.
func genIntColConst(r *rng, prefix string) (string, int64) {
	switch r.intn(3) {
	case 0:
		return prefix + "1", int64(r.intn(4))
	case 1:
		return prefix + "2", int64(r.intn(3))
	default:
		return prefix + "4", int64(r.intn(8)) * 500
	}
}

func genOp(r *rng) string { return r.pick("=", "<>", "<", "<=", ">", ">=") }

// genSubDisjunct draws one subquery-bearing disjunct: the nested block
// plus, for the forms that need it (scalar compare, IN, ALL, ANY), the
// outer column and operator it links through.
func genSubDisjunct(r *rng, table, inner, outer string, nest bool) Disjunct {
	sub := genSubquery(r, table, inner, outer, nest)
	d := Disjunct{Sub: sub}
	switch sub.Form {
	case FormScalar, FormAll, FormAny:
		d.Col, _ = genIntColConst(r, outer)
		d.Op = genOp(r)
	case FormIn:
		// Pair the outer column with the selected inner column so the
		// membership test compares matching domains.
		d.Col = outer + strings.TrimPrefix(sub.Col, inner)
	}
	return d
}

// genSubquery draws one nested block over table (with column prefix
// inner), correlated to the enclosing scope's prefix outer. nest adds
// one more level over t (the linear shape).
func genSubquery(r *rng, table, inner, outer string, nest bool) *Subquery {
	s := &Subquery{Table: table}
	switch n := r.intn(100); {
	case n < 40:
		s.Form = FormScalar
	case n < 60:
		s.Form = FormExists
		s.Neg = r.pct(30)
	case n < 75:
		s.Form = FormIn
		s.Neg = r.pct(30)
	case n < 85:
		s.Form = FormAll
	default:
		s.Form = FormAny
	}

	intCols := []string{inner + "1", inner + "2", inner + "4"}
	s.Col = intCols[r.intn(3)]
	if s.Form == FormScalar {
		if r.pct(30) {
			s.Agg = "COUNT"
		} else {
			s.Agg = r.pick("SUM", "MIN", "MAX")
		}
	}

	// Correlation on a matching column pair; equality dominates so the
	// rewrite's semijoin machinery is reachable.
	k := r.pick("1", "2", "4")
	s.CorrInner, s.CorrOuter = inner+k, outer+k
	if r.pct(70) {
		s.CorrOp = "="
	} else {
		s.CorrOp = genOp(r)
	}

	if r.pct(50) {
		g := genGuard(r, inner)
		s.OrGuard = &g
	}
	if r.pct(30) {
		g := genGuard(r, inner)
		s.AndGuard = &g
	}

	if nest {
		d := genSubDisjunct(r, "t", "c", inner, false)
		s.Inner = &d
		s.InnerOr = r.pct(50)
	}
	return s
}

func genGuard(r *rng, prefix string) Guard {
	col, c := genIntColConst(r, prefix)
	return Guard{Col: col, Op: genOp(r), Const: c}
}

// SQL renders the query. The outer disjunction joins at the top level;
// inner composite predicates are parenthesized explicitly so the
// rendered text parses back to exactly the generated structure.
func (q Query) SQL() string {
	if q.Raw != "" {
		return q.Raw
	}
	parts := make([]string, len(q.Disjuncts))
	for i, d := range q.Disjuncts {
		parts[i] = d.render()
	}
	return "SELECT DISTINCT * FROM r WHERE " + strings.Join(parts, " OR ")
}

func (d Disjunct) render() string {
	if d.Sub == nil {
		if d.Str != "" {
			return fmt.Sprintf("%s %s '%s'", d.Col, d.Op, d.Str)
		}
		return fmt.Sprintf("%s %s %d", d.Col, d.Op, d.Const)
	}
	s := d.Sub
	switch s.Form {
	case FormScalar:
		agg := s.Agg + "(" + s.Col + ")"
		if s.Agg == "COUNT" {
			agg = "COUNT(*)"
		}
		return fmt.Sprintf("%s %s (SELECT %s FROM %s WHERE %s)", d.Col, d.Op, agg, s.Table, s.where())
	case FormExists:
		not := ""
		if s.Neg {
			not = "NOT "
		}
		return fmt.Sprintf("%sEXISTS (SELECT * FROM %s WHERE %s)", not, s.Table, s.where())
	case FormIn:
		kw := "IN"
		if s.Neg {
			kw = "NOT IN"
		}
		return fmt.Sprintf("%s %s (SELECT %s FROM %s WHERE %s)", d.Col, kw, s.Col, s.Table, s.where())
	case FormAll:
		return fmt.Sprintf("%s %s ALL (SELECT %s FROM %s WHERE %s)", d.Col, d.Op, s.Col, s.Table, s.where())
	default: // FormAny
		return fmt.Sprintf("%s %s ANY (SELECT %s FROM %s WHERE %s)", d.Col, d.Op, s.Col, s.Table, s.where())
	}
}

func (s *Subquery) where() string {
	expr := fmt.Sprintf("%s %s %s", s.CorrInner, s.CorrOp, s.CorrOuter)
	if s.OrGuard != nil {
		expr += " OR " + s.OrGuard.render()
	}
	if s.AndGuard != nil {
		if s.OrGuard != nil {
			expr = "(" + expr + ")"
		}
		expr += " AND " + s.AndGuard.render()
	}
	if s.Inner != nil {
		join := " AND "
		if s.InnerOr {
			join = " OR "
		}
		expr = "(" + expr + ")" + join + s.Inner.render()
	}
	return expr
}

func (g Guard) render() string {
	return fmt.Sprintf("%s %s %d", g.Col, g.Op, g.Const)
}
