// Package scenario is the adversarial scenario engine: a seeded,
// grammar-based generator of nested disjunctive scalar queries paired
// with a seeded data generator that NULL-salts and skews small
// relations, a differential runner that executes every generated query
// across the full strategy matrix — canonical vs. unnested × row vs.
// vector path × cached (cold/warm/prepared) vs. uncached × worker
// counts — requiring identical result fingerprints, and a
// delta-debugging minimizer that shrinks any divergence to a small
// replayable seed file checked into testdata/scenario/.
//
// Everything is derived deterministically from one uint64 seed: the
// same seed always produces byte-identical tables and SQL, so a
// reported divergence is reproducible from its seed alone
// (`disqo -seed N` territory; see README).
package scenario

import "disqo/internal/types"

// Scenario is one generated test case: three small relations (the
// paper's r/s/t shape) and one nested disjunctive query over them.
type Scenario struct {
	Seed   uint64
	Tables []Table
	Query  Query
}

// Table is one generated relation with concrete rows (NULLs included).
type Table struct {
	Name    string
	Columns []Column
	Rows    [][]types.Value
}

// Column is one column of a generated relation.
type Column struct {
	Name string
	Kind types.Kind
}

// Clone deep-copies the scenario so the minimizer can mutate
// candidates without touching the original.
func (s *Scenario) Clone() *Scenario {
	out := &Scenario{Seed: s.Seed, Query: s.Query.clone()}
	out.Tables = make([]Table, len(s.Tables))
	for i, t := range s.Tables {
		nt := Table{Name: t.Name, Columns: append([]Column(nil), t.Columns...)}
		nt.Rows = make([][]types.Value, len(t.Rows))
		for j, r := range t.Rows {
			nt.Rows[j] = append([]types.Value(nil), r...)
		}
		out.Tables[i] = nt
	}
	return out
}

// HasNulls reports whether any cell of any table is NULL.
func (s *Scenario) HasNulls() bool {
	for _, t := range s.Tables {
		for _, r := range t.Rows {
			for _, v := range r {
				if v.IsNull() {
					return true
				}
			}
		}
	}
	return false
}

// StripNulls replaces every NULL cell with the column type's zero
// value, producing the NULL-free twin used for the 2VL/3VL identity
// cross-check (the two logics must agree exactly without NULLs).
func (s *Scenario) StripNulls() *Scenario {
	out := s.Clone()
	for ti := range out.Tables {
		t := &out.Tables[ti]
		for _, row := range t.Rows {
			for ci, v := range row {
				if !v.IsNull() {
					continue
				}
				if t.Columns[ci].Kind == types.KindString {
					row[ci] = types.NewString("")
				} else {
					row[ci] = types.NewInt(0)
				}
			}
		}
	}
	return out
}

// Complexity scores how hard a scenario works the optimizer: subquery
// atoms, nesting depth, correlation disjunctions, guards, disjunct
// count, and NULL-salted cells all add weight. Used to pick the
// hardest generated shapes as checked-in goldens.
func Complexity(sc *Scenario) int {
	score := len(sc.Query.Disjuncts)
	var walk func(d Disjunct)
	walk = func(d Disjunct) {
		s := d.Sub
		if s == nil {
			return
		}
		score += 3
		if s.OrGuard != nil {
			score += 2
		}
		if s.AndGuard != nil {
			score++
		}
		if s.Neg {
			score++
		}
		if s.Inner != nil {
			score += 2
			walk(*s.Inner)
		}
	}
	for _, d := range sc.Query.Disjuncts {
		walk(d)
	}
	for _, t := range sc.Tables {
		for _, r := range t.Rows {
			for _, v := range r {
				if v.IsNull() {
					score++
				}
			}
		}
	}
	return score
}

// rng is a splitmix64 stream: tiny, fast, and deterministic — the same
// generator idiom internal/datagen uses, so scenarios reproduce
// bit-identically from their seed on any platform.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pct(p int) bool { return r.intn(100) < p }

func (r *rng) pick(ss ...string) string { return ss[r.intn(len(ss))] }
