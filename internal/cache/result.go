package cache

import (
	"context"
	"sync"
)

// ResultKey identifies one cached query result: the fingerprint of the
// physical plan the executor would run (internal/physical.Fingerprint
// over the main plan and every subquery plan), the strategy (S1 and
// Canonical share a physical plan but differ in execution counters),
// and the version of every referenced table rendered as a sorted
// "name@version" list. Any committed write to a referenced table
// changes its version, so stale entries stop matching by construction —
// a hit is always byte-identical to a fresh execution against the same
// snapshot.
type ResultKey struct {
	Fingerprint uint64
	Strategy    string
	Nulls       string
	Tables      string
}

// Outcome classifies what Acquire decided for a query.
type Outcome int

const (
	// Hit: the value was served from the cache; no execution needed.
	Hit Outcome = iota
	// Owner: the caller must execute and report through Finish; any
	// concurrent identical query waits on the caller's Flight.
	Owner
	// Waiter: another query is executing this key; call Flight.Wait.
	Waiter
	// Solo: the caller must execute but neither owns a flight nor
	// fills the cache (a fault-injected query arriving while another
	// flight is in progress runs alone so its fault surfaces in it).
	Solo
)

// Flight is one in-progress execution that concurrent identical
// queries wait on (single-flight).
type Flight struct {
	done   chan struct{}
	val    any
	err    error
	closed bool // guarded by the owning cache's mutex
}

// Wait blocks until the flight owner finishes (or ctx is done) and
// returns the owner's value or error. A nil ctx waits indefinitely;
// plan dependencies cannot cycle, so the owner always finishes.
func (f *Flight) Wait(ctx context.Context) (any, error) {
	if ctx == nil {
		<-f.done
		return f.val, f.err
	}
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// resultEntry is one resident result with its invalidation index and
// shared-budget charge.
type resultEntry struct {
	val    any
	tables []string
	tuples int64
}

// ResultCache is the LRU result tier with single-flight dogpile
// protection and table-version invalidation. Cached tuples are charged
// against the DB-wide shared budget through the TryCharge/Release
// hooks, so cached rows and live queries compete for one memory pool:
// a fill the budget cannot admit evicts colder entries to make room,
// and gives up (skipping the cache) rather than over-committing.
type ResultCache struct {
	mu      sync.Mutex
	lru     *lru
	byTable map[string]map[ResultKey]struct{}
	flights map[ResultKey]*Flight

	// tryCharge/release pin and unpin cached tuples against the shared
	// execution budget; nil hooks always admit.
	tryCharge func(int64) bool
	release   func(int64)

	hits, misses, waits, evictions, invalidations int64
}

// NewResultCache returns a result cache bounded to capBytes (> 0).
// tryCharge/release, when non-nil, account cached tuples against the
// shared execution budget (exec.Budget.TryCharge / Release).
func NewResultCache(capBytes int64, tryCharge func(int64) bool, release func(int64)) *ResultCache {
	return &ResultCache{
		lru:       newLRU(capBytes),
		byTable:   make(map[string]map[ResultKey]struct{}),
		flights:   make(map[ResultKey]*Flight),
		tryCharge: tryCharge,
		release:   release,
	}
}

// Acquire decides how a query at this key proceeds. readThrough allows
// answering from a resident entry; join allows waiting on another
// query's in-progress flight. Both are false for fault-injected
// queries, which must execute so their fault surfaces in them — but
// when no flight is in progress they still become Owner, so concurrent
// clean queries coalesce behind them (and observe the owner's failure
// as their own clean error, never a poisoned entry).
//
// The miss-check and flight registration happen under one lock, so of
// N concurrent identical cold queries exactly one becomes Owner.
func (c *ResultCache) Acquire(k ResultKey, readThrough, join bool) (any, *Flight, Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if readThrough {
		if e, ok := c.lru.get(k); ok {
			c.hits++
			return e.(*resultEntry).val, nil, Hit
		}
		c.misses++
	}
	if f, ok := c.flights[k]; ok {
		if join {
			c.waits++
			return nil, f, Waiter
		}
		return nil, nil, Solo
	}
	f := &Flight{done: make(chan struct{})}
	c.flights[k] = f
	return nil, f, Owner
}

// Finish completes an owned flight: the value (or error) is published
// to every waiter, and on success the value is stored — sized at bytes
// for LRU accounting and tuples for the shared budget, indexed under
// its referenced tables for invalidation. Idempotent: only the first
// call for a flight takes effect, so callers may defer a failure
// Finish as a safety net.
func (c *ResultCache) Finish(k ResultKey, f *Flight, val any, verr error, bytes, tuples int64, tables []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.val, f.err = val, verr
	if c.flights[k] == f {
		delete(c.flights, k)
	}
	close(f.done)
	if verr != nil || val == nil {
		return
	}
	c.storeLocked(k, val, bytes, tuples, tables)
}

func (c *ResultCache) storeLocked(k ResultKey, val any, bytes, tuples int64, tables []string) {
	if old, ok := c.lru.remove(k); ok {
		c.releaseEntryLocked(k, old.val.(*resultEntry))
	}
	// Charge the shared budget first: cached rows compete with live
	// queries for one pool, so an over-budget fill evicts colder
	// entries until the charge fits — or skips caching entirely.
	for c.tryCharge != nil && !c.tryCharge(tuples) {
		if !c.lru.evictOldest(c.onEvict) {
			return
		}
	}
	e := &resultEntry{val: val, tables: tables, tuples: tuples}
	c.lru.put(k, e, bytes, c.onEvict)
	if _, still := c.lru.items[k]; !still {
		// The entry was larger than the whole capacity and evicted
		// itself; onEvict already released its charge and index.
		return
	}
	for _, t := range tables {
		set := c.byTable[t]
		if set == nil {
			set = make(map[ResultKey]struct{})
			c.byTable[t] = set
		}
		set[k] = struct{}{}
	}
}

// onEvict releases an LRU-evicted entry's budget charge and index.
func (c *ResultCache) onEvict(key, val any, _ int64) {
	c.evictions++
	c.releaseEntryLocked(key.(ResultKey), val.(*resultEntry))
}

func (c *ResultCache) releaseEntryLocked(k ResultKey, e *resultEntry) {
	if c.release != nil {
		c.release(e.tuples)
	}
	for _, t := range e.tables {
		if set := c.byTable[t]; set != nil {
			delete(set, k)
			if len(set) == 0 {
				delete(c.byTable, t)
			}
		}
	}
}

// InvalidateTables drops every entry referencing any of the named
// tables, returning how many were dropped. Version-keyed entries can
// never be served stale even without this call; invalidating eagerly
// reclaims their memory (and budget charge) the moment a write commits.
func (c *ResultCache) InvalidateTables(names ...string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for _, n := range names {
		set := c.byTable[n]
		if len(set) == 0 {
			continue
		}
		keys := make([]ResultKey, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		for _, k := range keys {
			if e, ok := c.lru.remove(k); ok {
				c.releaseEntryLocked(k, e.val.(*resultEntry))
				c.invalidations++
				dropped++
			}
		}
	}
	return dropped
}

// ResetStats zeroes the tier's counters without touching its entries or
// in-progress flights — the hook behind db.ResetStats.
func (c *ResultCache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.waits, c.evictions, c.invalidations = 0, 0, 0, 0, 0
}

// Stats snapshots the tier counters.
func (c *ResultCache) Stats() TierStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TierStats{
		Hits: c.hits, Misses: c.misses, Waits: c.waits,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Entries: c.lru.len(), Bytes: c.lru.bytes,
	}
}
