// Package cache implements disqo's caching tier: a byte-accounted LRU
// core shared by the plan cache (PlanCache — parsed, translated, and
// rewritten logical plans keyed by normalized SQL, strategy, and
// catalog version) and the result cache (ResultCache — materialized
// query results keyed by physical-plan fingerprint plus the version of
// every referenced table, with single-flight dogpile protection).
//
// Invalidation leans on the copy-on-write catalog from
// internal/catalog: every DML/DDL commit bumps the catalog version and
// stamps the new per-table versions, so plan-cache keys simply stop
// matching after any commit, and result-cache keys stop matching after
// a commit to any referenced table. The explicit InvalidateTables path
// exists to reclaim memory eagerly (and observably) the moment a write
// commits — correctness never depends on it.
//
// All types are safe for concurrent use.
package cache

import "container/list"

// TierStats is a point-in-time snapshot of one cache tier's counters.
type TierStats struct {
	// Hits counts lookups answered from the cache.
	Hits int64 `json:"hits"`
	// Misses counts lookups that found nothing and went on to execute.
	Misses int64 `json:"misses"`
	// Waits counts queries that joined another query's in-progress
	// execution instead of running their own (single-flight; result
	// tier only).
	Waits int64 `json:"waits,omitempty"`
	// Evictions counts entries dropped by LRU capacity or budget
	// pressure.
	Evictions int64 `json:"evictions"`
	// Invalidations counts entries dropped because a write committed to
	// a table they referenced (result tier only).
	Invalidations int64 `json:"invalidations,omitempty"`
	// Entries and Bytes describe the current residency.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// lruEntry is one resident cache entry.
type lruEntry struct {
	key   any
	val   any
	bytes int64
}

// lru is the shared byte-accounted LRU core. Not self-locking: the
// owning cache serializes access under its own mutex so lookups,
// single-flight bookkeeping, and eviction callbacks stay atomic.
type lru struct {
	capBytes int64
	bytes    int64
	ll       *list.List
	items    map[any]*list.Element
}

func newLRU(capBytes int64) *lru {
	return &lru{capBytes: capBytes, ll: list.New(), items: make(map[any]*list.Element)}
}

// get returns the entry and marks it most recently used.
func (l *lru) get(key any) (any, bool) {
	el, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts (or replaces) an entry, then evicts least-recently-used
// entries until the byte capacity holds, reporting each eviction to
// onEvict. An entry larger than the whole capacity is evicted
// immediately — the cache never over-commits.
func (l *lru) put(key, val any, bytes int64, onEvict func(key, val any, bytes int64)) {
	if el, ok := l.items[key]; ok {
		old := el.Value.(*lruEntry)
		l.bytes += bytes - old.bytes
		old.val, old.bytes = val, bytes
		l.ll.MoveToFront(el)
	} else {
		l.items[key] = l.ll.PushFront(&lruEntry{key: key, val: val, bytes: bytes})
		l.bytes += bytes
	}
	for l.capBytes > 0 && l.bytes > l.capBytes {
		if !l.evictOldest(onEvict) {
			return
		}
	}
}

// evictOldest drops the least-recently-used entry, reporting it to
// onEvict; false when the cache is empty.
func (l *lru) evictOldest(onEvict func(key, val any, bytes int64)) bool {
	el := l.ll.Back()
	if el == nil {
		return false
	}
	e := el.Value.(*lruEntry)
	l.removeElement(el)
	if onEvict != nil {
		onEvict(e.key, e.val, e.bytes)
	}
	return true
}

// remove drops one entry by key, returning it.
func (l *lru) remove(key any) (*lruEntry, bool) {
	el, ok := l.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*lruEntry)
	l.removeElement(el)
	return e, true
}

func (l *lru) removeElement(el *list.Element) {
	e := el.Value.(*lruEntry)
	l.ll.Remove(el)
	delete(l.items, e.key)
	l.bytes -= e.bytes
}

func (l *lru) len() int { return l.ll.Len() }
