package cache

import "sync"

// PlanKey identifies one cached logical plan. SQL is the normalized
// statement text; CatalogVersion and ViewEpoch pin the schema state the
// plan was derived against — any DDL or DML commit bumps the catalog
// version, and any view definition change bumps the view epoch, so a
// stale plan simply stops matching rather than needing eager
// invalidation.
type PlanKey struct {
	SQL            string
	Strategy       string
	Nulls          string
	CatalogVersion uint64
	ViewEpoch      uint64
}

// PlanCache is the LRU plan tier: it stores the output of parse +
// translate + rewrite (an immutable logical tree plus its rewrite
// trace) so repeated statements skip the optimizer entirely. Values are
// opaque to the cache; the caller accounts their size in bytes.
type PlanCache struct {
	mu                      sync.Mutex
	lru                     *lru
	hits, misses, evictions int64
}

// NewPlanCache returns a plan cache bounded to capBytes (> 0).
func NewPlanCache(capBytes int64) *PlanCache {
	return &PlanCache{lru: newLRU(capBytes)}
}

// Get returns the cached plan for the key, if present.
func (c *PlanCache) Get(k PlanKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.lru.get(k)
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put stores a plan under the key, charging bytes against the capacity.
func (c *PlanCache) Put(k PlanKey, v any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.put(k, v, bytes, func(any, any, int64) { c.evictions++ })
}

// ResetStats zeroes the tier's counters without touching its entries —
// the hook behind db.ResetStats, so delta measurements start from a
// clean slate while the cache stays warm.
func (c *PlanCache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// Stats snapshots the tier counters.
func (c *PlanCache) Stats() TierStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TierStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.lru.len(), Bytes: c.lru.bytes,
	}
}
