package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPlanCacheHitMissEvict(t *testing.T) {
	c := NewPlanCache(100)
	k1 := PlanKey{SQL: "q1", Strategy: "unnested", CatalogVersion: 1}
	if _, ok := c.Get(k1); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(k1, "plan1", 60)
	if v, ok := c.Get(k1); !ok || v != "plan1" {
		t.Fatalf("expected hit with plan1, got %v %v", v, ok)
	}
	// A different catalog version is a different key.
	k2 := k1
	k2.CatalogVersion = 2
	if _, ok := c.Get(k2); ok {
		t.Fatal("stale key matched across catalog versions")
	}
	// Inserting past capacity evicts the LRU entry (k1 — k2's put is newer).
	c.Put(k2, "plan2", 60)
	if _, ok := c.Get(k1); ok {
		t.Fatal("expected k1 evicted by capacity pressure")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != 60 {
		t.Fatalf("bytes = %d, want 60", st.Bytes)
	}
}

func TestPlanCacheReplaceAccountsBytes(t *testing.T) {
	c := NewPlanCache(100)
	k := PlanKey{SQL: "q"}
	c.Put(k, "a", 40)
	c.Put(k, "b", 70)
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 70 {
		t.Fatalf("stats after replace = %+v", st)
	}
	if v, _ := c.Get(k); v != "b" {
		t.Fatalf("got %v, want replaced value", v)
	}
}

func TestResultCacheHitAndVersionedKey(t *testing.T) {
	c := NewResultCache(1<<20, nil, nil)
	k := ResultKey{Fingerprint: 7, Strategy: "unnested", Tables: "r@1;"}
	v, f, out := c.Acquire(k, true, true)
	if out != Owner || v != nil || f == nil {
		t.Fatalf("cold acquire: %v %v %v", v, f, out)
	}
	c.Finish(k, f, "rows", nil, 100, 10, []string{"r"})
	v, _, out = c.Acquire(k, true, true)
	if out != Hit || v != "rows" {
		t.Fatalf("warm acquire: %v %v", v, out)
	}
	// A bumped table version is a different key: miss, new flight.
	k2 := k
	k2.Tables = "r@2;"
	_, f2, out := c.Acquire(k2, true, true)
	if out != Owner {
		t.Fatalf("versioned acquire outcome = %v, want Owner", out)
	}
	c.Finish(k2, f2, nil, errors.New("boom"), 0, 0, nil)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResultCacheSingleFlight(t *testing.T) {
	c := NewResultCache(1<<20, nil, nil)
	k := ResultKey{Fingerprint: 1}
	_, owner, out := c.Acquire(k, true, true)
	if out != Owner {
		t.Fatalf("first acquire = %v, want Owner", out)
	}
	const n = 8
	var wg sync.WaitGroup
	vals := make([]any, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		_, f, out := c.Acquire(k, true, true)
		if out != Waiter {
			t.Fatalf("concurrent acquire = %v, want Waiter", out)
		}
		wg.Add(1)
		go func(i int, f *Flight) {
			defer wg.Done()
			vals[i], errs[i] = f.Wait(context.Background())
		}(i, f)
	}
	c.Finish(k, owner, "shared", nil, 10, 1, []string{"r"})
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil || vals[i] != "shared" {
			t.Fatalf("waiter %d got %v %v", i, vals[i], errs[i])
		}
	}
	if st := c.Stats(); st.Waits != n {
		t.Fatalf("waits = %d, want %d", st.Waits, n)
	}
}

func TestResultCacheFlightErrorNotCached(t *testing.T) {
	c := NewResultCache(1<<20, nil, nil)
	k := ResultKey{Fingerprint: 2}
	_, owner, _ := c.Acquire(k, true, true)
	_, waiter, out := c.Acquire(k, true, true)
	if out != Waiter {
		t.Fatalf("second acquire = %v", out)
	}
	boom := errors.New("boom")
	c.Finish(k, owner, nil, boom, 0, 0, nil)
	if _, err := waiter.Wait(nil); !errors.Is(err, boom) {
		t.Fatalf("waiter err = %v, want boom", err)
	}
	// The failure must not poison the cache: the next acquire owns a
	// fresh flight rather than hitting a bad entry.
	v, f, out := c.Acquire(k, true, true)
	if out != Owner || v != nil {
		t.Fatalf("post-failure acquire = %v %v, want Owner", v, out)
	}
	c.Finish(k, f, "good", nil, 10, 1, nil)
	if v, _, out := c.Acquire(k, true, true); out != Hit || v != "good" {
		t.Fatalf("recovery acquire = %v %v", v, out)
	}
}

func TestResultCacheFinishIdempotent(t *testing.T) {
	c := NewResultCache(1<<20, nil, nil)
	k := ResultKey{Fingerprint: 3}
	_, f, _ := c.Acquire(k, true, true)
	c.Finish(k, f, "first", nil, 10, 1, nil)
	// The deferred safety-net Finish in the caller must not clobber.
	c.Finish(k, f, nil, errors.New("late"), 0, 0, nil)
	if v, _, out := c.Acquire(k, true, true); out != Hit || v != "first" {
		t.Fatalf("acquire after double finish = %v %v", v, out)
	}
}

func TestResultCacheWaitContextCancel(t *testing.T) {
	c := NewResultCache(1<<20, nil, nil)
	k := ResultKey{Fingerprint: 4}
	_, owner, _ := c.Acquire(k, true, true)
	_, waiter, _ := c.Acquire(k, true, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := waiter.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	c.Finish(k, owner, nil, errors.New("late"), 0, 0, nil)
}

func TestResultCacheBypassPolicies(t *testing.T) {
	c := NewResultCache(1<<20, nil, nil)
	k := ResultKey{Fingerprint: 5}
	_, f, _ := c.Acquire(k, true, true)
	c.Finish(k, f, "cached", nil, 10, 1, nil)

	// readThrough=false skips the resident entry but still takes flight
	// ownership when the key is idle.
	v, f2, out := c.Acquire(k, false, false)
	if out != Owner || v != nil {
		t.Fatalf("bypass acquire over resident entry = %v %v, want Owner", v, out)
	}
	// While that flight is open, another bypass query runs Solo.
	if _, _, out := c.Acquire(k, false, false); out != Solo {
		t.Fatalf("bypass acquire over open flight = %v, want Solo", out)
	}
	c.Finish(k, f2, "refreshed", nil, 10, 1, nil)
	if v, _, out := c.Acquire(k, true, true); out != Hit || v != "refreshed" {
		t.Fatalf("post-bypass acquire = %v %v", v, out)
	}
}

func TestResultCacheInvalidateTables(t *testing.T) {
	c := NewResultCache(1<<20, nil, nil)
	fill := func(fp uint64, tables ...string) {
		k := ResultKey{Fingerprint: fp}
		_, f, _ := c.Acquire(k, true, true)
		c.Finish(k, f, fp, nil, 10, 1, tables)
	}
	fill(1, "r")
	fill(2, "r", "s")
	fill(3, "s")
	fill(4, "t")
	if n := c.InvalidateTables("r"); n != 2 {
		t.Fatalf("invalidate r dropped %d, want 2", n)
	}
	if n := c.InvalidateTables("r"); n != 0 {
		t.Fatalf("second invalidate dropped %d, want 0", n)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Invalidations != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if _, _, out := c.Acquire(ResultKey{Fingerprint: 3}, true, true); out != Hit {
		t.Fatalf("entry on surviving table lost: %v", out)
	}
}

func TestResultCacheBudgetChargeAndEvictToFit(t *testing.T) {
	var resident atomic.Int64
	const limit = 25
	tryCharge := func(n int64) bool {
		for {
			cur := resident.Load()
			if cur+n > limit {
				return false
			}
			if resident.CompareAndSwap(cur, cur+n) {
				return true
			}
		}
	}
	release := func(n int64) { resident.Add(-n) }
	c := NewResultCache(1<<20, tryCharge, release)
	fill := func(fp uint64, tuples int64) {
		k := ResultKey{Fingerprint: fp}
		_, f, _ := c.Acquire(k, true, true)
		c.Finish(k, f, fp, nil, tuples, tuples, []string{"r"})
	}
	fill(1, 10)
	fill(2, 10)
	if resident.Load() != 20 {
		t.Fatalf("resident = %d, want 20", resident.Load())
	}
	// 10 more tuples does not fit; the cache evicts entry 1 (LRU) to
	// make room and ends balanced.
	fill(3, 10)
	if resident.Load() != 20 {
		t.Fatalf("resident after evict-to-fit = %d, want 20", resident.Load())
	}
	if _, _, out := c.Acquire(ResultKey{Fingerprint: 1}, true, true); out == Hit {
		t.Fatal("LRU entry survived budget pressure")
	}
	// A fill larger than the whole budget empties the cache, fails to
	// charge, and leaves nothing pinned.
	k := ResultKey{Fingerprint: 9}
	_, f, out := c.Acquire(k, true, true)
	if out != Owner {
		t.Fatalf("acquire = %v", out)
	}
	c.Finish(k, f, "big", nil, 100, 100, []string{"r"})
	if resident.Load() != 0 {
		t.Fatalf("resident after oversized fill = %d, want 0", resident.Load())
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d, want 0", st.Entries)
	}
	// Invalidation releases the budget charge of dropped entries.
	fill(10, 10)
	if resident.Load() != 10 {
		t.Fatalf("resident = %d", resident.Load())
	}
	c.InvalidateTables("r")
	if resident.Load() != 0 {
		t.Fatalf("resident after invalidate = %d, want 0", resident.Load())
	}
}

func TestResultCacheConcurrentSingleOwner(t *testing.T) {
	c := NewResultCache(1<<20, nil, nil)
	k := ResultKey{Fingerprint: 42}
	const n = 16
	var owners atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, f, out := c.Acquire(k, true, true)
			switch out {
			case Owner:
				owners.Add(1)
				c.Finish(k, f, "v", nil, 1, 1, nil)
			case Waiter:
				if got, err := f.Wait(context.Background()); err != nil || got != "v" {
					t.Errorf("waiter got %v %v", got, err)
				}
			case Hit:
				if v != "v" {
					t.Errorf("hit got %v", v)
				}
			default:
				t.Errorf("unexpected outcome %v", out)
			}
		}()
	}
	close(start)
	wg.Wait()
	if owners.Load() != 1 {
		t.Fatalf("owners = %d, want exactly 1", owners.Load())
	}
}
