// Package storage implements disqo's in-memory relations: ordered
// attribute schemas, bag-semantics tuple containers, and the base-table
// heap the executor scans. It is the substrate the paper's Natix engine
// provides; here everything lives in memory (DESIGN.md §4).
package storage

import (
	"fmt"
	"sort"
	"strings"

	"disqo/internal/types"
)

// Schema is an ordered list of attribute names. Attributes are qualified
// ("r.a1") after translation from SQL; intermediate operators introduce
// unqualified synthetic names ("g", "g1", "t#"). A(R) in the paper's
// notation is exactly this list.
type Schema struct {
	attrs []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. Duplicate names panic:
// the translator is responsible for disambiguating via renaming, and a
// duplicate slipping through would silently mis-resolve columns.
func NewSchema(attrs ...string) *Schema {
	s := &Schema{attrs: append([]string(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range s.attrs {
		if _, dup := s.index[a]; dup {
			panic(fmt.Sprintf("storage: duplicate attribute %q in schema", a))
		}
		s.index[a] = i
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attrs returns the attribute names in order. The slice is shared; do not
// mutate.
func (s *Schema) Attrs() []string { return s.attrs }

// Attr returns the i-th attribute name.
func (s *Schema) Attr(i int) string { return s.attrs[i] }

// Index returns the position of attribute name, or -1 when absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the attribute.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Concat returns the schema of a tuple concatenation x ◦ y.
func (s *Schema) Concat(o *Schema) *Schema {
	attrs := make([]string, 0, len(s.attrs)+len(o.attrs))
	attrs = append(attrs, s.attrs...)
	attrs = append(attrs, o.attrs...)
	return NewSchema(attrs...)
}

// Extend returns the schema with one attribute appended (χ, Γ, ν results).
func (s *Schema) Extend(name string) *Schema {
	attrs := make([]string, 0, len(s.attrs)+1)
	attrs = append(attrs, s.attrs...)
	attrs = append(attrs, name)
	return NewSchema(attrs...)
}

// Rename returns a schema with old replaced by new (ρ new←old).
func (s *Schema) Rename(old, new string) (*Schema, error) {
	i := s.Index(old)
	if i < 0 {
		return nil, fmt.Errorf("storage: rename: no attribute %q", old)
	}
	attrs := append([]string(nil), s.attrs...)
	attrs[i] = new
	return NewSchema(attrs...), nil
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as [a, b, c].
func (s *Schema) String() string {
	return "[" + strings.Join(s.attrs, ", ") + "]"
}

// Projection resolves a list of attribute names into column positions,
// erroring on any that are missing.
func (s *Schema) Projection(names []string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		p := s.Index(n)
		if p < 0 {
			return nil, fmt.Errorf("storage: projection: no attribute %q in %s", n, s)
		}
		idx[i] = p
	}
	return idx, nil
}

// Relation is a bag of tuples over a schema. Operators materialize their
// output as Relations; the DAG executor memoizes them per plan node.
type Relation struct {
	Schema *Schema
	Tuples [][]types.Value
}

// NewRelation returns an empty relation over the schema.
func NewRelation(s *Schema) *Relation {
	return &Relation{Schema: s}
}

// Cardinality returns the number of tuples (bag count).
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// Append adds a tuple. The tuple length must match the schema; this is a
// programming error so it panics rather than returning an error.
func (r *Relation) Append(t []types.Value) {
	if len(t) != r.Schema.Len() {
		panic(fmt.Sprintf("storage: tuple arity %d vs schema %s", len(t), r.Schema))
	}
	r.Tuples = append(r.Tuples, t)
}

// Clone returns a deep copy: both the tuple slice and every row are
// independent of the original, so mutating a cloned row can never alias
// tuples pinned elsewhere (the executor memo, a returned result set).
// Use ShallowClone when only the slice needs to be independent.
func (r *Relation) Clone() *Relation {
	tuples := make([][]types.Value, len(r.Tuples))
	for i, t := range r.Tuples {
		tuples[i] = append([]types.Value(nil), t...)
	}
	return &Relation{Schema: r.Schema, Tuples: tuples}
}

// ShallowClone returns a relation sharing row storage but with an
// independent tuple slice: appending to or reordering the clone does
// not affect the original, but the rows themselves are shared.
func (r *Relation) ShallowClone() *Relation {
	return &Relation{Schema: r.Schema, Tuples: append([][]types.Value(nil), r.Tuples...)}
}

// CloneAppend returns a new relation over the same schema whose tuple
// slice is a freshly allocated copy of r's with extra appended — the
// copy-on-write step behind snapshot isolation. The receiver is never
// touched and the result shares no slice storage with it, so readers
// holding r keep a stable view while the new version circulates; the
// rows themselves are shared (they are immutable once stored).
func (r *Relation) CloneAppend(extra ...[]types.Value) *Relation {
	tuples := make([][]types.Value, 0, len(r.Tuples)+len(extra))
	tuples = append(tuples, r.Tuples...)
	tuples = append(tuples, extra...)
	return &Relation{Schema: r.Schema, Tuples: tuples}
}

// Distinct returns a relation with duplicate tuples removed under
// Identical semantics (NULLs collate equal), preserving first-seen order.
func (r *Relation) Distinct() *Relation {
	out := NewRelation(r.Schema)
	seen := make(map[uint64][][]types.Value, len(r.Tuples))
next:
	for _, t := range r.Tuples {
		h := types.HashTuple(t)
		for _, prev := range seen[h] {
			if types.TuplesIdentical(prev, t) {
				continue next
			}
		}
		seen[h] = append(seen[h], t)
		out.Tuples = append(out.Tuples, t)
	}
	return out
}

// SortBy sorts tuples in place by the given column positions and
// directions (true = descending). The sort is stable so ORDER BY ties
// keep input order.
func (r *Relation) SortBy(cols []int, desc []bool) {
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		a, b := r.Tuples[i], r.Tuples[j]
		for k, c := range cols {
			cmp := types.OrderValues(a[c], b[c])
			if cmp == 0 {
				continue
			}
			if k < len(desc) && desc[k] {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
}

// Canonical returns the tuples rendered and sorted lexicographically —
// the comparison form used by result-equivalence tests where order is
// immaterial.
func (r *Relation) Canonical() []string {
	out := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = types.FormatTuple(t)
	}
	sort.Strings(out)
	return out
}

// String renders the relation for debugging: schema then tuples, one per
// line, in stored order.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Schema.String())
	for _, t := range r.Tuples {
		b.WriteByte('\n')
		b.WriteString(types.FormatTuple(t))
	}
	return b.String()
}
