package storage

import (
	"testing"

	"disqo/internal/types"
)

func intRel(vals ...int64) *Relation {
	r := NewRelation(NewSchema("a", "b"))
	for _, v := range vals {
		r.Append([]types.Value{types.NewInt(v), types.NewInt(v * 10)})
	}
	return r
}

func TestBatchRoundTrip(t *testing.T) {
	rel := intRel(1, 2, 3, 4)
	b := NewBatch(rel)
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	got := b.Rows()
	if got.Cardinality() != 4 {
		t.Fatalf("Rows() cardinality = %d, want 4", got.Cardinality())
	}
	for i, row := range got.Tuples {
		for j, v := range row {
			if !types.Equal(v, rel.Tuples[i][j]) {
				t.Fatalf("round trip changed [%d][%d]: %v != %v", i, j, v, rel.Tuples[i][j])
			}
		}
	}
}

func TestBatchTypedColumns(t *testing.T) {
	rel := intRel(7, 8, 9)
	b := NewBatch(rel)
	cv := b.Col(0)
	if cv.Kind != types.KindInt || cv.Ints == nil || cv.Mixed != nil || cv.Nulls != nil {
		t.Fatalf("pure int column did not build a typed vector: %+v", cv)
	}
	for i, want := range []int64{7, 8, 9} {
		if cv.Ints[i] != want {
			t.Fatalf("Ints[%d] = %d, want %d", i, cv.Ints[i], want)
		}
		if !types.Equal(cv.Value(i), types.NewInt(want)) {
			t.Fatalf("Value(%d) != %d", i, want)
		}
	}
}

func TestBatchNullsKeepTypedVector(t *testing.T) {
	r := NewRelation(NewSchema("a"))
	r.Append([]types.Value{types.Null()})
	r.Append([]types.Value{types.NewInt(5)})
	r.Append([]types.Value{types.Null()})
	b := NewBatch(r)
	cv := b.Col(0)
	if cv.Kind != types.KindInt || cv.Nulls == nil {
		t.Fatalf("NULL-bearing int column lost its typed vector: %+v", cv)
	}
	if !cv.Nulls[0] || cv.Nulls[1] || !cv.Nulls[2] {
		t.Fatalf("null mask wrong: %v", cv.Nulls)
	}
	if !cv.Value(0).IsNull() || !types.Equal(cv.Value(1), types.NewInt(5)) {
		t.Fatal("Value() does not reconstruct NULLs")
	}
}

func TestBatchMixedKindDegrades(t *testing.T) {
	r := NewRelation(NewSchema("a"))
	r.Append([]types.Value{types.NewInt(1)})
	r.Append([]types.Value{types.NewString("x")})
	b := NewBatch(r)
	cv := b.Col(0)
	if cv.Mixed == nil {
		t.Fatalf("mixed-kind column should fall back to Mixed: %+v", cv)
	}
	if !types.Equal(cv.Value(0), types.NewInt(1)) || !types.Equal(cv.Value(1), types.NewString("x")) {
		t.Fatal("mixed column does not reproduce values")
	}
}

func TestGatherSharesRows(t *testing.T) {
	rel := intRel(1, 2, 3, 4, 5)
	out := rel.Gather([]int32{4, 1, 3})
	if out.Cardinality() != 3 {
		t.Fatalf("Cardinality = %d, want 3", out.Cardinality())
	}
	for i, src := range []int{4, 1, 3} {
		if &out.Tuples[i][0] != &rel.Tuples[src][0] {
			t.Fatalf("gathered row %d is a copy, want shared backing with source row %d", i, src)
		}
	}
}

func TestBatchMaterializeIdempotent(t *testing.T) {
	rel := intRel(1, 2)
	b := NewBatch(rel)
	b.Materialize([]int{0, 1})
	c0 := b.Col(0)
	b.Materialize([]int{0})
	if b.Col(0) != c0 {
		t.Fatal("Materialize rebuilt an already-built column")
	}
}
