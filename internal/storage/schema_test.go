package storage

import (
	"testing"
	"testing/quick"

	"disqo/internal/types"
)

func ints(vs ...int64) []types.Value {
	out := make([]types.Value, len(vs))
	for i, v := range vs {
		out[i] = types.NewInt(v)
	}
	return out
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("r.a", "r.b", "r.c")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("r.b") != 1 || s.Index("nope") != -1 {
		t.Error("Index wrong")
	}
	if !s.Has("r.c") || s.Has("r.d") {
		t.Error("Has wrong")
	}
	if s.Attr(0) != "r.a" {
		t.Error("Attr wrong")
	}
	if s.String() != "[r.a, r.b, r.c]" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attribute must panic")
		}
	}()
	NewSchema("a", "a")
}

func TestSchemaConcatExtendRename(t *testing.T) {
	s := NewSchema("a", "b")
	o := NewSchema("c")
	cat := s.Concat(o)
	if cat.String() != "[a, b, c]" {
		t.Errorf("Concat = %s", cat)
	}
	ext := s.Extend("g")
	if ext.String() != "[a, b, g]" {
		t.Errorf("Extend = %s", ext)
	}
	ren, err := s.Rename("b", "b2")
	if err != nil || ren.String() != "[a, b2]" {
		t.Errorf("Rename = %s (%v)", ren, err)
	}
	if _, err := s.Rename("zz", "x"); err == nil {
		t.Error("renaming a missing attribute must error")
	}
	// Originals untouched.
	if s.String() != "[a, b]" {
		t.Error("Rename mutated the source schema")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := NewSchema("x", "y")
	b := NewSchema("x", "y")
	c := NewSchema("y", "x")
	if !a.Equal(b) || a.Equal(c) || a.Equal(NewSchema("x")) {
		t.Error("Equal wrong")
	}
}

func TestSchemaProjection(t *testing.T) {
	s := NewSchema("a", "b", "c")
	idx, err := s.Projection([]string{"c", "a"})
	if err != nil || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Projection = %v (%v)", idx, err)
	}
	if _, err := s.Projection([]string{"zz"}); err == nil {
		t.Error("missing attribute must error")
	}
}

func TestRelationAppendArity(t *testing.T) {
	r := NewRelation(NewSchema("a", "b"))
	r.Append(ints(1, 2))
	if r.Cardinality() != 1 {
		t.Fatal("append failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	r.Append(ints(1))
}

func TestRelationDistinct(t *testing.T) {
	r := NewRelation(NewSchema("a", "b"))
	r.Append(ints(1, 2))
	r.Append(ints(1, 2))
	r.Append(ints(2, 1))
	r.Append([]types.Value{types.Null(), types.NewInt(1)})
	r.Append([]types.Value{types.Null(), types.NewInt(1)})
	d := r.Distinct()
	if d.Cardinality() != 3 {
		t.Fatalf("Distinct kept %d tuples, want 3:\n%s", d.Cardinality(), d)
	}
	// Source unchanged; first-seen order preserved.
	if r.Cardinality() != 5 {
		t.Error("Distinct mutated its input")
	}
	if !types.TuplesIdentical(d.Tuples[0], ints(1, 2)) {
		t.Error("Distinct did not preserve first-seen order")
	}
}

func TestRelationSortBy(t *testing.T) {
	r := NewRelation(NewSchema("a", "b"))
	r.Append(ints(2, 1))
	r.Append(ints(1, 2))
	r.Append(ints(1, 1))
	r.Append([]types.Value{types.Null(), types.NewInt(9)})
	r.SortBy([]int{0, 1}, []bool{false, true})
	want := [][]types.Value{
		{types.Null(), types.NewInt(9)},
		ints(1, 2),
		ints(1, 1),
		ints(2, 1),
	}
	for i := range want {
		if !types.TuplesIdentical(r.Tuples[i], want[i]) {
			t.Fatalf("row %d = %s, want %s", i,
				types.FormatTuple(r.Tuples[i]), types.FormatTuple(want[i]))
		}
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := NewRelation(NewSchema("a"))
	r.Append(ints(1))
	c := r.Clone()
	c.Append(ints(2))
	if r.Cardinality() != 1 || c.Cardinality() != 2 {
		t.Error("Clone shares the tuple slice")
	}
	// Deep copy: mutating a cloned row must not reach the original.
	c.Tuples[0][0] = types.NewInt(99)
	if !types.TuplesIdentical(r.Tuples[0], ints(1)) {
		t.Error("Clone shares row storage; mutation aliased the original")
	}
}

func TestRelationShallowCloneSharesRows(t *testing.T) {
	r := NewRelation(NewSchema("a"))
	r.Append(ints(1))
	c := r.ShallowClone()
	c.Append(ints(2))
	if r.Cardinality() != 1 || c.Cardinality() != 2 {
		t.Error("ShallowClone shares the tuple slice")
	}
	if &r.Tuples[0][0] != &c.Tuples[0][0] {
		t.Error("ShallowClone must share row storage")
	}
}

func TestRelationCanonical(t *testing.T) {
	r := NewRelation(NewSchema("a"))
	r.Append(ints(2))
	r.Append(ints(1))
	got := r.Canonical()
	if len(got) != 2 || got[0] != "(1)" || got[1] != "(2)" {
		t.Errorf("Canonical = %v", got)
	}
}

// Property tests on relation invariants (testing/quick).

func TestDistinctIdempotentProperty(t *testing.T) {
	f := func(data []int16) bool {
		r := NewRelation(NewSchema("a", "b"))
		for i := 0; i+1 < len(data); i += 2 {
			v1 := types.NewInt(int64(data[i] % 4))
			v2 := types.NewInt(int64(data[i+1] % 4))
			if data[i]%7 == 0 {
				v1 = types.Null()
			}
			r.Append([]types.Value{v1, v2})
		}
		d1 := r.Distinct()
		d2 := d1.Distinct()
		if d1.Cardinality() != d2.Cardinality() {
			return false
		}
		// Every distinct tuple appears in the original and vice versa.
		for _, tup := range d1.Tuples {
			found := false
			for _, orig := range r.Tuples {
				if types.TuplesIdentical(tup, orig) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return d1.Cardinality() <= r.Cardinality()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortByPermutationProperty(t *testing.T) {
	f := func(data []int16, desc bool) bool {
		r := NewRelation(NewSchema("a"))
		for _, d := range data {
			v := types.NewInt(int64(d))
			if d%11 == 0 {
				v = types.Null()
			}
			r.Append([]types.Value{v})
		}
		before := r.Canonical() // sorted rendering = multiset fingerprint
		r.SortBy([]int{0}, []bool{desc})
		after := r.Canonical()
		for i := range before {
			if before[i] != after[i] {
				return false // sort must be a permutation
			}
		}
		// Order must be monotone under OrderValues.
		for i := 1; i < len(r.Tuples); i++ {
			c := types.OrderValues(r.Tuples[i-1][0], r.Tuples[i][0])
			if (!desc && c > 0) || (desc && c < 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
