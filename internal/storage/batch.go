package storage

import (
	"sync"
	"sync/atomic"

	"disqo/internal/types"
)

// Batch is the columnar view of a Relation: per-attribute typed vectors
// built lazily, column by column, over the same tuples the row heap
// holds. A Batch never copies or mutates rows — vectorized operators
// read columns here and emit results as selection vectors (row indices
// into the underlying relation), so converting back to the row
// representation is a pointer gather (see Relation.Gather) and the two
// execution paths share row identity byte for byte.
//
// Column construction is idempotent and safe for concurrent use: the
// first caller to touch a column builds its vector under a mutex and
// publishes it through an atomic pointer; later callers (morsel workers,
// canonical per-outer-tuple re-evaluations) load it wait-free.
type Batch struct {
	rel  *Relation
	mu   sync.Mutex
	cols []atomic.Pointer[ColVec]
}

// NewBatch wraps a relation in its columnar view without materializing
// any column yet.
func NewBatch(rel *Relation) *Batch {
	return &Batch{rel: rel, cols: make([]atomic.Pointer[ColVec], rel.Schema.Len())}
}

// Relation returns the row heap the batch is a view of.
func (b *Batch) Relation() *Relation { return b.rel }

// Len is the number of rows in the batch.
func (b *Batch) Len() int { return len(b.rel.Tuples) }

// Col returns column i's vector, building it on first use.
func (b *Batch) Col(i int) *ColVec {
	if c := b.cols[i].Load(); c != nil {
		return c
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := b.cols[i].Load(); c != nil {
		return c
	}
	c := buildColVec(b.rel, i)
	b.cols[i].Store(c)
	return c
}

// Materialize builds the given columns eagerly — called once by the
// coordinator before fanning morsel workers out, so workers only take
// the wait-free load path.
func (b *Batch) Materialize(cols []int) {
	for _, i := range cols {
		b.Col(i)
	}
}

// Rows reconstructs a row relation from the columnar vectors alone —
// the batch→row boundary conversion. It is used by tests to prove the
// round trip is lossless; the executor itself never needs it because
// batches keep the originating rows alive.
func (b *Batch) Rows() *Relation {
	out := NewRelation(b.rel.Schema)
	n, w := b.Len(), b.rel.Schema.Len()
	out.Tuples = make([][]types.Value, n)
	for i := 0; i < n; i++ {
		row := make([]types.Value, w)
		for c := 0; c < w; c++ {
			row[c] = b.Col(c).Value(i)
		}
		out.Tuples[i] = row
	}
	return out
}

// ColVec is one attribute's values in columnar form. When every non-NULL
// entry shares a kind the payloads live in a typed slice (plus a
// null bitmap when NULLs occur); columns mixing kinds fall back to a
// boxed Value slice. Vectors are immutable once built.
type ColVec struct {
	// Kind is the uniform kind of the non-NULL entries; KindNull for an
	// all-NULL column. Meaningless when Mixed is set.
	Kind types.Kind
	// Exactly one typed slice is non-nil for a uniform column.
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	// Nulls marks NULL positions; nil when the column has none.
	Nulls []bool
	// Mixed is the boxed fallback for columns whose non-NULL entries
	// span more than one kind; all typed slices are nil then.
	Mixed []types.Value
}

// Value boxes entry i back into the row representation.
func (c *ColVec) Value(i int) types.Value {
	if c.Mixed != nil {
		return c.Mixed[i]
	}
	if c.Nulls != nil && c.Nulls[i] {
		return types.Null()
	}
	switch c.Kind {
	case types.KindInt:
		return types.NewInt(c.Ints[i])
	case types.KindFloat:
		return types.NewFloat(c.Floats[i])
	case types.KindString:
		return types.NewString(c.Strs[i])
	case types.KindBool:
		return types.NewBool(c.Bools[i])
	default:
		return types.Null()
	}
}

// buildColVec scans column idx once. It keeps the typed representation
// as long as all non-NULL entries agree on a kind and degrades to the
// boxed form the moment they do not.
func buildColVec(rel *Relation, idx int) *ColVec {
	n := len(rel.Tuples)
	cv := &ColVec{Kind: types.KindNull}
	for i := 0; i < n; i++ {
		v := rel.Tuples[i][idx]
		if v.IsNull() {
			if cv.Nulls == nil {
				cv.Nulls = make([]bool, n)
			}
			cv.Nulls[i] = true
			cv.appendZero()
			continue
		}
		if cv.Kind == types.KindNull {
			cv.retype(v.Kind(), n, i)
		} else if v.Kind() != cv.Kind {
			return buildMixed(rel, idx)
		}
		switch cv.Kind {
		case types.KindInt:
			iv, _ := v.IntOk()
			cv.Ints = append(cv.Ints, iv)
		case types.KindFloat:
			fv, _ := v.FloatOk()
			cv.Floats = append(cv.Floats, fv)
		case types.KindString:
			sv, _ := v.StrOk()
			cv.Strs = append(cv.Strs, sv)
		case types.KindBool:
			bv, _ := v.BoolOk()
			cv.Bools = append(cv.Bools, bv)
		}
	}
	return cv
}

// retype switches an all-NULL-so-far column to kind k, backfilling the
// i zero slots already consumed.
func (c *ColVec) retype(k types.Kind, cap, i int) {
	c.Kind = k
	switch k {
	case types.KindInt:
		c.Ints = make([]int64, i, cap)
	case types.KindFloat:
		c.Floats = make([]float64, i, cap)
	case types.KindString:
		c.Strs = make([]string, i, cap)
	case types.KindBool:
		c.Bools = make([]bool, i, cap)
	}
}

// appendZero keeps the typed slice index-aligned across a NULL slot.
func (c *ColVec) appendZero() {
	switch c.Kind {
	case types.KindInt:
		c.Ints = append(c.Ints, 0)
	case types.KindFloat:
		c.Floats = append(c.Floats, 0)
	case types.KindString:
		c.Strs = append(c.Strs, "")
	case types.KindBool:
		c.Bools = append(c.Bools, false)
	}
}

func buildMixed(rel *Relation, idx int) *ColVec {
	n := len(rel.Tuples)
	cv := &ColVec{Mixed: make([]types.Value, n)}
	for i := 0; i < n; i++ {
		cv.Mixed[i] = rel.Tuples[i][idx]
	}
	return cv
}

// Gather materializes a selection vector back into a row relation. The
// output shares the selected row slices with r — no per-row copying —
// which is what keeps the vectorized path's results byte-identical to
// the row path's.
func (r *Relation) Gather(sel []int32) *Relation {
	out := NewRelation(r.Schema)
	out.Tuples = make([][]types.Value, len(sel))
	for i, idx := range sel {
		out.Tuples[i] = r.Tuples[idx]
	}
	return out
}
