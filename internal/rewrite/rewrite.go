// Package rewrite implements the paper's unnesting strategy: it removes
// nested scalar subqueries from canonical plans by applying the five
// algebraic equivalences of §3 —
//
//	Eqv. 1  conjunctive linking (group + outerjoin, count-bug defaults)
//	Eqv. 2  disjunctive linking, cheap predicate bypassed first
//	Eqv. 3  disjunctive linking, unnested subquery bypassed first
//	Eqv. 4  disjunctive correlation, decomposable aggregate (fI/fO split)
//	Eqv. 5  disjunctive correlation, general case (ν + bypass join +
//	        binary grouping)
//
// — choosing between 2 and 3 by predicate rank, recursing for linear and
// tree nesting structures, and translating the technical report's
// quantified subqueries (EXISTS/NOT EXISTS/IN/NOT IN) into count-based
// linking predicates so the same machinery covers them.
package rewrite

import (
	"fmt"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/stats"
	"disqo/internal/types"
)

// Caps selects which rewrites a Rewriter may apply; baselines model
// weaker optimizers by disabling capabilities.
type Caps struct {
	// Conjunctive enables Eqv. 1 (and its binary-grouping generalization
	// for non-equality correlation).
	Conjunctive bool
	// Bypass enables the Eqv. 2/3 bypass cascades for disjunctive
	// linking.
	Bypass bool
	// DisjunctiveCorrelation enables Eqv. 4 and Eqv. 5.
	DisjunctiveCorrelation bool
	// Quantified enables the EXISTS/IN → COUNT conversions (technical
	// report extension).
	Quantified bool
	// SemiJoins translates *conjunctive* correlated EXISTS / NOT EXISTS /
	// IN predicates directly into semi-/anti-joins instead of the
	// count-based form (disjunctive occurrences always go through the
	// count conversion, which composes with the bypass cascade).
	SemiJoins bool
	// ORExpansion replaces a disjunctive selection by a union of
	// conjunctive branches (duplicate-eliminating); the strategy the S2
	// baseline models. Sound only under a later Distinct, so it is
	// applied only when the plan has one.
	ORExpansion bool
	// PreferEqv5 forces Equivalence 5 even where Equivalence 4's
	// preconditions hold — an ablation knob quantifying what
	// decomposability buys.
	PreferEqv5 bool
}

// AllCaps enables the full unnesting strategy of the paper.
func AllCaps() Caps {
	return Caps{Conjunctive: true, Bypass: true, DisjunctiveCorrelation: true,
		Quantified: true, SemiJoins: true}
}

// Rewriter rewrites plans. Create one per statement (fresh-name counter).
type Rewriter struct {
	est  *stats.Estimator
	caps Caps
	ctr  int
	memo map[algebra.Op]algebra.Op
	// nulls is the logic the rewritten plan will execute under. Most
	// equivalences are mode-independent, but NNF negation of
	// comparisons/quantified comparisons and the NOT IN count form are
	// sound only in the logic they were derived in, so the rewriter
	// must know which one applies (see negate and quantToCount).
	nulls types.NullMode
	// reorder, when set, turns the rewriter into a pure predicate
	// reorderer (see Reorderer) instead of an unnester.
	reorder *Reorderer
	// Trace records the equivalences applied, in order — used by tests
	// and surfaced by EXPLAIN.
	Trace []string
}

// New returns a Rewriter using catalog statistics for its cost-based
// decisions; cat may be the live catalog or a pinned snapshot.
func New(cat catalog.Reader, caps Caps) *Rewriter {
	return &Rewriter{est: stats.New(cat), caps: caps, memo: make(map[algebra.Op]algebra.Op)}
}

// WithNulls sets the null mode the rewritten plan targets and returns
// the rewriter for chaining.
func (rw *Rewriter) WithNulls(m types.NullMode) *Rewriter {
	rw.nulls = m
	return rw
}

// fresh generates a plan-unique synthetic attribute name not colliding
// with the schema of the given operator.
func (rw *Rewriter) fresh(base string, near algebra.Op) string {
	for {
		rw.ctr++
		name := fmt.Sprintf("%s%d", base, rw.ctr)
		if near == nil || !near.Schema().Has(name) {
			return name
		}
	}
}

func (rw *Rewriter) trace(format string, args ...any) {
	rw.Trace = append(rw.Trace, fmt.Sprintf(format, args...))
}

// Rewrite unnests a plan. The input plan is not mutated; shared DAG
// structure in the input remains shared in the output.
func (rw *Rewriter) Rewrite(plan algebra.Op) (algebra.Op, error) {
	return rw.rewriteOp(plan)
}

func (rw *Rewriter) rewriteOp(op algebra.Op) (algebra.Op, error) {
	if out, ok := rw.memo[op]; ok {
		return out, nil
	}
	out, err := rw.rewriteOpRaw(op)
	if err != nil {
		return nil, err
	}
	rw.memo[op] = out
	return out, nil
}

func (rw *Rewriter) rewriteOpRaw(op algebra.Op) (algebra.Op, error) {
	if sel, ok := op.(*algebra.Select); ok {
		if rw.reorder != nil {
			child, err := rw.rewriteOp(sel.Child)
			if err != nil {
				return nil, err
			}
			pred, err := rw.rewriteExpr(sel.Pred)
			if err != nil {
				return nil, err
			}
			return algebra.NewSelect(child, rw.reorder.reorderExpr(pred, child)), nil
		}
		newOp, changed, err := rw.unnestSelect(sel)
		if err != nil {
			return nil, err
		}
		if changed {
			// The rewritten structure may contain further unnestable
			// selections (linear/tree queries); recurse into it. The
			// recursion terminates because every successful application
			// removes at least one subquery from a selection predicate.
			return rw.rewriteChildren(newOp)
		}
	}
	if m, ok := op.(*algebra.MapOp); ok && rw.reorder == nil && rw.caps.Conjunctive {
		newOp, changed, err := rw.unnestMap(m)
		if err != nil {
			return nil, err
		}
		if changed {
			return rw.rewriteChildren(newOp)
		}
	}
	return rw.rewriteChildren(op)
}

// rewriteChildren rebuilds an operator with rewritten inputs and
// rewritten subquery plans inside its expressions.
func (rw *Rewriter) rewriteChildren(op algebra.Op) (algebra.Op, error) {
	switch x := op.(type) {
	case *algebra.Scan:
		return x, nil
	case *algebra.Select:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		pred, err := rw.rewriteExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return algebra.NewSelect(child, pred), nil
	case *algebra.BypassSelect:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		pred, err := rw.rewriteExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return algebra.NewBypassSelect(child, pred), nil
	case *algebra.Stream:
		src, err := rw.rewriteOp(x.Source)
		if err != nil {
			return nil, err
		}
		return &algebra.Stream{Source: src, Positive: x.Positive}, nil
	case *algebra.Project:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		return algebra.NewProject(child, x.Attrs), nil
	case *algebra.Rename:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		return algebra.NewRename(child, x.Pairs)
	case *algebra.MapOp:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		e, err := rw.rewriteExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		return algebra.NewMap(child, x.Attr, e), nil
	case *algebra.Number:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		return algebra.NewNumber(child, x.Attr), nil
	case *algebra.CrossProduct:
		l, r, err := rw.rewritePair(x.L, x.R)
		if err != nil {
			return nil, err
		}
		return algebra.NewCross(l, r), nil
	case *algebra.Join:
		l, r, err := rw.rewritePair(x.L, x.R)
		if err != nil {
			return nil, err
		}
		pred, err := rw.rewriteExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return algebra.NewJoin(l, r, pred), nil
	case *algebra.BypassJoin:
		l, r, err := rw.rewritePair(x.L, x.R)
		if err != nil {
			return nil, err
		}
		pred, err := rw.rewriteExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return algebra.NewBypassJoin(l, r, pred), nil
	case *algebra.LeftOuterJoin:
		l, r, err := rw.rewritePair(x.L, x.R)
		if err != nil {
			return nil, err
		}
		pred, err := rw.rewriteExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return algebra.NewLeftOuterJoin(l, r, pred, x.Defaults), nil
	case *algebra.SemiJoin:
		l, r, err := rw.rewritePair(x.L, x.R)
		if err != nil {
			return nil, err
		}
		pred, err := rw.rewriteExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return algebra.NewSemiJoin(l, r, pred), nil
	case *algebra.AntiJoin:
		l, r, err := rw.rewritePair(x.L, x.R)
		if err != nil {
			return nil, err
		}
		pred, err := rw.rewriteExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		return algebra.NewAntiJoin(l, r, pred), nil
	case *algebra.GroupBy:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		aggs, err := rw.rewriteAggs(x.Aggs)
		if err != nil {
			return nil, err
		}
		return algebra.NewGroupBy(child, x.Attrs, aggs, x.Global), nil
	case *algebra.BinaryGroup:
		l, r, err := rw.rewritePair(x.L, x.R)
		if err != nil {
			return nil, err
		}
		pred, err := rw.rewriteExpr(x.Pred)
		if err != nil {
			return nil, err
		}
		aggs, err := rw.rewriteAggs(x.Aggs)
		if err != nil {
			return nil, err
		}
		return algebra.NewBinaryGroup(l, r, pred, aggs), nil
	case *algebra.UnionDisjoint:
		l, r, err := rw.rewritePair(x.L, x.R)
		if err != nil {
			return nil, err
		}
		return algebra.NewUnionDisjoint(l, r), nil
	case *algebra.UnionAll:
		l, r, err := rw.rewritePair(x.L, x.R)
		if err != nil {
			return nil, err
		}
		return algebra.NewUnionAll(l, r), nil
	case *algebra.Distinct:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		return algebra.NewDistinct(child), nil
	case *algebra.Sort:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		return algebra.NewSort(child, x.Keys), nil
	case *algebra.Limit:
		child, err := rw.rewriteOp(x.Child)
		if err != nil {
			return nil, err
		}
		return algebra.NewLimit(child, x.N), nil
	default:
		return nil, fmt.Errorf("rewrite: unknown operator %T", op)
	}
}

func (rw *Rewriter) rewritePair(l, r algebra.Op) (algebra.Op, algebra.Op, error) {
	nl, err := rw.rewriteOp(l)
	if err != nil {
		return nil, nil, err
	}
	nr, err := rw.rewriteOp(r)
	if err != nil {
		return nil, nil, err
	}
	return nl, nr, nil
}

func (rw *Rewriter) rewriteAggs(items []algebra.AggItem) ([]algebra.AggItem, error) {
	out := make([]algebra.AggItem, len(items))
	for i, it := range items {
		arg, err := rw.rewriteExpr(it.Arg)
		if err != nil {
			return nil, err
		}
		out[i] = algebra.AggItem{Out: it.Out, Spec: it.Spec, Arg: arg, ArgAttrs: it.ArgAttrs}
	}
	return out, nil
}

// rewriteExpr rebuilds an expression, rewriting the plans of any
// remaining embedded subqueries (so deeper blocks get unnested even when
// the enclosing block could not be).
func (rw *Rewriter) rewriteExpr(e algebra.Expr) (algebra.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *algebra.ColRef, *algebra.ConstExpr:
		return e, nil
	case *algebra.CmpExpr:
		l, err := rw.rewriteExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteExpr(x.R)
		if err != nil {
			return nil, err
		}
		return algebra.Cmp(x.Op, l, r), nil
	case *algebra.AndExpr:
		l, err := rw.rewriteExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteExpr(x.R)
		if err != nil {
			return nil, err
		}
		return algebra.And(l, r), nil
	case *algebra.OrExpr:
		l, err := rw.rewriteExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteExpr(x.R)
		if err != nil {
			return nil, err
		}
		return algebra.Or(l, r), nil
	case *algebra.NotExpr:
		inner, err := rw.rewriteExpr(x.E)
		if err != nil {
			return nil, err
		}
		return algebra.Not(inner), nil
	case *algebra.ArithExpr:
		l, err := rw.rewriteExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteExpr(x.R)
		if err != nil {
			return nil, err
		}
		return algebra.Arith(x.Op, l, r), nil
	case *algebra.LikeExpr:
		l, err := rw.rewriteExpr(x.L)
		if err != nil {
			return nil, err
		}
		p, err := rw.rewriteExpr(x.Pattern)
		if err != nil {
			return nil, err
		}
		return algebra.Like(l, p), nil
	case *algebra.IsNullExpr:
		inner, err := rw.rewriteExpr(x.E)
		if err != nil {
			return nil, err
		}
		return algebra.IsNull(inner), nil
	case *algebra.AggCombineExpr:
		l, err := rw.rewriteExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteExpr(x.R)
		if err != nil {
			return nil, err
		}
		return algebra.AggCombine(x.Kind, l, r), nil
	case *algebra.ScalarSubquery:
		plan, err := rw.rewriteOp(x.Plan)
		if err != nil {
			return nil, err
		}
		arg, err := rw.rewriteExpr(x.Arg)
		if err != nil {
			return nil, err
		}
		return algebra.Subquery(x.Agg, arg, plan), nil
	case *algebra.QuantSubquery:
		plan, err := rw.rewriteOp(x.Plan)
		if err != nil {
			return nil, err
		}
		l, err := rw.rewriteExpr(x.L)
		if err != nil {
			return nil, err
		}
		return algebra.Quant(x.Quant, l, plan), nil
	case *algebra.AllAnyExpr:
		plan, err := rw.rewriteOp(x.Plan)
		if err != nil {
			return nil, err
		}
		l, err := rw.rewriteExpr(x.L)
		if err != nil {
			return nil, err
		}
		return algebra.AllAny(x.Op, x.All, l, plan), nil
	default:
		return nil, fmt.Errorf("rewrite: unknown expression %T", e)
	}
}

// normalizeNNF pushes NOT down to the leaves (negation normal form)
// under the default three-valued logic, which is sound in Kleene logic:
// De Morgan's laws and double negation hold, ¬(a θ b) ≡ a θ̄ b, and
// negated quantifiers flip polarity.
func normalizeNNF(e algebra.Expr) algebra.Expr {
	return normalizeNNFMode(e, types.ThreeValued)
}

// normalizeNNFMode is normalizeNNF under an explicit null mode. De
// Morgan and double negation are sound in both logics (two-valued
// predicates are classical Boolean), but the comparison and quantified-
// comparison foldings are not: in two-valued logic ¬(a = NULL) is TRUE
// while a <> NULL is FALSE, so those negations stay leaves there.
func normalizeNNFMode(e algebra.Expr, nulls types.NullMode) algebra.Expr {
	switch x := e.(type) {
	case *algebra.AndExpr:
		return algebra.And(normalizeNNFMode(x.L, nulls), normalizeNNFMode(x.R, nulls))
	case *algebra.OrExpr:
		return algebra.Or(normalizeNNFMode(x.L, nulls), normalizeNNFMode(x.R, nulls))
	case *algebra.NotExpr:
		return negate(x.E, nulls)
	default:
		return e
	}
}

func negate(e algebra.Expr, nulls types.NullMode) algebra.Expr {
	switch x := e.(type) {
	case *algebra.NotExpr:
		return normalizeNNFMode(x.E, nulls)
	case *algebra.AndExpr:
		return algebra.Or(negate(x.L, nulls), negate(x.R, nulls))
	case *algebra.OrExpr:
		return algebra.And(negate(x.L, nulls), negate(x.R, nulls))
	case *algebra.CmpExpr:
		if nulls == types.TwoValued {
			// ¬(a θ b) ≢ a θ̄ b when a NULL operand makes both sides
			// FALSE; the negation must survive as a leaf.
			return algebra.Not(e)
		}
		return algebra.Cmp(x.Op.Negate(), x.L, x.R)
	case *algebra.QuantSubquery:
		// Sound in both logics: each mode evaluates NOT IN as the exact
		// complement of its own IN (likewise EXISTS/NOT EXISTS).
		switch x.Quant {
		case algebra.Exists:
			return algebra.Quant(algebra.NotExists, nil, x.Plan)
		case algebra.NotExists:
			return algebra.Quant(algebra.Exists, nil, x.Plan)
		case algebra.In:
			return algebra.Quant(algebra.NotIn, x.L, x.Plan)
		default:
			return algebra.Quant(algebra.In, x.L, x.Plan)
		}
	case *algebra.AllAnyExpr:
		if nulls == types.TwoValued {
			// A NULL member turns both x θ ALL S and x θ̄ ANY S FALSE in
			// two-valued logic, so the polarity flip is unsound there.
			return algebra.Not(e)
		}
		// ¬(x θ ALL S) ≡ x θ̄ ANY S — exact in Kleene logic (De Morgan
		// over the comparison fold).
		return algebra.AllAny(x.Op.Negate(), !x.All, x.L, x.Plan)
	case *algebra.ConstExpr:
		if b, ok := x.Val.BoolOk(); ok {
			return algebra.Const(types.NewBool(!b))
		}
		return algebra.Not(e)
	default:
		// LIKE, IS NULL, …: keep the negation as a leaf.
		return algebra.Not(e)
	}
}

// quantToCount converts quantified subqueries into count-based linking
// predicates (technical report §: EXISTS, NOT EXISTS, IN, NOT IN), after
// which the scalar machinery (Eqv. 1–5) applies:
//
//	EXISTS q          ⇒ COUNT(*){q} > 0
//	NOT EXISTS q      ⇒ COUNT(*){q} = 0
//	x IN q(y)         ⇒ COUNT(*){σ_{y=x}(q)} > 0
//	x NOT IN q(y)     ⇒ x IS NOT NULL ∧ COUNT(*){σ_{y=x}(q)} = 0
//	                    ∧ COUNT(*){σ_{y IS NULL}(q)} = 0
//
// The NOT IN form preserves SQL's three-valued semantics for WHERE-clause
// filtering: any NULL in q or a NULL probe makes the original predicate
// not-true, and here makes a conjunct not-true. Under two-valued logic
// NULLs simply never compare equal, so x NOT IN q is plainly "no member
// equals x" and the conversion emits COUNT(*){σ_{y=x}(q)} = 0 alone —
// the σ runs under the same two-valued logic, dropping NULL members and
// matching nothing for a NULL probe.
func (rw *Rewriter) quantToCount(e algebra.Expr) algebra.Expr {
	switch x := e.(type) {
	case *algebra.AndExpr:
		return algebra.And(rw.quantToCount(x.L), rw.quantToCount(x.R))
	case *algebra.OrExpr:
		return algebra.Or(rw.quantToCount(x.L), rw.quantToCount(x.R))
	case *algebra.QuantSubquery:
		countStar := agg.Spec{Kind: agg.Count, Star: true}
		switch x.Quant {
		case algebra.Exists:
			rw.trace("quantified: EXISTS → COUNT(*) > 0")
			return algebra.Cmp(types.GT, algebra.Subquery(countStar, nil, x.Plan), algebra.ConstInt(0))
		case algebra.NotExists:
			rw.trace("quantified: NOT EXISTS → COUNT(*) = 0")
			return algebra.Cmp(types.EQ, algebra.Subquery(countStar, nil, x.Plan), algebra.ConstInt(0))
		case algebra.In, algebra.NotIn:
			if x.Plan.Schema().Len() != 1 {
				return e
			}
			col := algebra.Col(x.Plan.Schema().Attr(0))
			eqPlan := algebra.NewSelect(x.Plan, algebra.Cmp(types.EQ, col, x.L))
			eqCount := algebra.Subquery(countStar, nil, eqPlan)
			if x.Quant == algebra.In {
				rw.trace("quantified: IN → COUNT(*) of matches > 0")
				return algebra.Cmp(types.GT, eqCount, algebra.ConstInt(0))
			}
			if rw.nulls == types.TwoValued {
				rw.trace("quantified: NOT IN → COUNT(*) of matches = 0 (2VL)")
				return algebra.Cmp(types.EQ, eqCount, algebra.ConstInt(0))
			}
			nullPlan := algebra.NewSelect(x.Plan, algebra.IsNull(col))
			nullCount := algebra.Subquery(countStar, nil, nullPlan)
			allCount := algebra.Subquery(countStar, nil, x.Plan)
			rw.trace("quantified: NOT IN → NULL-aware COUNT(*) = 0 form")
			// x NOT IN S is TRUE iff S is empty (vacuous truth — even a
			// NULL probe passes) or x is non-NULL, nothing equals it, and
			// S contains no NULLs.
			return algebra.Or(
				algebra.Cmp(types.EQ, allCount, algebra.ConstInt(0)),
				algebra.And(
					algebra.Not(algebra.IsNull(x.L)),
					algebra.Cmp(types.EQ, eqCount, algebra.ConstInt(0)),
					algebra.Cmp(types.EQ, nullCount, algebra.ConstInt(0))))
		}
	case *algebra.AllAnyExpr:
		return rw.allAnyToExtremum(x)
	}
	return e
}

// allAnyToExtremum converts θ ALL / θ ANY into extremum aggregates (the
// paper's future-work item (3)) for θ ∈ {<, ≤, >, ≥}:
//
//	x θ ANY S  ⇒ x θ MIN(S)  for θ ∈ {>, ≥}; x θ MAX(S) for θ ∈ {<, ≤}
//	x θ ALL S  ⇒ COUNT(*){S} = 0
//	             ∨ (COUNT(*){σ_NULL(S)} = 0 ∧ x θ extremum(S))
//	             with the opposite extremum.
//
// All conversions preserve WHERE-clause three-valued semantics: a NULL in
// S or a NULL probe never turns a not-true predicate TRUE. Equality forms
// (= ALL, <> ANY) are left to canonical evaluation.
func (rw *Rewriter) allAnyToExtremum(x *algebra.AllAnyExpr) algebra.Expr {
	var extremum agg.Kind
	switch x.Op {
	case types.GT, types.GE:
		if x.All {
			extremum = agg.Max
		} else {
			extremum = agg.Min
		}
	case types.LT, types.LE:
		if x.All {
			extremum = agg.Min
		} else {
			extremum = agg.Max
		}
	default:
		return x // = ALL / <> ANY: stay canonical
	}
	col := algebra.Col(x.Plan.Schema().Attr(0))
	extSub := algebra.Subquery(agg.Spec{Kind: extremum}, col, x.Plan)
	cmp := algebra.Cmp(x.Op, x.L, extSub)
	if !x.All {
		rw.trace("quantified: θ ANY → %s comparison", extremum)
		return cmp
	}
	countStar := agg.Spec{Kind: agg.Count, Star: true}
	cntAll := algebra.Subquery(countStar, nil, x.Plan)
	nullPlan := algebra.NewSelect(x.Plan, algebra.IsNull(col))
	cntNull := algebra.Subquery(countStar, nil, nullPlan)
	rw.trace("quantified: θ ALL → NULL-aware %s comparison", extremum)
	return algebra.Or(
		algebra.Cmp(types.EQ, cntAll, algebra.ConstInt(0)),
		algebra.And(
			algebra.Cmp(types.EQ, cntNull, algebra.ConstInt(0)),
			cmp))
}
