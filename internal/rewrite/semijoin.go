package rewrite

import (
	"disqo/internal/algebra"
	"disqo/internal/types"
)

// unnestQuantConjunct translates a *conjunctive* correlated quantified
// predicate directly into a semi- or anti-join — cheaper than the
// count-based conversion because no aggregate is materialized:
//
//	EXISTS q        ⇒ cur ⋉_corr inner
//	NOT EXISTS q    ⇒ cur ▷_corr inner
//	x IN q(y)       ⇒ cur ⋉_{y=x ∧ corr} inner
//
// NOT IN keeps the count-based form: its NULL semantics (any NULL in q
// poisons the predicate) do not map onto an antijoin. Disjunctive
// occurrences are also out of scope here — they go through the count
// conversion and the bypass cascade. Returns ok=false when the shape is
// unsupported; the caller then falls back to quantToCount.
func (rw *Rewriter) unnestQuantConjunct(q *algebra.QuantSubquery, cur algebra.Op) (algebra.Op, bool, error) {
	if q.Quant == algebra.NotIn {
		return cur, false, nil
	}
	var inCol string
	if q.Quant == algebra.In {
		if q.Plan.Schema().Len() != 1 {
			return cur, false, nil
		}
		inCol = q.Plan.Schema().Attr(0)
		if algebra.HasSubquery(q.L) {
			return cur, false, nil
		}
	}
	// Direct correlation only.
	for _, col := range algebra.FreeColumns(q.Plan) {
		if !cur.Schema().Has(col) {
			return cur, false, nil
		}
	}

	// Collapse top-level Select/Project layers (EXISTS is insensitive to
	// both projection and duplicates; IN's probe column survives peeling
	// because projection only narrows).
	plan := q.Plan
	var conjs []algebra.Expr
peel:
	for {
		switch p := plan.(type) {
		case *algebra.Project:
			plan = p.Child
		case *algebra.Select:
			conjs = append(conjs, algebra.SplitConjuncts(p.Pred)...)
			plan = p.Child
		default:
			break peel
		}
	}
	inner := plan
	innerSchema := inner.Schema()

	var corr, local []algebra.Expr
	for _, c := range conjs {
		if algebra.HasSubquery(c) {
			if hasFreeCols(c, innerSchema) {
				return cur, false, nil // nested subquery in the correlation: unsupported
			}
			local = append(local, c)
			continue
		}
		if hasFreeCols(c, innerSchema) {
			corr = append(corr, c)
		} else {
			local = append(local, c)
		}
	}
	if q.Quant == algebra.In {
		corr = append(corr, algebra.Cmp(types.EQ, algebra.Col(inCol), q.L))
	}
	if len(corr) == 0 {
		// Uncorrelated EXISTS is type N: the executor materializes it
		// once; nothing to gain from a join.
		return cur, false, nil
	}
	if len(local) > 0 {
		inner = algebra.NewSelect(inner, algebra.And(local...))
	}
	pred := algebra.And(corr...)
	switch q.Quant {
	case algebra.Exists, algebra.In:
		rw.trace("quantified: %s → semijoin ⋉[%s]", q.Quant, pred)
		return algebra.NewSemiJoin(cur, inner, pred), true, nil
	default: // NotExists
		rw.trace("quantified: NOT EXISTS → antijoin ▷[%s]", pred)
		return algebra.NewAntiJoin(cur, inner, pred), true, nil
	}
}
