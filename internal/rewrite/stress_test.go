package rewrite

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"disqo/internal/sqlparser"
	"disqo/internal/translate"
)

// TestGeneratedQueriesStress is an opt-in heavy battery: set
// DISQO_STRESS=<n> to run n random queries per catalog over 5 random
// catalogs with a random seed. Not run by default.
func TestGeneratedQueriesStress(t *testing.T) {
	nStr := os.Getenv("DISQO_STRESS")
	if nStr == "" {
		t.Skip("set DISQO_STRESS=<n> to run")
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(12345)
	if s := os.Getenv("DISQO_STRESS_SEED"); s != "" {
		v, _ := strconv.Atoi(s)
		seed = int64(v)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &queryGen{rng: rng}
	for trial := 0; trial < 5; trial++ {
		cat := randomRST(t, rng, 20+rng.Intn(30))
		for i := 0; i < n; i++ {
			sql := g.query()
			stmt, err := sqlparser.Parse(sql)
			if err != nil {
				t.Fatalf("parse %q: %v", sql, err)
			}
			canonical, err := translate.New(cat).Translate(stmt)
			if err != nil {
				t.Fatalf("translate %q: %v", sql, err)
			}
			unnested, err := New(cat, AllCaps()).Rewrite(canonical)
			if err != nil {
				t.Fatalf("rewrite %q: %v", sql, err)
			}
			assertEquivalent(t, cat, canonical, unnested, sql)
			if t.Failed() {
				t.Fatalf("failing query (trial %d, i %d, seed %d): %s", trial, i, seed, sql)
			}
		}
	}
}
