package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/exec"
	"disqo/internal/sqlparser"
	"disqo/internal/storage"
	"disqo/internal/translate"
	"disqo/internal/types"
)

// rstCatalog builds R, S, T with duplicates and NULLs to stress duplicate
// handling (§3.7) and the count bug.
func rstCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mk := func(name, prefix string) *catalog.Table {
		tbl, err := cat.Create(name, []catalog.Column{
			{Name: prefix + "1", Type: types.KindInt},
			{Name: prefix + "2", Type: types.KindInt},
			{Name: prefix + "3", Type: types.KindInt},
			{Name: prefix + "4", Type: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	r, s, tt := mk("r", "a"), mk("s", "b"), mk("t", "c")
	load := func(tbl *catalog.Table, rows [][]any) {
		for _, row := range rows {
			vals := make([]types.Value, len(row))
			for i, v := range row {
				if v == nil {
					vals[i] = types.Null()
				} else {
					vals[i] = types.NewInt(int64(v.(int)))
				}
			}
			if err := tbl.Insert(vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	load(r, [][]any{
		{1, 10, 5, 1000},
		{2, 20, 6, 2000},
		{2, 10, 7, 1200},
		{0, 30, 8, 1501},
		{2, 10, 7, 1200}, // duplicate tuple
		{nil, 10, 9, 1700},
		{1, nil, 9, 100},
	})
	load(s, [][]any{
		{1, 10, 5, 1400},
		{2, 10, 6, 1600},
		{3, 20, 7, 1700},
		{4, 40, 8, 100},
		{2, 10, 6, 1600}, // duplicate
		{5, nil, 7, 1800},
		{6, 20, nil, 50},
	})
	load(tt, [][]any{
		{1, 5, 10, 9},
		{2, 6, 10, 9},
		{3, 7, 20, 9},
		{4, nil, 20, 9},
	})
	return cat
}

func planFor(t testing.TB, cat *catalog.Catalog, sql string, caps Caps) (canonical, rewritten algebra.Op, rw *Rewriter) {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	canonical, err = translate.New(cat).Translate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	rw = New(cat, caps)
	rewritten, err = rw.Rewrite(canonical)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	return canonical, rewritten, rw
}

func run(t testing.TB, cat *catalog.Catalog, plan algebra.Op) *storage.Relation {
	t.Helper()
	ex := exec.New(cat, exec.Options{Cache: exec.CacheAll})
	rel, err := ex.Run(plan)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, algebra.Explain(plan))
	}
	return rel
}

// assertEquivalent runs both plans and compares canonicalized results.
func assertEquivalent(t testing.TB, cat *catalog.Catalog, a, b algebra.Op, label string) {
	t.Helper()
	ra := run(t, cat, a).Canonical()
	rb := run(t, cat, b).Canonical()
	if strings.Join(ra, "\n") != strings.Join(rb, "\n") {
		t.Errorf("%s: results differ\ncanonical (%d rows): %v\nrewritten (%d rows): %v\nplan:\n%s",
			label, len(ra), ra, len(rb), rb, algebra.Explain(b))
	}
}

func countOps(plan algebra.Op, pred func(algebra.Op) bool) int {
	n := 0
	algebra.Walk(plan, func(op algebra.Op) bool {
		if pred(op) {
			n++
		}
		return true
	})
	return n
}

const (
	q1 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	         OR a4 > 1500`
	q2 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)`
	q3 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	         OR a3 = (SELECT COUNT(DISTINCT *) FROM t WHERE a4 = c2)`
	q4 = `SELECT DISTINCT * FROM r
	      WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2
	                   OR b3 = (SELECT COUNT(DISTINCT *) FROM t WHERE b4 = c2))`
)

func TestQ1UnnestedShapeAndResult(t *testing.T) {
	cat := rstCatalog(t)
	canonical, rewritten, rw := planFor(t, cat, q1, AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Fatalf("Q1 must be fully unnested:\n%s", algebra.Explain(rewritten))
	}
	// Fig. 2(c) shape: a bypass selection, a unary grouping, an outerjoin
	// and a disjoint union.
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.BypassSelect); return ok }) != 1 {
		t.Errorf("want 1 bypass select:\n%s", algebra.Explain(rewritten))
	}
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.GroupBy); return ok }) != 1 {
		t.Errorf("want 1 Γ:\n%s", algebra.Explain(rewritten))
	}
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.LeftOuterJoin); return ok }) != 1 {
		t.Errorf("want 1 ⟕:\n%s", algebra.Explain(rewritten))
	}
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.UnionDisjoint); return ok }) != 1 {
		t.Errorf("want 1 ∪̇:\n%s", algebra.Explain(rewritten))
	}
	if len(rw.Trace) == 0 || !strings.Contains(strings.Join(rw.Trace, ";"), "Eqv. 1") {
		t.Errorf("trace = %v", rw.Trace)
	}
	assertEquivalent(t, cat, canonical, rewritten, "Q1")
}

func TestQ2UnnestedViaEqv4(t *testing.T) {
	cat := rstCatalog(t)
	canonical, rewritten, rw := planFor(t, cat, q2, AllCaps())
	// Eqv. 4 keeps an uncorrelated scalar subquery (the global fI over
	// the positive stream) inside its map expression — that is type A and
	// memoized. "Fully unnested" here means no subquery remains in any
	// *selection* predicate.
	nestedSelect := false
	algebra.Walk(rewritten, func(op algebra.Op) bool {
		if s, ok := op.(*algebra.Select); ok && algebra.HasSubquery(s.Pred) {
			nestedSelect = true
		}
		return true
	})
	if nestedSelect {
		t.Fatalf("Q2 still has a nested selection:\n%s", algebra.Explain(rewritten))
	}
	if !strings.Contains(strings.Join(rw.Trace, ";"), "Eqv. 4") {
		t.Errorf("expected Eqv. 4, trace = %v", rw.Trace)
	}
	// Fig. 3(b) shape: bypass select on the inner, Γ, ⟕, χ.
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.BypassSelect); return ok }) != 1 {
		t.Errorf("want 1 bypass select on the inner:\n%s", algebra.Explain(rewritten))
	}
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.MapOp); return ok }) < 1 {
		t.Errorf("want a χ combiner:\n%s", algebra.Explain(rewritten))
	}
	assertEquivalent(t, cat, canonical, rewritten, "Q2")
}

func TestQ2DistinctCountForcesEqv5(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r
	        WHERE a1 = (SELECT COUNT(DISTINCT b1) FROM s WHERE a2 = b2 OR b4 > 1500)`
	canonical, rewritten, rw := planFor(t, cat, sql, AllCaps())
	if !strings.Contains(strings.Join(rw.Trace, ";"), "Eqv. 5") {
		t.Fatalf("COUNT(DISTINCT) must use Eqv. 5, trace = %v", rw.Trace)
	}
	// Eqv. 5 shape: ν, ⋈±, Γ².
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.Number); return ok }) != 1 {
		t.Errorf("want ν:\n%s", algebra.Explain(rewritten))
	}
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.BypassJoin); return ok }) != 1 {
		t.Errorf("want ⋈±:\n%s", algebra.Explain(rewritten))
	}
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.BinaryGroup); return ok }) != 1 {
		t.Errorf("want Γ²:\n%s", algebra.Explain(rewritten))
	}
	assertEquivalent(t, cat, canonical, rewritten, "Q2-distinct")
}

func TestQ3TreeQuery(t *testing.T) {
	cat := rstCatalog(t)
	canonical, rewritten, rw := planFor(t, cat, q3, AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Fatalf("Q3 must be fully unnested:\n%s", algebra.Explain(rewritten))
	}
	// Two groupings and two outerjoins (one per subquery), one bypass
	// select (the second linking predicate is last in the cascade).
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.GroupBy); return ok }) != 2 {
		t.Errorf("want 2 Γ:\n%s", algebra.Explain(rewritten))
	}
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.LeftOuterJoin); return ok }) != 2 {
		t.Errorf("want 2 ⟕:\n%s", algebra.Explain(rewritten))
	}
	if len(rw.Trace) < 2 {
		t.Errorf("trace = %v", rw.Trace)
	}
	assertEquivalent(t, cat, canonical, rewritten, "Q3")
}

func TestQ4LinearQuery(t *testing.T) {
	cat := rstCatalog(t)
	canonical, rewritten, rw := planFor(t, cat, q4, AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Fatalf("Q4 must be fully unnested:\n%s", algebra.Explain(rewritten))
	}
	trace := strings.Join(rw.Trace, ";")
	// Fig. 6: Eqv. 5 at the outer level, then Eqv. 1 for the innermost
	// block against the joined stream.
	if !strings.Contains(trace, "Eqv. 5") || !strings.Contains(trace, "Eqv. 1") {
		t.Errorf("trace = %v", rw.Trace)
	}
	assertEquivalent(t, cat, canonical, rewritten, "Q4")
}

func TestConjunctiveLinkingEqv1(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)`
	canonical, rewritten, rw := planFor(t, cat, sql, AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Fatalf("conjunctive JA must unnest:\n%s", algebra.Explain(rewritten))
	}
	if !strings.Contains(strings.Join(rw.Trace, ";"), "Eqv. 1") {
		t.Errorf("trace = %v", rw.Trace)
	}
	// No bypass needed in the purely conjunctive case.
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.BypassSelect); return ok }) != 0 {
		t.Errorf("no bypass expected:\n%s", algebra.Explain(rewritten))
	}
	assertEquivalent(t, cat, canonical, rewritten, "conjunctive")
}

func TestCountBugEmptyGroups(t *testing.T) {
	// r.a2 = 30 has no partner in s; nested count is 0 and must compare
	// equal to a1 = 0 after unnesting (the count bug).
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)`
	_, rewritten, _ := planFor(t, cat, sql, AllCaps())
	rel := run(t, cat, rewritten)
	found := false
	for _, row := range rel.Tuples {
		if types.Identical(row[0], types.NewInt(0)) && types.Identical(row[1], types.NewInt(30)) {
			found = true
		}
	}
	if !found {
		t.Errorf("count bug: empty group row (0,30,…) missing:\n%s", rel)
	}
}

func TestNonEqualityCorrelationUsesBinaryGrouping(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 < b2)`
	canonical, rewritten, rw := planFor(t, cat, sql, AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Fatalf("θ-correlation must unnest via Γ²:\n%s", algebra.Explain(rewritten))
	}
	if !strings.Contains(strings.Join(rw.Trace, ";"), "binary-grouping") {
		t.Errorf("trace = %v", rw.Trace)
	}
	assertEquivalent(t, cat, canonical, rewritten, "theta-correlation")
}

func TestAllLinkingOperators(t *testing.T) {
	cat := rstCatalog(t)
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		sql := `SELECT DISTINCT * FROM r
		        WHERE a1 ` + op + ` (SELECT COUNT(*) FROM s WHERE a2 = b2) OR a4 > 1500`
		canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
		if algebra.ContainsSubquery(rewritten) {
			t.Fatalf("linking op %s must unnest", op)
		}
		assertEquivalent(t, cat, canonical, rewritten, "linking "+op)
	}
}

func TestAllAggregates(t *testing.T) {
	cat := rstCatalog(t)
	for _, fn := range []string{"COUNT(b1)", "COUNT(*)", "SUM(b1)", "AVG(b1)", "MIN(b1)", "MAX(b1)",
		"COUNT(DISTINCT b1)", "SUM(DISTINCT b1)", "AVG(DISTINCT b1)", "MIN(DISTINCT b1)", "MAX(DISTINCT b1)"} {
		// Disjunctive linking.
		sql := `SELECT DISTINCT * FROM r
		        WHERE a1 >= (SELECT ` + fn + ` FROM s WHERE a2 = b2) OR a4 > 1500`
		canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
		if algebra.ContainsSubquery(rewritten) {
			t.Errorf("agg %s (linking) must unnest", fn)
		}
		assertEquivalent(t, cat, canonical, rewritten, "agg-linking "+fn)

		// Disjunctive correlation (Eqv. 4 for decomposable, 5 otherwise).
		sql = `SELECT DISTINCT * FROM r
		       WHERE a1 >= (SELECT ` + fn + ` FROM s WHERE a2 = b2 OR b4 > 1500)`
		canonical2, rewritten2, _ := planFor(t, cat, sql, AllCaps())
		assertEquivalent(t, cat, canonical2, rewritten2, "agg-correlation "+fn)
	}
}

func TestRankOrderingPrefersCheapPredicateFirst(t *testing.T) {
	cat := rstCatalog(t)
	// The simple comparison must be bypassed first (Eqv. 2): the first
	// bypass selection in the plan carries the cheap predicate.
	_, rewritten, _ := planFor(t, cat, q1, AllCaps())
	var bypassPred string
	algebra.Walk(rewritten, func(op algebra.Op) bool {
		if bp, ok := op.(*algebra.BypassSelect); ok && bypassPred == "" {
			bypassPred = bp.Pred.String()
		}
		return true
	})
	if !strings.Contains(bypassPred, "a4") {
		t.Errorf("Eqv. 2 expected (cheap predicate bypassed): %s", bypassPred)
	}
}

func TestORExpansionBaseline(t *testing.T) {
	cat := rstCatalog(t)
	caps := Caps{Conjunctive: true, ORExpansion: true}
	canonical, rewritten, rw := planFor(t, cat, q1, caps)
	if !strings.Contains(strings.Join(rw.Trace, ";"), "OR-expansion") {
		t.Fatalf("trace = %v", rw.Trace)
	}
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.UnionAll); return ok }) != 1 {
		t.Errorf("want union-all:\n%s", algebra.Explain(rewritten))
	}
	if countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.BypassSelect); return ok }) != 0 {
		t.Errorf("S2 must not use bypass:\n%s", algebra.Explain(rewritten))
	}
	assertEquivalent(t, cat, canonical, rewritten, "or-expansion Q1")

	// S2 cannot unnest disjunctive correlation: Q2 stays canonical.
	_, rewrittenQ2, rwQ2 := planFor(t, cat, q2, caps)
	if !algebra.ContainsSubquery(rewrittenQ2) {
		t.Error("S2 must leave Q2 nested")
	}
	if strings.Contains(strings.Join(rwQ2.Trace, ";"), "Eqv. 4") {
		t.Error("S2 must not apply Eqv. 4")
	}
}

func TestCanonicalCapsNoRewrite(t *testing.T) {
	cat := rstCatalog(t)
	canonical, rewritten, rw := planFor(t, cat, q1, Caps{})
	if rewritten != canonical && algebra.CountOps(rewritten) != algebra.CountOps(canonical) {
		t.Errorf("no-caps rewrite changed the plan:\n%s", algebra.Explain(rewritten))
	}
	if len(rw.Trace) != 0 {
		t.Errorf("trace = %v", rw.Trace)
	}
}

func TestQuantifiedRewrites(t *testing.T) {
	cat := rstCatalog(t)
	cases := []string{
		`SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE a2 = b2) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE a2 IN (SELECT b2 FROM s WHERE b4 > 100) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE a2 NOT IN (SELECT b2 FROM s WHERE b4 > 100) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2)`,
		`SELECT DISTINCT * FROM r WHERE a2 NOT IN (SELECT b2 FROM s)`,
	}
	for _, sql := range cases {
		canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
		assertEquivalent(t, cat, canonical, rewritten, sql)
	}
	// The disjunctive EXISTS case must actually unnest.
	_, rewritten, rw := planFor(t, cat, cases[0], AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Errorf("EXISTS disjunct must unnest:\n%s", algebra.Explain(rewritten))
	}
	if !strings.Contains(strings.Join(rw.Trace, ";"), "quantified") {
		t.Errorf("trace = %v", rw.Trace)
	}
}

func TestNNFNormalization(t *testing.T) {
	a := algebra.Cmp(types.EQ, algebra.Col("x"), algebra.ConstInt(1))
	b := algebra.Cmp(types.GT, algebra.Col("y"), algebra.ConstInt(2))
	e := algebra.Not(algebra.And(a, algebra.Not(b)))
	n := normalizeNNF(e)
	want := "((x <> 1) OR (y > 2))"
	if n.String() != want {
		t.Errorf("NNF = %s, want %s", n, want)
	}
	// Double negation.
	if normalizeNNF(algebra.Not(algebra.Not(a))).String() != a.String() {
		t.Error("double negation not eliminated")
	}
	// Negated quantifier flips.
	q := algebra.Quant(algebra.Exists, nil, nil)
	if neg, ok := normalizeNNF(algebra.Not(q)).(*algebra.QuantSubquery); !ok || neg.Quant != algebra.NotExists {
		t.Error("negated EXISTS must flip")
	}
}

func TestNotPushedThroughDisjunction(t *testing.T) {
	cat := rstCatalog(t)
	// NOT(a AND b) where b is a linking predicate becomes a disjunction
	// the cascade can handle.
	sql := `SELECT DISTINCT * FROM r
	        WHERE NOT (a4 <= 1500 AND a1 <> (SELECT COUNT(*) FROM s WHERE a2 = b2))`
	canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Errorf("NNF + cascade must unnest:\n%s", algebra.Explain(rewritten))
	}
	assertEquivalent(t, cat, canonical, rewritten, "not-pushdown")
}

func TestThreeDisjunctCascade(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r
	        WHERE a4 > 1900 OR a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2) OR a3 > 7`
	canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Fatalf("3-way cascade must unnest:\n%s", algebra.Explain(rewritten))
	}
	if n := countOps(rewritten, func(op algebra.Op) bool { _, ok := op.(*algebra.BypassSelect); return ok }); n != 2 {
		t.Errorf("want 2 bypass selects in a 3-way cascade, got %d:\n%s", n, algebra.Explain(rewritten))
	}
	assertEquivalent(t, cat, canonical, rewritten, "3-way cascade")
}

func TestMixedConjunctionWithDisjunctiveLinking(t *testing.T) {
	cat := rstCatalog(t)
	// Query 2d's shape: plain conjuncts AND (linking OR simple).
	sql := `SELECT DISTINCT * FROM r
	        WHERE a3 >= 5
	          AND (a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2) OR a4 > 1500)`
	canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Fatalf("2d-shaped query must unnest:\n%s", algebra.Explain(rewritten))
	}
	assertEquivalent(t, cat, canonical, rewritten, "2d shape")
}

func TestTypeAStaysMaterialized(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s) OR a4 > 1500`
	canonical, rewritten, rw := planFor(t, cat, sql, AllCaps())
	if len(rw.Trace) != 0 {
		t.Errorf("type A should not trigger rewrites: %v", rw.Trace)
	}
	assertEquivalent(t, cat, canonical, rewritten, "type A")
}

func TestSelectClauseSubqueryUnnested(t *testing.T) {
	cat := rstCatalog(t)
	// Conjunctive correlation in the SELECT clause (TR generalization).
	sql := `SELECT a1, (SELECT COUNT(*) FROM s WHERE a2 = b2) AS cnt FROM r`
	canonical, rewritten, rw := planFor(t, cat, sql, AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Fatalf("select-clause subquery must unnest:\n%s", algebra.Explain(rewritten))
	}
	if !strings.Contains(strings.Join(rw.Trace, ";"), "select-clause") {
		t.Errorf("trace = %v", rw.Trace)
	}
	assertEquivalent(t, cat, canonical, rewritten, "select-clause")

	// Empty groups must surface COUNT = 0, not lose rows (count bug in
	// the SELECT clause).
	rel := run(t, cat, rewritten)
	if rel.Cardinality() != 7 {
		t.Fatalf("projection must preserve R cardinality, got %d", rel.Cardinality())
	}

	// Subquery inside arithmetic, and disjunctive correlation variants.
	for _, s := range []string{
		`SELECT a1, 1 + (SELECT COUNT(*) FROM s WHERE a2 = b2) AS cnt1 FROM r`,
		`SELECT a1, (SELECT SUM(b1) FROM s WHERE a2 = b2 OR b4 > 1500) AS sm FROM r`,
		`SELECT a1, (SELECT COUNT(DISTINCT b1) FROM s WHERE a2 = b2 OR b4 > 1500) AS dc FROM r`,
		`SELECT a1, (SELECT MIN(b4) FROM s WHERE a2 = b2) AS m,
		        (SELECT MAX(c2) FROM t WHERE a3 = c1) AS x FROM r`,
	} {
		canonical, rewritten, _ := planFor(t, cat, s, AllCaps())
		assertEquivalent(t, cat, canonical, rewritten, s)
	}
}

// TestRandomizedEquivalence is the safety net: random RST instances with
// NULLs and duplicates, a battery of query shapes, canonical vs unnested
// vs OR-expansion must all agree.
func TestRandomizedEquivalence(t *testing.T) {
	shapes := []string{
		q1, q2, q3, q4,
		`SELECT DISTINCT * FROM r WHERE a1 < (SELECT SUM(b1) FROM s WHERE a2 = b2) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE a1 >= (SELECT MIN(b4) FROM s WHERE a2 = b2 OR b4 > 1500)`,
		`SELECT DISTINCT * FROM r WHERE a1 = (SELECT AVG(b1) FROM s WHERE a2 = b2 OR b4 > 1500)`,
		`SELECT DISTINCT a1, a2 FROM r WHERE a2 IN (SELECT b2 FROM s WHERE b4 > 500) OR a4 > 1500`,
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		cat := randomRST(t, rng, 30)
		for _, sql := range shapes {
			stmt, err := sqlparser.Parse(sql)
			if err != nil {
				t.Fatal(err)
			}
			canonical, err := translate.New(cat).Translate(stmt)
			if err != nil {
				t.Fatal(err)
			}
			unnested, err := New(cat, AllCaps()).Rewrite(canonical)
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, cat, canonical, unnested, sql)
		}
	}
}

func randomRST(t testing.TB, rng *rand.Rand, n int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mk := func(name, prefix string) *catalog.Table {
		tbl, err := cat.Create(name, []catalog.Column{
			{Name: prefix + "1", Type: types.KindInt},
			{Name: prefix + "2", Type: types.KindInt},
			{Name: prefix + "3", Type: types.KindInt},
			{Name: prefix + "4", Type: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	val := func() types.Value {
		if rng.Intn(10) == 0 {
			return types.Null()
		}
		return types.NewInt(int64(rng.Intn(8)))
	}
	big := func() types.Value {
		if rng.Intn(10) == 0 {
			return types.Null()
		}
		return types.NewInt(int64(rng.Intn(3000)))
	}
	for _, spec := range []struct{ name, prefix string }{{"r", "a"}, {"s", "b"}, {"t", "c"}} {
		tbl := mk(spec.name, spec.prefix)
		var prev []types.Value
		for i := 0; i < n; i++ {
			row := []types.Value{val(), val(), val(), big()}
			// Explicit duplicates (~20%) stress multiset correctness.
			if prev != nil && rng.Intn(5) == 0 {
				row = prev
			}
			prev = row
			if err := tbl.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cat
}
