package rewrite

import (
	"strings"
	"testing"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/datagen"
	"disqo/internal/exec"
)

func countSemiAnti(plan algebra.Op) (semi, anti int) {
	algebra.Walk(plan, func(op algebra.Op) bool {
		switch op.(type) {
		case *algebra.SemiJoin:
			semi++
		case *algebra.AntiJoin:
			anti++
		}
		return true
	})
	return semi, anti
}

func TestConjunctiveExistsBecomesSemiJoin(t *testing.T) {
	cat := rstCatalog(t)
	cases := []struct {
		sql        string
		semi, anti int
	}{
		{`SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2)`, 1, 0},
		{`SELECT DISTINCT * FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE a2 = b2)`, 0, 1},
		{`SELECT DISTINCT * FROM r WHERE a2 IN (SELECT b2 FROM s WHERE b4 > 100)`, 1, 0},
		{`SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2 AND b4 > 1000) AND a4 > 100`, 1, 0},
	}
	for _, c := range cases {
		canonical, rewritten, _ := planFor(t, cat, c.sql, AllCaps())
		semi, anti := countSemiAnti(rewritten)
		if semi != c.semi || anti != c.anti {
			t.Errorf("%s: semi/anti = %d/%d, want %d/%d\n%s",
				c.sql, semi, anti, c.semi, c.anti, algebra.Explain(rewritten))
		}
		if algebra.ContainsSubquery(rewritten) {
			t.Errorf("%s: must be fully unnested", c.sql)
		}
		assertEquivalent(t, cat, canonical, rewritten, c.sql)
	}
}

func TestNotInStaysCountBased(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r WHERE a2 NOT IN (SELECT b2 FROM s)`
	canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
	if semi, anti := countSemiAnti(rewritten); semi != 0 || anti != 0 {
		t.Errorf("NOT IN must not use joins (NULL semantics): %d/%d", semi, anti)
	}
	assertEquivalent(t, cat, canonical, rewritten, sql)
}

func TestDisjunctiveExistsStaysCountBased(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2) OR a4 > 1500`
	canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
	if semi, anti := countSemiAnti(rewritten); semi != 0 || anti != 0 {
		t.Errorf("disjunctive EXISTS must go through the cascade: %d/%d", semi, anti)
	}
	if algebra.ContainsSubquery(rewritten) {
		t.Error("disjunctive EXISTS must still unnest (count form)")
	}
	assertEquivalent(t, cat, canonical, rewritten, sql)
}

func TestSemiJoinCapOff(t *testing.T) {
	cat := rstCatalog(t)
	caps := AllCaps()
	caps.SemiJoins = false
	sql := `SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2)`
	canonical, rewritten, rw := planFor(t, cat, sql, caps)
	if semi, anti := countSemiAnti(rewritten); semi != 0 || anti != 0 {
		t.Error("cap off must fall back to count form")
	}
	if !strings.Contains(strings.Join(rw.Trace, ";"), "COUNT") {
		t.Errorf("trace = %v", rw.Trace)
	}
	assertEquivalent(t, cat, canonical, rewritten, sql)
}

func TestUncorrelatedExistsUntouched(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE b4 > 100)`
	canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
	if semi, _ := countSemiAnti(rewritten); semi != 0 {
		t.Error("uncorrelated EXISTS is type N; leave it materialized")
	}
	assertEquivalent(t, cat, canonical, rewritten, sql)
}

// benchCatalog builds a mid-sized RST instance for the ablation
// benchmarks below.
func benchCatalog(b *testing.B) *catalog.Catalog {
	b.Helper()
	cat := catalog.New()
	if err := datagen.LoadRST(cat, datagen.RSTConfig{SFR: 0.1, SFS: 0.1, SFT: 0.1}); err != nil {
		b.Fatal(err)
	}
	return cat
}

func benchExists(b *testing.B, caps Caps) {
	cat := benchCatalog(b)
	canonical, rewritten, _ := planFor(b, cat,
		`SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2 AND b4 > 1500)`, caps)
	_ = canonical
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := exec.New(cat, exec.Options{Cache: exec.CacheAll})
		if _, err := ex.Run(rewritten); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExistsSemiJoin vs BenchmarkExistsCountBased: the ablation for
// the semijoin path (DESIGN.md design choices).
func BenchmarkExistsSemiJoin(b *testing.B) { benchExists(b, AllCaps()) }

func BenchmarkExistsCountBased(b *testing.B) {
	caps := AllCaps()
	caps.SemiJoins = false
	benchExists(b, caps)
}
