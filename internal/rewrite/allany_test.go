package rewrite

import (
	"strings"
	"testing"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/types"
)

// TestAllAnyUnnesting covers the paper's future-work item (3): θ ALL and
// θ SOME/ANY linking operators, disjunctively and conjunctively, verified
// against canonical evaluation on data with NULLs and duplicates.
func TestAllAnyUnnesting(t *testing.T) {
	cat := rstCatalog(t)
	queries := []string{
		// Correlated ANY / ALL in disjunctions.
		`SELECT DISTINCT * FROM r WHERE a1 > ANY (SELECT b1 FROM s WHERE a2 = b2) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE a1 > ALL (SELECT b1 FROM s WHERE a2 = b2) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE a1 <= SOME (SELECT b1 FROM s WHERE a2 = b2) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE a1 < ALL (SELECT b1 FROM s WHERE a2 = b2) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE a1 >= ALL (SELECT b1 FROM s WHERE a2 = b2)`,
		// Equality forms route through IN / NOT IN.
		`SELECT DISTINCT * FROM r WHERE a2 = ANY (SELECT b2 FROM s) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE a2 <> ALL (SELECT b2 FROM s WHERE b4 > 100)`,
		// NULLs in the subquery column (b3 has a NULL row).
		`SELECT DISTINCT * FROM r WHERE a3 > ALL (SELECT b3 FROM s WHERE a2 = b2) OR a4 > 1500`,
		`SELECT DISTINCT * FROM r WHERE a3 > ANY (SELECT b3 FROM s WHERE a2 = b2)`,
		// Negation flips the quantifier in NNF.
		`SELECT DISTINCT * FROM r WHERE NOT (a1 <= ALL (SELECT b1 FROM s WHERE a2 = b2))`,
	}
	for _, sql := range queries {
		canonical, rewritten, _ := planFor(t, cat, sql, AllCaps())
		assertEquivalent(t, cat, canonical, rewritten, sql)
	}

	// The ordering quantifiers must actually unnest.
	_, rewritten, rw := planFor(t, cat, queries[1], AllCaps())
	if algebra.ContainsSubquery(rewritten) {
		t.Errorf("θ ALL must unnest:\n%s", algebra.Explain(rewritten))
	}
	trace := strings.Join(rw.Trace, ";")
	if !strings.Contains(trace, "θ ALL") {
		t.Errorf("trace = %v", rw.Trace)
	}
}

// TestAllAnyVacuousTruth pins the empty-set semantics: θ ALL over an
// empty subquery result is TRUE, θ ANY is FALSE.
func TestAllAnyVacuousTruth(t *testing.T) {
	cat := catalog.New()
	r, _ := cat.Create("r", []catalog.Column{{Name: "x", Type: types.KindInt}})
	s, _ := cat.Create("s", []catalog.Column{{Name: "y", Type: types.KindInt}, {Name: "k", Type: types.KindInt}})
	r.Insert([]types.Value{types.NewInt(1)})
	s.Insert([]types.Value{types.NewInt(5), types.NewInt(99)}) // never matches k = x
	for _, c := range []struct {
		sql  string
		want int
	}{
		{`SELECT * FROM r WHERE x > ALL (SELECT y FROM s WHERE k = x)`, 1},   // vacuous TRUE
		{`SELECT * FROM r WHERE x > ANY (SELECT y FROM s WHERE k = x)`, 0},   // vacuous FALSE
		{`SELECT * FROM r WHERE x <= ALL (SELECT y FROM s WHERE k = 99)`, 1}, // 1 <= 5
		{`SELECT * FROM r WHERE x > ANY (SELECT y FROM s WHERE k = 99)`, 0},  // 1 > 5 false
	} {
		canonical, rewritten, _ := planFor(t, cat, c.sql, AllCaps())
		for _, plan := range []algebra.Op{canonical, rewritten} {
			rel := run(t, cat, plan)
			if rel.Cardinality() != c.want {
				t.Errorf("%s: got %d rows, want %d\n%s", c.sql, rel.Cardinality(), c.want, algebra.Explain(plan))
			}
		}
	}
}

// TestAllAnyNullBlocking pins the NULL semantics: a NULL in the subquery
// column makes θ ALL not-true (unknown) even when all non-NULLs satisfy
// it, while θ ANY succeeds on any satisfying non-NULL.
func TestAllAnyNullBlocking(t *testing.T) {
	cat := catalog.New()
	r, _ := cat.Create("r", []catalog.Column{{Name: "x", Type: types.KindInt}})
	s, _ := cat.Create("s", []catalog.Column{{Name: "y", Type: types.KindInt}})
	r.Insert([]types.Value{types.NewInt(10)})
	s.Insert([]types.Value{types.NewInt(1)})
	s.Insert([]types.Value{types.Null()})
	for _, c := range []struct {
		sql  string
		want int
	}{
		{`SELECT * FROM r WHERE x > ALL (SELECT y FROM s)`, 0}, // NULL blocks ALL
		{`SELECT * FROM r WHERE x > ANY (SELECT y FROM s)`, 1}, // 10 > 1 suffices
	} {
		canonical, rewritten, _ := planFor(t, cat, c.sql, AllCaps())
		for _, plan := range []algebra.Op{canonical, rewritten} {
			rel := run(t, cat, plan)
			if rel.Cardinality() != c.want {
				t.Errorf("%s: got %d rows, want %d", c.sql, rel.Cardinality(), c.want)
			}
		}
	}
}
