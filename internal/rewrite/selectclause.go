package rewrite

import (
	"disqo/internal/algebra"
)

// Unnesting for subqueries in the SELECT clause — the technical report's
// "straightforward generalization": a map operator χ_{a:…f(subplan)…}
// over R is rewritten by extending R exactly as the WHERE-clause
// machinery would (Γ + outerjoin for conjunctive correlation, Eqv. 4/5
// structures for disjunctive correlation) and substituting the
// synthesized aggregate attribute for the subquery inside the map
// expression. Unlike the selection case, every outer tuple needs the
// value, so no bypass cascade applies.

// collectScalarSubqueries gathers the scalar subqueries appearing
// directly in an expression (not inside nested subplans).
func collectScalarSubqueries(e algebra.Expr, into []*algebra.ScalarSubquery) []*algebra.ScalarSubquery {
	switch x := e.(type) {
	case *algebra.ScalarSubquery:
		return append(into, x)
	case *algebra.CmpExpr:
		return collectScalarSubqueries(x.R, collectScalarSubqueries(x.L, into))
	case *algebra.AndExpr:
		return collectScalarSubqueries(x.R, collectScalarSubqueries(x.L, into))
	case *algebra.OrExpr:
		return collectScalarSubqueries(x.R, collectScalarSubqueries(x.L, into))
	case *algebra.NotExpr:
		return collectScalarSubqueries(x.E, into)
	case *algebra.ArithExpr:
		return collectScalarSubqueries(x.R, collectScalarSubqueries(x.L, into))
	case *algebra.LikeExpr:
		return collectScalarSubqueries(x.Pattern, collectScalarSubqueries(x.L, into))
	case *algebra.IsNullExpr:
		return collectScalarSubqueries(x.E, into)
	case *algebra.AggCombineExpr:
		return collectScalarSubqueries(x.R, collectScalarSubqueries(x.L, into))
	default:
		return into
	}
}

// replaceExpr rebuilds an expression with one node (matched by pointer
// identity) substituted.
func replaceExpr(e algebra.Expr, old, repl algebra.Expr) algebra.Expr {
	if e == old {
		return repl
	}
	switch x := e.(type) {
	case *algebra.CmpExpr:
		return algebra.Cmp(x.Op, replaceExpr(x.L, old, repl), replaceExpr(x.R, old, repl))
	case *algebra.AndExpr:
		return algebra.And(replaceExpr(x.L, old, repl), replaceExpr(x.R, old, repl))
	case *algebra.OrExpr:
		return algebra.Or(replaceExpr(x.L, old, repl), replaceExpr(x.R, old, repl))
	case *algebra.NotExpr:
		return algebra.Not(replaceExpr(x.E, old, repl))
	case *algebra.ArithExpr:
		return algebra.Arith(x.Op, replaceExpr(x.L, old, repl), replaceExpr(x.R, old, repl))
	case *algebra.LikeExpr:
		return algebra.Like(replaceExpr(x.L, old, repl), replaceExpr(x.Pattern, old, repl))
	case *algebra.IsNullExpr:
		return algebra.IsNull(replaceExpr(x.E, old, repl))
	case *algebra.AggCombineExpr:
		return algebra.AggCombine(x.Kind, replaceExpr(x.L, old, repl), replaceExpr(x.R, old, repl))
	default:
		return e
	}
}

// unnestMap removes correlated scalar subqueries from a map operator's
// expression. Subqueries it cannot handle stay nested (and still evaluate
// correctly through the environment chain).
func (rw *Rewriter) unnestMap(m *algebra.MapOp) (algebra.Op, bool, error) {
	subs := collectScalarSubqueries(m.Expr, nil)
	if len(subs) == 0 {
		return m, false, nil
	}
	cur := m.Child
	expr := m.Expr
	changed := false
	for _, sub := range subs {
		gExpr, cur2, ok, err := rw.unnestScalar(sub, cur)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		expr = replaceExpr(expr, sub, gExpr)
		cur = cur2
		changed = true
		rw.trace("select-clause subquery unnested into χ[%s]", m.Attr)
	}
	if !changed {
		return m, false, nil
	}
	out := algebra.Op(algebra.NewMap(cur, m.Attr, expr))
	if !out.Schema().Equal(m.Schema()) {
		out = algebra.NewProject(out, m.Schema().Attrs())
	}
	return out, true, nil
}
