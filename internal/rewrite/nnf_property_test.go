package rewrite

import (
	"math/rand"
	"testing"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/exec"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// TestNNFPreservesThreeValuedSemantics generates random predicate trees
// over a small column set, evaluates both the original and its negation
// normal form against random tuples (including NULLs), and requires the
// Kleene truth values to agree exactly — not just on "is true". This is
// the soundness property every rewrite in the package leans on.
func TestNNFPreservesThreeValuedSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cols := []string{"x.a", "x.b", "x.c"}
	schema := storage.NewSchema(cols...)
	cat := catalog.New()
	ex := exec.New(cat, exec.Options{})

	var gen func(depth int) algebra.Expr
	gen = func(depth int) algebra.Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			// Leaf: comparison between a column and a column/constant.
			l := algebra.Col(cols[rng.Intn(len(cols))])
			var r algebra.Expr
			if rng.Intn(2) == 0 {
				r = algebra.Col(cols[rng.Intn(len(cols))])
			} else {
				r = algebra.ConstInt(int64(rng.Intn(4)))
			}
			ops := []types.CompareOp{types.EQ, types.NE, types.LT, types.LE, types.GT, types.GE}
			leaf := algebra.Expr(algebra.Cmp(ops[rng.Intn(len(ops))], l, r))
			if rng.Intn(4) == 0 {
				leaf = algebra.IsNull(algebra.Col(cols[rng.Intn(len(cols))]))
			}
			return leaf
		}
		switch rng.Intn(3) {
		case 0:
			return algebra.And(gen(depth-1), gen(depth-1))
		case 1:
			return algebra.Or(gen(depth-1), gen(depth-1))
		default:
			return algebra.Not(gen(depth - 1))
		}
	}
	randVal := func() types.Value {
		if rng.Intn(4) == 0 {
			return types.Null()
		}
		return types.NewInt(int64(rng.Intn(4)))
	}

	for trial := 0; trial < 500; trial++ {
		pred := gen(4)
		nnf := normalizeNNF(pred)
		for tup := 0; tup < 8; tup++ {
			row := []types.Value{randVal(), randVal(), randVal()}
			env := exec.Bind(nil, schema, row)
			a, err := ex.EvalPred(pred, env)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ex.EvalPred(nnf, env)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("NNF changed semantics on %s:\noriginal: %s = %v\nnnf:      %s = %v\nrow: %v",
					types.FormatTuple(row), pred, a, nnf, b, row)
			}
		}
	}
}

// TestReorderPreservesThreeValuedSemantics does the same for the S3
// baseline's rank reordering: commuting AND/OR operands must not change
// Kleene truth values.
func TestReorderPreservesThreeValuedSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cols := []string{"x.a", "x.b"}
	schema := storage.NewSchema(cols...)
	cat := catalog.New()
	ex := exec.New(cat, exec.Options{})
	ro := NewReorderer(cat)

	leaf := func() algebra.Expr {
		return algebra.Cmp(types.CompareOp(rng.Intn(6)),
			algebra.Col(cols[rng.Intn(2)]), algebra.ConstInt(int64(rng.Intn(3))))
	}
	for trial := 0; trial < 200; trial++ {
		pred := algebra.Or(algebra.And(leaf(), leaf()), leaf(), algebra.And(leaf(), algebra.Or(leaf(), leaf())))
		reordered := ro.reorderExpr(pred, nil)
		for tup := 0; tup < 6; tup++ {
			row := []types.Value{types.NewInt(int64(rng.Intn(3))), types.Null()}
			if rng.Intn(2) == 0 {
				row[1] = types.NewInt(int64(rng.Intn(3)))
			}
			env := exec.Bind(nil, schema, row)
			a, _ := ex.EvalPred(pred, env)
			b, _ := ex.EvalPred(reordered, env)
			if a != b {
				t.Fatalf("reorder changed semantics:\n%s = %v\n%s = %v\nrow %v",
					pred, a, reordered, b, row)
			}
		}
	}
}
