package rewrite

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"disqo/internal/catalog"
	"disqo/internal/sqlparser"
	"disqo/internal/translate"
)

// Randomized grammar-level property test: generate queries over the RST
// schema covering the whole unnesting surface — simple/linear/tree
// nesting, conjunctive/disjunctive linking and correlation, every
// aggregate and linking operator, EXISTS/IN and θ-quantifiers — and
// require canonical and unnested evaluation to agree on randomized data
// with NULLs and duplicates.

type queryGen struct {
	rng *rand.Rand
}

// cmpOps are the linking operators θ the paper supports.
var genCmpOps = []string{"=", "<>", "<", "<=", ">", ">="}

func (g *queryGen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

// col returns a random column of the given table prefix.
func (g *queryGen) col(prefix string) string {
	return fmt.Sprintf("%s%d", prefix, 1+g.rng.Intn(4))
}

// simplePred is a subquery-free predicate over the given prefix.
func (g *queryGen) simplePred(prefix string) string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s %s %d", g.col(prefix), g.pick(genCmpOps), g.rng.Intn(3000))
	case 1:
		return fmt.Sprintf("%s BETWEEN %d AND %d", g.col(prefix), g.rng.Intn(5), 5+g.rng.Intn(10))
	case 2:
		return fmt.Sprintf("%s IS NOT NULL", g.col(prefix))
	default:
		return fmt.Sprintf("%s %s %s", g.col(prefix), g.pick(genCmpOps), g.col(prefix))
	}
}

// aggCall is a random aggregate over the inner prefix.
func (g *queryGen) aggCall(prefix string) string {
	switch g.rng.Intn(7) {
	case 0:
		return "COUNT(*)"
	case 1:
		return "COUNT(DISTINCT *)"
	case 2:
		return "COUNT(" + g.col(prefix) + ")"
	case 3:
		return "SUM(" + g.col(prefix) + ")"
	case 4:
		return "AVG(" + g.col(prefix) + ")"
	case 5:
		return "MIN(" + g.col(prefix) + ")"
	default:
		return "MAX(" + g.col(prefix) + ")"
	}
}

// innerPred builds the nested block's WHERE clause: a correlation
// predicate (equality or θ) placed conjunctively or disjunctively with a
// local predicate, optionally with a deeper nested block (linear
// nesting).
func (g *queryGen) innerPred(outer, inner, deeper string, depth int) string {
	corrOp := "="
	if g.rng.Intn(3) == 0 {
		corrOp = g.pick(genCmpOps)
	}
	corr := fmt.Sprintf("%s %s %s", g.col(outer), corrOp, g.col(inner))
	second := g.simplePred(inner)
	if depth > 0 && deeper != "" && g.rng.Intn(3) == 0 {
		second = fmt.Sprintf("%s %s (SELECT %s FROM %s WHERE %s)",
			g.col(inner), g.pick(genCmpOps), g.aggCall(deeper), tableOf(deeper),
			g.innerPred(inner, deeper, "", depth-1))
	}
	if g.rng.Intn(2) == 0 {
		return corr + " OR " + second
	}
	return corr + " AND " + second
}

func tableOf(prefix string) string {
	switch prefix {
	case "a":
		return "r"
	case "b":
		return "s"
	default:
		return "t"
	}
}

// linkTerm builds one disjunct/conjunct of the outer WHERE clause.
func (g *queryGen) linkTerm(depth int) string {
	switch g.rng.Intn(6) {
	case 0:
		return g.simplePred("a")
	case 1: // scalar linking predicate over S
		return fmt.Sprintf("%s %s (SELECT %s FROM s WHERE %s)",
			g.col("a"), g.pick(genCmpOps), g.aggCall("b"), g.innerPred("a", "b", "c", depth))
	case 2: // scalar linking predicate over T
		return fmt.Sprintf("%s %s (SELECT %s FROM t WHERE %s)",
			g.col("a"), g.pick(genCmpOps), g.aggCall("c"), g.innerPred("a", "c", "", 0))
	case 3:
		return fmt.Sprintf("EXISTS (SELECT * FROM s WHERE %s)", g.innerPred("a", "b", "", 0))
	case 4:
		neg := ""
		if g.rng.Intn(2) == 0 {
			neg = "NOT "
		}
		return fmt.Sprintf("%s %sIN (SELECT %s FROM s WHERE %s)",
			g.col("a"), neg, g.col("b"), g.simplePred("b"))
	default:
		quant := g.pick([]string{"ALL", "ANY"})
		return fmt.Sprintf("%s %s %s (SELECT %s FROM s WHERE %s)",
			g.col("a"), g.pick([]string{"<", "<=", ">", ">="}), quant,
			g.col("b"), g.innerPred("a", "b", "", 0))
	}
}

// query builds a full query over r. One in three queries omits DISTINCT,
// checking the paper's §3.7 multiset-correctness claim: the rewrites must
// preserve duplicate multiplicities, not just the qualifying value set
// (randomRST instances contain duplicate rows by construction).
func (g *queryGen) query() string {
	nTerms := 1 + g.rng.Intn(3)
	terms := make([]string, nTerms)
	for i := range terms {
		terms[i] = g.linkTerm(1)
	}
	glue := " OR "
	if g.rng.Intn(4) == 0 {
		glue = " AND "
	}
	pred := strings.Join(terms, glue)
	if g.rng.Intn(8) == 0 {
		pred = "NOT (" + pred + ")"
	}
	distinct := "DISTINCT "
	if g.rng.Intn(3) == 0 {
		distinct = ""
	}
	return "SELECT " + distinct + "* FROM r WHERE " + pred
}

func TestGeneratedQueriesCanonicalVsUnnested(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized battery")
	}
	rng := rand.New(rand.NewSource(20260706))
	g := &queryGen{rng: rng}
	tried, unnestable := 0, 0
	for trial := 0; trial < 2; trial++ {
		cat := randomRST(t, rng, 25)
		testOneCatalog(t, g, cat, &tried, &unnestable)
		if t.Failed() {
			return
		}
	}
	// The generator must actually exercise the rewrites, not just produce
	// canonical-only queries.
	if unnestable*2 < tried {
		t.Errorf("only %d/%d generated queries were unnestable — generator drifted", unnestable, tried)
	}
}

func testOneCatalog(t *testing.T, g *queryGen, cat *catalog.Catalog, tried, unnestable *int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		sql := g.query()
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("generator produced unparsable SQL %q: %v", sql, err)
		}
		canonical, err := translate.New(cat).Translate(stmt)
		if err != nil {
			t.Fatalf("generator produced untranslatable SQL %q: %v", sql, err)
		}
		rw := New(cat, AllCaps())
		unnested, err := rw.Rewrite(canonical)
		if err != nil {
			t.Fatalf("rewrite failed on %q: %v", sql, err)
		}
		*tried++
		if len(rw.Trace) > 0 {
			*unnestable++
		}
		assertEquivalent(t, cat, canonical, unnested, sql)
		if t.Failed() {
			t.Fatalf("first failing query: %s", sql)
		}
	}
}
