package rewrite

import (
	"sort"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/stats"
)

// Reorderer reorders AND/OR operands of selection predicates by rank
// without unnesting anything — the behavior of an optimizer that
// understands short-circuit evaluation but cannot decorrelate (the S3
// baseline): the cheap half of "subquery OR cheap" gets evaluated first,
// halving nested-loop work without changing its asymptotics.
type Reorderer struct {
	est *stats.Estimator
	// Applied counts how many predicates were reordered.
	Applied int
}

// NewReorderer returns a predicate reorderer over the catalog's
// statistics; cat may be the live catalog or a pinned snapshot.
func NewReorderer(cat catalog.Reader) *Reorderer {
	return &Reorderer{est: stats.New(cat)}
}

// Rewrite returns a plan whose selection predicates evaluate their
// operands in ascending rank order. Reordering commutative Kleene
// connectives preserves three-valued semantics.
func (ro *Reorderer) Rewrite(plan algebra.Op) (algebra.Op, error) {
	rw := &Rewriter{memo: make(map[algebra.Op]algebra.Op), est: ro.est, reorder: ro}
	return rw.rewriteOp(plan)
}

// reorderExpr rebuilds a predicate with rank-ordered operands.
func (ro *Reorderer) reorderExpr(e algebra.Expr, input algebra.Op) algebra.Expr {
	switch e.(type) {
	case *algebra.OrExpr:
		parts := algebra.SplitDisjuncts(e)
		for i, p := range parts {
			parts[i] = ro.reorderExpr(p, input)
		}
		if ro.sortByRank(parts, input) {
			ro.Applied++
		}
		return algebra.Or(parts...)
	case *algebra.AndExpr:
		parts := algebra.SplitConjuncts(e)
		for i, p := range parts {
			parts[i] = ro.reorderExpr(p, input)
		}
		if ro.sortByRank(parts, input) {
			ro.Applied++
		}
		return algebra.And(parts...)
	default:
		return e
	}
}

// sortByRank stably sorts parts by rank and reports whether the order
// changed.
func (ro *Reorderer) sortByRank(parts []algebra.Expr, input algebra.Op) bool {
	ranks := make([]float64, len(parts))
	for i, p := range parts {
		ranks[i] = ro.est.Rank(p, input)
	}
	idx := make([]int, len(parts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ranks[idx[a]] < ranks[idx[b]] })
	changed := false
	sorted := make([]algebra.Expr, len(parts))
	for i, j := range idx {
		if i != j {
			changed = true
		}
		sorted[i] = parts[j]
	}
	copy(parts, sorted)
	return changed
}
