package rewrite

import (
	"fmt"
	"sort"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/types"
)

// unnestSelect attempts to remove nested subqueries from one selection.
// It returns the (possibly) new plan and whether anything changed.
func (rw *Rewriter) unnestSelect(sel *algebra.Select) (algebra.Op, bool, error) {
	pred := normalizeNNFMode(sel.Pred, rw.nulls)
	if !algebra.HasSubquery(pred) {
		return sel, false, nil
	}
	child := sel.Child
	outAttrs := child.Schema().Attrs()

	if len(algebra.SplitDisjuncts(pred)) > 1 {
		// Disjunctive linking: σ_{d1 ∨ … ∨ dn}(child). Quantified
		// disjuncts go through the count conversion so the cascade's
		// scalar machinery applies.
		if rw.caps.Quantified {
			pred = rw.quantToCount(pred)
		}
		disjuncts := algebra.SplitDisjuncts(pred)
		if rw.caps.ORExpansion {
			return rw.orExpand(child, disjuncts, outAttrs)
		}
		if !rw.caps.Bypass {
			return sel, false, nil
		}
		out, changed, err := rw.cascade(child, disjuncts, outAttrs)
		if err != nil || !changed {
			return sel, changed, err
		}
		return out, true, nil
	}

	// Conjunctive predicate. Correlated quantified conjuncts become
	// semi-/anti-joins; linking conjuncts are unnested in place (Eqv. 1 /
	// 4 / 5); conjuncts that are disjunctions containing subqueries are
	// peeled into stacked bypass cascades.
	cur := child
	changed := false
	var plain, orSubs []algebra.Expr
	for _, c := range algebra.SplitConjuncts(pred) {
		if q, ok := c.(*algebra.QuantSubquery); ok && rw.caps.SemiJoins {
			cur2, ok2, err := rw.unnestQuantConjunct(q, cur)
			if err != nil {
				return nil, false, err
			}
			if ok2 {
				cur = cur2
				changed = true
				continue // the conjunct is absorbed by the join
			}
		}
		if rw.caps.Quantified {
			c = rw.quantToCount(c)
		}
		for _, cc := range algebra.SplitConjuncts(c) {
			if len(algebra.SplitDisjuncts(cc)) > 1 && algebra.HasSubquery(cc) {
				orSubs = append(orSubs, cc)
			} else {
				plain = append(plain, cc)
			}
		}
	}
	newConj := make([]algebra.Expr, 0, len(plain))
	for _, c := range plain {
		c2, cur2, ok, err := rw.unnestConjunct(c, cur)
		if err != nil {
			return nil, false, err
		}
		if ok {
			changed = true
			cur = cur2
			newConj = append(newConj, c2)
		} else {
			newConj = append(newConj, c)
		}
	}

	var out algebra.Op
	if len(newConj) > 0 {
		out = algebra.NewSelect(cur, algebra.And(newConj...))
	} else {
		out = cur
	}

	if len(orSubs) > 0 {
		if !rw.caps.Bypass && !rw.caps.ORExpansion {
			if !changed {
				return sel, false, nil
			}
		} else {
			for _, oc := range orSubs {
				ds := algebra.SplitDisjuncts(oc)
				var cascaded algebra.Op
				var cchanged bool
				var err error
				if rw.caps.ORExpansion {
					cascaded, cchanged, err = rw.orExpand(out, ds, outAttrs)
				} else {
					cascaded, cchanged, err = rw.cascade(out, ds, outAttrs)
				}
				if err != nil {
					return nil, false, err
				}
				if !cchanged {
					out = algebra.NewSelect(out, oc)
					continue
				}
				changed = true
				out = cascaded
			}
		}
	}
	if !changed {
		return sel, false, nil
	}
	// Restore the original schema when the stream was extended.
	if !out.Schema().Equal(child.Schema()) {
		out = algebra.NewProject(out, outAttrs)
	}
	// Re-apply any deferred disjunctive conjuncts that could not cascade.
	if len(orSubs) > 0 && !rw.caps.Bypass && !rw.caps.ORExpansion {
		out = algebra.NewSelect(out, algebra.And(orSubs...))
	}
	return out, true, nil
}

// cascade implements the generalized Eqv. 2/3 bypass chain: disjuncts are
// ordered by rank; each non-final disjunct becomes a bypass selection
// whose positive stream contributes to the result and whose negative
// stream feeds the rest of the chain. Subquery disjuncts are unnested
// against the current stream before their bypass (which is exactly
// Eqv. 3 when such a disjunct comes first, and Eqv. 2 when a cheap simple
// predicate precedes it).
func (rw *Rewriter) cascade(base algebra.Op, disjuncts []algebra.Expr, outAttrs []string) (algebra.Op, bool, error) {
	type ranked struct {
		d    algebra.Expr
		rank float64
	}
	rs := make([]ranked, len(disjuncts))
	for i, d := range disjuncts {
		rs[i] = ranked{d: d, rank: rw.est.Rank(d, base)}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].rank < rs[j].rank })

	cur := base
	branches := make([]algebra.Op, 0, len(rs))
	anyUnnested := false
	for i, r := range rs {
		d := r.d
		cur2 := cur
		if algebra.HasSubquery(d) {
			var err error
			var ok bool
			d, cur2, ok, err = rw.unnestDisjunct(r.d, cur)
			if err != nil {
				return nil, false, err
			}
			if ok {
				anyUnnested = true
			}
		}
		if i == len(rs)-1 {
			branch := algebra.Op(algebra.NewSelect(cur2, d))
			branches = append(branches, projectTo(branch, outAttrs))
			continue
		}
		bp := algebra.NewBypassSelect(cur2, d)
		branches = append(branches, projectTo(algebra.Pos(bp), outAttrs))
		cur = algebra.Neg(bp)
	}
	if !anyUnnested {
		// No disjunct was unnested: a bypass chain alone buys nothing
		// here; leave the plan canonical.
		return nil, false, nil
	}
	rw.trace("bypass cascade over %d disjuncts (Eqv. 2/3 by rank)", len(rs))
	out := branches[0]
	for _, b := range branches[1:] {
		out = algebra.NewUnionDisjoint(out, b)
	}
	return out, true, nil
}

// orExpand is the S2 baseline's strategy: σ_{d1∨…∨dn}(R) becomes a
// duplicate-eliminating union of conjunctive selections, each of which
// conventional conjunctive unnesting (Eqv. 1) can then handle. Sound only
// under a later DISTINCT (which the paper's queries all have); unlike the
// bypass cascade it evaluates every disjunct over all of R and pays for
// the union's duplicate elimination.
func (rw *Rewriter) orExpand(base algebra.Op, disjuncts []algebra.Expr, outAttrs []string) (algebra.Op, bool, error) {
	branches := make([]algebra.Op, 0, len(disjuncts))
	anyUnnested := false
	for _, d := range disjuncts {
		cur := base
		d2 := d
		if algebra.HasSubquery(d) {
			var err error
			var ok bool
			d2, cur, ok, err = rw.unnestDisjunct(d, base)
			if err != nil {
				return nil, false, err
			}
			if ok {
				anyUnnested = true
			}
		}
		branches = append(branches, projectTo(algebra.NewSelect(cur, d2), outAttrs))
	}
	if !anyUnnested {
		return nil, false, nil
	}
	rw.trace("OR-expansion over %d disjuncts (union + distinct)", len(disjuncts))
	out := branches[0]
	for _, b := range branches[1:] {
		out = algebra.NewUnionAll(out, b)
	}
	return algebra.NewDistinct(out), true, nil
}

func projectTo(op algebra.Op, attrs []string) algebra.Op {
	if op.Schema().Len() == len(attrs) {
		same := true
		for i, a := range attrs {
			if op.Schema().Attr(i) != a {
				same = false
				break
			}
		}
		if same {
			return op
		}
	}
	return algebra.NewProject(op, attrs)
}

// unnestDisjunct unnests every linking conjunct inside one disjunct,
// threading the stream extension through.
func (rw *Rewriter) unnestDisjunct(d algebra.Expr, cur algebra.Op) (algebra.Expr, algebra.Op, bool, error) {
	conjs := algebra.SplitConjuncts(d)
	out := make([]algebra.Expr, 0, len(conjs))
	changed := false
	for _, c := range conjs {
		c2, cur2, ok, err := rw.unnestConjunct(c, cur)
		if err != nil {
			return nil, nil, false, err
		}
		if ok {
			changed = true
			cur = cur2
			out = append(out, c2)
		} else {
			out = append(out, c)
		}
	}
	return algebra.And(out...), cur, changed, nil
}

// linking describes one linking predicate "other θ f(subplan)".
type linking struct {
	other algebra.Expr
	op    types.CompareOp
	sub   *algebra.ScalarSubquery
}

// matchLinking recognizes a comparison with a scalar subquery on exactly
// one side and a subquery-free expression on the other, normalizing the
// subquery to the right.
func matchLinking(c algebra.Expr) (*linking, bool) {
	cmp, ok := c.(*algebra.CmpExpr)
	if !ok {
		return nil, false
	}
	lsub, lok := cmp.L.(*algebra.ScalarSubquery)
	rsub, rok := cmp.R.(*algebra.ScalarSubquery)
	switch {
	case lok && !rok && !algebra.HasSubquery(cmp.R):
		return &linking{other: cmp.R, op: cmp.Op.Flip(), sub: lsub}, true
	case rok && !lok && !algebra.HasSubquery(cmp.L):
		return &linking{other: cmp.L, op: cmp.Op, sub: rsub}, true
	default:
		return nil, false
	}
}

// unnestConjunct unnests a single linking conjunct against the stream
// cur. Returns ok=false (without error) for shapes outside the supported
// patterns, which then simply stay nested.
func (rw *Rewriter) unnestConjunct(c algebra.Expr, cur algebra.Op) (algebra.Expr, algebra.Op, bool, error) {
	lk, ok := matchLinking(c)
	if !ok {
		return c, cur, false, nil
	}
	gExpr, cur2, ok, err := rw.unnestScalar(lk.sub, cur)
	if err != nil || !ok {
		return c, cur, false, err
	}
	return algebra.Cmp(lk.op, lk.other, gExpr), cur2, true, nil
}

// unnestScalar removes one correlated scalar subquery by extending the
// outer stream cur, dispatching between Eqv. 1 (conjunctive correlation),
// Eqv. 4 (disjunctive correlation, decomposable) and Eqv. 5 (general). On
// success it returns the expression (a synthesized attribute) that now
// carries the aggregate value for every cur tuple. The same machinery
// serves WHERE-clause linking predicates and SELECT-clause subqueries
// (the technical report’s generalization).
func (rw *Rewriter) unnestScalar(sub *algebra.ScalarSubquery, cur algebra.Op) (algebra.Expr, algebra.Op, bool, error) {
	if !algebra.Correlated(sub.Plan) {
		// Type A: materialized once by the executor's uncorrelated-plan
		// cache; nothing to unnest.
		return nil, cur, false, nil
	}
	// Direct correlation only (paper's stated limitation): every free
	// attribute must be supplied by the current outer stream.
	for _, col := range algebra.FreeColumns(sub.Plan) {
		if !cur.Schema().Has(col) {
			return nil, cur, false, nil
		}
	}
	// Collapse the subplan's top-level Select/Project layers into one
	// predicate over the widest schema: σ_a(Π(σ_b(X))) ≡ σ_{a∧b}(X) for
	// duplicate-preserving Π (projection only narrows the schema, so
	// every referenced column still exists below). Quantifier conversions
	// (IN, θ ALL/ANY) produce exactly these stacks. Peeling Π is not
	// sound for COUNT(DISTINCT *), whose argument is the projected tuple.
	plan := sub.Plan
	var topConjs []algebra.Expr
peel:
	for {
		switch p := plan.(type) {
		case *algebra.Project:
			if sub.Agg.Star && sub.Agg.Distinct {
				break peel
			}
			plan = p.Child
		case *algebra.Select:
			topConjs = append(topConjs, algebra.SplitConjuncts(p.Pred)...)
			plan = p.Child
		default:
			break peel
		}
	}
	if len(topConjs) == 0 {
		return nil, cur, false, nil
	}
	innerChild := plan
	innerSchema := innerChild.Schema()

	// Partition the inner predicate's conjuncts.
	var corrConjs, localConjs []algebra.Expr
	var corrDisj algebra.Expr // a conjunct that is a disjunction involving correlation
	for _, ic := range topConjs {
		ds := algebra.SplitDisjuncts(ic)
		freeHere := hasFreeCols(ic, innerSchema)
		switch {
		case len(ds) == 1 && freeHere:
			if algebra.HasSubquery(ic) {
				return nil, cur, false, nil // correlated conjunct with nested subquery: unsupported
			}
			corrConjs = append(corrConjs, ic)
		case len(ds) > 1 && freeHere:
			if corrDisj != nil {
				return nil, cur, false, nil // at most one disjunctive-correlation conjunct supported
			}
			corrDisj = ic
		default:
			localConjs = append(localConjs, ic)
		}
	}

	inner := innerChild
	if len(localConjs) > 0 {
		inner = algebra.NewSelect(innerChild, algebra.And(localConjs...))
	}

	if corrDisj != nil {
		if len(corrConjs) > 0 || !rw.caps.DisjunctiveCorrelation {
			return nil, cur, false, nil
		}
		return rw.unnestDisjunctiveCorrelation(sub, inner, innerSchema, corrDisj, cur)
	}
	if len(corrConjs) == 0 {
		// Correlation lives deeper than the block-level predicate
		// (indirect correlation) — outside the paper's scope.
		return nil, cur, false, nil
	}
	if !rw.caps.Conjunctive {
		return nil, cur, false, nil
	}
	return rw.unnestConjunctiveCorrelation(sub, inner, innerSchema, corrConjs, cur)
}

// unnestConjunctiveCorrelation is Eqv. 1: group the inner block on its
// correlation attributes, leftouterjoin with f(∅) defaults, compare
// against the materialized aggregate. Non-equality correlation falls back
// to the binary grouping operator, which has no count bug by
// construction.
func (rw *Rewriter) unnestConjunctiveCorrelation(sub *algebra.ScalarSubquery, inner algebra.Op,
	innerSchema interface{ Has(string) bool }, corrConjs []algebra.Expr,
	cur algebra.Op) (algebra.Expr, algebra.Op, bool, error) {

	var outerCols, innerCols []string
	allEq := true
	for _, cc := range corrConjs {
		oc, icn, ok := splitCorrEquality(cc, innerSchema, cur.Schema())
		if !ok {
			allEq = false
			break
		}
		outerCols = append(outerCols, oc)
		innerCols = append(innerCols, icn)
	}

	g := rw.fresh("g", cur)
	item := rw.aggItem(g, sub, inner)

	if allEq {
		// Group on the distinct inner correlation attributes (a repeated
		// inner column, as in A2=B2 AND A3=B2, groups once).
		groupCols := make([]string, 0, len(innerCols))
		seen := map[string]bool{}
		for _, ic := range innerCols {
			if !seen[ic] {
				seen[ic] = true
				groupCols = append(groupCols, ic)
			}
		}
		grouped := algebra.NewGroupBy(inner, groupCols, []algebra.AggItem{item}, false)
		var joinPred algebra.Expr
		for i := range outerCols {
			eq := algebra.Cmp(types.EQ, algebra.Col(outerCols[i]), algebra.Col(innerCols[i]))
			joinPred = algebra.And(joinPred, eq)
		}
		oj := algebra.NewLeftOuterJoin(cur, grouped, joinPred,
			[]algebra.Default{{Attr: g, Val: sub.Agg.Empty()}})
		// Drop the inner key columns so further unnestings against the
		// same inner relation cannot collide on attribute names.
		narrowed := algebra.NewProject(oj, append(append([]string(nil), cur.Schema().Attrs()...), g))
		rw.trace("Eqv. 1: Γ[%v] + ⟕[%s:%s(∅)] for %s", innerCols, g, sub.Agg.Kind, sub.Agg)
		return algebra.Col(g), narrowed, true, nil
	}

	// Generalized correlation (θ ∈ {≠,<,≤,>,≥} or expression-valued):
	// binary grouping extends every outer tuple directly.
	corr := algebra.And(corrConjs...)
	for _, col := range corr.Columns(nil) {
		if !innerSchema.Has(col) && !cur.Schema().Has(col) {
			return nil, nil, false, nil // indirect correlation: not supported
		}
	}
	bg := algebra.NewBinaryGroup(cur, inner, corr, []algebra.AggItem{item})
	rw.trace("Eqv. 1 (binary-grouping form): Γ²[%s] for %s", corr, sub.Agg)
	return algebra.Col(g), bg, true, nil
}

// unnestDisjunctiveCorrelation dispatches between Eqv. 4 and Eqv. 5 for a
// linking predicate whose inner block's correlation occurs in a
// disjunction: f(σ_{corr ∨ p}(inner)).
func (rw *Rewriter) unnestDisjunctiveCorrelation(sub *algebra.ScalarSubquery, inner algebra.Op,
	innerSchema interface{ Has(string) bool }, corrDisj algebra.Expr,
	cur algebra.Op) (algebra.Expr, algebra.Op, bool, error) {

	var corrDs, pDs []algebra.Expr
	for _, d := range algebra.SplitDisjuncts(corrDisj) {
		if hasFreeCols(d, innerSchema) {
			corrDs = append(corrDs, d)
		} else {
			pDs = append(pDs, d)
		}
	}
	if len(pDs) == 0 {
		// Degenerate: all disjuncts correlated; Eqv. 5 handles it with an
		// always-false p, but a direct bypass join with empty negative
		// filter is equivalent — use Eqv. 5 with FALSE.
		pDs = []algebra.Expr{algebra.Const(types.NewBool(false))}
	}
	p := algebra.Or(pDs...)

	// Eqv. 4 preconditions (paper §3.3.2): decomposable aggregate, a
	// single equality correlation, p free of subqueries, and an inner
	// relation that is itself uncorrelated (so its positive stream is a
	// type-A aggregate the executor materializes once).
	if sub.Agg.Decomposable() && !algebra.HasSubquery(p) && len(corrDs) == 1 &&
		!algebra.Correlated(inner) && !rw.caps.PreferEqv5 {
		if oc, icn, ok := splitCorrEquality(corrDs[0], innerSchema, cur.Schema()); ok {
			return rw.buildEqv4(sub, inner, oc, icn, p, cur)
		}
	}
	return rw.buildEqv5(sub, inner, algebra.Or(corrDs...), p, cur)
}

// buildEqv4 implements Equivalence 4: split the inner relation with a
// bypass selection on p; the positive stream is aggregated once globally
// (fI), the negative stream is grouped on the correlation attribute and
// outerjoined; a map combines the partials with fO.
func (rw *Rewriter) buildEqv4(sub *algebra.ScalarSubquery, inner algebra.Op, outerCol, innerCol string,
	p algebra.Expr, cur algebra.Op) (algebra.Expr, algebra.Op, bool, error) {

	partials, err := sub.Agg.Partials()
	if err != nil {
		return nil, nil, false, err
	}
	bp := algebra.NewBypassSelect(inner, p)
	neg, pos := algebra.Neg(bp), algebra.Pos(bp)

	items := make([]algebra.AggItem, len(partials))
	defaults := make([]algebra.Default, len(partials))
	posSubs := make([]algebra.Expr, len(partials))
	for i, ps := range partials {
		g1 := rw.fresh("g", cur)
		items[i] = rw.aggItemSpec(g1, ps, sub, inner)
		defaults[i] = algebra.Default{Attr: g1, Val: ps.Empty()}
		posSubs[i] = algebra.Subquery(ps, rw.argFor(ps, sub), pos)
	}
	grouped := algebra.NewGroupBy(neg, []string{innerCol}, items, false)
	ojWide := algebra.NewLeftOuterJoin(cur, grouped,
		algebra.Cmp(types.EQ, algebra.Col(outerCol), algebra.Col(innerCol)), defaults)
	keep := append([]string(nil), cur.Schema().Attrs()...)
	for _, it := range items {
		keep = append(keep, it.Out)
	}
	oj := algebra.Op(algebra.NewProject(ojWide, keep))

	g := rw.fresh("g", cur)
	var mapped algebra.Op
	if sub.Agg.Kind == agg.Avg {
		gs := rw.fresh("g", cur)
		gc := rw.fresh("g", cur)
		m1 := algebra.NewMap(oj, gs, algebra.AggCombine(agg.Sum, algebra.Col(items[0].Out), posSubs[0]))
		m2 := algebra.NewMap(m1, gc, algebra.AggCombine(agg.Count, algebra.Col(items[1].Out), posSubs[1]))
		mapped = algebra.NewMap(m2, g, algebra.Arith(types.Div, algebra.Col(gs), algebra.Col(gc)))
	} else {
		mapped = algebra.NewMap(oj, g,
			algebra.AggCombine(partials[0].Kind, algebra.Col(items[0].Out), posSubs[0]))
	}
	rw.trace("Eqv. 4: σ±[%s] on inner, Γ[%s] + ⟕ + χ[%s:fO] for %s", p, innerCol, g, sub.Agg)
	return algebra.Col(g), mapped, true, nil
}

// buildEqv5 implements Equivalence 5: number the outer stream (ν), bypass
// join on the correlation predicate, filter the negative stream with p,
// and reassemble per-tuple aggregates by binary grouping on the number.
func (rw *Rewriter) buildEqv5(sub *algebra.ScalarSubquery, inner algebra.Op, corr, p algebra.Expr,
	cur algebra.Op) (algebra.Expr, algebra.Op, bool, error) {

	// Direct correlation check: every free column of corr must come from
	// the current outer stream.
	for _, col := range corr.Columns(nil) {
		if !inner.Schema().Has(col) && !cur.Schema().Has(col) {
			return nil, nil, false, nil
		}
	}
	t := rw.fresh("t", cur)
	numbered := algebra.NewNumber(cur, t)
	bj := algebra.NewBypassJoin(numbered, inner, corr)
	e1 := algebra.Op(algebra.Pos(bj))
	e2 := algebra.Op(algebra.NewSelect(algebra.Neg(bj), p))
	union := algebra.NewUnionDisjoint(e1, e2)

	// Keep only the tuple number and the inner attributes for grouping.
	keep := append([]string{t}, inner.Schema().Attrs()...)
	proj := algebra.NewProject(union, keep)
	t2 := rw.fresh("t", cur)
	ren, err := algebra.NewRename(proj, [][2]string{{t2, t}})
	if err != nil {
		return nil, nil, false, err
	}
	g := rw.fresh("g", cur)
	item := rw.aggItem(g, sub, inner)
	bg := algebra.NewBinaryGroup(numbered, ren,
		algebra.Cmp(types.EQ, algebra.Col(t), algebra.Col(t2)),
		[]algebra.AggItem{item})
	rw.trace("Eqv. 5: ν[%s] + ⋈±[%s] + σ[%s] + Γ²[%s=%s] for %s", t, corr, p, t, t2, sub.Agg)
	return algebra.Col(g), bg, true, nil
}

// aggItem builds the grouping aggregate for a subquery's spec, preserving
// the * argument as the inner block's attribute list.
func (rw *Rewriter) aggItem(out string, sub *algebra.ScalarSubquery, inner algebra.Op) algebra.AggItem {
	return rw.aggItemSpec(out, sub.Agg, sub, inner)
}

func (rw *Rewriter) aggItemSpec(out string, spec agg.Spec, sub *algebra.ScalarSubquery, inner algebra.Op) algebra.AggItem {
	item := algebra.AggItem{Out: out, Spec: spec, Arg: rw.argFor(spec, sub)}
	if spec.Star {
		item.ArgAttrs = append([]string(nil), inner.Schema().Attrs()...)
	}
	return item
}

// argFor maps the original aggregate argument onto a partial spec (AVG's
// SUM/COUNT partials reuse the same argument expression).
func (rw *Rewriter) argFor(spec agg.Spec, sub *algebra.ScalarSubquery) algebra.Expr {
	if spec.Star {
		return nil
	}
	return sub.Arg
}

// hasFreeCols reports whether the expression references a column outside
// the given schema.
func hasFreeCols(e algebra.Expr, schema interface{ Has(string) bool }) bool {
	for _, col := range e.Columns(nil) {
		if !schema.Has(col) {
			return true
		}
	}
	return false
}

// splitCorrEquality recognizes a correlation equality between an outer
// column (free w.r.t. the inner schema, present in the outer stream) and
// an inner column, in either operand order.
func splitCorrEquality(e algebra.Expr, innerSchema interface{ Has(string) bool },
	outerSchema interface{ Has(string) bool }) (outerCol, innerCol string, ok bool) {
	cmp, isCmp := e.(*algebra.CmpExpr)
	if !isCmp || cmp.Op != types.EQ {
		return "", "", false
	}
	l, lok := cmp.L.(*algebra.ColRef)
	r, rok := cmp.R.(*algebra.ColRef)
	if !lok || !rok {
		return "", "", false
	}
	switch {
	case !innerSchema.Has(l.Name) && innerSchema.Has(r.Name) && outerSchema.Has(l.Name):
		return l.Name, r.Name, true
	case !innerSchema.Has(r.Name) && innerSchema.Has(l.Name) && outerSchema.Has(r.Name):
		return r.Name, l.Name, true
	default:
		return "", "", false
	}
}

// String renders the trace for diagnostics.
func (rw *Rewriter) String() string {
	return fmt.Sprintf("rewriter(applied=%d)", len(rw.Trace))
}
