package rewrite

import (
	"strings"
	"testing"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/types"
)

// Golden plan-shape tests: the EXPLAIN rendering of the unnested plans
// for the paper's Figures 2(c), 3(b), 5(c) and 6(c). These pin the exact
// operator structure (including DAG sharing markers); if a rewrite
// changes shape, the diff shows here first.

func golden(t *testing.T, sql, want string) {
	t.Helper()
	// Empty tables: golden shapes must be purely structural, independent
	// of the statistics-driven rank ordering (covered elsewhere).
	cat := emptyRST(t)
	_, rewritten, _ := planFor(t, cat, sql, AllCaps())
	got := strings.TrimSpace(algebra.Explain(rewritten))
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("plan shape drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func emptyRST(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, spec := range []struct{ name, prefix string }{{"r", "a"}, {"s", "b"}, {"t", "c"}} {
		if _, err := cat.Create(spec.name, []catalog.Column{
			{Name: spec.prefix + "1", Type: types.KindInt},
			{Name: spec.prefix + "2", Type: types.KindInt},
			{Name: spec.prefix + "3", Type: types.KindInt},
			{Name: spec.prefix + "4", Type: types.KindInt},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func TestGoldenFig2cQ1(t *testing.T) {
	golden(t, q1, `
distinct
  Π[r.a1, r.a2, r.a3, r.a4]
    ∪̇
      +stream
        #1 σ±[(r.a4 > 1500)]
          scan(r)
      Π[r.a1, r.a2, r.a3, r.a4]
        σ[(r.a1 = g1)]
          Π[r.a1, r.a2, r.a3, r.a4, g1]
            ⟕[(r.a2 = s.b2)][g1:0]
              −stream
                ↑ see #1 σ±[(r.a4 > 1500)]
              Γ[[s.b2]][g1:COUNT(DISTINCT *)]
                scan(s)
`)
}

func TestGoldenFig3bQ2(t *testing.T) {
	golden(t, q2, `
distinct
  Π[r.a1, r.a2, r.a3, r.a4]
    Π[r.a1, r.a2, r.a3, r.a4]
      σ[(r.a1 = g2)]
        χ[g2:count_O(g1, COUNT(*){+stream(σ±[(s.b4 > 1500)](scan(s)))})]
          Π[r.a1, r.a2, r.a3, r.a4, g1]
            ⟕[(r.a2 = s.b2)][g1:0]
              scan(r)
              Γ[[s.b2]][g1:COUNT(*)]
                −stream
                  σ±[(s.b4 > 1500)]
                    scan(s)
`)
}

func TestGoldenFig5Q3(t *testing.T) {
	golden(t, q3, `
distinct
  Π[r.a1, r.a2, r.a3, r.a4]
    ∪̇
      Π[r.a1, r.a2, r.a3, r.a4]
        +stream
          #1 σ±[(r.a1 = g1)]
            Π[r.a1, r.a2, r.a3, r.a4, g1]
              ⟕[(r.a2 = s.b2)][g1:0]
                scan(r)
                Γ[[s.b2]][g1:COUNT(DISTINCT *)]
                  scan(s)
      Π[r.a1, r.a2, r.a3, r.a4]
        σ[(r.a3 = g2)]
          Π[r.a1, r.a2, r.a3, r.a4, g1, g2]
            ⟕[(r.a4 = t.c2)][g2:0]
              −stream
                ↑ see #1 σ±[(r.a1 = g1)]
              Γ[[t.c2]][g2:COUNT(DISTINCT *)]
                scan(t)
`)
}

func TestGoldenFig6Q4(t *testing.T) {
	golden(t, q4, `
distinct
  Π[r.a1, r.a2, r.a3, r.a4]
    Π[r.a1, r.a2, r.a3, r.a4]
      σ[(r.a1 = g3)]
        Γ²[(t1 = t2)][g3:COUNT(DISTINCT *)]
          #1 ν[t1]
            scan(r)
          ρ[t2←t1]
            Π[t1, s.b1, s.b2, s.b3, s.b4]
              ∪̇
                +stream
                  #2 ⋈±[(r.a2 = s.b2)]
                    ↑ see #1 ν[t1]
                    scan(s)
                Π[r.a1, r.a2, r.a3, r.a4, t1, s.b1, s.b2, s.b3, s.b4]
                  σ[(s.b3 = g4)]
                    Π[r.a1, r.a2, r.a3, r.a4, t1, s.b1, s.b2, s.b3, s.b4, g4]
                      ⟕[(s.b4 = t.c2)][g4:0]
                        −stream
                          ↑ see #2 ⋈±[(r.a2 = s.b2)]
                        Γ[[t.c2]][g4:COUNT(DISTINCT *)]
                          scan(t)
`)
}
