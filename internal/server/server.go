// Package server is disqod's network front-end: a TCP server speaking
// the newline-delimited JSON protocol in internal/wire, hardened the
// way DESIGN.md §14 describes. Each connection gets a session owning
// its prepared statements and defaults; a reader goroutine keeps
// watching the socket while queries run so a client disconnect cancels
// its in-flight query within one morsel; read deadlines plus a frame
// size cap bound what a slow or hostile peer can pin; a connection
// limit in front of the engine's FIFO admission gate sheds with a
// typed overloaded error instead of queueing unboundedly; and Shutdown
// drains gracefully — stop accepting, finish in-flight requests,
// then hand the engine back to the caller for Close.
//
// The same listener also serves replication: a connection that sends
// an OpReplicate handshake switches to a binary WAL-framed stream
// (see replicate.go), which is how read replicas follow a writer.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"disqo"
	"disqo/internal/faultinject"
	"disqo/internal/wire"
)

// Roles for Config.Role.
const (
	// RoleWriter serves reads and writes and, with a DataDir, publishes
	// its WAL to replicas.
	RoleWriter = "writer"
	// RoleReplica serves reads only; OpExec fails with a read_only
	// error. The replica's apply loop (see Replica) feeds the DB.
	RoleReplica = "replica"
)

// Config configures a Server. DB is required; everything else has a
// serviceable default.
type Config struct {
	DB *disqo.DB
	// Role is RoleWriter (default) or RoleReplica.
	Role string
	// DataDir is the writer's WAL directory; setting it enables the
	// replication publisher. It must be the same dir the DB was opened
	// with (the server tails the log file the engine writes).
	DataDir string
	// MaxConns bounds concurrently-open client connections; beyond it
	// new connections get one overloaded error and are closed. This
	// sits in front of the engine's admission gate: the gate bounds
	// executing queries, MaxConns bounds sockets and sessions.
	// Default 256; negative disables the limit.
	MaxConns int
	// IdleTimeout reaps sessions with no traffic and no running request.
	// Default 5m; negative disables reaping.
	IdleTimeout time.Duration
	// FrameTimeout bounds how long a request frame may dribble in after
	// its first byte — the slowloris guard. Default 10s.
	FrameTimeout time.Duration
	// WriteTimeout bounds each response write. Default 10s.
	WriteTimeout time.Duration
	// MaxFrame bounds one request line in bytes. Default
	// wire.DefaultMaxFrame.
	MaxFrame int
	// Fault is the chaos hook: SiteAccept per accepted connection,
	// SiteConnRead per completed request frame, SiteConnWrite per
	// response write. Nil costs one branch per visit.
	Fault *faultinject.Injector
	// Staleness, on a replica, reports time since the writer was last
	// heard from (Replica.Staleness); surfaced in ping responses.
	Staleness func() time.Duration
	// Logf logs server lifecycle events; nil discards.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() error {
	if c.DB == nil {
		return errors.New("server: Config.DB is required")
	}
	switch c.Role {
	case "":
		c.Role = RoleWriter
	case RoleWriter, RoleReplica:
	default:
		return fmt.Errorf("server: unknown role %q", c.Role)
	}
	if c.MaxConns == 0 {
		c.MaxConns = 256
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Stats is a point-in-time snapshot of the server's gauges and
// counters; see Server.Stats.
type Stats struct {
	// Sessions is live established sessions; Conns additionally counts
	// sockets being refused/torn down.
	Sessions int
	Conns    int
	// Inflight is requests currently executing against the engine.
	Inflight int
	// Replicas is connections currently streaming replication.
	Replicas int
	// Accepted and Shed count connections since start; Requests counts
	// completed requests.
	Accepted uint64
	Shed     uint64
	Requests uint64
	Draining bool
}

// Server accepts connections and runs sessions. Construct with New,
// start with Serve or ListenAndServe, stop with Shutdown.
type Server struct {
	cfg Config
	pub *publisher

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	conns    int
	inflight int
	replicas int
	accepted uint64
	shed     uint64
	requests uint64
	draining bool

	drainCh chan struct{}
	wg      sync.WaitGroup
}

// New validates cfg and returns an idle server.
func New(cfg Config) (*Server, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		sessions: make(map[*session]struct{}),
		drainCh:  make(chan struct{}),
	}
	if cfg.DataDir != "" && cfg.Role == RoleWriter {
		s.pub = &publisher{dir: cfg.DataDir, logf: cfg.Logf}
	}
	return s, nil
}

// ListenAndServe binds addr and serves until Shutdown or a fatal
// accept error.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve runs the accept loop on ln until Shutdown closes it. The
// listener is owned by the server from here on.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	s.cfg.Logf("disqod: serving %s on %s", s.cfg.Role, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return err
		}
		s.accept(conn)
	}
}

// Addr returns the bound listener address (for tests binding ":0"), or
// nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// accept admits or refuses one fresh connection.
func (s *Server) accept(conn net.Conn) {
	s.mu.Lock()
	s.accepted++
	if s.cfg.Fault != nil {
		if err := s.cfg.Fault.Visit(faultinject.SiteAccept, -1); err != nil {
			// Injected accept fault: the connection dies before any
			// session state exists — exactly a peer that vanished
			// between connect and first byte.
			s.mu.Unlock()
			conn.Close()
			return
		}
	}
	if s.draining {
		s.mu.Unlock()
		s.refuse(conn, wire.KindClosed, "server draining")
		return
	}
	if s.cfg.MaxConns > 0 && s.conns >= s.cfg.MaxConns {
		s.shed++
		s.mu.Unlock()
		s.refuse(conn, wire.KindOverloaded, "connection limit reached, retry with backoff")
		return
	}
	s.conns++
	sess := newSession(s, conn)
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
	go sess.run()
}

// refuse writes one typed error frame and closes; used for connections
// that never become sessions. Runs in its own goroutine so a peer that
// won't read can't stall the accept loop.
func (s *Server) refuse(conn net.Conn, kind, msg string) {
	go func() {
		defer conn.Close()
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		data, err := json.Marshal(wire.Response{Error: &wire.Error{Kind: kind, Message: msg}})
		if err != nil {
			return
		}
		conn.Write(append(data, '\n'))
	}()
}

func (s *Server) remove(sess *session) {
	s.mu.Lock()
	if _, ok := s.sessions[sess]; ok {
		delete(s.sessions, sess)
		s.conns--
	}
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Shutdown drains the server: the listener closes (no new
// connections), idle sessions get a typed closed error, busy sessions
// finish their in-flight request. When ctx expires first, remaining
// sessions are cancelled — their queries abort within one morsel and
// the client sees a canceled error if the write still lands — and
// Shutdown returns ctx.Err(). The DB is not closed; the caller owns
// that ordering (drain the network first, then db.Close).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: Shutdown called twice")
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	// Closing drainCh wakes every idle session worker (they select on
	// it); busy sessions observe the drain after their current request.
	close(s.drainCh)
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cfg.Logf("disqod: drained cleanly")
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for sess := range s.sessions {
		sess.cancel(errShutdownForced)
	}
	s.mu.Unlock()
	<-done
	s.cfg.Logf("disqod: drain timed out, in-flight work cancelled")
	return ctx.Err()
}

// Stats snapshots the server's gauges and counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Sessions: len(s.sessions),
		Conns:    s.conns,
		Inflight: s.inflight,
		Replicas: s.replicas,
		Accepted: s.accepted,
		Shed:     s.shed,
		Requests: s.requests,
		Draining: s.draining,
	}
}

// MetricsText renders the server's gauges in Prometheus text format,
// for appending to the engine's /metrics page via WithDebugMetrics.
func (s *Server) MetricsText() []byte {
	st := s.Stats()
	var b []byte
	add := func(name, typ, help string, v float64) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)...)
	}
	add("disqod_sessions", "gauge", "Live client sessions.", float64(st.Sessions))
	add("disqod_conns", "gauge", "Open client connections.", float64(st.Conns))
	add("disqod_inflight_requests", "gauge", "Requests currently executing.", float64(st.Inflight))
	add("disqod_replicas", "gauge", "Connected replication streams.", float64(st.Replicas))
	add("disqod_accepted_total", "counter", "Connections accepted since start.", float64(st.Accepted))
	add("disqod_shed_total", "counter", "Connections refused at the connection limit.", float64(st.Shed))
	add("disqod_requests_total", "counter", "Requests completed since start.", float64(st.Requests))
	drain := 0.0
	if st.Draining {
		drain = 1
	}
	add("disqod_draining", "gauge", "1 while the server is draining.", drain)
	return b
}
