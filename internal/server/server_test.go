package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"disqo"
	"disqo/internal/server"
	"disqo/internal/testutil"
	"disqo/internal/wire"
)

// startServer opens a DB (volatile unless cfg.DataDir is set, in which
// case the DB opens over it), starts a server on a loopback port, and
// registers cleanup that shuts both down. The returned address is ready
// to dial.
func startServer(t *testing.T, cfg server.Config, openOpts ...disqo.OpenOption) (*server.Server, *disqo.DB, string) {
	t.Helper()
	if cfg.DB == nil {
		if cfg.DataDir != "" {
			openOpts = append(openOpts, disqo.WithDataDir(cfg.DataDir))
		}
		db, err := disqo.Open(openOpts...)
		if err != nil {
			t.Fatal(err)
		}
		cfg.DB = db
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) // double Shutdown from a test that drained is fine to ignore
		<-serveDone
		cfg.DB.Close()
	})
	return srv, cfg.DB, ln.Addr().String()
}

func seedTable(t *testing.T, db *disqo.DB) {
	t.Helper()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE kv (k INTEGER, v VARCHAR)")
	mustExec("INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')")
}

// rawExchange sends one raw JSON line and returns the first response
// line, for tests that need protocol-level control a Client hides.
func rawExchange(t *testing.T, conn net.Conn, req wire.Request) wire.Response {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	return readResp(t, conn)
}

func readResp(t *testing.T, conn net.Conn) wire.Response {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	var resp wire.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("bad response %q: %v", line, err)
	}
	return resp
}

func TestServeQueryExecPrepare(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	testutil.VerifyNoFDLeaks(t)
	_, db, addr := startServer(t, server.Config{})
	seedTable(t, db)

	c, err := disqo.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Query("SELECT k, v FROM kv WHERE k = 2 OR v = 'three'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 2 {
		t.Fatalf("got %d rows / %d cols, want 2/2", len(res.Rows), len(res.Columns))
	}
	// The served rows must be identical to an embedded query's.
	local, err := db.Query("SELECT k, v FROM kv WHERE k = 2 OR v = 'three'")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows) != fmt.Sprint(local.Rows) {
		t.Fatalf("served rows %v != local rows %v", res.Rows, local.Rows)
	}

	n, err := c.Exec("INSERT INTO kv VALUES (4, 'four')")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("affected = %d, want 1", n)
	}

	if err := c.Prepare("getall", "SELECT k FROM kv"); err != nil {
		t.Fatal(err)
	}
	res, err = c.QueryPrepared(context.Background(), "getall")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("prepared query returned %d rows, want 4", len(res.Rows))
	}
	if err := c.ClosePrepared("getall"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryPrepared(context.Background(), "getall"); err == nil {
		t.Fatal("query of a closed prepared statement succeeded")
	}

	if err := c.SetStrategy(disqo.Canonical); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT k FROM kv WHERE k = 1"); err != nil {
		t.Fatalf("query under session strategy: %v", err)
	}

	st, err := c.Ping(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != server.RoleWriter || st.Sessions != 1 {
		t.Fatalf("ping = %+v, want writer with 1 session", st)
	}
}

func TestServeTypedErrors(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, db, addr := startServer(t, server.Config{})
	seedTable(t, db)
	c, err := disqo.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Parse failure → invalid, and not retried into oblivion.
	_, err = c.Query("SELEC nonsense")
	var se *disqo.ServerError
	if !errors.As(err, &se) || se.Kind != wire.KindInvalid {
		t.Fatalf("parse failure err = %v, want ServerError kind invalid", err)
	}

	// Timeout → the engine's typed timeout, satisfying errors.Is across
	// the wire.
	if err := db.LoadRST(0.3, 0.3, 0.3); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	slow := `SELECT DISTINCT * FROM r
	         WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2) OR a4 > 1500`
	_, err = c.QueryContext(ctx, slow)
	if err == nil {
		t.Fatal("slow query under 10ms deadline succeeded")
	}
	if !errors.Is(err, disqo.ErrTimeout) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout err = %v, want ErrTimeout/DeadlineExceeded across the wire", err)
	}

	// A malformed scalar subquery is rejected at plan time (the engine
	// only admits aggregate scalar subqueries, per the paper), so it
	// must arrive as invalid — the statement is wrong, retrying cannot
	// help.
	_, err = c.Query("SELECT k FROM kv WHERE k = (SELECT k FROM kv)")
	if !errors.As(err, &se) || se.Kind != wire.KindInvalid {
		t.Fatalf("bad scalar subquery err = %v, want ServerError kind invalid", err)
	}
}

func TestServeReplicaRejectsWrites(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, _, addr := startServer(t, server.Config{Role: server.RoleReplica})
	c, err := disqo.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("CREATE TABLE nope (a INTEGER)")
	var se *disqo.ServerError
	if !errors.As(err, &se) || se.Kind != wire.KindReadOnly {
		t.Fatalf("replica exec err = %v, want kind read_only", err)
	}
}

func TestServeMaxConnsShed(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	testutil.VerifyNoFDLeaks(t)
	_, _, addr := startServer(t, server.Config{MaxConns: 1})

	c1, err := disqo.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// The second connection gets one typed overloaded frame and a close.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp := readResp(t, conn)
	if resp.Error == nil || resp.Error.Kind != wire.KindOverloaded {
		t.Fatalf("second conn got %+v, want overloaded error", resp)
	}

	// Dropping the first connection frees the slot (poll: teardown is
	// asynchronous).
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := disqo.Dial(addr)
		if err == nil {
			if _, err := c2.Ping(nil); err == nil {
				c2.Close()
				break
			}
			c2.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServeMaxFrameLimit(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, _, addr := startServer(t, server.Config{MaxFrame: 1 << 10})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A 1 MiB line against a 1 KiB limit: the server must answer with a
	// protocol error and close, never buffer it.
	if _, err := conn.Write([]byte(strings.Repeat("x", 1<<20))); err != nil {
		t.Fatal(err)
	}
	resp := readResp(t, conn)
	if resp.Error == nil || resp.Error.Kind != wire.KindProtocol {
		t.Fatalf("oversized frame got %+v, want protocol error", resp)
	}
}

func TestServeSlowlorisFrameTimeout(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, _, addr := startServer(t, server.Config{FrameTimeout: 1500 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a frame and never finish it. The reader checks the frame
	// budget on its 1s tick, so the typed error arrives within a few
	// seconds — and the connection must then close.
	if _, err := conn.Write([]byte(`{"op":"ping"`)); err != nil {
		t.Fatal(err)
	}
	resp := readResp(t, conn)
	if resp.Error == nil || resp.Error.Kind != wire.KindProtocol {
		t.Fatalf("slowloris got %+v, want protocol error", resp)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(conn).ReadByte(); err == nil {
		t.Fatal("connection still open after slowloris teardown")
	}
}

func TestServeIdleReap(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, _, addr := startServer(t, server.Config{IdleTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The idle check runs on the reader's 1s tick; the session must be
	// gone within a couple of ticks, with a typed closed frame first.
	resp := readResp(t, conn)
	if resp.Error == nil || resp.Error.Kind != wire.KindClosed {
		t.Fatalf("idle reap got %+v, want closed error", resp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Sessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle session never reaped: %+v", srv.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServeConnLossCancelsInflightQuery(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, db, addr := startServer(t, server.Config{})
	if err := db.LoadRST(0.3, 0.3, 0.3); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(wire.Request{ID: 1, Op: wire.OpQuery, Strategy: "canonical",
		SQL: `SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2) OR a4 > 1500`})
	if _, err := conn.Write(append(req, '\n')); err != nil {
		t.Fatal(err)
	}
	// Wait until the query is actually inside the engine, then vanish.
	deadline := time.Now().Add(5 * time.Second)
	for db.InflightQueries() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never started")
		}
		time.Sleep(1 * time.Millisecond)
	}
	conn.Close()
	// The session reader sees the dead socket and cancels the request
	// context; the engine aborts within one morsel.
	deadline = time.Now().Add(5 * time.Second)
	for db.InflightQueries() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight query survived its connection")
		}
		time.Sleep(1 * time.Millisecond)
	}
}

func TestServeGracefulDrain(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	testutil.VerifyNoFDLeaks(t)
	srv, db, addr := startServer(t, server.Config{})
	seedTable(t, db)

	// An established idle session should get a typed closed frame.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	// Make sure the session exists before Shutdown.
	if resp := rawExchange(t, idle, wire.Request{ID: 1, Op: wire.OpPing}); resp.Server == nil {
		t.Fatalf("ping got %+v", resp)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	resp := readResp(t, idle)
	if resp.Error == nil || resp.Error.Kind != wire.KindClosed {
		t.Fatalf("drained session got %+v, want closed error", resp)
	}
	if err := <-done; err != nil {
		t.Fatalf("drain returned %v, want nil", err)
	}

	// New connections are refused after drain (either a typed closed
	// frame from a race with listener close, or a dial error).
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
	}
	if st := srv.Stats(); !st.Draining || st.Sessions != 0 {
		t.Fatalf("post-drain stats %+v, want draining with 0 sessions", st)
	}
}

func TestServeDrainTimeoutForcesCancel(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, db, addr := startServer(t, server.Config{})
	if err := db.LoadRST(0.3, 0.3, 0.3); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req, _ := json.Marshal(wire.Request{ID: 7, Op: wire.OpQuery, Strategy: "canonical",
		SQL: `SELECT DISTINCT * FROM r WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2) OR a4 > 1500`})
	if _, err := conn.Write(append(req, '\n')); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.InflightQueries() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never started")
		}
		time.Sleep(1 * time.Millisecond)
	}

	// An already-expired drain deadline: Shutdown must cancel the busy
	// session rather than wait for the query.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	// The cancelled query surfaces as a canceled error frame to the
	// still-connected client.
	resp := readResp(t, conn)
	if resp.Error == nil {
		t.Fatalf("forced-drain query got %+v, want an error", resp)
	}
	if resp.Error.Kind != wire.KindCanceled && resp.Error.Kind != wire.KindClosed {
		t.Fatalf("forced-drain error kind %q, want canceled or closed", resp.Error.Kind)
	}
	if n := db.InflightQueries(); n != 0 {
		t.Fatalf("%d queries still in flight after forced drain", n)
	}
}

func TestServeSessionSurvivesMalformedFrame(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, db, addr := startServer(t, server.Config{})
	seedTable(t, db)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if resp := rawExchange(t, conn, wire.Request{}); resp.Error == nil {
		t.Fatalf("empty op got %+v, want protocol error", resp)
	}
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(t, conn); resp.Error == nil || resp.Error.Kind != wire.KindProtocol {
		t.Fatalf("garbage frame got %+v, want protocol error", resp)
	}
	// The session is still usable afterwards.
	resp := rawExchange(t, conn, wire.Request{ID: 3, Op: wire.OpQuery, SQL: "SELECT k FROM kv WHERE k = 1"})
	if !resp.OK || len(resp.Rows) != 1 {
		t.Fatalf("post-garbage query got %+v, want 1 row", resp)
	}
}

func TestClientReconnectAfterServerRestart(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	testutil.VerifyNoFDLeaks(t)
	dir := t.TempDir()

	db1, err := disqo.Open(disqo.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := server.New(server.Config{DB: db1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	done1 := make(chan error, 1)
	go func() { done1 <- srv1.Serve(ln) }()

	c, err := disqo.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare("q", "SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}

	// Kill the server (no drain — the client must see a dead conn).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv1.Shutdown(ctx)
	cancel()
	<-done1
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same port, recovered from the same directory.
	db2, err := disqo.Open(disqo.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.New(server.Config{DB: db2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(ln2) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		<-done2
		db2.Close()
	}()

	// The read path reconnects transparently — and replays the prepared
	// statement into the fresh server session.
	res, err := c.QueryPrepared(context.Background(), "q")
	if err != nil {
		t.Fatalf("prepared query across restart: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows across restart, want 2", len(res.Rows))
	}
}
