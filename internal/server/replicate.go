package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync/atomic"
	"time"

	"disqo"
	"disqo/internal/faultinject"
	"disqo/internal/wal"
	"disqo/internal/wire"
)

// Replication rides the WAL's own frame format: after the JSON
// OpReplicate handshake the writer streams frames encoded with
// wal.AppendFrame. Engine record kinds (1..6) apply through
// DB.ReplicaApplyRecord; two server-layer kinds exist only on the
// wire (chosen far outside the engine range, and hand-parsed on the
// replica because wal.Scan rightly rejects kinds it cannot replay):
const (
	// repKindHeartbeat carries no body; its LSN is the writer's
	// last-shipped position. Sent every heartbeatEvery so the replica
	// can bound staleness and detect writer death.
	repKindHeartbeat wal.Kind = 200
	// repKindSnapshot's body is a raw checkpoint snapshot file; its LSN
	// is the LSN the snapshot covers. Sent when the replica's resume
	// position predates what the (truncated) log can supply.
	repKindSnapshot wal.Kind = 201
)

const (
	heartbeatEvery = 1 * time.Second
	publishPoll    = 50 * time.Millisecond
	// replicaReadTimeout is how long a replica waits for any frame
	// before declaring the writer dead and reconnecting; heartbeats
	// arrive at 1s, so 5s tolerates scheduling hiccups without masking
	// a real death for long.
	replicaReadTimeout = 5 * time.Second
)

// ---------------------------------------------------------------------
// Writer side: the publisher tails the engine's live WAL directory and
// streams records to one attached replica per call.

type publisher struct {
	dir  string
	logf func(format string, args ...any)
}

// replicate switches the session's connection into a replication
// stream. It runs on the session worker goroutine; the session reader
// keeps watching the socket, so a replica disconnect cancels s.ctx and
// ends the stream. Always returns false: the connection never goes
// back to JSON.
func (s *session) replicate(req wire.Request) bool {
	if s.srv.pub == nil {
		s.writeError(req.ID, wire.KindProtocol, "this server does not publish replication (writer with a data dir required)")
		return false
	}
	s.busy.Store(true)
	defer s.busy.Store(false)
	s.srv.mu.Lock()
	s.srv.replicas++
	s.srv.mu.Unlock()
	defer func() {
		s.srv.mu.Lock()
		s.srv.replicas--
		s.srv.mu.Unlock()
	}()
	send := func(rec wal.Record) error {
		if !s.writeRawFrame(wal.AppendFrame(nil, rec)) {
			return errWriteFailed
		}
		return nil
	}
	if err := s.srv.pub.stream(s.ctx, s.srv.drainCh, send, req.FromLSN); err != nil &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, errWriteFailed) {
		s.srv.cfg.Logf("disqod: replication stream ended: %v", err)
	}
	return false
}

// writeRawFrame writes pre-framed bytes (no newline) under the write
// deadline and the SiteConnWrite chaos hook.
func (s *session) writeRawFrame(data []byte) bool {
	if f := s.srv.cfg.Fault; f != nil {
		if err := f.Visit(faultinject.SiteConnWrite, -1); err != nil {
			s.cancel(errWriteFailed)
			return false
		}
	}
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
	if _, err := s.conn.Write(data); err != nil {
		s.cancel(errWriteFailed)
		return false
	}
	return true
}

// stream ships everything after LSN `from` to one replica, then keeps
// tailing the live log until ctx is done or the server drains. The log
// file is read, never recovered: wal.Recover would truncate a torn
// tail the writer is about to finish writing. Offsets only advance by
// whole valid frames (wal.Scan reports the valid byte count), so a
// torn tail is simply re-read on the next poll.
func (p *publisher) stream(ctx context.Context, drain <-chan struct{}, send func(wal.Record) error, from uint64) error {
	pos := from
	var offset int64
	lastBeat := time.Now()
	logPath := wal.LogPath(p.dir)
	for {
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-drain:
			return nil
		default:
		}
		recs, newOffset, err := p.readLog(logPath, offset)
		if err != nil {
			return err
		}
		offset = newOffset
		// Does the backlog continue from pos, or did checkpoint
		// truncation (or a fresh replica) leave a gap only a snapshot
		// can bridge?
		next := uint64(0)
		for _, rec := range recs {
			if rec.LSN > pos && (next == 0 || rec.LSN < next) {
				next = rec.LSN
			}
		}
		if next != pos+1 {
			snapPath, snapLSN, ok, err := wal.NewestSnapshot(p.dir)
			if err != nil {
				return err
			}
			if ok && snapLSN > pos {
				data, err := os.ReadFile(snapPath)
				if err != nil {
					return fmt.Errorf("server: reading snapshot for replica: %w", err)
				}
				if err := send(wal.Record{LSN: snapLSN, Kind: repKindSnapshot, Body: data}); err != nil {
					return err
				}
				pos = snapLSN
				lastBeat = time.Now()
			} else if next != 0 {
				// Records exist past pos but pos+1 is gone and no
				// snapshot bridges it — the replica asked for history
				// this writer no longer has.
				return fmt.Errorf("server: replica resume LSN %d predates available history (next record %d, no covering snapshot)", pos, next)
			}
		}
		for _, rec := range recs {
			if rec.LSN <= pos {
				continue
			}
			if err := send(rec); err != nil {
				return err
			}
			pos = rec.LSN
			lastBeat = time.Now()
		}
		if time.Since(lastBeat) >= heartbeatEvery {
			if err := send(wal.Record{LSN: pos, Kind: repKindHeartbeat}); err != nil {
				return err
			}
			lastBeat = time.Now()
		}
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-drain:
			return nil
		case <-time.After(publishPoll):
		}
	}
}

// readLog returns the complete frames past offset and the new offset.
// A file smaller than offset means a checkpoint truncated the log; the
// scan restarts from zero (the caller's LSN filter drops duplicates).
// A missing file is an empty log.
func (p *publisher) readLog(path string, offset int64) ([]wal.Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, offset, fmt.Errorf("server: opening wal for replication: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, offset, err
	}
	if fi.Size() < offset {
		offset = 0
	}
	if fi.Size() == offset {
		return nil, offset, nil
	}
	data := make([]byte, fi.Size()-offset)
	if _, err := io.ReadFull(io.NewSectionReader(f, offset, int64(len(data))), data); err != nil {
		return nil, offset, fmt.Errorf("server: reading wal for replication: %w", err)
	}
	recs, valid, _, err := wal.Scan(data)
	if err != nil {
		// Mid-log corruption: the writer's own recovery would refuse
		// this file too. Nothing sane to ship.
		return nil, offset, fmt.Errorf("server: wal unreadable for replication: %w", err)
	}
	return recs, offset + valid, nil
}

// ---------------------------------------------------------------------
// Replica side: dial the writer, hand it our applied LSN, apply what
// comes back, reconnect forever.

// ReplicaConfig configures a replication follower.
type ReplicaConfig struct {
	// DB is the volatile database replication frames apply into (the
	// same DB the replica's own Server serves reads from).
	DB *disqo.DB
	// Writer is the writer server's address.
	Writer string
	// ReconnectDelay paces redials after a connection failure.
	// Default 500ms.
	ReconnectDelay time.Duration
	// Fault is the chaos hook: SiteReplicaApply fires once per
	// replication frame; an injected fault is treated as a transport
	// error and forces a reconnect.
	Fault *faultinject.Injector
	// Logf logs connection lifecycle; nil discards.
	Logf func(format string, args ...any)
}

// Replica follows a writer. Construct with NewReplica, drive with Run;
// Staleness and Connected feed ping responses and metrics.
type Replica struct {
	cfg ReplicaConfig
	// lastHeard is unix-nanos of the last frame from the writer.
	lastHeard atomic.Int64
	connected atomic.Bool
}

func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: ReplicaConfig.DB is required")
	}
	if cfg.Writer == "" {
		return nil, errors.New("server: ReplicaConfig.Writer is required")
	}
	if cfg.ReconnectDelay <= 0 {
		cfg.ReconnectDelay = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Replica{cfg: cfg}
	r.lastHeard.Store(time.Now().UnixNano())
	return r, nil
}

// Staleness reports time since the writer was last heard from. It
// grows without bound while the writer is down — which is the point:
// the replica keeps serving stale-bounded reads and the bound is
// observable.
func (r *Replica) Staleness() time.Duration {
	return time.Since(time.Unix(0, r.lastHeard.Load()))
}

// Connected reports whether a replication stream is currently live.
func (r *Replica) Connected() bool { return r.connected.Load() }

// Run follows the writer until ctx is done or the DB closes. Every
// other failure — writer death, network faults, replication gaps —
// logs, backs off, and reconnects: the replica's job is to outlive its
// writer.
func (r *Replica) Run(ctx context.Context) error {
	for {
		err := r.follow(ctx)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, disqo.ErrClosed):
			return err
		}
		r.cfg.Logf("disqod: replication interrupted (%v), reconnecting in %s", err, r.cfg.ReconnectDelay)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(r.cfg.ReconnectDelay):
		}
	}
}

// follow runs one connection's worth of replication.
func (r *Replica) follow(ctx context.Context) error {
	d := net.Dialer{Timeout: 5 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", r.cfg.Writer)
	if err != nil {
		return err
	}
	defer conn.Close()
	// A dead writer must not leave us parked in a read forever; the
	// watchdog goroutine closes the conn when ctx ends, and read
	// deadlines bound each frame wait.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchdogDone:
		}
	}()
	hs, err := json.Marshal(wire.Request{Op: wire.OpReplicate, FromLSN: r.cfg.DB.ReplicaState().AppliedLSN})
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(append(hs, '\n')); err != nil {
		return err
	}
	r.connected.Store(true)
	defer r.connected.Store(false)
	r.cfg.Logf("disqod: replicating from %s at LSN %d", r.cfg.Writer, r.cfg.DB.ReplicaState().AppliedLSN)
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		conn.SetReadDeadline(time.Now().Add(replicaReadTimeout))
		rec, err := readRepFrame(br)
		if err != nil {
			return err
		}
		if f := r.cfg.Fault; f != nil {
			if err := f.Visit(faultinject.SiteReplicaApply, -1); err != nil {
				return err
			}
		}
		r.lastHeard.Store(time.Now().UnixNano())
		switch rec.Kind {
		case repKindHeartbeat:
			// Position only; nothing to apply. A heartbeat ahead of our
			// applied LSN would mean lost records, but the publisher
			// only ever heartbeats its last-sent position, so the apply
			// path below has already caught any gap.
		case repKindSnapshot:
			if _, err := r.cfg.DB.ReplicaApplySnapshot(rec.Body); err != nil {
				return err
			}
		default:
			if err := r.cfg.DB.ReplicaApplyRecord(rec); err != nil {
				// ErrReplicaGap included: reconnecting re-handshakes
				// from the applied LSN and the writer bridges with a
				// snapshot.
				return err
			}
		}
	}
}

// readRepFrame reads one WAL-framed record off the stream. It parses
// the frame by hand instead of wal.Scan because the stream carries
// server-layer kinds (heartbeat, snapshot) Scan would reject as
// corruption — here an unknown kind is a protocol error, decided after
// the CRC proves the frame intact.
func readRepFrame(br *bufio.Reader) (wal.Record, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return wal.Record{}, err
	}
	payloadLen := int(binary.LittleEndian.Uint32(hdr[:4]))
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if payloadLen < 17 || payloadLen > wal.MaxRecordLen {
		return wal.Record{}, fmt.Errorf("server: replication frame length %d out of range", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return wal.Record{}, err
	}
	if got := wal.Checksum(payload); got != wantCRC {
		return wal.Record{}, fmt.Errorf("server: replication frame CRC mismatch (want %08x, got %08x)", wantCRC, got)
	}
	return wal.Record{
		LSN:            binary.LittleEndian.Uint64(payload[:8]),
		AppliedVersion: binary.LittleEndian.Uint64(payload[8:16]),
		Kind:           wal.Kind(payload[16]),
		Body:           payload[17:],
	}, nil
}
