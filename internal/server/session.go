package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync/atomic"
	"time"

	"disqo"
	"disqo/internal/exec"
	"disqo/internal/faultinject"
	"disqo/internal/sqlparser"
	"disqo/internal/wire"
)

// Session teardown causes. The worker maps the cause the reader (or
// Shutdown) recorded to the terminal frame the client gets — or to no
// frame at all when the socket itself is gone.
var (
	errConnLost       = errors.New("connection lost")
	errIdle           = errors.New("session idle timeout")
	errSlowFrame      = errors.New("request frame timed out mid-read")
	errFrameTooLarge  = errors.New("request frame exceeds size limit")
	errWriteFailed    = errors.New("response write failed")
	errShutdownForced = errors.New("server shutdown cancelled the session")
)

// readerTick is how often the reader's blocking Read wakes to check
// idle expiry, slow frames, and session cancellation. It also bounds
// how late a connection loss can be noticed while a query runs: the
// kernel fails the read immediately on RST, and on a silent peer the
// next tick's read surfaces it.
const readerTick = time.Second

// session is one client connection: a reader goroutine that owns every
// socket read (so the socket is watched even while a query runs — a
// client disconnect cancels the in-flight query within one morsel) and
// a worker goroutine that executes requests and owns every write.
type session struct {
	srv  *Server
	conn net.Conn

	ctx    context.Context
	cause  context.CancelCauseFunc
	frames chan []byte

	readerDone chan struct{}

	// busy is set while the worker executes a request or streams
	// replication; the reader never idle-reaps a busy session.
	busy atomic.Bool
	// lastActive is the unix-nano time of the last byte received or
	// request completed; the idle reaper measures from here.
	lastActive atomic.Int64

	// Session state, owned by the worker goroutine.
	prepared map[string]string
	strategy string
	path     string
	nulls    string
	timeout  time.Duration
}

func newSession(s *Server, conn net.Conn) *session {
	ctx, cause := context.WithCancelCause(context.Background())
	sess := &session{
		srv:        s,
		conn:       conn,
		ctx:        ctx,
		cause:      cause,
		frames:     make(chan []byte, 16),
		readerDone: make(chan struct{}),
		prepared:   make(map[string]string),
	}
	sess.lastActive.Store(time.Now().UnixNano())
	return sess
}

func (s *session) cancel(cause error) { s.cause(cause) }

// reader owns conn reads. It assembles newline-delimited frames from a
// private buffer (a deadline can fire mid-frame; consumed bytes must
// survive the retry), enforces the frame size cap and the slowloris
// budget, reaps idle sessions, and converts any hard read error into a
// session cancellation — which is what aborts an in-flight query when
// the client vanishes.
func (s *session) reader() {
	defer close(s.readerDone)
	var pending []byte
	var frameStart time.Time
	buf := make([]byte, 16<<10)
	for {
		// Drain complete frames out of the buffer first.
		for {
			i := bytes.IndexByte(pending, '\n')
			if i < 0 {
				break
			}
			line := bytes.TrimSuffix(pending[:i], []byte{'\r'})
			frame := make([]byte, len(line))
			copy(frame, line)
			pending = pending[i+1:]
			frameStart = time.Time{}
			if f := s.srv.cfg.Fault; f != nil {
				if err := f.Visit(faultinject.SiteConnRead, -1); err != nil {
					// Injected read fault: the frame never "arrived" —
					// indistinguishable from the peer dying mid-send.
					s.cancel(errConnLost)
					return
				}
			}
			select {
			case s.frames <- frame:
			case <-s.ctx.Done():
				return
			}
		}
		if len(pending) > s.srv.cfg.MaxFrame {
			s.cancel(errFrameTooLarge)
			return
		}
		if len(pending) > 0 && frameStart.IsZero() {
			frameStart = time.Now()
		}
		s.conn.SetReadDeadline(time.Now().Add(readerTick))
		n, err := s.conn.Read(buf)
		if n > 0 {
			pending = append(pending, buf[:n]...)
			s.lastActive.Store(time.Now().UnixNano())
		}
		if err == nil {
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if s.ctx.Err() != nil {
				return
			}
			if len(pending) > 0 && time.Since(frameStart) > s.srv.cfg.FrameTimeout {
				s.cancel(errSlowFrame)
				return
			}
			idle := s.srv.cfg.IdleTimeout
			if idle > 0 && !s.busy.Load() &&
				time.Since(time.Unix(0, s.lastActive.Load())) > idle {
				s.cancel(errIdle)
				return
			}
			continue
		}
		// EOF, reset, or a closed socket: the peer is gone (or teardown
		// already began). Either way the session ends and any running
		// query's context is cancelled.
		s.cancel(errConnLost)
		return
	}
}

// run is the worker: it executes requests one at a time in arrival
// order and owns every write to the connection.
func (s *session) run() {
	defer s.srv.wg.Done()
	defer s.teardown()
	go s.reader()
	for {
		select {
		case <-s.ctx.Done():
			s.writeTerminal()
			return
		case <-s.srv.drainCh:
			s.writeError(0, wire.KindClosed, "server draining")
			return
		case frame := <-s.frames:
			if !s.handle(frame) {
				return
			}
			if s.srv.isDraining() {
				s.writeError(0, wire.KindClosed, "server draining")
				return
			}
		}
	}
}

func (s *session) teardown() {
	s.cancel(errConnLost)
	s.conn.Close()
	<-s.readerDone
	s.srv.remove(s)
}

// writeTerminal maps the cancellation cause to a final typed error
// frame. A lost connection or failed write gets nothing — there is no
// one left to read it.
func (s *session) writeTerminal() {
	switch cause := context.Cause(s.ctx); {
	case errors.Is(cause, errConnLost), errors.Is(cause, errWriteFailed):
	case errors.Is(cause, errIdle):
		s.writeError(0, wire.KindClosed, "session closed: idle timeout")
	case errors.Is(cause, errSlowFrame):
		s.writeError(0, wire.KindProtocol, "request frame timed out mid-read")
	case errors.Is(cause, errFrameTooLarge):
		s.writeError(0, wire.KindProtocol, "request frame exceeds size limit")
	default:
		s.writeError(0, wire.KindClosed, "session closed: "+cause.Error())
	}
}

// writeFrame writes one already-marshaled response line under the
// write deadline. A failure (injected or real) cancels the session.
func (s *session) writeFrame(data []byte) bool {
	if f := s.srv.cfg.Fault; f != nil {
		if err := f.Visit(faultinject.SiteConnWrite, -1); err != nil {
			s.cancel(errWriteFailed)
			return false
		}
	}
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
	if _, err := s.conn.Write(append(data, '\n')); err != nil {
		s.cancel(errWriteFailed)
		return false
	}
	return true
}

func (s *session) writeResponse(resp *wire.Response) bool {
	data, err := json.Marshal(resp)
	if err != nil {
		data, _ = json.Marshal(wire.Response{ID: resp.ID, Error: &wire.Error{
			Kind: wire.KindProtocol, Message: "response marshal failed: " + err.Error()}})
	}
	return s.writeFrame(data)
}

func (s *session) writeError(id uint64, kind, msg string) bool {
	return s.writeResponse(&wire.Response{ID: id, Error: &wire.Error{Kind: kind, Message: msg}})
}

// handle executes one request frame. It returns false when the session
// must end (replication took the connection over, or a write failed).
func (s *session) handle(frame []byte) bool {
	var req wire.Request
	if err := json.Unmarshal(frame, &req); err != nil {
		// The frame boundary itself is intact (we split on newline), so
		// the session can survive one malformed line.
		return s.writeError(0, wire.KindProtocol, "bad request frame: "+err.Error())
	}
	if req.Op == wire.OpReplicate {
		return s.replicate(req)
	}
	s.busy.Store(true)
	resp := s.dispatch(&req)
	s.busy.Store(false)
	s.lastActive.Store(time.Now().UnixNano())
	s.srv.mu.Lock()
	s.srv.requests++
	s.srv.mu.Unlock()
	return s.writeResponse(resp)
}

func (s *session) dispatch(req *wire.Request) *wire.Response {
	s.srv.mu.Lock()
	s.srv.inflight++
	s.srv.mu.Unlock()
	defer func() {
		s.srv.mu.Lock()
		s.srv.inflight--
		s.srv.mu.Unlock()
	}()
	switch req.Op {
	case wire.OpQuery:
		return s.doQuery(req)
	case wire.OpExec:
		return s.doExec(req)
	case wire.OpPrepare:
		return s.doPrepare(req)
	case wire.OpClose:
		if req.Name == "" {
			return errResp(req.ID, wire.KindProtocol, "close requires name")
		}
		delete(s.prepared, req.Name)
		return &wire.Response{ID: req.ID, OK: true}
	case wire.OpSet:
		return s.doSet(req)
	case wire.OpPing:
		return s.doPing(req)
	default:
		return errResp(req.ID, wire.KindProtocol, "unknown op "+req.Op)
	}
}

func errResp(id uint64, kind, msg string) *wire.Response {
	return &wire.Response{ID: id, Error: &wire.Error{Kind: kind, Message: msg}}
}

// requestCtx derives the execution context: the session context (so a
// client disconnect aborts the query) bounded by the request or
// session timeout.
func (s *session) requestCtx(req *wire.Request) (context.Context, context.CancelFunc) {
	timeout := s.timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(s.ctx, timeout)
	}
	return s.ctx, func() {}
}

func (s *session) queryOptions(req *wire.Request) ([]disqo.Option, *wire.Error) {
	var opts []disqo.Option
	strategy := req.Strategy
	if strategy == "" {
		strategy = s.strategy
	}
	if strategy != "" {
		st, ok := parseStrategy(strategy)
		if !ok {
			return nil, &wire.Error{Kind: wire.KindInvalid, Message: "unknown strategy " + strategy}
		}
		opts = append(opts, disqo.WithStrategy(st))
	}
	path := req.Path
	if path == "" {
		path = s.path
	}
	if path != "" {
		p, ok := exec.ParsePath(path)
		if !ok {
			return nil, &wire.Error{Kind: wire.KindInvalid, Message: "unknown execution path " + path}
		}
		opts = append(opts, disqo.WithExecutionPath(p))
	}
	nulls := req.Nulls
	if nulls == "" {
		nulls = s.nulls
	}
	if nulls != "" {
		m, ok := parseNulls(nulls)
		if !ok {
			return nil, &wire.Error{Kind: wire.KindInvalid, Message: "unknown null mode " + nulls}
		}
		opts = append(opts, disqo.WithNullMode(m))
	}
	return opts, nil
}

func parseNulls(s string) (disqo.NullMode, bool) {
	switch s {
	case "3vl":
		return disqo.ThreeValuedNulls, true
	case "2vl":
		return disqo.TwoValuedNulls, true
	}
	return disqo.ThreeValuedNulls, false
}

func parseStrategy(s string) (disqo.Strategy, bool) {
	for _, st := range append(disqo.Strategies(), disqo.CostBased) {
		if string(st) == s {
			return st, true
		}
	}
	return "", false
}

func (s *session) doQuery(req *wire.Request) *wire.Response {
	sql := req.SQL
	if sql == "" {
		if req.Name == "" {
			return errResp(req.ID, wire.KindProtocol, "query requires sql or name")
		}
		stored, ok := s.prepared[req.Name]
		if !ok {
			return errResp(req.ID, wire.KindInvalid, "no prepared statement "+req.Name)
		}
		sql = stored
	}
	opts, werr := s.queryOptions(req)
	if werr != nil {
		return &wire.Response{ID: req.ID, Error: werr}
	}
	ctx, done := s.requestCtx(req)
	defer done()
	res, err := s.srv.cfg.DB.QueryContext(ctx, sql, opts...)
	if err != nil {
		return &wire.Response{ID: req.ID, Error: errorFrom(err)}
	}
	return &wire.Response{
		ID:      req.ID,
		OK:      true,
		Columns: res.Columns,
		Rows:    wire.EncodeRows(res.Rows),
		Stats: &wire.Stats{
			ElapsedUS:     res.Elapsed.Microseconds(),
			Comparisons:   res.Stats.Comparisons,
			TuplesOut:     res.Stats.TuplesOut,
			SubqueryEvals: res.Stats.SubqueryEvals,
			Rows:          len(res.Rows),
		},
	}
}

func (s *session) doExec(req *wire.Request) *wire.Response {
	if s.srv.cfg.Role == RoleReplica {
		return errResp(req.ID, wire.KindReadOnly, "replica is read-only; send writes to the writer")
	}
	if req.SQL == "" {
		return errResp(req.ID, wire.KindProtocol, "exec requires sql")
	}
	n, err := s.srv.cfg.DB.Exec(req.SQL)
	if err != nil {
		return &wire.Response{ID: req.ID, Error: errorFrom(err)}
	}
	return &wire.Response{ID: req.ID, OK: true, Affected: n}
}

func (s *session) doPrepare(req *wire.Request) *wire.Response {
	if req.Name == "" || req.SQL == "" {
		return errResp(req.ID, wire.KindProtocol, "prepare requires name and sql")
	}
	// Validate now so the client learns about a broken statement at
	// prepare time; the plan cache makes repeated execution cheap (the
	// statement is planned once per catalog version), so storing the
	// text is the honest representation of a prepared statement here.
	if _, err := sqlparser.ParseStatement(req.SQL); err != nil {
		return errResp(req.ID, wire.KindInvalid, err.Error())
	}
	s.prepared[req.Name] = req.SQL
	return &wire.Response{ID: req.ID, OK: true}
}

func (s *session) doSet(req *wire.Request) *wire.Response {
	if req.Strategy != "" {
		if _, ok := parseStrategy(req.Strategy); !ok {
			return errResp(req.ID, wire.KindInvalid, "unknown strategy "+req.Strategy)
		}
		s.strategy = req.Strategy
	}
	if req.Path != "" {
		if _, ok := exec.ParsePath(req.Path); !ok {
			return errResp(req.ID, wire.KindInvalid, "unknown execution path "+req.Path)
		}
		s.path = req.Path
	}
	if req.Nulls != "" {
		if _, ok := parseNulls(req.Nulls); !ok {
			return errResp(req.ID, wire.KindInvalid, "unknown null mode "+req.Nulls)
		}
		s.nulls = req.Nulls
	}
	if req.TimeoutMS > 0 {
		s.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	} else if req.TimeoutMS < 0 {
		s.timeout = 0
	}
	return &wire.Response{ID: req.ID, OK: true}
}

func (s *session) doPing(req *wire.Request) *wire.Response {
	st := s.srv.Stats()
	info := &wire.ServerInfo{
		Role:     s.srv.cfg.Role,
		Draining: st.Draining,
		Sessions: st.Sessions,
		Conns:    st.Conns,
	}
	if s.srv.cfg.Role == RoleReplica {
		info.AppliedLSN = s.srv.cfg.DB.ReplicaState().AppliedLSN
		if s.srv.cfg.Staleness != nil {
			info.StalenessMS = s.srv.cfg.Staleness().Milliseconds()
		}
	}
	return &wire.Response{ID: req.ID, OK: true, Server: info}
}

// errorFrom maps an engine error to its wire kind. Execution failures
// arrive wrapped in *disqo.QueryError with the sentinel cause
// underneath; parse and plan failures arrive unwrapped and map to
// "invalid" (the statement is wrong — retrying cannot help).
func errorFrom(err error) *wire.Error {
	we := &wire.Error{Kind: wire.KindQuery, Message: err.Error()}
	var qe *disqo.QueryError
	isQueryError := errors.As(err, &qe)
	if isQueryError {
		if qe.NodeID >= 0 {
			we.Node, we.Op = qe.NodeID, qe.Op
		}
		we.Strategy = string(qe.Strategy)
	}
	switch {
	case errors.Is(err, disqo.ErrOverloaded):
		we.Kind = wire.KindOverloaded
	case errors.Is(err, disqo.ErrClosed):
		we.Kind = wire.KindClosed
	case errors.Is(err, disqo.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		we.Kind = wire.KindTimeout
	case errors.Is(err, disqo.ErrMemoryLimit):
		we.Kind = wire.KindMemory
	case errors.Is(err, context.Canceled):
		we.Kind = wire.KindCanceled
	case errors.Is(err, disqo.ErrWALSealed):
		we.Kind = wire.KindSealed
	case errors.Is(err, disqo.ErrReplicaGap):
		we.Kind = wire.KindProtocol
	case !isQueryError:
		we.Kind = wire.KindInvalid
	}
	return we
}
