// Wire-level chaos suite. Three layers of violence, in order of blast
// radius: seeded connection faults (reads and writes failing at random
// while clients keep querying), a SIGKILLed server process under
// closed-loop load (the restarted server must recover a sequentially
// legal prefix of the acknowledged statements), and replica failover
// (a replica must keep serving stale-bounded reads across its writer's
// death and catch up when the writer returns). Every test leak-checks
// goroutines and, where sockets churn, file descriptors.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"disqo"
	"disqo/internal/faultinject"
	"disqo/internal/server"
	"disqo/internal/testutil"
)

// freeAddr reserves a loopback port by binding and releasing it. The
// tiny race with another process is acceptable in tests.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestChaosConnFaults runs queries through a server whose read and
// write paths fail on a seeded pseudo-random subset of visits. Every
// query must either succeed or fail with a typed error the client can
// classify; afterwards the server must be back to zero sessions with
// no goroutine or fd leaks — injected socket failures may cost
// requests, never sessions-in-limbo.
func TestChaosConnFaults(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	testutil.VerifyNoFDLeaks(t)
	in := faultinject.NewSeeded(0xd15c0d, 5) // every ~5th conn visit fails
	srv, db, addr := startServer(t, server.Config{Fault: in})
	seedTable(t, db)

	const queries = 120
	succeeded, failed := 0, 0
	for i := 0; i < queries; i++ {
		// A fresh client every few queries keeps dial/accept under fault
		// pressure too; reuse in between exercises reconnect.
		c, err := disqo.Dial(addr)
		if err != nil {
			failed++
			continue
		}
		for j := 0; j < 3; j++ {
			res, err := c.Query("SELECT k, v FROM kv WHERE k = 1 OR v = 'two'")
			switch {
			case err == nil:
				if len(res.Rows) != 2 {
					t.Fatalf("degraded result under faults: %d rows, want 2", len(res.Rows))
				}
				succeeded++
			case errors.Is(err, disqo.ErrConnection) || errors.Is(err, disqo.ErrClosed):
				failed++
			default:
				var se *disqo.ServerError
				if !errors.As(err, &se) {
					t.Fatalf("unclassifiable error under faults: %v", err)
				}
				failed++
			}
		}
		c.Close()
	}
	if succeeded == 0 {
		t.Fatal("no query ever succeeded under seeded faults")
	}
	if in.Fired() == 0 {
		t.Fatal("no fault ever fired; the chaos hook is disconnected")
	}
	t.Logf("seeded conn faults: %d ok, %d failed, %d faults fired", succeeded, failed, in.Fired())

	// All torn sessions must be fully reaped.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Sessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions stuck after chaos: %+v", srv.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// serveChurnScript is the kill test's deterministic write workload:
// state after statement i is a function of i alone, so the set of
// legal post-crash states is exactly the set of prefix fingerprints.
func serveChurnScript() []string {
	script := []string{
		"CREATE TABLE load (a INTEGER, b VARCHAR)",
	}
	for i := 0; i < 30; i++ {
		script = append(script, fmt.Sprintf("INSERT INTO load VALUES (%d, 'row%d')", i, i%7))
	}
	script = append(script,
		"UPDATE load SET b = 'x' WHERE a > 20",
		"DELETE FROM load WHERE a = 3",
		"CREATE TABLE second (k INTEGER)",
		"INSERT INTO second VALUES (1), (2), (3)",
	)
	return script
}

// TestServerChaosChild is the victim process: it serves a durable DB at
// the address the parent chose until the parent SIGKILLs it.
func TestServerChaosChild(t *testing.T) {
	dir := os.Getenv("DISQO_SERVE_DIR")
	if dir == "" {
		t.Skip("server-chaos child; driven by TestChaosServerKillUnderLoad")
	}
	db, err := disqo.Open(disqo.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: db, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ListenAndServe(os.Getenv("DISQO_SERVE_ADDR")); err != nil {
		t.Fatal(err)
	}
}

// spawnServerChild starts the victim and waits until it answers a ping.
func spawnServerChild(t *testing.T, dir, addr string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestServerChaosChild$", "-test.count=1")
	cmd.Env = append(os.Environ(), "DISQO_SERVE_DIR="+dir, "DISQO_SERVE_ADDR="+addr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		c, err := disqo.Dial(addr, disqo.WithClientDialTimeout(200*time.Millisecond))
		if err == nil {
			if _, err := c.Ping(nil); err == nil {
				c.Close()
				return cmd
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child server never became ready: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestChaosServerKillUnderLoad SIGKILLs a server process at several
// points of a closed-loop write workload and asserts, after each kill,
// that reopening the data directory recovers a sequentially legal
// state: every acknowledged statement is durable (the WAL fsyncs before
// the response), at most the one unacknowledged in-flight statement may
// additionally have applied, and nothing is ever torn or reordered.
func TestChaosServerKillUnderLoad(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	testutil.VerifyNoFDLeaks(t)
	script := serveChurnScript()

	// Legal states: the fingerprint after every prefix of the script.
	legal := make(map[uint64]int)
	vdb, err := disqo.Open()
	if err != nil {
		t.Fatal(err)
	}
	legal[vdb.StateFingerprint()] = 0
	for i, sql := range script {
		if _, err := vdb.Exec(sql); err != nil {
			t.Fatalf("script statement %d: %v", i, err)
		}
		legal[vdb.StateFingerprint()] = i + 1
	}
	vdb.Close()

	for _, killAt := range []int{2, 11, 27} {
		t.Run(fmt.Sprintf("killAfter%d", killAt), func(t *testing.T) {
			dir := t.TempDir()
			addr := freeAddr(t)
			cmd := spawnServerChild(t, dir, addr)
			defer func() {
				cmd.Process.Kill()
				cmd.Wait()
			}()

			c, err := disqo.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			acked := 0
			for _, sql := range script {
				if acked == killAt {
					// SIGKILL between request cycles: the next Exec runs
					// against a dying or dead server.
					cmd.Process.Kill()
				}
				if _, err := c.Exec(sql); err != nil {
					break
				}
				acked++
			}
			cmd.Wait()
			if acked >= len(script) {
				t.Fatal("child survived the kill and finished the script")
			}

			db, err := disqo.Open(disqo.WithDataDir(dir))
			if err != nil {
				t.Fatalf("recovery after kill@%d failed: %v", killAt, err)
			}
			defer db.Close()
			n, ok := legal[db.StateFingerprint()]
			if !ok {
				t.Fatalf("kill@%d: recovered state matches no script prefix", killAt)
			}
			// Acked statements must be durable; the single in-flight
			// statement whose response was lost may or may not be.
			if n < acked || n > acked+1 {
				t.Fatalf("kill@%d: recovered prefix %d, acked %d — lost or phantom writes", killAt, n, acked)
			}
			t.Logf("kill@%d: %d acked, recovered prefix %d", killAt, acked, n)
		})
	}
}

// startWriter opens a durable DB over dir and serves it on addr,
// returning a stop function that tears the server down abruptly (no
// graceful drain — this is the failover test's murder weapon).
func startWriter(t *testing.T, dir, addr string) (*disqo.DB, func()) {
	t.Helper()
	db, err := disqo.Open(disqo.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: db, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once bool
	stop := func() {
		if once {
			return
		}
		once = true
		ctx, cancel := context.WithDeadline(context.Background(), time.Now())
		defer cancel()
		srv.Shutdown(ctx)
		<-done
		if err := db.Close(); err != nil {
			t.Errorf("writer close: %v", err)
		}
	}
	t.Cleanup(stop)
	return db, stop
}

func replicaCount(rdb *disqo.DB, table string) (int, error) {
	res, err := rdb.Query("SELECT COUNT(*) FROM " + table)
	if err != nil {
		return -1, err
	}
	n, _ := res.Rows[0][0].IntOk()
	return int(n), nil
}

func waitReplicaCount(t *testing.T, rdb *disqo.DB, table string, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		n, err := replicaCount(rdb, table)
		if err == nil && n == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reached %d rows in %s (last: %d, %v)", want, table, n, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosReplicaFailover walks the full failover arc: a replica
// bootstraps through a checkpoint snapshot (the writer's log was
// truncated before it ever connected), tails live writes, keeps serving
// reads — with growing, observable staleness — while the writer is
// dead, and converges again when a new writer process recovers the
// directory and takes the old address.
func TestChaosReplicaFailover(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	testutil.VerifyNoFDLeaks(t)
	dir := t.TempDir()
	addr := freeAddr(t)
	db1, stopWriter := startWriter(t, dir, addr)

	if _, err := db1.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db1.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate the log: a replica starting from LSN 0 can now only be
	// bootstrapped by shipping the checkpoint snapshot.
	if err := db1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		if _, err := db1.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	rdb, err := disqo.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	rep, err := server.NewReplica(server.ReplicaConfig{
		DB: rdb, Writer: addr, ReconnectDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	repCtx, repCancel := context.WithCancel(context.Background())
	repDone := make(chan struct{})
	go func() {
		defer close(repDone)
		rep.Run(repCtx)
	}()
	defer func() {
		repCancel()
		<-repDone
	}()

	waitReplicaCount(t, rdb, "t", 10)
	if rs := rdb.ReplicaState(); rs.Snapshots == 0 {
		t.Fatalf("replica bootstrapped without the snapshot bridge: %+v", rs)
	}

	// The writer dies. The replica keeps answering — staleness grows
	// without bound, but reads never fail.
	stopWriter()
	preDeath := rep.Staleness()
	time.Sleep(300 * time.Millisecond)
	if n, err := replicaCount(rdb, "t"); err != nil || n != 10 {
		t.Fatalf("replica read during writer death: %d rows, %v", n, err)
	}
	if rep.Staleness() <= preDeath {
		t.Fatal("staleness did not grow while the writer was dead")
	}

	// A new writer process recovers the directory and takes the address;
	// the replica reconnects and catches up.
	db2, _ := startWriter(t, dir, addr)
	if _, err := db2.Exec("INSERT INTO t VALUES (100)"); err != nil {
		t.Fatal(err)
	}
	waitReplicaCount(t, rdb, "t", 11)
}

// TestChaosReplicaApplyFault injects a failure into the replica's apply
// loop mid-stream: the stream drops, the replica reconnects and
// re-handshakes from its applied LSN, and convergence is unharmed —
// records already applied are skipped as duplicates, never re-applied.
func TestChaosReplicaApplyFault(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	addr := freeAddr(t)
	db1, _ := startWriter(t, dir, addr)
	if _, err := db1.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := db1.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	in := faultinject.New()
	in.Arm(faultinject.SiteReplicaApply, -1, 4, false) // die on the 4th frame
	rdb, err := disqo.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	rep, err := server.NewReplica(server.ReplicaConfig{
		DB: rdb, Writer: addr, ReconnectDelay: 50 * time.Millisecond, Fault: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	repCtx, repCancel := context.WithCancel(context.Background())
	repDone := make(chan struct{})
	go func() {
		defer close(repDone)
		rep.Run(repCtx)
	}()
	defer func() {
		repCancel()
		<-repDone
	}()

	waitReplicaCount(t, rdb, "t", 8)
	if in.Fired() == 0 {
		t.Fatal("the apply fault never fired")
	}
	// Convergence must be exact despite the mid-stream retry.
	if rs := rdb.ReplicaState(); rs.AppliedLSN == 0 {
		t.Fatalf("replica state empty after convergence: %+v", rs)
	}
}
