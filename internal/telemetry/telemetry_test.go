package telemetry

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantileBrackets checks the core accuracy contract: for
// random sample sets, every reported quantile is the log2-bucket upper
// bound of the true order statistic — i.e. true <= estimate < 2*true
// (within one bucket).
func TestHistogramQuantileBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		samples := make([]time.Duration, n)
		var h Histogram
		for i := range samples {
			samples[i] = time.Duration(rng.Int63n(int64(10 * time.Second)))
			h.Record(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
			rank := int(float64(n)*q+0.9999999) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= n {
				rank = n - 1
			}
			truth := samples[rank]
			got := h.Quantile(q)
			if got < truth {
				t.Fatalf("trial %d q=%v: estimate %v below true order statistic %v", trial, q, got, truth)
			}
			// Upper bound of truth's bucket: 2^bits.Len64(truth)-1.
			if truth > 0 && got >= 2*truth {
				t.Fatalf("trial %d q=%v: estimate %v not within one log2 bucket of %v", trial, q, got, truth)
			}
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", h.Quantile(0.5))
	}
	h.Record(0)
	h.Record(-5 * time.Second) // clamps to 0
	if got := h.Quantile(1.0); got != 0 {
		t.Fatalf("all-zero histogram p100 = %v, want 0", got)
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	var nilH *Histogram
	nilH.Record(time.Second) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should report zeros")
	}
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot should be empty")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, want Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		d := time.Duration(rng.Int63n(int64(time.Minute)))
		want.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != want.Count() || a.Sum() != want.Sum() {
		t.Fatalf("merged count/sum %d/%v, want %d/%v", a.Count(), a.Sum(), want.Count(), want.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q=%v: merged %v, direct %v", q, a.Quantile(q), want.Quantile(q))
		}
	}
	a.Reset()
	if a.Count() != 0 || a.Quantile(0.5) != 0 {
		t.Fatal("reset histogram should be empty")
	}
}

func TestCollectorCounts(t *testing.T) {
	c := New(Config{})
	key := "SELECT 1"
	for i := 0; i < 5; i++ {
		c.Observe(key, Obs{Strategy: "unnested", Path: "vector", Elapsed: time.Millisecond, Rows: 2, Outcome: OutcomeOK, Source: SourceExecution})
	}
	c.Observe(key, Obs{Strategy: "unnested", Path: "vector", Outcome: OutcomeError})
	c.Observe(key, Obs{Strategy: "unnested", Path: "vector", Outcome: OutcomeShed})
	c.Observe(key, Obs{Strategy: "canonical", Path: "row", Elapsed: 2 * time.Millisecond, Rows: 2, Outcome: OutcomeOK, Source: SourceResultCache, PlanHit: true})

	snap := c.Snapshot()
	if snap.Queries != 8 || snap.Errors != 1 || snap.Sheds != 1 || snap.Rows != 12 {
		t.Fatalf("global counters: %+v", snap)
	}
	if len(snap.Statements) != 1 {
		t.Fatalf("statements = %d, want 1", len(snap.Statements))
	}
	st := snap.Statements[0]
	if st.SQL != key || st.Calls != 8 || st.Errors != 1 || st.Sheds != 1 || st.Rows != 12 {
		t.Fatalf("statement stats: %+v", st)
	}
	if st.ResultHits != 1 || st.PlanHits != 1 || st.FlightWaits != 0 {
		t.Fatalf("hit counters: %+v", st)
	}
	if st.ByStrategy["unnested"] != 7 || st.ByStrategy["canonical"] != 1 {
		t.Fatalf("by-strategy: %v", st.ByStrategy)
	}
	if st.ByPath["vector"] != 7 || st.ByPath["row"] != 1 {
		t.Fatalf("by-path: %v", st.ByPath)
	}
	if st.Latency.Count != 6 {
		t.Fatalf("latency count = %d, want 6 (OK only)", st.Latency.Count)
	}
	if got := st.CacheHitRate(); got != 1.0/8 {
		t.Fatalf("cache hit rate = %v", got)
	}
}

func TestCollectorOps(t *testing.T) {
	c := New(Config{})
	key := "SELECT * FROM r"
	c.ObserveOps(key, []OpObs{
		{Class: "Scan", EstRows: 100, ActualRows: 90},
		{Class: "Filter", EstRows: 50, ActualRows: 10},
	})
	c.ObserveOps(key, []OpObs{{Class: "Scan", EstRows: 100, ActualRows: 95}})
	st := c.Snapshot().Statements[0]
	if len(st.Ops) != 2 {
		t.Fatalf("ops = %+v", st.Ops)
	}
	// Sorted by class: Filter, Scan.
	if st.Ops[0].Class != "Filter" || st.Ops[0].Calls != 1 || st.Ops[0].ActualRows != 10 {
		t.Fatalf("filter agg: %+v", st.Ops[0])
	}
	if st.Ops[1].Class != "Scan" || st.Ops[1].Calls != 2 || st.Ops[1].EstRows != 200 || st.Ops[1].ActualRows != 185 {
		t.Fatalf("scan agg: %+v", st.Ops[1])
	}
}

// TestCollectorStatementCap checks overflow accounting: statements past
// MaxStatements are dropped in aggregate, never silently.
func TestCollectorStatementCap(t *testing.T) {
	c := New(Config{MaxStatements: 4})
	for i := 0; i < 10; i++ {
		c.Observe(fmt.Sprintf("SELECT %d", i), Obs{Outcome: OutcomeOK, Elapsed: time.Millisecond})
	}
	snap := c.Snapshot()
	if len(snap.Statements) != 4 {
		t.Fatalf("statements = %d, want 4", len(snap.Statements))
	}
	if snap.DroppedStatements != 6 {
		t.Fatalf("dropped = %d, want 6", snap.DroppedStatements)
	}
	if snap.Queries != 10 {
		t.Fatalf("queries = %d, want 10 (drops still count globally)", snap.Queries)
	}
}

// TestCollectorConcurrent hammers one collector from 16 goroutines and
// checks totals add up — run under -race this also proves the
// synchronization story.
func TestCollectorConcurrent(t *testing.T) {
	c := New(Config{})
	const goroutines, perG = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("SELECT %d", g%4) // 4 distinct statements
			for i := 0; i < perG; i++ {
				c.Observe(key, Obs{Strategy: "unnested", Path: "vector", Elapsed: time.Duration(i) * time.Microsecond, Rows: 1, Outcome: OutcomeOK})
				if i%100 == 0 {
					c.ObserveOps(key, []OpObs{{Class: "Scan", EstRows: 1, ActualRows: 1}})
					_ = c.Snapshot() // readers race writers safely
				}
			}
		}(g)
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Queries != goroutines*perG {
		t.Fatalf("queries = %d, want %d", snap.Queries, goroutines*perG)
	}
	if len(snap.Statements) != 4 {
		t.Fatalf("statements = %d, want 4", len(snap.Statements))
	}
	var calls int64
	for _, st := range snap.Statements {
		calls += st.Calls
	}
	if calls != goroutines*perG {
		t.Fatalf("per-statement calls sum = %d, want %d", calls, goroutines*perG)
	}
}

func TestSlowLogRing(t *testing.T) {
	c := New(Config{SlowThreshold: time.Millisecond, SlowCapacity: 3})
	for i := 0; i < 5; i++ {
		c.RecordSlow(SlowQuery{SQL: fmt.Sprintf("q%d", i), Elapsed: time.Duration(i) * time.Second})
	}
	snap := c.Snapshot()
	if snap.SlowTotal != 5 {
		t.Fatalf("slow total = %d, want 5", snap.SlowTotal)
	}
	if len(snap.Slow) != 3 {
		t.Fatalf("ring length = %d, want 3", len(snap.Slow))
	}
	// Newest first: q4, q3, q2.
	for i, want := range []string{"q4", "q3", "q2"} {
		if snap.Slow[i].SQL != want {
			t.Fatalf("slot %d = %s, want %s (full: %+v)", i, snap.Slow[i].SQL, want, snap.Slow)
		}
	}
}

func TestSlowLogPartialFill(t *testing.T) {
	c := New(Config{SlowCapacity: 8})
	c.RecordSlow(SlowQuery{SQL: "a"})
	c.RecordSlow(SlowQuery{SQL: "b"})
	slow, total := c.slow.snapshot()
	if total != 2 || len(slow) != 2 || slow[0].SQL != "b" || slow[1].SQL != "a" {
		t.Fatalf("partial ring: total=%d %+v", total, slow)
	}
}

func TestCollectorReset(t *testing.T) {
	c := New(Config{SlowCapacity: 4})
	c.Observe("SELECT 1", Obs{Outcome: OutcomeOK, Elapsed: time.Millisecond, Rows: 3})
	c.RecordSlow(SlowQuery{SQL: "SELECT 1"})
	c.Reset()
	snap := c.Snapshot()
	if snap.Queries != 0 || snap.Rows != 0 || len(snap.Statements) != 0 || snap.SlowTotal != 0 || len(snap.Slow) != 0 {
		t.Fatalf("post-reset snapshot not empty: %+v", snap)
	}
	// The registry must keep working after reset.
	c.Observe("SELECT 2", Obs{Outcome: OutcomeOK, Elapsed: time.Millisecond})
	if got := c.Snapshot(); got.Queries != 1 || len(got.Statements) != 1 {
		t.Fatalf("post-reset observe: %+v", got)
	}
}

func TestNilCollector(t *testing.T) {
	var c *Collector
	c.Observe("SELECT 1", Obs{Outcome: OutcomeOK}) // must not panic
	c.ObserveOps("SELECT 1", []OpObs{{Class: "Scan"}})
	c.RecordSlow(SlowQuery{})
	c.Reset()
	if c.SlowThreshold() != 0 {
		t.Fatal("nil threshold")
	}
	if s := c.Snapshot(); s.Queries != 0 {
		t.Fatal("nil snapshot")
	}
	if l := c.Latency(); l.Count != 0 {
		t.Fatal("nil latency")
	}
}

// TestObserveZeroAlloc proves the steady-state hot path allocates
// nothing once a statement's entry exists.
func TestObserveZeroAlloc(t *testing.T) {
	c := New(Config{})
	key := "SELECT 1"
	obs := Obs{Strategy: "unnested", Path: "vector", Elapsed: time.Millisecond, Rows: 1, Outcome: OutcomeOK}
	c.Observe(key, obs) // create the entry
	if got := testing.AllocsPerRun(200, func() { c.Observe(key, obs) }); got != 0 {
		t.Fatalf("Observe allocates %v per call on the steady state, want 0", got)
	}
}

func TestExpositionFormat(t *testing.T) {
	var e Exposition
	e.Family("disqo_queries_total", "counter", "Total queries.")
	e.Value("", 42)
	e.Family("disqo_statement_calls_total", "counter", "Calls per statement.")
	e.Value("", 7, "fingerprint", "deadbeef00000000")
	e.Value("", 3.5, "fingerprint", `with"quote and \slash`)
	var h Histogram
	h.Record(time.Millisecond)
	h.Record(3 * time.Millisecond)
	e.Family("disqo_query_duration_seconds", "histogram", "Latency.")
	e.Histogram(h.Snapshot())
	out := string(e.Bytes())

	for _, want := range []string{
		"# HELP disqo_queries_total Total queries.\n",
		"# TYPE disqo_queries_total counter\n",
		"disqo_queries_total 42\n",
		`disqo_statement_calls_total{fingerprint="deadbeef00000000"} 7` + "\n",
		`disqo_statement_calls_total{fingerprint="with\"quote and \\slash"} 3.5` + "\n",
		"# TYPE disqo_query_duration_seconds histogram\n",
		`le="+Inf"} 2` + "\n",
		"disqo_query_duration_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at count.
	if !strings.Contains(out, `disqo_query_duration_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
}

func TestSnapshotOrdering(t *testing.T) {
	c := New(Config{})
	c.Observe("SELECT slow", Obs{Outcome: OutcomeOK, Elapsed: time.Second})
	c.Observe("SELECT fast", Obs{Outcome: OutcomeOK, Elapsed: time.Millisecond})
	snap := c.Snapshot()
	if snap.Statements[0].SQL != "SELECT slow" {
		t.Fatalf("want TotalWall-descending order, got %q first", snap.Statements[0].SQL)
	}
	sorted := snap.SortedStatements()
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i].Fingerprint < sorted[j].Fingerprint }) {
		t.Fatal("SortedStatements not fingerprint-ordered")
	}
}
