package telemetry

import (
	"sync"
	"time"
)

// SlowQuery is one captured offender: everything needed to reconstruct
// why a query was slow after the fact, including the ANALYZE-annotated
// physical plan when metrics were collected.
type SlowQuery struct {
	Time     time.Time     `json:"time"`
	SQL      string        `json:"sql"`
	Strategy string        `json:"strategy"`
	Path     string        `json:"path"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Rows     int64         `json:"rows"`
	// Err is set when the slow query also failed (e.g. a timeout after
	// grinding past the threshold).
	Err string `json:"err,omitempty"`
	// Plan is the annotated physical plan (est vs actual rows per
	// operator), empty when metrics were unavailable.
	Plan string `json:"plan,omitempty"`
}

// slowLog is a fixed-capacity ring of the most recent slow queries.
// Capture is rare by construction (only queries over the threshold),
// so a plain mutex is fine.
type slowLog struct {
	mu    sync.Mutex
	buf   []SlowQuery
	next  int   // buf index the next capture overwrites
	total int64 // captures ever made, including overwritten ones
}

func (l *slowLog) init(capacity int) {
	l.buf = make([]SlowQuery, 0, capacity)
}

func (l *slowLog) record(q SlowQuery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, q)
		return
	}
	if cap(l.buf) == 0 {
		return
	}
	l.buf[l.next] = q
	l.next = (l.next + 1) % cap(l.buf)
}

// snapshot returns the ring's contents newest-first plus the all-time
// capture count.
func (l *slowLog) snapshot() ([]SlowQuery, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) == 0 {
		return nil, l.total
	}
	out := make([]SlowQuery, 0, len(l.buf))
	// Once full, the entry before next is the newest; while filling,
	// next stays 0 and the newest is the last appended.
	start := l.next - 1
	if start < 0 {
		start = len(l.buf) - 1
	}
	for i := 0; i < len(l.buf); i++ {
		out = append(out, l.buf[(start-i+len(l.buf))%len(l.buf)])
	}
	return out, l.total
}

func (l *slowLog) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.next = 0
	l.total = 0
}
