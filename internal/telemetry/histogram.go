package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is one slot per possible bits.Len64 of a nanosecond count:
// bucket 0 holds exactly 0ns, bucket i (i >= 1) holds durations in
// [2^(i-1), 2^i) ns. 64-bit durations top out at bucket 64.
const numBuckets = 65

// Histogram is a log2-bucketed latency histogram. Record is a bounded
// number of atomic adds — no locks, no allocation — so it is safe on
// the warm query path and under any concurrency. The zero value is
// ready to use; a nil *Histogram ignores Record and reports zeros.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all recorded durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Merge folds another histogram's counts into this one. Both histograms
// may keep recording concurrently; the merge is per-bucket atomic.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Reset zeroes every counter.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// BucketUpper returns the largest duration bucket i can hold: 0 for
// bucket 0, 2^i - 1 ns otherwise. Every estimate the histogram reports
// is one of these bounds, so an estimate is always within one log2
// bucket of the true sample it stands for.
func BucketUpper(i int) time.Duration {
	switch {
	case i <= 0:
		return 0
	case i >= 64:
		return time.Duration(math.MaxInt64)
	default:
		return time.Duration(uint64(1)<<i - 1)
	}
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound
// of the bucket containing the ceil(q*count)-th smallest sample. With
// no samples it returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			return BucketUpper(i)
		}
	}
	return BucketUpper(numBuckets - 1)
}

// Bucket is one non-empty histogram bucket: Count samples no larger
// than Upper (non-cumulative).
type Bucket struct {
	Upper time.Duration `json:"upper_ns"`
	Count int64         `json:"count"`
}

// LatencySnapshot is a point-in-time copy of a histogram with its
// standard percentile estimates.
type LatencySnapshot struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	P50     time.Duration `json:"p50_ns"`
	P95     time.Duration `json:"p95_ns"`
	P99     time.Duration `json:"p99_ns"`
	Buckets []Bucket      `json:"buckets,omitempty"`
}

// Mean returns the snapshot's average duration.
func (s LatencySnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot copies the histogram's state. Concurrent Records may land
// between bucket reads; each bucket is individually consistent, which
// is all a monitoring read needs.
func (h *Histogram) Snapshot() LatencySnapshot {
	if h == nil {
		return LatencySnapshot{}
	}
	s := LatencySnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: BucketUpper(i), Count: n})
		}
	}
	return s
}
