// Package telemetry is disqo's workload-statistics layer: a
// concurrency-safe statement registry keyed by normalized-SQL
// fingerprint, log2-bucketed latency histograms (global and
// per-statement), a slow-query ring buffer, and a Prometheus
// text-format exposition encoder.
//
// The hot path — Collector.Observe once per finished query — is
// designed to cost a map read plus a bounded number of atomic adds:
// no locks beyond one short per-entry mutex for the strategy/path
// split, and no allocation once a statement's entry exists. A nil
// *Collector ignores every call, so a DB with telemetry disabled pays
// a single pointer test per query.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxStatements bounds the registry: statements beyond it are
// counted in aggregate (Snapshot.DroppedStatements) instead of getting
// their own entry, so a workload of unique ad-hoc statements cannot
// grow the registry without bound.
const DefaultMaxStatements = 512

// DefaultSlowCapacity is the slow-query ring's size when Config leaves
// it zero.
const DefaultSlowCapacity = 128

// Outcome classifies how a query finished.
type Outcome uint8

const (
	// OutcomeOK is a successful query (counted in latency histograms).
	OutcomeOK Outcome = iota
	// OutcomeError is any failure other than admission shedding.
	OutcomeError
	// OutcomeShed is an admission-gate rejection (ErrOverloaded) —
	// transient back-pressure, counted apart from real errors.
	OutcomeShed
)

// Source says where a successful result came from.
type Source uint8

const (
	// SourceExecution: the query ran through the executor.
	SourceExecution Source = iota
	// SourceResultCache: served from a resident result-cache entry.
	SourceResultCache
	// SourceSingleFlight: joined a concurrent identical execution.
	SourceSingleFlight
)

// Obs is one finished query's observation. The struct is passed by
// value so observing never allocates.
type Obs struct {
	Strategy string
	Path     string
	Elapsed  time.Duration
	Rows     int64
	Outcome  Outcome
	Source   Source
	// PlanHit reports that planning was skipped: a plan-cache hit or a
	// prepared statement reusing its derived plan.
	PlanHit bool
}

// OpObs is one physical operator's contribution to a metrics-enabled
// query: the planner's estimate next to the actual output, aggregated
// per operator class (the label up to its first argument).
type OpObs struct {
	Class      string
	EstRows    float64
	ActualRows int64
}

// OpClassStats is the per-statement aggregate of OpObs: summed
// estimates and actuals per operator class, the raw material of
// feedback-driven re-optimization (est-vs-actual per fingerprint).
type OpClassStats struct {
	Class      string  `json:"class"`
	Calls      int64   `json:"calls"`
	EstRows    float64 `json:"est_rows"`
	ActualRows int64   `json:"actual_rows"`
}

// StatementStats is one registered statement's counter snapshot.
type StatementStats struct {
	// Fingerprint is the FNV-64a hash of the normalized SQL, rendered
	// as 16 hex digits — the stable workload key.
	Fingerprint string `json:"fingerprint"`
	// SQL is the normalized statement text.
	SQL string `json:"sql"`

	Calls  int64 `json:"calls"`
	Errors int64 `json:"errors,omitempty"`
	Sheds  int64 `json:"sheds,omitempty"`
	Rows   int64 `json:"rows"`

	// PlanHits counts calls whose planning was skipped (plan cache or
	// prepared-statement reuse); ResultHits counts calls served from
	// the result cache; FlightWaits counts calls that joined a
	// concurrent identical execution.
	PlanHits    int64 `json:"plan_hits,omitempty"`
	ResultHits  int64 `json:"result_hits,omitempty"`
	FlightWaits int64 `json:"flight_waits,omitempty"`

	// TotalWall sums successful calls' latency; Latency carries the
	// full distribution with percentile estimates.
	TotalWall time.Duration   `json:"total_wall_ns"`
	Latency   LatencySnapshot `json:"latency"`

	// ByStrategy / ByPath split Calls by optimizer strategy and
	// execution path.
	ByStrategy map[string]int64 `json:"by_strategy,omitempty"`
	ByPath     map[string]int64 `json:"by_path,omitempty"`

	// Ops is the est-vs-actual aggregate per physical operator class,
	// present for statements that ran with metrics collection.
	Ops []OpClassStats `json:"ops,omitempty"`
}

// CacheHitRate returns served calls (result cache + single flight)
// over all successful calls.
func (s StatementStats) CacheHitRate() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.ResultHits+s.FlightWaits) / float64(s.Calls)
}

// stmtEntry is one registered statement's live counters. Everything on
// the Observe path is atomic; the strategy/path/ops maps sit behind a
// short mutex (map writes after the first key are allocation-free).
type stmtEntry struct {
	norm string
	fp   uint64

	calls, errors, sheds, rows        atomic.Int64
	planHits, resultHits, flightWaits atomic.Int64
	wallNanos                         atomic.Int64
	hist                              Histogram

	mu         sync.Mutex
	byStrategy map[string]int64
	byPath     map[string]int64
	ops        map[string]*OpClassStats
}

func (e *stmtEntry) observe(obs Obs) {
	e.calls.Add(1)
	switch obs.Outcome {
	case OutcomeOK:
		e.rows.Add(obs.Rows)
		e.wallNanos.Add(int64(obs.Elapsed))
		e.hist.Record(obs.Elapsed)
		switch obs.Source {
		case SourceResultCache:
			e.resultHits.Add(1)
		case SourceSingleFlight:
			e.flightWaits.Add(1)
		}
	case OutcomeError:
		e.errors.Add(1)
	case OutcomeShed:
		e.sheds.Add(1)
	}
	if obs.PlanHit {
		e.planHits.Add(1)
	}
	e.mu.Lock()
	e.byStrategy[obs.Strategy]++
	e.byPath[obs.Path]++
	e.mu.Unlock()
}

func (e *stmtEntry) observeOps(ops []OpObs) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range ops {
		agg := e.ops[o.Class]
		if agg == nil {
			agg = &OpClassStats{Class: o.Class}
			e.ops[o.Class] = agg
		}
		agg.Calls++
		agg.EstRows += o.EstRows
		agg.ActualRows += o.ActualRows
	}
}

func (e *stmtEntry) snapshot() StatementStats {
	s := StatementStats{
		Fingerprint: fmt.Sprintf("%016x", e.fp),
		SQL:         e.norm,
		Calls:       e.calls.Load(),
		Errors:      e.errors.Load(),
		Sheds:       e.sheds.Load(),
		Rows:        e.rows.Load(),
		PlanHits:    e.planHits.Load(),
		ResultHits:  e.resultHits.Load(),
		FlightWaits: e.flightWaits.Load(),
		TotalWall:   time.Duration(e.wallNanos.Load()),
		Latency:     e.hist.Snapshot(),
	}
	e.mu.Lock()
	s.ByStrategy = make(map[string]int64, len(e.byStrategy))
	for k, v := range e.byStrategy {
		s.ByStrategy[k] = v
	}
	s.ByPath = make(map[string]int64, len(e.byPath))
	for k, v := range e.byPath {
		s.ByPath[k] = v
	}
	for _, agg := range e.ops {
		s.Ops = append(s.Ops, *agg)
	}
	e.mu.Unlock()
	sort.Slice(s.Ops, func(i, j int) bool { return s.Ops[i].Class < s.Ops[j].Class })
	return s
}

// fnv64a hashes a string without allocating (hash/fnv would need a
// []byte conversion).
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

const shardCount = 16 // power of two; shard = fingerprint & (shardCount-1)

type shard struct {
	mu sync.RWMutex
	m  map[string]*stmtEntry
}

// Config tunes a Collector.
type Config struct {
	// MaxStatements caps the registry (0 = DefaultMaxStatements).
	MaxStatements int
	// SlowThreshold arms the slow-query ring: a successful query at or
	// over it is captured. 0 disables capture.
	SlowThreshold time.Duration
	// SlowCapacity sizes the ring (0 = DefaultSlowCapacity).
	SlowCapacity int
}

// Collector is the workload-statistics hub one DB owns: the statement
// registry, the global latency histogram, global outcome counters, and
// the slow-query ring. All methods are safe for concurrent use and
// nil-safe (a nil Collector is "telemetry disabled").
type Collector struct {
	cfg       Config
	startedAt time.Time

	queries, errors, sheds, rows atomic.Int64
	dropped                      atomic.Int64 // observations beyond MaxStatements
	stmtCount                    atomic.Int64

	lat    Histogram
	shards [shardCount]shard
	slow   slowLog
}

// New builds a Collector.
func New(cfg Config) *Collector {
	if cfg.MaxStatements <= 0 {
		cfg.MaxStatements = DefaultMaxStatements
	}
	if cfg.SlowCapacity <= 0 {
		cfg.SlowCapacity = DefaultSlowCapacity
	}
	c := &Collector{cfg: cfg, startedAt: time.Now()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*stmtEntry)
	}
	c.slow.init(cfg.SlowCapacity)
	return c
}

// SlowThreshold returns the armed slow-query threshold (0 = disabled).
func (c *Collector) SlowThreshold() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.SlowThreshold
}

// StartedAt returns the collector's creation (or last Reset) time.
func (c *Collector) StartedAt() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.startedAt
}

// entry returns the statement's registry slot, creating it under the
// statement cap; nil when the registry is full and the key is new.
func (c *Collector) entry(key string, fp uint64) *stmtEntry {
	sh := &c.shards[fp&(shardCount-1)]
	sh.mu.RLock()
	e := sh.m[key]
	sh.mu.RUnlock()
	if e != nil {
		return e
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e = sh.m[key]; e != nil {
		return e
	}
	if c.stmtCount.Load() >= int64(c.cfg.MaxStatements) {
		return nil
	}
	c.stmtCount.Add(1)
	e = &stmtEntry{
		norm:       key,
		fp:         fp,
		byStrategy: make(map[string]int64, 2),
		byPath:     make(map[string]int64, 2),
		ops:        make(map[string]*OpClassStats),
	}
	sh.m[key] = e
	return e
}

// Observe records one finished query under its normalized-SQL key.
// Beyond the registry's first sight of a statement it performs no
// allocation: a map read, atomic adds, and one short mutex.
func (c *Collector) Observe(key string, obs Obs) {
	if c == nil {
		return
	}
	c.queries.Add(1)
	switch obs.Outcome {
	case OutcomeOK:
		c.rows.Add(obs.Rows)
		c.lat.Record(obs.Elapsed)
	case OutcomeError:
		c.errors.Add(1)
	case OutcomeShed:
		c.sheds.Add(1)
	}
	e := c.entry(key, fnv64a(key))
	if e == nil {
		c.dropped.Add(1)
		return
	}
	e.observe(obs)
}

// ObserveOps folds a metrics-enabled query's per-operator
// est-vs-actual rows into the statement's per-class aggregate.
func (c *Collector) ObserveOps(key string, ops []OpObs) {
	if c == nil || len(ops) == 0 {
		return
	}
	if e := c.entry(key, fnv64a(key)); e != nil {
		e.observeOps(ops)
	}
}

// RecordSlow appends a captured offender to the slow-query ring.
func (c *Collector) RecordSlow(q SlowQuery) {
	if c == nil {
		return
	}
	c.slow.record(q)
}

// Latency snapshots the global latency histogram.
func (c *Collector) Latency() LatencySnapshot {
	if c == nil {
		return LatencySnapshot{}
	}
	return c.lat.Snapshot()
}

// Snapshot is the collector's full point-in-time report.
type Snapshot struct {
	StartedAt time.Time `json:"started_at"`

	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`
	Sheds   int64 `json:"sheds"`
	Rows    int64 `json:"rows"`

	Latency LatencySnapshot `json:"latency"`

	// Statements is sorted by TotalWall descending — the workload's
	// cost ranking; DroppedStatements counts observations that found
	// the registry full.
	Statements        []StatementStats `json:"statements"`
	DroppedStatements int64            `json:"dropped_statements,omitempty"`

	// Slow is the ring's contents, newest first; SlowTotal counts every
	// capture ever made (the ring overwrites).
	Slow      []SlowQuery `json:"slow,omitempty"`
	SlowTotal int64       `json:"slow_total"`
}

// Snapshot assembles the full report.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	s := Snapshot{
		StartedAt:         c.startedAt,
		Queries:           c.queries.Load(),
		Errors:            c.errors.Load(),
		Sheds:             c.sheds.Load(),
		Rows:              c.rows.Load(),
		Latency:           c.lat.Snapshot(),
		DroppedStatements: c.dropped.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		entries := make([]*stmtEntry, 0, len(sh.m))
		for _, e := range sh.m {
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
		for _, e := range entries {
			s.Statements = append(s.Statements, e.snapshot())
		}
	}
	sort.Slice(s.Statements, func(i, j int) bool {
		if s.Statements[i].TotalWall != s.Statements[j].TotalWall {
			return s.Statements[i].TotalWall > s.Statements[j].TotalWall
		}
		return s.Statements[i].Fingerprint < s.Statements[j].Fingerprint
	})
	s.Slow, s.SlowTotal = c.slow.snapshot()
	return s
}

// Reset clears every counter, statement entry, and slow-ring slot, and
// restamps StartedAt — the delta-measurement hook behind
// db.ResetStats. In-flight Observes may land on either side of the
// reset; each lands whole.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.queries.Store(0)
	c.errors.Store(0)
	c.sheds.Store(0)
	c.rows.Store(0)
	c.dropped.Store(0)
	c.lat.Reset()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		c.stmtCount.Add(-int64(len(sh.m)))
		sh.m = make(map[string]*stmtEntry)
		sh.mu.Unlock()
	}
	c.slow.reset()
	c.startedAt = time.Now()
}
