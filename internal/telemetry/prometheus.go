package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Exposition builds Prometheus text-format output (version 0.0.4)
// without external dependencies: a sequence of metric families, each a
// # HELP / # TYPE header followed by sample lines. Families render in
// the order they are declared; call Family before Value.
type Exposition struct {
	b       strings.Builder
	current string
}

// Family starts a new metric family. typ is "counter", "gauge", or
// "histogram"; help is a one-line description.
func (e *Exposition) Family(name, typ, help string) {
	if help != "" {
		fmt.Fprintf(&e.b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(&e.b, "# TYPE %s %s\n", name, typ)
	e.current = name
}

// Value emits one sample line for the current family. labels are
// alternating key/value pairs; values are escaped per the text format.
// suffix ("_sum", "_count", "_bucket", or "") is appended to the family
// name, as histogram series require.
func (e *Exposition) Value(suffix string, v float64, labels ...string) {
	e.b.WriteString(e.current)
	e.b.WriteString(suffix)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				e.b.WriteByte(',')
			}
			// %q yields exactly the text-format label escaping:
			// backslash, double quote, and \n.
			fmt.Fprintf(&e.b, "%s=%q", labels[i], labels[i+1])
		}
		e.b.WriteByte('}')
	}
	fmt.Fprintf(&e.b, " %s\n", formatValue(v))
}

// Histogram emits a full Prometheus histogram from a LatencySnapshot:
// cumulative le buckets in seconds, +Inf, _sum and _count.
func (e *Exposition) Histogram(s LatencySnapshot, labels ...string) {
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		le := fmt.Sprintf("%g", b.Upper.Seconds())
		e.Value("_bucket", float64(cum), append(append([]string{}, labels...), "le", le)...)
	}
	e.Value("_bucket", float64(s.Count), append(append([]string{}, labels...), "le", "+Inf")...)
	e.Value("_sum", s.Sum.Seconds(), labels...)
	e.Value("_count", float64(s.Count), labels...)
}

// Bytes returns the rendered exposition.
func (e *Exposition) Bytes() []byte {
	return []byte(e.b.String())
}

// formatValue renders floats the way Prometheus expects: integers
// without a decimal point, everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SortedStatements returns the snapshot's statements sorted by
// fingerprint, the stable order Prometheus scrapes prefer (TotalWall
// ordering churns between scrapes).
func (s Snapshot) SortedStatements() []StatementStats {
	out := make([]StatementStats, len(s.Statements))
	copy(out, s.Statements)
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}
