// Snapshot codec: a compact, deterministic binary encoding of a set of
// immutable table versions plus the catalog commit counter — the
// payload the checkpointer writes and crash recovery reads back. The
// encoding is append-only (AppendX functions grow a caller buffer) so
// the checkpointer can serialize a whole state into one allocation and
// checksum it as a unit; decoding consumes a []byte cursor and returns
// the remainder, failing loudly on any truncation or kind byte it does
// not understand rather than guessing.
//
// Table versions round-trip exactly, including the Version counter
// value each table was published at: the result cache keys on
// (name, Version), so a recovered catalog must resume with the same
// per-table versions — and the same commit counter — it crashed with,
// or post-recovery cache keys could collide with pre-crash ones.
package catalog

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"disqo/internal/storage"
	"disqo/internal/types"
)

// value kind tags in the encoded form. These mirror types.Kind today
// but are a separate namespace on purpose: the on-disk format must not
// silently shift if the in-memory enum is ever reordered.
const (
	tagNull   = 0
	tagInt    = 1
	tagFloat  = 2
	tagString = 3
	tagBool   = 4
)

// AppendValue appends one scalar value to buf.
func AppendValue(buf []byte, v types.Value) []byte {
	switch v.Kind() {
	case types.KindNull:
		return append(buf, tagNull)
	case types.KindInt:
		buf = append(buf, tagInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
	case types.KindFloat:
		buf = append(buf, tagFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	case types.KindString:
		s := v.Str()
		buf = append(buf, tagString)
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	case types.KindBool:
		buf = append(buf, tagBool)
		if v.Bool() {
			return append(buf, 1)
		}
		return append(buf, 0)
	}
	// Unreachable for values the engine produces; encode as NULL rather
	// than corrupting the stream with an unknown tag.
	return append(buf, tagNull)
}

// DecodeValue decodes one scalar value from buf, returning the value
// and the unconsumed remainder.
func DecodeValue(buf []byte) (types.Value, []byte, error) {
	if len(buf) < 1 {
		return types.Value{}, nil, fmt.Errorf("catalog: truncated value")
	}
	tag, buf := buf[0], buf[1:]
	switch tag {
	case tagNull:
		return types.Null(), buf, nil
	case tagInt:
		if len(buf) < 8 {
			return types.Value{}, nil, fmt.Errorf("catalog: truncated int value")
		}
		return types.NewInt(int64(binary.LittleEndian.Uint64(buf))), buf[8:], nil
	case tagFloat:
		if len(buf) < 8 {
			return types.Value{}, nil, fmt.Errorf("catalog: truncated float value")
		}
		return types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf))), buf[8:], nil
	case tagString:
		n, rest, err := decodeLen(buf, "string value")
		if err != nil {
			return types.Value{}, nil, err
		}
		if len(rest) < n {
			return types.Value{}, nil, fmt.Errorf("catalog: truncated string value")
		}
		return types.NewString(string(rest[:n])), rest[n:], nil
	case tagBool:
		if len(buf) < 1 {
			return types.Value{}, nil, fmt.Errorf("catalog: truncated bool value")
		}
		return types.NewBool(buf[0] != 0), buf[1:], nil
	}
	return types.Value{}, nil, fmt.Errorf("catalog: unknown value tag %d", tag)
}

// AppendRow appends one tuple (without an arity prefix — the table
// codec knows the column count).
func AppendRow(buf []byte, row []types.Value) []byte {
	for _, v := range row {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeRow decodes an arity-n tuple from buf.
func DecodeRow(buf []byte, arity int) ([]types.Value, []byte, error) {
	row := make([]types.Value, arity)
	var err error
	for i := 0; i < arity; i++ {
		row[i], buf, err = DecodeValue(buf)
		if err != nil {
			return nil, nil, err
		}
	}
	return row, buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte, what string) (string, []byte, error) {
	n, rest, err := decodeLen(buf, what)
	if err != nil {
		return "", nil, err
	}
	if len(rest) < n {
		return "", nil, fmt.Errorf("catalog: truncated %s", what)
	}
	return string(rest[:n]), rest[n:], nil
}

// decodeLen reads a uvarint length and bounds it by the remaining
// buffer so a corrupt length cannot drive a giant allocation.
func decodeLen(buf []byte, what string) (int, []byte, error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("catalog: bad %s length", what)
	}
	rest := buf[n:]
	if u > uint64(len(rest))+1 {
		// +1 slack: counts (rows, columns) may legitimately exceed the
		// byte count only when their elements are zero-width, which no
		// element of this format is except NULL (1 byte). A count larger
		// than the remaining bytes is always corruption.
		return 0, nil, fmt.Errorf("catalog: %s length %d exceeds remaining %d bytes", what, u, len(rest))
	}
	return int(u), rest, nil
}

// AppendTable appends one immutable table version.
func AppendTable(buf []byte, t *Table) []byte {
	buf = appendString(buf, t.Name)
	buf = binary.AppendUvarint(buf, uint64(len(t.Columns)))
	for _, c := range t.Columns {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Type))
	}
	buf = binary.AppendUvarint(buf, t.Version)
	buf = binary.AppendUvarint(buf, uint64(len(t.Rel.Tuples)))
	for _, row := range t.Rel.Tuples {
		buf = AppendRow(buf, row)
	}
	return buf
}

// DecodeTable decodes one table version, rebuilding its relation and
// qualified attribute schema from the column list.
func DecodeTable(buf []byte) (*Table, []byte, error) {
	name, buf, err := decodeString(buf, "table name")
	if err != nil {
		return nil, nil, err
	}
	ncols, buf, err := decodeLen(buf, "column count")
	if err != nil {
		return nil, nil, err
	}
	if ncols == 0 {
		return nil, nil, fmt.Errorf("catalog: table %q decoded with no columns", name)
	}
	cols := make([]Column, ncols)
	attrs := make([]string, ncols)
	for i := range cols {
		cname, rest, err := decodeString(buf, "column name")
		if err != nil {
			return nil, nil, err
		}
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("catalog: truncated column type")
		}
		cols[i] = Column{Name: cname, Type: types.Kind(rest[0])}
		attrs[i] = qualify(name, cname)
		buf = rest[1:]
	}
	version, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, fmt.Errorf("catalog: bad table version")
	}
	buf = buf[n:]
	nrows, buf, err := decodeLen(buf, "row count")
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Name:    name,
		Columns: cols,
		Rel:     storage.NewRelation(storage.NewSchema(attrs...)),
		Version: version,
	}
	if nrows > 0 {
		tuples := make([][]types.Value, 0, nrows)
		for i := 0; i < nrows; i++ {
			var row []types.Value
			row, buf, err = DecodeRow(buf, ncols)
			if err != nil {
				return nil, nil, err
			}
			tuples = append(tuples, row)
		}
		t.Rel.Tuples = tuples
	}
	return t, buf, nil
}

// AppendState appends a whole catalog state: the commit counter plus
// every table version, in sorted-name order for deterministic bytes.
func AppendState(buf []byte, tables []*Table, version uint64) []byte {
	sorted := make([]*Table, len(tables))
	copy(sorted, tables)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	buf = binary.AppendUvarint(buf, version)
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	for _, t := range sorted {
		buf = AppendTable(buf, t)
	}
	return buf
}

// DecodeState decodes a catalog state encoded by AppendState. The whole
// buffer must be consumed: trailing garbage is corruption, not slack.
func DecodeState(buf []byte) ([]*Table, uint64, error) {
	version, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("catalog: bad state version")
	}
	buf = buf[n:]
	ntables, buf, err := decodeLen(buf, "table count")
	if err != nil {
		return nil, 0, err
	}
	tables := make([]*Table, 0, ntables)
	for i := 0; i < ntables; i++ {
		var t *Table
		t, buf, err = DecodeTable(buf)
		if err != nil {
			return nil, 0, err
		}
		tables = append(tables, t)
	}
	if len(buf) != 0 {
		return nil, 0, fmt.Errorf("catalog: %d trailing bytes after state", len(buf))
	}
	return tables, version, nil
}

// Tables returns the snapshot's pinned table versions in sorted-name
// order — the checkpointer's unit of serialization.
func (s *Snapshot) Tables() []*Table {
	out := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Restore replaces the catalog's entire state with decoded table
// versions and the commit counter they were published under — the
// recovery path's first step, before WAL replay resumes normal
// copy-on-write mutation from that counter.
func (c *Catalog) Restore(tables []*Table, version uint64) {
	m := make(map[string]*Table, len(tables))
	for _, t := range tables {
		m[t.Name] = t
	}
	c.mu.Lock()
	c.tables = m
	c.version = version
	c.mu.Unlock()
}
