// Package catalog tracks the database schema: table definitions, their
// column types, and base-table statistics the cost model consumes. The
// executor resolves table names against a Catalog (or one of its
// Snapshots) to find the stored relations.
//
// Concurrency model: a Catalog is safe for concurrent use. Published
// *Table values are immutable — every mutation (Create, Drop,
// InsertRows, ReplaceRows) builds a new table version copy-on-write and
// atomically swaps it into the map under the catalog RWMutex. Readers
// that need a consistent multi-table view call Snapshot, which pins the
// current version set without blocking subsequent writers: a query
// planning and executing against a Snapshot can never observe a torn
// write, and DML never waits for a slow reader to finish.
//
// The builder-path methods Table.Insert and Table.BulkLoad mutate a
// table in place and are reserved for setup-time loaders (datagen)
// populating freshly created tables before the catalog is shared.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"disqo/internal/storage"
	"disqo/internal/types"
)

// Column describes one table column.
type Column struct {
	Name string
	Type types.Kind
}

// Table is a named base relation plus its maintained statistics. Once a
// table version is published in a Catalog it is immutable: mutations go
// through the Catalog's copy-on-write methods, which swap in a fresh
// *Table. The lazily computed stats cache is the only mutable state and
// is guarded by its own mutex, so concurrent snapshot readers may share
// one version freely.
type Table struct {
	Name    string
	Columns []Column
	Rel     *storage.Relation

	// Version is the catalog commit counter value at which this table
	// version was published. Two lookups returning the same name and
	// Version are guaranteed to hold identical data, which is what the
	// result cache keys on for sound invalidation.
	Version uint64

	statsMu    sync.Mutex
	statsDirty bool
	stats      *TableStats
}

// TableStats are per-table statistics used by the cost model: row count
// and per-column distinct-value counts and numeric min/max.
type TableStats struct {
	Rows     int
	Distinct map[string]int     // column → #distinct (Identical semantics)
	Min, Max map[string]float64 // numeric columns only
}

// Reader resolves table names to table versions. It is implemented by
// the live *Catalog (always the latest committed state) and by
// *Snapshot (one pinned version set); the planner, estimator,
// translator, and executor all work against this interface so a whole
// query can run off one immutable snapshot. Version identifies the
// commit boundary the reader observes: the cache layer keys plans and
// results on it (plus per-table versions) for sound invalidation.
type Reader interface {
	Lookup(name string) (*Table, error)
	Names() []string
	Version() uint64
}

// Catalog is the set of defined tables. All methods are safe for
// concurrent use: reads take the read lock, mutations build new table
// versions copy-on-write and swap them in under the write lock.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	version uint64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// qualify builds the executor attribute name for a table column: the
// translator binds range variables to these, e.g. table "r" column "a1"
// becomes "r.a1".
func qualify(table, col string) string {
	return strings.ToLower(table) + "." + strings.ToLower(col)
}

// Create defines a new table with the given columns and an empty heap.
func (c *Catalog) Create(name string, cols []Column) (*Table, error) {
	key := strings.ToLower(name)
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q needs at least one column", name)
	}
	attrs := make([]string, len(cols))
	seen := map[string]bool{}
	for i, col := range cols {
		lc := strings.ToLower(col.Name)
		if seen[lc] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		seen[lc] = true
		attrs[i] = qualify(key, col.Name)
	}
	t := &Table{
		Name:    key,
		Columns: cols,
		Rel:     storage.NewRelation(storage.NewSchema(attrs...)),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	c.tables[key] = t
	c.version++
	t.Version = c.version
	return t, nil
}

// Drop removes a table. Snapshots pinned before the drop keep resolving
// the old version.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, key)
	c.version++
	return nil
}

// Lookup returns the latest committed version of the table, or an error
// naming it.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[strings.ToLower(name)]
	c.mu.RUnlock()
	if ok {
		return t, nil
	}
	return nil, fmt.Errorf("catalog: no table %q", name)
}

// Names returns the defined table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Version returns the commit counter: it advances on every successful
// mutation, so two snapshots with equal versions hold identical states.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Snapshot pins the current version set: an immutable, consistent view
// of every table as of one commit boundary. Taking a snapshot is O(#
// tables) — it copies the name map, not any data — and never blocks
// writers beyond the map copy itself.
func (c *Catalog) Snapshot() *Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tables := make(map[string]*Table, len(c.tables))
	for k, v := range c.tables {
		tables[k] = v
	}
	return &Snapshot{tables: tables, version: c.version}
}

// Snapshot is an immutable view of a catalog as of one commit boundary.
// It implements Reader, so planning and execution can run entirely
// against it: concurrent DML on the live catalog swaps in new table
// versions without disturbing the pinned ones.
type Snapshot struct {
	tables  map[string]*Table
	version uint64
}

// Lookup returns the pinned version of the table.
func (s *Snapshot) Lookup(name string) (*Table, error) {
	if t, ok := s.tables[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("catalog: no table %q", name)
}

// Names returns the snapshot's table names, sorted.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Version identifies the commit this snapshot pinned.
func (s *Snapshot) Version() uint64 { return s.version }

// checkRow validates one row against the table's column types. NULL is
// accepted in any column (the paper's schemas are nullable throughout).
func (t *Table) checkRow(row []types.Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("catalog: %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if v.Kind() != t.Columns[i].Type &&
			!(v.IsNumeric() && (t.Columns[i].Type == types.KindInt || t.Columns[i].Type == types.KindFloat)) {
			return fmt.Errorf("catalog: %s.%s expects %s, got %s",
				t.Name, t.Columns[i].Name, t.Columns[i].Type, v.Kind())
		}
	}
	return nil
}

// withRows builds the next version of a table: same name, columns, and
// schema over a new tuple set, with statistics recomputed lazily on
// first use.
func (t *Table) withRows(tuples [][]types.Value) *Table {
	return &Table{
		Name:    t.Name,
		Columns: t.Columns,
		Rel:     &storage.Relation{Schema: t.Rel.Schema, Tuples: tuples},
	}
}

// InsertRows appends rows to a table copy-on-write: after arity and
// type checking, a new table version with a fresh tuple slice is
// swapped in atomically. In-flight snapshot readers keep the previous
// version; either all rows commit or none do.
func (c *Catalog) InsertRows(name string, rows ...[]types.Value) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	for _, row := range rows {
		if err := t.checkRow(row); err != nil {
			return err
		}
	}
	next := t.withRows(t.Rel.CloneAppend(rows...).Tuples)
	c.version++
	next.Version = c.version
	c.tables[key] = next
	return nil
}

// ReplaceRows swaps in a new tuple set for the table — the commit step
// of UPDATE and DELETE, whose new row sets are computed by the caller
// against a consistent pre-image. The caller must not retain or mutate
// the slice afterwards.
func (c *Catalog) ReplaceRows(name string, tuples [][]types.Value) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	next := t.withRows(tuples)
	c.version++
	next.Version = c.version
	c.tables[key] = next
	return nil
}

// Insert appends a row in place after arity and type checking. Builder
// path: only for tables not yet visible to concurrent readers (setup
// code, single-threaded tests); concurrent mutation goes through
// Catalog.InsertRows.
func (t *Table) Insert(row []types.Value) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	t.Rel.Append(row)
	t.statsDirty = true
	return nil
}

// BulkLoad appends rows in place without per-row type checking — the
// data generators produce well-typed rows and load millions of them.
// Builder path: see Insert.
func (t *Table) BulkLoad(rows [][]types.Value) {
	t.Rel.Tuples = append(t.Rel.Tuples, rows...)
	t.statsDirty = true
}

// Stats returns (computing lazily and caching) the table statistics. It
// is safe for any number of concurrent readers: published table
// versions are immutable, so the computation always sees a stable
// relation.
func (t *Table) Stats() *TableStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.stats != nil && !t.statsDirty {
		return t.stats
	}
	s := &TableStats{
		Rows:     t.Rel.Cardinality(),
		Distinct: make(map[string]int, len(t.Columns)),
		Min:      make(map[string]float64),
		Max:      make(map[string]float64),
	}
	for i := range t.Columns {
		attr := t.Rel.Schema.Attr(i)
		seen := make(map[uint64]struct{})
		first := true
		for _, row := range t.Rel.Tuples {
			v := row[i]
			seen[v.Hash()] = struct{}{}
			if f, ok := v.AsFloat(); ok {
				if first || f < s.Min[attr] {
					s.Min[attr] = f
				}
				if first || f > s.Max[attr] {
					s.Max[attr] = f
				}
				first = false
			}
		}
		s.Distinct[attr] = len(seen)
	}
	t.stats = s
	t.statsDirty = false
	return s
}
