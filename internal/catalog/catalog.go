// Package catalog tracks the database schema: table definitions, their
// column types, and base-table statistics the cost model consumes. The
// executor resolves table names against a Catalog to find the stored
// relations.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"disqo/internal/storage"
	"disqo/internal/types"
)

// Column describes one table column.
type Column struct {
	Name string
	Type types.Kind
}

// Table is a named base relation plus its maintained statistics.
type Table struct {
	Name    string
	Columns []Column
	Rel     *storage.Relation

	statsMu    sync.Mutex
	statsDirty bool
	stats      *TableStats
}

// TableStats are per-table statistics used by the cost model: row count
// and per-column distinct-value counts and numeric min/max.
type TableStats struct {
	Rows     int
	Distinct map[string]int     // column → #distinct (Identical semantics)
	Min, Max map[string]float64 // numeric columns only
}

// Catalog is the set of defined tables. It is not safe for concurrent
// mutation; the public API layer serializes DDL.
type Catalog struct {
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// qualify builds the executor attribute name for a table column: the
// translator binds range variables to these, e.g. table "r" column "a1"
// becomes "r.a1".
func qualify(table, col string) string {
	return strings.ToLower(table) + "." + strings.ToLower(col)
}

// Create defines a new table with the given columns and an empty heap.
func (c *Catalog) Create(name string, cols []Column) (*Table, error) {
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q needs at least one column", name)
	}
	attrs := make([]string, len(cols))
	seen := map[string]bool{}
	for i, col := range cols {
		lc := strings.ToLower(col.Name)
		if seen[lc] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		seen[lc] = true
		attrs[i] = qualify(key, col.Name)
	}
	t := &Table{
		Name:    key,
		Columns: cols,
		Rel:     storage.NewRelation(storage.NewSchema(attrs...)),
	}
	c.tables[key] = t
	return t, nil
}

// Drop removes a table.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, key)
	return nil
}

// Lookup returns the table or an error naming it.
func (c *Catalog) Lookup(name string) (*Table, error) {
	if t, ok := c.tables[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("catalog: no table %q", name)
}

// Names returns the defined table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert appends a row after arity and type checking. NULL is accepted in
// any column (the paper's schemas are nullable throughout).
func (t *Table) Insert(row []types.Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("catalog: %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if v.Kind() != t.Columns[i].Type &&
			!(v.IsNumeric() && (t.Columns[i].Type == types.KindInt || t.Columns[i].Type == types.KindFloat)) {
			return fmt.Errorf("catalog: %s.%s expects %s, got %s",
				t.Name, t.Columns[i].Name, t.Columns[i].Type, v.Kind())
		}
	}
	t.Rel.Append(row)
	t.statsDirty = true
	return nil
}

// BulkLoad appends rows without per-row type checking — the data
// generators produce well-typed rows and load millions of them.
func (t *Table) BulkLoad(rows [][]types.Value) {
	t.Rel.Tuples = append(t.Rel.Tuples, rows...)
	t.statsDirty = true
}

// Stats returns (computing lazily and caching) the table statistics. It
// is safe for concurrent readers; writers (Insert/BulkLoad) must not run
// concurrently with queries.
func (t *Table) Stats() *TableStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.stats != nil && !t.statsDirty {
		return t.stats
	}
	s := &TableStats{
		Rows:     t.Rel.Cardinality(),
		Distinct: make(map[string]int, len(t.Columns)),
		Min:      make(map[string]float64),
		Max:      make(map[string]float64),
	}
	for i := range t.Columns {
		attr := t.Rel.Schema.Attr(i)
		seen := make(map[uint64]struct{})
		first := true
		for _, row := range t.Rel.Tuples {
			v := row[i]
			seen[v.Hash()] = struct{}{}
			if f, ok := v.AsFloat(); ok {
				if first || f < s.Min[attr] {
					s.Min[attr] = f
				}
				if first || f > s.Max[attr] {
					s.Max[attr] = f
				}
				first = false
			}
		}
		s.Distinct[attr] = len(seen)
	}
	t.stats = s
	t.statsDirty = false
	return s
}
