package catalog

import (
	"testing"

	"disqo/internal/types"
)

func rstColumns() []Column {
	return []Column{
		{Name: "a1", Type: types.KindInt},
		{Name: "a2", Type: types.KindInt},
		{Name: "a3", Type: types.KindInt},
		{Name: "a4", Type: types.KindInt},
	}
}

func TestCreateLookupDrop(t *testing.T) {
	c := New()
	tbl, err := c.Create("R", rstColumns())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rel.Schema.String() != "[r.a1, r.a2, r.a3, r.a4]" {
		t.Errorf("schema = %s", tbl.Rel.Schema)
	}
	got, err := c.Lookup("r")
	if err != nil || got != tbl {
		t.Error("case-insensitive lookup failed")
	}
	if _, err := c.Lookup("missing"); err == nil {
		t.Error("lookup of missing table must error")
	}
	if _, err := c.Create("r", rstColumns()); err == nil {
		t.Error("duplicate create must error")
	}
	if err := c.Drop("R"); err != nil {
		t.Error(err)
	}
	if err := c.Drop("R"); err == nil {
		t.Error("double drop must error")
	}
}

func TestCreateValidation(t *testing.T) {
	c := New()
	if _, err := c.Create("empty", nil); err == nil {
		t.Error("zero-column table must error")
	}
	if _, err := c.Create("dup", []Column{
		{Name: "x", Type: types.KindInt}, {Name: "X", Type: types.KindInt},
	}); err == nil {
		t.Error("duplicate column (case-insensitive) must error")
	}
}

func TestNames(t *testing.T) {
	c := New()
	c.Create("zeta", rstColumns())
	c.Create("alpha", rstColumns())
	names := c.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestInsertTypeChecking(t *testing.T) {
	c := New()
	tbl, _ := c.Create("t", []Column{
		{Name: "n", Type: types.KindInt},
		{Name: "s", Type: types.KindString},
	})
	if err := tbl.Insert([]types.Value{types.NewInt(1), types.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]types.Value{types.Null(), types.Null()}); err != nil {
		t.Errorf("NULLs must be insertable: %v", err)
	}
	if err := tbl.Insert([]types.Value{types.NewString("bad"), types.NewString("x")}); err == nil {
		t.Error("type mismatch must error")
	}
	if err := tbl.Insert([]types.Value{types.NewInt(1)}); err == nil {
		t.Error("arity mismatch must error")
	}
	// Numeric coercion: a float into an int column is accepted.
	if err := tbl.Insert([]types.Value{types.NewFloat(2.5), types.NewString("y")}); err != nil {
		t.Errorf("numeric cross-kind insert should pass: %v", err)
	}
	if tbl.Rel.Cardinality() != 3 {
		t.Errorf("cardinality = %d", tbl.Rel.Cardinality())
	}
}

func TestStatsComputationAndCaching(t *testing.T) {
	c := New()
	tbl, _ := c.Create("t", []Column{
		{Name: "k", Type: types.KindInt},
		{Name: "v", Type: types.KindString},
	})
	rows := [][]types.Value{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(2), types.NewString("a")},
		{types.NewInt(2), types.NewString("b")},
		{types.NewInt(5), types.Null()},
	}
	tbl.BulkLoad(rows)
	s := tbl.Stats()
	if s.Rows != 4 {
		t.Errorf("Rows = %d", s.Rows)
	}
	if s.Distinct["t.k"] != 3 {
		t.Errorf("Distinct[t.k] = %d, want 3", s.Distinct["t.k"])
	}
	if s.Distinct["t.v"] != 3 { // 'a', 'b', NULL
		t.Errorf("Distinct[t.v] = %d, want 3", s.Distinct["t.v"])
	}
	if s.Min["t.k"] != 1 || s.Max["t.k"] != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min["t.k"], s.Max["t.k"])
	}
	if _, ok := s.Min["t.v"]; ok {
		t.Error("string column must have no numeric min")
	}
	// Cached pointer until next write.
	if tbl.Stats() != s {
		t.Error("stats not cached")
	}
	tbl.Insert([]types.Value{types.NewInt(9), types.Null()})
	if tbl.Stats() == s {
		t.Error("stats not invalidated by insert")
	}
	if tbl.Stats().Rows != 5 {
		t.Error("recomputed stats wrong")
	}
}
