package sqlparser

import (
	"strings"
	"testing"
)

func TestParseCreateTable(t *testing.T) {
	stmt, err := ParseStatement(
		"CREATE TABLE emp (id INT, name VARCHAR(25), sal DECIMAL(15, 2), ok BOOLEAN)")
	if err != nil {
		// DECIMAL(15, 2) has two length args — our grammar takes one.
		stmt, err = ParseStatement(
			"CREATE TABLE emp (id INT, name VARCHAR(25), sal DOUBLE, ok BOOLEAN)")
		if err != nil {
			t.Fatal(err)
		}
	}
	ct, ok := stmt.(*CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "emp" || len(ct.Columns) != 4 {
		t.Fatalf("stmt = %s", ct)
	}
	if ct.Columns[0].Type != "INTEGER" || ct.Columns[1].Type != "VARCHAR" ||
		ct.Columns[3].Type != "BOOLEAN" {
		t.Errorf("types = %v", ct.Columns)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := ParseStatement(
		"INSERT INTO t VALUES (1, 'x', 2.5, TRUE, NULL), (-2, 'y', -0.5, FALSE, 3)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 5 {
		t.Fatalf("stmt = %s", ins)
	}
	if v, ok := ins.Rows[1][0].(*IntLit); !ok || v.Val != -2 {
		t.Errorf("negative literal = %v", ins.Rows[1][0])
	}
	if v, ok := ins.Rows[1][2].(*FloatLit); !ok || v.Val != -0.5 {
		t.Errorf("negative float = %v", ins.Rows[1][2])
	}
}

func TestParseDropTableAndSelectRouting(t *testing.T) {
	stmt, err := ParseStatement("DROP TABLE t;")
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := stmt.(*DropTableStmt); !ok || d.Name != "t" {
		t.Fatalf("stmt = %v", stmt)
	}
	stmt, err = ParseStatement("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*SelectStmt); !ok {
		t.Fatalf("stmt = %T", stmt)
	}
}

func TestParseStatementErrors(t *testing.T) {
	bad := []string{
		"",
		"CREATE TABLE t",
		"CREATE TABLE t (x BLOB)",
		"CREATE TABLE t (x INT",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES (a)", // not a literal
		"INSERT INTO t VALUES (1,)",
		"DROP t",
		"INSERT INTO t VALUES (-)",
	}
	for _, sql := range bad {
		if _, err := ParseStatement(sql); err == nil {
			t.Errorf("ParseStatement(%q) should fail", sql)
		}
	}
}

func TestDDLStrings(t *testing.T) {
	ct := &CreateTableStmt{Name: "t", Columns: []ColumnDef{{Name: "x", Type: "INTEGER"}}}
	if ct.String() != "CREATE TABLE t (x INTEGER)" {
		t.Errorf("create string = %s", ct)
	}
	ins := &InsertStmt{Table: "t", Rows: [][]Expr{{&IntLit{Val: 1}, &NullLit{}}}}
	if !strings.Contains(ins.String(), "(1, NULL)") {
		t.Errorf("insert string = %s", ins)
	}
	dr := &DropTableStmt{Name: "t"}
	if dr.String() != "DROP TABLE t" {
		t.Errorf("drop string = %s", dr)
	}
}

func TestParseDeleteUpdateViews(t *testing.T) {
	stmt, err := ParseStatement("DELETE FROM t WHERE x > 1")
	if err != nil {
		t.Fatal(err)
	}
	if d := stmt.(*DeleteStmt); d.Table != "t" || d.Where == nil {
		t.Errorf("delete = %s", d)
	}
	stmt, err = ParseStatement("DELETE FROM t")
	if err != nil || stmt.(*DeleteStmt).Where != nil {
		t.Errorf("unconditional delete: %v, %v", stmt, err)
	}
	stmt, err = ParseStatement("UPDATE t SET x = x + 1, y = (SELECT MAX(v) FROM u) WHERE x < 3")
	if err != nil {
		t.Fatal(err)
	}
	u := stmt.(*UpdateStmt)
	if u.Table != "t" || len(u.Sets) != 2 || u.Where == nil {
		t.Errorf("update = %s", u)
	}
	stmt, err = ParseStatement("CREATE VIEW v AS SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	if cv := stmt.(*CreateViewStmt); cv.Name != "v" || cv.Body == nil {
		t.Errorf("view = %s", cv)
	}
	stmt, err = ParseStatement("DROP VIEW v")
	if err != nil || stmt.(*DropViewStmt).Name != "v" {
		t.Errorf("drop view: %v, %v", stmt, err)
	}
	for _, bad := range []string{
		"UPDATE t", "UPDATE t SET", "UPDATE t SET x", "DELETE t",
		"CREATE VIEW v SELECT a FROM t", "DROP VIEW",
	} {
		if _, err := ParseStatement(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}
