package sqlparser

import (
	"fmt"
	"strings"
)

// Node is any AST node; String reconstructs approximate SQL for error
// messages and debugging.
type Node interface {
	String() string
}

// SelectStmt is one query block: SELECT [DISTINCT] items FROM refs
// [WHERE pred] [ORDER BY keys]. A block nested inside another block's
// WHERE clause appears as a SubqueryExpr / ExistsExpr / InExpr.
type SelectStmt struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	// Limit caps the result when HasLimit is set (the zero value means
	// no limit, so synthetic statements need no special-casing).
	Limit    int64
	HasLimit bool
}

// String implements Node.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	}
	b.WriteString(" FROM ")
	for i, f := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.HasLimit {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// SelectItem is one select-list entry.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// String implements Node.
func (s SelectItem) String() string {
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// TableRef is one FROM entry: a base table with an optional alias, or a
// derived table (a parenthesized subquery, which requires an alias).
type TableRef struct {
	Table    string
	Alias    string
	Subquery *SelectStmt
}

// Binding returns the range-variable name the reference introduces.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// String implements Node.
func (t TableRef) String() string {
	if t.Subquery != nil {
		return "(" + t.Subquery.String() + ") " + t.Alias
	}
	if t.Alias != "" {
		return t.Table + " " + t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// String implements Node.
func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// Expr is a SQL expression AST node.
type Expr interface {
	Node
	expr()
}

// Ident is a possibly-qualified column reference.
type Ident struct {
	Qualifier string // "" when unqualified
	Name      string
}

func (*Ident) expr() {}

// String implements Node.
func (i *Ident) String() string {
	if i.Qualifier != "" {
		return i.Qualifier + "." + i.Name
	}
	return i.Name
}

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

func (*IntLit) expr() {}

// String implements Node.
func (l *IntLit) String() string { return fmt.Sprintf("%d", l.Val) }

// FloatLit is a floating-point literal.
type FloatLit struct{ Val float64 }

func (*FloatLit) expr() {}

// String implements Node.
func (l *FloatLit) String() string { return fmt.Sprintf("%g", l.Val) }

// StringLit is a string literal.
type StringLit struct{ Val string }

func (*StringLit) expr() {}

// String implements Node.
func (l *StringLit) String() string { return "'" + l.Val + "'" }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Val bool }

func (*BoolLit) expr() {}

// String implements Node.
func (l *BoolLit) String() string {
	if l.Val {
		return "TRUE"
	}
	return "FALSE"
}

// NullLit is the NULL literal.
type NullLit struct{}

func (*NullLit) expr() {}

// String implements Node.
func (*NullLit) String() string { return "NULL" }

// BinaryExpr covers comparisons, arithmetic, AND and OR; Op is the SQL
// operator text ("=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/",
// "AND", "OR").
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) expr() {}

// String implements Node.
func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// NotExpr is NOT e.
type NotExpr struct{ E Expr }

func (*NotExpr) expr() {}

// String implements Node.
func (n *NotExpr) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// LikeExpr is e [NOT] LIKE pattern.
type LikeExpr struct {
	L, Pattern Expr
	Negated    bool
}

func (*LikeExpr) expr() {}

// String implements Node.
func (l *LikeExpr) String() string {
	op := "LIKE"
	if l.Negated {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s %s)", l.L, op, l.Pattern)
}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E       Expr
	Negated bool
}

func (*IsNullExpr) expr() {}

// String implements Node.
func (i *IsNullExpr) String() string {
	if i.Negated {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// BetweenExpr is e [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negated   bool
}

func (*BetweenExpr) expr() {}

// String implements Node.
func (b *BetweenExpr) String() string {
	op := "BETWEEN"
	if b.Negated {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", b.E, op, b.Lo, b.Hi)
}

// AggExpr is an aggregate function call: COUNT/SUM/AVG/MIN/MAX with
// optional DISTINCT; COUNT additionally accepts * and DISTINCT *.
type AggExpr struct {
	Func     string // upper-case function name
	Distinct bool
	Star     bool
	Arg      Expr // nil when Star
}

func (*AggExpr) expr() {}

// String implements Node.
func (a *AggExpr) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		return fmt.Sprintf("%s(DISTINCT %s)", a.Func, arg)
	}
	return fmt.Sprintf("%s(%s)", a.Func, arg)
}

// SubqueryExpr is a parenthesized query block used as a scalar value.
type SubqueryExpr struct{ Stmt *SelectStmt }

func (*SubqueryExpr) expr() {}

// String implements Node.
func (s *SubqueryExpr) String() string { return "(" + s.Stmt.String() + ")" }

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Negated bool
	Stmt    *SelectStmt
}

func (*ExistsExpr) expr() {}

// String implements Node.
func (e *ExistsExpr) String() string {
	if e.Negated {
		return "NOT EXISTS (" + e.Stmt.String() + ")"
	}
	return "EXISTS (" + e.Stmt.String() + ")"
}

// QuantCmpExpr is a quantified comparison l θ ALL|SOME|ANY (subquery).
type QuantCmpExpr struct {
	Op   string // "=", "<>", "<", "<=", ">", ">="
	All  bool   // true for ALL, false for SOME/ANY
	L    Expr
	Stmt *SelectStmt
}

func (*QuantCmpExpr) expr() {}

// String implements Node.
func (q *QuantCmpExpr) String() string {
	quant := "ANY"
	if q.All {
		quant = "ALL"
	}
	return fmt.Sprintf("(%s %s %s (%s))", q.L, q.Op, quant, q.Stmt)
}

// InExpr is l [NOT] IN (subquery).
type InExpr struct {
	L       Expr
	Negated bool
	Stmt    *SelectStmt
}

func (*InExpr) expr() {}

// String implements Node.
func (i *InExpr) String() string {
	op := "IN"
	if i.Negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", i.L, op, i.Stmt)
}
