package sqlparser

import (
	"strings"
	"testing"
)

// Q1, Q2 and Query 2d from the paper, used across the test suite.
const (
	paperQ1 = `SELECT DISTINCT * FROM R
	           WHERE A1 = (SELECT COUNT(DISTINCT *) FROM S WHERE A2 = B2)
	              OR A4 > 1500`
	paperQ2 = `SELECT DISTINCT * FROM R
	           WHERE A1 = (SELECT COUNT(*) FROM S WHERE A2 = B2 OR B4 > 1500)`
	paperQ2d = `SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr,
	                   s_address, s_phone, s_comment
	            FROM part, supplier, partsupp, nation, region
	            WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
	              AND p_size = 15 AND p_type LIKE '%BRASS'
	              AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	              AND r_name = 'EUROPE'
	              AND (ps_supplycost = (SELECT MIN(ps_supplycost)
	                                    FROM partsupp ps2, supplier s2, nation n2, region r2
	                                    WHERE s2.s_suppkey = ps2.ps_suppkey
	                                      AND p_partkey = ps2.ps_partkey
	                                      AND s2.s_nationkey = n2.n_nationkey
	                                      AND n2.n_regionkey = r2.r_regionkey
	                                      AND r2.r_name = 'EUROPE')
	                   OR ps_availqty > 2000)
	            ORDER BY s_acctbal DESC, n_name, s_name, p_partkey`
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 1.5 <> 'it''s' -- comment\n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "1.5", "<>", "it's", "FROM", "t", ""}
	if len(texts) != len(want) {
		t.Fatalf("token texts = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[3] != TokFloat ||
		kinds[4] != TokOp || kinds[5] != TokString {
		t.Errorf("token kinds = %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string must error")
	}
	if _, err := Lex("SELECT a ; b"); err == nil {
		t.Error("stray character must error")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("SELECT\n  a")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("position = %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestParseQ1(t *testing.T) {
	stmt := mustParse(t, paperQ1)
	if !stmt.Distinct || !stmt.Star {
		t.Error("Q1 must be SELECT DISTINCT *")
	}
	if len(stmt.From) != 1 || stmt.From[0].Table != "r" {
		t.Errorf("From = %v", stmt.From)
	}
	or, ok := stmt.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("Where = %s", stmt.Where)
	}
	cmp, ok := or.L.(*BinaryExpr)
	if !ok || cmp.Op != "=" {
		t.Fatalf("left disjunct = %s", or.L)
	}
	sub, ok := cmp.R.(*SubqueryExpr)
	if !ok {
		t.Fatalf("linking operand = %T", cmp.R)
	}
	aggItem, ok := sub.Stmt.Items[0].Expr.(*AggExpr)
	if !ok || aggItem.Func != "COUNT" || !aggItem.Distinct || !aggItem.Star {
		t.Fatalf("inner agg = %v", sub.Stmt.Items)
	}
}

func TestParseQ2InnerDisjunction(t *testing.T) {
	stmt := mustParse(t, paperQ2)
	cmp := stmt.Where.(*BinaryExpr)
	sub := cmp.R.(*SubqueryExpr)
	inner, ok := sub.Stmt.Where.(*BinaryExpr)
	if !ok || inner.Op != "OR" {
		t.Fatalf("inner where = %s", sub.Stmt.Where)
	}
}

func TestParseQuery2d(t *testing.T) {
	stmt := mustParse(t, paperQ2d)
	if len(stmt.Items) != 8 {
		t.Errorf("select list = %d items", len(stmt.Items))
	}
	if len(stmt.From) != 5 {
		t.Errorf("from = %d refs", len(stmt.From))
	}
	if len(stmt.OrderBy) != 4 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order by = %v", stmt.OrderBy)
	}
	// The disjunction with the nested MIN subquery must survive.
	if !strings.Contains(stmt.String(), "OR (ps_availqty > 2000)") {
		t.Errorf("round trip lost the disjunction: %s", stmt)
	}
	if !strings.Contains(stmt.String(), "MIN(") {
		t.Errorf("round trip lost the aggregate: %s", stmt)
	}
}

func TestParseAliasesAndQualifiedNames(t *testing.T) {
	stmt := mustParse(t, "SELECT x.a AS col1, y.b FROM t1 x, t2 AS y WHERE x.a = y.b")
	if stmt.From[0].Binding() != "x" || stmt.From[1].Binding() != "y" {
		t.Errorf("bindings = %v", stmt.From)
	}
	if stmt.Items[0].Alias != "col1" {
		t.Errorf("alias = %q", stmt.Items[0].Alias)
	}
	id := stmt.Items[1].Expr.(*Ident)
	if id.Qualifier != "y" || id.Name != "b" {
		t.Errorf("qualified ident = %v", id)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or := stmt.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %s", or.Op)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("AND must bind tighter: %s", stmt.Where)
	}

	stmt = mustParse(t, "SELECT * FROM t WHERE a + 2 * b = c - 1 / d")
	cmp := stmt.Where.(*BinaryExpr)
	if cmp.Op != "=" {
		t.Fatalf("cmp loosest: %s", stmt.Where)
	}
	if got := stmt.Where.String(); got != "((a + (2 * b)) = (c - (1 / d)))" {
		t.Errorf("arith precedence: %s", got)
	}
}

func TestParseNotVariants(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE NOT a = 1")
	if _, ok := stmt.Where.(*NotExpr); !ok {
		t.Errorf("NOT: %s", stmt.Where)
	}
	stmt = mustParse(t, "SELECT * FROM t WHERE a NOT LIKE 'x%'")
	if l, ok := stmt.Where.(*LikeExpr); !ok || !l.Negated {
		t.Errorf("NOT LIKE: %s", stmt.Where)
	}
	stmt = mustParse(t, "SELECT * FROM t WHERE a IS NOT NULL")
	if n, ok := stmt.Where.(*IsNullExpr); !ok || !n.Negated {
		t.Errorf("IS NOT NULL: %s", stmt.Where)
	}
	stmt = mustParse(t, "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b = 2")
	and := stmt.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("between binding: %s", stmt.Where)
	}
	if b, ok := and.L.(*BetweenExpr); !ok || b.Negated {
		t.Errorf("BETWEEN: %s", and.L)
	}
}

func TestParseQuantified(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a = b)")
	if e, ok := stmt.Where.(*ExistsExpr); !ok || e.Negated {
		t.Fatalf("EXISTS: %s", stmt.Where)
	}
	stmt = mustParse(t, "SELECT * FROM r WHERE NOT EXISTS (SELECT * FROM s)")
	n, ok := stmt.Where.(*NotExpr)
	if !ok {
		t.Fatalf("NOT EXISTS: %s", stmt.Where)
	}
	if _, ok := n.E.(*ExistsExpr); !ok {
		t.Fatalf("NOT EXISTS inner: %s", n.E)
	}
	stmt = mustParse(t, "SELECT * FROM r WHERE a IN (SELECT b FROM s) OR c NOT IN (SELECT d FROM t)")
	or := stmt.Where.(*BinaryExpr)
	if _, ok := or.L.(*InExpr); !ok {
		t.Errorf("IN: %s", or.L)
	}
	if in, ok := or.R.(*InExpr); !ok || !in.Negated {
		t.Errorf("NOT IN: %s", or.R)
	}
}

func TestParseAggregates(t *testing.T) {
	for _, sql := range []string{
		"SELECT COUNT(*) FROM t",
		"SELECT COUNT(DISTINCT *) FROM t",
		"SELECT COUNT(DISTINCT a) FROM t",
		"SELECT SUM(a + b) FROM t",
		"SELECT AVG(a), MIN(b), MAX(c) FROM t",
	} {
		mustParse(t, sql)
	}
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Error("SUM(*) must be rejected")
	}
	// Aggregate names are not reserved: usable as column names.
	stmt := mustParse(t, "SELECT count FROM t WHERE min = 3")
	if id, ok := stmt.Items[0].Expr.(*Ident); !ok || id.Name != "count" {
		t.Errorf("agg name as ident: %v", stmt.Items[0].Expr)
	}
}

func TestParseLiterals(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a = -5 AND b = 2.5 AND c = 'x' AND d = NULL AND e = TRUE")
	s := stmt.Where.String()
	for _, frag := range []string{"(0 - 5)", "2.5", "'x'", "NULL", "TRUE"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q in %s", frag, s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a =",
		"SELECT * FROM t ORDER a",
		"SELECT * FROM t WHERE a IN (1, 2)", // only subqueries after IN
		"SELECT * FROM t extra junk",
		"SELECT a FROM t WHERE (SELECT b FROM s", // unclosed subquery
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT * FROM t;")
}

func TestStringRoundTripReparses(t *testing.T) {
	for _, sql := range []string{paperQ1, paperQ2, paperQ2d} {
		stmt := mustParse(t, sql)
		again := mustParse(t, stmt.String())
		if stmt.String() != again.String() {
			t.Errorf("round trip unstable:\n%s\n%s", stmt, again)
		}
	}
}
