// Package sqlparser implements the SQL front end: a hand-written lexer
// and recursive-descent parser for the dialect the paper's queries use —
// SELECT [DISTINCT] over multiple range variables, WHERE with arbitrary
// AND/OR/NOT nesting, comparison and LIKE predicates, arithmetic, scalar
// subqueries with the five standard aggregates (plus DISTINCT variants),
// quantified subqueries (EXISTS / IN and negations), and ORDER BY.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or non-reserved word.
	TokIdent
	// TokKeyword is a reserved word (normalized to upper case).
	TokKeyword
	// TokInt is an integer literal.
	TokInt
	// TokFloat is a floating-point literal.
	TokFloat
	// TokString is a single-quoted string literal (quotes stripped).
	TokString
	// TokOp is an operator or punctuation: = <> != < <= > >= + - * / ( ) , .
	TokOp
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords are the reserved words of the dialect. Aggregate names are
// deliberately NOT reserved so they can still appear as column names;
// the parser recognizes them contextually before a parenthesis.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "LIKE": true, "IS": true,
	"NULL": true, "EXISTS": true, "IN": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "AS": true, "TRUE": true, "FALSE": true,
	"BETWEEN": true, "ALL": true, "SOME": true, "ANY": true,
	"GROUP": true, "HAVING": true, "LIMIT": true,
}

// Lex tokenizes the input or reports the first lexical error.
func Lex(input string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for k := 0; k < n; k++ {
			if input[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			adv(1)
		case c == '-' && i+1 < len(input) && input[i+1] == '-': // line comment
			for i < len(input) && input[i] != '\n' {
				adv(1)
			}
		case isIdentStart(rune(c)):
			start, l0, c0 := i, line, col
			for i < len(input) && isIdentPart(rune(input[i])) {
				adv(1)
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Line: l0, Col: c0})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: strings.ToLower(word), Line: l0, Col: c0})
			}
		case c >= '0' && c <= '9':
			start, l0, c0 := i, line, col
			kind := TokInt
			for i < len(input) && input[i] >= '0' && input[i] <= '9' {
				adv(1)
			}
			if i+1 < len(input) && input[i] == '.' && input[i+1] >= '0' && input[i+1] <= '9' {
				kind = TokFloat
				adv(1)
				for i < len(input) && input[i] >= '0' && input[i] <= '9' {
					adv(1)
				}
			}
			toks = append(toks, Token{Kind: kind, Text: input[start:i], Line: l0, Col: c0})
		case c == '\'':
			l0, c0 := line, col
			adv(1)
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						adv(2)
						continue
					}
					adv(1)
					closed = true
					break
				}
				sb.WriteByte(input[i])
				adv(1)
			}
			if !closed {
				return nil, fmt.Errorf("sql:%d:%d: unterminated string literal", l0, c0)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Line: l0, Col: c0})
		default:
			l0, c0 := line, col
			two := ""
			if i+1 < len(input) {
				two = input[i : i+2]
			}
			switch two {
			case "<>", "!=", "<=", ">=":
				op := two
				if op == "!=" {
					op = "<>"
				}
				adv(2)
				toks = append(toks, Token{Kind: TokOp, Text: op, Line: l0, Col: c0})
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.':
				adv(1)
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Line: l0, Col: c0})
			default:
				return nil, fmt.Errorf("sql:%d:%d: unexpected character %q", line, col, string(c))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
