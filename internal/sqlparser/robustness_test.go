package sqlparser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser mutated fragments of valid SQL
// and random token soup: every input must return a statement or an error,
// never panic or hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		paperQ1, paperQ2, paperQ2d,
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC",
		"SELECT * FROM (SELECT a FROM t) x WHERE x.a > ALL (SELECT b FROM s)",
		"SELECT a FROM t WHERE a NOT IN (SELECT b FROM s) AND b BETWEEN 1 AND 2",
	}
	tokens := []string{"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "(", ")",
		",", "*", "=", "<", ">", "<>", "<=", ">=", "COUNT", "DISTINCT", "t",
		"a", "1", "'x'", "IN", "EXISTS", "ALL", "ANY", "GROUP", "BY", "HAVING",
		"ORDER", "LIKE", "IS", "NULL", "BETWEEN", ".", "+", "-", "/"}
	rng := rand.New(rand.NewSource(2024))

	tryParse := func(input string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", input, r)
			}
		}()
		_, _ = Parse(input)
	}

	// Mutations: delete, duplicate, or swap random byte ranges of seeds.
	for _, seed := range seeds {
		for i := 0; i < 200; i++ {
			b := []byte(seed)
			switch rng.Intn(3) {
			case 0: // delete a slice
				if len(b) > 2 {
					s := rng.Intn(len(b) - 1)
					e := s + rng.Intn(len(b)-s)
					b = append(b[:s], b[e:]...)
				}
			case 1: // duplicate a slice
				if len(b) > 2 {
					s := rng.Intn(len(b) - 1)
					e := s + rng.Intn(len(b)-s)
					b = append(b[:e], append(append([]byte{}, b[s:e]...), b[e:]...)...)
				}
			default: // flip a byte
				if len(b) > 0 {
					b[rng.Intn(len(b))] = byte(rng.Intn(128))
				}
			}
			tryParse(string(b))
		}
	}
	// Random token soup.
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(25)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = tokens[rng.Intn(len(tokens))]
		}
		tryParse(strings.Join(parts, " "))
	}
}

// TestLexerNeverPanics runs the lexer over random bytes.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer panicked on %q: %v", b, r)
				}
			}()
			_, _ = Lex(string(b))
		}()
	}
}
