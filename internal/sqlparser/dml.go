package sqlparser

import (
	"fmt"
	"strings"
)

// CreateViewStmt is CREATE VIEW name AS SELECT …. The view body is kept
// as an AST and expanded like a derived table wherever the view is
// referenced.
type CreateViewStmt struct {
	Name string
	Body *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// String implements Node.
func (c *CreateViewStmt) String() string {
	return fmt.Sprintf("CREATE VIEW %s AS %s", c.Name, c.Body)
}

// DropViewStmt is DROP VIEW name.
type DropViewStmt struct {
	Name string
}

func (*DropViewStmt) stmt() {}

// String implements Node.
func (d *DropViewStmt) String() string { return "DROP VIEW " + d.Name }

// DeleteStmt is DELETE FROM t [WHERE pred].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// String implements Node.
func (d *DeleteStmt) String() string {
	if d.Where == nil {
		return "DELETE FROM " + d.Table
	}
	return fmt.Sprintf("DELETE FROM %s WHERE %s", d.Table, d.Where)
}

// Assignment is one SET column = expr pair.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE t SET col = expr, … [WHERE pred].
type UpdateStmt struct {
	Table string
	Sets  []Assignment
	Where Expr
}

func (*UpdateStmt) stmt() {}

// String implements Node.
func (u *UpdateStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UPDATE %s SET ", u.Table)
	for i, a := range u.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", a.Column, a.Value)
	}
	if u.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", u.Where)
	}
	return b.String()
}

func (p *parser) parseCreateViewOrTable() (Statement, error) {
	if err := p.expectWord("create"); err != nil {
		return nil, err
	}
	if p.acceptWord("view") {
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("as"); err != nil {
			// AS is a keyword token, not an identifier.
			if _, kerr := p.expect(TokKeyword, "AS"); kerr != nil {
				return nil, err
			}
		}
		body, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name.Text, Body: body}, nil
	}
	if err := p.expectWord("table"); err != nil {
		return nil, err
	}
	return p.parseCreateTableRest()
}

func (p *parser) parseDropAny() (Statement, error) {
	if err := p.expectWord("drop"); err != nil {
		return nil, err
	}
	if p.acceptWord("view") {
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		return &DropViewStmt{Name: name.Text}, nil
	}
	if err := p.expectWord("table"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name.Text}, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectWord("delete"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name.Text}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectWord("update"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("set"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name.Text}
	for {
		col, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, Assignment{Column: col.Text, Value: val})
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}
