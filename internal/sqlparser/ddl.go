package sqlparser

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	Node
	stmt()
}

func (*SelectStmt) stmt() {}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string // normalized: INTEGER, DOUBLE, VARCHAR, BOOLEAN
}

// CreateTableStmt is CREATE TABLE name (col type, …).
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// String implements Node.
func (c *CreateTableStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", c.Name)
	for i, col := range c.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", col.Name, col.Type)
	}
	b.WriteString(")")
	return b.String()
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Name string
}

func (*DropTableStmt) stmt() {}

// String implements Node.
func (d *DropTableStmt) String() string { return "DROP TABLE " + d.Name }

// InsertStmt is INSERT INTO name VALUES (…), (…). Values are literal
// expressions (numbers, strings, booleans, NULL, and negated numbers).
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// String implements Node.
func (i *InsertStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", i.Table)
	for r, row := range i.Rows {
		if r > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for c, v := range row {
			if c > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// columnTypes normalizes SQL type names.
var columnTypes = map[string]string{
	"INT": "INTEGER", "INTEGER": "INTEGER", "BIGINT": "INTEGER",
	"FLOAT": "DOUBLE", "DOUBLE": "DOUBLE", "REAL": "DOUBLE",
	"DECIMAL": "DOUBLE", "NUMERIC": "DOUBLE",
	"VARCHAR": "VARCHAR", "TEXT": "VARCHAR", "CHAR": "VARCHAR", "STRING": "VARCHAR",
	"BOOL": "BOOLEAN", "BOOLEAN": "BOOLEAN",
}

// ParseStatement parses any supported statement: SELECT, CREATE TABLE,
// DROP TABLE, or INSERT.
func ParseStatement(input string) (Statement, error) {
	input = strings.TrimSpace(input)
	input = strings.TrimSuffix(input, ";")
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out Statement
	switch {
	case p.at(TokKeyword, "SELECT"):
		out, err = p.parseSelect()
	case p.at(TokIdent, "create"):
		out, err = p.parseCreateViewOrTable()
	case p.at(TokIdent, "drop"):
		out, err = p.parseDropAny()
	case p.at(TokIdent, "insert"):
		out, err = p.parseInsert()
	case p.at(TokIdent, "delete"):
		out, err = p.parseDelete()
	case p.at(TokIdent, "update"):
		out, err = p.parseUpdate()
	default:
		return nil, p.errf("expected SELECT, CREATE, DROP, INSERT, DELETE or UPDATE, found %s", p.peek())
	}
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected %s after end of statement", p.peek())
	}
	return out, nil
}

// acceptWord consumes an identifier with the given (lower-case) text.
func (p *parser) acceptWord(word string) bool {
	if p.at(TokIdent, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectWord(word string) error {
	if p.acceptWord(word) {
		return nil
	}
	return p.errf("expected %q, found %s", strings.ToUpper(word), p.peek())
}

// parseCreateTableRest parses from the table name onward ("CREATE TABLE"
// is already consumed).
func (p *parser) parseCreateTableRest() (*CreateTableStmt, error) {
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name.Text}
	for {
		col, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		typ, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		norm, ok := columnTypes[strings.ToUpper(typ.Text)]
		if !ok {
			return nil, p.errf("unknown column type %q", typ.Text)
		}
		// Optional length such as VARCHAR(25) is accepted and ignored.
		if p.accept(TokOp, "(") {
			if _, err := p.expect(TokInt, ""); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
		}
		stmt.Columns = append(stmt.Columns, ColumnDef{Name: col.Text, Type: norm})
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectWord("insert"); err != nil {
		return nil, err
	}
	if err := p.expectWord("into"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("values"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name.Text}
	for {
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	return stmt, nil
}

// parseLiteral parses a literal value (with optional leading minus).
func (p *parser) parseLiteral() (Expr, error) {
	neg := p.accept(TokOp, "-")
	t := p.peek()
	switch {
	case t.Kind == TokInt:
		p.next()
		var v IntLit
		if _, err := fmt.Sscanf(t.Text, "%d", &v.Val); err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		if neg {
			v.Val = -v.Val
		}
		return &v, nil
	case t.Kind == TokFloat:
		p.next()
		var v FloatLit
		if _, err := fmt.Sscanf(t.Text, "%g", &v.Val); err != nil {
			return nil, p.errf("bad float %q", t.Text)
		}
		if neg {
			v.Val = -v.Val
		}
		return &v, nil
	case neg:
		return nil, p.errf("expected a number after -, found %s", t)
	case t.Kind == TokString:
		p.next()
		return &StringLit{Val: t.Text}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return &NullLit{}, nil
	case t.Kind == TokKeyword && t.Text == "TRUE":
		p.next()
		return &BoolLit{Val: true}, nil
	case t.Kind == TokKeyword && t.Text == "FALSE":
		p.next()
		return &BoolLit{Val: false}, nil
	default:
		return nil, p.errf("expected a literal, found %s", t)
	}
}
