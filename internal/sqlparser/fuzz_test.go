package sqlparser

import "testing"

// FuzzParse drives both grammar entry points — the SELECT parser and
// the DDL/DML statement parser — with arbitrary input. The contract
// under fuzzing is the robustness_test one: return a statement or an
// error, never panic and never hang. Seeds are the paper queries plus
// the hand-picked shapes TestParserNeverPanics mutates, so the fuzzer
// starts from inputs that reach deep into the grammar (nested blocks,
// quantifiers, BETWEEN, GROUP/HAVING, DDL).
//
// verify.sh runs this for a 10s smoke on every full verification;
// longer sessions: go test -fuzz=FuzzParse ./internal/sqlparser
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		paperQ1, paperQ2, paperQ2d,
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC",
		"SELECT * FROM (SELECT a FROM t) x WHERE x.a > ALL (SELECT b FROM s)",
		"SELECT a FROM t WHERE a NOT IN (SELECT b FROM s) AND b BETWEEN 1 AND 2",
		"SELECT DISTINCT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2) OR a4 > 1500",
		"SELECT a FROM t WHERE s LIKE '%BRASS' AND b IS NOT NULL",
		"CREATE TABLE t (a INT, b TEXT, c FLOAT, d BOOL)",
		"INSERT INTO t VALUES (1, 'x', 2.5, TRUE), (2, NULL, -0.5, FALSE)",
		"DELETE FROM t WHERE a = 1 OR b LIKE 'x%'",
		"UPDATE t SET a = a + 1 WHERE b IS NULL",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		if stmt, err := Parse(sql); err == nil && stmt == nil {
			t.Errorf("Parse(%q): nil statement with nil error", sql)
		}
		if stmt, err := ParseStatement(sql); err == nil && stmt == nil {
			t.Errorf("ParseStatement(%q): nil statement with nil error", sql)
		}
	})
}
