package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// aggFuncs are the function names recognized contextually (they are not
// reserved words).
var aggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// Parse parses a single SELECT statement (an optional trailing semicolon
// is ignored).
func Parse(input string) (*SelectStmt, error) {
	input = strings.TrimSpace(input)
	input = strings.TrimSuffix(input, ";")
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token   { return p.toks[p.pos] }
func (p *parser) next() Token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(m int) { p.pos = m }

// at reports whether the current token matches kind (and text, unless
// empty).
func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token or errors.
func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errf("expected %q, found %s", want, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("sql:%d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	stmt.Distinct = p.accept(TokKeyword, "DISTINCT")

	// Select list.
	if p.accept(TokOp, "*") {
		stmt.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(TokKeyword, "AS") {
				t, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = t.Text
			} else if p.at(TokIdent, "") {
				item.Alias = p.next().Text
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		var ref TableRef
		if p.at(TokOp, "(") {
			sub, err := p.parseParenSubquery()
			if err != nil {
				return nil, err
			}
			ref.Subquery = sub
			p.accept(TokKeyword, "AS")
			a, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, p.errf("a derived table requires an alias")
			}
			ref.Alias = a.Text
		} else {
			t, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			ref.Table = t.Text
			if p.accept(TokKeyword, "AS") {
				a, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				ref.Alias = a.Text
			} else if p.at(TokIdent, "") {
				ref.Alias = p.next().Text
			}
		}
		stmt.From = append(stmt.From, ref)
		if !p.accept(TokOp, ",") {
			break
		}
	}

	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}

	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if p.accept(TokKeyword, "HAVING") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Having = e
		}
	}

	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if p.accept(TokKeyword, "LIMIT") {
		n, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(n.Text, 10, 64)
		if err != nil || v < 0 {
			return nil, p.errf("bad LIMIT %q", n.Text)
		}
		stmt.Limit = v
		stmt.HasLimit = true
	}
	return stmt, nil
}

// parseExpr parses with precedence OR < AND < NOT < predicate <
// additive < multiplicative < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	// EXISTS (subquery) has no left operand.
	if p.accept(TokKeyword, "EXISTS") {
		stmt, err := p.parseParenSubquery()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Stmt: stmt}, nil
	}
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Comparison operators, including quantified comparisons
	// (θ ALL / θ SOME / θ ANY).
	for _, op := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		if p.at(TokOp, op) {
			p.next()
			for _, q := range []string{"ALL", "SOME", "ANY"} {
				if p.accept(TokKeyword, q) {
					stmt, err := p.parseParenSubquery()
					if err != nil {
						return nil, err
					}
					return &QuantCmpExpr{Op: op, All: q == "ALL", L: l, Stmt: stmt}, nil
				}
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	negated := false
	mark := p.save()
	if p.accept(TokKeyword, "NOT") {
		negated = true
	}
	switch {
	case p.accept(TokKeyword, "LIKE"):
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{L: l, Pattern: r, Negated: negated}, nil
	case p.accept(TokKeyword, "IN"):
		stmt, err := p.parseParenSubquery()
		if err != nil {
			return nil, err
		}
		return &InExpr{L: l, Negated: negated, Stmt: stmt}, nil
	case p.accept(TokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Negated: negated}, nil
	case p.accept(TokKeyword, "IS"):
		neg := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		if negated {
			return nil, p.errf("NOT before IS NULL is not supported; use IS NOT NULL")
		}
		return &IsNullExpr{E: l, Negated: neg}, nil
	}
	if negated {
		// The NOT belonged to an enclosing context (e.g. "x AND NOT y"
		// already handled by parseNot); restore and let the caller see it.
		p.restore(mark)
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokOp, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.accept(TokOp, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokOp, "*"):
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.accept(TokOp, "/"):
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.Text)
		}
		return &IntLit{Val: v}, nil
	case t.Kind == TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q", t.Text)
		}
		return &FloatLit{Val: v}, nil
	case t.Kind == TokString:
		p.next()
		return &StringLit{Val: t.Text}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return &NullLit{}, nil
	case t.Kind == TokKeyword && t.Text == "TRUE":
		p.next()
		return &BoolLit{Val: true}, nil
	case t.Kind == TokKeyword && t.Text == "FALSE":
		p.next()
		return &BoolLit{Val: false}, nil
	case t.Kind == TokOp && t.Text == "-":
		p.next()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "-", L: &IntLit{Val: 0}, R: e}, nil
	case t.Kind == TokOp && t.Text == "(":
		p.next()
		if p.at(TokKeyword, "SELECT") {
			stmt, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Stmt: stmt}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		return p.parseIdentOrCall()
	default:
		return nil, p.errf("unexpected %s", t)
	}
}

func (p *parser) parseIdentOrCall() (Expr, error) {
	t := p.next() // the identifier
	upper := strings.ToUpper(t.Text)
	if aggFuncs[upper] && p.at(TokOp, "(") {
		p.next()
		a := &AggExpr{Func: upper}
		a.Distinct = p.accept(TokKeyword, "DISTINCT")
		if p.accept(TokOp, "*") {
			a.Star = true
			if upper != "COUNT" {
				return nil, p.errf("%s(*) is not valid; only COUNT accepts *", upper)
			}
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			a.Arg = arg
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return a, nil
	}
	if p.accept(TokOp, ".") {
		col, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		return &Ident{Qualifier: t.Text, Name: col.Text}, nil
	}
	return &Ident{Name: t.Text}, nil
}

func (p *parser) parseParenSubquery() (*SelectStmt, error) {
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}
