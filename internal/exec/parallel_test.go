package exec

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/types"
)

// Tests for the morsel-parallel execution paths: worker counts must not
// change results (byte-identical output, including group discovery
// order), and the abort sentinels must propagate out of parallel
// regions as the sentinel error, never as a partial result. The
// fixtures exceed the 2×morselSize parallel threshold so Workers > 1
// actually fans out; `go test -race` exercises the shared memo and the
// per-worker stats shards.

// bigCatalog builds l(k, v) and r(k, w) with enough rows to cross the
// parallel threshold. k repeats every 50 rows so joins and groupings
// produce many multi-tuple groups.
func bigCatalog(t testing.TB, rows int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, name := range []string{"l", "r"} {
		col := "v"
		if name == "r" {
			col = "w"
		}
		tbl, err := cat.Create(name, []catalog.Column{
			{Name: "k", Type: types.KindInt},
			{Name: col, Type: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := tbl.Insert([]types.Value{
				types.NewInt(int64(i % 50)), types.NewInt(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cat
}

func bigScan(t testing.TB, cat *catalog.Catalog, name string) *algebra.Scan {
	t.Helper()
	tbl, err := cat.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return algebra.NewScan(name, name, tbl.Rel.Schema)
}

// parallelPlan joins the two tables on k, keeps a value-dependent slice
// of the pairs, and groups the survivors — scan, hash join, filter and
// grouping all run their morsel-parallel paths.
func parallelPlan(t testing.TB, cat *catalog.Catalog) algebra.Op {
	join := algebra.NewJoin(bigScan(t, cat, "l"), bigScan(t, cat, "r"),
		algebra.Cmp(types.EQ, algebra.Col("l.k"), algebra.Col("r.k")))
	filtered := algebra.NewSelect(join,
		algebra.Cmp(types.LT, algebra.Col("l.v"), algebra.Col("r.w")))
	return algebra.NewGroupBy(filtered, []string{"l.k"}, []algebra.AggItem{
		{Out: "cnt", Spec: agg.Spec{Kind: agg.Count, Star: true}},
		{Out: "total", Spec: agg.Spec{Kind: agg.Sum}, Arg: algebra.Col("r.w")},
	}, false)
}

func TestParallelResultsIdentical(t *testing.T) {
	cat := bigCatalog(t, 3000)
	plan := parallelPlan(t, cat)
	base, err := New(cat, Options{Cache: CacheAll, Workers: 1}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Tuples) == 0 {
		t.Fatal("fixture produced no rows")
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := New(cat, Options{Cache: CacheAll, Workers: workers}).Run(plan)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base.Tuples, got.Tuples) {
			t.Fatalf("workers=%d changed the output (%d vs %d rows, or row order)",
				workers, len(base.Tuples), len(got.Tuples))
		}
	}
}

func TestParallelStatsWorkerCountIndependent(t *testing.T) {
	cat := bigCatalog(t, 3000)
	plan := parallelPlan(t, cat)
	ex1 := New(cat, Options{Cache: CacheAll, Workers: 1})
	if _, err := ex1.Run(plan); err != nil {
		t.Fatal(err)
	}
	ex4 := New(cat, Options{Cache: CacheAll, Workers: 4})
	if _, err := ex4.Run(plan); err != nil {
		t.Fatal(err)
	}
	s1, s4 := ex1.Stats(), ex4.Stats()
	// Elapsed is the lone wall-clock field; everything else must match.
	s1.Elapsed, s4.Elapsed = 0, 0
	if s1 != s4 {
		t.Errorf("stats depend on worker count:\n1 worker: %+v\n4 workers: %+v", s1, s4)
	}
}

func TestParallelTimeoutPropagates(t *testing.T) {
	cat := bigCatalog(t, 3000)
	// An unindexable inequality forces the nested-loop join: 9M pairs,
	// far more than a nanosecond budget allows.
	plan := algebra.NewJoin(bigScan(t, cat, "l"), bigScan(t, cat, "r"),
		algebra.Cmp(types.LT, algebra.Col("l.v"), algebra.Col("r.w")))
	rel, err := New(cat, Options{Workers: 4, Timeout: 1}).Run(plan)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if rel != nil {
		t.Error("timed-out query must not return a partial result")
	}
}

func TestParallelMemoryLimitPropagates(t *testing.T) {
	cat := bigCatalog(t, 3000)
	plan := parallelPlan(t, cat)
	rel, err := New(cat, Options{Cache: CacheAll, Workers: 4, MaxTuples: 100}).Run(plan)
	if !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("err = %v, want ErrMemoryLimit", err)
	}
	if rel != nil {
		t.Error("over-budget query must not return a partial result")
	}
}

func TestParallelAbortedExecutorRecovers(t *testing.T) {
	cat := bigCatalog(t, 3000)
	tiny, err := cat.Create("tiny", []catalog.Column{{Name: "x", Type: types.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := tiny.Insert([]types.Value{types.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ex := New(cat, Options{Cache: CacheAll, Workers: 4, MaxTuples: 100})
	if _, err := ex.Run(parallelPlan(t, cat)); !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("err = %v, want ErrMemoryLimit", err)
	}
	// The abort latch must reset between runs: a query that fits the
	// budget succeeds on the same executor afterwards.
	small := algebra.NewLimit(bigScan(t, cat, "tiny"), 5)
	rel, err := ex.Run(small)
	if err != nil {
		t.Fatalf("executor did not recover from abort: %v", err)
	}
	if len(rel.Tuples) != 5 {
		t.Errorf("got %d rows, want 5", len(rel.Tuples))
	}
}

// TestParallelSharedDAG evaluates a bypass DAG whose σ± node feeds both
// streams: under -race this exercises the mutex-protected memo that
// lets concurrent workers converge on one stored instance.
func TestParallelSharedDAG(t *testing.T) {
	cat := bigCatalog(t, 3000)
	shared := algebra.NewBypassSelect(bigScan(t, cat, "l"),
		algebra.Cmp(types.LT, algebra.Col("l.v"), algebra.ConstInt(1500)))
	plan := algebra.NewUnionDisjoint(algebra.Pos(shared), algebra.Neg(shared))
	base, err := New(cat, Options{Cache: CacheAll, Workers: 1}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(cat, Options{Cache: CacheAll, Workers: 8}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Tuples, got.Tuples) {
		t.Fatal("parallel bypass DAG evaluation changed the output")
	}
	if len(got.Tuples) != 3000 {
		t.Errorf("σ± streams must partition the input: got %d rows, want 3000", len(got.Tuples))
	}
}

// TestParallelGroupOrderDeterministic pins the merged group discovery
// order: group partials are merged in morsel order, so the output order
// equals the sequential first-appearance order at any worker count.
func TestParallelGroupOrderDeterministic(t *testing.T) {
	cat := bigCatalog(t, 5000)
	plan := algebra.NewGroupBy(bigScan(t, cat, "l"), []string{"l.k"},
		[]algebra.AggItem{{Out: "cnt", Spec: agg.Spec{Kind: agg.Count, Star: true}}}, false)
	base, err := New(cat, Options{Workers: 1}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	// k cycles 0..49, so first-appearance order is ascending.
	for i, row := range base.Tuples {
		want := fmt.Sprintf("%d", i)
		if got := row[0].String(); got != want {
			t.Fatalf("sequential group order: row %d key %s, want %s", i, got, want)
		}
	}
	for _, workers := range []int{2, 8} {
		got, err := New(cat, Options{Workers: workers}).Run(plan)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base.Tuples, got.Tuples) {
			t.Fatalf("workers=%d reordered the groups", workers)
		}
	}
}
