package exec

import (
	"sync"
	"sync/atomic"

	"disqo/internal/faultinject"
)

// Morsel-driven parallelism (Leis et al., adapted to materialized
// relations): hot operators split their input into fixed-size morsels
// that a pool of workers claims from a shared counter. Chunk boundaries
// depend only on the input size and the configured morsel size — never
// on the worker count — so any chunk-order merge (grouping, distinct)
// produces bit-identical results for Workers=1 and Workers=N, keeping
// golden tests byte-stable.
const (
	// DefaultMorselSize is the chunk length workers claim when
	// Options.MorselSize is unset.
	DefaultMorselSize = 1024
	// MinMorselSize bounds Options.MorselSize from below. Cancellation
	// (context, timeout, abort latch) is polled at every morsel boundary
	// and every few thousand inner-loop iterations, so smaller morsels
	// buy nothing in responsiveness and only add scheduling overhead.
	MinMorselSize = 64
	// MaxMorselSize bounds Options.MorselSize from above: a morsel is
	// the unit of work between cancellation polls on the vectorized
	// path (kernels poll per morsel, not per tuple), so this caps
	// cancellation latency at 64Ki rows of single-predicate work.
	MaxMorselSize = 65536
)

// fanout returns how many workers an input of n tuples should use.
// Worker clones never fan out again — nested pools would oversubscribe
// and make inner-operator chunking depend on outer scheduling. Below
// two morsels the scheduling overhead dominates, so the input stays
// inline.
func (ex *Executor) fanout(n int) int {
	if ex.isWorker || n < 2*ex.msize {
		return 1
	}
	w := ex.opt.Workers
	if nm := (n + ex.msize - 1) / ex.msize; w > nm {
		w = nm
	}
	return w
}

// workerClone returns an executor sharing this one's planner, memo, and
// abort latch but with private Stats and NodeMetrics shards (merged by
// parMorsels) and tick counter.
func (ex *Executor) workerClone() *Executor {
	w := *ex
	w.stats = Stats{}
	w.ticks = 0
	w.isWorker = true
	if ex.nm != nil {
		w.nm = make([]NodeMetrics, len(ex.nm))
	}
	return &w
}

// parMorsels runs f over [lo,hi) morsels of an n-tuple input and returns
// the per-morsel results in morsel order. With one worker (small input,
// Workers=1, or already inside a worker) it runs f inline on ex — as a
// single [0,n) call, or chunked at morsel boundaries when forceChunks is
// set (operators whose merge must see the same chunking regardless of
// worker count, e.g. float-summing aggregates). With several workers it
// spawns clones that claim morsels from a shared counter; the first
// error (by morsel index) wins, and the abort latch makes the remaining
// workers drain quickly.
func parMorsels[T any](ex *Executor, n int, forceChunks bool, f func(w *Executor, lo, hi int) (T, error)) ([]T, error) {
	if ex.nm != nil && ex.cur != nil && n > 0 {
		// Morsel accounting is derived from the input size alone, never
		// from the actual chunking, so the counter is identical for
		// Workers=1 and Workers=N.
		ex.metric(ex.cur).Morsels += int64((n + ex.msize - 1) / ex.msize)
	}
	if ex.fanout(n) <= 1 {
		if !forceChunks || n <= ex.msize {
			res, err := runMorsel(ex, 0, n, f)
			if err != nil {
				return nil, err
			}
			return []T{res}, nil
		}
		results := make([]T, 0, (n+ex.msize-1)/ex.msize)
		for lo := 0; lo < n; lo += ex.msize {
			hi := lo + ex.msize
			if hi > n {
				hi = n
			}
			res, err := runMorsel(ex, lo, hi, f)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
		return results, nil
	}
	workers := ex.fanout(n)
	nm := (n + ex.msize - 1) / ex.msize
	results := make([]T, nm)
	errs := make([]error, nm)
	var next atomic.Int64
	clones := make([]*Executor, workers)
	var wg sync.WaitGroup
	for i := range clones {
		clones[i] = ex.workerClone()
		wg.Add(1)
		go func(w *Executor) {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= nm {
					return
				}
				if ex.sh.aborted.Load() {
					errs[m] = ex.sh.abortError()
					continue
				}
				lo := m * ex.msize
				hi := lo + ex.msize
				if hi > n {
					hi = n
				}
				res, err := runMorsel(w, lo, hi, f)
				if err != nil {
					errs[m] = err
					ex.fail(err)
					continue
				}
				results[m] = res
			}
		}(clones[i])
	}
	wg.Wait()
	for _, w := range clones {
		ex.stats.merge(&w.stats)
		if ex.nm != nil {
			ex.mergeNodeMetrics(w.nm)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runMorsel runs f over one morsel with the per-morsel robustness
// wrapping: the abort latch / context / deadline are polled at the
// boundary (so cancellation lands within one morsel's worth of work),
// the fault injector's morsel site fires here, and a panic out of f is
// recovered into an error attributed to the operator that fanned out —
// a worker goroutine can therefore never crash the process, and the
// pool always drains through wg.Done.
func runMorsel[T any](w *Executor, lo, hi int, f func(w *Executor, lo, hi int) (T, error)) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			res, err = zero, w.recoverError(r)
		}
	}()
	if terr := w.slowTick(); terr != nil {
		return res, terr
	}
	if ferr := w.inject(faultinject.SiteMorsel, w.cur); ferr != nil {
		return res, ferr
	}
	w.traceMorsel(lo, hi)
	return f(w, lo, hi)
}
