package exec

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// testCatalog builds R(a1..a4) and S(b1..b4) with small deterministic
// contents used across the operator tests.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	cols := func(prefix string) []catalog.Column {
		return []catalog.Column{
			{Name: prefix + "1", Type: types.KindInt},
			{Name: prefix + "2", Type: types.KindInt},
			{Name: prefix + "3", Type: types.KindInt},
			{Name: prefix + "4", Type: types.KindInt},
		}
	}
	r, err := cat.Create("r", cols("a"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Create("s", cols("b"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]int64{
		{1, 10, 100, 1000},
		{2, 20, 200, 2000},
		{3, 10, 300, 1500},
		{4, 30, 400, 2500},
	} {
		if err := r.Insert(intRow(row)); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range [][]int64{
		{1, 10, 111, 1400},
		{2, 10, 222, 1600},
		{3, 20, 333, 1700},
		{4, 40, 444, 100},
	} {
		if err := s.Insert(intRow(row)); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func intRow(vs []int64) []types.Value {
	row := make([]types.Value, len(vs))
	for i, v := range vs {
		row[i] = types.NewInt(v)
	}
	return row
}

func scanOf(t *testing.T, cat *catalog.Catalog, table string) *algebra.Scan {
	t.Helper()
	tbl, err := cat.Lookup(table)
	if err != nil {
		t.Fatal(err)
	}
	return algebra.NewScan(table, table, tbl.Rel.Schema)
}

func runPlan(t *testing.T, cat *catalog.Catalog, plan algebra.Op) *storage.Relation {
	t.Helper()
	ex := New(cat, Options{Cache: CacheAll})
	rel, err := ex.Run(plan)
	if err != nil {
		t.Fatalf("Run(%s): %v", plan.Label(), err)
	}
	return rel
}

func wantRows(t *testing.T, rel *storage.Relation, want ...string) {
	t.Helper()
	got := rel.Canonical()
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestScanSharesTuples(t *testing.T) {
	cat := testCatalog(t)
	rel := runPlan(t, cat, scanOf(t, cat, "r"))
	if rel.Cardinality() != 4 {
		t.Fatalf("scan returned %d rows", rel.Cardinality())
	}
	if rel.Schema.Index("r.a1") != 0 {
		t.Error("scan schema must be qualified")
	}
}

func TestSelect(t *testing.T) {
	cat := testCatalog(t)
	plan := algebra.NewSelect(scanOf(t, cat, "r"),
		algebra.Cmp(types.GT, algebra.Col("r.a4"), algebra.ConstInt(1500)))
	rel := runPlan(t, cat, plan)
	wantRows(t, rel, "(2, 20, 200, 2000)", "(4, 30, 400, 2500)")
}

func TestBypassSelectPartition(t *testing.T) {
	cat := testCatalog(t)
	bp := algebra.NewBypassSelect(scanOf(t, cat, "r"),
		algebra.Cmp(types.GT, algebra.Col("r.a4"), algebra.ConstInt(1500)))
	pos := runPlan(t, cat, algebra.Pos(bp))
	neg := runPlan(t, cat, algebra.Neg(bp))
	if pos.Cardinality()+neg.Cardinality() != 4 {
		t.Fatalf("bypass must partition: %d + %d", pos.Cardinality(), neg.Cardinality())
	}
	wantRows(t, pos, "(2, 20, 200, 2000)", "(4, 30, 400, 2500)")
	wantRows(t, neg, "(1, 10, 100, 1000)", "(3, 10, 300, 1500)")
}

func TestBypassSelectRoutesUnknownNegative(t *testing.T) {
	cat := catalog.New()
	tbl, _ := cat.Create("t", []catalog.Column{{Name: "x", Type: types.KindInt}})
	tbl.Insert([]types.Value{types.NewInt(1)})
	tbl.Insert([]types.Value{types.Null()})
	bp := algebra.NewBypassSelect(
		algebra.NewScan("t", "t", tbl.Rel.Schema),
		algebra.Cmp(types.GT, algebra.Col("t.x"), algebra.ConstInt(0)))
	pos := runPlan(t, cat, algebra.Pos(bp))
	neg := runPlan(t, cat, algebra.Neg(bp))
	wantRows(t, pos, "(1)")
	wantRows(t, neg, "(NULL)") // UNKNOWN goes negative
}

func TestProjectRenameMapNumber(t *testing.T) {
	cat := testCatalog(t)
	base := scanOf(t, cat, "r")
	proj := algebra.NewProject(base, []string{"r.a2"})
	rel := runPlan(t, cat, proj)
	if rel.Schema.Len() != 1 || rel.Cardinality() != 4 {
		t.Fatalf("project: %s", rel)
	}

	ren, err := algebra.NewRename(base, [][2]string{{"x1", "r.a1"}})
	if err != nil {
		t.Fatal(err)
	}
	rrel := runPlan(t, cat, ren)
	if rrel.Schema.Index("x1") != 0 || rrel.Schema.Has("r.a1") {
		t.Error("rename schema wrong")
	}

	m := algebra.NewMap(base, "sum",
		algebra.Arith(types.Add, algebra.Col("r.a1"), algebra.Col("r.a2")))
	mrel := runPlan(t, cat, m)
	if got := mrel.Tuples[0][4]; !types.Identical(got, types.NewInt(11)) {
		t.Errorf("map value = %v", got)
	}

	n := algebra.NewNumber(base, "t")
	nrel := runPlan(t, cat, n)
	for i, row := range nrel.Tuples {
		if !types.Identical(row[4], types.NewInt(int64(i+1))) {
			t.Errorf("ν numbering wrong at %d: %v", i, row[4])
		}
	}
}

func TestMapDoesNotMutateBaseTable(t *testing.T) {
	cat := testCatalog(t)
	base := scanOf(t, cat, "r")
	m := algebra.NewMap(base, "z", algebra.ConstInt(0))
	runPlan(t, cat, m)
	tbl, _ := cat.Lookup("r")
	if len(tbl.Rel.Tuples[0]) != 4 {
		t.Fatal("map extended base-table rows in place")
	}
}

func TestCrossProduct(t *testing.T) {
	cat := testCatalog(t)
	plan := algebra.NewCross(scanOf(t, cat, "r"), scanOf(t, cat, "s"))
	rel := runPlan(t, cat, plan)
	if rel.Cardinality() != 16 {
		t.Fatalf("cross = %d rows", rel.Cardinality())
	}
	if rel.Schema.Len() != 8 {
		t.Fatalf("cross schema = %s", rel.Schema)
	}
}

func TestHashJoinAndNLJoinAgree(t *testing.T) {
	cat := testCatalog(t)
	// Equality predicate → hash join.
	eq := algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2"))
	hashPlan := algebra.NewJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), eq)
	exHash := New(cat, Options{Cache: CacheAll})
	hrel, err := exHash.Run(hashPlan)
	if err != nil {
		t.Fatal(err)
	}
	if exHash.Stats().HashJoins != 1 || exHash.Stats().NLJoins != 0 {
		t.Errorf("expected hash join, stats: %+v", exHash.Stats())
	}
	// Inequality → nested loop; compare results through a filter that
	// makes the predicates equivalent.
	nlPred := algebra.And(
		algebra.Cmp(types.LE, algebra.Col("r.a2"), algebra.Col("s.b2")),
		algebra.Cmp(types.GE, algebra.Col("r.a2"), algebra.Col("s.b2")))
	nlPlan := algebra.NewJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), nlPred)
	exNL := New(cat, Options{Cache: CacheAll})
	nrel, err := exNL.Run(nlPlan)
	if err != nil {
		t.Fatal(err)
	}
	if exNL.Stats().NLJoins != 1 {
		t.Errorf("expected NL join, stats: %+v", exNL.Stats())
	}
	h, n := hrel.Canonical(), nrel.Canonical()
	if len(h) != len(n) {
		t.Fatalf("hash %d rows vs NL %d rows", len(h), len(n))
	}
	for i := range h {
		if h[i] != n[i] {
			t.Fatalf("row %d: hash %s vs NL %s", i, h[i], n[i])
		}
	}
	// r.a2 ∈ {10,20,10,30}; s.b2 ∈ {10,10,20,40}: matches 2+2+1 = 5.
	if len(h) != 5 {
		t.Fatalf("join produced %d rows, want 5", len(h))
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	cat := catalog.New()
	a, _ := cat.Create("a", []catalog.Column{{Name: "x", Type: types.KindInt}})
	b, _ := cat.Create("b", []catalog.Column{{Name: "y", Type: types.KindInt}})
	a.Insert([]types.Value{types.Null()})
	a.Insert([]types.Value{types.NewInt(1)})
	b.Insert([]types.Value{types.Null()})
	b.Insert([]types.Value{types.NewInt(1)})
	plan := algebra.NewJoin(
		algebra.NewScan("a", "a", a.Rel.Schema),
		algebra.NewScan("b", "b", b.Rel.Schema),
		algebra.Cmp(types.EQ, algebra.Col("a.x"), algebra.Col("b.y")))
	rel := runPlan(t, cat, plan)
	wantRows(t, rel, "(1, 1)")
}

func TestJoinResidualPredicate(t *testing.T) {
	cat := testCatalog(t)
	pred := algebra.And(
		algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")),
		algebra.Cmp(types.GT, algebra.Col("s.b4"), algebra.ConstInt(1500)))
	plan := algebra.NewJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"), pred)
	rel := runPlan(t, cat, plan)
	// matches on b2 with b4>1500: s rows (2,10,222,1600) and (3,20,333,1700).
	if rel.Cardinality() != 3 { // r1,r3 match s2; r2 matches s3
		t.Fatalf("residual join rows = %d:\n%s", rel.Cardinality(), rel)
	}
}

func TestLeftOuterJoinDefaults(t *testing.T) {
	cat := testCatalog(t)
	grouped := algebra.NewGroupBy(scanOf(t, cat, "s"), []string{"s.b2"},
		[]algebra.AggItem{{Out: "g", Spec: agg.Spec{Kind: agg.Count, Star: true}}}, false)
	oj := algebra.NewLeftOuterJoin(scanOf(t, cat, "r"), grouped,
		algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")),
		[]algebra.Default{{Attr: "g", Val: types.NewInt(0)}})
	rel := runPlan(t, cat, oj)
	if rel.Cardinality() != 4 {
		t.Fatalf("outerjoin must preserve R cardinality, got %d", rel.Cardinality())
	}
	// r.a2=30 has no S partner: g must default to 0, b2 to NULL.
	found := false
	gi := rel.Schema.Index("g")
	b2i := rel.Schema.Index("s.b2")
	for _, row := range rel.Tuples {
		if types.Identical(row[1], types.NewInt(30)) {
			found = true
			if !types.Identical(row[gi], types.NewInt(0)) {
				t.Errorf("count default = %v, want 0 (count bug!)", row[gi])
			}
			if !row[b2i].IsNull() {
				t.Errorf("unmatched b2 = %v, want NULL", row[b2i])
			}
		}
	}
	if !found {
		t.Fatal("r.a2=30 row missing from outerjoin")
	}
}

func TestGroupByHash(t *testing.T) {
	cat := testCatalog(t)
	plan := algebra.NewGroupBy(scanOf(t, cat, "s"), []string{"s.b2"},
		[]algebra.AggItem{
			{Out: "cnt", Spec: agg.Spec{Kind: agg.Count, Star: true}},
			{Out: "mx", Spec: agg.Spec{Kind: agg.Max}, Arg: algebra.Col("s.b4")},
		}, false)
	rel := runPlan(t, cat, plan)
	wantRows(t, rel, "(10, 2, 1600)", "(20, 1, 1700)", "(40, 1, 100)")
}

func TestGroupByGlobalOnEmptyInput(t *testing.T) {
	cat := testCatalog(t)
	empty := algebra.NewSelect(scanOf(t, cat, "s"),
		algebra.Cmp(types.GT, algebra.Col("s.b1"), algebra.ConstInt(999)))
	plan := algebra.NewGroupBy(empty, nil, []algebra.AggItem{
		{Out: "cnt", Spec: agg.Spec{Kind: agg.Count, Star: true}},
		{Out: "mn", Spec: agg.Spec{Kind: agg.Min}, Arg: algebra.Col("s.b4")},
	}, true)
	rel := runPlan(t, cat, plan)
	wantRows(t, rel, "(0, NULL)")
}

func TestGroupByNullKeysGroupTogether(t *testing.T) {
	cat := catalog.New()
	tbl, _ := cat.Create("t", []catalog.Column{
		{Name: "k", Type: types.KindInt}, {Name: "v", Type: types.KindInt}})
	tbl.Insert([]types.Value{types.Null(), types.NewInt(1)})
	tbl.Insert([]types.Value{types.Null(), types.NewInt(2)})
	tbl.Insert([]types.Value{types.NewInt(1), types.NewInt(3)})
	plan := algebra.NewGroupBy(algebra.NewScan("t", "t", tbl.Rel.Schema),
		[]string{"t.k"},
		[]algebra.AggItem{{Out: "s", Spec: agg.Spec{Kind: agg.Sum}, Arg: algebra.Col("t.v")}}, false)
	rel := runPlan(t, cat, plan)
	wantRows(t, rel, "(1, 3)", "(NULL, 3)")
}

func TestBinaryGroupHashAndNLAgree(t *testing.T) {
	cat := testCatalog(t)
	aggs := []algebra.AggItem{{Out: "g", Spec: agg.Spec{Kind: agg.Count, Star: true}}}
	// Hash path: equality.
	hashPlan := algebra.NewBinaryGroup(scanOf(t, cat, "r"), scanOf(t, cat, "s"),
		algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")), aggs)
	hrel := runPlan(t, cat, hashPlan)
	// NL path: same predicate phrased non-hashably.
	nlPlan := algebra.NewBinaryGroup(scanOf(t, cat, "r"), scanOf(t, cat, "s"),
		algebra.And(
			algebra.Cmp(types.LE, algebra.Col("r.a2"), algebra.Col("s.b2")),
			algebra.Cmp(types.GE, algebra.Col("r.a2"), algebra.Col("s.b2"))), aggs)
	nrel := runPlan(t, cat, nlPlan)
	h, n := hrel.Canonical(), nrel.Canonical()
	for i := range h {
		if h[i] != n[i] {
			t.Fatalf("binary group mismatch row %d: %s vs %s", i, h[i], n[i])
		}
	}
	// Every R tuple present with its count; a2=30 gets f(∅)=0.
	gi := hrel.Schema.Index("g")
	counts := map[int64]int64{}
	for _, row := range hrel.Tuples {
		counts[row[1].Int()] = row[gi].Int()
	}
	if counts[10] != 2 || counts[20] != 1 || counts[30] != 0 {
		t.Errorf("binary group counts = %v", counts)
	}
	if hrel.Cardinality() != 4 {
		t.Errorf("binary group must preserve L cardinality")
	}
}

func TestUnionDisjointAndDistinctAndSort(t *testing.T) {
	cat := testCatalog(t)
	bp := algebra.NewBypassSelect(scanOf(t, cat, "r"),
		algebra.Cmp(types.GT, algebra.Col("r.a4"), algebra.ConstInt(1500)))
	u := algebra.NewUnionDisjoint(algebra.Pos(bp), algebra.Neg(bp))
	rel := runPlan(t, cat, u)
	if rel.Cardinality() != 4 {
		t.Fatalf("union of bypass streams must restore input: %d", rel.Cardinality())
	}

	d := algebra.NewDistinct(algebra.NewProject(scanOf(t, cat, "r"), []string{"r.a2"}))
	drel := runPlan(t, cat, d)
	wantRows(t, drel, "(10)", "(20)", "(30)")

	srt := algebra.NewSort(scanOf(t, cat, "r"), []algebra.SortKey{{Attr: "r.a4", Desc: true}})
	srel := runPlan(t, cat, srt)
	if !types.Identical(srel.Tuples[0][3], types.NewInt(2500)) {
		t.Errorf("sort desc first = %v", srel.Tuples[0][3])
	}
}

func TestCorrelatedScalarSubqueryCanonical(t *testing.T) {
	cat := testCatalog(t)
	// SELECT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)
	inner := algebra.NewSelect(scanOf(t, cat, "s"),
		algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")))
	sub := algebra.Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil, inner)
	// Counts per a2 value: 10→2, 20→1, 30→0. No a1 equals its count.
	eqPlan := algebra.NewSelect(scanOf(t, cat, "r"),
		algebra.Cmp(types.EQ, algebra.Col("r.a1"), sub))
	wantRows(t, runPlan(t, cat, eqPlan))
	// a1 > count: r2 (2>1), r3 (3>2), r4 (4>0) qualify; r1 (1>2) does not.
	gtPlan := algebra.NewSelect(scanOf(t, cat, "r"),
		algebra.Cmp(types.GT, algebra.Col("r.a1"), sub))
	rel := runPlan(t, cat, gtPlan)
	wantRows(t, rel, "(2, 20, 200, 2000)", "(3, 10, 300, 1500)", "(4, 30, 400, 2500)")
}

func TestTimeout(t *testing.T) {
	cat := testCatalog(t)
	// Build a plan with enough work to hit the deadline: a chain of cross
	// products over distinctly-aliased scans of s.
	aliased := func(i int) algebra.Op {
		tbl, _ := cat.Lookup("s")
		attrs := make([]string, tbl.Rel.Schema.Len())
		for j := range attrs {
			attrs[j] = fmt.Sprintf("s%d.b%d", i, j+1)
		}
		return algebra.NewScan("s", fmt.Sprintf("s%d", i), storage.NewSchema(attrs...))
	}
	var big algebra.Op = algebra.NewCross(scanOf(t, cat, "r"), aliased(0))
	for i := 1; i < 5; i++ {
		big = algebra.NewCross(big, aliased(i))
	}
	ex := New(cat, Options{Timeout: time.Nanosecond})
	_, err := ex.Run(big)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}

func TestMemoizationSharesBypassEvaluation(t *testing.T) {
	cat := testCatalog(t)
	bp := algebra.NewBypassSelect(scanOf(t, cat, "r"),
		algebra.Cmp(types.GT, algebra.Col("r.a4"), algebra.ConstInt(1500)))
	u := algebra.NewUnionDisjoint(algebra.Pos(bp), algebra.Neg(bp))
	ex := New(cat, Options{Cache: CacheAll})
	if _, err := ex.Run(u); err != nil {
		t.Fatal(err)
	}
	// The bypass select's input scan must have been evaluated once; the
	// partition itself once. Count comparisons: 4 tuples × 1 cmp = 4.
	if ex.Stats().Comparisons != 4 {
		t.Errorf("comparisons = %d, want 4 (bypass evaluated once)", ex.Stats().Comparisons)
	}
}

func TestUncorrelatedCacheOption(t *testing.T) {
	cat := testCatalog(t)
	// Correlated subquery whose inner plan scans s: with caching the scan
	// is reused; the correlated select is recomputed per tuple either way.
	inner := algebra.NewSelect(scanOf(t, cat, "s"),
		algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")))
	sub := algebra.Subquery(agg.Spec{Kind: agg.Count, Star: true}, nil, inner)
	plan := algebra.NewSelect(scanOf(t, cat, "r"),
		algebra.Cmp(types.GE, algebra.Col("r.a1"), sub))

	cached := New(cat, Options{Cache: CacheAll})
	if _, err := cached.Run(plan); err != nil {
		t.Fatal(err)
	}
	uncached := New(cat, Options{})
	if _, err := uncached.Run(plan); err != nil {
		t.Fatal(err)
	}
	if cached.Stats().OpEvals >= uncached.Stats().OpEvals {
		t.Errorf("caching should reduce op evals: %d vs %d",
			cached.Stats().OpEvals, uncached.Stats().OpEvals)
	}
	if cached.Stats().SubqueryEvals != 4 || uncached.Stats().SubqueryEvals != 4 {
		t.Errorf("subquery evals = %d/%d, want 4 each",
			cached.Stats().SubqueryEvals, uncached.Stats().SubqueryEvals)
	}
}

func TestQuantifiedSubqueries(t *testing.T) {
	cat := testCatalog(t)
	// EXISTS (SELECT * FROM s WHERE a2 = b2)
	inner := algebra.NewSelect(scanOf(t, cat, "s"),
		algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")))
	exists := algebra.NewSelect(scanOf(t, cat, "r"),
		algebra.Quant(algebra.Exists, nil, inner))
	rel := runPlan(t, cat, exists)
	if rel.Cardinality() != 3 { // a2 ∈ {10,20} match; 30 doesn't
		t.Fatalf("EXISTS rows = %d, want 3", rel.Cardinality())
	}
	notExists := algebra.NewSelect(scanOf(t, cat, "r"),
		algebra.Quant(algebra.NotExists, nil, inner))
	rel = runPlan(t, cat, notExists)
	wantRows(t, rel, "(4, 30, 400, 2500)")

	// a2 IN (SELECT b2 FROM s)
	proj := algebra.NewProject(scanOf(t, cat, "s"), []string{"s.b2"})
	in := algebra.NewSelect(scanOf(t, cat, "r"),
		algebra.Quant(algebra.In, algebra.Col("r.a2"), proj))
	rel = runPlan(t, cat, in)
	if rel.Cardinality() != 3 {
		t.Fatalf("IN rows = %d, want 3", rel.Cardinality())
	}
}

func TestNotInWithNullsIsEmpty(t *testing.T) {
	cat := catalog.New()
	r, _ := cat.Create("r", []catalog.Column{{Name: "x", Type: types.KindInt}})
	s, _ := cat.Create("s", []catalog.Column{{Name: "y", Type: types.KindInt}})
	r.Insert([]types.Value{types.NewInt(1)})
	r.Insert([]types.Value{types.NewInt(2)})
	s.Insert([]types.Value{types.NewInt(1)})
	s.Insert([]types.Value{types.Null()})
	plan := algebra.NewSelect(algebra.NewScan("r", "r", r.Rel.Schema),
		algebra.Quant(algebra.NotIn, algebra.Col("r.x"),
			algebra.NewScan("s", "s", s.Rel.Schema)))
	rel := runPlan(t, cat, plan)
	// 1 NOT IN {1, NULL} = FALSE; 2 NOT IN {1, NULL} = UNKNOWN → filtered.
	if rel.Cardinality() != 0 {
		t.Fatalf("NOT IN with NULL must be empty, got:\n%s", rel)
	}
}

func TestBypassJoinStreams(t *testing.T) {
	cat := testCatalog(t)
	bj := algebra.NewBypassJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"),
		algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")))
	pos := runPlan(t, cat, algebra.Pos(bj))
	neg := runPlan(t, cat, algebra.Neg(bj))
	if pos.Cardinality()+neg.Cardinality() != 16 {
		t.Fatalf("bypass join must partition the cross product: %d + %d",
			pos.Cardinality(), neg.Cardinality())
	}
	if pos.Cardinality() != 5 {
		t.Errorf("positive stream = %d rows, want 5", pos.Cardinality())
	}
}

func TestBypassJoinNegFusedFilter(t *testing.T) {
	cat := testCatalog(t)
	bj := algebra.NewBypassJoin(scanOf(t, cat, "r"), scanOf(t, cat, "s"),
		algebra.Cmp(types.EQ, algebra.Col("r.a2"), algebra.Col("s.b2")))
	filtered := algebra.NewSelect(algebra.Neg(bj),
		algebra.Cmp(types.GT, algebra.Col("s.b4"), algebra.ConstInt(1500)))
	rel := runPlan(t, cat, filtered)
	// Compare against the unfused evaluation.
	unfusedNeg := runPlan(t, cat, algebra.Neg(bj))
	manual := 0
	b4 := unfusedNeg.Schema.Index("s.b4")
	for _, row := range unfusedNeg.Tuples {
		if c, ok := types.Compare(row[b4], types.NewInt(1500)); ok && c > 0 {
			manual++
		}
	}
	if rel.Cardinality() != manual {
		t.Fatalf("fused = %d rows, manual = %d", rel.Cardinality(), manual)
	}
}

func TestEnvLookupChain(t *testing.T) {
	outer := Bind(nil, storage.NewSchema("r.a"), []types.Value{types.NewInt(1)})
	inner := Bind(outer, storage.NewSchema("s.b"), []types.Value{types.NewInt(2)})
	if v, ok := inner.Lookup("s.b"); !ok || v.Int() != 2 {
		t.Error("inner lookup failed")
	}
	if v, ok := inner.Lookup("r.a"); !ok || v.Int() != 1 {
		t.Error("outer lookup through chain failed")
	}
	if _, ok := inner.Lookup("zz"); ok {
		t.Error("missing name resolved")
	}
	if inner.Depth() != 2 {
		t.Error("depth wrong")
	}
}

func TestExprErrors(t *testing.T) {
	cat := testCatalog(t)
	ex := New(cat, Options{})
	if _, err := ex.EvalExpr(algebra.Col("nope"), nil); err == nil {
		t.Error("unbound column must error")
	}
}
