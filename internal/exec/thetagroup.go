package exec

import (
	"sort"

	"disqo/internal/agg"
	"disqo/internal/physical"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// Sort-based binary grouping for inequality predicates, after May &
// Moerkotte's main-memory binary grouping algorithms: for a predicate
// L.a θ R.b with θ ∈ {<, ≤, >, ≥} and decomposable aggregates, sort the
// right side on b, precompute prefix/suffix aggregate arrays, and answer
// each left tuple with one binary search — O((|L|+|R|)·log|R|) instead of
// the nested loop's O(|L|·|R|). The planner (physical.Planner) proves
// applicability and resolves the column positions; the probe loop over
// the left side runs morsel-parallel (each row is independent).

// evalBinaryGroupSorted runs the sort-based algorithm.
func (ex *Executor) evalBinaryGroupSorted(b *physical.BinaryGroupSort, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(b.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(b.R, env)
	if err != nil {
		return nil, err
	}
	ex.stats.SortedGroups++
	li := b.LIdx
	ri := b.RIdx
	op := b.Op

	// Sort non-NULL right tuples by the grouping column (NULL b never
	// satisfies an inequality).
	idx := make([]int, 0, len(r.Tuples))
	for i, t := range r.Tuples {
		if !t[ri].IsNull() {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, c int) bool {
		cmp, _ := types.Compare(r.Tuples[idx[a]][ri], r.Tuples[idx[c]][ri])
		return cmp < 0
	})

	// prefix[k][i] = fI of the first i sorted tuples for aggregate k;
	// suffix[k][i] = fI of the sorted tuples from position i on.
	n := len(idx)
	prefix := make([][]types.Value, len(b.Aggs))
	suffix := make([][]types.Value, len(b.Aggs))
	for k, item := range b.Aggs {
		args := make([][]types.Value, n)
		for i, ridx := range idx {
			a, err := ex.aggArgs(item, r.Schema, r.Tuples[ridx], env)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		pre := make([]types.Value, n+1)
		pre[0] = item.Spec.Empty()
		acc := agg.NewAcc(item.Spec)
		for i := 0; i < n; i++ {
			acc.Add(args[i])
			pre[i+1] = acc.Result()
		}
		suf := make([]types.Value, n+1)
		suf[n] = item.Spec.Empty()
		acc = agg.NewAcc(item.Spec)
		for i := n - 1; i >= 0; i-- {
			acc.Add(args[i])
			suf[i] = acc.Result()
		}
		prefix[k] = pre
		suffix[k] = suf
	}

	chunks, err := parMorsels(ex, len(l.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			out := make([][]types.Value, 0, hi-lo)
			for _, lt := range l.Tuples[lo:hi] {
				if err := w.tick(); err != nil {
					return nil, err
				}
				row := make([]types.Value, 0, len(lt)+len(b.Aggs))
				row = append(row, lt...)
				v := lt[li]
				for k, item := range b.Aggs {
					if v.IsNull() {
						row = append(row, item.Spec.Empty())
						continue
					}
					// Matching right tuples form a contiguous run in sort order.
					switch op {
					case types.LT: // v < b: suffix strictly above v
						pos := sort.Search(n, func(i int) bool {
							c, _ := types.Compare(r.Tuples[idx[i]][ri], v)
							return c > 0
						})
						row = append(row, suffix[k][pos])
					case types.LE: // v <= b
						pos := sort.Search(n, func(i int) bool {
							c, _ := types.Compare(r.Tuples[idx[i]][ri], v)
							return c >= 0
						})
						row = append(row, suffix[k][pos])
					case types.GT: // v > b: prefix strictly below v
						pos := sort.Search(n, func(i int) bool {
							c, _ := types.Compare(r.Tuples[idx[i]][ri], v)
							return c >= 0
						})
						row = append(row, prefix[k][pos])
					default: // GE: v >= b
						pos := sort.Search(n, func(i int) bool {
							c, _ := types.Compare(r.Tuples[idx[i]][ri], v)
							return c > 0
						})
						row = append(row, prefix[k][pos])
					}
				}
				out = append(out, row)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(b.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}
