package exec

import (
	"fmt"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// EvalExpr evaluates a scalar expression in an environment. Predicates
// evaluated as values render their truth value (UNKNOWN becomes NULL).
func (ex *Executor) EvalExpr(e algebra.Expr, env *Env) (types.Value, error) {
	switch x := e.(type) {
	case *algebra.ColRef:
		v, ok := env.Lookup(x.Name)
		if !ok {
			return types.Value{}, fmt.Errorf("exec: unbound column %q", x.Name)
		}
		return v, nil
	case *algebra.ConstExpr:
		return x.Val, nil
	case *algebra.ArithExpr:
		l, err := ex.EvalExpr(x.L, env)
		if err != nil {
			return types.Value{}, err
		}
		r, err := ex.EvalExpr(x.R, env)
		if err != nil {
			return types.Value{}, err
		}
		return types.Arith(x.Op, l, r)
	case *algebra.AggCombineExpr:
		l, err := ex.EvalExpr(x.L, env)
		if err != nil {
			return types.Value{}, err
		}
		r, err := ex.EvalExpr(x.R, env)
		if err != nil {
			return types.Value{}, err
		}
		return agg.Combine(x.Kind, l, r)
	case *algebra.ScalarSubquery:
		return ex.evalScalarSubquery(x, env)
	case *algebra.CmpExpr, *algebra.AndExpr, *algebra.OrExpr, *algebra.NotExpr,
		*algebra.LikeExpr, *algebra.IsNullExpr, *algebra.QuantSubquery,
		*algebra.AllAnyExpr:
		t, err := ex.EvalPred(e, env)
		if err != nil {
			return types.Value{}, err
		}
		return t.Value(), nil
	default:
		return types.Value{}, fmt.Errorf("exec: cannot evaluate expression %T", e)
	}
}

// EvalPred evaluates an expression as a predicate under the executor's
// null mode. Under the default three-valued logic every case below is
// Kleene; under types.TwoValued the leaf cases (comparisons, LIKE,
// value coercion) lift Unknown to False, after which the connective
// cases are classical Boolean without any change of their own.
func (ex *Executor) EvalPred(e algebra.Expr, env *Env) (types.TriBool, error) {
	switch x := e.(type) {
	case *algebra.CmpExpr:
		l, err := ex.EvalExpr(x.L, env)
		if err != nil {
			return types.Unknown, err
		}
		r, err := ex.EvalExpr(x.R, env)
		if err != nil {
			return types.Unknown, err
		}
		ex.stats.Comparisons++
		return ex.opt.Nulls.Lift(types.CompareValues(x.Op, l, r)), nil
	case *algebra.AndExpr:
		l, err := ex.EvalPred(x.L, env)
		if err != nil {
			return types.Unknown, err
		}
		if l == types.False {
			return types.False, nil // short-circuit
		}
		r, err := ex.EvalPred(x.R, env)
		if err != nil {
			return types.Unknown, err
		}
		return l.And(r), nil
	case *algebra.OrExpr:
		l, err := ex.EvalPred(x.L, env)
		if err != nil {
			return types.Unknown, err
		}
		if l == types.True {
			return types.True, nil // short-circuit: the disjunction's cheap exit
		}
		r, err := ex.EvalPred(x.R, env)
		if err != nil {
			return types.Unknown, err
		}
		return l.Or(r), nil
	case *algebra.NotExpr:
		t, err := ex.EvalPred(x.E, env)
		if err != nil {
			return types.Unknown, err
		}
		return t.Not(), nil
	case *algebra.LikeExpr:
		l, err := ex.EvalExpr(x.L, env)
		if err != nil {
			return types.Unknown, err
		}
		p, err := ex.EvalExpr(x.Pattern, env)
		if err != nil {
			return types.Unknown, err
		}
		return ex.opt.Nulls.Lift(types.Like(l, p)), nil
	case *algebra.IsNullExpr:
		v, err := ex.EvalExpr(x.E, env)
		if err != nil {
			return types.Unknown, err
		}
		return types.TriOf(v.IsNull()), nil
	case *algebra.QuantSubquery:
		return ex.evalQuantSubquery(x, env)
	case *algebra.AllAnyExpr:
		return ex.evalAllAny(x, env)
	default:
		v, err := ex.EvalExpr(e, env)
		if err != nil {
			return types.Unknown, err
		}
		return ex.opt.Nulls.Lift(types.TriFromValue(v)), nil
	}
}

// evalSubplan resolves a nested logical plan to its physical node —
// pre-lowered by the planner when the enclosing plan was lowered — and
// evaluates it under the current environment.
func (ex *Executor) evalSubplan(plan algebra.Op, env *Env) (*storage.Relation, error) {
	n, err := ex.physFor(plan)
	if err != nil {
		return nil, err
	}
	return ex.eval(n, env)
}

// evalScalarSubquery runs the nested plan under the current environment
// and folds the aggregate over its result — the canonical nested-loop
// strategy. Uncorrelated plans (type A) are evaluated once and memoized
// when the executor's cache is enabled.
func (ex *Executor) evalScalarSubquery(sq *algebra.ScalarSubquery, env *Env) (types.Value, error) {
	ex.stats.SubqueryEvals++
	rel, err := ex.evalSubplan(sq.Plan, env)
	if err != nil {
		return types.Value{}, err
	}
	acc := agg.NewAcc(sq.Agg)
	for _, t := range rel.Tuples {
		if sq.Agg.Star {
			acc.Add(t)
			continue
		}
		inner := Bind(env, rel.Schema, t)
		v, err := ex.EvalExpr(sq.Arg, inner)
		if err != nil {
			return types.Value{}, err
		}
		acc.Add([]types.Value{v})
	}
	return acc.Result(), nil
}

// evalQuantSubquery implements EXISTS / NOT EXISTS / IN / NOT IN with SQL
// three-valued semantics: x IN S is TRUE when a member equals x, UNKNOWN
// when no member equals x but some comparison is UNKNOWN (NULLs), FALSE
// otherwise; NOT IN is its Kleene negation. Under types.TwoValued each
// membership comparison is lifted, so IN never yields Unknown and NOT IN
// is plain complement.
func (ex *Executor) evalQuantSubquery(q *algebra.QuantSubquery, env *Env) (types.TriBool, error) {
	ex.stats.SubqueryEvals++
	rel, err := ex.evalSubplan(q.Plan, env)
	if err != nil {
		return types.Unknown, err
	}
	switch q.Quant {
	case algebra.Exists:
		return types.TriOf(rel.Cardinality() > 0), nil
	case algebra.NotExists:
		return types.TriOf(rel.Cardinality() == 0), nil
	}
	if rel.Schema.Len() != 1 {
		return types.Unknown, fmt.Errorf("exec: IN subquery must produce one column, got %s", rel.Schema)
	}
	l, err := ex.EvalExpr(q.L, env)
	if err != nil {
		return types.Unknown, err
	}
	res := types.False
	for _, t := range rel.Tuples {
		ex.stats.Comparisons++
		res = res.Or(ex.opt.Nulls.Lift(types.CompareValues(types.EQ, l, t[0])))
		if res == types.True {
			break
		}
	}
	if q.Quant == algebra.NotIn {
		return res.Not(), nil
	}
	return res, nil
}

// evalAllAny folds a quantified comparison over the subquery's single
// output column in Kleene logic: AND for ALL (TRUE on empty input), OR
// for ANY (FALSE on empty input).
func (ex *Executor) evalAllAny(q *algebra.AllAnyExpr, env *Env) (types.TriBool, error) {
	ex.stats.SubqueryEvals++
	rel, err := ex.evalSubplan(q.Plan, env)
	if err != nil {
		return types.Unknown, err
	}
	if rel.Schema.Len() != 1 {
		return types.Unknown, fmt.Errorf("exec: quantified comparison needs one column, got %s", rel.Schema)
	}
	l, err := ex.EvalExpr(q.L, env)
	if err != nil {
		return types.Unknown, err
	}
	res := types.False
	if q.All {
		res = types.True
	}
	for _, t := range rel.Tuples {
		ex.stats.Comparisons++
		c := ex.opt.Nulls.Lift(types.CompareValues(q.Op, l, t[0]))
		if q.All {
			res = res.And(c)
			if res == types.False {
				break
			}
		} else {
			res = res.Or(c)
			if res == types.True {
				break
			}
		}
	}
	return res, nil
}
