package exec

import (
	"testing"

	"disqo/internal/catalog"
)

// TestMorselSizeClamping pins the Options.MorselSize bounds: zero and
// negatives select the default, and out-of-range values clamp to the
// documented [MinMorselSize, MaxMorselSize] window rather than error —
// the option tunes cancellation latency, it never changes results.
func TestMorselSizeClamping(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultMorselSize},
		{-7, DefaultMorselSize},
		{1, MinMorselSize},
		{MinMorselSize, MinMorselSize},
		{5000, 5000},
		{MaxMorselSize, MaxMorselSize},
		{MaxMorselSize + 1, MaxMorselSize},
		{1 << 30, MaxMorselSize},
	}
	for _, c := range cases {
		ex := New(catalog.New(), Options{MorselSize: c.in})
		if ex.msize != c.want {
			t.Errorf("MorselSize %d clamped to %d, want %d", c.in, ex.msize, c.want)
		}
	}
}

// TestParsePath covers the flag-level path parser.
func TestParsePath(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Path
		ok   bool
	}{
		{"row", PathRow, true},
		{"vector", PathVector, true},
		{"", PathRow, false},
		{"simd", PathRow, false},
	} {
		got, ok := ParsePath(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParsePath(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
	if PathRow.String() != "row" || PathVector.String() != "vector" {
		t.Error("Path.String() drifted from the flag vocabulary")
	}
}
