package exec

import (
	"errors"
	"fmt"
	"time"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// ErrTimeout is returned when a query exceeds the executor deadline — the
// harness's equivalent of the paper's six-hour experiment cutoff ("n/a").
var ErrTimeout = errors.New("exec: query deadline exceeded")

// ErrMemoryLimit is returned when a query materializes more tuples than
// Options.MaxTuples allows — the in-memory engine's equivalent of
// spilling until the experiment is aborted.
var ErrMemoryLimit = errors.New("exec: tuple budget exceeded")

// CacheMode controls how much of a nested subquery's evaluation is
// memoized across outer tuples. Top-level DAG sharing is always memoized
// regardless of mode.
type CacheMode uint8

const (
	// CacheNone re-evaluates everything per outer tuple — the weakest
	// baseline (S1): not even base-table pages stay warm.
	CacheNone CacheMode = iota
	// CacheScans memoizes base-table scans only — the buffer-pool
	// behavior of a conventional engine evaluating a canonical plan:
	// pages stay resident but intermediate join results are rebuilt for
	// every outer tuple.
	CacheScans
	// CacheAll memoizes every uncorrelated subplan: type-A subqueries
	// and the invariant parts of unnested plans materialize once.
	CacheAll
)

// Options tune the executor. The zero value is the weakest baseline: no
// caching at all.
type Options struct {
	// Cache selects how much cross-tuple memoization happens during
	// correlated subquery evaluation.
	Cache CacheMode
	// Timeout aborts evaluation with ErrTimeout when exceeded; zero
	// means no limit.
	Timeout time.Duration
	// MaxTuples aborts evaluation with ErrMemoryLimit once the number of
	// simultaneously resident tuples (memoized results plus the output
	// being built) exceeds it; zero means no limit. Transient per-tuple
	// subquery results do not count — they are released immediately.
	MaxTuples int64
}

// Stats counts work done by one execution, letting tests and benchmarks
// compare strategies by effort rather than wall clock alone.
type Stats struct {
	Comparisons   int64 // predicate comparisons evaluated
	TuplesOut     int64 // tuples materialized across all operators
	SubqueryEvals int64 // nested subquery evaluations (scalar + quantified)
	HashJoins     int64 // joins executed by hashing
	NLJoins       int64 // joins executed by nested loops
	SortedGroups  int64 // binary groupings executed sort-based
	OpEvals       int64 // operator evaluations (after memoization)
}

// Executor evaluates algebra plans against a catalog.
type Executor struct {
	cat   *catalog.Catalog
	opt   Options
	stats Stats

	memo       map[memoKey]*storage.Relation
	correlated map[algebra.Op]bool
	resident   int64 // tuples pinned by the memo

	opRows  map[algebra.Op]int64 // per-operator output rows (last eval)
	opCalls map[algebra.Op]int64 // per-operator evaluation count

	deadline time.Time
	ticks    int
}

type memoKey struct {
	op   algebra.Op
	pos  bool // stream side for bypass operators
	side uint8
}

// New returns an executor over the catalog.
func New(cat *catalog.Catalog, opt Options) *Executor {
	return &Executor{
		cat:        cat,
		opt:        opt,
		memo:       make(map[memoKey]*storage.Relation),
		correlated: make(map[algebra.Op]bool),
		opRows:     make(map[algebra.Op]int64),
		opCalls:    make(map[algebra.Op]int64),
	}
}

// Stats returns the work counters accumulated so far.
func (ex *Executor) Stats() Stats { return ex.stats }

// OpStats reports one operator's last output cardinality and how many
// times it was evaluated (canonical nested-loop plans evaluate correlated
// subplans once per outer tuple).
func (ex *Executor) OpStats(op algebra.Op) (rows, calls int64) {
	return ex.opRows[op], ex.opCalls[op]
}

// Run evaluates a plan top-level (no outer bindings).
func (ex *Executor) Run(plan algebra.Op) (*storage.Relation, error) {
	if ex.opt.Timeout > 0 {
		ex.deadline = time.Now().Add(ex.opt.Timeout)
	} else {
		ex.deadline = time.Time{}
	}
	return ex.eval(plan, nil)
}

// tick checks the deadline every few thousand inner-loop iterations.
func (ex *Executor) tick() error {
	ex.ticks++
	if ex.ticks&0xfff != 0 {
		return nil
	}
	if !ex.deadline.IsZero() && time.Now().After(ex.deadline) {
		return ErrTimeout
	}
	return nil
}

// checkBudget enforces the tuple budget against rows pending inside a
// long-running operator, so a single quadratic join cannot exhaust
// memory before returning.
func (ex *Executor) checkBudget(pending int) error {
	if ex.opt.MaxTuples > 0 && ex.resident+int64(pending) > ex.opt.MaxTuples {
		return ErrMemoryLimit
	}
	return nil
}

// isCorrelated caches algebra.Correlated per node.
func (ex *Executor) isCorrelated(op algebra.Op) bool {
	if c, ok := ex.correlated[op]; ok {
		return c
	}
	c := algebra.Correlated(op)
	ex.correlated[op] = c
	return c
}

// cacheable reports whether the node's result is env-independent and
// memoization is allowed in the current context: at top level (env==nil)
// DAG sharing always requires the memo; under an environment the cache
// mode decides how much may be reused across outer tuples.
func (ex *Executor) cacheable(op algebra.Op, env *Env) bool {
	if env == nil {
		return true
	}
	switch ex.opt.Cache {
	case CacheAll:
		return !ex.isCorrelated(op)
	case CacheScans:
		_, isScan := op.(*algebra.Scan)
		return isScan
	default:
		return false
	}
}

// eval evaluates one node with memoization.
func (ex *Executor) eval(op algebra.Op, env *Env) (*storage.Relation, error) {
	if err := ex.tick(); err != nil {
		return nil, err
	}
	key := memoKey{op: op}
	if s, ok := op.(*algebra.Stream); ok {
		// Streams delegate to the shared bypass node with a side tag.
		key = memoKey{op: s.Source, pos: s.Positive, side: 1}
	}
	cacheable := ex.cacheable(op, env)
	if cacheable {
		if rel, ok := ex.memo[key]; ok {
			// Credit one evaluation to nodes whose result arrived through
			// a shared bypass evaluation, so EXPLAIN ANALYZE has a row
			// count for them.
			if ex.opCalls[op] == 0 {
				ex.opRows[op] = int64(rel.Cardinality())
				ex.opCalls[op] = 1
			}
			return rel, nil
		}
	}
	rel, err := ex.evalRaw(op, env)
	if err != nil {
		return nil, err
	}
	ex.stats.OpEvals++
	ex.stats.TuplesOut += int64(rel.Cardinality())
	ex.opRows[op] = int64(rel.Cardinality())
	ex.opCalls[op]++
	if err := ex.checkBudget(rel.Cardinality()); err != nil {
		return nil, err
	}
	if cacheable {
		ex.memo[key] = rel
		ex.resident += int64(rel.Cardinality())
	}
	return rel, nil
}

func (ex *Executor) evalRaw(op algebra.Op, env *Env) (*storage.Relation, error) {
	switch x := op.(type) {
	case *algebra.Scan:
		return ex.evalScan(x)
	case *algebra.Select:
		return ex.evalSelect(x, env)
	case *algebra.BypassSelect:
		// Reached only via Stream nodes; evaluating the bare node is a
		// plan bug.
		return nil, fmt.Errorf("exec: bypass selection must be consumed through Stream nodes")
	case *algebra.BypassJoin:
		return nil, fmt.Errorf("exec: bypass join must be consumed through Stream nodes")
	case *algebra.Stream:
		return ex.evalStream(x, env)
	case *algebra.Project:
		return ex.evalProject(x, env)
	case *algebra.Rename:
		return ex.evalRename(x, env)
	case *algebra.MapOp:
		return ex.evalMap(x, env)
	case *algebra.Number:
		return ex.evalNumber(x, env)
	case *algebra.CrossProduct:
		return ex.evalCross(x, env)
	case *algebra.Join:
		return ex.evalJoin(x, env)
	case *algebra.LeftOuterJoin:
		return ex.evalOuterJoin(x, env)
	case *algebra.SemiJoin:
		return ex.evalSemiJoin(x.L, x.R, x.Pred, false, env)
	case *algebra.AntiJoin:
		return ex.evalSemiJoin(x.L, x.R, x.Pred, true, env)
	case *algebra.GroupBy:
		return ex.evalGroupBy(x, env)
	case *algebra.BinaryGroup:
		return ex.evalBinaryGroup(x, env)
	case *algebra.UnionDisjoint:
		return ex.evalConcat(x.L, x.R, x.Schema(), env)
	case *algebra.UnionAll:
		return ex.evalConcat(x.L, x.R, x.Schema(), env)
	case *algebra.Distinct:
		return ex.evalDistinct(x, env)
	case *algebra.Sort:
		return ex.evalSort(x, env)
	case *algebra.Limit:
		in, err := ex.eval(x.Child, env)
		if err != nil {
			return nil, err
		}
		if int64(len(in.Tuples)) <= x.N {
			return in, nil
		}
		return &storage.Relation{Schema: in.Schema, Tuples: in.Tuples[:x.N]}, nil
	default:
		return nil, fmt.Errorf("exec: unsupported operator %T", op)
	}
}

func (ex *Executor) evalScan(s *algebra.Scan) (*storage.Relation, error) {
	tbl, err := ex.cat.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	if tbl.Rel.Schema.Len() != s.Schema().Len() {
		return nil, fmt.Errorf("exec: scan %s: stored arity %d vs plan arity %d",
			s.Table, tbl.Rel.Schema.Len(), s.Schema().Len())
	}
	// Share tuple storage; only the schema (qualification) differs.
	return &storage.Relation{Schema: s.Schema(), Tuples: tbl.Rel.Tuples}, nil
}

func (ex *Executor) evalSelect(s *algebra.Select, env *Env) (*storage.Relation, error) {
	// Fuse σ over the negative stream of a bypass join so the complement
	// pairs are filtered during enumeration instead of being
	// materialized first (Eqv. 5's σ_p(R ⋈− S) shape).
	if st, ok := s.Child.(*algebra.Stream); ok && !st.Positive {
		if bj, ok := st.Source.(*algebra.BypassJoin); ok {
			return ex.evalBypassJoinNeg(bj, s.Pred, env)
		}
	}
	in, err := ex.eval(s.Child, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(in.Schema)
	for _, t := range in.Tuples {
		if err := ex.tick(); err != nil {
			return nil, err
		}
		keep, err := ex.EvalPred(s.Pred, Bind(env, in.Schema, t))
		if err != nil {
			return nil, err
		}
		if keep.IsTrue() {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

func (ex *Executor) evalStream(s *algebra.Stream, env *Env) (*storage.Relation, error) {
	switch src := s.Source.(type) {
	case *algebra.BypassSelect:
		pos, neg, err := ex.evalBypassSelect(src, env)
		if err != nil {
			return nil, err
		}
		// Cache both sides if permitted; eval() caches the requested one.
		if ex.cacheable(s, env) {
			ex.memo[memoKey{op: src, pos: true, side: 1}] = pos
			ex.memo[memoKey{op: src, pos: false, side: 1}] = neg
		}
		if s.Positive {
			return pos, nil
		}
		return neg, nil
	case *algebra.BypassJoin:
		if s.Positive {
			return ex.evalBypassJoinPos(src, env)
		}
		return ex.evalBypassJoinNeg(src, nil, env)
	default:
		return nil, fmt.Errorf("exec: Stream over non-bypass operator %T", s.Source)
	}
}

// evalBypassSelect partitions the input into (TRUE, not-TRUE) — the σ±
// of Fig. 1.
func (ex *Executor) evalBypassSelect(s *algebra.BypassSelect, env *Env) (pos, neg *storage.Relation, err error) {
	in, err := ex.eval(s.Child, env)
	if err != nil {
		return nil, nil, err
	}
	pos = storage.NewRelation(in.Schema)
	neg = storage.NewRelation(in.Schema)
	for _, t := range in.Tuples {
		if err := ex.tick(); err != nil {
			return nil, nil, err
		}
		keep, err := ex.EvalPred(s.Pred, Bind(env, in.Schema, t))
		if err != nil {
			return nil, nil, err
		}
		if keep.IsTrue() {
			pos.Tuples = append(pos.Tuples, t)
		} else {
			neg.Tuples = append(neg.Tuples, t)
		}
	}
	return pos, neg, nil
}

func (ex *Executor) evalProject(p *algebra.Project, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(p.Child, env)
	if err != nil {
		return nil, err
	}
	idx, err := in.Schema.Projection(p.Attrs)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(p.Schema())
	out.Tuples = make([][]types.Value, len(in.Tuples))
	for i, t := range in.Tuples {
		row := make([]types.Value, len(idx))
		for j, c := range idx {
			row[j] = t[c]
		}
		out.Tuples[i] = row
	}
	return out, nil
}

func (ex *Executor) evalRename(r *algebra.Rename, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(r.Child, env)
	if err != nil {
		return nil, err
	}
	return &storage.Relation{Schema: r.Schema(), Tuples: in.Tuples}, nil
}

func (ex *Executor) evalMap(m *algebra.MapOp, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(m.Child, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(m.Schema())
	out.Tuples = make([][]types.Value, len(in.Tuples))
	for i, t := range in.Tuples {
		if err := ex.tick(); err != nil {
			return nil, err
		}
		v, err := ex.EvalExpr(m.Expr, Bind(env, in.Schema, t))
		if err != nil {
			return nil, err
		}
		row := make([]types.Value, 0, len(t)+1)
		row = append(row, t...)
		row = append(row, v)
		out.Tuples[i] = row
	}
	return out, nil
}

func (ex *Executor) evalNumber(n *algebra.Number, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(n.Child, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(n.Schema())
	out.Tuples = make([][]types.Value, len(in.Tuples))
	for i, t := range in.Tuples {
		row := make([]types.Value, 0, len(t)+1)
		row = append(row, t...)
		row = append(row, types.NewInt(int64(i+1)))
		out.Tuples[i] = row
	}
	return out, nil
}

func (ex *Executor) evalCross(c *algebra.CrossProduct, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(c.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(c.R, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(c.Schema())
	for _, lt := range l.Tuples {
		if err := ex.checkBudget(len(out.Tuples)); err != nil {
			return nil, err
		}
		for _, rt := range r.Tuples {
			if err := ex.tick(); err != nil {
				return nil, err
			}
			out.Tuples = append(out.Tuples, concat(lt, rt))
		}
	}
	return out, nil
}

func (ex *Executor) evalConcat(lop, rop algebra.Op, sch *storage.Schema, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(lop, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(rop, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(sch)
	out.Tuples = make([][]types.Value, 0, len(l.Tuples)+len(r.Tuples))
	out.Tuples = append(out.Tuples, l.Tuples...)
	out.Tuples = append(out.Tuples, r.Tuples...)
	return out, nil
}

func (ex *Executor) evalDistinct(d *algebra.Distinct, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(d.Child, env)
	if err != nil {
		return nil, err
	}
	return in.Distinct(), nil
}

func (ex *Executor) evalSort(s *algebra.Sort, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(s.Child, env)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(s.Keys))
	desc := make([]bool, len(s.Keys))
	for i, k := range s.Keys {
		c := in.Schema.Index(k.Attr)
		if c < 0 {
			return nil, fmt.Errorf("exec: sort key %q not in %s", k.Attr, in.Schema)
		}
		cols[i] = c
		desc[i] = k.Desc
	}
	out := in.Clone()
	out.SortBy(cols, desc)
	return out, nil
}

func concat(a, b []types.Value) []types.Value {
	row := make([]types.Value, 0, len(a)+len(b))
	row = append(row, a...)
	row = append(row, b...)
	return row
}
