// Package exec evaluates physical plans (internal/physical) against a
// catalog. The executor is an interpreter over materialized relations:
// Run lowers the logical plan once through the physical planner — which
// owns every algorithm choice — and then evaluates the physical tree,
// memoizing shared DAG subplans and spreading the hot per-tuple loops
// over a morsel-parallel worker pool (Options.Workers).
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/faultinject"
	"disqo/internal/physical"
	"disqo/internal/stats"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// ErrTimeout is returned when a query exceeds the executor deadline — the
// harness's equivalent of the paper's six-hour experiment cutoff ("n/a").
var ErrTimeout = errors.New("exec: query deadline exceeded")

// ErrMemoryLimit is returned when a query materializes more tuples than
// Options.MaxTuples allows — the in-memory engine's equivalent of
// spilling until the experiment is aborted.
var ErrMemoryLimit = errors.New("exec: tuple budget exceeded")

// CacheMode controls how much of a nested subquery's evaluation is
// memoized across outer tuples. Top-level DAG sharing is always memoized
// regardless of mode.
type CacheMode uint8

const (
	// CacheNone re-evaluates everything per outer tuple — the weakest
	// baseline (S1): not even base-table pages stay warm.
	CacheNone CacheMode = iota
	// CacheScans memoizes base-table scans only — the buffer-pool
	// behavior of a conventional engine evaluating a canonical plan:
	// pages stay resident but intermediate join results are rebuilt for
	// every outer tuple.
	CacheScans
	// CacheAll memoizes every uncorrelated subplan: type-A subqueries
	// and the invariant parts of unnested plans materialize once.
	CacheAll
)

// Options tune the executor. The zero value is the weakest baseline: no
// caching at all, one worker per CPU.
type Options struct {
	// Cache selects how much cross-tuple memoization happens during
	// correlated subquery evaluation.
	Cache CacheMode
	// Timeout aborts evaluation with ErrTimeout when exceeded; zero
	// means no limit.
	Timeout time.Duration
	// MaxTuples aborts evaluation with ErrMemoryLimit once the number of
	// simultaneously resident tuples (memoized results plus the output
	// being built) exceeds it; zero means no limit. Transient per-tuple
	// subquery results do not count — they are released immediately.
	MaxTuples int64
	// Workers is the morsel-parallel worker pool size; <= 0 means
	// GOMAXPROCS. Hot operators split inputs of at least two morsels
	// across the pool; 1 disables parallelism.
	Workers int
	// MorselSize is the chunk length workers claim from the shared
	// counter; <= 0 means DefaultMorselSize (1024). Values are clamped
	// to [MinMorselSize, MaxMorselSize]: the morsel is the unit of work
	// between cancellation polls, so the upper bound caps cancellation
	// latency while the lower bound keeps scheduling overhead amortized.
	// Chunk boundaries depend only on the input size and this value, so
	// results stay byte-identical across worker counts for any fixed
	// morsel size.
	MorselSize int
	// Path selects the evaluation substrate: PathRow interprets
	// tuple-at-a-time (the correctness oracle), PathVector runs eligible
	// operators column-at-a-time over storage.Batch vectors, falling
	// back to the row path per node when the planner found no compiled
	// kernel. Both paths produce byte-identical results.
	Path Path
	// Metrics enables per-operator runtime counters (NodeMetrics),
	// read back through Executor.NodeMetrics after Run. Off by default:
	// the disabled path adds no allocations to the hot loops.
	Metrics bool
	// Tracer receives operator open/morsel/close events; nil disables
	// tracing at zero cost.
	Tracer Tracer
	// Ctx cancels evaluation when done: the executor polls it in the
	// periodic tick, at every morsel boundary, and on entry to Run,
	// failing the query with ctx.Err() (context.Canceled or
	// context.DeadlineExceeded). nil means no external cancellation.
	Ctx context.Context
	// Fault is the deterministic fault-injection hook
	// (internal/faultinject), visited at operator entry, morsel
	// boundaries, and memo fills. nil disables injection; the disabled
	// path costs one branch per visit.
	Fault *faultinject.Injector
	// Budget, when set, charges this query's resident tuples against a
	// DB-wide budget shared with every concurrent query; crossing the
	// shared limit aborts with ErrMemoryLimit. The charge is released by
	// Executor.Close. nil disables shared accounting.
	Budget *Budget
	// Nulls selects the predicate logic: the default types.ThreeValued
	// is SQL's Kleene semantics; types.TwoValued collapses Unknown to
	// False at every predicate leaf (comparisons, LIKE, predicate-as-
	// value coercions), so NULL never satisfies or escapes a filter.
	Nulls types.NullMode
}

// Stats counts work done by one execution, letting tests and benchmarks
// compare strategies by effort rather than wall clock alone. Under
// parallel execution the counters are sharded per worker and merged
// after every parallel region, so totals are worker-count independent.
type Stats struct {
	Comparisons   int64 // predicate comparisons evaluated
	TuplesOut     int64 // tuples materialized across all operators
	SubqueryEvals int64 // nested subquery evaluations (scalar + quantified)
	HashJoins     int64 // joins executed by hashing
	NLJoins       int64 // joins executed by nested loops
	SortedGroups  int64 // binary groupings executed sort-based
	OpEvals       int64 // operator evaluations (after memoization)

	// PeakTuples is the high-water mark of simultaneously resident
	// tuples (memoized results plus the largest in-flight operator
	// output observed by the budget check) — the quantity
	// Options.MaxTuples limits, made observable. It is a gauge: merge
	// takes the max, not the sum.
	PeakTuples int64
	// Elapsed is the cumulative wall time spent inside Run — the
	// quantity Options.Timeout limits, made observable. Gauge: merge
	// takes the max (worker shards never set it).
	Elapsed time.Duration
}

// merge folds a worker shard into the parent's counters. Monotone
// counters sum; gauges (PeakTuples, Elapsed) take the max — summing a
// high-water mark across shards would overstate it.
func (s *Stats) merge(o *Stats) {
	s.Comparisons += o.Comparisons
	s.TuplesOut += o.TuplesOut
	s.SubqueryEvals += o.SubqueryEvals
	s.HashJoins += o.HashJoins
	s.NLJoins += o.NLJoins
	s.SortedGroups += o.SortedGroups
	s.OpEvals += o.OpEvals
	if o.PeakTuples > s.PeakTuples {
		s.PeakTuples = o.PeakTuples
	}
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
}

// Executor evaluates plans against a catalog. One Executor owns one
// physical planner and one shared memo; worker clones created for
// parallel regions share both through sharedState and keep private
// Stats shards.
type Executor struct {
	cat     catalog.Reader
	opt     Options
	stats   Stats
	planner *physical.Planner
	sh      *sharedState

	// nm is this executor's per-operator metrics shard, indexed by
	// physical node ID; nil unless Options.Metrics is set. Worker clones
	// get private shards merged back by parMorsels.
	nm []NodeMetrics
	// cur is the node currently being evaluated; morsel and hash-build
	// events, injected faults, and recovered panics are attributed to
	// it. Tracking it is a pointer assignment per operator, so it is
	// maintained unconditionally.
	cur physical.Node

	deadline time.Time
	ticks    int
	msize    int  // validated Options.MorselSize (see New)
	isWorker bool // worker clones never fan out again (no nested pools)
}

// sharedState is the cross-worker state: the DAG/subquery memo (with a
// single-flight table deduplicating concurrent first evaluations) and
// the abort latch that propagates cancellation (timeout, budget, eval
// errors) to every worker.
type sharedState struct {
	mu         sync.Mutex
	memo       map[memoKey]*storage.Relation
	correlated map[algebra.Op]bool

	// flight marks cacheable evaluations in progress: the first arrival
	// evaluates, later arrivals wait on flightDone and re-check the
	// memo. Plan dependencies are acyclic, so waiting cannot deadlock,
	// and a set + cond (vs. a per-flight channel) keeps the memoized
	// path allocation-free.
	flight     map[memoKey]bool
	flightDone *sync.Cond // signaled under mu whenever a flight ends

	// batches caches the columnar view of relations the vectorized path
	// has touched, keyed by row-heap identity, so canonical plans that
	// re-evaluate a predicate over the same memoized input per outer
	// tuple pay the row→column conversion once. Guarded by mu; the
	// per-column vectors inside a Batch have their own synchronization.
	batches map[*storage.Relation]*storage.Batch

	resident atomic.Int64 // tuples pinned by the memo
	peak     atomic.Int64 // high-water mark of resident (+ in-flight) tuples
	aborted  atomic.Bool  // latch polled by every worker's tick
	abortErr error        // first fatal error; guarded by mu

	// budget is the optional DB-wide resident-tuple budget shared with
	// concurrent queries; closed latches the one-time release of this
	// executor's charge (Executor.Close).
	budget *Budget
	closed atomic.Bool
}

// pin accounts tuples added to the memo and raises the high-water mark,
// charging the shared budget too when one is attached.
func (sh *sharedState) pin(n int64) {
	r := sh.resident.Add(n)
	sh.raisePeak(r)
	if sh.budget != nil {
		sh.budget.charge(n)
	}
}

func (sh *sharedState) raisePeak(r int64) {
	for {
		p := sh.peak.Load()
		if r <= p || sh.peak.CompareAndSwap(p, r) {
			return
		}
	}
}

type memoKey struct {
	n    physical.Node
	pos  bool // stream side for bypass operators
	side uint8
}

// New returns an executor over a catalog view — the live *catalog.Catalog
// or, for snapshot-isolated queries, a pinned *catalog.Snapshot.
func New(cat catalog.Reader, opt Options) *Executor {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	sh := &sharedState{
		memo:       make(map[memoKey]*storage.Relation),
		flight:     make(map[memoKey]bool),
		correlated: make(map[algebra.Op]bool),
		batches:    make(map[*storage.Relation]*storage.Batch),
		budget:     opt.Budget,
	}
	sh.flightDone = sync.NewCond(&sh.mu)
	msize := opt.MorselSize
	switch {
	case msize <= 0:
		msize = DefaultMorselSize
	case msize < MinMorselSize:
		msize = MinMorselSize
	case msize > MaxMorselSize:
		msize = MaxMorselSize
	}
	return &Executor{
		cat:     cat,
		opt:     opt,
		planner: physical.NewPlanner(stats.New(cat)),
		sh:      sh,
		msize:   msize,
	}
}

// Stats returns the work counters accumulated so far.
func (ex *Executor) Stats() Stats { return ex.stats }

// Close releases the executor's charge against the shared DB-wide
// budget (Options.Budget). Idempotent and safe on executors without a
// budget; call it once the query's result has been consumed so the next
// query's allocation sees the freed headroom. The executor must not Run
// again after Close.
func (ex *Executor) Close() {
	if ex.sh.budget == nil {
		return
	}
	if ex.sh.closed.CompareAndSwap(false, true) {
		ex.sh.budget.charge(-ex.sh.resident.Load())
	}
}

// Plan lowers a logical plan through the executor's physical planner
// without running it — the physical tree Run would evaluate.
func (ex *Executor) Plan(plan algebra.Op) (physical.Node, error) {
	return ex.physFor(plan)
}

// NodeFor returns the lowered physical node for a logical operator, if
// the planner has seen it. After Run or Plan, every operator of the
// plan — including subquery blocks embedded in expressions — resolves,
// which is how EXPLAIN ANALYZE locates subquery plans to annotate.
func (ex *Executor) NodeFor(op algebra.Op) (physical.Node, bool) {
	ex.sh.mu.Lock()
	defer ex.sh.mu.Unlock()
	return ex.planner.NodeFor(op)
}

// Run evaluates a plan top-level (no outer bindings). Failures come
// back attributed to the failing physical node (*OpError); panics from
// operator evaluation — on the coordinator's stack here, on worker
// stacks in parMorsels — are recovered into *PanicError so one bad
// query cannot crash the process, and the abort latch drains any
// workers still running.
func (ex *Executor) Run(plan algebra.Op) (rel *storage.Relation, err error) {
	root, err := ex.physFor(plan)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if ex.opt.Timeout > 0 {
		ex.deadline = start.Add(ex.opt.Timeout)
	} else {
		ex.deadline = time.Time{}
	}
	if ex.opt.Metrics && ex.nm == nil {
		// The planner pre-lowered every reachable subplan, so NodeCount
		// sizes the shard for (almost) all IDs; metric() grows it for
		// the stray late-lowered node.
		ex.nm = make([]NodeMetrics, ex.planner.NodeCount())
	}
	ex.cur = nil
	ex.sh.clearAbort()
	defer func() {
		if r := recover(); r != nil {
			rel, err = nil, ex.fail(ex.recoverError(r))
		}
		ex.stats.Elapsed += time.Since(start)
		if p := ex.sh.peak.Load(); p > ex.stats.PeakTuples {
			ex.stats.PeakTuples = p
		}
	}()
	if ex.opt.Ctx != nil {
		if cerr := ex.opt.Ctx.Err(); cerr != nil {
			return nil, ex.fail(cerr)
		}
	}
	return ex.eval(root, nil)
}

// physFor resolves (or lowers on demand) the physical node for a
// logical operator. Subquery plans reachable from a lowered root are
// pre-lowered by the planner, so during evaluation this is a map hit;
// the lock makes the stray on-demand case (expressions evaluated via
// EvalExpr without a prior Run) safe too.
func (ex *Executor) physFor(op algebra.Op) (physical.Node, error) {
	ex.sh.mu.Lock()
	defer ex.sh.mu.Unlock()
	if n, ok := ex.planner.NodeFor(op); ok {
		return n, nil
	}
	return ex.planner.Lower(op)
}

// tick checks the abort latch and the deadline every few thousand
// inner-loop iterations.
func (ex *Executor) tick() error {
	ex.ticks++
	if ex.ticks&0xfff != 0 {
		return nil
	}
	return ex.slowTick()
}

func (ex *Executor) slowTick() error {
	if ex.sh.aborted.Load() {
		return ex.sh.abortError()
	}
	if ex.opt.Ctx != nil {
		if err := ex.opt.Ctx.Err(); err != nil {
			return ex.fail(err)
		}
	}
	if !ex.deadline.IsZero() && time.Now().After(ex.deadline) {
		return ex.fail(ErrTimeout)
	}
	return nil
}

// fail records the first fatal error and flips the abort latch every
// worker polls, so cancellation propagates across the pool and the
// query returns the sentinel, never a partial result.
func (ex *Executor) fail(err error) error {
	ex.sh.mu.Lock()
	defer ex.sh.mu.Unlock()
	if ex.sh.abortErr == nil {
		ex.sh.abortErr = err
	}
	ex.sh.aborted.Store(true)
	// Wake single-flight waiters: the flight they wait on may never
	// finish (its owner aborted or panicked past the cleanup), and
	// their wait loop re-checks the latch after every wakeup.
	ex.sh.flightDone.Broadcast()
	return ex.sh.abortErr
}

// inject visits the fault injector at a site, attributing the visit to
// node n (-1 when unattributed). Injection off is one branch.
func (ex *Executor) inject(site faultinject.Site, n physical.Node) error {
	if ex.opt.Fault == nil {
		return nil
	}
	id := -1
	if n != nil {
		id = n.ID()
	}
	return ex.opt.Fault.Visit(site, id)
}

func (sh *sharedState) abortError() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.abortErrLocked()
}

// abortErrLocked is abortError for callers already holding sh.mu (the
// single-flight wait loop cannot re-lock).
func (sh *sharedState) abortErrLocked() error {
	if sh.abortErr == nil {
		return errors.New("exec: aborted")
	}
	return sh.abortErr
}

func (sh *sharedState) clearAbort() {
	sh.mu.Lock()
	sh.abortErr = nil
	sh.mu.Unlock()
	sh.aborted.Store(false)
}

// checkBudget enforces the tuple budgets against rows pending inside a
// long-running operator, so a single quadratic join cannot exhaust
// memory before returning. The observed total also feeds the
// Stats.PeakTuples high-water mark, so the limits are auditable. Two
// bounds apply: the per-query Options.MaxTuples, and the DB-wide
// Options.Budget shared with concurrent queries — whichever trips
// first aborts this query with ErrMemoryLimit.
func (ex *Executor) checkBudget(pending int) error {
	pend := int64(pending)
	if ex.opt.MaxTuples > 0 || ex.sh.budget != nil {
		total := ex.sh.resident.Load() + pend
		ex.sh.raisePeak(total)
		if ex.opt.MaxTuples > 0 && total > ex.opt.MaxTuples {
			return ex.fail(ErrMemoryLimit)
		}
	}
	if b := ex.sh.budget; b != nil && b.over(pend) {
		return ex.fail(ErrMemoryLimit)
	}
	return nil
}

// isCorrelated caches algebra.Correlated per node.
func (ex *Executor) isCorrelated(op algebra.Op) bool {
	ex.sh.mu.Lock()
	if c, ok := ex.sh.correlated[op]; ok {
		ex.sh.mu.Unlock()
		return c
	}
	ex.sh.mu.Unlock()
	c := algebra.Correlated(op) // pure; computed outside the lock
	ex.sh.mu.Lock()
	ex.sh.correlated[op] = c
	ex.sh.mu.Unlock()
	return c
}

// cacheable reports whether the node's result is env-independent and
// memoization is allowed in the current context: at top level (env==nil)
// DAG sharing always requires the memo; under an environment the cache
// mode decides how much may be reused across outer tuples.
func (ex *Executor) cacheable(n physical.Node, env *Env) bool {
	if env == nil {
		return true
	}
	switch ex.opt.Cache {
	case CacheAll:
		return !ex.isCorrelated(n.Logical())
	case CacheScans:
		_, isScan := n.(*physical.Scan)
		return isScan
	default:
		return false
	}
}

// eval evaluates one node with memoization and, when enabled, per-node
// metrics: the input cardinality is credited to the consuming operator
// (ex.cur) on every return path, memo hit or not.
func (ex *Executor) eval(n physical.Node, env *Env) (*storage.Relation, error) {
	rel, err := ex.evalMemo(n, env)
	if err != nil {
		return nil, err
	}
	if ex.nm != nil && ex.cur != nil && ex.cur != n {
		ex.metric(ex.cur).RowsIn += int64(rel.Cardinality())
	}
	return rel, nil
}

// evalMemo evaluates one node with memoization. Concurrent first
// evaluations of one cacheable node (workers racing on an uncorrelated
// subplan) are deduplicated through a single-flight table: the first
// arrival evaluates, the rest wait and share — so the work done and the
// per-node counters are worker-count independent.
func (ex *Executor) evalMemo(n physical.Node, env *Env) (*storage.Relation, error) {
	if err := ex.tick(); err != nil {
		return nil, err
	}
	if ferr := ex.inject(faultinject.SiteOp, n); ferr != nil {
		return nil, wrapOp(n, ex.fail(ferr))
	}
	key := memoKey{n: n}
	if s, ok := n.(*physical.Stream); ok && !s.Fused() {
		// Streams delegate to the shared bypass node with a side tag, so
		// distinct Stream nodes over one bypass operator share results.
		key = memoKey{n: s.Source, pos: s.Positive, side: 1}
	}
	cacheable := ex.cacheable(n, env)
	owns := false
	if cacheable {
		ex.sh.mu.Lock()
		for {
			if rel, ok := ex.sh.memo[key]; ok {
				ex.sh.mu.Unlock()
				if ex.nm != nil {
					ex.metric(n).MemoHits++
				}
				return rel, nil
			}
			if ex.sh.aborted.Load() {
				// The flight owner may have aborted or panicked without
				// clearing the flight; fail() broadcast to get us here.
				err := ex.sh.abortErrLocked()
				ex.sh.mu.Unlock()
				return nil, err
			}
			if !ex.sh.flight[key] {
				break
			}
			// Another worker is evaluating this key; wait and re-check.
			// If that evaluation fails without latching the abort, the
			// loop exits with the flight cleared and this worker
			// re-evaluates, hitting the same error itself.
			ex.sh.flightDone.Wait()
		}
		ex.sh.flight[key] = true
		owns = true
		ex.sh.mu.Unlock()
	}

	parent := ex.cur
	ex.cur = n
	instrumented := ex.nm != nil || ex.opt.Tracer != nil
	var t0 time.Time
	if instrumented {
		if ex.opt.Tracer != nil {
			ex.opt.Tracer.OpOpen(n)
		}
		t0 = time.Now()
	}
	rel, err := ex.evalNode(n, env)
	ex.cur = parent
	if instrumented {
		d := time.Since(t0)
		var rows int64
		if err == nil {
			rows = int64(rel.Cardinality())
		}
		if ex.nm != nil && err == nil {
			m := ex.metric(n)
			m.Calls++
			m.RowsOut += rows
			m.WallNanos += int64(d)
		}
		if ex.opt.Tracer != nil {
			ex.opt.Tracer.OpClose(n, rows, d)
		}
	}
	if err == nil {
		ex.stats.OpEvals++
		ex.stats.TuplesOut += int64(rel.Cardinality())
		err = ex.checkBudget(rel.Cardinality())
	}
	if owns && err == nil {
		// The fill site fires before taking the lock so a panic-mode
		// fault cannot unwind while holding sh.mu.
		if ferr := ex.inject(faultinject.SiteMemoFill, n); ferr != nil {
			err = ex.fail(ferr)
		}
	}
	if owns {
		ex.sh.mu.Lock()
		if err == nil {
			if cached, dup := ex.sh.memo[key]; dup {
				// evalStream pre-stored this bypass side; converge on
				// the stored instance rather than pinning twice.
				rel = cached
			} else {
				ex.sh.memo[key] = rel
				ex.sh.pin(int64(rel.Cardinality()))
			}
		}
		delete(ex.sh.flight, key)
		ex.sh.flightDone.Broadcast()
		ex.sh.mu.Unlock()
	}
	if err != nil {
		// Attribute the failure to the innermost operator that saw it;
		// parent frames pass it through untouched.
		return nil, wrapOp(n, err)
	}
	return rel, nil
}

func (ex *Executor) evalNode(n physical.Node, env *Env) (*storage.Relation, error) {
	switch x := n.(type) {
	case *physical.Scan:
		return ex.evalScan(x)
	case *physical.Filter:
		if ex.useVec() && x.VecPred != nil {
			return ex.evalFilterVec(x, env)
		}
		return ex.evalFilter(x, env)
	case *physical.BypassFilter:
		// Reached only via Stream nodes; evaluating the bare node is a
		// plan bug.
		return nil, fmt.Errorf("exec: bypass selection must be consumed through Stream nodes")
	case *physical.BypassJoin:
		return nil, fmt.Errorf("exec: bypass join must be consumed through Stream nodes")
	case *physical.Stream:
		return ex.evalStream(x, env)
	case *physical.Project:
		if ex.useVec() {
			return ex.evalProjectVec(x, env)
		}
		return ex.evalProject(x, env)
	case *physical.Rename:
		return ex.evalRename(x, env)
	case *physical.Map:
		if ex.useVec() && x.VecExpr != nil {
			return ex.evalMapVec(x, env)
		}
		return ex.evalMap(x, env)
	case *physical.Number:
		return ex.evalNumber(x, env)
	case *physical.HashJoin:
		if ex.useVec() && x.Residual == nil {
			return ex.evalHashJoinVec(x, env)
		}
		return ex.evalHashJoin(x, env)
	case *physical.NLJoin:
		return ex.evalNLJoin(x, env)
	case *physical.OuterJoin:
		return ex.evalOuterJoin(x, env)
	case *physical.Group:
		return ex.evalGroup(x, env)
	case *physical.BinaryGroupHash:
		return ex.evalBinaryGroupHash(x, env)
	case *physical.BinaryGroupSort:
		return ex.evalBinaryGroupSorted(x, env)
	case *physical.BinaryGroupNL:
		return ex.evalBinaryGroupNL(x, env)
	case *physical.Union:
		return ex.evalConcat(x.L, x.R, x.Schema(), env)
	case *physical.Distinct:
		return ex.evalDistinct(x, env)
	case *physical.Sort:
		return ex.evalSort(x, env)
	case *physical.Limit:
		in, err := ex.eval(x.Child, env)
		if err != nil {
			return nil, err
		}
		if int64(len(in.Tuples)) <= x.N {
			return in, nil
		}
		return &storage.Relation{Schema: in.Schema, Tuples: in.Tuples[:x.N]}, nil
	default:
		return nil, fmt.Errorf("exec: unsupported physical operator %T", n)
	}
}

func (ex *Executor) evalScan(s *physical.Scan) (*storage.Relation, error) {
	tbl, err := ex.cat.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	if tbl.Rel.Schema.Len() != s.Schema().Len() {
		return nil, fmt.Errorf("exec: scan %s: stored arity %d vs plan arity %d",
			s.Table, tbl.Rel.Schema.Len(), s.Schema().Len())
	}
	if ex.useVec() {
		// The scan's output is the row heap the columnar batches are
		// built over; mark it as feeding the vectorized path.
		ex.creditVec(s)
	}
	// Share tuple storage; only the schema (qualification) differs.
	return &storage.Relation{Schema: s.Schema(), Tuples: tbl.Rel.Tuples}, nil
}

func (ex *Executor) evalFilter(f *physical.Filter, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(f.Child, env)
	if err != nil {
		return nil, err
	}
	chunks, err := parMorsels(ex, len(in.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			var out [][]types.Value
			for _, t := range in.Tuples[lo:hi] {
				if err := w.tick(); err != nil {
					return nil, err
				}
				keep, err := w.EvalPred(f.Pred, Bind(env, in.Schema, t))
				if err != nil {
					return nil, err
				}
				if keep.IsTrue() {
					out = append(out, t)
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(in.Schema)
	out.Tuples = concatChunks(chunks)
	return out, nil
}

func (ex *Executor) evalStream(s *physical.Stream, env *Env) (*storage.Relation, error) {
	switch src := s.Source.(type) {
	case *physical.BypassFilter:
		var pos, neg *storage.Relation
		var err error
		if ex.useVec() && src.VecPred != nil {
			pos, neg, err = ex.evalBypassFilterVec(src, env)
		} else {
			pos, neg, err = ex.evalBypassFilter(src, env)
		}
		if err != nil {
			return nil, err
		}
		// The bypass node itself is only ever evaluated through its
		// streams; credit the single σ± pass to it so EXPLAIN ANALYZE
		// shows the partition sizes.
		ex.creditSource(src, int64(pos.Cardinality()+neg.Cardinality()))
		// Cache both sides if permitted; eval() caches the requested one.
		if ex.cacheable(s, env) {
			ex.sh.mu.Lock()
			ex.sh.storeIfAbsent(memoKey{n: src, pos: true, side: 1}, pos)
			ex.sh.storeIfAbsent(memoKey{n: src, pos: false, side: 1}, neg)
			ex.sh.mu.Unlock()
		}
		if s.Positive {
			return pos, nil
		}
		return neg, nil
	case *physical.BypassJoin:
		var out *storage.Relation
		var err error
		if s.Positive {
			if ex.useVec() && len(src.LCols) > 0 && src.Residual == nil {
				out, err = ex.evalBypassJoinPosVec(src, env)
			} else {
				out, err = ex.evalBypassJoinPos(src, env)
			}
		} else {
			out, err = ex.evalBypassJoinNeg(src, s, env)
		}
		if err != nil {
			return nil, err
		}
		ex.creditSource(src, int64(out.Cardinality()))
		return out, nil
	default:
		return nil, fmt.Errorf("exec: Stream over non-bypass operator %T", s.Source)
	}
}

// creditSource records one evaluation on a bypass operator reached only
// through its Stream nodes (no-op when metrics are off).
func (ex *Executor) creditSource(n physical.Node, rows int64) {
	if ex.nm == nil {
		return
	}
	m := ex.metric(n)
	m.Calls++
	m.RowsOut += rows
}

// storeIfAbsent memoizes a relation unless the key is already present;
// the caller holds sh.mu.
func (sh *sharedState) storeIfAbsent(key memoKey, rel *storage.Relation) {
	if _, ok := sh.memo[key]; !ok {
		sh.memo[key] = rel
		sh.pin(int64(rel.Cardinality()))
	}
}

// evalBypassFilter partitions the input into (TRUE, not-TRUE) — the σ±
// of Fig. 1 — in a single pass over morsels.
func (ex *Executor) evalBypassFilter(s *physical.BypassFilter, env *Env) (pos, neg *storage.Relation, err error) {
	in, err := ex.eval(s.Child, env)
	if err != nil {
		return nil, nil, err
	}
	type split struct {
		pos, neg [][]types.Value
	}
	chunks, err := parMorsels(ex, len(in.Tuples), false,
		func(w *Executor, lo, hi int) (split, error) {
			var out split
			for _, t := range in.Tuples[lo:hi] {
				if err := w.tick(); err != nil {
					return split{}, err
				}
				keep, err := w.EvalPred(s.Pred, Bind(env, in.Schema, t))
				if err != nil {
					return split{}, err
				}
				if keep.IsTrue() {
					out.pos = append(out.pos, t)
				} else {
					out.neg = append(out.neg, t)
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, nil, err
	}
	pos = storage.NewRelation(in.Schema)
	neg = storage.NewRelation(in.Schema)
	for _, c := range chunks {
		pos.Tuples = append(pos.Tuples, c.pos...)
		neg.Tuples = append(neg.Tuples, c.neg...)
	}
	return pos, neg, nil
}

func (ex *Executor) evalProject(p *physical.Project, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(p.Child, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(p.Schema())
	out.Tuples = make([][]types.Value, len(in.Tuples))
	for i, t := range in.Tuples {
		row := make([]types.Value, len(p.Cols))
		for j, c := range p.Cols {
			row[j] = t[c]
		}
		out.Tuples[i] = row
	}
	return out, nil
}

func (ex *Executor) evalRename(r *physical.Rename, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(r.Child, env)
	if err != nil {
		return nil, err
	}
	return &storage.Relation{Schema: r.Schema(), Tuples: in.Tuples}, nil
}

func (ex *Executor) evalMap(m *physical.Map, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(m.Child, env)
	if err != nil {
		return nil, err
	}
	chunks, err := parMorsels(ex, len(in.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			out := make([][]types.Value, 0, hi-lo)
			for _, t := range in.Tuples[lo:hi] {
				if err := w.tick(); err != nil {
					return nil, err
				}
				v, err := w.EvalExpr(m.Expr, Bind(env, in.Schema, t))
				if err != nil {
					return nil, err
				}
				row := make([]types.Value, 0, len(t)+1)
				row = append(row, t...)
				row = append(row, v)
				out = append(out, row)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(m.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}

func (ex *Executor) evalNumber(n *physical.Number, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(n.Child, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(n.Schema())
	out.Tuples = make([][]types.Value, len(in.Tuples))
	for i, t := range in.Tuples {
		row := make([]types.Value, 0, len(t)+1)
		row = append(row, t...)
		row = append(row, types.NewInt(int64(i+1)))
		out.Tuples[i] = row
	}
	return out, nil
}

func (ex *Executor) evalConcat(lop, rop physical.Node, sch *storage.Schema, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(lop, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(rop, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(sch)
	out.Tuples = make([][]types.Value, 0, len(l.Tuples)+len(r.Tuples))
	out.Tuples = append(out.Tuples, l.Tuples...)
	out.Tuples = append(out.Tuples, r.Tuples...)
	return out, nil
}

func (ex *Executor) evalDistinct(d *physical.Distinct, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(d.Child, env)
	if err != nil {
		return nil, err
	}
	if ex.fanout(len(in.Tuples)) <= 1 {
		return in.Distinct(), nil
	}
	// Dedup each morsel locally, then merge in morsel order: the result
	// keeps first-seen order, identical to the sequential pass.
	chunks, err := parMorsels(ex, len(in.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			local := &storage.Relation{Schema: in.Schema, Tuples: in.Tuples[lo:hi]}
			return local.Distinct().Tuples, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(in.Schema)
	seen := make(map[uint64][][]types.Value, len(in.Tuples))
	for _, c := range chunks {
	next:
		for _, t := range c {
			h := types.HashTuple(t)
			for _, prev := range seen[h] {
				if types.TuplesIdentical(prev, t) {
					continue next
				}
			}
			seen[h] = append(seen[h], t)
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

func (ex *Executor) evalSort(s *physical.Sort, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(s.Child, env)
	if err != nil {
		return nil, err
	}
	out := in.ShallowClone() // sorting permutes the slice, not the rows
	out.SortBy(s.Cols, s.Desc)
	return out, nil
}

func concat(a, b []types.Value) []types.Value {
	row := make([]types.Value, 0, len(a)+len(b))
	row = append(row, a...)
	row = append(row, b...)
	return row
}

func concatChunks(chunks [][][]types.Value) [][]types.Value {
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	out := make([][]types.Value, 0, n)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}
