package exec

import (
	"math/rand"
	"testing"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/types"
)

// thetaFixture builds two single-column tables with random values
// including NULLs.
func thetaFixture(t testing.TB, seed int64, nl, nr int) (*catalog.Catalog, *algebra.Scan, *algebra.Scan) {
	t.Helper()
	cat := catalog.New()
	l, err := cat.Create("l", []catalog.Column{
		{Name: "x", Type: types.KindInt}, {Name: "w", Type: types.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cat.Create("rr", []catalog.Column{
		{Name: "y", Type: types.KindInt}, {Name: "v", Type: types.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	gen := func(tbl *catalog.Table, n int) {
		for i := 0; i < n; i++ {
			a := types.NewInt(int64(rng.Intn(20)))
			if rng.Intn(8) == 0 {
				a = types.Null()
			}
			b := types.NewInt(int64(rng.Intn(100)))
			if rng.Intn(10) == 0 {
				b = types.Null()
			}
			if err := tbl.Insert([]types.Value{a, b}); err != nil {
				t.Fatal(err)
			}
		}
	}
	gen(l, nl)
	gen(r, nr)
	return cat,
		algebra.NewScan("l", "l", l.Rel.Schema),
		algebra.NewScan("rr", "rr", r.Rel.Schema)
}

// nlForce rephrases a single inequality so the sorted path does not
// trigger (an AND of the inequality with TRUE is no longer a bare
// CmpExpr).
func nlForce(pred algebra.Expr) algebra.Expr {
	return algebra.And(pred, algebra.Const(types.NewBool(true)))
}

func TestSortedThetaGroupingMatchesNL(t *testing.T) {
	specs := []algebra.AggItem{
		{Out: "cnt", Spec: agg.Spec{Kind: agg.Count, Star: true}},
		{Out: "sum", Spec: agg.Spec{Kind: agg.Sum}, Arg: algebra.Col("rr.v")},
		{Out: "mn", Spec: agg.Spec{Kind: agg.Min}, Arg: algebra.Col("rr.v")},
		{Out: "mx", Spec: agg.Spec{Kind: agg.Max}, Arg: algebra.Col("rr.v")},
	}
	for _, op := range []types.CompareOp{types.LT, types.LE, types.GT, types.GE} {
		for seed := int64(0); seed < 3; seed++ {
			cat, l, r := thetaFixture(t, seed, 40, 60)
			pred := algebra.Cmp(op, algebra.Col("l.x"), algebra.Col("rr.y"))

			exSorted := New(cat, Options{Cache: CacheAll})
			sortedRel, err := exSorted.Run(algebra.NewBinaryGroup(l, r, pred, specs))
			if err != nil {
				t.Fatal(err)
			}
			if exSorted.Stats().SortedGroups != 1 {
				t.Fatalf("sorted path not taken for %v", op)
			}

			exNL := New(cat, Options{Cache: CacheAll})
			nlRel, err := exNL.Run(algebra.NewBinaryGroup(l, r, nlForce(pred), specs))
			if err != nil {
				t.Fatal(err)
			}
			if exNL.Stats().SortedGroups != 0 {
				t.Fatal("NL control unexpectedly used the sorted path")
			}

			a, b := sortedRel.Canonical(), nlRel.Canonical()
			if len(a) != len(b) {
				t.Fatalf("op %v seed %d: %d vs %d rows", op, seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("op %v seed %d row %d:\nsorted: %s\nnl:     %s", op, seed, i, a[i], b[i])
				}
			}
		}
	}
}

func TestSortedThetaGroupingFlippedOperands(t *testing.T) {
	cat, l, r := thetaFixture(t, 7, 30, 30)
	// rr.y > l.x ≡ l.x < rr.y: the executor must flip and still sort.
	pred := algebra.Cmp(types.GT, algebra.Col("rr.y"), algebra.Col("l.x"))
	specs := []algebra.AggItem{{Out: "cnt", Spec: agg.Spec{Kind: agg.Count, Star: true}}}
	ex := New(cat, Options{Cache: CacheAll})
	flipped, err := ex.Run(algebra.NewBinaryGroup(l, r, pred, specs))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats().SortedGroups != 1 {
		t.Fatal("flipped inequality must use the sorted path")
	}
	direct := algebra.Cmp(types.LT, algebra.Col("l.x"), algebra.Col("rr.y"))
	ex2 := New(cat, Options{Cache: CacheAll})
	want, err := ex2.Run(algebra.NewBinaryGroup(l, r, direct, specs))
	if err != nil {
		t.Fatal(err)
	}
	a, b := flipped.Canonical(), want.Canonical()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestSortedThetaGroupingSkipsDistinctAndAvg(t *testing.T) {
	cat, l, r := thetaFixture(t, 1, 10, 10)
	pred := algebra.Cmp(types.LT, algebra.Col("l.x"), algebra.Col("rr.y"))
	for _, spec := range []agg.Spec{
		{Kind: agg.Count, Distinct: true},
		{Kind: agg.Avg},
	} {
		ex := New(cat, Options{Cache: CacheAll})
		_, err := ex.Run(algebra.NewBinaryGroup(l, r, pred,
			[]algebra.AggItem{{Out: "g", Spec: spec, Arg: algebra.Col("rr.v")}}))
		if err != nil {
			t.Fatal(err)
		}
		if ex.Stats().SortedGroups != 0 {
			t.Errorf("%v must not use the sorted path", spec)
		}
	}
}

func BenchmarkBinaryGroupNL(b *testing.B) {
	cat, l, r := thetaFixture(b, 3, 1000, 1000)
	pred := nlForce(algebra.Cmp(types.LT, algebra.Col("l.x"), algebra.Col("rr.y")))
	specs := []algebra.AggItem{{Out: "cnt", Spec: agg.Spec{Kind: agg.Count, Star: true}}}
	plan := algebra.NewBinaryGroup(l, r, pred, specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cat, Options{Cache: CacheAll}).Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryGroupSorted(b *testing.B) {
	cat, l, r := thetaFixture(b, 3, 1000, 1000)
	pred := algebra.Cmp(types.LT, algebra.Col("l.x"), algebra.Col("rr.y"))
	specs := []algebra.AggItem{{Out: "cnt", Spec: agg.Spec{Kind: agg.Count, Star: true}}}
	plan := algebra.NewBinaryGroup(l, r, pred, specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cat, Options{Cache: CacheAll}).Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}
