package exec

import "sync/atomic"

// Budget is a DB-wide resident-tuple budget shared by every concurrent
// query of one database. Options.MaxTuples bounds a single query's
// footprint; a Budget bounds the sum: each executor charges the tuples
// it pins (memoized results, audited in-flight operator outputs)
// against the shared counter and releases its whole charge when the
// query finishes (Executor.Close). The query whose allocation crosses
// the limit aborts with ErrMemoryLimit — the same classified, retryable
// path as the per-query bound — so N concurrent heavy queries degrade
// into individual aborts instead of multiplying the process footprint.
type Budget struct {
	limit    int64
	resident atomic.Int64
	// peak is the high-water mark of resident since creation (or the
	// last ResetPeak) — the telemetry layer's saturation gauge.
	peak atomic.Int64
}

// NewBudget returns a budget allowing up to limit simultaneously
// resident tuples across all queries; limit <= 0 means unlimited (nil
// is also accepted everywhere a *Budget flows).
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Limit returns the configured bound (<= 0 means unlimited).
func (b *Budget) Limit() int64 { return b.limit }

// Resident returns the tuples currently charged by in-flight queries.
func (b *Budget) Resident() int64 { return b.resident.Load() }

// Peak returns the high-water mark of Resident since creation or the
// last ResetPeak. A nil budget reports zero.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// ResetPeak lowers the watermark to the current residency, so a
// monitoring loop can measure per-interval peaks. A nil budget is a
// no-op.
func (b *Budget) ResetPeak() {
	if b == nil {
		return
	}
	b.peak.Store(b.resident.Load())
}

// bumpPeak raises the watermark to r if it is above it.
func (b *Budget) bumpPeak(r int64) {
	for {
		p := b.peak.Load()
		if r <= p || b.peak.CompareAndSwap(p, r) {
			return
		}
	}
}

// charge adds n resident tuples (n may be negative on release).
func (b *Budget) charge(n int64) {
	r := b.resident.Add(n)
	if n > 0 {
		b.bumpPeak(r)
	}
}

// TryCharge reserves n resident tuples if the budget has room,
// reporting whether the reservation was taken. The result cache uses it
// to pin cached rows against the same pool live queries draw from: a
// reservation that would cross the limit is declined (the entry simply
// is not cached) instead of aborting anyone. A nil budget always admits.
func (b *Budget) TryCharge(n int64) bool {
	if b == nil {
		return true
	}
	for {
		cur := b.resident.Load()
		if b.limit > 0 && cur+n > b.limit {
			return false
		}
		if b.resident.CompareAndSwap(cur, cur+n) {
			if n > 0 {
				b.bumpPeak(cur + n)
			}
			return true
		}
	}
}

// Release returns n previously reserved tuples to the pool. A nil
// budget is a no-op.
func (b *Budget) Release(n int64) {
	if b == nil {
		return
	}
	b.resident.Add(-n)
}

// over reports whether adding pending tuples would exceed the limit.
func (b *Budget) over(pending int64) bool {
	return b.limit > 0 && b.resident.Load()+pending > b.limit
}
