package exec

import (
	"fmt"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// aggArgs evaluates the argument tuple for one aggregate item given the
// input row: the evaluated Arg expression, or for Star specs the row
// restricted to ArgAttrs (the whole row when ArgAttrs is empty).
func (ex *Executor) aggArgs(item algebra.AggItem, sch *storage.Schema,
	row []types.Value, env *Env) ([]types.Value, error) {
	if item.Spec.Star {
		if len(item.ArgAttrs) == 0 {
			return row, nil
		}
		idx, err := sch.Projection(item.ArgAttrs)
		if err != nil {
			return nil, err
		}
		out := make([]types.Value, len(idx))
		for i, c := range idx {
			out[i] = row[c]
		}
		return out, nil
	}
	v, err := ex.EvalExpr(item.Arg, Bind(env, sch, row))
	if err != nil {
		return nil, err
	}
	return []types.Value{v}, nil
}

// group is one bucket of the hash grouping.
type group struct {
	key  []types.Value
	accs []*agg.Acc
}

func newAccs(items []algebra.AggItem) []*agg.Acc {
	accs := make([]*agg.Acc, len(items))
	for i, it := range items {
		accs[i] = agg.NewAcc(it.Spec)
	}
	return accs
}

// evalGroupBy implements the unary grouping operator Γ: hash-based, with
// Identical key semantics (NULL groups with NULL). A Global grouping
// emits exactly one row even on empty input — the SQL scalar aggregate.
func (ex *Executor) evalGroupBy(g *algebra.GroupBy, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(g.Child, env)
	if err != nil {
		return nil, err
	}
	keyCols, err := in.Schema.Projection(g.Attrs)
	if err != nil {
		return nil, err
	}
	if len(g.Attrs) == 0 && !g.Global {
		return nil, fmt.Errorf("exec: grouping without attributes requires Global")
	}

	buckets := make(map[uint64][]*group)
	var order []*group // deterministic output order (first appearance)
	find := func(key []types.Value) *group {
		h := types.HashTuple(key)
		for _, grp := range buckets[h] {
			if types.TuplesIdentical(grp.key, key) {
				return grp
			}
		}
		grp := &group{key: append([]types.Value(nil), key...), accs: newAccs(g.Aggs)}
		buckets[h] = append(buckets[h], grp)
		order = append(order, grp)
		return grp
	}
	if g.Global {
		find(nil)
	}
	for _, t := range in.Tuples {
		if err := ex.tick(); err != nil {
			return nil, err
		}
		grp := find(keyOf(t, keyCols))
		for i, item := range g.Aggs {
			args, err := ex.aggArgs(item, in.Schema, t, env)
			if err != nil {
				return nil, err
			}
			grp.accs[i].Add(args)
		}
	}

	out := storage.NewRelation(g.Schema())
	out.Tuples = make([][]types.Value, 0, len(order))
	for _, grp := range order {
		row := make([]types.Value, 0, len(grp.key)+len(grp.accs))
		row = append(row, grp.key...)
		for _, a := range grp.accs {
			row = append(row, a.Result())
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// evalBinaryGroup implements the binary grouping operator Γ²: each left
// tuple is extended with aggregates over its matching right tuples, with
// f(∅) for empty match sets (no count bug by construction). Pure
// equality predicates use the hash algorithm of May & Moerkotte's
// main-memory binary grouping; anything else falls back to a nested
// loop.
func (ex *Executor) evalBinaryGroup(b *algebra.BinaryGroup, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(b.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(b.R, env)
	if err != nil {
		return nil, err
	}
	keys, residual := splitEquiJoin(b.Pred, l.Schema, r.Schema)
	out := storage.NewRelation(b.Schema())
	out.Tuples = make([][]types.Value, 0, len(l.Tuples))

	emit := func(lt []types.Value, accs []*agg.Acc) {
		row := make([]types.Value, 0, len(lt)+len(accs))
		row = append(row, lt...)
		for _, a := range accs {
			row = append(row, a.Result())
		}
		out.Tuples = append(out.Tuples, row)
	}

	if len(keys) > 0 && len(residual) == 0 {
		ex.stats.HashJoins++
		lcols := make([]int, len(keys))
		rcols := make([]int, len(keys))
		for i, k := range keys {
			lcols[i] = k.l
			rcols[i] = k.r
		}
		ht := buildHash(r, rcols)
		for _, lt := range l.Tuples {
			if err := ex.tick(); err != nil {
				return nil, err
			}
			accs := newAccs(b.Aggs)
			for _, ri := range ht.probe(keyOf(lt, lcols)) {
				rt := r.Tuples[ri]
				if !keysMatch(lt, lcols, rt, rcols) {
					continue
				}
				for i, item := range b.Aggs {
					args, err := ex.aggArgs(item, r.Schema, rt, env)
					if err != nil {
						return nil, err
					}
					accs[i].Add(args)
				}
			}
			emit(lt, accs)
		}
		return out, nil
	}

	// Single-inequality predicates with decomposable aggregates run
	// sort-based (May & Moerkotte): prefix/suffix aggregates over the
	// sorted right side, one binary search per left tuple.
	if lcol, rcol, cop, ok := thetaGroupable(b); ok {
		return ex.evalBinaryGroupSorted(b, l, r, lcol, rcol, cop, env)
	}

	ex.stats.NLJoins++
	joined := l.Schema.Concat(r.Schema)
	for _, lt := range l.Tuples {
		accs := newAccs(b.Aggs)
		for _, rt := range r.Tuples {
			if err := ex.tick(); err != nil {
				return nil, err
			}
			match := types.True
			if b.Pred != nil {
				match, err = ex.EvalPred(b.Pred, Bind(env, joined, concat(lt, rt)))
				if err != nil {
					return nil, err
				}
			}
			if !match.IsTrue() {
				continue
			}
			for i, item := range b.Aggs {
				args, err := ex.aggArgs(item, r.Schema, rt, env)
				if err != nil {
					return nil, err
				}
				accs[i].Add(args)
			}
		}
		emit(lt, accs)
	}
	return out, nil
}
