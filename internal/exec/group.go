package exec

import (
	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/physical"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// aggArgs evaluates the argument tuple for one aggregate item given the
// input row: the evaluated Arg expression, or for Star specs the row
// restricted to ArgAttrs (the whole row when ArgAttrs is empty).
func (ex *Executor) aggArgs(item algebra.AggItem, sch *storage.Schema,
	row []types.Value, env *Env) ([]types.Value, error) {
	if item.Spec.Star {
		if len(item.ArgAttrs) == 0 {
			return row, nil
		}
		idx, err := sch.Projection(item.ArgAttrs)
		if err != nil {
			return nil, err
		}
		out := make([]types.Value, len(idx))
		for i, c := range idx {
			out[i] = row[c]
		}
		return out, nil
	}
	v, err := ex.EvalExpr(item.Arg, Bind(env, sch, row))
	if err != nil {
		return nil, err
	}
	return []types.Value{v}, nil
}

// group is one bucket of the hash grouping.
type group struct {
	key  []types.Value
	accs []*agg.Acc
}

func newAccs(items []algebra.AggItem) []*agg.Acc {
	accs := make([]*agg.Acc, len(items))
	for i, it := range items {
		accs[i] = agg.NewAcc(it.Spec)
	}
	return accs
}

// groupTable is a hash grouping with deterministic first-appearance
// output order and Identical key semantics (NULL groups with NULL).
type groupTable struct {
	buckets map[uint64][]*group
	order   []*group
}

func newGroupTable() *groupTable {
	return &groupTable{buckets: make(map[uint64][]*group)}
}

func (gt *groupTable) find(key []types.Value, items []algebra.AggItem) *group {
	h := types.HashTuple(key)
	for _, grp := range gt.buckets[h] {
		if types.TuplesIdentical(grp.key, key) {
			return grp
		}
	}
	grp := &group{key: append([]types.Value(nil), key...), accs: newAccs(items)}
	gt.buckets[h] = append(gt.buckets[h], grp)
	gt.order = append(gt.order, grp)
	return grp
}

// evalGroup implements the unary grouping operator Γ. Each morsel builds
// a private groupTable; the partials are merged in morsel order, so the
// merged discovery order equals the sequential first-appearance order
// and aggregate folds see their inputs in the same order regardless of
// the worker count (forceChunks pins the chunk boundaries to the input
// size). A Global grouping emits exactly one row even on empty input —
// the SQL scalar aggregate.
func (ex *Executor) evalGroup(g *physical.Group, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(g.Child, env)
	if err != nil {
		return nil, err
	}
	chunks, err := parMorsels(ex, len(in.Tuples), true,
		func(w *Executor, lo, hi int) (*groupTable, error) {
			gt := newGroupTable()
			for _, t := range in.Tuples[lo:hi] {
				if err := w.tick(); err != nil {
					return nil, err
				}
				grp := gt.find(keyOf(t, g.KeyCols), g.Aggs)
				for i, item := range g.Aggs {
					args, err := w.aggArgs(item, in.Schema, t, env)
					if err != nil {
						return nil, err
					}
					grp.accs[i].Add(args)
				}
			}
			return gt, nil
		})
	if err != nil {
		return nil, err
	}
	merged := chunks[0]
	for _, gt := range chunks[1:] {
		for _, grp := range gt.order {
			dst := merged.find(grp.key, g.Aggs)
			for i := range dst.accs {
				dst.accs[i].Merge(grp.accs[i])
			}
		}
	}
	if g.Global && len(merged.order) == 0 {
		merged.find(nil, g.Aggs)
	}

	out := storage.NewRelation(g.Schema())
	out.Tuples = make([][]types.Value, 0, len(merged.order))
	for _, grp := range merged.order {
		row := make([]types.Value, 0, len(grp.key)+len(grp.accs))
		row = append(row, grp.key...)
		for _, a := range grp.accs {
			row = append(row, a.Result())
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// binaryGroupRow extends a left tuple with the aggregate results.
func binaryGroupRow(lt []types.Value, accs []*agg.Acc) []types.Value {
	row := make([]types.Value, 0, len(lt)+len(accs))
	row = append(row, lt...)
	for _, a := range accs {
		row = append(row, a.Result())
	}
	return row
}

// evalBinaryGroupHash is Γ² over a pure equality predicate: the hash
// algorithm of May & Moerkotte's main-memory binary grouping. Each left
// tuple owns its accumulators, so morsels over the left side are
// independent and the per-row aggregate folds see right tuples in
// bucket (ascending index) order regardless of the worker count.
func (ex *Executor) evalBinaryGroupHash(b *physical.BinaryGroupHash, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(b.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(b.R, env)
	if err != nil {
		return nil, err
	}
	ex.stats.HashJoins++
	ht, err := ex.buildHashTable(r, b.RCols)
	if err != nil {
		return nil, err
	}
	chunks, err := parMorsels(ex, len(l.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			out := make([][]types.Value, 0, hi-lo)
			for _, lt := range l.Tuples[lo:hi] {
				if err := w.tick(); err != nil {
					return nil, err
				}
				accs := newAccs(b.Aggs)
				for _, ri := range ht.probe(keyOf(lt, b.LCols)) {
					rt := r.Tuples[ri]
					if !keysMatch(lt, b.LCols, rt, b.RCols) {
						continue
					}
					for i, item := range b.Aggs {
						args, err := w.aggArgs(item, r.Schema, rt, env)
						if err != nil {
							return nil, err
						}
						accs[i].Add(args)
					}
				}
				out = append(out, binaryGroupRow(lt, accs))
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(b.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}

// evalBinaryGroupNL is the Γ² fallback for arbitrary predicates: each
// left tuple aggregates over every matching right tuple, with f(∅) for
// empty match sets (no count bug by construction).
func (ex *Executor) evalBinaryGroupNL(b *physical.BinaryGroupNL, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(b.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(b.R, env)
	if err != nil {
		return nil, err
	}
	ex.stats.NLJoins++
	joined := l.Schema.Concat(r.Schema)
	chunks, err := parMorsels(ex, len(l.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			out := make([][]types.Value, 0, hi-lo)
			for _, lt := range l.Tuples[lo:hi] {
				accs := newAccs(b.Aggs)
				for _, rt := range r.Tuples {
					if err := w.tick(); err != nil {
						return nil, err
					}
					match := types.True
					if b.Pred != nil {
						var err error
						match, err = w.EvalPred(b.Pred, Bind(env, joined, concat(lt, rt)))
						if err != nil {
							return nil, err
						}
					}
					if !match.IsTrue() {
						continue
					}
					for i, item := range b.Aggs {
						args, err := w.aggArgs(item, r.Schema, rt, env)
						if err != nil {
							return nil, err
						}
						accs[i].Add(args)
					}
				}
				out = append(out, binaryGroupRow(lt, accs))
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(b.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}
