package exec

import (
	"disqo/internal/faultinject"
	"disqo/internal/physical"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// Path selects the execution substrate. The row path interprets plans
// tuple-at-a-time and is the engine's correctness oracle; the vector
// path runs eligible operators column-at-a-time over storage.Batch
// vectors with per-node fallback to the row interpreter. Both paths are
// byte-identical in output: vectorized operators emit selection vectors
// over the same row heap the interpreter walks, in the same order.
type Path uint8

const (
	// PathRow is tuple-at-a-time interpretation (the default zero
	// value, so embedded uses of the executor stay on the oracle).
	PathRow Path = iota
	// PathVector is batch-at-a-time vectorized evaluation for eligible
	// nodes (compiled predicates/scalars, bypass σ± forks, hash-join
	// probes, projections), row interpretation for the rest.
	PathVector
)

// String names the path the way flags and EXPLAIN spell it.
func (p Path) String() string {
	if p == PathVector {
		return "vector"
	}
	return "row"
}

// ParsePath parses a -path flag value.
func ParsePath(s string) (Path, bool) {
	switch s {
	case "row":
		return PathRow, true
	case "vector":
		return PathVector, true
	default:
		return PathRow, false
	}
}

func (ex *Executor) useVec() bool { return ex.opt.Path == PathVector }

// batchFor returns the shared columnar view of a relation, creating it
// on first use. Sharing by row-heap identity means canonical plans that
// re-run a predicate over one memoized input per outer tuple convert
// rows to columns once, not per binding.
func (ex *Executor) batchFor(rel *storage.Relation) *storage.Batch {
	ex.sh.mu.Lock()
	b := ex.sh.batches[rel]
	if b == nil {
		b = storage.NewBatch(rel)
		ex.sh.batches[rel] = b
	}
	ex.sh.mu.Unlock()
	return b
}

// creditVec marks one vectorized evaluation of node n. Credited by the
// coordinator of the kernel (once per Call), so the counter is
// worker-count independent like Calls.
func (ex *Executor) creditVec(n physical.Node) {
	if ex.nm != nil {
		ex.metric(n).VecCalls++
	}
}

// vecEnter is the common kernel prologue: the fault injector's vec site
// fires (latching the abort so cancellation semantics match SiteOp),
// the evaluation is credited, and the predicate's columns are
// materialized by the coordinator so morsel workers only take the
// wait-free column loads.
func (ex *Executor) vecEnter(n physical.Node, in *storage.Relation, cols []int) (*storage.Batch, error) {
	if ferr := ex.inject(faultinject.SiteVec, n); ferr != nil {
		return nil, ex.fail(ferr)
	}
	ex.creditVec(n)
	b := ex.batchFor(in)
	b.Materialize(cols)
	return b, nil
}

// gatherChunks assembles per-morsel selection vectors into a relation
// sharing the selected rows with the input (no copying).
func gatherChunks(in *storage.Relation, chunks [][]int32) *storage.Relation {
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	out := storage.NewRelation(in.Schema)
	out.Tuples = make([][]types.Value, 0, n)
	for _, c := range chunks {
		for _, i := range c {
			out.Tuples = append(out.Tuples, in.Tuples[i])
		}
	}
	return out
}

// evalFilterVec is σ over a compiled predicate: one Pred.Eval per
// morsel produces the morsel's truth vector, TRUE rows become the
// selection vector, and the output gathers the selected row pointers in
// input order — exactly the rows and order the interpreter keeps.
func (ex *Executor) evalFilterVec(f *physical.Filter, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(f.Child, env)
	if err != nil {
		return nil, err
	}
	b, err := ex.vecEnter(f, in, f.VecPred.Cols())
	if err != nil {
		return nil, err
	}
	chunks, err := parMorsels(ex, len(in.Tuples), false,
		func(w *Executor, lo, hi int) ([]int32, error) {
			res, cmps, err := f.VecPred.EvalMode(b, lo, hi, w.opt.Nulls)
			w.stats.Comparisons += cmps
			if err != nil {
				return nil, err
			}
			var keep []int32
			for i, t := range res {
				if t.IsTrue() {
					keep = append(keep, int32(lo+i))
				}
			}
			return keep, nil
		})
	if err != nil {
		return nil, err
	}
	return gatherChunks(in, chunks), nil
}

// evalBypassFilterVec is the vectorized σ±: one predicate pass forks
// the batch into positive (TRUE) and negative (not-TRUE) selection
// vectors; both outputs share the input's rows, so the fork copies
// nothing and matches the row-path partition byte for byte.
func (ex *Executor) evalBypassFilterVec(s *physical.BypassFilter, env *Env) (pos, neg *storage.Relation, err error) {
	in, err := ex.eval(s.Child, env)
	if err != nil {
		return nil, nil, err
	}
	b, err := ex.vecEnter(s, in, s.VecPred.Cols())
	if err != nil {
		return nil, nil, err
	}
	type split struct {
		pos, neg []int32
	}
	chunks, err := parMorsels(ex, len(in.Tuples), false,
		func(w *Executor, lo, hi int) (split, error) {
			res, cmps, err := s.VecPred.EvalMode(b, lo, hi, w.opt.Nulls)
			w.stats.Comparisons += cmps
			if err != nil {
				return split{}, err
			}
			var out split
			for i, t := range res {
				if t.IsTrue() {
					out.pos = append(out.pos, int32(lo+i))
				} else {
					out.neg = append(out.neg, int32(lo+i))
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, nil, err
	}
	posSel := make([][]int32, len(chunks))
	negSel := make([][]int32, len(chunks))
	for i, c := range chunks {
		posSel[i] = c.pos
		negSel[i] = c.neg
	}
	return gatherChunks(in, posSel), gatherChunks(in, negSel), nil
}

// evalProjectVec rebuilds output rows from column vectors; positional
// projection is always eligible.
func (ex *Executor) evalProjectVec(p *physical.Project, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(p.Child, env)
	if err != nil {
		return nil, err
	}
	b, err := ex.vecEnter(p, in, p.Cols)
	if err != nil {
		return nil, err
	}
	chunks, err := parMorsels(ex, len(in.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			cvs := make([]*storage.ColVec, len(p.Cols))
			for j, c := range p.Cols {
				cvs[j] = b.Col(c)
			}
			out := make([][]types.Value, 0, hi-lo)
			for i := lo; i < hi; i++ {
				row := make([]types.Value, len(p.Cols))
				for j, cv := range cvs {
					row[j] = cv.Value(i)
				}
				out = append(out, row)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(p.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}

// evalMapVec extends each row with a compiled scalar evaluated
// column-at-a-time.
func (ex *Executor) evalMapVec(m *physical.Map, env *Env) (*storage.Relation, error) {
	in, err := ex.eval(m.Child, env)
	if err != nil {
		return nil, err
	}
	b, err := ex.vecEnter(m, in, m.VecExpr.Cols())
	if err != nil {
		return nil, err
	}
	chunks, err := parMorsels(ex, len(in.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			vals, cmps, err := m.VecExpr.EvalMode(b, lo, hi, w.opt.Nulls)
			w.stats.Comparisons += cmps
			if err != nil {
				return nil, err
			}
			out := make([][]types.Value, 0, hi-lo)
			for i := lo; i < hi; i++ {
				t := in.Tuples[i]
				row := make([]types.Value, 0, len(t)+1)
				row = append(row, t...)
				row = append(row, vals[i-lo])
				out = append(out, row)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(m.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}

// probeKeys reads a morsel's probe keys straight from the column
// vectors into a reused buffer — the vectorized replacement for the
// per-row keyOf allocation of the interpreted probe loop.
type probeKeys struct {
	cvs []*storage.ColVec
	key []types.Value
}

func newProbeKeys(b *storage.Batch, cols []int) *probeKeys {
	pk := &probeKeys{cvs: make([]*storage.ColVec, len(cols)), key: make([]types.Value, len(cols))}
	for j, c := range cols {
		pk.cvs[j] = b.Col(c)
	}
	return pk
}

// at fills the key buffer for row i; ok is false when any key column is
// NULL (SQL equality can never match it).
func (pk *probeKeys) at(i int) (key []types.Value, ok bool) {
	for j, cv := range pk.cvs {
		v := cv.Value(i)
		if v.IsNull() {
			return nil, false
		}
		pk.key[j] = v
	}
	return pk.key, true
}

// evalHashJoinVec vectorizes the probe side of an equi-join without
// residual: build is unchanged (shared with the row path), probing
// reads keys from the left batch's columns. Match order — left tuples
// in input order, bucket candidates in ascending build order — is the
// interpreter's, so output bytes are identical.
func (ex *Executor) evalHashJoinVec(j *physical.HashJoin, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	ex.stats.HashJoins++
	ht, err := ex.buildHashTable(r, j.RCols)
	if err != nil {
		return nil, err
	}
	b, err := ex.vecEnter(j, l, j.LCols)
	if err != nil {
		return nil, err
	}
	emitPairs := j.Mode == physical.JoinInner
	chunks, err := parMorsels(ex, len(l.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			pk := newProbeKeys(b, j.LCols)
			var out [][]types.Value
			for i := lo; i < hi; i++ {
				if err := w.tick(); err != nil {
					return nil, err
				}
				lt := l.Tuples[i]
				matched := false
				if key, ok := pk.at(i); ok {
					for _, ri := range ht.buckets[types.HashTuple(key)] {
						rt := r.Tuples[ri]
						if !keysMatch(lt, j.LCols, rt, j.RCols) {
							continue // hash collision
						}
						matched = true
						if emitPairs {
							out = append(out, concat(lt, rt))
						} else {
							break
						}
					}
				}
				switch j.Mode {
				case physical.JoinSemi:
					if matched {
						out = append(out, lt)
					}
				case physical.JoinAnti:
					if !matched {
						out = append(out, lt)
					}
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(j.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}

// evalBypassJoinPosVec is the vectorized positive stream of ⋈± when
// the planner found equality keys and no residual: the hash branch of
// evalBypassJoinPos with the probe keys read from columns.
func (ex *Executor) evalBypassJoinPosVec(j *physical.BypassJoin, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	ex.stats.HashJoins++
	ht, err := ex.buildHashTable(r, j.RCols)
	if err != nil {
		return nil, err
	}
	b, err := ex.vecEnter(j, l, j.LCols)
	if err != nil {
		return nil, err
	}
	chunks, err := parMorsels(ex, len(l.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			pk := newProbeKeys(b, j.LCols)
			var part [][]types.Value
			for i := lo; i < hi; i++ {
				if err := w.tick(); err != nil {
					return nil, err
				}
				lt := l.Tuples[i]
				key, ok := pk.at(i)
				if !ok {
					continue
				}
				for _, ri := range ht.buckets[types.HashTuple(key)] {
					rt := r.Tuples[ri]
					if !keysMatch(lt, j.LCols, rt, j.RCols) {
						continue
					}
					part = append(part, concat(lt, rt))
				}
			}
			return part, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(j.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}
