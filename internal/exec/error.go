package exec

import (
	"errors"
	"fmt"
	"runtime/debug"

	"disqo/internal/physical"
)

// OpError attributes an executor failure to a physical plan node. The
// NodeID is the planner-assigned dense ID printed by EXPLAIN ANALYZE,
// so an error can be matched to the annotated plan tree. Errors are
// wrapped exactly once, at the innermost operator that observed them,
// so the attribution survives propagation through parent operators.
type OpError struct {
	NodeID int    // planner-assigned dense node ID
	Op     string // the node's Label at failure time
	Err    error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("exec: node %d (%s): %v", e.NodeID, e.Op, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// PanicError is a panic recovered inside the executor — from expression
// evaluation, aggregation, storage, or an injected fault — converted to
// an error so a bad tuple or a bug in one operator aborts one query
// instead of the process.
type PanicError struct {
	Val   any    // the recovered panic value
	Stack []byte // goroutine stack captured at the recovery point
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: recovered panic: %v", e.Val)
}

// Unwrap exposes panic values that are themselves errors (an injected
// fault, an error thrown through panic) to errors.Is / errors.As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Val.(error); ok {
		return err
	}
	return nil
}

// wrapOp attributes err to node n unless some inner operator already
// claimed it — the innermost attribution is the useful one.
func wrapOp(n physical.Node, err error) error {
	if n == nil {
		return err
	}
	var oe *OpError
	if errors.As(err, &oe) {
		return err
	}
	return &OpError{NodeID: n.ID(), Op: n.Label(), Err: err}
}

// recoverError converts a recovered panic value into an error
// attributed to the operator this executor was evaluating when the
// panic unwound. Never returns nil.
func (ex *Executor) recoverError(r any) error {
	return wrapOp(ex.cur, &PanicError{Val: r, Stack: debug.Stack()})
}
