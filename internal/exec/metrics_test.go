package exec

import (
	"sync"
	"testing"
	"time"

	"disqo/internal/physical"
)

// Tests for the per-node metrics shards and the tracer hooks. The
// determinism tests mirror the Stats ones: every counter except
// WallNanos must be byte-identical for any worker count, because worker
// shards merge by summing monotone counters and morsel accounting is
// derived from input size alone. `go test -race` exercises the shard
// isolation.

// zeroWall clears the wall-clock field, the only nondeterministic one.
func zeroWall(nm []NodeMetrics) []NodeMetrics {
	for i := range nm {
		nm[i].WallNanos = 0
	}
	return nm
}

func TestNodeMetricsWorkerCountIndependent(t *testing.T) {
	cat := bigCatalog(t, 3000)
	plan := parallelPlan(t, cat)
	ex1 := New(cat, Options{Cache: CacheAll, Workers: 1, Metrics: true})
	if _, err := ex1.Run(plan); err != nil {
		t.Fatal(err)
	}
	base := zeroWall(ex1.NodeMetrics())
	if len(base) == 0 {
		t.Fatal("Metrics on but no per-node counters collected")
	}
	for _, workers := range []int{2, 4, 8} {
		ex := New(cat, Options{Cache: CacheAll, Workers: workers, Metrics: true})
		if _, err := ex.Run(plan); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := zeroWall(ex.NodeMetrics())
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d metric slots, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("workers=%d node #%d metrics differ:\n1 worker: %+v\n%d workers: %+v",
					workers, i, base[i], workers, got[i])
			}
		}
	}
}

func TestNodeMetricsContent(t *testing.T) {
	cat := bigCatalog(t, 3000)
	plan := parallelPlan(t, cat)
	ex := New(cat, Options{Cache: CacheAll, Workers: 4, Metrics: true})
	rel, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	root, err := ex.Plan(plan)
	if err != nil {
		t.Fatal(err)
	}
	nm := ex.NodeMetrics()
	rm := nm[root.ID()]
	if rm.Calls != 1 {
		t.Errorf("root Calls = %d, want 1", rm.Calls)
	}
	if rm.RowsOut != int64(rel.Cardinality()) {
		t.Errorf("root RowsOut = %d, want %d", rm.RowsOut, rel.Cardinality())
	}
	// The grouping consumes the filtered join output, so its input
	// morsel count is derived from that cardinality.
	var join physical.Node
	physical.Walk(root, func(n physical.Node) bool {
		if _, ok := n.(*physical.HashJoin); ok {
			join = n
		}
		return true
	})
	if join == nil {
		t.Fatal("no hash join in the physical plan")
	}
	jm := nm[join.ID()]
	if jm.HashBuildRows != 3000 {
		t.Errorf("join HashBuildRows = %d, want 3000 (build side)", jm.HashBuildRows)
	}
	if jm.Morsels == 0 {
		t.Error("join processed no morsels despite a 3000-tuple probe input")
	}
	if jm.RowsIn == 0 {
		t.Error("join credited no input rows")
	}
}

func TestNodeMetricsOffByDefault(t *testing.T) {
	cat := bigCatalog(t, 3000)
	ex := New(cat, Options{Cache: CacheAll, Workers: 4})
	if _, err := ex.Run(parallelPlan(t, cat)); err != nil {
		t.Fatal(err)
	}
	if nm := ex.NodeMetrics(); nm != nil {
		t.Errorf("NodeMetrics without Options.Metrics = %d slots, want nil", len(nm))
	}
}

func TestStatsGauges(t *testing.T) {
	cat := bigCatalog(t, 3000)
	ex := New(cat, Options{Cache: CacheAll, Workers: 4})
	rel, err := ex.Run(parallelPlan(t, cat))
	if err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.Elapsed <= 0 {
		t.Error("Stats.Elapsed not recorded")
	}
	if st.PeakTuples < int64(rel.Cardinality()) {
		t.Errorf("PeakTuples = %d, below the result cardinality %d",
			st.PeakTuples, rel.Cardinality())
	}
}

func TestStatsMergeGauges(t *testing.T) {
	a := Stats{TuplesOut: 10, PeakTuples: 500, Elapsed: 2 * time.Second}
	b := Stats{TuplesOut: 7, PeakTuples: 900, Elapsed: time.Second}
	a.merge(&b)
	if a.TuplesOut != 17 {
		t.Errorf("TuplesOut = %d, want 17 (counters sum)", a.TuplesOut)
	}
	if a.PeakTuples != 900 {
		t.Errorf("PeakTuples = %d, want 900 (gauges take the max)", a.PeakTuples)
	}
	if a.Elapsed != 2*time.Second {
		t.Errorf("Elapsed = %v, want 2s (gauges take the max)", a.Elapsed)
	}
}

// recordingTracer counts span events under a mutex; morsel workers emit
// concurrently.
type recordingTracer struct {
	mu      sync.Mutex
	opens   int
	closes  int
	morsels int
	rows    int64
}

func (r *recordingTracer) OpOpen(physical.Node) {
	r.mu.Lock()
	r.opens++
	r.mu.Unlock()
}

func (r *recordingTracer) OpMorsel(_ physical.Node, lo, hi int) {
	r.mu.Lock()
	r.morsels++
	r.mu.Unlock()
}

func (r *recordingTracer) OpClose(_ physical.Node, rows int64, _ time.Duration) {
	r.mu.Lock()
	r.closes++
	r.rows += rows
	r.mu.Unlock()
}

func TestTracerSpans(t *testing.T) {
	cat := bigCatalog(t, 3000)
	plan := parallelPlan(t, cat)
	tr := &recordingTracer{}
	ex := New(cat, Options{Cache: CacheAll, Workers: 4, Tracer: tr})
	if _, err := ex.Run(plan); err != nil {
		t.Fatal(err)
	}
	if tr.opens == 0 {
		t.Fatal("tracer saw no operator spans")
	}
	if tr.opens != tr.closes {
		t.Errorf("unbalanced spans: %d opens, %d closes", tr.opens, tr.closes)
	}
	if tr.morsels == 0 {
		t.Error("tracer saw no morsel events despite parallel-sized input")
	}
	if tr.rows == 0 {
		t.Error("tracer saw no output rows")
	}
}
