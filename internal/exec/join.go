package exec

import (
	"sync/atomic"

	"disqo/internal/algebra"
	"disqo/internal/physical"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// hashTable buckets right-side tuple indices by key hash. Tuples with any
// NULL key column are omitted: SQL equality can never match them.
type hashTable struct {
	buckets map[uint64][]int
	keyCols []int
}

// buildHashTable hashes the build side. Key hashing is spread over
// morsels; bucket insertion stays sequential in index order so each
// bucket lists candidates in ascending tuple order regardless of the
// worker count (probe output order depends on it).
func (ex *Executor) buildHashTable(rel *storage.Relation, keyCols []int) (*hashTable, error) {
	ex.creditHashBuild(len(rel.Tuples))
	type hashed struct {
		h  uint64
		ok bool
	}
	chunks, err := parMorsels(ex, len(rel.Tuples), false,
		func(w *Executor, lo, hi int) ([]hashed, error) {
			out := make([]hashed, 0, hi-lo)
			for _, t := range rel.Tuples[lo:hi] {
				if err := w.tick(); err != nil {
					return nil, err
				}
				hk := hashed{ok: true}
				key := make([]types.Value, len(keyCols))
				for j, c := range keyCols {
					if t[c].IsNull() {
						hk.ok = false
						break
					}
					key[j] = t[c]
				}
				if hk.ok {
					hk.h = types.HashTuple(key)
				}
				out = append(out, hk)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	ht := &hashTable{buckets: make(map[uint64][]int, len(rel.Tuples)), keyCols: keyCols}
	i := 0
	for _, c := range chunks {
		for _, hk := range c {
			if hk.ok {
				ht.buckets[hk.h] = append(ht.buckets[hk.h], i)
			}
			i++
		}
	}
	return ht, nil
}

// probe returns candidate right-tuple indices for the given key values;
// the caller re-verifies equality (hash collisions).
func (ht *hashTable) probe(key []types.Value) []int {
	for _, v := range key {
		if v.IsNull() {
			return nil
		}
	}
	return ht.buckets[types.HashTuple(key)]
}

func keyOf(t []types.Value, cols []int) []types.Value {
	key := make([]types.Value, len(cols))
	for i, c := range cols {
		key[i] = t[c]
	}
	return key
}

func keysMatch(lt []types.Value, lcols []int, rt []types.Value, rcols []int) bool {
	for i := range lcols {
		if !types.Equal(lt[lcols[i]], rt[rcols[i]]) {
			return false
		}
	}
	return true
}

// evalHashJoin probes a hash table built on the right input, in morsels
// over the left. Semi/anti modes emit the left tuple on (no) match and
// stop probing at the first qualifying pair.
func (ex *Executor) evalHashJoin(j *physical.HashJoin, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	ex.stats.HashJoins++
	ht, err := ex.buildHashTable(r, j.RCols)
	if err != nil {
		return nil, err
	}
	joined := l.Schema.Concat(r.Schema)
	emitPairs := j.Mode == physical.JoinInner
	chunks, err := parMorsels(ex, len(l.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			var out [][]types.Value
			for _, lt := range l.Tuples[lo:hi] {
				if err := w.tick(); err != nil {
					return nil, err
				}
				matched := false
				for _, ri := range ht.probe(keyOf(lt, j.LCols)) {
					rt := r.Tuples[ri]
					if !keysMatch(lt, j.LCols, rt, j.RCols) {
						continue // hash collision
					}
					var row []types.Value
					if emitPairs || j.Residual != nil {
						row = concat(lt, rt)
					}
					if j.Residual != nil {
						ok, err := w.EvalPred(j.Residual, Bind(env, joined, row))
						if err != nil {
							return nil, err
						}
						if !ok.IsTrue() {
							continue
						}
					}
					matched = true
					if emitPairs {
						out = append(out, row)
					} else {
						break
					}
				}
				switch j.Mode {
				case physical.JoinSemi:
					if matched {
						out = append(out, lt)
					}
				case physical.JoinAnti:
					if !matched {
						out = append(out, lt)
					}
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(j.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}

// evalNLJoin enumerates all pairs, in morsels over the left input. A
// nil predicate is a cross product (inner mode only) and — matching the
// bookkeeping of the logical executor — is not counted as an NL join.
func (ex *Executor) evalNLJoin(j *physical.NLJoin, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	if j.Pred != nil {
		ex.stats.NLJoins++
	}
	joined := l.Schema.Concat(r.Schema)
	emitPairs := j.Mode == physical.JoinInner
	var pending atomic.Int64 // operator-wide output size for the budget
	chunks, err := parMorsels(ex, len(l.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			var out [][]types.Value
			for _, lt := range l.Tuples[lo:hi] {
				if err := w.checkBudget(int(pending.Load())); err != nil {
					return nil, err
				}
				matched := false
				for _, rt := range r.Tuples {
					if err := w.tick(); err != nil {
						return nil, err
					}
					row := concat(lt, rt)
					ok := types.True
					if j.Pred != nil {
						var err error
						ok, err = w.EvalPred(j.Pred, Bind(env, joined, row))
						if err != nil {
							return nil, err
						}
					}
					if !ok.IsTrue() {
						continue
					}
					matched = true
					if emitPairs {
						out = append(out, row)
						pending.Add(1)
					} else {
						break // semi/anti need only existence
					}
				}
				switch j.Mode {
				case physical.JoinSemi:
					if matched {
						out = append(out, lt)
					}
				case physical.JoinAnti:
					if !matched {
						out = append(out, lt)
					}
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(j.Schema())
	out.Tuples = concatChunks(chunks)
	return out, nil
}

// evalOuterJoin evaluates ⟕ with the paper's g:f(∅) defaults: unmatched
// left tuples are padded with j.Pad (NULLs except the Default
// attributes, precomputed by the planner).
func (ex *Executor) evalOuterJoin(j *physical.OuterJoin, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	joined := j.Schema()

	var ht *hashTable
	if j.Hash {
		ex.stats.HashJoins++
		if ht, err = ex.buildHashTable(r, j.RCols); err != nil {
			return nil, err
		}
	} else {
		ex.stats.NLJoins++
	}
	var pending atomic.Int64
	chunks, err := parMorsels(ex, len(l.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			var out [][]types.Value
			for _, lt := range l.Tuples[lo:hi] {
				matched := false
				if j.Hash {
					if err := w.tick(); err != nil {
						return nil, err
					}
					for _, ri := range ht.probe(keyOf(lt, j.LCols)) {
						rt := r.Tuples[ri]
						if !keysMatch(lt, j.LCols, rt, j.RCols) {
							continue
						}
						row := concat(lt, rt)
						if j.Residual != nil {
							ok, err := w.EvalPred(j.Residual, Bind(env, joined, row))
							if err != nil {
								return nil, err
							}
							if !ok.IsTrue() {
								continue
							}
						}
						matched = true
						out = append(out, row)
					}
				} else {
					if err := w.checkBudget(int(pending.Load())); err != nil {
						return nil, err
					}
					for _, rt := range r.Tuples {
						if err := w.tick(); err != nil {
							return nil, err
						}
						row := concat(lt, rt)
						ok := types.True
						if j.Pred != nil {
							var err error
							ok, err = w.EvalPred(j.Pred, Bind(env, joined, row))
							if err != nil {
								return nil, err
							}
						}
						if ok.IsTrue() {
							matched = true
							out = append(out, row)
							pending.Add(1)
						}
					}
				}
				if !matched {
					out = append(out, concat(lt, j.Pad))
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(joined)
	out.Tuples = concatChunks(chunks)
	return out, nil
}

// evalBypassJoinPos is the positive stream of ⋈±: the ordinary join,
// hashed when the planner found equality keys.
func (ex *Executor) evalBypassJoinPos(j *physical.BypassJoin, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	joined := j.Schema()
	out := storage.NewRelation(joined)

	if len(j.LCols) > 0 {
		ex.stats.HashJoins++
		ht, err := ex.buildHashTable(r, j.RCols)
		if err != nil {
			return nil, err
		}
		chunks, err := parMorsels(ex, len(l.Tuples), false,
			func(w *Executor, lo, hi int) ([][]types.Value, error) {
				var part [][]types.Value
				for _, lt := range l.Tuples[lo:hi] {
					if err := w.tick(); err != nil {
						return nil, err
					}
					for _, ri := range ht.probe(keyOf(lt, j.LCols)) {
						rt := r.Tuples[ri]
						if !keysMatch(lt, j.LCols, rt, j.RCols) {
							continue
						}
						row := concat(lt, rt)
						if j.Residual != nil {
							ok, err := w.EvalPred(j.Residual, Bind(env, joined, row))
							if err != nil {
								return nil, err
							}
							if !ok.IsTrue() {
								continue
							}
						}
						part = append(part, row)
					}
				}
				return part, nil
			})
		if err != nil {
			return nil, err
		}
		out.Tuples = concatChunks(chunks)
		return out, nil
	}

	ex.stats.NLJoins++
	var pending atomic.Int64
	chunks, err := parMorsels(ex, len(l.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			var part [][]types.Value
			for _, lt := range l.Tuples[lo:hi] {
				if err := w.checkBudget(int(pending.Load())); err != nil {
					return nil, err
				}
				for _, rt := range r.Tuples {
					if err := w.tick(); err != nil {
						return nil, err
					}
					row := concat(lt, rt)
					ok, err := w.EvalPred(j.Pred, Bind(env, joined, row))
					if err != nil {
						return nil, err
					}
					if ok.IsTrue() {
						part = append(part, row)
						pending.Add(1)
					}
				}
			}
			return part, nil
		})
	if err != nil {
		return nil, err
	}
	out.Tuples = concatChunks(chunks)
	return out, nil
}

// evalBypassJoinNeg is the negative stream of ⋈±: the complement pairs
// {x◦y | ¬p(x,y)}. The Stream node may carry a fused filter (the σ the
// rewriter places directly on the negative stream, Eqv. 5's σ_p), split
// by the planner into side-local fragments that pre-reduce each input
// and a rest checked per surviving pair, so the complement is never
// materialized at full cross-product size.
func (ex *Executor) evalBypassJoinNeg(j *physical.BypassJoin, s *physical.Stream, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	lf, err := ex.preFilter(l, s.FusedL, env)
	if err != nil {
		return nil, err
	}
	rf, err := ex.preFilter(r, s.FusedR, env)
	if err != nil {
		return nil, err
	}
	joined := j.Schema()
	var pending atomic.Int64
	chunks, err := parMorsels(ex, len(lf.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			var out [][]types.Value
			for _, lt := range lf.Tuples[lo:hi] {
				if err := w.checkBudget(int(pending.Load())); err != nil {
					return nil, err
				}
				for _, rt := range rf.Tuples {
					if err := w.tick(); err != nil {
						return nil, err
					}
					row := concat(lt, rt)
					rowEnv := Bind(env, joined, row)
					match, err := w.EvalPred(j.Pred, rowEnv)
					if err != nil {
						return nil, err
					}
					if match.IsTrue() {
						continue // belongs to the positive stream
					}
					if s.FusedRest != nil {
						keep, err := w.EvalPred(s.FusedRest, rowEnv)
						if err != nil {
							return nil, err
						}
						if !keep.IsTrue() {
							continue
						}
					}
					out = append(out, row)
					pending.Add(1)
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(joined)
	out.Tuples = concatChunks(chunks)
	return out, nil
}

// preFilter reduces a bypass-join input by a side-local fused fragment.
func (ex *Executor) preFilter(rel *storage.Relation, pred algebra.Expr, env *Env) (*storage.Relation, error) {
	if pred == nil {
		return rel, nil
	}
	chunks, err := parMorsels(ex, len(rel.Tuples), false,
		func(w *Executor, lo, hi int) ([][]types.Value, error) {
			var out [][]types.Value
			for _, t := range rel.Tuples[lo:hi] {
				if err := w.tick(); err != nil {
					return nil, err
				}
				keep, err := w.EvalPred(pred, Bind(env, rel.Schema, t))
				if err != nil {
					return nil, err
				}
				if keep.IsTrue() {
					out = append(out, t)
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(rel.Schema)
	out.Tuples = concatChunks(chunks)
	return out, nil
}
