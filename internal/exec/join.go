package exec

import (
	"disqo/internal/algebra"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// equiKey is one equality conjunct usable for hashing: positions of the
// key columns in the left and right schemas.
type equiKey struct {
	l, r int
}

// splitEquiJoin extracts hashable equality conjuncts (L-column = R-column)
// from a join predicate, returning the keys and the residual conjuncts
// that must still be evaluated per matched pair.
func splitEquiJoin(pred algebra.Expr, ls, rs *storage.Schema) (keys []equiKey, residual []algebra.Expr) {
	if pred == nil {
		return nil, nil
	}
	for _, c := range algebra.SplitConjuncts(pred) {
		cmp, ok := c.(*algebra.CmpExpr)
		if ok && cmp.Op == types.EQ {
			lc, lok := cmp.L.(*algebra.ColRef)
			rc, rok := cmp.R.(*algebra.ColRef)
			if lok && rok {
				if li, ri := ls.Index(lc.Name), rs.Index(rc.Name); li >= 0 && ri >= 0 {
					keys = append(keys, equiKey{l: li, r: ri})
					continue
				}
				if li, ri := ls.Index(rc.Name), rs.Index(lc.Name); li >= 0 && ri >= 0 {
					keys = append(keys, equiKey{l: li, r: ri})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return keys, residual
}

// hashTable buckets right-side tuple indices by key hash. Tuples with any
// NULL key column are omitted: SQL equality can never match them.
type hashTable struct {
	buckets map[uint64][]int
	keyCols []int
}

func buildHash(rel *storage.Relation, keyCols []int) *hashTable {
	ht := &hashTable{buckets: make(map[uint64][]int, len(rel.Tuples)), keyCols: keyCols}
next:
	for i, t := range rel.Tuples {
		key := make([]types.Value, len(keyCols))
		for j, c := range keyCols {
			if t[c].IsNull() {
				continue next
			}
			key[j] = t[c]
		}
		h := types.HashTuple(key)
		ht.buckets[h] = append(ht.buckets[h], i)
	}
	return ht
}

// probe returns candidate right-tuple indices for the given key values;
// the caller re-verifies equality (hash collisions).
func (ht *hashTable) probe(key []types.Value) []int {
	for _, v := range key {
		if v.IsNull() {
			return nil
		}
	}
	return ht.buckets[types.HashTuple(key)]
}

func keyOf(t []types.Value, cols []int) []types.Value {
	key := make([]types.Value, len(cols))
	for i, c := range cols {
		key[i] = t[c]
	}
	return key
}

func keysMatch(lt []types.Value, lcols []int, rt []types.Value, rcols []int) bool {
	for i := range lcols {
		if !types.Equal(lt[lcols[i]], rt[rcols[i]]) {
			return false
		}
	}
	return true
}

// evalJoin evaluates an inner join, hashing when an equality conjunct is
// available and falling back to nested loops otherwise.
func (ex *Executor) evalJoin(j *algebra.Join, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(j.Schema())
	err = ex.joinInto(out, l, r, j.Pred, env, nil)
	return out, err
}

// joinInto appends matched pairs to out; if onUnmatchedL is non-nil it is
// called for every left tuple with no match (outerjoin support).
func (ex *Executor) joinInto(out *storage.Relation, l, r *storage.Relation,
	pred algebra.Expr, env *Env, onUnmatchedL func([]types.Value)) error {
	keys, residual := splitEquiJoin(pred, l.Schema, r.Schema)
	resPred := algebra.And(residual...)
	if len(residual) == 0 {
		resPred = nil
	}
	joined := out.Schema

	if len(keys) > 0 {
		ex.stats.HashJoins++
		lcols := make([]int, len(keys))
		rcols := make([]int, len(keys))
		for i, k := range keys {
			lcols[i] = k.l
			rcols[i] = k.r
		}
		ht := buildHash(r, rcols)
		for _, lt := range l.Tuples {
			if err := ex.tick(); err != nil {
				return err
			}
			matched := false
			for _, ri := range ht.probe(keyOf(lt, lcols)) {
				rt := r.Tuples[ri]
				if !keysMatch(lt, lcols, rt, rcols) {
					continue // hash collision
				}
				row := concat(lt, rt)
				if resPred != nil {
					ok, err := ex.EvalPred(resPred, Bind(env, joined, row))
					if err != nil {
						return err
					}
					if !ok.IsTrue() {
						continue
					}
				}
				matched = true
				out.Tuples = append(out.Tuples, row)
			}
			if !matched && onUnmatchedL != nil {
				onUnmatchedL(lt)
			}
		}
		return nil
	}

	ex.stats.NLJoins++
	for _, lt := range l.Tuples {
		if err := ex.checkBudget(len(out.Tuples)); err != nil {
			return err
		}
		matched := false
		for _, rt := range r.Tuples {
			if err := ex.tick(); err != nil {
				return err
			}
			row := concat(lt, rt)
			ok := types.True
			if pred != nil {
				var err error
				ok, err = ex.EvalPred(pred, Bind(env, joined, row))
				if err != nil {
					return err
				}
			}
			if ok.IsTrue() {
				matched = true
				out.Tuples = append(out.Tuples, row)
			}
		}
		if !matched && onUnmatchedL != nil {
			onUnmatchedL(lt)
		}
	}
	return nil
}

// evalOuterJoin evaluates ⟕ with the paper's g:f(∅) defaults: unmatched
// left tuples are padded with NULLs on the right side except for the
// Default attributes, which receive their configured value.
func (ex *Executor) evalOuterJoin(j *algebra.LeftOuterJoin, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	pad := make([]types.Value, r.Schema.Len())
	for _, d := range j.Defaults {
		i := r.Schema.Index(d.Attr)
		if i < 0 {
			continue
		}
		pad[i] = d.Val
	}
	out := storage.NewRelation(j.Schema())
	err = ex.joinInto(out, l, r, j.Pred, env, func(lt []types.Value) {
		out.Tuples = append(out.Tuples, concat(lt, pad))
	})
	return out, err
}

// evalBypassJoinPos is the positive stream of ⋈±: the ordinary join.
func (ex *Executor) evalBypassJoinPos(j *algebra.BypassJoin, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(j.Schema())
	err = ex.joinInto(out, l, r, j.Pred, env, nil)
	return out, err
}

// evalBypassJoinNeg is the negative stream of ⋈±: the complement pairs
// {x◦y | ¬p(x,y)}. An optional fused filter (the σ the rewriter places
// directly on the negative stream, Eqv. 5's σ_p) is applied during
// enumeration; side-local conjuncts of the filter pre-reduce each input
// so the complement is never materialized at full cross-product size.
func (ex *Executor) evalBypassJoinNeg(j *algebra.BypassJoin, fused algebra.Expr, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(j.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(j.R, env)
	if err != nil {
		return nil, err
	}
	joined := j.Schema()

	var lOnly, rOnly, rest []algebra.Expr
	if fused != nil {
		for _, c := range algebra.SplitConjuncts(fused) {
			cols := c.Columns(nil)
			inL, inR := true, true
			for _, col := range cols {
				if !l.Schema.Has(col) {
					inL = false
				}
				if !r.Schema.Has(col) {
					inR = false
				}
			}
			switch {
			case inL && len(cols) > 0:
				lOnly = append(lOnly, c)
			case inR && len(cols) > 0:
				rOnly = append(rOnly, c)
			default:
				rest = append(rest, c)
			}
		}
	}
	lf, err := ex.preFilter(l, lOnly, env)
	if err != nil {
		return nil, err
	}
	rf, err := ex.preFilter(r, rOnly, env)
	if err != nil {
		return nil, err
	}
	restPred := algebra.And(rest...)
	if len(rest) == 0 {
		restPred = nil
	}

	out := storage.NewRelation(joined)
	for _, lt := range lf.Tuples {
		if err := ex.checkBudget(len(out.Tuples)); err != nil {
			return nil, err
		}
		for _, rt := range rf.Tuples {
			if err := ex.tick(); err != nil {
				return nil, err
			}
			row := concat(lt, rt)
			rowEnv := Bind(env, joined, row)
			match, err := ex.EvalPred(j.Pred, rowEnv)
			if err != nil {
				return nil, err
			}
			if match.IsTrue() {
				continue // belongs to the positive stream
			}
			if restPred != nil {
				keep, err := ex.EvalPred(restPred, rowEnv)
				if err != nil {
					return nil, err
				}
				if !keep.IsTrue() {
					continue
				}
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

func (ex *Executor) preFilter(rel *storage.Relation, conjuncts []algebra.Expr, env *Env) (*storage.Relation, error) {
	if len(conjuncts) == 0 {
		return rel, nil
	}
	pred := algebra.And(conjuncts...)
	out := storage.NewRelation(rel.Schema)
	for _, t := range rel.Tuples {
		if err := ex.tick(); err != nil {
			return nil, err
		}
		keep, err := ex.EvalPred(pred, Bind(env, rel.Schema, t))
		if err != nil {
			return nil, err
		}
		if keep.IsTrue() {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// evalSemiJoin implements ⋉ (anti=false) and ▷ (anti=true): each left
// tuple is kept according to whether some right tuple satisfies the
// predicate. Hash probing on equality keys; nested loop otherwise.
func (ex *Executor) evalSemiJoin(lop, rop algebra.Op, pred algebra.Expr,
	anti bool, env *Env) (*storage.Relation, error) {
	l, err := ex.eval(lop, env)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(rop, env)
	if err != nil {
		return nil, err
	}
	out := storage.NewRelation(l.Schema)
	keys, residual := splitEquiJoin(pred, l.Schema, r.Schema)
	resPred := algebra.And(residual...)
	if len(residual) == 0 {
		resPred = nil
	}
	joined := l.Schema.Concat(r.Schema)
	lcols := make([]int, len(keys))
	rcols := make([]int, len(keys))
	for i, k := range keys {
		lcols[i] = k.l
		rcols[i] = k.r
	}

	matchesSomewhere := func(lt []types.Value, candidates []int) (bool, error) {
		for _, ri := range candidates {
			rt := r.Tuples[ri]
			if len(keys) > 0 {
				if !keysMatch(lt, lcols, rt, rcols) {
					continue
				}
			}
			if resPred != nil || len(keys) == 0 {
				p := resPred
				if len(keys) == 0 {
					p = pred
				}
				ok, err := ex.EvalPred(p, Bind(env, joined, concat(lt, rt)))
				if err != nil {
					return false, err
				}
				if !ok.IsTrue() {
					continue
				}
			}
			return true, nil
		}
		return false, nil
	}

	if len(keys) > 0 {
		ex.stats.HashJoins++
		ht := buildHash(r, rcols)
		for _, lt := range l.Tuples {
			if err := ex.tick(); err != nil {
				return nil, err
			}
			found, err := matchesSomewhere(lt, ht.probe(keyOf(lt, lcols)))
			if err != nil {
				return nil, err
			}
			if found != anti {
				out.Tuples = append(out.Tuples, lt)
			}
		}
		return out, nil
	}

	ex.stats.NLJoins++
	all := make([]int, len(r.Tuples))
	for i := range all {
		all[i] = i
	}
	for _, lt := range l.Tuples {
		if err := ex.tick(); err != nil {
			return nil, err
		}
		found, err := matchesSomewhere(lt, all)
		if err != nil {
			return nil, err
		}
		if found != anti {
			out.Tuples = append(out.Tuples, lt)
		}
	}
	return out, nil
}
