// Package exec is disqo's query execution engine: an operator-at-a-time,
// materializing evaluator for algebra plans. It supports the DAG-shaped
// plans bypass operators create (every node is evaluated once and its
// result memoized), evaluates canonical nested plans by binding
// correlated attributes through an environment chain, and picks physical
// algorithms (hash vs. nested-loop joins and grouping) per operator.
package exec

import (
	"disqo/internal/storage"
	"disqo/internal/types"
)

// Env is a chain of tuple bindings. The innermost binding is consulted
// first; correlated subquery evaluation pushes the outer tuple as the
// parent frame, which is exactly the paper's "direct correlation" — an
// inner block may refer to attributes of the current and the directly
// enclosing block (and transitively further out, which the lookup chain
// also supports).
type Env struct {
	parent *Env
	schema *storage.Schema
	tuple  []types.Value
}

// Bind pushes a new frame onto the environment.
func Bind(parent *Env, schema *storage.Schema, tuple []types.Value) *Env {
	return &Env{parent: parent, schema: schema, tuple: tuple}
}

// Lookup resolves an attribute name, innermost frame first.
func (e *Env) Lookup(name string) (types.Value, bool) {
	for f := e; f != nil; f = f.parent {
		if i := f.schema.Index(name); i >= 0 {
			return f.tuple[i], true
		}
	}
	return types.Value{}, false
}

// Depth returns the number of frames (used in tests).
func (e *Env) Depth() int {
	n := 0
	for f := e; f != nil; f = f.parent {
		n++
	}
	return n
}
