package exec

import (
	"testing"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// benchJoinFixture builds two tables with a shared key domain.
func benchJoinFixture(b *testing.B, n int) (*catalog.Catalog, *algebra.Scan, *algebra.Scan) {
	b.Helper()
	cat := catalog.New()
	l, _ := cat.Create("l", []catalog.Column{
		{Name: "k", Type: types.KindInt}, {Name: "v", Type: types.KindInt}})
	r, _ := cat.Create("r", []catalog.Column{
		{Name: "k", Type: types.KindInt}, {Name: "v", Type: types.KindInt}})
	rng := newBenchRng(42)
	rows := func(tbl *catalog.Table) {
		batch := make([][]types.Value, n)
		for i := 0; i < n; i++ {
			batch[i] = []types.Value{
				types.NewInt(int64(rng.next() % uint64(n/4+1))),
				types.NewInt(int64(rng.next() % 1000)),
			}
		}
		tbl.BulkLoad(batch)
	}
	rows(l)
	rows(r)
	return cat,
		algebra.NewScan("l", "l", storage.NewSchema("l.k", "l.v")),
		algebra.NewScan("r", "r", storage.NewSchema("r.k", "r.v"))
}

type benchRng struct{ s uint64 }

func newBenchRng(seed uint64) *benchRng { return &benchRng{s: seed} }
func (r *benchRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

func benchJoin(b *testing.B, n int, hashable bool) {
	cat, l, r := benchJoinFixture(b, n)
	var pred algebra.Expr
	if hashable {
		pred = algebra.Cmp(types.EQ, algebra.Col("l.k"), algebra.Col("r.k"))
	} else {
		// Same semantics phrased non-hashably (<= ∧ >=) to force NL.
		pred = algebra.And(
			algebra.Cmp(types.LE, algebra.Col("l.k"), algebra.Col("r.k")),
			algebra.Cmp(types.GE, algebra.Col("l.k"), algebra.Col("r.k")))
	}
	plan := algebra.NewJoin(l, r, pred)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := New(cat, Options{Cache: CacheAll})
		if _, err := ex.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinHash1k(b *testing.B) { benchJoin(b, 1000, true) }
func BenchmarkJoinNL1k(b *testing.B)   { benchJoin(b, 1000, false) }

func BenchmarkGroupByHash(b *testing.B) {
	cat, l, _ := benchJoinFixture(b, 10000)
	plan := algebra.NewGroupBy(l, []string{"l.k"}, []algebra.AggItem{
		{Out: "c", Spec: agg.Spec{Kind: agg.Count, Star: true}},
		{Out: "s", Spec: agg.Spec{Kind: agg.Sum}, Arg: algebra.Col("l.v")},
	}, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := New(cat, Options{Cache: CacheAll})
		if _, err := ex.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBypassSelect(b *testing.B) {
	cat, l, _ := benchJoinFixture(b, 10000)
	bp := algebra.NewBypassSelect(l, algebra.Cmp(types.GT, algebra.Col("l.v"), algebra.ConstInt(500)))
	plan := algebra.NewUnionDisjoint(algebra.Pos(bp), algebra.Neg(bp))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := New(cat, Options{Cache: CacheAll})
		if _, err := ex.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}
