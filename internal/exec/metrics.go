package exec

import (
	"time"

	"disqo/internal/physical"
)

// NodeMetrics is one physical operator's runtime counters, indexed by
// the planner-assigned node ID. Collection is opt-in (Options.Metrics):
// with it off the executor never touches these slots, keeping the hot
// loops allocation-free. Under parallel execution every worker clone
// owns a private shard that parMorsels folds back in morsel order, like
// the Stats shards, so every counter is worker-count independent; only
// WallNanos is wall-clock and therefore never compared in golden tests.
type NodeMetrics struct {
	// Calls counts actual evaluations of the operator (memo misses).
	// Canonical nested plans re-evaluate correlated subplans per outer
	// tuple; unnested plans evaluate every operator once.
	Calls int64
	// MemoHits counts evaluations answered from the DAG/subquery memo.
	MemoHits int64
	// RowsIn is the total number of input tuples consumed: every child
	// (or subquery) result returned while this operator was evaluating.
	RowsIn int64
	// RowsOut is the total number of tuples produced across all Calls.
	RowsOut int64
	// Morsels is the number of morsels the operator's input was split
	// into, derived from input size alone so it does not depend on the
	// worker count.
	Morsels int64
	// HashBuildRows is the total number of build-side tuples hashed for
	// this operator (hash joins, hash binary grouping).
	HashBuildRows int64
	// VecCalls counts evaluations that ran on the vectorized path
	// (compiled kernels over columnar batches). Credited once per Call
	// by the kernel's coordinator, so like Calls it is worker-count
	// independent; Calls-VecCalls evaluations took the row path.
	VecCalls int64
	// WallNanos is the cumulative wall time spent evaluating the
	// operator, inclusive of its children (monotonic clock). Concurrent
	// subquery evaluations by several workers sum, so it can exceed the
	// query's elapsed time, like CPU time.
	WallNanos int64
}

// Wall returns the operator's cumulative wall time as a Duration.
func (m *NodeMetrics) Wall() time.Duration { return time.Duration(m.WallNanos) }

// merge folds a worker shard's slot into this one. Every field is a
// monotone counter, so summing is order-independent and deterministic.
func (m *NodeMetrics) merge(o *NodeMetrics) {
	m.Calls += o.Calls
	m.MemoHits += o.MemoHits
	m.RowsIn += o.RowsIn
	m.RowsOut += o.RowsOut
	m.Morsels += o.Morsels
	m.HashBuildRows += o.HashBuildRows
	m.VecCalls += o.VecCalls
	m.WallNanos += o.WallNanos
}

// metric returns the slot for a node, growing the shard for nodes
// lowered after Run sized it (stray EvalExpr-driven lowering).
func (ex *Executor) metric(n physical.Node) *NodeMetrics {
	id := n.ID()
	for id >= len(ex.nm) {
		ex.nm = append(ex.nm, NodeMetrics{})
	}
	return &ex.nm[id]
}

// mergeNodeMetrics folds a worker shard into this executor's shard.
func (ex *Executor) mergeNodeMetrics(o []NodeMetrics) {
	for len(ex.nm) < len(o) {
		ex.nm = append(ex.nm, NodeMetrics{})
	}
	for i := range o {
		ex.nm[i].merge(&o[i])
	}
}

// NodeMetrics returns the per-operator runtime counters accumulated so
// far (indexed by physical node ID), or nil when Options.Metrics is off.
func (ex *Executor) NodeMetrics() []NodeMetrics {
	if ex.nm == nil {
		return nil
	}
	out := make([]NodeMetrics, len(ex.nm))
	copy(out, ex.nm)
	return out
}

// traceMorsel emits a morsel span for the operator currently being
// evaluated; a nil tracer (the default) costs one branch.
func (ex *Executor) traceMorsel(lo, hi int) {
	if ex.opt.Tracer != nil && ex.cur != nil {
		ex.opt.Tracer.OpMorsel(ex.cur, lo, hi)
	}
}

// creditHashBuild attributes build-side tuples to the operator whose
// evaluation built the table.
func (ex *Executor) creditHashBuild(rows int) {
	if ex.nm != nil && ex.cur != nil {
		ex.metric(ex.cur).HashBuildRows += int64(rows)
	}
}

// Tracer observes physical-operator execution: one OpOpen/OpClose pair
// per operator evaluation, with OpMorsel events for each unit of input
// the operator processed in between. The default (nil) costs nothing.
// Implementations must be safe for concurrent use — morsel workers emit
// events in parallel — and should return quickly; the executor calls
// them inline.
type Tracer interface {
	// OpOpen fires when an operator evaluation starts (after a memo miss).
	OpOpen(n physical.Node)
	// OpMorsel fires for each input chunk [lo, hi) a worker processed.
	OpMorsel(n physical.Node, lo, hi int)
	// OpClose fires when the evaluation finishes, with the output
	// cardinality and the inclusive wall time.
	OpClose(n physical.Node, rows int64, d time.Duration)
}
