package exec

import "testing"

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(100)
	if b.Limit() != 100 {
		t.Fatalf("Limit = %d, want 100", b.Limit())
	}
	if b.over(100) {
		t.Fatal("allocation exactly at the limit must be admitted")
	}
	if !b.over(101) {
		t.Fatal("allocation past the limit must be rejected")
	}
	b.charge(40)
	if got := b.Resident(); got != 40 {
		t.Fatalf("Resident = %d, want 40", got)
	}
	if b.over(60) {
		t.Fatal("40 resident + 60 pending = limit, must be admitted")
	}
	if !b.over(61) {
		t.Fatal("40 resident + 61 pending exceeds the limit")
	}
	b.charge(-40)
	if got := b.Resident(); got != 0 {
		t.Fatalf("Resident after release = %d, want 0", got)
	}
}

func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0)
	b.charge(1 << 40)
	if b.over(1 << 40) {
		t.Fatal("a zero-limit budget must never reject")
	}
}
