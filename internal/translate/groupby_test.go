package translate

import (
	"strings"
	"testing"

	"disqo/internal/sqlparser"
	"disqo/internal/types"
)

func TestGroupByBasics(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT a2, COUNT(*) AS n, MAX(a4) AS m FROM r GROUP BY a2 ORDER BY a2")
	got := rel.Canonical()
	// r rows: (1,10,_,1000) (2,20,_,2000) (2,10,_,1200) (0,30,_,1501)
	want := []string{"(10, 2, 1200)", "(20, 1, 2000)", "(30, 1, 1501)"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("group by = %v, want %v", got, want)
	}
	if rel.Schema.String() != "[r.a2, n, m]" {
		t.Errorf("schema = %s", rel.Schema)
	}
}

func TestGroupByHaving(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT a2, COUNT(*) AS n FROM r GROUP BY a2 HAVING COUNT(*) > 1")
	got := rel.Canonical()
	if len(got) != 1 || got[0] != "(10, 2)" {
		t.Errorf("having = %v", got)
	}
	// HAVING with an aggregate not in the select list.
	rel = runSQL(t, cat, "SELECT a2 FROM r GROUP BY a2 HAVING SUM(a4) >= 2000 ORDER BY a2")
	got = rel.Canonical()
	if len(got) != 2 || got[0] != "(10)" || got[1] != "(20)" {
		t.Errorf("having sum = %v", got)
	}
	// HAVING over a grouped column.
	rel = runSQL(t, cat, "SELECT a2 FROM r GROUP BY a2 HAVING a2 > 15")
	if rel.Cardinality() != 2 {
		t.Errorf("having grouped col = %s", rel)
	}
}

func TestGroupByWhereInteraction(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT a2, COUNT(*) AS n FROM r WHERE a4 > 1100 GROUP BY a2 ORDER BY a2")
	got := rel.Canonical()
	want := []string{"(10, 1)", "(20, 1)", "(30, 1)"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("where+group = %v", got)
	}
}

func TestGroupByJoin(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat,
		"SELECT a2, COUNT(*) AS n FROM r, s WHERE a2 = b2 GROUP BY a2 ORDER BY a2")
	got := rel.Canonical()
	// matches: a2=10 rows (r1, r3) × s(b2=10: s1,s2) = 4; a2=20 (r2) × s3 = 1.
	want := []string{"(10, 4)", "(20, 1)"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("join+group = %v", got)
	}
}

func TestGroupByNullGroup(t *testing.T) {
	cat := rstCatalog(t)
	tbl, _ := cat.Lookup("r")
	tbl.Insert([]types.Value{types.NewInt(9), types.Null(), types.NewInt(9), types.NewInt(9)})
	tbl.Insert([]types.Value{types.NewInt(9), types.Null(), types.NewInt(9), types.NewInt(9)})
	rel := runSQL(t, cat, "SELECT a2, COUNT(*) AS n FROM r GROUP BY a2")
	found := false
	for _, row := range rel.Tuples {
		if row[0].IsNull() && types.Identical(row[1], types.NewInt(2)) {
			found = true
		}
	}
	if !found {
		t.Errorf("NULLs must form one group: %s", rel)
	}
}

func TestGroupByWithSubqueryInHaving(t *testing.T) {
	cat := rstCatalog(t)
	// HAVING comparing against an uncorrelated scalar subquery.
	rel := runSQL(t, cat,
		"SELECT a2 FROM r GROUP BY a2 HAVING COUNT(*) >= (SELECT MIN(b1) FROM s)")
	// min(b1) = 1; all three groups have count >= 1.
	if rel.Cardinality() != 3 {
		t.Errorf("having subquery = %s", rel)
	}
}

func TestGroupByErrors(t *testing.T) {
	cat := rstCatalog(t)
	for _, sql := range []string{
		"SELECT a1 FROM r GROUP BY a2",               // non-grouped column
		"SELECT * FROM r GROUP BY a2",                // star with group by
		"SELECT a2 FROM r GROUP BY a2 HAVING a1 > 1", // having non-grouped column
		"SELECT a2 FROM r HAVING COUNT(*) > 1",       // having without group by
		"SELECT a2 FROM r GROUP BY a2 + 1",           // non-column group key
		"SELECT a2, a1 + 1 AS x FROM r GROUP BY a2",  // non-aggregate expression item
		"SELECT a2 FROM r GROUP BY a2 ORDER BY a1",   // order by non-output
	} {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			continue // rejected at parse level — also fine
		}
		if _, err := New(cat).Translate(stmt); err == nil {
			t.Errorf("%q must fail", sql)
		}
	}
}
