package translate

import (
	"strings"
	"testing"

	"disqo/internal/algebra"
	"disqo/internal/exec"
	"disqo/internal/rewrite"
	"disqo/internal/sqlparser"
)

func TestDerivedTableBasics(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat,
		"SELECT x.a1 FROM (SELECT a1, a4 FROM r WHERE a4 > 1500) AS x WHERE x.a1 > 0 ORDER BY x.a1")
	got := rel.Canonical()
	if len(got) != 1 || got[0] != "(2)" {
		t.Errorf("derived = %v", got)
	}
}

func TestDerivedTableJoinsBaseTable(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, `SELECT DISTINCT s.b1
	        FROM (SELECT a2 FROM r WHERE a4 > 1100) x, s
	        WHERE x.a2 = s.b2 ORDER BY s.b1`)
	got := rel.Canonical()
	// x.a2 ∈ {20, 10, 30}; b2 matches: 10 → s1,s2; 20 → s3.
	want := []string{"(1)", "(2)", "(3)"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("derived join = %v, want %v", got, want)
	}
}

func TestDerivedTableWithAggregates(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, `SELECT n FROM (SELECT a2, COUNT(*) AS n FROM r GROUP BY a2) g
	        WHERE g.a2 = 10`)
	got := rel.Canonical()
	if len(got) != 1 || got[0] != "(2)" {
		t.Errorf("derived agg = %v", got)
	}
}

// TestDerivedTableDisjunctiveUnnesting is the paper's future-work item
// (2): a nested disjunctive query inside the FROM clause. The rewriter
// recursion reaches the derived plan and unnests it with the same bypass
// machinery.
func TestDerivedTableDisjunctiveUnnesting(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT x.a1 FROM (
	          SELECT a1, a4 FROM r
	          WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	             OR a4 > 1500) x
	        WHERE x.a4 > 0`
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := New(cat).Translate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	rw := rewrite.New(cat, rewrite.AllCaps())
	unnested, err := rw.Rewrite(canonical)
	if err != nil {
		t.Fatal(err)
	}
	if algebra.ContainsSubquery(unnested) {
		t.Fatalf("derived-table disjunction must unnest:\n%s", algebra.Explain(unnested))
	}
	exC := exec.New(cat, exec.Options{Cache: exec.CacheAll})
	relC, err := exC.Run(canonical)
	if err != nil {
		t.Fatal(err)
	}
	exU := exec.New(cat, exec.Options{Cache: exec.CacheAll})
	relU, err := exU.Run(unnested)
	if err != nil {
		t.Fatal(err)
	}
	a, b := relC.Canonical(), relU.Canonical()
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Errorf("derived unnest mismatch: %v vs %v", a, b)
	}
}

func TestDerivedTableErrors(t *testing.T) {
	cat := rstCatalog(t)
	for _, sql := range []string{
		"SELECT * FROM (SELECT a1 FROM r)",       // missing alias
		"SELECT * FROM (SELECT a1, a1 FROM r) x", // duplicate output columns
		"SELECT zz FROM (SELECT a1 FROM r) x",    // unknown column
		"SELECT x.a2 FROM (SELECT a1 FROM r) x",  // column not exposed
	} {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			continue
		}
		if _, err := New(cat).Translate(stmt); err == nil {
			t.Errorf("%q must fail", sql)
		}
	}
}

func TestDerivedTableNoSiblingCorrelation(t *testing.T) {
	cat := rstCatalog(t)
	// Standard SQL: a derived table cannot see sibling FROM entries.
	stmt, err := sqlparser.Parse("SELECT * FROM r, (SELECT b1 FROM s WHERE b2 = a2) x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cat).Translate(stmt); err == nil {
		t.Error("sibling correlation must fail (no LATERAL)")
	}
}
