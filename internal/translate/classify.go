package translate

import (
	"fmt"

	"disqo/internal/algebra"
	"disqo/internal/sqlparser"
)

// BlockType is Kim's classification of a nested query block (paper §2.2).
type BlockType uint8

const (
	// TypeN is a table subquery without aggregate or correlation.
	TypeN BlockType = iota
	// TypeA is a scalar subquery (aggregate) without correlation.
	TypeA
	// TypeJ is a correlated table subquery.
	TypeJ
	// TypeJA is a correlated scalar subquery — the paper's focus.
	TypeJA
)

// String renders the Kim type name.
func (t BlockType) String() string {
	switch t {
	case TypeN:
		return "N"
	case TypeA:
		return "A"
	case TypeJ:
		return "J"
	default:
		return "JA"
	}
}

// Structure is Muralikrishna's nesting-structure classification extended
// by the paper with the "simple" case (§2.2).
type Structure uint8

const (
	// Flat has no nested block at all.
	Flat Structure = iota
	// Simple has exactly one nested block.
	Simple
	// Linear has several blocks, each nesting at most one block.
	Linear
	// Tree has a block with two or more blocks nested at the same level.
	Tree
)

// String renders the structure name.
func (s Structure) String() string {
	switch s {
	case Flat:
		return "flat"
	case Simple:
		return "simple"
	case Linear:
		return "linear"
	case Tree:
		return "tree"
	}
	return fmt.Sprintf("structure(%d)", uint8(s))
}

// ClassifyStructure determines the statement's nesting structure from the
// AST.
func ClassifyStructure(stmt *sqlparser.SelectStmt) Structure {
	total, maxFanout := 0, 0
	var walk func(s *sqlparser.SelectStmt)
	walk = func(s *sqlparser.SelectStmt) {
		subs := directSubqueries(s)
		if len(subs) > maxFanout {
			maxFanout = len(subs)
		}
		total += len(subs)
		for _, sub := range subs {
			walk(sub)
		}
	}
	walk(stmt)
	switch {
	case maxFanout >= 2:
		return Tree
	case total == 0:
		return Flat
	case total == 1:
		return Simple
	default:
		return Linear
	}
}

// directSubqueries collects the blocks nested directly in s's WHERE
// clause (not those nested deeper).
func directSubqueries(s *sqlparser.SelectStmt) []*sqlparser.SelectStmt {
	var out []*sqlparser.SelectStmt
	var visit func(e sqlparser.Expr)
	visit = func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.SubqueryExpr:
			out = append(out, x.Stmt)
		case *sqlparser.ExistsExpr:
			out = append(out, x.Stmt)
		case *sqlparser.InExpr:
			visit(x.L)
			out = append(out, x.Stmt)
		case *sqlparser.QuantCmpExpr:
			visit(x.L)
			out = append(out, x.Stmt)
		case *sqlparser.BinaryExpr:
			visit(x.L)
			visit(x.R)
		case *sqlparser.NotExpr:
			visit(x.E)
		case *sqlparser.LikeExpr:
			visit(x.L)
			visit(x.Pattern)
		case *sqlparser.IsNullExpr:
			visit(x.E)
		case *sqlparser.BetweenExpr:
			visit(x.E)
			visit(x.Lo)
			visit(x.Hi)
		}
	}
	if s.Where != nil {
		visit(s.Where)
	}
	return out
}

// SubqueryInfo describes one nested block found in a translated plan.
type SubqueryInfo struct {
	Type       BlockType
	Correlated bool
	Scalar     bool
}

// ClassifySubqueries inspects a translated plan and reports Kim types for
// every directly nested block (not recursing into blocks within blocks).
func ClassifySubqueries(plan algebra.Op) []SubqueryInfo {
	var out []SubqueryInfo
	algebra.Walk(plan, func(op algebra.Op) bool {
		for _, sub := range subqueryExprsOf(op) {
			switch sq := sub.(type) {
			case *algebra.ScalarSubquery:
				info := SubqueryInfo{Scalar: true, Correlated: algebra.Correlated(sq.Plan)}
				if info.Correlated {
					info.Type = TypeJA
				} else {
					info.Type = TypeA
				}
				out = append(out, info)
			case *algebra.QuantSubquery:
				info := SubqueryInfo{Correlated: algebra.Correlated(sq.Plan)}
				if info.Correlated {
					info.Type = TypeJ
				} else {
					info.Type = TypeN
				}
				out = append(out, info)
			case *algebra.AllAnyExpr:
				info := SubqueryInfo{Correlated: algebra.Correlated(sq.Plan)}
				if info.Correlated {
					info.Type = TypeJ
				} else {
					info.Type = TypeN
				}
				out = append(out, info)
			}
		}
		return true
	})
	return out
}

// subqueryExprsOf extracts the subquery expressions appearing directly in
// an operator's predicate/map expressions.
func subqueryExprsOf(op algebra.Op) []algebra.Expr {
	var preds []algebra.Expr
	switch x := op.(type) {
	case *algebra.Select:
		preds = append(preds, x.Pred)
	case *algebra.BypassSelect:
		preds = append(preds, x.Pred)
	case *algebra.Join:
		preds = append(preds, x.Pred)
	case *algebra.MapOp:
		preds = append(preds, x.Expr)
	}
	var out []algebra.Expr
	var visit func(e algebra.Expr)
	visit = func(e algebra.Expr) {
		switch y := e.(type) {
		case *algebra.ScalarSubquery, *algebra.QuantSubquery, *algebra.AllAnyExpr:
			out = append(out, e)
		case *algebra.CmpExpr:
			visit(y.L)
			visit(y.R)
		case *algebra.AndExpr:
			visit(y.L)
			visit(y.R)
		case *algebra.OrExpr:
			visit(y.L)
			visit(y.R)
		case *algebra.NotExpr:
			visit(y.E)
		case *algebra.ArithExpr:
			visit(y.L)
			visit(y.R)
		case *algebra.LikeExpr:
			visit(y.L)
			visit(y.Pattern)
		case *algebra.IsNullExpr:
			visit(y.E)
		}
	}
	for _, p := range preds {
		if p != nil {
			visit(p)
		}
	}
	return out
}
