// Package translate turns parsed SQL into the canonical algebra plan the
// paper starts from: each query block becomes a join tree (subquery-free
// conjuncts are pushed into scans and joins) topped by a selection whose
// predicate still embeds nested query blocks as subquery expressions.
// Correlation — an inner block referencing attributes of an enclosing
// block — is resolved through a scope chain and appears in the plan as
// free attribute references (algebra.FreeColumns).
package translate

import (
	"fmt"
	"strings"

	"disqo/internal/agg"
	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/sqlparser"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// Translator translates statements against a catalog. A single Translator
// must be used per statement: it disambiguates repeated range-variable
// names across blocks.
type Translator struct {
	cat   catalog.Reader
	used  map[string]bool // range-variable qualifiers in use
	views map[string]*sqlparser.SelectStmt
	// expanding guards against recursive view definitions.
	expanding map[string]bool
}

// New returns a Translator for a catalog view (live catalog or pinned
// snapshot).
func New(cat catalog.Reader) *Translator {
	return &Translator{cat: cat, used: make(map[string]bool), expanding: make(map[string]bool)}
}

// WithViews registers view definitions: a FROM reference to a view name
// expands like a derived table with the view's body.
func (tr *Translator) WithViews(views map[string]*sqlparser.SelectStmt) *Translator {
	tr.views = views
	return tr
}

// rangeVar is one FROM-clause binding in a scope: a base table or a
// derived table (subquery in FROM).
type rangeVar struct {
	name    string   // the SQL-visible binding (alias or table name)
	qual    string   // the unique qualifier used in attribute names
	cols    []string // lower-case column names
	table   *catalog.Table
	derived algebra.Op // non-nil for derived tables; attrs are qual.col
}

// scope is a block's name-resolution context, chained to the enclosing
// block for correlation.
type scope struct {
	parent *scope
	vars   []*rangeVar
}

// attrOf builds the executor attribute name for a var's column.
func attrOf(v *rangeVar, col string) string { return v.qual + "." + strings.ToLower(col) }

// hasColumn reports whether the binding exposes the column.
func hasColumn(v *rangeVar, col string) bool {
	for _, c := range v.cols {
		if strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

// resolve maps an identifier to a fully-qualified attribute name,
// searching the current block first, then enclosing blocks (correlation).
func (sc *scope) resolve(id *sqlparser.Ident) (string, error) {
	for s := sc; s != nil; s = s.parent {
		if id.Qualifier != "" {
			for _, v := range s.vars {
				if v.name == id.Qualifier {
					if !hasColumn(v, id.Name) {
						return "", fmt.Errorf("translate: no column %q in %s", id.Name, v.name)
					}
					return attrOf(v, id.Name), nil
				}
			}
			continue
		}
		var found *rangeVar
		for _, v := range s.vars {
			if hasColumn(v, id.Name) {
				if found != nil {
					return "", fmt.Errorf("translate: ambiguous column %q", id.Name)
				}
				found = v
			}
		}
		if found != nil {
			return attrOf(found, id.Name), nil
		}
	}
	return "", fmt.Errorf("translate: unknown column %q", id)
}

// localQuals returns the set of qualifiers introduced by this scope (not
// parents) — used to distinguish local from correlated references.
func (sc *scope) localQuals() map[string]bool {
	out := make(map[string]bool, len(sc.vars))
	for _, v := range sc.vars {
		out[v.qual] = true
	}
	return out
}

// TranslateTableExpr resolves an expression against a single table's
// scope — the contract DML statements need for SET values and
// per-row evaluation. Subqueries inside the expression are translated as
// usual (correlated to the table's row).
func (tr *Translator) TranslateTableExpr(table string, e sqlparser.Expr) (algebra.Expr, error) {
	sel := &sqlparser.SelectStmt{Star: true, From: []sqlparser.TableRef{{Table: table}}}
	_, sc, err := tr.translateBlock(sel, nil)
	if err != nil {
		return nil, err
	}
	return tr.translateExpr(e, sc)
}

// Translate converts a full statement into a canonical plan.
func (tr *Translator) Translate(stmt *sqlparser.SelectStmt) (algebra.Op, error) {
	plan, sc, err := tr.translateBlock(stmt, nil)
	if err != nil {
		return nil, err
	}
	return tr.finishTopLevel(stmt, plan, sc)
}

// finishTopLevel applies select list, GROUP BY/HAVING, DISTINCT and
// ORDER BY on a block plan.
func (tr *Translator) finishTopLevel(stmt *sqlparser.SelectStmt, plan algebra.Op, sc *scope) (algebra.Op, error) {
	if len(stmt.GroupBy) > 0 {
		return tr.finishGrouped(stmt, plan, sc)
	}
	if stmt.Having != nil {
		return nil, fmt.Errorf("translate: HAVING requires GROUP BY")
	}
	var outAttrs []string
	var renames [][2]string
	if stmt.Star {
		outAttrs = append(outAttrs, plan.Schema().Attrs()...)
	} else {
		// Check for a global aggregate query: all items aggregates.
		allAgg, anyAgg := true, false
		for _, it := range stmt.Items {
			if _, ok := it.Expr.(*sqlparser.AggExpr); ok {
				anyAgg = true
			} else {
				allAgg = false
			}
		}
		if anyAgg && !allAgg {
			return nil, fmt.Errorf("translate: mixing aggregates and plain columns needs GROUP BY, which this dialect omits")
		}
		if anyAgg {
			return tr.finishGlobalAgg(stmt, plan, sc)
		}
		for i, it := range stmt.Items {
			name := it.Alias
			switch e := it.Expr.(type) {
			case *sqlparser.Ident:
				attr, err := sc.resolve(e)
				if err != nil {
					return nil, err
				}
				outAttrs = append(outAttrs, attr)
				if name != "" && name != attr {
					renames = append(renames, [2]string{name, attr})
				}
			default:
				if name == "" {
					name = fmt.Sprintf("_col%d", i+1)
				}
				expr, err := tr.translateExpr(it.Expr, sc)
				if err != nil {
					return nil, err
				}
				plan = algebra.NewMap(plan, name, expr)
				outAttrs = append(outAttrs, name)
			}
		}
	}
	if err := uniqueOutputs(outAttrs); err != nil {
		return nil, err
	}
	result := algebra.Op(algebra.NewProject(plan, outAttrs))
	if len(renames) > 0 {
		ren, err := algebra.NewRename(result, renames)
		if err != nil {
			return nil, err
		}
		result = ren
	}
	if stmt.Distinct {
		result = algebra.NewDistinct(result)
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]algebra.SortKey, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			id, ok := o.Expr.(*sqlparser.Ident)
			if !ok {
				return nil, fmt.Errorf("translate: ORDER BY supports columns only, got %s", o.Expr)
			}
			attr, err := sc.resolve(id)
			if err != nil {
				return nil, err
			}
			if !result.Schema().Has(attr) {
				// The key may have been renamed to its alias.
				renamed := false
				for _, rn := range renames {
					if rn[1] == attr {
						attr = rn[0]
						renamed = true
						break
					}
				}
				if !renamed {
					return nil, fmt.Errorf("translate: ORDER BY column %s must appear in the select list", id)
				}
			}
			keys[i] = algebra.SortKey{Attr: attr, Desc: o.Desc}
		}
		result = algebra.NewSort(result, keys)
	}
	if stmt.HasLimit {
		result = algebra.NewLimit(result, stmt.Limit)
	}
	return result, nil
}

// finishGlobalAgg handles a top-level aggregation query (no GROUP BY in
// the dialect, so grouping is global): SELECT MIN(x), COUNT(*) FROM ...
func (tr *Translator) finishGlobalAgg(stmt *sqlparser.SelectStmt, plan algebra.Op, sc *scope) (algebra.Op, error) {
	items := make([]algebra.AggItem, len(stmt.Items))
	outs := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		ae := it.Expr.(*sqlparser.AggExpr)
		spec, arg, err := tr.translateAgg(ae, sc)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = fmt.Sprintf("_agg%d", i+1)
		}
		items[i] = algebra.AggItem{Out: name, Spec: spec, Arg: arg}
		outs[i] = name
	}
	var result algebra.Op = algebra.NewGroupBy(plan, nil, items, true)
	result = algebra.NewProject(result, outs)
	if len(stmt.OrderBy) > 0 {
		return nil, fmt.Errorf("translate: ORDER BY with global aggregates is not supported")
	}
	return result, nil
}

// finishGrouped builds the GROUP BY pipeline: Γ over the block plan with
// one aggregate per AggExpr in the select list and HAVING clause, a
// selection for HAVING, and projection/renaming to the declared outputs.
func (tr *Translator) finishGrouped(stmt *sqlparser.SelectStmt, plan algebra.Op, sc *scope) (algebra.Op, error) {
	if stmt.Star {
		return nil, fmt.Errorf("translate: SELECT * is not valid with GROUP BY")
	}
	// Resolve the grouping attributes.
	groupAttrs := make([]string, 0, len(stmt.GroupBy))
	grouped := map[string]bool{}
	for _, g := range stmt.GroupBy {
		id, ok := g.(*sqlparser.Ident)
		if !ok {
			return nil, fmt.Errorf("translate: GROUP BY supports columns only, got %s", g)
		}
		attr, err := sc.resolve(id)
		if err != nil {
			return nil, err
		}
		if !grouped[attr] {
			grouped[attr] = true
			groupAttrs = append(groupAttrs, attr)
		}
	}

	var items []algebra.AggItem
	aggCounter := 0
	addAgg := func(ae *sqlparser.AggExpr) (string, error) {
		spec, arg, err := tr.translateAgg(ae, sc)
		if err != nil {
			return "", err
		}
		aggCounter++
		name := fmt.Sprintf("_agg%d", aggCounter)
		items = append(items, algebra.AggItem{Out: name, Spec: spec, Arg: arg})
		return name, nil
	}

	// Select list: grouping columns or aggregates.
	var outAttrs []string
	var renames [][2]string
	for _, it := range stmt.Items {
		switch e := it.Expr.(type) {
		case *sqlparser.Ident:
			attr, err := sc.resolve(e)
			if err != nil {
				return nil, err
			}
			if !grouped[attr] {
				return nil, fmt.Errorf("translate: column %s must appear in GROUP BY or inside an aggregate", e)
			}
			outAttrs = append(outAttrs, attr)
			if it.Alias != "" && it.Alias != attr {
				renames = append(renames, [2]string{it.Alias, attr})
			}
		case *sqlparser.AggExpr:
			name, err := addAgg(e)
			if err != nil {
				return nil, err
			}
			outAttrs = append(outAttrs, name)
			if it.Alias != "" {
				renames = append(renames, [2]string{it.Alias, name})
			}
		default:
			return nil, fmt.Errorf("translate: GROUP BY select items must be grouping columns or aggregates, got %s", it.Expr)
		}
	}

	// HAVING: aggregates become references to Γ outputs; plain columns
	// must be grouping attributes. Nested subqueries are translated as
	// usual and may be unnested downstream.
	var having algebra.Expr
	if stmt.Having != nil {
		var err error
		having, err = tr.translateHaving(stmt.Having, sc, grouped, addAgg)
		if err != nil {
			return nil, err
		}
	}

	if err := uniqueOutputs(outAttrs); err != nil {
		return nil, err
	}
	var result algebra.Op = algebra.NewGroupBy(plan, groupAttrs, items, false)
	if having != nil {
		result = algebra.NewSelect(result, having)
	}
	result = algebra.NewProject(result, outAttrs)
	if len(renames) > 0 {
		ren, err := algebra.NewRename(result, renames)
		if err != nil {
			return nil, err
		}
		result = ren
	}
	if stmt.Distinct {
		result = algebra.NewDistinct(result)
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]algebra.SortKey, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			id, ok := o.Expr.(*sqlparser.Ident)
			if !ok {
				return nil, fmt.Errorf("translate: ORDER BY supports columns only, got %s", o.Expr)
			}
			attr := ""
			if id.Qualifier == "" && result.Schema().Has(id.Name) {
				attr = id.Name // output alias
			} else {
				resolved, err := sc.resolve(id)
				if err != nil {
					return nil, err
				}
				attr = resolved
			}
			if !result.Schema().Has(attr) {
				return nil, fmt.Errorf("translate: ORDER BY column %s must appear in the select list", id)
			}
			keys[i] = algebra.SortKey{Attr: attr, Desc: o.Desc}
		}
		result = algebra.NewSort(result, keys)
	}
	if stmt.HasLimit {
		result = algebra.NewLimit(result, stmt.Limit)
	}
	return result, nil
}

// translateHaving rewrites a HAVING predicate against the grouped schema:
// aggregate calls are routed through addAgg (extending the Γ operator)
// and replaced by their output attribute.
func (tr *Translator) translateHaving(e sqlparser.Expr, sc *scope,
	grouped map[string]bool, addAgg func(*sqlparser.AggExpr) (string, error)) (algebra.Expr, error) {
	switch x := e.(type) {
	case *sqlparser.AggExpr:
		name, err := addAgg(x)
		if err != nil {
			return nil, err
		}
		return algebra.Col(name), nil
	case *sqlparser.Ident:
		attr, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		if !grouped[attr] {
			return nil, fmt.Errorf("translate: HAVING column %s must appear in GROUP BY or inside an aggregate", x)
		}
		return algebra.Col(attr), nil
	case *sqlparser.BinaryExpr:
		l, err := tr.translateHaving(x.L, sc, grouped, addAgg)
		if err != nil {
			return nil, err
		}
		r, err := tr.translateHaving(x.R, sc, grouped, addAgg)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "AND":
			return algebra.And(l, r), nil
		case "OR":
			return algebra.Or(l, r), nil
		case "+":
			return algebra.Arith(types.Add, l, r), nil
		case "-":
			return algebra.Arith(types.Sub, l, r), nil
		case "*":
			return algebra.Arith(types.Mul, l, r), nil
		case "/":
			return algebra.Arith(types.Div, l, r), nil
		case "=":
			return algebra.Cmp(types.EQ, l, r), nil
		case "<>":
			return algebra.Cmp(types.NE, l, r), nil
		case "<":
			return algebra.Cmp(types.LT, l, r), nil
		case "<=":
			return algebra.Cmp(types.LE, l, r), nil
		case ">":
			return algebra.Cmp(types.GT, l, r), nil
		case ">=":
			return algebra.Cmp(types.GE, l, r), nil
		default:
			return nil, fmt.Errorf("translate: unknown operator %q in HAVING", x.Op)
		}
	case *sqlparser.NotExpr:
		inner, err := tr.translateHaving(x.E, sc, grouped, addAgg)
		if err != nil {
			return nil, err
		}
		return algebra.Not(inner), nil
	case *sqlparser.IsNullExpr:
		inner, err := tr.translateHaving(x.E, sc, grouped, addAgg)
		if err != nil {
			return nil, err
		}
		var out algebra.Expr = algebra.IsNull(inner)
		if x.Negated {
			out = algebra.Not(out)
		}
		return out, nil
	default:
		// Literals and anything without aggregates or grouped columns
		// fall back to the ordinary translation.
		return tr.translateExpr(e, sc)
	}
}

func (tr *Translator) translateAgg(ae *sqlparser.AggExpr, sc *scope) (agg.Spec, algebra.Expr, error) {
	var kind agg.Kind
	switch ae.Func {
	case "COUNT":
		kind = agg.Count
	case "SUM":
		kind = agg.Sum
	case "AVG":
		kind = agg.Avg
	case "MIN":
		kind = agg.Min
	case "MAX":
		kind = agg.Max
	default:
		return agg.Spec{}, nil, fmt.Errorf("translate: unknown aggregate %q", ae.Func)
	}
	spec := agg.Spec{Kind: kind, Distinct: ae.Distinct, Star: ae.Star}
	if err := spec.Validate(); err != nil {
		return agg.Spec{}, nil, err
	}
	if ae.Star {
		return spec, nil, nil
	}
	arg, err := tr.translateExpr(ae.Arg, sc)
	if err != nil {
		return agg.Spec{}, nil, err
	}
	return spec, arg, nil
}

// translateBlock builds the canonical plan for one query block's FROM and
// WHERE clauses (select list, DISTINCT and ORDER BY are the caller's
// concern) and returns the block's scope for further resolution.
func (tr *Translator) translateBlock(stmt *sqlparser.SelectStmt, parent *scope) (algebra.Op, *scope, error) {
	if len(stmt.From) == 0 {
		return nil, nil, fmt.Errorf("translate: query block without FROM")
	}
	sc := &scope{parent: parent}
	seen := map[string]bool{}
	for _, ref := range stmt.From {
		name := strings.ToLower(ref.Binding())
		if seen[name] {
			return nil, nil, fmt.Errorf("translate: duplicate range variable %q", name)
		}
		seen[name] = true
		qual := name
		for n := 2; tr.used[qual]; n++ {
			qual = fmt.Sprintf("%s#%d", name, n)
		}
		tr.used[qual] = true
		rv := &rangeVar{name: name, qual: qual}
		viewName := ""
		if ref.Subquery == nil && ref.Table != "" {
			// View reference? Expand it like a derived table.
			if body, isView := tr.views[strings.ToLower(ref.Table)]; isView {
				viewName = strings.ToLower(ref.Table)
				if tr.expanding[viewName] {
					return nil, nil, fmt.Errorf("translate: recursive view %q", ref.Table)
				}
				ref.Subquery = body
			}
		}
		if ref.Subquery != nil {
			// Derived table: translate the full inner statement (no
			// correlation into siblings — standard SQL, no LATERAL) and
			// re-qualify its output columns under the alias.
			if viewName != "" {
				tr.expanding[viewName] = true
			}
			inner, err := tr.Translate(ref.Subquery)
			if viewName != "" {
				delete(tr.expanding, viewName)
			}
			if err != nil {
				return nil, nil, err
			}
			var pairs [][2]string
			colSeen := map[string]bool{}
			for _, attr := range inner.Schema().Attrs() {
				col := attr
				if i := strings.LastIndex(attr, "."); i >= 0 {
					col = attr[i+1:]
				}
				col = strings.ToLower(col)
				if colSeen[col] {
					return nil, nil, fmt.Errorf("translate: derived table %q has duplicate output column %q; add aliases", name, col)
				}
				colSeen[col] = true
				rv.cols = append(rv.cols, col)
				pairs = append(pairs, [2]string{qual + "." + col, attr})
			}
			renamed, err := algebra.NewRename(inner, pairs)
			if err != nil {
				return nil, nil, err
			}
			rv.derived = renamed
		} else {
			tbl, err := tr.cat.Lookup(ref.Table)
			if err != nil {
				return nil, nil, err
			}
			rv.table = tbl
			for _, c := range tbl.Columns {
				rv.cols = append(rv.cols, strings.ToLower(c.Name))
			}
		}
		sc.vars = append(sc.vars, rv)
	}

	// Translate the WHERE predicate with full scope so subqueries and
	// correlation resolve; then distribute subquery-free local conjuncts
	// into the join tree.
	var conjuncts []algebra.Expr
	if stmt.Where != nil {
		pred, err := tr.translateExpr(stmt.Where, sc)
		if err != nil {
			return nil, nil, err
		}
		conjuncts = algebra.SplitConjuncts(pred)
	}
	plan, remaining, err := tr.buildJoinTree(sc, conjuncts)
	if err != nil {
		return nil, nil, err
	}
	if len(remaining) > 0 {
		plan = algebra.NewSelect(plan, algebra.And(remaining...))
	}
	return plan, sc, nil
}

// predInfo tracks which local range variables a conjunct touches and
// whether it is eligible for pushdown.
type predInfo struct {
	expr     algebra.Expr
	quals    map[string]bool // local vars referenced
	pushable bool            // no subqueries and at least one local var
	applied  bool
}

// buildJoinTree composes the block's scans into a join tree, pushing
// single-variable conjuncts into per-scan selections and multi-variable
// conjuncts into the join that first covers them. Conjuncts containing
// subqueries (or touching no local variable) are returned for the
// block-level selection — that placement is what makes the translation
// "canonical": nested blocks stay nested.
func (tr *Translator) buildJoinTree(sc *scope, conjuncts []algebra.Expr) (algebra.Op, []algebra.Expr, error) {
	local := sc.localQuals()
	infos := make([]*predInfo, len(conjuncts))
	for i, c := range conjuncts {
		quals := map[string]bool{}
		allLocal := true
		for _, col := range c.Columns(nil) {
			if q, _, ok := strings.Cut(col, "."); ok && local[q] {
				quals[q] = true
			} else {
				// References an enclosing block (correlation) or a
				// synthetic attribute: must stay at block level so the
				// rewriter sees it in canonical position.
				allLocal = false
			}
		}
		infos[i] = &predInfo{
			expr:     c,
			quals:    quals,
			pushable: !algebra.HasSubquery(c) && len(quals) > 0 && allLocal,
		}
	}

	// Per-variable access paths (scans or derived plans) with
	// single-variable conjuncts applied.
	scans := make(map[string]algebra.Op, len(sc.vars))
	for _, v := range sc.vars {
		var op algebra.Op
		if v.derived != nil {
			op = v.derived
		} else {
			attrs := make([]string, len(v.cols))
			for i, c := range v.cols {
				attrs[i] = attrOf(v, c)
			}
			op = algebra.NewScan(v.table.Name, v.qual, storage.NewSchema(attrs...))
		}
		var sels []algebra.Expr
		for _, pi := range infos {
			if pi.pushable && !pi.applied && len(pi.quals) == 1 && pi.quals[v.qual] {
				sels = append(sels, pi.expr)
				pi.applied = true
			}
		}
		if len(sels) > 0 {
			op = algebra.NewSelect(op, algebra.And(sels...))
		}
		scans[v.qual] = op
	}

	// Greedy join order: start from the first variable, repeatedly join a
	// variable connected through an unapplied conjunct, falling back to a
	// cross product.
	joined := map[string]bool{sc.vars[0].qual: true}
	plan := scans[sc.vars[0].qual]
	for len(joined) < len(sc.vars) {
		var nextVar *rangeVar
		for _, v := range sc.vars { // find a connected variable
			if joined[v.qual] {
				continue
			}
			for _, pi := range infos {
				if pi.pushable && !pi.applied && pi.quals[v.qual] && coveredBy(pi.quals, joined, v.qual) {
					nextVar = v
					break
				}
			}
			if nextVar != nil {
				break
			}
		}
		if nextVar == nil { // no connection: cross product with the next one
			for _, v := range sc.vars {
				if !joined[v.qual] {
					nextVar = v
					break
				}
			}
			joined[nextVar.qual] = true
			plan = algebra.NewCross(plan, scans[nextVar.qual])
			continue
		}
		joined[nextVar.qual] = true
		var joinPreds []algebra.Expr
		for _, pi := range infos {
			if pi.pushable && !pi.applied && pi.quals[nextVar.qual] && coveredBy(pi.quals, joined, "") {
				joinPreds = append(joinPreds, pi.expr)
				pi.applied = true
			}
		}
		plan = algebra.NewJoin(plan, scans[nextVar.qual], algebra.And(joinPreds...))
	}

	// Apply any pushable conjunct that only became coverable at the end
	// (e.g. referencing variables joined via cross products).
	var late []algebra.Expr
	var remaining []algebra.Expr
	for _, pi := range infos {
		if pi.applied {
			continue
		}
		if pi.pushable {
			late = append(late, pi.expr)
		} else {
			remaining = append(remaining, pi.expr)
		}
	}
	if len(late) > 0 {
		plan = algebra.NewSelect(plan, algebra.And(late...))
	}
	return plan, remaining, nil
}

// coveredBy reports whether all quals are inside the joined set, treating
// extra as joined.
func coveredBy(quals, joined map[string]bool, extra string) bool {
	for q := range quals {
		if q != extra && !joined[q] {
			return false
		}
	}
	return true
}

// translateExpr converts a SQL expression into an algebra expression,
// recursively translating subqueries into embedded plans.
func (tr *Translator) translateExpr(e sqlparser.Expr, sc *scope) (algebra.Expr, error) {
	switch x := e.(type) {
	case *sqlparser.Ident:
		attr, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		return algebra.Col(attr), nil
	case *sqlparser.IntLit:
		return algebra.ConstInt(x.Val), nil
	case *sqlparser.FloatLit:
		return algebra.Const(types.NewFloat(x.Val)), nil
	case *sqlparser.StringLit:
		return algebra.Const(types.NewString(x.Val)), nil
	case *sqlparser.BoolLit:
		return algebra.Const(types.NewBool(x.Val)), nil
	case *sqlparser.NullLit:
		return algebra.Const(types.Null()), nil
	case *sqlparser.NotExpr:
		inner, err := tr.translateExpr(x.E, sc)
		if err != nil {
			return nil, err
		}
		return algebra.Not(inner), nil
	case *sqlparser.LikeExpr:
		l, err := tr.translateExpr(x.L, sc)
		if err != nil {
			return nil, err
		}
		p, err := tr.translateExpr(x.Pattern, sc)
		if err != nil {
			return nil, err
		}
		var out algebra.Expr = algebra.Like(l, p)
		if x.Negated {
			out = algebra.Not(out)
		}
		return out, nil
	case *sqlparser.IsNullExpr:
		inner, err := tr.translateExpr(x.E, sc)
		if err != nil {
			return nil, err
		}
		var out algebra.Expr = algebra.IsNull(inner)
		if x.Negated {
			out = algebra.Not(out)
		}
		return out, nil
	case *sqlparser.BetweenExpr:
		v, err := tr.translateExpr(x.E, sc)
		if err != nil {
			return nil, err
		}
		lo, err := tr.translateExpr(x.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := tr.translateExpr(x.Hi, sc)
		if err != nil {
			return nil, err
		}
		var out algebra.Expr = algebra.And(
			algebra.Cmp(types.GE, v, lo), algebra.Cmp(types.LE, v, hi))
		if x.Negated {
			out = algebra.Not(out)
		}
		return out, nil
	case *sqlparser.BinaryExpr:
		l, err := tr.translateExpr(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := tr.translateExpr(x.R, sc)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "AND":
			return algebra.And(l, r), nil
		case "OR":
			return algebra.Or(l, r), nil
		case "+":
			return algebra.Arith(types.Add, l, r), nil
		case "-":
			return algebra.Arith(types.Sub, l, r), nil
		case "*":
			return algebra.Arith(types.Mul, l, r), nil
		case "/":
			return algebra.Arith(types.Div, l, r), nil
		case "=":
			return algebra.Cmp(types.EQ, l, r), nil
		case "<>":
			return algebra.Cmp(types.NE, l, r), nil
		case "<":
			return algebra.Cmp(types.LT, l, r), nil
		case "<=":
			return algebra.Cmp(types.LE, l, r), nil
		case ">":
			return algebra.Cmp(types.GT, l, r), nil
		case ">=":
			return algebra.Cmp(types.GE, l, r), nil
		default:
			return nil, fmt.Errorf("translate: unknown operator %q", x.Op)
		}
	case *sqlparser.SubqueryExpr:
		return tr.translateScalarSubquery(x.Stmt, sc)
	case *sqlparser.ExistsExpr:
		plan, _, err := tr.translateBlock(x.Stmt, sc)
		if err != nil {
			return nil, err
		}
		q := algebra.Exists
		if x.Negated {
			q = algebra.NotExists
		}
		return algebra.Quant(q, nil, plan), nil
	case *sqlparser.InExpr:
		l, err := tr.translateExpr(x.L, sc)
		if err != nil {
			return nil, err
		}
		proj, err := tr.translateSingleColumn(x.Stmt, sc)
		if err != nil {
			return nil, err
		}
		q := algebra.In
		if x.Negated {
			q = algebra.NotIn
		}
		return algebra.Quant(q, l, proj), nil
	case *sqlparser.QuantCmpExpr:
		return tr.translateQuantCmp(x, sc)
	case *sqlparser.AggExpr:
		return nil, fmt.Errorf("translate: aggregate %s outside a select list", x)
	default:
		return nil, fmt.Errorf("translate: unsupported expression %T", e)
	}
}

// uniqueOutputs rejects select lists projecting the same attribute twice
// without distinguishing aliases.
func uniqueOutputs(attrs []string) error {
	seen := map[string]bool{}
	for _, a := range attrs {
		if seen[a] {
			return fmt.Errorf("translate: duplicate output column %q; add aliases", a)
		}
		seen[a] = true
	}
	return nil
}

// translateSingleColumn translates a subquery block that must produce
// exactly one column (IN and quantified-comparison operands).
func (tr *Translator) translateSingleColumn(stmt *sqlparser.SelectStmt, sc *scope) (algebra.Op, error) {
	plan, innerSc, err := tr.translateBlock(stmt, sc)
	if err != nil {
		return nil, err
	}
	if len(stmt.Items) != 1 || stmt.Star {
		return nil, fmt.Errorf("translate: subquery must select exactly one column")
	}
	colExpr, err := tr.translateExpr(stmt.Items[0].Expr, innerSc)
	if err != nil {
		return nil, err
	}
	col, ok := colExpr.(*algebra.ColRef)
	if !ok || !plan.Schema().Has(col.Name) {
		// Not a bare column of the subquery block — either a computed
		// expression or a correlated reference to an outer column
		// (legal: the item then repeats the outer value per inner row).
		// Both evaluate under χ, where free columns stay resolvable.
		plan = algebra.NewMap(plan, "_in", colExpr)
		col = algebra.Col("_in")
	}
	return algebra.NewProject(plan, []string{col.Name}), nil
}

// translateQuantCmp handles l θ ALL|SOME|ANY (subquery). The equality
// forms map onto IN / NOT IN ("= ANY" ≡ IN, "<> ALL" ≡ NOT IN), the
// ordering forms become AllAny predicates the rewriter converts to
// extremum aggregates (the paper's future-work item (3)).
func (tr *Translator) translateQuantCmp(x *sqlparser.QuantCmpExpr, sc *scope) (algebra.Expr, error) {
	l, err := tr.translateExpr(x.L, sc)
	if err != nil {
		return nil, err
	}
	proj, err := tr.translateSingleColumn(x.Stmt, sc)
	if err != nil {
		return nil, err
	}
	switch {
	case x.Op == "=" && !x.All:
		return algebra.Quant(algebra.In, l, proj), nil
	case x.Op == "<>" && x.All:
		return algebra.Quant(algebra.NotIn, l, proj), nil
	}
	var op types.CompareOp
	switch x.Op {
	case "=":
		op = types.EQ
	case "<>":
		op = types.NE
	case "<":
		op = types.LT
	case "<=":
		op = types.LE
	case ">":
		op = types.GT
	case ">=":
		op = types.GE
	default:
		return nil, fmt.Errorf("translate: unknown quantified operator %q", x.Op)
	}
	return algebra.AllAny(op, x.All, l, proj), nil
}

// translateScalarSubquery builds the canonical nested form: an aggregate
// over the inner block's plan, embedded as an expression (paper §3).
func (tr *Translator) translateScalarSubquery(stmt *sqlparser.SelectStmt, sc *scope) (algebra.Expr, error) {
	if stmt.Star || len(stmt.Items) != 1 {
		return nil, fmt.Errorf("translate: scalar subquery must select a single aggregate")
	}
	ae, ok := stmt.Items[0].Expr.(*sqlparser.AggExpr)
	if !ok {
		return nil, fmt.Errorf("translate: scalar subquery must select an aggregate, got %s", stmt.Items[0].Expr)
	}
	if len(stmt.OrderBy) > 0 {
		return nil, fmt.Errorf("translate: ORDER BY inside a scalar subquery is meaningless")
	}
	plan, innerSc, err := tr.translateBlock(stmt, sc)
	if err != nil {
		return nil, err
	}
	spec, arg, err := tr.translateAgg(ae, innerSc)
	if err != nil {
		return nil, err
	}
	return algebra.Subquery(spec, arg, plan), nil
}
