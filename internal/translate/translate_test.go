package translate

import (
	"strings"
	"testing"

	"disqo/internal/algebra"
	"disqo/internal/catalog"
	"disqo/internal/exec"
	"disqo/internal/sqlparser"
	"disqo/internal/storage"
	"disqo/internal/types"
)

// rstCatalog creates the paper's R, S, T tables with a handful of rows.
func rstCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mk := func(name, prefix string) *catalog.Table {
		tbl, err := cat.Create(name, []catalog.Column{
			{Name: prefix + "1", Type: types.KindInt},
			{Name: prefix + "2", Type: types.KindInt},
			{Name: prefix + "3", Type: types.KindInt},
			{Name: prefix + "4", Type: types.KindInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	r := mk("r", "a")
	s := mk("s", "b")
	tt := mk("t", "c")
	load := func(tbl *catalog.Table, rows [][]int64) {
		for _, row := range rows {
			vals := make([]types.Value, len(row))
			for i, v := range row {
				vals[i] = types.NewInt(v)
			}
			if err := tbl.Insert(vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	load(r, [][]int64{{1, 10, 5, 1000}, {2, 20, 6, 2000}, {2, 10, 7, 1200}, {0, 30, 8, 1501}})
	load(s, [][]int64{{1, 10, 5, 1400}, {2, 10, 6, 1600}, {3, 20, 7, 1700}, {4, 40, 8, 100}})
	load(tt, [][]int64{{1, 5, 10, 9}, {2, 6, 10, 9}, {3, 7, 20, 9}})
	return cat
}

// tpchLiteCatalog creates the five TPC-H tables Query 2d touches, with
// just the columns the query uses.
func tpchLiteCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	must := func(_ *catalog.Table, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cat.Create("region", []catalog.Column{
		{Name: "r_regionkey", Type: types.KindInt},
		{Name: "r_name", Type: types.KindString},
	}))
	must(cat.Create("nation", []catalog.Column{
		{Name: "n_nationkey", Type: types.KindInt},
		{Name: "n_regionkey", Type: types.KindInt},
		{Name: "n_name", Type: types.KindString},
	}))
	must(cat.Create("supplier", []catalog.Column{
		{Name: "s_suppkey", Type: types.KindInt},
		{Name: "s_nationkey", Type: types.KindInt},
		{Name: "s_acctbal", Type: types.KindFloat},
		{Name: "s_name", Type: types.KindString},
		{Name: "s_address", Type: types.KindString},
		{Name: "s_phone", Type: types.KindString},
		{Name: "s_comment", Type: types.KindString},
	}))
	must(cat.Create("part", []catalog.Column{
		{Name: "p_partkey", Type: types.KindInt},
		{Name: "p_mfgr", Type: types.KindString},
		{Name: "p_size", Type: types.KindInt},
		{Name: "p_type", Type: types.KindString},
	}))
	must(cat.Create("partsupp", []catalog.Column{
		{Name: "ps_partkey", Type: types.KindInt},
		{Name: "ps_suppkey", Type: types.KindInt},
		{Name: "ps_supplycost", Type: types.KindFloat},
		{Name: "ps_availqty", Type: types.KindInt},
	}))
	return cat
}

func translateSQL(t *testing.T, cat *catalog.Catalog, sql string) algebra.Op {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New(cat).Translate(stmt)
	if err != nil {
		t.Fatalf("Translate(%s): %v", sql, err)
	}
	return plan
}

func runSQL(t *testing.T, cat *catalog.Catalog, sql string) *storage.Relation {
	t.Helper()
	plan := translateSQL(t, cat, sql)
	ex := exec.New(cat, exec.Options{Cache: exec.CacheAll})
	rel, err := ex.Run(plan)
	if err != nil {
		t.Fatalf("run(%s): %v", sql, err)
	}
	return rel
}

func TestTranslateSimpleSelect(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT a1, a4 FROM r WHERE a4 > 1500")
	got := rel.Canonical()
	if len(got) != 2 || got[0] != "(0, 1501)" || got[1] != "(2, 2000)" {
		t.Errorf("rows = %v", got)
	}
}

func TestTranslateStarAndDistinct(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT DISTINCT a2 FROM r")
	if rel.Cardinality() != 3 {
		t.Errorf("DISTINCT a2 = %d rows", rel.Cardinality())
	}
	rel = runSQL(t, cat, "SELECT * FROM r")
	if rel.Schema.Len() != 4 || rel.Cardinality() != 4 {
		t.Errorf("star: %s", rel.Schema)
	}
}

func TestTranslateOrderBy(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT a1, a4 FROM r ORDER BY a4 DESC, a1")
	if !types.Identical(rel.Tuples[0][1], types.NewInt(2000)) {
		t.Errorf("order by desc first row: %v", rel.Tuples[0])
	}
	if !types.Identical(rel.Tuples[3][1], types.NewInt(1000)) {
		t.Errorf("order by last row: %v", rel.Tuples[3])
	}
}

func TestTranslateAlias(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT a1 AS k FROM r WHERE a1 = 1")
	if rel.Schema.Attr(0) != "k" {
		t.Errorf("alias schema = %s", rel.Schema)
	}
}

func TestTranslateExpressionItem(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT a1 + a2 AS s FROM r WHERE a1 = 2 AND a2 = 20")
	if rel.Cardinality() != 1 || !types.Identical(rel.Tuples[0][0], types.NewInt(22)) {
		t.Errorf("expr item: %s", rel)
	}
}

func TestTranslateJoinTreeUsesJoins(t *testing.T) {
	cat := rstCatalog(t)
	plan := translateSQL(t, cat, "SELECT * FROM r, s WHERE a2 = b2 AND a4 > 1500")
	// The equality must become a join, not a block-level selection, and
	// the a4 filter must be pushed onto the r scan.
	joins := 0
	algebra.Walk(plan, func(op algebra.Op) bool {
		if _, ok := op.(*algebra.Join); ok {
			joins++
		}
		if _, ok := op.(*algebra.CrossProduct); ok {
			t.Error("cross product left in plan despite join predicate")
		}
		return true
	})
	if joins != 1 {
		t.Errorf("joins = %d, want 1", joins)
	}
}

func TestTranslateCrossWhenUnconnected(t *testing.T) {
	cat := rstCatalog(t)
	plan := translateSQL(t, cat, "SELECT * FROM r, s")
	crosses := 0
	algebra.Walk(plan, func(op algebra.Op) bool {
		if _, ok := op.(*algebra.CrossProduct); ok {
			crosses++
		}
		return true
	})
	if crosses != 1 {
		t.Errorf("crosses = %d, want 1", crosses)
	}
}

func TestTranslateGlobalAggregate(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT COUNT(*) AS c, MIN(a4) AS m FROM r")
	got := rel.Canonical()
	if len(got) != 1 || got[0] != "(4, 1000)" {
		t.Errorf("global agg = %v", got)
	}
	// Global aggregate over an empty selection still yields one row.
	rel = runSQL(t, cat, "SELECT COUNT(*) AS c, MIN(a4) AS m FROM r WHERE a1 = 99")
	got = rel.Canonical()
	if len(got) != 1 || got[0] != "(0, NULL)" {
		t.Errorf("empty global agg = %v", got)
	}
}

func TestTranslateCanonicalQ1(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r
	        WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
	           OR a4 > 1500`
	plan := translateSQL(t, cat, sql)
	if !algebra.ContainsSubquery(plan) {
		t.Fatal("canonical plan must keep the nested block")
	}
	infos := ClassifySubqueries(plan)
	if len(infos) != 1 || infos[0].Type != TypeJA {
		t.Fatalf("classification = %+v, want one JA block", infos)
	}
	ex := exec.New(cat, exec.Options{Cache: exec.CacheAll})
	rel, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	// counts per a2: 10→2, 20→1, 30→0, per R row:
	// (1,10,5,1000): count=2≠1, a4≤1500 → out
	// (2,20,6,2000): count=1≠2, but a4>1500 → in
	// (2,10,7,1200): count=2=2 → in
	// (0,30,8,1501): count=0≠0? 0=0 ✓ → in (and a4>1500 also true)
	got := rel.Canonical()
	want := []string{"(0, 30, 8, 1501)", "(2, 10, 7, 1200)", "(2, 20, 6, 2000)"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("Q1 = %v, want %v", got, want)
	}
}

func TestTranslateCanonicalQ2(t *testing.T) {
	cat := rstCatalog(t)
	sql := `SELECT DISTINCT * FROM r
	        WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)`
	rel := runSQL(t, cat, sql)
	// Inner counts: matches on a2 plus all b4>1500 rows (s2:1600, s3:1700).
	// a2=10: rows s1,s2 match eq; b4>1500 adds s3 → count 3 (s2 counted once).
	// a2=20: s3 matches eq; plus s2 → ... recompute per R row:
	// S rows: (1,10,5,1400) (2,10,6,1600) (3,20,7,1700) (4,40,8,100)
	// pred: a2=b2 OR b4>1500.
	// a2=10 → {s1,s2} ∪ {s2,s3} = 3. a2=20 → {s3} ∪ {s2,s3} = 2.
	// a2=30 → {} ∪ {s2,s3} = 2. a2=40 → n/a.
	// R rows: (1,10,..): a1=1≠3. (2,20,..): a1=2=2 ✓. (2,10,..): 2≠3.
	// (0,30,..): 0≠2.
	got := rel.Canonical()
	if len(got) != 1 || got[0] != "(2, 20, 6, 2000)" {
		t.Errorf("Q2 = %v", got)
	}
}

func TestTranslateQuery2dEndToEnd(t *testing.T) {
	cat := tpchLiteCatalog(t)
	ins := func(table string, rows ...[]types.Value) {
		tbl, err := cat.Lookup(table)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := tbl.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	i, f, s := types.NewInt, types.NewFloat, types.NewString
	ins("region", []types.Value{i(0), s("EUROPE")}, []types.Value{i(1), s("ASIA")})
	ins("nation", []types.Value{i(0), i(0), s("GERMANY")}, []types.Value{i(1), i(1), s("JAPAN")})
	ins("supplier",
		[]types.Value{i(1), i(0), f(100), s("sup1"), s("addr1"), s("ph1"), s("c1")},
		[]types.Value{i(2), i(0), f(200), s("sup2"), s("addr2"), s("ph2"), s("c2")},
		[]types.Value{i(3), i(1), f(300), s("sup3"), s("addr3"), s("ph3"), s("c3")})
	ins("part",
		[]types.Value{i(10), s("mfgr1"), i(15), s("LARGE BRASS")},
		[]types.Value{i(20), s("mfgr2"), i(15), s("SMALL STEEL")})
	ins("partsupp",
		[]types.Value{i(10), i(1), f(5.0), i(100)},  // min cost for part 10 in EUROPE
		[]types.Value{i(10), i(2), f(7.0), i(5000)}, // not min, but availqty > 2000
		[]types.Value{i(10), i(3), f(1.0), i(100)},  // ASIA supplier: not in inner min scope
		[]types.Value{i(20), i(1), f(2.0), i(9000)}) // wrong part type
	sql := `SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
	        FROM part, supplier, partsupp, nation, region
	        WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
	          AND p_size = 15 AND p_type LIKE '%BRASS'
	          AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	          AND r_name = 'EUROPE'
	          AND (ps_supplycost = (SELECT MIN(ps_supplycost)
	                                FROM partsupp, supplier, nation, region
	                                WHERE s_suppkey = ps_suppkey
	                                  AND p_partkey = ps_partkey
	                                  AND s_nationkey = n_nationkey
	                                  AND n_regionkey = r_regionkey
	                                  AND r_name = 'EUROPE')
	               OR ps_availqty > 2000)
	        ORDER BY s_acctbal DESC, n_name, s_name, p_partkey`
	rel := runSQL(t, cat, sql)
	// Expect suppliers 1 (min cost 5.0 among EUROPE suppliers of part 10)
	// and 2 (availqty 5000 > 2000), ordered by acctbal desc: sup2, sup1.
	if rel.Cardinality() != 2 {
		t.Fatalf("Query 2d rows = %d:\n%s", rel.Cardinality(), rel)
	}
	if !types.Identical(rel.Tuples[0][1], types.NewString("sup2")) ||
		!types.Identical(rel.Tuples[1][1], types.NewString("sup1")) {
		t.Errorf("Query 2d order: %s", rel)
	}
}

func TestTranslateCorrelationStaysAtBlockLevel(t *testing.T) {
	cat := rstCatalog(t)
	plan := translateSQL(t, cat,
		"SELECT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 AND b4 > 100)")
	// Find the subquery plan and check its top is a Select containing the
	// correlation predicate (b4 filter may be pushed to the scan).
	var sub *algebra.ScalarSubquery
	algebra.Walk(plan, func(op algebra.Op) bool {
		if sel, ok := op.(*algebra.Select); ok {
			for _, e := range algebra.SplitConjuncts(sel.Pred) {
				if cmp, ok := e.(*algebra.CmpExpr); ok {
					if sq, ok := cmp.R.(*algebra.ScalarSubquery); ok {
						sub = sq
					}
				}
			}
		}
		return true
	})
	if sub == nil {
		t.Fatal("no scalar subquery found")
	}
	top, ok := sub.Plan.(*algebra.Select)
	if !ok {
		t.Fatalf("subquery top = %T, want Select with correlation", sub.Plan)
	}
	free := algebra.FreeColumns(sub.Plan)
	if len(free) != 1 || free[0] != "r.a2" {
		t.Errorf("free columns = %v, want [r.a2]", free)
	}
	if !strings.Contains(top.Pred.String(), "r.a2") {
		t.Errorf("correlation predicate not at block level: %s", top.Pred)
	}
}

func TestTranslateDuplicateRangeVariablesAcrossBlocks(t *testing.T) {
	cat := rstCatalog(t)
	// s appears in both blocks unaliased; the translator must
	// disambiguate qualifiers.
	rel := runSQL(t, cat, `SELECT DISTINCT b1 FROM s
	        WHERE b4 > (SELECT MAX(b4) FROM s WHERE b2 = 40)`)
	got := rel.Canonical()
	if len(got) != 3 { // b4 > 100: rows 1,2,3
		t.Errorf("self-nested rows = %v", got)
	}
}

func TestTranslateErrors(t *testing.T) {
	cat := rstCatalog(t)
	bad := []string{
		"SELECT * FROM missing",
		"SELECT zz FROM r",
		"SELECT a1 FROM r, s WHERE b1 = 1 ORDER BY zz",
		"SELECT a1 FROM r WHERE a1 = (SELECT b1 FROM s)",          // scalar subquery must aggregate
		"SELECT a1 FROM r WHERE a1 = (SELECT COUNT(*), 1 FROM s)", // single item
		"SELECT a1, COUNT(*) FROM r",                              // mixed agg
		"SELECT * FROM r, r",                                      // duplicate range var
		"SELECT a1 FROM r WHERE a2 IN (SELECT b1, b2 FROM s)",     // IN arity
	}
	for _, sql := range bad {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			continue // parse-level failure also fine
		}
		if _, err := New(cat).Translate(stmt); err == nil {
			t.Errorf("Translate(%q) should fail", sql)
		}
	}
}

func TestTranslateAmbiguousColumn(t *testing.T) {
	cat := catalog.New()
	cat.Create("x", []catalog.Column{{Name: "v", Type: types.KindInt}})
	cat.Create("y", []catalog.Column{{Name: "v", Type: types.KindInt}})
	stmt, _ := sqlparser.Parse("SELECT v FROM x, y")
	if _, err := New(cat).Translate(stmt); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column must error, got %v", err)
	}
}

func TestClassifyStructure(t *testing.T) {
	cases := []struct {
		sql  string
		want Structure
	}{
		{"SELECT * FROM r", Flat},
		{"SELECT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)", Simple},
		{`SELECT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2
		   OR b3 = (SELECT COUNT(*) FROM t WHERE b4 = c2))`, Linear},
		{`SELECT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)
		   OR a3 = (SELECT COUNT(*) FROM t WHERE a4 = c2)`, Tree},
	}
	for _, c := range cases {
		stmt, err := sqlparser.Parse(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		if got := ClassifyStructure(stmt); got != c.want {
			t.Errorf("structure(%q) = %s, want %s", c.sql, got, c.want)
		}
	}
}

func TestClassifyTypes(t *testing.T) {
	cat := rstCatalog(t)
	// Type A: uncorrelated scalar.
	plan := translateSQL(t, cat, "SELECT * FROM r WHERE a1 = (SELECT COUNT(*) FROM s)")
	infos := ClassifySubqueries(plan)
	if len(infos) != 1 || infos[0].Type != TypeA {
		t.Errorf("type A: %+v", infos)
	}
	// Type J: correlated EXISTS.
	plan = translateSQL(t, cat, "SELECT * FROM r WHERE EXISTS (SELECT * FROM s WHERE a2 = b2)")
	infos = ClassifySubqueries(plan)
	if len(infos) != 1 || infos[0].Type != TypeJ {
		t.Errorf("type J: %+v", infos)
	}
	// Type N: uncorrelated IN.
	plan = translateSQL(t, cat, "SELECT * FROM r WHERE a2 IN (SELECT b2 FROM s)")
	infos = ClassifySubqueries(plan)
	if len(infos) != 1 || infos[0].Type != TypeN {
		t.Errorf("type N: %+v", infos)
	}
}

func TestBlockTypeAndStructureStrings(t *testing.T) {
	if TypeJA.String() != "JA" || TypeN.String() != "N" || TypeA.String() != "A" || TypeJ.String() != "J" {
		t.Error("BlockType strings")
	}
	if Flat.String() != "flat" || Simple.String() != "simple" ||
		Linear.String() != "linear" || Tree.String() != "tree" {
		t.Error("Structure strings")
	}
}

func TestLimit(t *testing.T) {
	cat := rstCatalog(t)
	rel := runSQL(t, cat, "SELECT a1, a4 FROM r ORDER BY a4 DESC LIMIT 2")
	if rel.Cardinality() != 2 {
		t.Fatalf("limit rows = %d", rel.Cardinality())
	}
	if !types.Identical(rel.Tuples[0][1], types.NewInt(2000)) ||
		!types.Identical(rel.Tuples[1][1], types.NewInt(1501)) {
		t.Errorf("top-2 = %s", rel)
	}
	// LIMIT larger than the input passes everything through.
	rel = runSQL(t, cat, "SELECT a1 FROM r LIMIT 100")
	if rel.Cardinality() != 4 {
		t.Errorf("oversized limit = %d", rel.Cardinality())
	}
	// LIMIT 0 is empty; grouped queries support LIMIT too.
	rel = runSQL(t, cat, "SELECT a1 FROM r LIMIT 0")
	if rel.Cardinality() != 0 {
		t.Errorf("limit 0 = %d", rel.Cardinality())
	}
	rel = runSQL(t, cat, "SELECT a2, COUNT(*) AS n FROM r GROUP BY a2 ORDER BY a2 LIMIT 1")
	if rel.Cardinality() != 1 {
		t.Errorf("grouped limit = %d", rel.Cardinality())
	}
	// Negative limits are rejected at parse time.
	if _, err := sqlparser.Parse("SELECT a1 FROM r LIMIT -1"); err == nil {
		t.Error("negative limit must fail")
	}
}
